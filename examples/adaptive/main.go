// Command adaptive demonstrates the adaptive planning layer: one
// Planner in SolverAuto mode routes queries of different topologies to
// different enumeration algorithms (per the §4 crossover data), and the
// Physical cost model annotates every join with the physical operator
// it chose (hash join, sort-merge join, or index nested-loop).
package main

import (
	"context"
	"fmt"

	"repro"
)

// chain builds SELECT ... FROM R0, R1, ..., joined in a line.
func chain(n int) *repro.Query {
	q := repro.NewQuery()
	ids := make([]repro.RelID, n)
	for i := range ids {
		ids[i] = q.Relation(fmt.Sprintf("R%d", i), float64(1000*(i+1)))
	}
	for i := 0; i+1 < n; i++ {
		q.Join(ids[i], ids[i+1], 0.01)
	}
	return q
}

// star builds a fact table joined to n-1 dimensions.
func star(n int) *repro.Query {
	q := repro.NewQuery()
	fact := q.Relation("fact", 1_000_000)
	for i := 1; i < n; i++ {
		d := q.Relation(fmt.Sprintf("dim%d", i), float64(100*i))
		q.Join(fact, d, 1/float64(100*i))
	}
	return q
}

// clique joins every relation with every other.
func clique(n int) *repro.Query {
	q := repro.NewQuery()
	ids := make([]repro.RelID, n)
	for i := range ids {
		ids[i] = q.Relation(fmt.Sprintf("R%d", i), float64(500+100*i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			q.Join(ids[i], ids[j], 0.05)
		}
	}
	return q
}

func main() {
	// One planner, shared by all queries: SolverAuto picks the
	// enumeration algorithm per query shape, the Physical model picks
	// the implementation per join.
	planner := repro.NewPlanner(
		repro.WithAlgorithm(repro.SolverAuto),
		repro.WithCostModel(repro.Physical),
	)
	ctx := context.Background()

	queries := []struct {
		name string
		q    *repro.Query
	}{
		{"chain of 8", chain(8)},
		{"star with 7 dimensions", star(8)},
		{"clique of 6", clique(6)},
	}
	for _, c := range queries {
		res, err := planner.Plan(ctx, c.q)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s:\n  shape=%s routed=%s ran=%s cost=%.4g\n",
			c.name, res.Stats.Shape, res.Stats.RoutedAlgorithm, res.Algorithm, res.Cost())

		// Count the physical operators the model chose.
		counts := map[repro.PhysicalOp]int{}
		res.Plan.Walk(func(n *repro.PlanNode) {
			if !n.IsLeaf() {
				counts[n.Phys]++
			}
		})
		fmt.Printf("  physical operators: ")
		for _, op := range []repro.PhysicalOp{repro.PhysHashJoin, repro.PhysSortMerge, repro.PhysIndexNLJ} {
			if counts[op] > 0 {
				fmt.Printf("%s×%d ", op, counts[op])
			}
		}
		fmt.Println()
		fmt.Println("  plan:", res.Plan.Compact())
	}
}
