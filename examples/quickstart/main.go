// Quickstart: optimize a TPC-H-flavored inner-join query with DPhyp
// through a reusable Planner session and compare the enumeration effort
// of all five exact algorithms.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func buildQuery() *repro.Query {
	q := repro.NewQuery()
	region := q.Relation("region", 5)
	nation := q.Relation("nation", 25)
	customer := q.Relation("customer", 150_000)
	orders := q.Relation("orders", 1_500_000)
	lineitem := q.Relation("lineitem", 6_000_000)
	supplier := q.Relation("supplier", 10_000)

	q.Join(region, nation, 1.0/5)
	q.Join(nation, customer, 1.0/25)
	q.Join(customer, orders, 1.0/150_000)
	q.Join(orders, lineitem, 1.0/1_500_000)
	q.Join(lineitem, supplier, 1.0/10_000)
	q.Join(nation, supplier, 1.0/25) // suppliers in the customer's nation
	return q
}

func main() {
	// One Planner serves the whole process: it owns the cost model, the
	// plan cache, and the pooled DP scratch state, and may be shared by
	// any number of goroutines.
	planner := repro.NewPlanner()
	ctx := context.Background()

	res, err := planner.Plan(ctx, buildQuery())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal plan (DPhyp, Cout):")
	fmt.Print(res.Plan)
	fmt.Printf("cost=%.4g  cardinality=%.4g  shape=%s\n\n",
		res.Cost(), res.Cardinality(), res.Plan.TreeShape())

	fmt.Println("algorithm      csg-cmp-pairs  costed plans  cost")
	for _, alg := range []repro.Algorithm{repro.DPhyp, repro.DPccp, repro.DPsize, repro.DPsub, repro.TopDown} {
		r, err := planner.Plan(ctx, buildQuery(), repro.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %13d %13d  %.4g\n", alg, r.Stats.CsgCmpPairs, r.Stats.CostedPlans, r.Cost())
	}
	fmt.Println("\nAll algorithms search the same space and find the same optimum;")
	fmt.Println("they differ in wasted work, which grows with query size (see cmd/dpbench).")

	// Replanning the same query shape hits the fingerprint cache.
	if r, err := planner.Plan(ctx, buildQuery()); err == nil {
		fmt.Printf("\nreplanned the same shape: cache hit = %t (metrics: %+v)\n",
			r.Stats.CacheHit, planner.Metrics())
	}
}
