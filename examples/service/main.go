// Serving example: embed the plan service in-process, plan a star
// query over HTTP, read the live metrics, and drain gracefully — the
// programmatic equivalent of running cmd/dpserved.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro"
	"repro/service"
)

func main() {
	// The service wraps any Planner; here a budgeted auto-routing one.
	planner := repro.NewPlanner(
		repro.WithAlgorithm(repro.SolverAuto),
		repro.WithBudget(repro.Budget{MaxCsgCmpPairs: 1_000_000}),
	)
	svc := service.New(service.Config{
		Planner:        planner,
		Workers:        4,
		QueueDepth:     32,
		DefaultTimeout: 2 * time.Second,
	})

	// Any http listener works; production uses http.Server + Handler().
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// A star query in the wire format (cmd/querygen emits the same).
	doc := &repro.QueryJSON{
		Relations: []repro.RelationJSON{
			{Name: "fact", Card: 1_000_000},
			{Name: "d1", Card: 100}, {Name: "d2", Card: 500}, {Name: "d3", Card: 2000},
		},
		Edges: []repro.EdgeJSON{
			{Left: []int{0}, Right: []int{1}, Sel: 0.01},
			{Left: []int{0}, Right: []int{2}, Sel: 0.002},
			{Left: []int{0}, Right: []int{3}, Sel: 0.0005},
		},
	}
	body, _ := json.Marshal(service.PlanRequest{Query: doc})

	// Plan it twice: the second call is a plan-cache hit.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var out service.PlanResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("plan %d: algorithm=%s shape=%s cost=%.4g cacheHit=%v in %.3fms\n",
			i+1, out.Algorithm, out.Stats.Shape, out.Cost, out.Stats.CacheHit, out.ElapsedMS)
	}

	// Live metrics: the planner series the /metrics endpoint exports.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "planner_plans_total") ||
			strings.HasPrefix(line, "planner_cache_hits_total") {
			fmt.Println(line)
		}
	}

	// Graceful drain: refuses new work, waits for in-flight plans.
	if err := svc.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
