// Starschema optimizes a data-warehouse report query with non-inner
// joins — the §5 scenario. The query, in SQL terms:
//
//	SELECT ..., COUNT(returns per sale)
//	FROM sales s
//	JOIN date_dim d      ON s.date_sk = d.date_sk
//	JOIN store st        ON s.store_sk = st.store_sk
//	SEMI JOIN promotion p ON s.promo_sk = p.promo_sk      (EXISTS subquery)
//	ANTI JOIN clearance c ON s.item_sk = c.item_sk        (NOT EXISTS subquery)
//	NEST JOIN returns r   ON s.ticket = r.ticket          (per-sale aggregation)
//
// The initial operator tree fixes one valid evaluation order; the TES
// analysis (§5.5–5.7) derives hyperedges that let DPhyp consider every
// equivalent order, and the statistics show how much smaller that search
// space is than the generate-and-test alternative.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func build() (*repro.TreeQuery, *repro.Expr) {
	t := repro.NewTreeQuery()
	sales := t.Table("sales", 10_000_000)
	date := t.Table("date_dim", 2_555)
	store := t.Table("store", 1_002)
	promo := t.Table("promotion", 2_300)
	clearance := t.Table("clearance", 5_000)
	returns := t.Table("returns", 120_000)

	expr := sales.
		Join(date, 0.2/2_555, repro.Label("s.date_sk = d.date_sk")).
		Join(store, 1.0/1_002, repro.Label("s.store_sk = st.store_sk")).
		SemiJoin(promo, 0.4/2_300, repro.Label("EXISTS promotion")).
		AntiJoin(clearance, 0.3/5_000, repro.Label("NOT EXISTS clearance")).
		NestJoin(returns, 0.5/120_000, repro.Label("COUNT(returns)"))
	return t, expr
}

func main() {
	planner := repro.NewPlanner()
	ctx := context.Background()

	t, expr := build()
	fmt.Println("initial operator tree:", t.InitialTree(expr))

	res, err := planner.PlanTree(ctx, t, expr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized plan (TES-derived hyperedges):")
	fmt.Print(res.Plan)
	fmt.Printf("cost=%.4g  pairs=%d\n", res.Cost(), res.Stats.CsgCmpPairs)

	// The same query through the §5.8 generate-and-test paradigm: same
	// plan quality, more wasted enumeration.
	t2, expr2 := build()
	gat, err := planner.PlanTree(ctx, t2, expr2, repro.WithGenerateAndTest())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerate-and-test: cost=%.4g  pairs=%d  rejected=%d\n",
		gat.Cost(), gat.Stats.CsgCmpPairs, gat.Stats.FilterReject)

	fmt.Println("\nThe hyperedge formulation avoids enumerating the candidates the")
	fmt.Println("TES test would reject (§5.7: \"the hyperedges directly cover all")
	fmt.Println("possible conflicts\"), which is the Fig. 8a effect.")
}
