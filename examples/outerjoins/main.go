// Outerjoins walks the Fig. 8b scenario: a cycle query whose inner joins
// are progressively replaced by left outer joins. Outer joins reorder
// freely among themselves (eq. 4.46) but not across inner joins, so the
// search space first shrinks, then grows again — and DPhyp stays ahead
// of DPsize throughout.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/optree"
	"repro/internal/workload"
)

func main() {
	const n = 12
	// Cache-less planners: each row measures real enumeration time.
	hyp := repro.NewPlanner(repro.WithAlgorithm(repro.DPhyp), repro.WithPlanCacheSize(0))
	size := repro.NewPlanner(repro.WithAlgorithm(repro.DPsize), repro.WithPlanCacheSize(0))
	ctx := context.Background()
	fmt.Printf("cycle query, %d relations; first k operators are left outer joins\n\n", n)
	fmt.Println("k   #ccp   dphyp[ms]  dpsize[ms]  cost")
	for k := 0; k <= n-1; k += 1 {
		root, rels := workload.CycleTree(n, k, workload.DefaultConfig())
		tr, err := optree.Analyze(root, rels, optree.Conservative)
		if err != nil {
			log.Fatal(err)
		}
		g := tr.Hypergraph(optree.TESEdges)

		start := time.Now()
		res, err := hyp.PlanGraph(ctx, g)
		if err != nil {
			log.Fatal(err)
		}
		hypMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		_, err = size.PlanGraph(ctx, g)
		if err != nil {
			log.Fatal(err)
		}
		sizeMS := float64(time.Since(start).Microseconds()) / 1000

		fmt.Printf("%-3d %-6d %-10.3f %-11.3f %.4g\n",
			k, res.Stats.CsgCmpPairs, hypMS, sizeMS, res.Cost())
	}
	fmt.Println("\nThe dip-then-rise in #ccp mirrors the paper's Fig. 8b: outer joins")
	fmt.Println("first freeze orderings against the inner joins, then, once they")
	fmt.Println("dominate, reorder among themselves and re-grow the space.")
}
