// Execution demonstrates the verification loop behind the repository's
// property tests: a query with non-inner joins is (1) evaluated directly
// from its initial operator tree and (2) optimized by DPhyp over the
// TES-derived hypergraph and then executed — and the two results are
// compared tuple by tuple.
//
// The query: customers, their orders (left outer join — keep customers
// without orders), restricted to customers NOT on a blocklist (antijoin).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/exec"
	"repro/internal/optree"
)

func main() {
	// Columns: customer(c0 = id), orders(c0 = customer id), block(c0 = id).
	cID := exec.ColID{Rel: 0, Col: 0}
	oCust := exec.ColID{Rel: 1, Col: 0}
	bID := exec.ColID{Rel: 2, Col: 0}

	pCO := exec.SumEq{Left: []exec.ColID{cID}, Right: []exec.ColID{oCust}}
	pCB := exec.SumEq{Left: []exec.ColID{cID}, Right: []exec.ColID{bID}}

	// Initial tree: (customer ⟕ orders) ▷ blocklist.
	lo := optree.NewOp(algebra.LeftOuter, optree.NewLeaf(0), optree.NewLeaf(1),
		optree.Predicate{
			Tables:  bitset.New(0, 1),
			Sel:     0.3,
			Label:   "c.id = o.cust",
			Payload: exec.JoinSpec{Preds: []exec.Pred{pCO}},
		})
	root := optree.NewOp(algebra.AntiJoin, lo, optree.NewLeaf(2),
		optree.Predicate{
			Tables:  bitset.New(0, 2),
			Sel:     0.25,
			Label:   "NOT EXISTS blocklist",
			Payload: exec.JoinSpec{Preds: []exec.Pred{pCB}},
		})
	rels := []optree.RelInfo{
		{Name: "customer", Card: 4},
		{Name: "orders", Card: 5},
		{Name: "blocklist", Card: 2},
	}

	rows := func(vals ...int64) []exec.Row {
		out := make([]exec.Row, len(vals))
		for i, v := range vals {
			out[i] = exec.Row{exec.V(v)}
		}
		return out
	}
	db := &exec.DB{Sources: []exec.Source{
		&exec.BaseTable{RelID: 0, NumCols: 1, Data: rows(1, 2, 3, 4)},    // customers
		&exec.BaseTable{RelID: 1, NumCols: 1, Data: rows(1, 1, 3, 9, 9)}, // orders
		&exec.BaseTable{RelID: 2, NumCols: 1, Data: rows(2, 9)},          // blocklist
	}}

	fmt.Println("initial tree:", root)
	refPlan, err := exec.FromOpTree(root, db)
	must(err)
	ref, err := exec.Run(refPlan)
	must(err)
	fmt.Println("\ndirect evaluation of the initial tree:")
	fmt.Println(ref.Canonical())

	tr, err := optree.Analyze(root, rels, optree.Conservative)
	must(err)
	g := tr.Hypergraph(optree.TESEdges)
	p, stats, err := core.Solve(g, core.Options{Limits: dp.Limits{Ctx: context.Background()}})
	must(err)
	fmt.Println("\nDPhyp-optimized plan over the TES-derived hypergraph:")
	fmt.Print(p)
	fmt.Printf("(%d csg-cmp-pairs considered)\n", stats.CsgCmpPairs)

	ep, err := exec.FromPlan(p, g, db)
	must(err)
	got, err := exec.Run(ep)
	must(err)
	fmt.Println("\nexecution of the optimized plan:")
	fmt.Println(got.Canonical())

	if exec.Equal(ref, got) {
		fmt.Println("\nresults are identical — the reordering is semantics-preserving.")
	} else {
		fmt.Println("\nRESULTS DIVERGE — this would be an optimizer bug.")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
