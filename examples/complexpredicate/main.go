// Complexpredicate reproduces the paper's running example: the Figure 2
// hypergraph with the complex join predicate
//
//	R1.a + R2.b + R3.c = R4.d + R5.e + R6.f
//
// which becomes the hyperedge ({R1,R2,R3},{R4,R5,R6}). The program
// prints the enumeration trace in the spirit of Figure 3, the resulting
// plan, and the Graphviz rendering of the hypergraph.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	q := repro.NewQuery()
	var r [6]repro.RelID
	for i := range r {
		r[i] = q.Relation(fmt.Sprintf("R%d", i+1), 100)
	}
	// The simple edges of Figure 2.
	q.Join(r[0], r[1], 0.1) // R1 - R2
	q.Join(r[1], r[2], 0.1) // R2 - R3
	q.Join(r[3], r[4], 0.1) // R4 - R5
	q.Join(r[4], r[5], 0.1) // R5 - R6
	// The complex predicate: one true hyperedge.
	q.ComplexJoin([]repro.RelID{r[0], r[1], r[2]}, []repro.RelID{r[3], r[4], r[5]}, 0.05)

	var trace repro.Trace
	res, err := repro.NewPlanner().Plan(context.Background(), q, repro.WithTrace(&trace))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("enumeration trace (cf. Fig. 3; R1..R6 are nodes R0..R5 here):")
	fmt.Print(trace.String())

	fmt.Printf("\ncsg-cmp-pairs: %d (the DP lower bound for this hypergraph)\n", res.Stats.CsgCmpPairs)
	fmt.Println("\noptimal plan:")
	fmt.Print(res.Plan)
	fmt.Println("\nNote how the hyperedge forces the root join to combine exactly")
	fmt.Println("{R1,R2,R3} with {R4,R5,R6}: no other cross-hyperedge pairing is connected.")

	fmt.Println("\nGraphviz rendering (pipe into `dot -Tpng`):")
	fmt.Print(res.Graph.Dot())
}
