// Benchmarks reproducing the paper's evaluation, one per table and
// figure. Each benchmark sweeps the experiment's parameter and runs every
// competing algorithm as a sub-benchmark; cmd/dpbench prints the same
// series as tables (and, with -full, at the paper's exact sizes —
// several of the 16-relation DPsize/DPsub cells take minutes, so the
// testing.B versions here use the reduced "quick" sizes for the large
// instances; IDs carry a -quick suffix where they differ).
//
// Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=Fig7 -benchtime=3x
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/optree"
	"repro/internal/plan"
	"repro/internal/workload"
)

// benchSeries runs one experiment series as sub-benchmarks. For long
// sweeps only representative points (first, middle, last) are measured;
// cmd/dpbench covers the full sweep.
func benchSeries(b *testing.B, id string, allPoints bool) {
	s, ok := experiments.ByID(experiments.Quick(), id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	xs := s.Xs
	if !allPoints && len(xs) > 3 {
		xs = []int{s.Xs[0], s.Xs[len(s.Xs)/2], s.Xs[len(s.Xs)-1]}
	}
	ctx := context.Background()
	for _, x := range xs {
		for _, alg := range s.Algs {
			run := s.Make(x, alg)
			b.Run(fmt.Sprintf("%s=%d/%s", s.XLabel, x, alg), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := run(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTableCycle4 reproduces the §4.2 table (cycles, 4 relations).
func BenchmarkTableCycle4(b *testing.B) { benchSeries(b, "table-cycle4", true) }

// BenchmarkTableStar4 reproduces the §4.3 table (stars, 4 satellites).
func BenchmarkTableStar4(b *testing.B) { benchSeries(b, "table-star4", true) }

// BenchmarkFig5Cycle8 reproduces Fig. 5 (left): cycle-based hypergraphs
// with 8 relations over hyperedge splits.
func BenchmarkFig5Cycle8(b *testing.B) { benchSeries(b, "fig5-cycle8", true) }

// BenchmarkFig5Cycle16 reproduces Fig. 5 (right) at the reduced size of
// 12 relations (the paper's 16-relation DPsub cells run for seconds to
// minutes; use `dpbench -full` for the original size).
func BenchmarkFig5Cycle16(b *testing.B) { benchSeries(b, "fig5-cycle12-quick", false) }

// BenchmarkFig6Star8 reproduces Fig. 6 (left): star-based hypergraphs
// with 8 satellites over hyperedge splits.
func BenchmarkFig6Star8(b *testing.B) { benchSeries(b, "fig6-star8", true) }

// BenchmarkFig6Star16 reproduces Fig. 6 (right) at the reduced size of
// 12 satellites (see BenchmarkFig5Cycle16).
func BenchmarkFig6Star16(b *testing.B) { benchSeries(b, "fig6-star12-quick", false) }

// BenchmarkFig7StarRegular reproduces Fig. 7: star queries without
// hyperedges over the number of relations.
func BenchmarkFig7StarRegular(b *testing.B) { benchSeries(b, "fig7-star-regular-quick", false) }

// BenchmarkFig8aAntijoins reproduces Fig. 8a: a left-deep star operator
// tree with increasing antijoins; hyperedge-driven DPhyp vs the TES
// generate-and-test alternative.
func BenchmarkFig8aAntijoins(b *testing.B) { benchSeries(b, "fig8a-antijoin-quick", false) }

// BenchmarkFig8bOuterJoins reproduces Fig. 8b: a left-deep cycle operator
// tree with increasing outer joins; DPhyp vs DPsize.
func BenchmarkFig8bOuterJoins(b *testing.B) { benchSeries(b, "fig8b-outerjoin-quick", false) }

// BenchmarkAblationConflictRules contrasts the conservative conflict rule
// (default; reproduces the paper's measured Fig. 8a shrinkage) with the
// literal published rule on the all-antijoin star: the published rule
// leaves antijoins freely reorderable around the hub, so it explores the
// full star space.
func BenchmarkAblationConflictRules(b *testing.B) {
	const n = 12
	for _, rule := range []optree.ConflictRule{optree.Conservative, optree.Published} {
		root, rels := workload.StarTree(n, n-1, workload.DefaultConfig())
		tr, err := optree.Analyze(root, rels, rule)
		if err != nil {
			b.Fatal(err)
		}
		g := tr.Hypergraph(optree.TESEdges)
		// A dedicated cache-less Planner: the benchmark measures
		// enumeration, not cache hits.
		p := NewPlanner(WithPlanCacheSize(0))
		ctx := context.Background()
		b.Run(rule.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.PlanGraph(ctx, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTopDown contrasts DPhyp with the naive top-down
// memoization competitor of §1 on a mid-size clique (where partition
// generate-and-test hurts most).
func BenchmarkAblationTopDown(b *testing.B) {
	g := workload.Clique(10, workload.DefaultConfig())
	ctx := context.Background()
	for _, alg := range []Algorithm{DPhyp, TopDown} {
		p := NewPlanner(WithAlgorithm(alg), WithPlanCacheSize(0))
		b.Run(alg.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.PlanGraph(ctx, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCostModels measures the (small) cost-model influence
// on optimization time: the enumeration dominates, the model does not.
func BenchmarkAblationCostModels(b *testing.B) {
	g := workload.Cycle(12, workload.DefaultConfig())
	ctx := context.Background()
	for _, m := range []CostModel{Cout, NestedLoop, Hash} {
		p := NewPlanner(WithCostModel(m), WithPlanCacheSize(0))
		b.Run(m.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.PlanGraph(ctx, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlannerSession measures the session machinery itself on a
// mid-size clique: cold enumeration with pooled scratch reuse versus
// plans served from the fingerprint cache — the repeated-traffic path a
// server lives on.
func BenchmarkPlannerSession(b *testing.B) {
	g := workload.Clique(8, workload.DefaultConfig())
	ctx := context.Background()
	b.Run("enumerate-pooled", func(b *testing.B) {
		p := NewPlanner(WithPlanCacheSize(0))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.PlanGraph(ctx, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		p := NewPlanner()
		if _, err := p.PlanGraph(ctx, g); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.PlanGraph(ctx, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemo isolates the memo claim of the unified enumeration
// engine: open-addressing table + flat arena (internal/memo) versus the
// map[bitset.Set]*plan.Node each solver used to carry. The key stream is
// every non-empty subset of a 14-relation universe in Vance–Maier order
// — the exact access pattern of a clique enumeration.
func BenchmarkMemo(b *testing.B) {
	keys := bitset.Subsets(bitset.Full(14))
	leaf := plan.Leaf(0, 100)

	b.Run("insert/map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[string]*plan.Node, 64)
			for _, k := range keys {
				m[k.Key()] = leaf
			}
			if len(m) != len(keys) {
				b.Fatal("bad size")
			}
		}
	})
	b.Run("insert/engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var tb memo.Table
			tb.Reset(64)
			for j, k := range keys {
				tb.Put(k, int32(j))
			}
			if tb.Len() != len(keys) {
				b.Fatal("bad size")
			}
		}
	})

	mm := make(map[string]*plan.Node, len(keys))
	var tb memo.Table
	tb.Reset(len(keys))
	for j, k := range keys {
		mm[k.Key()] = leaf
		tb.Put(k, int32(j))
	}
	b.Run("lookup/map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hits := 0
			for _, k := range keys {
				if mm[k.Key()] != nil {
					hits++
				}
			}
			if hits != len(keys) {
				b.Fatal("bad hits")
			}
		}
	})
	b.Run("lookup/engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hits := 0
			for _, k := range keys {
				if _, ok := tb.Get(k); ok {
					hits++
				}
			}
			if hits != len(keys) {
				b.Fatal("bad hits")
			}
		}
	})

	// arena-reset measures the steady-state cycle a pooled engine lives
	// in: clear storage that is already sized, then re-fill it.
	b.Run("arena-reset/map", func(b *testing.B) {
		m := make(map[string]*plan.Node, len(keys))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(m)
			for _, k := range keys {
				m[k.Key()] = leaf
			}
		}
	})
	b.Run("arena-reset/engine", func(b *testing.B) {
		var t2 memo.Table
		t2.Reset(len(keys))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t2.Reset(len(keys))
			for j, k := range keys {
				t2.Put(k, int32(j))
			}
		}
	})

	// deferred-buckets measures the steady state of the pooled
	// deferred-pricing cycle the parallel spines (DPhyp, DPccp, TopDown)
	// run per query: record pairs into the per-worker pooled buffers,
	// fold the collect barrier, assemble the pooled size buckets, and
	// price every bucket level through the merged barriers. After warmup
	// the whole cycle is allocation-free. Two per-run costs are hoisted
	// out because they are per-run by design, not per-pair: the
	// Stats.WorkerPairs header (deliberately freshly allocated by
	// Engine.Parallel — it escapes into Results) and PriceLevels'
	// goroutine fork/join (pricing runs inline here).
	b.Run("deferred-buckets", func(b *testing.B) {
		g := workload.Star(12, workload.DefaultConfig())
		var recs []dp.PairRec
		if _, _, err := core.Solve(g, core.Options{OnEmit: func(S1, S2 bitset.Set) {
			recs = append(recs, dp.PairRec{S1: S1, S2: S2})
		}}); err != nil {
			b.Fatal(err)
		}
		const workers = 3
		n := g.NumRels()
		e, bld := dp.NewRun(nil, g, nil)
		bld.Init()
		pr := dp.NewParRun(bld, workers)
		wp := e.Stats.WorkerPairs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Reset(n)
			e.Stats.Workers = workers
			e.Stats.WorkerPairs = wp
			bld.Init()
			for _, wb := range pr.Bs {
				wb.ResetPairs()
			}
			pr.Par.StartLevel()
			for j, r := range recs {
				wb := pr.Bs[j%workers]
				if wb.Engine.EmitDeferred(r.S1, r.S2) {
					wb.DeferPair(r.S1, r.S2)
				}
			}
			pr.Par.FinishLevel(memo.LevelCollected)
			buckets := pr.Buckets(n)
			for s := 2; s < len(buckets); s++ {
				if len(buckets[s]) == 0 {
					continue
				}
				pr.Par.StartLevel()
				for j, r := range buckets[s] {
					pr.Bs[j%workers].Engine.BuildDeferred(r.S1, r.S2)
				}
				pr.Par.FinishLevel(memo.LevelPriced)
			}
			if e.Entries() == 0 {
				b.Fatal("no memo entries after pricing")
			}
		}
	})
}

// BenchmarkParallel measures the tentpole of the parallel-enumeration
// work: cold-cache exact planning of the hardest §4 shapes, serial
// engine versus 4 memo workers. CI diffs clique12 against the PR base
// with benchstat (non-gating). On a single-core runner the parallel
// variant shows only the fork/join + merge overhead; the speedup needs
// real cores.
func BenchmarkParallel(b *testing.B) {
	ctx := context.Background()
	cfg := workload.DefaultConfig()
	cases := []struct {
		name string
		g    *Graph
		alg  Algorithm
	}{
		{"clique12", workload.Clique(12, cfg), SolverAuto},
		{"star12", workload.Star(12, cfg), SolverAuto},
	}
	for _, c := range cases {
		for _, par := range []int{1, 4} {
			name := fmt.Sprintf("%s/serial", c.name)
			if par > 1 {
				name = fmt.Sprintf("%s/parallel%d", c.name, par)
			}
			b.Run(name, func(b *testing.B) {
				p := NewPlanner(WithAlgorithm(c.alg), WithPlanCacheSize(0), WithParallelism(par))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.PlanGraph(ctx, c.g); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkNeighborhood isolates the DPhyp neighborhood micro-opt: the
// per-csg N(S,X) computation with and without the incremental
// simple-neighbor union and the reusable candidate buffer, on the
// paper's Figure 2 hypergraph (complex edges force the candidate
// path) and on a plain star.
func BenchmarkNeighborhood(b *testing.B) {
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"fig2-hyper", hypergraph.PaperExampleGraph()},
		{"star12", workload.Star(12, workload.DefaultConfig())},
	}
	for _, gc := range graphs {
		g := gc.g
		g.Freeze()
		n := g.NumRels()
		var sets []bitset.Set
		for v := 0; v < n; v++ {
			sets = append(sets, bitset.Single(v))
			for _, w := range []int{2, 3} {
				if v+w <= n {
					// Multi-node csgs reach the hypernode-candidate path
					// (and its buffer) on the hypergraph case.
					sets = append(sets, bitset.Range(v, v+w))
				}
			}
		}
		b.Run(gc.name+"/baseline", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, S := range sets {
					_ = g.Neighborhood(S, bitset.Below(S.Min()))
				}
			}
		})
		b.Run(gc.name+"/cached", func(b *testing.B) {
			b.ReportAllocs()
			var sc hypergraph.NeighborScratch
			sus := make([]bitset.Set, len(sets))
			for i, S := range sets {
				sus[i] = g.SimpleNeighborUnion(S)
			}
			for i := 0; i < b.N; i++ {
				for j, S := range sets {
					_ = g.NeighborhoodWith(S, bitset.Below(S.Min()), sus[j], &sc)
				}
			}
		})
	}
}
