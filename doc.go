// Package repro is a from-scratch reproduction of "Dynamic Programming
// Strikes Back" (Guido Moerkotte and Thomas Neumann, SIGMOD 2008): the
// DPhyp join enumeration algorithm for query hypergraphs, its baselines
// DPsize, DPsub, and DPccp, and the SES/TES conflict analysis that
// reduces the ordering of outer joins, semijoins, antijoins, nestjoins,
// and dependent joins to hypergraph join ordering.
//
// # Quick start
//
// Inner-join queries are described as hypergraphs: relations with
// cardinalities, and (hyper)edges with selectivities.
//
//	q := repro.NewQuery()
//	o := q.Relation("orders", 1_500_000)
//	c := q.Relation("customer", 150_000)
//	n := q.Relation("nation", 25)
//	q.Join(o, c, 1.0/150_000)
//	q.Join(c, n, 1.0/25)
//	res, err := q.Optimize()
//	// res.Plan is the optimal bushy, cross-product-free join tree.
//
// Complex predicates spanning more than two relations become hyperedges
// (§2.1: R1.a + R2.b + R3.c = R4.d + R5.e + R6.f):
//
//	q.ComplexJoin([]repro.RelID{r1, r2, r3}, []repro.RelID{r4, r5, r6}, 0.05)
//
// Queries with non-inner joins are given as an initial operator tree
// (§5.3); the library computes TESs and derives the conflict-covering
// hyperedges of §5.7 automatically:
//
//	t := repro.NewTreeQuery()
//	f := t.Table("fact", 1_000_000)
//	d1 := t.Table("dim1", 1000)
//	d2 := t.Table("dim2", 500)
//	expr := f.Join(d1, 0.001).AntiJoin(d2, 0.002)
//	res, err := t.Optimize(expr)
//
// # Algorithms
//
// Five enumeration strategies share one plan-construction core:
//
//   - DPhyp (the paper's contribution, default): enumerates exactly the
//     csg-cmp-pairs of the hypergraph.
//   - DPsize (Fig. 1): Selinger-style size-driven DP with hyperedge-
//     capable connectivity tests.
//   - DPsub: subset-driven DP with Vance–Maier subset enumeration.
//   - DPccp (VLDB 2006): the simple-graph special case of DPhyp.
//   - TopDown: naive memoization, the §1 competitor.
//
// All produce cost-optimal plans over the same search space; they differ
// only in how much work they waste on failing candidate tests — the
// subject of the paper's evaluation, reproduced by cmd/dpbench and
// bench_test.go.
package repro
