// Package repro is a from-scratch reproduction of "Dynamic Programming
// Strikes Back" (Guido Moerkotte and Thomas Neumann, SIGMOD 2008): the
// DPhyp join enumeration algorithm for query hypergraphs, its baselines
// DPsize, DPsub, and DPccp, and the SES/TES conflict analysis that
// reduces the ordering of outer joins, semijoins, antijoins, nestjoins,
// and dependent joins to hypergraph join ordering.
//
// # Quick start
//
// The central type is Planner: a long-lived, concurrency-safe planning
// session constructed once with a cost model, conflict rule, and policy,
// and then shared by any number of goroutines.
//
//	planner := repro.NewPlanner()
//
//	q := repro.NewQuery()
//	o := q.Relation("orders", 1_500_000)
//	c := q.Relation("customer", 150_000)
//	n := q.Relation("nation", 25)
//	q.Join(o, c, 1.0/150_000)
//	q.Join(c, n, 1.0/25)
//	res, err := planner.Plan(ctx, q)
//	// res.Plan is the optimal bushy, cross-product-free join tree.
//
// Complex predicates spanning more than two relations become hyperedges
// (§2.1: R1.a + R2.b + R3.c = R4.d + R5.e + R6.f):
//
//	q.ComplexJoin([]repro.RelID{r1, r2, r3}, []repro.RelID{r4, r5, r6}, 0.05)
//
// Queries with non-inner joins are given as an initial operator tree
// (§5.3); the library computes TESs and derives the conflict-covering
// hyperedges of §5.7 automatically:
//
//	t := repro.NewTreeQuery()
//	f := t.Table("fact", 1_000_000)
//	d1 := t.Table("dim1", 1000)
//	d2 := t.Table("dim2", 500)
//	expr := f.Join(d1, 0.001).AntiJoin(d2, 0.002)
//	res, err := planner.PlanTree(ctx, t, expr)
//
// Raw hypergraphs (PlanGraph), JSON documents (PlanJSON), and query
// batches (PlanBatch) have their own entry points on Planner.
//
// # Cancellation and budgets
//
// Every Plan* method takes a context.Context that is polled inside the
// enumeration loops of all algorithms, so a deadline or cancellation
// interrupts even the Θ(3^n) inner loops of DPsub mid-flight and the
// call returns ctx.Err().
//
// WithBudget caps enumeration effort by csg-cmp-pairs (the §2.2
// yardstick) and/or costed plans. When the budget trips, the planner
// adaptively degrades: it discards the partial exact enumeration and
// plans with Greedy (GOO) instead, which needs only O(n³) pair
// inspections and always produces a valid — though not necessarily
// optimal — plan. The downgrade is recorded in Stats.BudgetExhausted
// and Stats.FallbackGreedy, and Result.Algorithm reports Greedy. With
// WithoutGreedyFallback the trip is instead a hard error wrapping
// ErrBudgetExhausted. Huge or adversarial queries therefore degrade
// gracefully instead of hanging a server.
//
// # Plan cache and scratch reuse
//
// A Planner owns a bounded LRU plan cache keyed by a canonical graph
// fingerprint (relation cardinalities and free sets; every edge's
// hypernodes, selectivity, and operator, in stored order) combined with
// the planning configuration (algorithm, cost model, conflict rule,
// edge mode). Repeated traffic over the same query shapes skips
// enumeration entirely: hits return a deep copy of the cached plan with
// the original run's Stats and Stats.CacheHit set.
//
// Invalidation is structural: there is nothing to invalidate
// explicitly, because any change to the graph or the configuration
// changes the key and simply misses, while stale entries age out of the
// LRU. Two caveats follow from the key definition: relation names,
// edge labels, and payloads are not part of the fingerprint (they do
// not influence plan shape), and runs with observation hooks
// (WithTrace, generate-and-test filters) bypass the cache entirely.
// WithPlanCacheSize sizes the cache; 0 disables it.
//
// Internally, memo engines — open-addressing DP table, plan-node arena,
// and builder scratch — are recycled through a per-planner pool, so
// steady traffic reaches a steady state in which an enumeration run
// performs no table or plan-node allocations at all (see Architecture).
// Stats.ArenaReused reports per run whether recycled storage was used;
// PlannerMetrics.ArenaReuses, PairsEmitted, and MemoPeakEntries
// aggregate the engine's work across the session.
//
// Planner.Metrics exposes the session's cumulative counters — plans
// served, cache hits/misses/evictions, current cache occupancy, budget
// fallbacks, failures, and per-algorithm SolverAuto routing counts — so
// cache effectiveness and routing behavior are observable in
// production, not just in tests.
//
// # Architecture
//
// Join enumeration is split into three layers, mirroring the paper's
// separation of enumeration order from plan construction:
//
//   - Enumerators (internal/core, internal/dpsize, internal/dpsub,
//     internal/dpccp, internal/topdown, internal/goo) are pure: they
//     own nothing but their traversal order. Each run seeds base
//     relations with EmitBase, proposes csg-cmp-pairs with EmitPair,
//     and uses Contains/Step/Aborted for its connectivity tests and
//     cancellation polling. No solver carries its own memo map.
//   - The memo engine (internal/memo) owns storage and accounting: an
//     open-addressing hash table specialized for the uint64 relation-set
//     keys (Fibonacci hashing, linear probing, power-of-two growth), a
//     flat plan-node arena addressed by indices instead of pointers
//     (improved entries overwrite their slot in place; nothing is
//     heap-allocated per candidate plan), budget enforcement for the
//     §2.2 effort yardsticks, context-cancellation polling, and the
//     counting and observation hooks. Engines are pooled and reused
//     across planning calls.
//   - The plan builder (internal/dp) is the engine's semantic backend:
//     for every admitted pair it recovers the operator from the
//     connecting hyperedges (§5.4), applies dependency constraints
//     (§5.6) and the optional generate-and-test filter (§5.8),
//     estimates cardinalities, prices candidates under the configured
//     cost model, and finally materializes the winning tree out of the
//     arena into the pointer-based PlanNode form callers consume.
//
// The split is what makes the evaluation's comparisons meaningful: all
// six strategies pay identical per-pair construction costs, so measured
// differences are purely the enumeration overhead the paper studies —
// and it is what allows enumeration to shard across cores (see
// Parallel planning) and arenas to be reused across served requests.
//
// # Parallel planning
//
// WithParallelism(n) lets one exact enumeration use up to n memo
// workers (default GOMAXPROCS; 1 pins the serial engine). The engine
// parallelizes level-synchronously: workers claim work units
// dynamically off an atomic counter, build into private memo views
// (per-worker open-addressing table + arena over the read-only merged
// levels), and barriers fold the per-worker winners back into the main
// memo. What is partitioned differs per solver:
//
//   - DPsize and DPsub partition their (*)-test loops directly — a
//     plan-size level for DPsize, Gosper-enumerated same-size subset
//     chunks for DPsub — and price pairs in place within the level.
//   - DPhyp and DPccp partition the connected-subgraph expansion
//     itself across start vertices: each worker runs the full
//     csg-cmp-pair expansion for the start vertices it claims, using
//     structural connectivity (hypergraph reachability, cached per
//     worker) as the subgraph-membership oracle in place of the
//     serial DP table — valid because in these modes every admitted
//     pair stores a plan, so "present in the serial table" and
//     "connected" coincide. Emitted pairs are recorded, not priced; a
//     single barrier collects them and a level-parallel pricing sweep
//     (ascending result-set size) builds the plans.
//   - TopDown partitions its memoized partition search per level,
//     descending: the sets discovered at size s+1 are frozen at a
//     barrier, then workers claim fixed chunks of every size-(s+1)
//     set's Vance–Maier partition order, testing splits and recording
//     newly reached connected subsets and pairs. Discovery flows
//     strictly from supersets to subsets, so the level order
//     reproduces the serial explored space exactly; pricing then runs
//     level-parallel as above.
//   - Greedy remains serial. The router still sends parallel clique
//     workloads to DPsub rather than parallel TopDown — a measured
//     choice, not a workaround: DPsub prices in place during its level
//     sweep while TopDown pays a separate collect-then-price pass over
//     every pair, and on the reference clique workload DPsub finishes
//     in ≈0.93× of parallel TopDown's time.
//
// Parallelism never changes the answer. Equal-cost ties are broken
// order-independently (the lexicographically lowest (left, right)
// relation-set split wins, in the serial engine too), so the winning
// plan is a pure function of the candidate set and plans are
// byte-identical across worker counts — the determinism tests assert
// exactly that over hundreds of random graphs, and the plan cache
// therefore ignores the parallelism knob. Budgets bound the *sum* of
// work across workers through shared atomic counters, cancellation is
// polled by every worker, and either trip stops all workers within one
// poll interval, after which the usual Greedy fallback applies.
//
// Small queries (under ParallelMinRels relations) always plan
// serially: an exact enumeration at that size costs tens of
// microseconds and fork/join would only add overhead. Traced and
// observed runs (WithTrace, OnEmit, generate-and-test filters) are
// also pinned serial. Graphs with dependent relations pass through a
// cost-free admissibility precheck (dp.ParallelSafe): exactly one
// dependent relation whose incident edges are all inner joins is
// provably orientation-safe and plans parallel; more than one
// dependent relation, or a dependent relation under a non-inner
// operator, falls back to serial, where the builder's full
// §5.6 dependency analysis applies. TopDown's parallel mode also
// requires fewer than 63 relations (its packed partition indices),
// beyond which it plans serially. Stats.Workers and Stats.WorkerPairs
// record the fan-out per run; PlannerMetrics.ParallelRuns and
// ParallelPairs (exported at /metrics as planner_parallel_runs_total
// and planner_parallel_pairs_total) aggregate it per session.
//
// # Benchmarks
//
// Checked-in BENCH_PR*.json files record cmd/dpbench shape sweeps
// (SolverAuto, JSON mode) at the PR that produced them. Medians from
// parallel enumeration are only comparable between files recorded on
// the same core budget, so the hardware context matters — since PR 9
// the files embed it themselves (num_cpu, gomaxprocs fields); for the
// earlier files it is recorded here:
//
//   - BENCH_PR3.json — n≤12, reps 3, serial; 1-CPU container.
//   - BENCH_PR4.json — n≤12, reps 3, serial; 1-CPU container.
//   - BENCH_PR5.json — n≤14, reps 3, parallel ∈ {1,4}; 1-CPU
//     container, so the 4-worker cells record scheduling overhead
//     (~2%) rather than a speedup.
//   - BENCH_PR7.json — referenced by PR 7's changelog entry but never
//     committed; the gap in the series is real and this note is its
//     record. Use BENCH_PR8.json as the post-widening baseline.
//   - BENCH_PR8.json — n≤100, reps 3, parallel ∈ {1,4}; 2-CPU
//     container.
//   - BENCH_PR9.json — parallel ∈ {1,4} with the parallel spines of
//     this PR; 2-CPU container (num_cpu embedded).
//
// # Invariants
//
// Three contracts underpin the performance and liveness claims above,
// and all three are machine-checked by the repo's own static analysis
// suite (internal/lint, driven by cmd/dplint and gating in CI):
//
//   - Hot paths do not allocate. Functions on the per-pair path —
//     memo Step/EmitPair/Lookup/Improve, the solvers' enumeration
//     loops, the plan builder's BuildPair — are annotated //dp:hotpath;
//     the hotpathalloc analyzer walks their static call closure and
//     rejects slice/map literals, make/new, closure captures, fmt
//     calls, interface boxing, and appends that are not visibly backed
//     by a presized arena. Deliberate slow paths (table growth, abort,
//     trace capture) are annotated //dp:coldpath <reason>, which stops
//     the walk and requires a written justification.
//   - Emission loops poll for cancellation. Every loop in a solver or
//     engine package that emits csg-cmp-pairs must call Step or
//     Aborted each iteration (directly, or through a callee that polls
//     at entry); the ctxpoll analyzer enforces it, which is what makes
//     the "a deadline interrupts even the Θ(3ⁿ) inner loops" promise
//     above a checked property rather than a convention.
//   - Shared counters are atomic. The run-wide budget counters and the
//     planner/service metrics are annotated //dp:atomic; the
//     atomicbudget analyzer rejects any access that is not a
//     sync/atomic method call or an &field argument to a sync/atomic
//     function — the race class the GOMAXPROCS matrix in CI hunts
//     dynamically is also excluded statically.
//
// A fourth analyzer, bitsetwidth, quarantines the knowledge of
// bitset.Set's representation inside internal/bitset itself. Since the
// multi-word widening (a single-word fast path plus a []uint64 tail
// beyond 64 relations) the guarded invariant is opacity: no code
// elsewhere may convert Set to or from integers, apply word operators
// or ordering comparisons, use == / != (Set is deliberately not
// comparable — Equal/IsEmpty/Less are the sanctioned forms), or key a
// map by Set (Set.Key() exists for that). That one-package quarantine
// is what let the widening land without touching solver logic.
// Suppressions use //nolint:<analyzer> // <reason> with the reason
// mandatory; per-analyzer counts are pinned in LINT_BASELINE.json.
//
// # Serving
//
// The repro/service package and the cmd/dpserved daemon put a Planner
// behind an HTTP JSON API: POST /plan and POST /batch accept the same
// QueryJSON documents as PlanJSON (plus per-request algorithm, cost
// model, budget, and timeout overrides), GET /healthz reports liveness
// and drain state, and GET /metrics exports the Planner counters plus
// server-side series (latency histogram, queue depth, coalescing) in
// Prometheus text format.
//
// The server adds what a bare Planner cannot provide: admission
// control (a bounded worker pool plus a bounded queue — overload sheds
// with 429 instead of collapsing), per-request deadlines (504, enforced
// through the same context cancellation the solvers poll), coalescing
// of identical in-flight queries keyed by the graph fingerprint (a
// thundering herd of one query shape costs one enumeration), and
// graceful drain on shutdown. A curl-based quickstart:
//
//	go run ./cmd/dpserved -addr :8080 &
//	go run ./cmd/querygen -family star -n 8 | jq '{query: .}' \
//	    | curl -sS -d @- localhost:8080/plan | jq '.cost, .algorithm'
//	curl -sS localhost:8080/metrics | grep planner_
//	kill -TERM %1    # drains in-flight plans, then exits
//
// cmd/loadgen replays querygen-style workloads against a running
// server at a target QPS and reports latency percentiles; its
// -check-metrics flag additionally validates the /metrics exposition
// and the per-shape latency families, the observability half of the
// serving smoke test.
//
// # Observability
//
// The internal/obs package is the planning observability layer; it
// imports only the standard library and sits below the memo engine, so
// every tier threads the same types without cycles. Three surfaces:
//
// Explain traces. WithExplain(t *PlanTrace) attaches a phase/span
// recorder to one planning call: route, cache_lookup, enumerate (or
// one iterdp_round span per compression round plus the final enumerate
// and recost), fallback, and materialize, each with wall time, pairs
// emitted, memo occupancy, and worker count. The completed trace is
// returned as Stats.Trace; over HTTP, POST /plan?explain=1 renders it
// as the response's trace field. Tracing observes phase boundaries
// only, from the orchestrating goroutine: unlike WithTrace it neither
// forces the serial engine nor bypasses the plan cache (a traced cache
// hit yields a trace of just the lookup). A Trace is a fixed-capacity
// value and every method is nil-receiver-safe — untraced runs pay one
// pointer test per phase boundary, traced runs allocate nothing, and
// the span hooks are //dp:hotpath-clean.
//
// Dimensional metrics. Every successful Planner call — cache hits
// included — is observed into a shape × algorithm × relation-count-
// bucket latency histogram registry (Planner.PlanObs), exported at
// /metrics as the planner_plan_seconds family. The registry snapshots
// into a persistent planning-cost history (service.Config.HistoryPath;
// dpserved -history-file): loaded at startup as the baseline, merged
// with live counts, saved periodically and at shutdown, so per-shape
// p50/p99 planning cost survives restarts — the input the planned
// budget router will consume.
//
// Debug surfaces. GET /debug/plans is a bounded ring of the slowest
// plans seen (fingerprint, shape, algorithm, duration, and the trace
// when the request was traced or sampled via -trace-sample); GET
// /debug/history serves the merged cost history. dpserved -debug-addr
// opens a second listener with net/http/pprof and GET /debug/runtime;
// -slow-plan logs a warning with phase totals for requests over the
// threshold. Service logging is structured (log/slog) with a request
// id shared between the access and plan records.
//
// # Compatibility wrappers
//
// The historical one-shot entry points remain and are thin wrappers
// over a lazily-initialized process-wide session (see DefaultPlanner):
//
//   - Query.Optimize(opts...) ≡ DefaultPlanner().Plan(context.Background(), q, opts...)
//   - TreeQuery.Optimize(root, opts...) ≡ DefaultPlanner().PlanTree(...)
//   - OptimizeGraph(g, opts...) ≡ DefaultPlanner().PlanGraph(...)
//   - OptimizeJSON(doc, opts...) ≡ DefaultPlanner().PlanJSON(...)
//
// They keep compiling and return the same plans as before; they now
// additionally benefit from the default planner's cache and pooling. A
// Query's §2.1 connectivity repair runs exactly once, on its first
// planning call, so repeated Optimize calls are idempotent.
//
// # Algorithms
//
// Six enumeration strategies share one memo engine and plan-construction
// backend (see Architecture):
//
//   - DPhyp (the paper's contribution, default): enumerates exactly the
//     csg-cmp-pairs of the hypergraph.
//   - DPsize (Fig. 1): Selinger-style size-driven DP with hyperedge-
//     capable connectivity tests.
//   - DPsub: subset-driven DP with Vance–Maier subset enumeration.
//   - DPccp (VLDB 2006): the simple-graph special case of DPhyp.
//   - TopDown: naive memoization, the §1 competitor.
//   - Greedy: GOO, the heuristic used beyond exact reach and as the
//     budget fallback.
//
// The exact algorithms produce cost-optimal plans over the same search
// space; they differ only in how much work they waste on failing
// candidate tests — the subject of the paper's evaluation, reproduced
// by cmd/dpbench and bench_test.go. A cross-solver differential suite
// (internal/oracle) locks this equivalence down: every solver under
// every cost model is fuzzed against a brute-force bushy-plan oracle.
//
// # Adaptive solver selection
//
// The paper's central empirical finding is that the best enumerator
// depends on the query's shape. WithAlgorithm(SolverAuto) acts on it:
// before enumeration the planner classifies the hypergraph's topology
// (internal/shape — chain, cycle, star, clique, grid, or mixed, in
// O(edges) and invariant under relation relabeling) and routes per the
// §4 crossover data:
//
//   - hyperedges present → DPhyp (Figs. 5/6: lowest on every hyperedge
//     workload)
//   - star → DPhyp (Fig. 7: DPhyp ≪ DPsub < DPsize)
//   - chain → DPsize, cycle → DPccp (all exact solvers are close on
//     sparse simple shapes; these have the smallest constants)
//   - clique → TopDown (every subset is connected, so the failing
//     connectivity tests that dominate elsewhere vanish)
//   - grid/mixed → DPhyp (the overall winner)
//   - beyond per-shape size cutoffs → Greedy up front (cliques emit
//     Θ(3ⁿ) csg-cmp-pairs, stars Θ(n·2ⁿ); exact enumeration leaves the
//     interactive regime in the mid-teens)
//   - beyond 64 relations → IterDP, the large-query simplification
//     tier (see "Large queries" below)
//
// The decision is observable: Stats.Shape and Stats.RoutedAlgorithm
// record what the router saw and picked, and Result.Algorithm reports
// what actually ran (Greedy after a budget trip, with the routed
// algorithm still in Stats.RoutedAlgorithm). Routing never changes the
// returned plan's cost among the exact solvers — they explore the same
// bushy cross-product-free space — so SolverAuto trades only time,
// never quality, until a size cutoff or budget degrades to Greedy.
//
// # SLOs and degradation
//
// Topology routing picks the fastest exact enumerator; WithPlanBudget
// adds the other axis the serving tier needs — how long planning is
// allowed to take at all. A budgeted SolverAuto call walks a
// three-rung degradation ladder, dearest plan quality first: full
// exact enumeration (rung "exact"), the iterative-DP tier ("iterdp" —
// exact subproblems, heuristic composition), and GOO ("greedy"), and
// runs the highest rung predicted to finish inside the budget.
// Predictions come from the warmest of three sources: the live
// shape × algorithm × n latency registry once a series has enough
// samples, a baseline obs.History installed via SetBaselineHistory
// (typically the persisted history a server reloads at startup, so a
// restarted process routes on yesterday's measurements), and finally
// static tables derived from the paper's §4 csg-cmp-pair counts — a
// cold router orders the rungs deterministically before it has seen a
// single query. Mis-predictions self-correct: the observed latency of
// every budgeted call lands back in the registry.
//
// The budget is advisory for routing, not a hard cutoff — it chooses
// an algorithm, it does not cancel one that overruns; combine with a
// context deadline for enforcement. Every budgeted call is accounted:
// Stats.SLORung and Stats.SLODegraded say how much quality the call
// got and whether routing moved it down-ladder, Stats.SLOMet records
// the outcome against the budget, and PlannerMetrics (exported at
// /metrics as planner_slo_met_total, planner_slo_missed_total, and
// planner_slo_degraded_total) aggregate per session. Degradation is
// thus always *marked* — a greedy plan produced under pressure is
// distinguishable from a greedy plan the topology earned.
//
// The serving layer builds on this per-call contract (see the
// repro/service docs): an overload degradation ladder tightens
// budgets and forces greedy before shedding, plan-cache warm-start
// snapshots keep restarts from stampeding the solvers, and the
// internal/chaos fault-injection harness (arm-gated, one atomic load
// when disarmed — enforced by the chaosgate analyzer) drives the
// degrade-and-recover cycle in tests. cmd/dpbench -regret closes the
// quality side: it reports greedy cost ÷ exact-optimal cost per
// shape × cost model, so the price of each rung is data rather than
// folklore.
//
// # Large queries
//
// The historical 64-relation ceiling — bitset.Set was one machine word
// — is gone: Set is multi-word (up to bitset.MaxElems = 1024 elements)
// behind the same value-semantics API, with the single-word fast path
// intact, so every solver, the memo table, and the wire format accept
// queries of hundreds of relations. What remains exponential is exact
// enumeration itself, so above 64 relations SolverAuto routes to a
// dedicated tier, IterDP (internal/iterdp): iterative dynamic
// programming by graph simplification. The tier greedily merges the
// cheapest-joined neighboring vertices into clusters of at most
// WithClusterSize relations (default DefaultClusterSize), solves each
// cluster EXACTLY with the existing engine, collapses it to a compound
// vertex carrying its subplan's cardinality, and repeats until the
// compressed graph fits one final exact enumeration; the stitched plan
// is then re-costed bottom-up against the original graph.
//
// The optimality caveat is inherent: the plan is optimal within every
// exactly-solved subproblem but only heuristically good across cluster
// boundaries — the greedy clustering decides which relations may never
// be interleaved. That is the iterative-DP trade; the alternative at
// 100–1000 relations is a purely greedy plan with no optimal
// substructure at all. The differential suite pins the contract: every
// subproblem the tier hands to the engine matches a brute-force oracle
// optimum, plans are deterministic across serial, parallel, and cached
// runs, and Stats.Subproblems/Stats.Rounds expose the tier's work.
// Graphs the tier cannot represent (non-inner operators, dependent
// relations, hyperedge-only connectivity) degrade through the standard
// budget-exhaustion path to the Greedy fallback. The tier is also
// directly selectable with WithAlgorithm(IterDP).
//
// # Cost models
//
// Plans are priced through the pluggable CostModel interface
// (internal/cost.Model): JoinCost receives the operator, the input
// costs and cardinalities, and the estimated output cardinality, and
// returns the total cost of the combined plan. Any implementation that
// is monotone in the input costs (Bellman admissibility) can be passed
// via WithCostModel. Provided models:
//
//   - Cout (default): sum of intermediate-result cardinalities, the
//     standard model of the join-ordering literature.
//   - Cmm: per-operator main-memory weights (builds dearer than probes,
//     semijoins cheap, outer joins pay for padding).
//   - NestedLoop, Hash: classical single-implementation models.
//   - Physical: prices hash join, sort-merge join, and index
//     nested-loop per node and keeps the cheapest; the winning
//     implementation is recorded in PlanNode.Phys, so the optimized
//     tree doubles as a physical plan. Custom models can do the same by
//     implementing cost.PhysicalModel (ChooseJoin must return the cost
//     JoinCost reports).
package repro
