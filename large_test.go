package repro

import (
	"context"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/workload"
)

// largeShapes are the acceptance graphs for the large-query tier: the
// 100-relation chain, star, and grid of the ISSUE plus a cycle, all
// beyond the historical single-word ceiling.
func largeShapes() []struct {
	name string
	g    *Graph
} {
	cfg := workload.LargeConfig()
	return []struct {
		name string
		g    *Graph
	}{
		{"chain100", workload.Chain(100, cfg)},
		{"star100", workload.Star(100, cfg)},
		{"grid10x10", workload.Grid(10, 10, cfg)},
		{"cycle120", workload.Cycle(120, cfg)},
	}
}

// TestLargeQueryAutoRoutesToIterDP: queries beyond 64 relations route
// to the IterDP simplification tier under SolverAuto and plan
// end-to-end through the public Planner API.
func TestLargeQueryAutoRoutesToIterDP(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
	ctx := context.Background()
	for _, c := range largeShapes() {
		res, err := p.PlanGraph(ctx, c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Algorithm != IterDP {
			t.Errorf("%s: Result.Algorithm = %v, want IterDP", c.name, res.Algorithm)
		}
		if res.Stats.RoutedAlgorithm != IterDP.String() {
			t.Errorf("%s: routed to %q, want %q", c.name, res.Stats.RoutedAlgorithm, IterDP)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Errorf("%s: invalid plan: %v", c.name, err)
		}
		if !res.Plan.Rels.Equal(c.g.AllNodes()) {
			t.Errorf("%s: plan covers %v, want %v", c.name, res.Plan.Rels, c.g.AllNodes())
		}
		if res.Plan.Relations() != c.g.NumRels() {
			t.Errorf("%s: plan has %d relations, want %d", c.name, res.Plan.Relations(), c.g.NumRels())
		}
		if res.Stats.Subproblems == 0 || res.Stats.Rounds == 0 {
			t.Errorf("%s: tier accounting empty: subproblems=%d rounds=%d",
				c.name, res.Stats.Subproblems, res.Stats.Rounds)
		}
		if res.Stats.FallbackGreedy {
			t.Errorf("%s: unexpectedly degraded to Greedy", c.name)
		}
	}
}

// TestLargeQuerySerialParallelCachedIdentical: the same large query
// planned serially, with parallel workers enabled, and served from the
// plan cache must produce byte-identical plans — the tier's clustering
// and the engine's tie-breaks are deterministic.
func TestLargeQuerySerialParallelCachedIdentical(t *testing.T) {
	ctx := context.Background()
	for _, c := range largeShapes() {
		serial := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
		parallel := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0), WithParallelism(8))
		cached := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(64))

		s, err := serial.PlanGraph(ctx, c.g)
		if err != nil {
			t.Fatalf("%s serial: %v", c.name, err)
		}
		par, err := parallel.PlanGraph(ctx, c.g)
		if err != nil {
			t.Fatalf("%s parallel: %v", c.name, err)
		}
		warm, err := cached.PlanGraph(ctx, c.g)
		if err != nil {
			t.Fatalf("%s cache warm: %v", c.name, err)
		}
		hit, err := cached.PlanGraph(ctx, c.g)
		if err != nil {
			t.Fatalf("%s cache hit: %v", c.name, err)
		}
		if !hit.Stats.CacheHit {
			t.Errorf("%s: second cached plan was not a cache hit", c.name)
		}
		want := s.Plan.Compact()
		for _, alt := range []struct {
			mode string
			got  *Result
		}{{"parallel", par}, {"cache-warm", warm}, {"cache-hit", hit}} {
			if got := alt.got.Plan.Compact(); got != want {
				t.Errorf("%s: %s plan differs from serial:\n%s\nvs\n%s", c.name, alt.mode, got, want)
			}
			if !alt.got.Plan.Equal(s.Plan) {
				t.Errorf("%s: %s plan not Equal to serial", c.name, alt.mode)
			}
		}
	}
}

// TestLargeQueryUnsupportedFallsBackToGreedy: a >64-relation graph the
// simplification tier cannot handle (a non-inner operator) degrades to
// the Greedy fallback through the budget sentinel instead of failing.
func TestLargeQueryUnsupportedFallsBackToGreedy(t *testing.T) {
	g := hypergraph.New()
	for i := 0; i < 70; i++ {
		g.AddRelation("", 1000)
	}
	for i := 0; i+1 < 70; i++ {
		g.AddSimpleEdge(i, i+1, 0.001)
	}
	g.Freeze()

	// The all-inner version must NOT fall back.
	p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
	res, err := p.PlanGraph(context.Background(), g)
	if err != nil {
		t.Fatalf("inner-join chain: %v", err)
	}
	if res.Stats.FallbackGreedy || res.Algorithm != IterDP {
		t.Fatalf("inner-join chain: algorithm %v fallback=%v, want IterDP without fallback",
			res.Algorithm, res.Stats.FallbackGreedy)
	}

	// With the fallback disabled the sentinel must surface as an error.
	strict := NewPlanner(WithAlgorithm(IterDP), WithPlanCacheSize(0), WithoutGreedyFallback())
	edgeless := hypergraph.New()
	for i := 0; i < 70; i++ {
		edgeless.AddRelation("", 1000)
	}
	edgeless.Freeze()
	if _, err := strict.PlanGraph(context.Background(), edgeless); err == nil {
		t.Fatalf("edgeless 70-relation graph: want stall error without fallback, got nil")
	}
}

// TestLargeQueryExplicitIterDP: the tier is also directly selectable,
// and WithClusterSize shapes its subproblems.
func TestLargeQueryExplicitIterDP(t *testing.T) {
	g := workload.Chain(100, workload.LargeConfig())
	p := NewPlanner(WithAlgorithm(IterDP), WithPlanCacheSize(0), WithClusterSize(8))
	res, err := p.PlanGraph(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != IterDP {
		t.Fatalf("Result.Algorithm = %v, want IterDP", res.Algorithm)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Rels.Equal(g.AllNodes()) {
		t.Fatalf("plan covers %v, want %v", res.Plan.Rels, g.AllNodes())
	}
}
