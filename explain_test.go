package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestExplainTraceIterDPCoverage is the acceptance check for the
// explain surface: planning a 100-relation chain with an explain trace
// attached must yield iterdp round spans plus enumeration spans that
// account for at least 90% of the reported wall time.
func TestExplainTraceIterDPCoverage(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
	g := workload.Chain(100, workload.LargeConfig())
	tr := obs.NewTrace()
	res, err := p.PlanGraph(context.Background(), g, WithExplain(tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Trace != tr {
		t.Fatal("Stats.Trace does not carry the attached trace")
	}
	if tr.Total <= 0 || tr.Len() == 0 {
		t.Fatalf("empty trace: total=%v spans=%d", tr.Total, tr.Len())
	}
	covered := tr.PhaseTotal(obs.PhaseCluster) +
		tr.PhaseTotal(obs.PhaseEnumerate) +
		tr.PhaseTotal(obs.PhaseRecost)
	if float64(covered) < 0.9*float64(tr.Total) {
		t.Fatalf("iterdp rounds + enumeration cover %v of %v (%.0f%%), want >= 90%%\nspans: %+v",
			covered, tr.Total, 100*float64(covered)/float64(tr.Total), tr.Spans())
	}
	// Rounds are tagged and depth-0 spans partition the call: no span
	// may nest under another planner phase in the iterdp flow.
	rounds := 0
	for _, s := range tr.Spans() {
		if s.Phase == obs.PhaseCluster {
			if s.Round < 0 {
				t.Errorf("cluster span without round tag: %+v", s)
			}
			rounds++
		}
	}
	if rounds != res.Stats.Rounds {
		t.Errorf("trace has %d round spans, stats report %d rounds", rounds, res.Stats.Rounds)
	}
}

// TestExplainTraceExactSolver: a small query through a direct exact
// solver records route-free enumerate + nested materialize spans, and
// depth-0 spans sum to ≈ Total.
func TestExplainTraceExactSolver(t *testing.T) {
	p := NewPlanner(WithAlgorithm(DPhyp), WithPlanCacheSize(0))
	g := workload.Chain(12, workload.DefaultConfig())
	tr := obs.NewTrace()
	if _, err := p.PlanGraph(context.Background(), g, WithExplain(tr)); err != nil {
		t.Fatal(err)
	}
	var depth0 time.Duration
	sawEnum, sawMat := false, false
	for _, s := range tr.Spans() {
		if s.Depth == 0 {
			depth0 += s.Dur
		}
		switch s.Phase {
		case obs.PhaseEnumerate:
			sawEnum = true
			if s.Pairs == 0 || s.MemoEntries == 0 {
				t.Errorf("enumerate span missing work counters: %+v", s)
			}
		case obs.PhaseMaterialize:
			sawMat = true
			if s.Depth != 1 {
				t.Errorf("materialize span at depth %d, want 1 (inside enumerate)", s.Depth)
			}
		}
	}
	if !sawEnum || !sawMat {
		t.Fatalf("missing phases (enumerate=%v materialize=%v): %+v", sawEnum, sawMat, tr.Spans())
	}
	if depth0 > tr.Total {
		t.Fatalf("depth-0 spans (%v) exceed Total (%v)", depth0, tr.Total)
	}
}

// TestExplainTraceCacheHit: a traced call served from the plan cache
// returns a trace with the cache-lookup phase and no enumeration, and
// the cached entry never retains a previous request's trace.
func TestExplainTraceCacheHit(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto))
	g := workload.Star(14, workload.DefaultConfig())
	ctx := context.Background()

	tr1 := obs.NewTrace()
	res1, err := p.PlanGraph(ctx, g, WithExplain(tr1))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.CacheHit {
		t.Fatal("first call must miss")
	}

	tr2 := obs.NewTrace()
	res2, err := p.PlanGraph(ctx, g, WithExplain(tr2))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Stats.CacheHit {
		t.Fatal("second call must hit the cache")
	}
	if res2.Stats.Trace != tr2 {
		t.Fatalf("cache hit carries trace %p, want this request's %p", res2.Stats.Trace, tr2)
	}
	if tr2.PhaseTotal(obs.PhaseCacheLookup) == 0 {
		t.Fatalf("cache-hit trace has no cache_lookup span: %+v", tr2.Spans())
	}
	for _, s := range tr2.Spans() {
		if s.Phase == obs.PhaseEnumerate || s.Phase == obs.PhaseMaterialize {
			t.Fatalf("cache-hit trace contains enumeration span: %+v", s)
		}
	}

	// An untraced hit must not inherit tr1 or tr2 from the cached stats.
	res3, err := p.PlanGraph(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.Trace != nil {
		t.Fatalf("untraced cache hit carries a stale trace %p", res3.Stats.Trace)
	}
}

// TestPlanObsRecordsHitsAndMisses is the satellite-6 regression: the
// dimensional metrics must see every successful call — cache hits
// included — under the routed shape × algorithm × n labels.
func TestPlanObsRecordsHitsAndMisses(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto))
	g := workload.Star(14, workload.DefaultConfig())
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := p.PlanGraph(ctx, g); err != nil {
			t.Fatal(err)
		}
	}
	keys := p.PlanObs().Keys()
	if len(keys) != 1 {
		t.Fatalf("PlanObs keys = %v, want exactly one series", keys)
	}
	k := keys[0]
	if k.Shape != "star" || k.N != "9-16" {
		t.Fatalf("series key = %+v, want shape=star n=9-16", k)
	}
	h := p.PlanObs().Snapshot()
	entries := h.Entries()
	if len(entries) != 1 || entries[0].Count != 3 {
		t.Fatalf("snapshot = %+v, want one series with 3 observations (hits included)", entries)
	}
}

// TestExplainParallelStaysParallel: unlike WithTrace/WithOnEmit, an
// explain trace must not force the serial engine.
func TestExplainParallelStaysParallel(t *testing.T) {
	o := options{parallelism: 4}
	g := workload.Chain(16, workload.DefaultConfig())
	g.Freeze()
	o.explain = obs.NewTrace()
	if w := o.workers(g, nil); w != 4 {
		t.Fatalf("explain forced workers to %d, want 4", w)
	}
	o.trace = &Trace{}
	if w := o.workers(g, nil); w != 1 {
		t.Fatalf("core trace must still force serial, got %d", w)
	}
}
