package repro

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/workload"
)

// snapshotWorkload plans a handful of distinct graphs so the cache has
// entries worth persisting, and returns the graphs for replay.
func snapshotWorkload(t *testing.T, p *Planner) []*Graph {
	t.Helper()
	cfg := workload.DefaultConfig()
	graphs := []*Graph{
		workload.Chain(6, cfg),
		workload.Star(7, cfg),
		workload.Cycle(8, cfg),
		workload.Clique(5, cfg),
	}
	for _, g := range graphs {
		if _, err := p.PlanGraph(context.Background(), g); err != nil {
			t.Fatal(err)
		}
	}
	return graphs
}

// TestSnapshotRoundTrip: save, restart into a fresh planner, and every
// warm fingerprint is served from cache — the first request after the
// restore does zero enumeration (CacheMisses stays 0).
func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plancache.json")
	p1 := NewPlanner(WithAlgorithm(SolverAuto))
	graphs := snapshotWorkload(t, p1)
	if err := p1.SaveCacheSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// "Restart": an entirely fresh planner with the same configuration.
	p2 := NewPlanner(WithAlgorithm(SolverAuto))
	n, err := p2.LoadCacheSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(graphs) {
		t.Fatalf("restored %d entries, want %d", n, len(graphs))
	}
	for _, g := range graphs {
		res, err := p2.PlanGraph(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.CacheHit {
			t.Fatalf("warm fingerprint was not a cache hit")
		}
		// The restored plan must be byte-for-byte the plan the first
		// planner produced.
		orig, err := p1.PlanGraph(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Plan.Equal(orig.Plan) || res.Plan.Cost != orig.Plan.Cost {
			t.Fatalf("restored plan differs:\n%v\nwant:\n%v", res.Plan, orig.Plan)
		}
	}
	if m := p2.Metrics(); m.CacheMisses != 0 {
		t.Fatalf("CacheMisses = %d after warm restart, want 0", m.CacheMisses)
	}
}

// TestSnapshotPreservesLRUOrder: a capacity-limited planner restoring a
// larger snapshot keeps the most recently used entries, not arbitrary
// ones.
func TestSnapshotPreservesLRUOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plancache.json")
	p1 := NewPlanner(WithAlgorithm(SolverAuto))
	graphs := snapshotWorkload(t, p1)
	if err := p1.SaveCacheSnapshot(path); err != nil {
		t.Fatal(err)
	}

	p2 := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(2))
	n, err := p2.LoadCacheSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d entries into a 2-entry cache, want 2", n)
	}
	// The two most recently planned graphs are the survivors.
	for _, g := range graphs[len(graphs)-2:] {
		res, err := p2.PlanGraph(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stats.CacheHit {
			t.Fatal("most recently used entry did not survive the restore")
		}
	}
}

// TestSnapshotMissingFileIsColdStart: no file, no error, no entries.
func TestSnapshotMissingFileIsColdStart(t *testing.T) {
	p := NewPlanner()
	n, err := p.LoadCacheSnapshot(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || n != 0 {
		t.Fatalf("LoadCacheSnapshot(absent) = %d, %v; want 0, nil", n, err)
	}
}

// TestSnapshotTruncatedFileRejected: a file cut off mid-write (the
// crash-during-save shape, simulated with the chaos helper) is rejected
// wholesale and the cache stays cold.
func TestSnapshotTruncatedFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plancache.json")
	p1 := NewPlanner(WithAlgorithm(SolverAuto))
	snapshotWorkload(t, p1)
	if err := p1.SaveCacheSnapshot(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := chaos.TruncateFile(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}

	p2 := NewPlanner(WithAlgorithm(SolverAuto))
	n, err := p2.LoadCacheSnapshot(path)
	if err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}
	if n != 0 || p2.Metrics().CacheEntries != 0 {
		t.Fatalf("truncated snapshot restored %d entries", n)
	}
}

// TestSnapshotVersionMismatchRejected: a snapshot from a different
// format version is refused with a loud error naming both versions.
func TestSnapshotVersionMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plancache.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewPlanner()
	if _, err := p.LoadCacheSnapshot(path); err == nil ||
		!strings.Contains(err.Error(), "version 99") {
		t.Fatalf("version mismatch error = %v", err)
	}
}

// TestSnapshotInvalidPlanRejected: an entry whose plan tree fails
// structural validation (here: overlapping children) poisons the whole
// file.
func TestSnapshotInvalidPlanRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plancache.json")
	doc := `{"version":1,"entries":[{"key":"k","algorithm":"dphyp","stats":{},
		"plan":{"op":"join","rel":-1,"card":1,"cost":1,
			"left":{"rel":0,"card":1,"cost":0},
			"right":{"rel":0,"card":1,"cost":0}}}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewPlanner()
	if _, err := p.LoadCacheSnapshot(path); err == nil {
		t.Fatal("overlapping-children plan loaded without error")
	}
	// Same for NaN costs.
	doc = strings.Replace(doc, `"cost":1`, `"cost":-1`, 1)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := p.LoadCacheSnapshot(path); err == nil {
		t.Fatal("negative-cost plan loaded without error")
	}
}

// TestSnapshotScrubsPerRequestState: a snapshot cannot smuggle
// per-request markers (CacheHit, SLO fields) into restored entries.
func TestSnapshotScrubsPerRequestState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plancache.json")
	p1 := NewPlanner(WithAlgorithm(SolverAuto))
	g := workload.Chain(5, workload.DefaultConfig())
	if _, err := p1.PlanGraph(context.Background(), g, WithPlanBudget(1)); err != nil {
		t.Fatal(err)
	}
	if err := p1.SaveCacheSnapshot(path); err != nil {
		t.Fatal(err)
	}
	// Forge the per-request fields into the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	forged := strings.Replace(string(data), `"CacheHit":false`, `"CacheHit":true`, 1)
	forged = strings.Replace(forged, `"SLOMet":false`, `"SLOMet":true`, 1)
	if forged == string(data) {
		t.Fatal("forgery found nothing to replace; field names changed?")
	}
	if err := os.WriteFile(path, []byte(forged), 0o644); err != nil {
		t.Fatal(err)
	}

	p2 := NewPlanner(WithAlgorithm(SolverAuto))
	if _, err := p2.LoadCacheSnapshot(path); err != nil {
		t.Fatal(err)
	}
	res, err := p2.PlanGraph(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SLOMet || res.Stats.PlanBudget != 0 {
		t.Fatalf("restored entry leaked SLO state: %+v", res.Stats)
	}
}

// TestSnapshotSaveWhilePlanning: saving under concurrent planning
// traffic is race-free (run with -race) and always produces a loadable
// file.
func TestSnapshotSaveWhilePlanning(t *testing.T) {
	dir := t.TempDir()
	p := NewPlanner(WithAlgorithm(SolverAuto))
	cfg := workload.DefaultConfig()
	graphs := []*Graph{
		workload.Chain(6, cfg), workload.Star(7, cfg),
		workload.Cycle(8, cfg), workload.Clique(5, cfg),
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := p.PlanGraph(context.Background(), graphs[(i+w)%len(graphs)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		path := filepath.Join(dir, "snap.json")
		if err := p.SaveCacheSnapshot(path); err != nil {
			t.Error(err)
			break
		}
		fresh := NewPlanner(WithAlgorithm(SolverAuto))
		if _, err := fresh.LoadCacheSnapshot(path); err != nil {
			t.Errorf("save %d produced an unloadable snapshot: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
