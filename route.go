package repro

import "repro/internal/shape"

// Topology-dependent limits beyond which exact enumeration is routed to
// Greedy (GOO) instead. The numbers come from the growth of the
// csg-cmp-pair counts measured in §4: cliques emit Θ(3ⁿ) pairs and
// stars Θ(n·2ⁿ), so both leave the interactive regime in the mid-teens,
// while chains and cycles emit only polynomially many pairs and stay
// exact much longer. Unrecognized (mixed) and grid shapes sit in
// between and get a conservative cutoff.
const (
	autoMaxCliqueRels = 14
	autoMaxStarRels   = 18
	autoMaxDenseRels  = 16 // grid and mixed shapes
	autoMaxSparseRels = 24 // chain and cycle
)

// autoMaxGreedyRels is the ceiling of the plain Greedy degradation: the
// historical single-machine-word limit (§2.3). Up to here oversize
// queries keep their pre-multi-word behavior (GOO's O(n³) scan is still
// interactive and its plans are adequate at this scale); beyond it the
// IterDP simplification tier takes over — its greedy clustering plus
// exact subproblems beat pure GOO on plan quality, and its near-linear
// compression keeps 100–1000-relation queries inside an interactive
// budget where GOO's cubic scan would not.
const autoMaxGreedyRels = 64

// routeAuto maps a topology profile to the enumeration algorithm,
// following the crossover data of the paper's evaluation (§4):
//
//   - Any query with hyperedges goes to DPhyp: Figures 5 and 6 show it
//     lowest on every hyperedge workload, often by orders of magnitude,
//     because it is the only enumerator that never generates a
//     connectivity-failing pair.
//   - Stars go to DPhyp (Fig. 7: DPhyp ≪ DPsub < DPsize, with the gap
//     growing exponentially in the number of relations).
//   - Chains go to DPsize: on chains the size-paired enumeration wastes
//     almost nothing (§4.2 shows all three DP variants within small
//     factors there) and its tight loops have the smallest constant.
//   - Cycles go to DPccp, the simple-graph specialization of the
//     csg-cmp-pair enumeration — exact and allocation-light on sparse
//     simple graphs.
//   - Cliques go to TopDown: on a clique every subset is connected, so
//     the failing connectivity tests that sink DPsize/DPsub vanish and
//     the memoizing partition search enumerates exactly the csg-cmp
//     pairs top-down.
//   - Everything else (grids, irregular graphs) goes to DPhyp, the
//     paper's overall winner.
//
// Queries whose class/size combination is beyond the exact cutoffs
// degrade to Greedy up front rather than tripping a budget mid-flight.
// Every routed exact solver explores the same bushy cross-product-free
// space, so routing never changes the cost of the returned plan — only
// the time to find it.
//
// workers is the effective parallelism of the call. It only matters in
// one place: cliques at or above the parallel crossover route to the
// level-parallel DPsub instead of TopDown. TopDown has its own parallel
// partition search now, so this is no longer a serial-mode workaround —
// it is a measured choice: on a clique every subset is connected, so
// both solvers walk the same Θ(3ⁿ) partition space, but DPsub prices
// pairs in place during its level sweep while parallel TopDown pays an
// extra collect-then-price pass over every pair (clique12 at 4 workers:
// DPsub ≈ 0.93× of parallel TopDown's time on the 2-core reference
// box). Below the crossover (and at workers == 1) the serial routing is
// unchanged, so small queries never pay fork/join overhead.
func routeAuto(p shape.Profile, workers int) Algorithm {
	limit := autoMaxDenseRels
	switch p.Class {
	case shape.Clique:
		limit = autoMaxCliqueRels
	case shape.Star:
		limit = autoMaxStarRels
	case shape.Chain, shape.Cycle:
		limit = autoMaxSparseRels
	}
	if p.Rels > autoMaxGreedyRels {
		return IterDP
	}
	if p.Rels > limit {
		return Greedy
	}
	if p.HyperEdges > 0 {
		return DPhyp
	}
	switch p.Class {
	case shape.Chain:
		return DPsize
	case shape.Cycle:
		return DPccp
	case shape.Clique:
		if workers > 1 && p.Rels >= ParallelMinRels {
			return DPsub
		}
		return TopDown
	default: // Star, Grid, Mixed
		return DPhyp
	}
}
