package repro

// Session-level tests for the unified enumeration engine (internal/memo)
// as driven through the public Planner: storage reuse across sequential
// calls, budget exhaustion mid-emission, and the occupancy counters the
// serving layer exports.

import (
	"context"
	"testing"

	"repro/internal/workload"
)

// TestArenaReuseAcrossSequentialPlans: two sequential Plan calls on one
// Planner (cache disabled so both enumerate) must reuse the pooled memo
// storage, and the recycled run must produce the identical plan.
func TestArenaReuseAcrossSequentialPlans(t *testing.T) {
	g := workload.Star(8, workload.DefaultConfig())
	p := NewPlanner(WithPlanCacheSize(0))
	ctx := context.Background()

	first, err := p.PlanGraph(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ArenaReused {
		t.Error("first run of a fresh planner cannot reuse an arena")
	}

	// sync.Pool is allowed to drop entries (and does so randomly under
	// -race), so allow several attempts; under normal scheduling the very
	// next call reuses the engine the first call returned.
	reused := false
	for i := 0; i < 32 && !reused; i++ {
		res, err := p.PlanGraph(ctx, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost() != first.Cost() || !res.Plan.Equal(first.Plan) {
			t.Fatalf("recycled run changed the plan: cost %g vs %g", res.Cost(), first.Cost())
		}
		reused = res.Stats.ArenaReused
	}
	if !reused {
		t.Fatal("no run reused pooled memo storage in 32 sequential plans")
	}
	m := p.Metrics()
	if m.ArenaReuses == 0 {
		t.Error("PlannerMetrics.ArenaReuses not incremented")
	}
	if m.PairsEmitted == 0 {
		t.Error("PlannerMetrics.PairsEmitted not incremented")
	}
	if m.MemoPeakEntries < first.Stats.TableEntries {
		t.Errorf("MemoPeakEntries = %d, below a run's TableEntries %d",
			m.MemoPeakEntries, first.Stats.TableEntries)
	}
}

// TestBudgetExhaustionMidEmissionGreedyFallback: a pair budget that
// trips mid-emission must still yield a valid greedy plan, and the
// engine that aborted mid-run must come back from the pool unpoisoned.
func TestBudgetExhaustionMidEmissionGreedyFallback(t *testing.T) {
	g := workload.Clique(8, workload.DefaultConfig())
	p := NewPlanner(WithPlanCacheSize(0))
	ctx := context.Background()

	exact, err := p.PlanGraph(ctx, g)
	if err != nil {
		t.Fatal(err)
	}

	res, err := p.PlanGraph(ctx, g, WithBudget(Budget{MaxCsgCmpPairs: 5}))
	if err != nil {
		t.Fatalf("budget trip must fall back to greedy, got error: %v", err)
	}
	if !res.Stats.BudgetExhausted || !res.Stats.FallbackGreedy {
		t.Errorf("fallback not recorded: %+v", res.Stats)
	}
	if res.Algorithm != Greedy {
		t.Errorf("Algorithm = %v, want greedy", res.Algorithm)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Errorf("greedy fallback plan invalid: %v", err)
	}
	if !res.Plan.Rels.Equal(g.AllNodes()) {
		t.Errorf("fallback plan covers %v, want %v", res.Plan.Rels, g.AllNodes())
	}
	if res.Cost() < exact.Cost() {
		t.Errorf("greedy fallback cost %g beats the exact optimum %g", res.Cost(), exact.Cost())
	}

	// The aborted engine went back to the pool; the next unbudgeted run
	// must still find the exact optimum on recycled storage.
	again, err := p.PlanGraph(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cost() != exact.Cost() {
		t.Errorf("post-abort exact run cost %g, want %g", again.Cost(), exact.Cost())
	}
	if p.Metrics().Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", p.Metrics().Fallbacks)
	}
}

// TestMemoStatsPerRun: every solver must report memo occupancy through
// the shared engine's counters.
func TestMemoStatsPerRun(t *testing.T) {
	g := workload.Cycle(7, workload.DefaultConfig())
	ctx := context.Background()
	for _, alg := range []Algorithm{DPhyp, DPsize, DPsub, DPccp, TopDown, Greedy} {
		p := NewPlanner(WithAlgorithm(alg), WithPlanCacheSize(0))
		res, err := p.PlanGraph(ctx, g)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		st := res.Stats
		if st.TableEntries == 0 || st.ArenaNodes == 0 {
			t.Errorf("%v: memo counters empty: %+v", alg, st)
		}
		if st.MemoCapacity == 0 || st.MemoCapacity&(st.MemoCapacity-1) != 0 {
			t.Errorf("%v: MemoCapacity = %d, want a power of two", alg, st.MemoCapacity)
		}
		if st.ArenaNodes < st.TableEntries {
			t.Errorf("%v: arena smaller than table: %d < %d", alg, st.ArenaNodes, st.TableEntries)
		}
	}
}
