package repro

import (
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/iterdp"
	"repro/internal/plan"
)

// runIterDP dispatches a hypergraph to the large-query simplification
// tier (internal/iterdp), supplying DPhyp as the exact solver for the
// compressed subproblems: subgraphs may contain hyperedges after
// compression rounds, and DPhyp is the paper's overall winner on every
// shape at subproblem scale.
//
// Subproblems run serially — at ClusterSize ≤ 20 relations each
// enumeration is microseconds, below the parallel crossover — and share
// the session's memo pool, so the tier's per-subproblem setup cost is a
// table memclr, not an allocation. The Budget limits apply to each
// subproblem individually (the engine resets its counters per run);
// cancellation through o.ctx applies to the whole tier, clustering
// loops included.
//
// Graphs the tier cannot handle (non-inner operators, dependent
// relations, graphs held together only by wide hyperedges) fail with an
// error wrapping ErrBudgetExhausted, which the Planner's standard
// fallback policy turns into a Greedy (GOO) plan.
func runIterDP(g *Graph, o options, limits dp.Limits) (*PlanNode, Stats, error) {
	exact := func(sub *hypergraph.Graph) (*plan.Node, dp.Stats, error) {
		sub.Freeze()
		return core.Solve(sub, core.Options{
			Model:       o.model,
			Limits:      limits,
			Pool:        o.pool,
			Parallelism: 1,
		})
	}
	// The sub-solves deliberately do NOT receive the explain trace: a
	// 1000-relation run solves hundreds of subproblems, and per-subproblem
	// spans would blow the trace's fixed capacity. The tier records one
	// span per compression round instead.
	return iterdp.Solve(g, iterdp.Options{
		ClusterSize: o.clusterSize,
		Model:       o.model,
		Ctx:         o.ctx,
		Exact:       exact,
		Explain:     o.explain,
	})
}
