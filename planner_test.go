package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// cliqueQuery builds an n-relation clique as a public-API Query so the
// planner tests exercise the same entry points a server would.
func cliqueQuery(n int) *Query {
	q := NewQuery()
	ids := make([]RelID, n)
	for i := range ids {
		ids[i] = q.Relation(fmt.Sprintf("R%d", i), float64(100+i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			q.Join(ids[i], ids[j], 0.1)
		}
	}
	return q
}

// TestPlannerConcurrentUse hammers one shared Planner — and shared
// Query/TreeQuery/Graph instances — from many goroutines. Run under
// -race this is the concurrency-safety proof for the session API; the
// cost assertions additionally prove that concurrent planning returns
// the same optimum as sequential planning.
func TestPlannerConcurrentUse(t *testing.T) {
	p := NewPlanner()
	ctx := context.Background()

	sharedQ := tpchish(t)
	sharedG := workload.Clique(7, workload.DefaultConfig())
	sharedT := NewTreeQuery()
	f := sharedT.Table("fact", 1_000_000)
	d1 := sharedT.Table("dim1", 1000)
	d2 := sharedT.Table("dim2", 500)
	expr := f.Join(d1, 0.001).AntiJoin(d2, 0.002)

	wantQ, err := p.Plan(ctx, sharedQ)
	if err != nil {
		t.Fatal(err)
	}
	wantG, err := p.PlanGraph(ctx, sharedG)
	if err != nil {
		t.Fatal(err)
	}
	wantT, err := p.PlanTree(ctx, sharedT, expr)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				switch (seed + j) % 4 {
				case 0:
					res, err := p.Plan(ctx, sharedQ)
					if err != nil {
						errs <- err
						return
					}
					if res.Cost() != wantQ.Cost() {
						errs <- fmt.Errorf("shared query cost %g != %g", res.Cost(), wantQ.Cost())
						return
					}
				case 1:
					res, err := p.PlanGraph(ctx, sharedG)
					if err != nil {
						errs <- err
						return
					}
					if res.Cost() != wantG.Cost() {
						errs <- fmt.Errorf("shared graph cost %g != %g", res.Cost(), wantG.Cost())
						return
					}
				case 2:
					res, err := p.PlanTree(ctx, sharedT, expr)
					if err != nil {
						errs <- err
						return
					}
					if res.Cost() != wantT.Cost() {
						errs <- fmt.Errorf("shared tree cost %g != %g", res.Cost(), wantT.Cost())
						return
					}
				case 3:
					// Fresh per-goroutine query: exercises the enumeration
					// (cache miss on first plan per shape) and the pool.
					res, err := p.Plan(ctx, cliqueQuery(5+seed%3))
					if err != nil {
						errs <- err
						return
					}
					if err := res.Plan.Validate(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if m := p.Metrics(); m.Plans == 0 || m.CacheHits == 0 {
		t.Errorf("metrics not accumulating: %+v", m)
	}
}

// TestPlanCancellation asserts that Plan returns ctx.Err() promptly when
// the context is cancelled mid-enumeration, for every exact algorithm's
// enumeration loop. The 16-relation clique takes many seconds to
// enumerate exhaustively; the deadline fires after a few milliseconds
// and the assertion gives each algorithm a generous-but-bounded window
// to notice.
func TestPlanCancellation(t *testing.T) {
	for _, alg := range []Algorithm{DPhyp, DPsize, DPsub, DPccp, TopDown} {
		t.Run(alg.String(), func(t *testing.T) {
			q := cliqueQuery(16)
			// Fresh cache-less planner: a cache hit would skip enumeration.
			p := NewPlanner(WithAlgorithm(alg), WithPlanCacheSize(0))
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := p.Plan(ctx, q)
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if elapsed > 3*time.Second {
				t.Errorf("cancellation took %v; the enumeration loop is not polling", elapsed)
			}
		})
	}

	// A context cancelled before the call must fail before any work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewPlanner().Plan(ctx, cliqueQuery(4)); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestPlanBudgetFallback asserts the adaptive downgrade: exceeding the
// enumeration budget yields a valid Greedy plan with the fallback
// recorded in Stats.
func TestPlanBudgetFallback(t *testing.T) {
	p := NewPlanner(WithBudget(Budget{MaxCsgCmpPairs: 20}))
	res, err := p.Plan(context.Background(), cliqueQuery(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.BudgetExhausted || !res.Stats.FallbackGreedy {
		t.Errorf("fallback not recorded: %+v", res.Stats)
	}
	if res.Algorithm != Greedy {
		t.Errorf("Algorithm = %v, want Greedy", res.Algorithm)
	}
	if res.Plan.Relations() != 10 {
		t.Errorf("greedy fallback plan covers %d relations, want 10", res.Plan.Relations())
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
	// The exact pass's partial work is accounted for on top of greedy's
	// own n-1 pair emissions.
	if res.Stats.CsgCmpPairs < 20+9 {
		t.Errorf("stats lost the aborted pass: pairs = %d", res.Stats.CsgCmpPairs)
	}
	if m := p.Metrics(); m.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", m.Fallbacks)
	}

	// The costed-plans budget trips the same path.
	res, err = NewPlanner(WithBudget(Budget{MaxCostedPlans: 15})).Plan(context.Background(), cliqueQuery(10))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.FallbackGreedy {
		t.Error("MaxCostedPlans trip must fall back to greedy")
	}

	// Without the fallback the budget trip is a hard error.
	_, err = NewPlanner(WithBudget(Budget{MaxCsgCmpPairs: 20}), WithoutGreedyFallback()).
		Plan(context.Background(), cliqueQuery(10))
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("err = %v, want ErrBudgetExhausted", err)
	}

	// A budget wide enough for the full enumeration must not trip.
	res, err = NewPlanner(WithBudget(Budget{MaxCsgCmpPairs: 1 << 20})).Plan(context.Background(), cliqueQuery(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FallbackGreedy || res.Algorithm != DPhyp {
		t.Errorf("unexpected fallback under a sufficient budget: %+v", res.Stats)
	}
}

// TestPlanCache covers hit semantics, clone isolation, and the LRU
// bound.
func TestPlanCache(t *testing.T) {
	p := NewPlanner()
	ctx := context.Background()

	q := tpchish(t)
	first, err := p.Plan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheHit {
		t.Error("first plan cannot be a cache hit")
	}
	second, err := p.Plan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.CacheHit {
		t.Error("second plan of the same shape must hit the cache")
	}
	if second.Cost() != first.Cost() || !second.Plan.Equal(first.Plan) {
		t.Error("cached plan differs from the enumerated one")
	}
	// Stats of the original run are preserved on hits (so effort
	// reporting stays meaningful), only CacheHit differs.
	if second.Stats.CsgCmpPairs != first.Stats.CsgCmpPairs {
		t.Errorf("cache hit stats pairs = %d, want %d", second.Stats.CsgCmpPairs, first.Stats.CsgCmpPairs)
	}

	// Clone isolation: corrupting a returned plan must not leak into the
	// cache or other callers.
	second.Plan.Cost = -1
	second.Plan.Edges = append(second.Plan.Edges, 999)
	third, err := p.Plan(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if third.Plan.Cost == -1 || third.Cost() != first.Cost() {
		t.Error("cache entry was corrupted through a returned plan")
	}

	// Two structurally identical queries share one cache entry; a
	// different algorithm is a different entry.
	if res, err := p.Plan(ctx, tpchish(t)); err != nil || !res.Stats.CacheHit {
		t.Errorf("identical shape from a fresh Query must hit (err=%v)", err)
	}
	if res, err := p.Plan(ctx, tpchish(t), WithAlgorithm(DPsize)); err != nil || res.Stats.CacheHit {
		t.Errorf("per-call algorithm override must not alias the cache (err=%v)", err)
	}

	// A Greedy plan cached under a tight budget must not be served to a
	// call that can afford the exact enumeration: the budget is part of
	// the cache key.
	bp := NewPlanner(WithBudget(Budget{MaxCsgCmpPairs: 20}))
	tripped, err := bp.Plan(ctx, cliqueQuery(8))
	if err != nil || !tripped.Stats.FallbackGreedy {
		t.Fatalf("budget trip expected (err=%v)", err)
	}
	exact, err := bp.Plan(ctx, cliqueQuery(8), WithBudget(Budget{}))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Stats.CacheHit || exact.Algorithm != DPhyp {
		t.Errorf("unlimited-budget call aliased the cached greedy plan: %+v", exact.Stats)
	}

	// The LRU stays bounded.
	small := NewPlanner(WithPlanCacheSize(2))
	for n := 3; n <= 7; n++ {
		if _, err := small.Plan(ctx, cliqueQuery(n)); err != nil {
			t.Fatal(err)
		}
	}
	if got := small.cache.len(); got > 2 {
		t.Errorf("cache holds %d entries, cap 2", got)
	}
	// An evicted shape re-plans fine.
	if res, err := small.Plan(ctx, cliqueQuery(3)); err != nil || res.Stats.CacheHit {
		t.Errorf("evicted shape must re-enumerate (err=%v, hit=%v)", err, res != nil && res.Stats.CacheHit)
	}

	// Observation hooks bypass the cache: the trace must be recorded
	// even when the shape is cached.
	var tr Trace
	if res, err := p.Plan(ctx, tpchish(t), WithTrace(&tr)); err != nil || res.Stats.CacheHit {
		t.Fatalf("traced plan must bypass the cache (err=%v)", err)
	}
	if len(tr.Steps) == 0 {
		t.Error("trace not recorded on a cached shape")
	}
}

// TestOptimizeIdempotent pins the satellite fix: Optimize on a
// disconnected query repairs the graph exactly once, so repeated calls
// (and hence cached replans) do not accrete cross edges.
func TestOptimizeIdempotent(t *testing.T) {
	q := NewQuery()
	a := q.Relation("A", 10)
	b := q.Relation("B", 20)
	q.Relation("C", 30)
	q.Join(a, b, 0.1)

	first, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	edgesAfterFirst := q.Graph().NumEdges()
	for i := 0; i < 3; i++ {
		res, err := q.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost() != first.Cost() {
			t.Errorf("call %d: cost %g != %g", i+2, res.Cost(), first.Cost())
		}
	}
	if got := q.Graph().NumEdges(); got != edgesAfterFirst {
		t.Errorf("repeated Optimize re-added cross edges: %d -> %d edges", edgesAfterFirst, got)
	}
}

// TestPlanBatch checks the concurrent batch entry point.
func TestPlanBatch(t *testing.T) {
	p := NewPlanner()
	ctx := context.Background()

	qs := make([]*Query, 12)
	for i := range qs {
		qs[i] = cliqueQuery(3 + i%4)
	}
	results, err := p.PlanBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(results), len(qs))
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d missing", i)
		}
		want, err := p.Plan(ctx, qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost() != want.Cost() {
			t.Errorf("batch result %d cost %g != %g", i, res.Cost(), want.Cost())
		}
	}

	// A failing query surfaces its error without suppressing the rest
	// of the batch (see TestPlanBatchPoisonedQuery for the full check).
	bad := NewQuery() // no relations
	if _, err := p.PlanBatch(ctx, []*Query{cliqueQuery(3), bad}); err == nil {
		t.Error("batch with an invalid query must fail")
	}

	if res, err := p.PlanBatch(ctx, nil); err != nil || len(res) != 0 {
		t.Errorf("empty batch: %v, %v", res, err)
	}
}

// TestPlanBatchPoisonedQuery: one poisoned query among many must fail
// alone — every healthy query still returns its plan, and the
// *BatchError pinpoints exactly the poisoned index.
func TestPlanBatchPoisonedQuery(t *testing.T) {
	p := NewPlanner()
	ctx := context.Background()

	const poisoned = 7
	qs := make([]*Query, 20)
	for i := range qs {
		if i == poisoned {
			qs[i] = NewQuery() // no relations: fails validation
			continue
		}
		qs[i] = cliqueQuery(3 + i%4)
	}

	results, err := p.PlanBatch(ctx, qs)
	if err == nil {
		t.Fatal("batch with a poisoned query must return an error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BatchError", err)
	}
	if len(be.Errs) != len(qs) {
		t.Fatalf("BatchError has %d entries for %d queries", len(be.Errs), len(qs))
	}
	for i, res := range results {
		if i == poisoned {
			if res != nil || be.Errs[i] == nil {
				t.Errorf("poisoned query %d: result %v, err %v", i, res, be.Errs[i])
			}
			continue
		}
		if res == nil || be.Errs[i] != nil {
			t.Errorf("healthy query %d was dragged down: result %v, err %v", i, res, be.Errs[i])
			continue
		}
		want, werr := p.Plan(ctx, qs[i])
		if werr != nil {
			t.Fatal(werr)
		}
		if res.Cost() != want.Cost() {
			t.Errorf("query %d: batch cost %g != direct cost %g", i, res.Cost(), want.Cost())
		}
	}

	// Context cancellation still stops the whole batch.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.PlanBatch(cctx, qs[:3]); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled batch: got %v, want context.Canceled", err)
	}
}

// TestBudgetedTreeQuery: budgets and fallback work through the tree
// (conflict analysis) path, preserving non-inner operators.
func TestBudgetedTreeQuery(t *testing.T) {
	build := func() (*TreeQuery, *Expr) {
		tq := NewTreeQuery()
		e := tq.Table("R0", 1000)
		for i := 1; i < 10; i++ {
			e = e.Join(tq.Table(fmt.Sprintf("R%d", i), float64(100*i)), 0.01)
		}
		return tq, e
	}
	tq, expr := build()
	res, err := NewPlanner(WithBudget(Budget{MaxCsgCmpPairs: 5})).
		PlanTree(context.Background(), tq, expr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.FallbackGreedy {
		t.Error("tree query budget trip must fall back to greedy")
	}
	if res.Plan.Relations() != 10 {
		t.Errorf("fallback plan covers %d relations", res.Plan.Relations())
	}
}
