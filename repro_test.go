package repro

import (
	"strings"
	"testing"
)

func tpchish(t *testing.T) *Query {
	t.Helper()
	q := NewQuery()
	o := q.Relation("orders", 1_500_000)
	c := q.Relation("customer", 150_000)
	n := q.Relation("nation", 25)
	l := q.Relation("lineitem", 6_000_000)
	q.Join(o, c, 1.0/150_000)
	q.Join(c, n, 1.0/25)
	q.Join(o, l, 1.0/1_500_000)
	if err := q.Err(); err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQueryOptimizeDefault(t *testing.T) {
	res, err := tpchish(t).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Relations() != 4 {
		t.Errorf("plan covers %d relations", res.Plan.Relations())
	}
	if err := res.Plan.Validate(); err != nil {
		t.Error(err)
	}
	if res.Stats.CsgCmpPairs == 0 {
		t.Error("stats must be populated")
	}
	if res.Cost() <= 0 || res.Cardinality() <= 0 {
		t.Error("cost and cardinality must be positive")
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	var costs []float64
	for _, alg := range []Algorithm{DPhyp, DPsize, DPsub, DPccp, TopDown} {
		res, err := tpchish(t).Optimize(WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		costs = append(costs, res.Cost())
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] != costs[0] {
			t.Errorf("algorithm %d cost %g != %g", i, costs[i], costs[0])
		}
	}
}

func TestCostModels(t *testing.T) {
	for _, m := range []CostModel{Cout, NestedLoop, Hash} {
		res, err := tpchish(t).Optimize(WithCostModel(m))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Cost() <= 0 {
			t.Errorf("%s: cost %g", m.Name(), res.Cost())
		}
	}
}

func TestComplexJoinBecomesHyperedge(t *testing.T) {
	q := NewQuery()
	var ids []RelID
	for i := 0; i < 6; i++ {
		ids = append(ids, q.Relation("R", 100))
	}
	q.Join(ids[0], ids[1], 0.1)
	q.Join(ids[1], ids[2], 0.1)
	q.Join(ids[3], ids[4], 0.1)
	q.Join(ids[4], ids[5], 0.1)
	// The Fig. 2 predicate R1.a+R2.b+R3.c = R4.d+R5.e+R6.f.
	q.ComplexJoin(ids[:3], ids[3:], 0.05)
	res, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CsgCmpPairs != 9 {
		t.Errorf("pairs = %d, want 9 (Fig. 2 search space)", res.Stats.CsgCmpPairs)
	}
}

func TestFlexibleJoin(t *testing.T) {
	q := NewQuery()
	a := q.Relation("A", 100)
	b := q.Relation("B", 100)
	c := q.Relation("C", 100)
	q.Join(a, b, 0.1)
	q.FlexibleJoin([]RelID{a}, []RelID{c}, []RelID{b}, 0.2)
	res, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Relations() != 3 {
		t.Error("incomplete plan")
	}
}

func TestDisconnectedQueryRepaired(t *testing.T) {
	q := NewQuery()
	a := q.Relation("A", 10)
	b := q.Relation("B", 20)
	c := q.Relation("C", 30)
	q.Join(a, b, 0.1)
	_ = c // no edge to C: cross product required
	res, err := q.Optimize()
	if err != nil {
		t.Fatalf("disconnected query must be repaired (§2.1): %v", err)
	}
	if res.Plan.Relations() != 3 {
		t.Error("repair lost a relation")
	}
}

func TestQueryErrors(t *testing.T) {
	q := NewQuery()
	if _, err := q.Optimize(); err == nil {
		t.Error("empty query must fail")
	}
	q2 := NewQuery()
	q2.Relation("A", -5)
	if q2.Err() == nil {
		t.Error("negative cardinality must fail")
	}
	q3 := NewQuery()
	a := q3.Relation("A", 10)
	q3.Join(a, RelID(9), 0.5)
	if q3.Err() == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := q3.Optimize(); err == nil {
		t.Error("Optimize must surface builder errors")
	}
}

func TestDependentRelationQuery(t *testing.T) {
	q := NewQuery()
	r := q.Relation("R", 100)
	s := q.DependentRelation("S(R)", 10, r)
	q.Join(r, s, 0.3)
	res, err := q.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Op.String() != "dep-join" {
		t.Errorf("op = %v, want dep-join", res.Plan.Op)
	}
}

func TestTreeQuery(t *testing.T) {
	tq := NewTreeQuery()
	f := tq.Table("fact", 1_000_000)
	d1 := tq.Table("dim1", 1000)
	d2 := tq.Table("dim2", 500)
	d3 := tq.Table("dim3", 200)
	expr := f.Join(d1, 0.001).AntiJoin(d2, 0.002).LeftOuterJoin(d3, 0.005)
	if got := tq.InitialTree(expr); got != "(((R0 ⋈ R1) ▷ R2) ⟕ R3)" {
		t.Errorf("InitialTree = %q", got)
	}
	res, err := tq.Optimize(expr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Relations() != 4 {
		t.Error("incomplete plan")
	}
	// Operators survive into the plan.
	s := res.Plan.String()
	for _, frag := range []string{"antijoin", "leftouterjoin"} {
		if !strings.Contains(s, frag) {
			t.Errorf("plan missing %s:\n%s", frag, s)
		}
	}
}

func TestTreeQueryGenerateAndTest(t *testing.T) {
	build := func() (*TreeQuery, *Expr) {
		tq := NewTreeQuery()
		f := tq.Table("fact", 1_000_000)
		d1 := tq.Table("dim1", 1000)
		d2 := tq.Table("dim2", 500)
		return tq, f.AntiJoin(d1, 0.001).AntiJoin(d2, 0.002)
	}
	tq1, e1 := build()
	r1, err := tq1.Optimize(e1)
	if err != nil {
		t.Fatal(err)
	}
	tq2, e2 := build()
	r2, err := tq2.Optimize(e2, WithGenerateAndTest())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost() != r2.Cost() {
		t.Errorf("generate-and-test cost %g != hyperedge cost %g", r2.Cost(), r1.Cost())
	}
}

func TestTreeQueryConflictRules(t *testing.T) {
	build := func() (*TreeQuery, *Expr) {
		tq := NewTreeQuery()
		f := tq.Table("fact", 1_000_000)
		d1 := tq.Table("dim1", 1000)
		d2 := tq.Table("dim2", 500)
		return tq, f.AntiJoin(d1, 0.001).AntiJoin(d2, 0.002)
	}
	tq1, e1 := build()
	cons, err := tq1.Optimize(e1)
	if err != nil {
		t.Fatal(err)
	}
	tq2, e2 := build()
	pub, err := tq2.Optimize(e2, WithPublishedConflictRule())
	if err != nil {
		t.Fatal(err)
	}
	// The published rule admits more reorderings on antijoin stars, so it
	// explores at least as many pairs and finds a plan at most as costly.
	if pub.Stats.CsgCmpPairs < cons.Stats.CsgCmpPairs {
		t.Errorf("published pairs %d < conservative %d", pub.Stats.CsgCmpPairs, cons.Stats.CsgCmpPairs)
	}
	if pub.Cost() > cons.Cost() {
		t.Errorf("published cost %g > conservative %g", pub.Cost(), cons.Cost())
	}
}

func TestTreeQueryErrors(t *testing.T) {
	tq := NewTreeQuery()
	a := tq.Table("A", 10)
	if _, err := tq.Optimize(a.Join(a, 0.5)); err == nil {
		t.Error("self-join of the same expression must fail")
	}
	other := NewTreeQuery()
	b := other.Table("B", 10)
	tq2 := NewTreeQuery()
	a2 := tq2.Table("A", 10)
	a2.Join(b, 0.5)
	if _, err := tq2.Optimize(a2); err == nil {
		t.Error("mixing queries must fail")
	}
	tq3 := NewTreeQuery()
	if _, err := tq3.Optimize(nil); err == nil {
		t.Error("nil root must fail")
	}
}

func TestTreeQueryAnalyze(t *testing.T) {
	tq := NewTreeQuery()
	f := tq.Table("fact", 1_000_000)
	d1 := tq.Table("dim1", 1000)
	d2 := tq.Table("dim2", 500)
	g, err := tq.Analyze(f.AntiJoin(d1, 0.001).AntiJoin(d2, 0.002))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range []Algorithm{DPhyp, DPsize, DPsub, DPccp, TopDown} {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("round trip %v: %v %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm must fail")
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm must render")
	}
}

func TestTraceOption(t *testing.T) {
	tr := &Trace{}
	q := tpchish(t)
	if _, err := q.Optimize(WithTrace(tr)); err != nil {
		t.Fatal(err)
	}
	if len(tr.Steps) == 0 {
		t.Error("trace must record steps")
	}
}

func TestJSONGraphRoundTrip(t *testing.T) {
	doc := []byte(`{
		"relations": [
			{"name": "A", "card": 100},
			{"name": "B", "card": 200},
			{"name": "C", "card": 300}
		],
		"edges": [
			{"left": [0], "right": [1], "sel": 0.1},
			{"left": [0, 1], "right": [2], "sel": 0.05, "label": "complex"}
		]
	}`)
	q, err := ParseQuery(doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeJSON(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Relations() != 3 {
		t.Error("incomplete plan")
	}
}

func TestJSONTree(t *testing.T) {
	doc := []byte(`{
		"relations": [
			{"name": "F", "card": 100000},
			{"name": "D1", "card": 100},
			{"name": "D2", "card": 50}
		],
		"tree": {
			"op": "antijoin",
			"left": {
				"op": "join",
				"left": {"rel": 0}, "right": {"rel": 1},
				"pred": [0, 1], "sel": 0.01
			},
			"right": {"rel": 2},
			"pred": [0, 2], "sel": 0.02
		}
	}`)
	q, err := ParseQuery(doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimizeJSON(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	res.Plan.Walk(func(n *PlanNode) {
		if !n.IsLeaf() && n.Op == OpAntiJoin {
			found = true
		}
	})
	if !found {
		t.Error("antijoin lost in optimization")
	}
}

func TestJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"relations": []}`,
		`{"relations": [{"name":"A","card":1}]}`,
		`{"relations": [{"name":"A","card":1}], "edges":[{"left":[0],"right":[1],"sel":0.5}], "tree":{"rel":0}}`,
	}
	for i, c := range cases {
		if _, err := ParseQuery([]byte(c)); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
	// Bad op name surfaces at optimize time.
	q, err := ParseQuery([]byte(`{"relations":[{"name":"A","card":1},{"name":"B","card":1}],"edges":[{"left":[0],"right":[1],"sel":0.5,"op":"bogus"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OptimizeJSON(q); err == nil {
		t.Error("bogus op must fail")
	}
}

func TestGreedyAlgorithm(t *testing.T) {
	res, err := tpchish(t).Optimize(WithAlgorithm(Greedy))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Relations() != 4 {
		t.Error("incomplete greedy plan")
	}
	opt, err := tpchish(t).Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost() < opt.Cost()*(1-1e-9) {
		t.Errorf("greedy cost %g beats optimal %g", res.Cost(), opt.Cost())
	}
	if got, err := ParseAlgorithm("greedy"); err != nil || got != Greedy {
		t.Error("greedy must parse")
	}
}

// §3.6: "the memory requirements of all algorithms are about the same" —
// every DP variant memoizes exactly the connected subgraphs, so the
// final table sizes must be identical.
func TestMemoryRequirementsIdentical(t *testing.T) {
	var entries []int
	for _, alg := range []Algorithm{DPhyp, DPsize, DPsub, DPccp, TopDown} {
		res, err := tpchish(t).Optimize(WithAlgorithm(alg))
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, res.Stats.TableEntries)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i] != entries[0] {
			t.Errorf("algorithm %d memoizes %d entries, others %d", i, entries[i], entries[0])
		}
	}
}

func TestWithoutSimplification(t *testing.T) {
	// (A ⟕ B) ⋈ C with the join referencing B: simplification converts
	// the outer join; without it the outer join must survive analysis.
	build := func() (*TreeQuery, *Expr) {
		tq := NewTreeQuery()
		a := tq.Table("A", 100)
		b := tq.Table("B", 50)
		c := tq.Table("C", 20)
		return tq, a.LeftOuterJoin(b, 0.1).Join(c, 0.1, On(b, c))
	}
	tq1, e1 := build()
	simplified, err := tq1.Optimize(e1)
	if err != nil {
		t.Fatal(err)
	}
	hasOuter := func(r *Result) bool {
		found := false
		r.Plan.Walk(func(n *PlanNode) {
			if !n.IsLeaf() && n.Op == OpLeftOuter {
				found = true
			}
		})
		return found
	}
	if hasOuter(simplified) {
		t.Error("simplification must have removed the refuted outer join")
	}
	tq2, e2 := build()
	raw, err := tq2.Optimize(e2, WithoutSimplification())
	if err != nil {
		t.Fatal(err)
	}
	if !hasOuter(raw) {
		t.Error("WithoutSimplification must keep the outer join")
	}
}
