package repro

// Warm-start snapshots: plan-cache persistence.
//
// A snapshot captures the planner's plan cache — every entry's full key
// (configuration + canonical graph fingerprint), its algorithm, its
// enumeration Stats, and its plan tree — as versioned JSON, written
// atomically (temp file + rename, the same discipline as obs.History)
// so a crash mid-save can never destroy the previous snapshot. A
// restarted process restores the file before taking traffic and serves
// its first request on a warm fingerprint from cache, no enumeration.
//
// Loading is strict: a snapshot that fails to parse, carries the wrong
// version, or contains any entry whose plan does not validate is
// rejected wholesale — a plan cache is a correctness-critical structure
// and a half-trusted file is worse than a cold one. The serving layer
// reacts to a rejection by logging loudly and disabling persistence for
// the process lifetime without overwriting the file, so the evidence
// survives for inspection (see service.Config.SnapshotPath).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/algebra"
	"repro/internal/plan"
)

// snapshotVersion is the on-disk format version. A loaded file with a
// different version is rejected (strict equality: entries embed plan
// trees, and guessing at a future layout risks serving a wrong plan).
const snapshotVersion = 1

type snapshotDoc struct {
	Version int             `json:"version"`
	Entries []snapshotEntry `json:"entries"`
}

// snapshotEntry is one cached plan. Key is the cache's own composite
// key — configKey(options) + NUL + graph fingerprint — kept opaque:
// the snapshot never needs to interpret it, only to match it against
// future lookups byte-for-byte.
type snapshotEntry struct {
	Key       string   `json:"key"`
	Algorithm string   `json:"algorithm"`
	Stats     Stats    `json:"stats"`
	Plan      snapNode `json:"plan"`
}

// snapNode is the persisted form of a plan.Node. Leaves carry rel ≥ 0
// and no children; inner nodes carry an operator name and both
// children. Rels is not persisted — it is derivable and re-derived on
// decode, which is one less field a corrupted file can lie about.
type snapNode struct {
	Op    string    `json:"op,omitempty"`
	Phys  string    `json:"phys,omitempty"`
	Rel   int       `json:"rel"`
	Card  float64   `json:"card"`
	Cost  float64   `json:"cost"`
	Edges []int     `json:"edges,omitempty"`
	Left  *snapNode `json:"left,omitempty"`
	Right *snapNode `json:"right,omitempty"`
}

func encodePlan(n *PlanNode) snapNode {
	s := snapNode{Rel: n.Rel, Card: n.Card, Cost: n.Cost}
	if len(n.Edges) > 0 {
		s.Edges = append([]int(nil), n.Edges...)
	}
	if n.Phys != algebra.PhysNone {
		s.Phys = n.Phys.String()
	}
	if !n.IsLeaf() {
		s.Op = n.Op.String()
		l, r := encodePlan(n.Left), encodePlan(n.Right)
		s.Left, s.Right = &l, &r
	}
	return s
}

// decodePlan rebuilds and validates a plan tree. Every numeric field is
// checked for sanity (finite, non-negative) and the rebuilt tree must
// pass plan.Validate — a snapshot that decodes into an inconsistent
// tree is corrupt, whatever the JSON layer thought of it.
func decodePlan(s *snapNode) (*PlanNode, error) {
	if math.IsNaN(s.Card) || math.IsInf(s.Card, 0) || s.Card < 0 {
		return nil, fmt.Errorf("node has invalid cardinality %v", s.Card)
	}
	if math.IsNaN(s.Cost) || math.IsInf(s.Cost, 0) || s.Cost < 0 {
		return nil, fmt.Errorf("node has invalid cost %v", s.Cost)
	}
	if (s.Left == nil) != (s.Right == nil) {
		return nil, fmt.Errorf("node has exactly one child")
	}
	var n *PlanNode
	if s.Left == nil {
		if s.Op != "" {
			return nil, fmt.Errorf("leaf carries operator %q", s.Op)
		}
		if s.Rel < 0 {
			return nil, fmt.Errorf("leaf has negative relation index %d", s.Rel)
		}
		n = plan.Leaf(s.Rel, s.Card)
		n.Cost = s.Cost
	} else {
		op, err := algebra.ParseOp(s.Op)
		if err != nil {
			return nil, err
		}
		if !op.Valid() {
			return nil, fmt.Errorf("inner node with operator %q", s.Op)
		}
		left, err := decodePlan(s.Left)
		if err != nil {
			return nil, err
		}
		right, err := decodePlan(s.Right)
		if err != nil {
			return nil, err
		}
		n = plan.Join(op, left, right, append([]int(nil), s.Edges...), s.Card, s.Cost)
	}
	if s.Phys != "" {
		phys, err := algebra.ParsePhysOp(s.Phys)
		if err != nil {
			return nil, err
		}
		n.Phys = phys
	}
	return n, nil
}

// SaveCacheSnapshot atomically persists the plan cache to path (temp
// file in the same directory + rename). A planner with caching disabled
// writes nothing and returns nil. The snapshot is a point-in-time copy:
// concurrent planning during the save is safe and simply may or may not
// be included.
func (p *Planner) SaveCacheSnapshot(path string) error {
	if p.cache == nil {
		return nil
	}
	doc := snapshotDoc{Version: snapshotVersion}
	for _, e := range p.cache.snapshotEntries() {
		doc.Entries = append(doc.Entries, snapshotEntry{
			Key:       e.key,
			Algorithm: e.alg.String(),
			Stats:     e.stats,
			Plan:      encodePlan(e.plan),
		})
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("repro: encoding cache snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".plancache-*.tmp")
	if err != nil {
		return fmt.Errorf("repro: creating snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("repro: writing cache snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("repro: closing cache snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("repro: installing cache snapshot: %w", err)
	}
	return nil
}

// LoadCacheSnapshot restores the plan cache from the snapshot at path,
// returning the number of entries restored. A missing file is a clean
// cold start (0, nil). Anything else that goes wrong — unreadable file,
// malformed JSON, version mismatch, or any entry with an unknown
// algorithm or an invalid plan tree — rejects the whole file and leaves
// the cache untouched: partial trust in a correctness-critical
// structure is not worth one warm entry.
//
// Entries are restored oldest-first, so the cache's LRU recency order
// survives the round trip; entries beyond the cache's capacity age out
// exactly as if they had been planned in that order.
func (p *Planner) LoadCacheSnapshot(path string) (int, error) {
	if p.cache == nil {
		return 0, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("repro: reading cache snapshot: %w", err)
	}
	var doc snapshotDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("repro: cache snapshot %s is corrupt: %w", path, err)
	}
	if doc.Version != snapshotVersion {
		return 0, fmt.Errorf("repro: cache snapshot %s has version %d, want %d",
			path, doc.Version, snapshotVersion)
	}
	restored := make([]cacheEntry, 0, len(doc.Entries))
	for i := range doc.Entries {
		e := &doc.Entries[i]
		if e.Key == "" {
			return 0, fmt.Errorf("repro: cache snapshot %s: entry %d has empty key", path, i)
		}
		alg, err := ParseAlgorithm(e.Algorithm)
		if err != nil {
			return 0, fmt.Errorf("repro: cache snapshot %s: entry %d: %w", path, i, err)
		}
		pl, err := decodePlan(&e.Plan)
		if err != nil {
			return 0, fmt.Errorf("repro: cache snapshot %s: entry %d: %w", path, i, err)
		}
		if err := pl.Validate(); err != nil {
			return 0, fmt.Errorf("repro: cache snapshot %s: entry %d: %w", path, i, err)
		}
		// Scrub per-request state the snapshot should never carry: the
		// cache stores pre-annotation stats, but a hand-edited or
		// future-format file must not be able to smuggle these in.
		st := e.Stats
		st.CacheHit = false
		st.Trace = nil
		st.PlanBudget, st.PredictedCost = 0, 0
		st.SLORung, st.SLODegraded, st.SLOMet = 0, false, false
		restored = append(restored, cacheEntry{key: e.Key, plan: pl, stats: st, alg: alg})
	}
	for i := range restored {
		p.cache.add(restored[i].key, restored[i].plan, restored[i].stats, restored[i].alg)
	}
	n := len(restored)
	if c := p.cache.len(); c < n {
		n = c // capacity truncated the oldest entries
	}
	return n, nil
}
