package repro

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/hypergraph"
)

// churnGraph builds a star graph whose hub cardinality (and therefore
// fingerprint and optimal cost) is unique per index.
func churnGraph(idx int) *Graph {
	g := hypergraph.New()
	g.AddRelation("hub", float64(1_000_000+idx*1_337))
	for i := 1; i <= 4; i++ {
		g.AddRelation(fmt.Sprintf("sat%d", i), float64(50*i+idx))
		g.AddSimpleEdge(0, i, 0.01)
	}
	return g
}

// TestConcurrentCacheChurn hammers one Planner from many goroutines
// with overlapping fingerprints through a cache far smaller than the
// working set, asserting that (a) no plan is ever served for the wrong
// fingerprint — every result's cost matches an uncached reference plan
// for that exact graph — and (b) the hit/miss/eviction counters stay
// mutually consistent under the churn. Run with -race.
func TestConcurrentCacheChurn(t *testing.T) {
	const (
		distinct   = 32
		goroutines = 16
		iters      = 150
		cacheSize  = 8 // << distinct: constant eviction pressure
	)

	graphs := make([]*Graph, distinct)
	want := make([]float64, distinct)
	ref := NewPlanner(WithPlanCacheSize(0)) // uncached reference costs
	for i := range graphs {
		graphs[i] = churnGraph(i)
		res, err := ref.PlanGraph(context.Background(), graphs[i])
		if err != nil {
			t.Fatalf("reference plan %d: %v", i, err)
		}
		want[i] = res.Cost()
	}
	for i := 1; i < distinct; i++ {
		if want[i] == want[i-1] {
			t.Fatalf("reference costs %d and %d collide; the churn check would be vacuous", i-1, i)
		}
	}

	p := NewPlanner(WithPlanCacheSize(cacheSize))
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				idx := (g*7 + j) % distinct // overlapping, shifted walks
				res, err := p.PlanGraph(context.Background(), graphs[idx])
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, j, err)
					return
				}
				if res.Cost() != want[idx] {
					t.Errorf("goroutine %d iter %d: graph %d got cost %g, want %g — wrong fingerprint's plan served",
						g, j, idx, res.Cost(), want[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	m := p.Metrics()
	total := uint64(goroutines * iters)
	if m.Plans != total {
		t.Errorf("Plans = %d, want %d", m.Plans, total)
	}
	if m.Failures != 0 {
		t.Errorf("Failures = %d, want 0", m.Failures)
	}
	// Every call was cacheable: each is exactly one hit or one miss.
	if m.CacheHits+m.CacheMisses != total {
		t.Errorf("CacheHits(%d) + CacheMisses(%d) != Plans(%d)", m.CacheHits, m.CacheMisses, total)
	}
	// 32 distinct keys through an 8-entry LRU must evict; and evictions
	// can never outnumber the insertions (= misses).
	if m.CacheEvictions == 0 {
		t.Error("CacheEvictions = 0 under 4x cache pressure")
	}
	if m.CacheEvictions > m.CacheMisses {
		t.Errorf("CacheEvictions(%d) > CacheMisses(%d)", m.CacheEvictions, m.CacheMisses)
	}
	if m.CacheEntries > cacheSize {
		t.Errorf("CacheEntries = %d exceeds capacity %d", m.CacheEntries, cacheSize)
	}
	// Every entry in the cache or evicted from it came from a miss, but
	// not every miss inserted: two goroutines missing the same key
	// concurrently both enumerate, and the second add updates in place.
	if got := uint64(m.CacheEntries) + m.CacheEvictions; got > m.CacheMisses {
		t.Errorf("CacheEntries(%d) + CacheEvictions(%d) = %d exceeds CacheMisses(%d)",
			m.CacheEntries, m.CacheEvictions, got, m.CacheMisses)
	}
}

// TestPlanBatchCancelledMidBatch: when the batch context dies mid-run,
// the affected queries — both those still queued and the one cut off
// inside its enumeration — report exactly ctx.Err(), distinguishable
// from genuine per-query failures.
func TestPlanBatchCancelledMidBatch(t *testing.T) {
	// Query 0 is a 14-clique: Θ(3ⁿ) pairs ≈ 4.7M, far beyond what 50ms
	// can enumerate, so the cancellation is guaranteed to catch it
	// mid-flight whatever the worker count.
	qs := []*Query{cliqueQuery(14), cliqueQuery(3), cliqueQuery(4)}
	p := NewPlanner(WithPlanCacheSize(0))

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	results, err := p.PlanBatch(ctx, qs)
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T (%v), want *BatchError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error does not wrap context.Canceled: %v", err)
	}

	cancelled := 0
	for i, qerr := range be.Errs {
		if qerr == nil {
			if results[i] == nil {
				t.Errorf("query %d: no error but no result", i)
			}
			continue
		}
		// The satellite contract: a cancellation casualty carries the
		// context's own error — identity, not a wrapped lookalike.
		if qerr != ctx.Err() {
			t.Errorf("query %d: error %v is not identical to ctx.Err()", i, qerr)
		}
		if !be.Cancelled(i, ctx) {
			t.Errorf("query %d: Cancelled() = false for a cancellation casualty", i)
		}
		cancelled++
	}
	if be.Errs[0] != ctx.Err() {
		t.Errorf("the 14-clique (query 0) was not cancelled mid-enumeration: %v", be.Errs[0])
	}
	if cancelled == 0 {
		t.Error("no query reported the cancellation")
	}

	// Sanity: Cancelled never claims healthy or out-of-range entries.
	if be.Cancelled(-1, ctx) || be.Cancelled(len(be.Errs), ctx) {
		t.Error("Cancelled accepted an out-of-range index")
	}
}

// TestBuildQuery: the exported document→Query constructor fingerprints
// deterministically and rejects tree documents.
func TestBuildQuery(t *testing.T) {
	doc := &QueryJSON{
		Relations: []RelationJSON{{Name: "a", Card: 10}, {Name: "b", Card: 20}},
		Edges:     []EdgeJSON{{Left: []int{0}, Right: []int{1}, Sel: 0.5}},
	}
	q1, err := doc.BuildQuery()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := doc.BuildQuery()
	if err != nil {
		t.Fatal(err)
	}
	if q1.Graph().Fingerprint() != q2.Graph().Fingerprint() {
		t.Error("two builds of one document fingerprint differently")
	}

	res, err := NewPlanner().Plan(context.Background(), q1, WithAlgorithm(DPhyp))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewPlanner().PlanJSON(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost() != direct.Cost() {
		t.Errorf("BuildQuery path cost %g != PlanJSON path cost %g", res.Cost(), direct.Cost())
	}

	rel := 0
	treeDoc := &QueryJSON{
		Relations: []RelationJSON{{Name: "a", Card: 10}},
		Tree:      &TreeJSON{Rel: &rel},
	}
	if _, err := treeDoc.BuildQuery(); err == nil {
		t.Error("tree document built a graph query")
	}
}
