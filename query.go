package repro

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/hypergraph"
)

// RelID identifies a relation within a Query.
type RelID int

// Query describes an inner-join query as a hypergraph: relations with
// cardinalities and join predicates with selectivities. Predicates over
// two relations become simple edges; predicates spanning more relations
// become hyperedges (§2.1); predicates with relations that may appear on
// either side become generalized hyperedges (§6).
type Query struct {
	g   *hypergraph.Graph
	err error

	// repair runs the §2.1 connectivity repair exactly once, on the
	// first planning call. The hypergraph is effectively frozen from
	// that point on: re-planning the same query (which a caching Planner
	// does constantly) must not re-add cross edges, and relations added
	// after the first plan are not re-repaired.
	repair sync.Once
}

// NewQuery returns an empty query.
func NewQuery() *Query { return &Query{g: hypergraph.New()} }

// Relation adds a base relation with the given estimated cardinality.
func (q *Query) Relation(name string, card float64) RelID {
	if q.err != nil {
		return -1
	}
	id, err := q.catch(func() int { return q.g.AddRelation(name, card) })
	if err != nil {
		q.err = err
		return -1
	}
	return RelID(id)
}

// DependentRelation adds a table-valued expression whose evaluation
// references the relations in `on` (§5.6's S(R)). The optimizer places
// it on the right of a dependent join whose left side provides `on`.
func (q *Query) DependentRelation(name string, card float64, on ...RelID) RelID {
	id := q.Relation(name, card)
	if q.err != nil {
		return -1
	}
	free, err := q.toSet(on)
	if err != nil {
		q.err = err
		return -1
	}
	_, err = q.catch(func() int { q.g.SetFree(int(id), free); return 0 })
	if err != nil {
		q.err = err
		return -1
	}
	return id
}

// Join adds a binary join predicate between a and b.
func (q *Query) Join(a, b RelID, sel float64) {
	q.ComplexJoin([]RelID{a}, []RelID{b}, sel)
}

// ComplexJoin adds a predicate whose left side references all of `left`
// and whose right side references all of `right`, forming the hyperedge
// (left, right).
func (q *Query) ComplexJoin(left, right []RelID, sel float64) {
	q.FlexibleJoin(left, right, nil, sel)
}

// FlexibleJoin adds a generalized hyperedge (left, right, free): the
// relations in `free` may be placed on either side of the join
// (Definition 6), as with predicates like R1.a + R2.b = R3.c + R4.d
// where algebra allows moving terms across the equality.
func (q *Query) FlexibleJoin(left, right, free []RelID, sel float64) {
	if q.err != nil {
		return
	}
	u, err := q.toSet(left)
	if err == nil {
		var v, w bitset.Set
		v, err = q.toSet(right)
		if err == nil {
			w, err = q.toSet(free)
			if err == nil {
				_, err = q.catch(func() int {
					q.g.AddEdge(hypergraph.Edge{U: u, V: v, W: w, Sel: sel})
					return 0
				})
			}
		}
	}
	if err != nil {
		q.err = err
	}
}

// Graph exposes the underlying hypergraph (read-mostly; used by tools).
func (q *Query) Graph() *Graph { return q.g }

// Err returns the first construction error, if any.
func (q *Query) Err() error { return q.err }

// ensureConnected applies the §2.1 connectivity repair exactly once;
// concurrent planning calls on the same query serialize on the sync.Once
// so the graph is mutated by at most one goroutine, before any of them
// starts enumerating.
func (q *Query) ensureConnected() {
	q.repair.Do(func() {
		if len(q.g.Components()) > 1 {
			q.g.MakeConnected()
		}
	})
}

// Optimize finds the optimal bushy cross-product-free plan. If the query
// graph is disconnected it is first repaired with selectivity-1 cross
// hyperedges between components (§2.1); the repair happens once, so
// calling Optimize repeatedly is idempotent.
//
// Optimize is a convenience wrapper over the default Planner (see
// DefaultPlanner); servers wanting cancellation, budgets, or an isolated
// cache should construct their own Planner and call Plan.
func (q *Query) Optimize(opts ...Option) (*Result, error) {
	return DefaultPlanner().Plan(context.Background(), q, opts...)
}

func (q *Query) toSet(ids []RelID) (bitset.Set, error) {
	var s bitset.Set
	for _, id := range ids {
		if id < 0 || int(id) >= q.g.NumRels() {
			return bitset.Empty, fmt.Errorf("repro: unknown relation id %d", id)
		}
		s = s.Add(int(id))
	}
	return s, nil
}

// catch converts panics from the internal builders (which use panics for
// programming errors) into errors at the public boundary.
func (q *Query) catch(f func() int) (id int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("repro: %v", r)
		}
	}()
	return f(), nil
}
