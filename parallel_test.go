package repro

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bitset"
	"repro/internal/workload"
)

// detGraph derives the i-th determinism-test graph: shapes and random
// graphs mixed, all at or above ParallelMinRels so the parallel paths
// actually engage.
func detGraph(i int) *Graph {
	seed := int64(7000 + i)
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	switch i % 8 {
	case 0:
		return workload.Chain(10+rng.Intn(4), cfg)
	case 1:
		return workload.Cycle(10+rng.Intn(4), cfg)
	case 2:
		return workload.Star(10+rng.Intn(3), cfg)
	case 3:
		return workload.Clique(10, cfg)
	case 4:
		return workload.Grid(2, 5+rng.Intn(2), cfg)
	case 5:
		return workload.RandomHyper(rng, 10+rng.Intn(3), 1+rng.Intn(3), cfg)
	default:
		return workload.RandomSimple(rng, 10+rng.Intn(4), rng.Intn(5), cfg)
	}
}

// TestParallelPlansDeterministic is the headline determinism guarantee:
// over 200 random graphs, the plan JSON produced with parallel
// enumeration is byte-identical to the serial plan at every worker
// count, and the csg-cmp-pair counts (the §2.2 effort yardstick) agree
// exactly. SolverAuto exercises the routed mix (DPsize on chains,
// DPccp on cycles, DPsub on parallel cliques, DPhyp elsewhere).
func TestParallelPlansDeterministic(t *testing.T) {
	graphs := 200
	if testing.Short() {
		graphs = 40
	}
	ctx := context.Background()
	serial := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0), WithParallelism(1))
	par2 := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0), WithParallelism(2))
	par4 := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0), WithParallelism(4))

	for i := 0; i < graphs; i++ {
		g := detGraph(i)
		rs, err := serial.PlanGraph(ctx, g)
		if err != nil {
			t.Fatalf("graph %d serial: %v", i, err)
		}
		want, err := json.Marshal(rs.Plan)
		if err != nil {
			t.Fatal(err)
		}
		for _, pp := range []struct {
			name string
			p    *Planner
		}{{"par2", par2}, {"par4", par4}} {
			rp, err := pp.p.PlanGraph(ctx, g)
			if err != nil {
				t.Fatalf("graph %d %s: %v", i, pp.name, err)
			}
			got, err := json.Marshal(rp.Plan)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("graph %d (%s, routed %s): plan differs from serial\nserial:   %s\nparallel: %s",
					i, pp.name, rp.Stats.RoutedAlgorithm, want, got)
			}
			if rp.Stats.CsgCmpPairs != rs.Stats.CsgCmpPairs {
				t.Errorf("graph %d (%s): csg-cmp-pairs %d != serial %d",
					i, pp.name, rp.Stats.CsgCmpPairs, rs.Stats.CsgCmpPairs)
			}
		}
	}
}

// depGraph derives the i-th dependent-relation graph: a join-only shape
// with exactly one relation marked dependent on relation 0 — the class
// the dp.ParallelSafe admissibility precheck admits (every emitted pair
// keeps at least one valid orientation, so memo membership stays purely
// structural).
func depGraph(i int) *Graph {
	seed := int64(9000 + i)
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	var g *Graph
	switch i % 4 {
	case 0:
		g = workload.Chain(10+rng.Intn(3), cfg)
	case 1:
		g = workload.Cycle(10+rng.Intn(3), cfg)
	case 2:
		g = workload.Star(10+rng.Intn(3), cfg)
	default:
		g = workload.Grid(2, 5+rng.Intn(2), cfg)
	}
	g.SetFree(1+rng.Intn(g.NumRels()-1), bitset.New(0))
	return g
}

// TestNewParallelModesDeterministic pins the parallel DPhyp enumeration
// spine and the parallel TopDown partition search to the byte-identical
// contract at workers ∈ {1,2,4}. Half the graphs carry one dependent
// relation — previously blanket-rejected by dp.ParallelSafe, now
// admitted by the precheck — and every parallel run must actually
// engage its workers (Stats.Workers), not silently fall back to serial.
func TestNewParallelModesDeterministic(t *testing.T) {
	graphs := 200
	if testing.Short() {
		graphs = 20
	}
	ctx := context.Background()
	for _, alg := range []Algorithm{DPhyp, TopDown} {
		serial := NewPlanner(WithAlgorithm(alg), WithPlanCacheSize(0), WithParallelism(1))
		par := []struct {
			workers int
			p       *Planner
		}{
			{2, NewPlanner(WithAlgorithm(alg), WithPlanCacheSize(0), WithParallelism(2))},
			{4, NewPlanner(WithAlgorithm(alg), WithPlanCacheSize(0), WithParallelism(4))},
		}
		for i := 0; i < graphs; i++ {
			var g *Graph
			if i%2 == 0 {
				g = detGraph(i)
			} else {
				g = depGraph(i)
			}
			rs, err := serial.PlanGraph(ctx, g)
			if err != nil {
				t.Fatalf("%v graph %d serial: %v", alg, i, err)
			}
			want, err := json.Marshal(rs.Plan)
			if err != nil {
				t.Fatal(err)
			}
			for _, pp := range par {
				rp, err := pp.p.PlanGraph(ctx, g)
				if err != nil {
					t.Fatalf("%v graph %d workers=%d: %v", alg, i, pp.workers, err)
				}
				if rp.Stats.Workers != pp.workers {
					t.Errorf("%v graph %d: ran with %d workers, want %d (parallel mode did not engage)",
						alg, i, rp.Stats.Workers, pp.workers)
				}
				got, err := json.Marshal(rp.Plan)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Errorf("%v graph %d workers=%d: plan differs from serial\nserial:   %s\nparallel: %s",
						alg, i, pp.workers, want, got)
				}
				if rp.Stats.CsgCmpPairs != rs.Stats.CsgCmpPairs {
					t.Errorf("%v graph %d workers=%d: csg-cmp-pairs %d != serial %d",
						alg, i, pp.workers, rp.Stats.CsgCmpPairs, rs.Stats.CsgCmpPairs)
				}
			}
		}
	}
}

// TestParallelWorkerStats: a parallel run records its worker count and
// per-worker built-pair counts (summing exactly to the run's pair
// total in the direct and the deferred modes alike), and the planner's
// session metrics see the run.
func TestParallelWorkerStats(t *testing.T) {
	cases := []struct {
		name string
		alg  Algorithm
		g    *Graph
	}{
		{"dpsub-direct", DPsub, workload.Clique(10, workload.DefaultConfig())},
		{"dpccp-deferred", DPccp, workload.Cycle(12, workload.DefaultConfig())},
		{"dphyp-deferred", DPhyp, workload.Star(11, workload.DefaultConfig())},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := NewPlanner(WithAlgorithm(c.alg), WithPlanCacheSize(0), WithParallelism(3))
			res, err := p.PlanGraph(context.Background(), c.g)
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if st.Workers != 3 {
				t.Fatalf("Workers = %d, want 3", st.Workers)
			}
			if len(st.WorkerPairs) != 3 {
				t.Fatalf("WorkerPairs = %v, want 3 entries", st.WorkerPairs)
			}
			sum := 0
			for _, wp := range st.WorkerPairs {
				sum += wp
			}
			if sum != st.CsgCmpPairs {
				t.Errorf("sum(WorkerPairs) = %d, want CsgCmpPairs = %d", sum, st.CsgCmpPairs)
			}
			m := p.Metrics()
			if m.ParallelRuns != 1 {
				t.Errorf("ParallelRuns = %d, want 1", m.ParallelRuns)
			}
			if m.ParallelPairs != uint64(sum) {
				t.Errorf("ParallelPairs = %d, want %d", m.ParallelPairs, sum)
			}
		})
	}
}

// TestParallelSmallQueriesStaySerial: below the crossover the serial
// engine runs even when parallelism was requested — fork/join overhead
// must not regress small queries.
func TestParallelSmallQueriesStaySerial(t *testing.T) {
	p := NewPlanner(WithPlanCacheSize(0), WithParallelism(4))
	res, err := p.PlanGraph(context.Background(), workload.Star(8, workload.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers > 1 {
		t.Fatalf("star(8) ran with %d workers, want serial", res.Stats.Workers)
	}
	if m := p.Metrics(); m.ParallelRuns != 0 {
		t.Fatalf("ParallelRuns = %d, want 0", m.ParallelRuns)
	}
}

// TestParallelTracedRunsStaySerial: traces (and observation hooks)
// need the serial emission order, so observed runs are pinned to one
// worker.
func TestParallelTracedRunsStaySerial(t *testing.T) {
	p := NewPlanner(WithPlanCacheSize(0), WithParallelism(4))
	var tr Trace
	res, err := p.PlanGraph(context.Background(),
		workload.Star(11, workload.DefaultConfig()), WithTrace(&tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers > 1 {
		t.Fatalf("traced run used %d workers, want serial", res.Stats.Workers)
	}
	if len(tr.Steps) == 0 {
		t.Fatal("trace recorded no steps")
	}
}

// TestParallelBudgetFallsBackToGreedy: a budget trip under parallel
// enumeration degrades to the serial Greedy plan exactly like a serial
// trip, and the cancellation path returns promptly.
func TestParallelBudgetFallsBackToGreedy(t *testing.T) {
	g := workload.Clique(11, workload.DefaultConfig())
	p := NewPlanner(WithAlgorithm(DPsub), WithPlanCacheSize(0), WithParallelism(4),
		WithBudget(Budget{MaxCsgCmpPairs: 500}))
	res, err := p.PlanGraph(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.FallbackGreedy || !res.Stats.BudgetExhausted {
		t.Fatalf("stats = %+v, want greedy fallback after budget trip", res.Stats)
	}
	if res.Algorithm != Greedy {
		t.Fatalf("Algorithm = %v, want Greedy", res.Algorithm)
	}
	if res.Stats.Workers != 4 {
		t.Fatalf("Workers = %d, want the aborted exact pass's 4", res.Stats.Workers)
	}

	hard := NewPlanner(WithAlgorithm(DPsub), WithPlanCacheSize(0), WithParallelism(4),
		WithBudget(Budget{MaxCsgCmpPairs: 500}), WithoutGreedyFallback())
	if _, err := hard.PlanGraph(context.Background(), g); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.PlanGraph(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelConcurrentPlans drives many concurrent Planner.Plan calls
// that each enumerate in parallel (parallel-inside-parallel) through a
// shared planner — the cache-miss hot path of a loaded server. Run
// under -race in CI.
func TestParallelConcurrentPlans(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(4), WithParallelism(2))
	graphs := make([]*Graph, 8)
	for i := range graphs {
		graphs[i] = detGraph(i)
	}
	want := make([]float64, len(graphs))
	for i, g := range graphs {
		res, err := p.PlanGraph(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Cost()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				gi := (w + i) % len(graphs)
				res, err := p.PlanGraph(context.Background(), graphs[gi])
				if err != nil {
					errs <- err
					return
				}
				if res.Cost() != want[gi] {
					t.Errorf("graph %d: cost %g != %g", gi, res.Cost(), want[gi])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
