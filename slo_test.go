package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestPlanBudgetDegradesToGreedy: a budget far below the predicted cost
// of the exact enumeration (and of the iterdp rung, when present)
// routes a SolverAuto call to greedy, and the degradation is visible in
// the stats and the session counters.
func TestPlanBudgetDegradesToGreedy(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
	g := workload.Clique(10, workload.DefaultConfig())

	res, err := p.PlanGraph(context.Background(), g, WithPlanBudget(100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != Greedy {
		t.Fatalf("Algorithm = %v, want Greedy", res.Algorithm)
	}
	st := res.Stats
	if !st.SLODegraded {
		t.Error("Stats.SLODegraded not set")
	}
	if st.SLORung != rungGreedy {
		t.Errorf("Stats.SLORung = %d, want %d", st.SLORung, rungGreedy)
	}
	if st.PlanBudget != 100*time.Microsecond {
		t.Errorf("Stats.PlanBudget = %v", st.PlanBudget)
	}
	if st.PredictedCost <= 0 {
		t.Errorf("Stats.PredictedCost = %v, want > 0", st.PredictedCost)
	}
	m := p.Metrics()
	if m.SLODegraded != 1 {
		t.Errorf("Metrics.SLODegraded = %d, want 1", m.SLODegraded)
	}
	if m.SLOMet+m.SLOMissed != 1 {
		t.Errorf("SLOMet+SLOMissed = %d, want 1", m.SLOMet+m.SLOMissed)
	}
}

// TestPlanBudgetKeepsExactWhenAffordable: a generous budget leaves the
// topology route untouched and records the call as met.
func TestPlanBudgetKeepsExactWhenAffordable(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
	g := workload.Clique(10, workload.DefaultConfig())

	res, err := p.PlanGraph(context.Background(), g, WithPlanBudget(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.SLODegraded {
		t.Error("SLODegraded set under a generous budget")
	}
	if st.SLORung != rungExact {
		t.Errorf("SLORung = %d, want %d", st.SLORung, rungExact)
	}
	if !st.SLOMet {
		t.Error("SLOMet false for a call with a one-minute budget")
	}
	if m := p.Metrics(); m.SLOMet != 1 || m.SLODegraded != 0 {
		t.Errorf("Metrics = met %d degraded %d, want 1/0", m.SLOMet, m.SLODegraded)
	}
}

// TestPlanBudgetIterDPRung: when the graph is larger than one exact
// subproblem and the budget fits the iterdp estimate but not the exact
// one, the router stops on the middle rung.
func TestPlanBudgetIterDPRung(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
	// star16 routes to exact DPhyp (≤ autoMaxStarRels); the static
	// tables put the exact enumeration at ~120ms and the iterdp tier at
	// ~25ms, so a 60ms budget lands between the two rungs.
	g := workload.Star(16, workload.DefaultConfig())

	res, err := p.PlanGraph(context.Background(), g, WithPlanBudget(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != IterDP {
		t.Fatalf("Algorithm = %v, want IterDP", res.Algorithm)
	}
	st := res.Stats
	if st.SLORung != rungIterDP || !st.SLODegraded {
		t.Errorf("SLORung = %d degraded %t, want %d/true", st.SLORung, st.SLODegraded, rungIterDP)
	}
}

// TestPlanBudgetFloorIsGreedy: a budget nothing can meet still returns
// a plan — greedy is the floor — and the call is recorded as missed
// when its wall time overruns.
func TestPlanBudgetFloorIsGreedy(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
	g := workload.Clique(10, workload.DefaultConfig())

	res, err := p.PlanGraph(context.Background(), g, WithPlanBudget(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != Greedy {
		t.Fatalf("Algorithm = %v, want Greedy", res.Algorithm)
	}
	if res.Stats.SLOMet {
		t.Error("SLOMet true for a 1ns budget")
	}
	if m := p.Metrics(); m.SLOMissed != 1 {
		t.Errorf("Metrics.SLOMissed = %d, want 1", m.SLOMissed)
	}
}

// TestPlanBudgetRoutingDeterministic: routing is a pure function of the
// graph, budget, and (cold) history state, so repeated calls on a
// cache-disabled planner make the same decision every time.
func TestPlanBudgetRoutingDeterministic(t *testing.T) {
	g := workload.Clique(10, workload.DefaultConfig())
	var first Algorithm
	for i := 0; i < 5; i++ {
		// A fresh planner each round keeps the live registry cold, so
		// the decision depends only on the static tables.
		p := NewPlanner(WithAlgorithm(SolverAuto), WithPlanCacheSize(0))
		res, err := p.PlanGraph(context.Background(), g, WithPlanBudget(100*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Algorithm
			continue
		}
		if res.Algorithm != first {
			t.Fatalf("round %d routed %v, round 0 routed %v", i, res.Algorithm, first)
		}
	}
}

// TestPredictPlanTimeSourceOrder: the predictor prefers the live
// registry once a series has sloMinSamples observations, falls back to
// the installed baseline history, and bottoms out on the static tables.
func TestPredictPlanTimeSourceOrder(t *testing.T) {
	p := NewPlanner()
	key := obs.Key{Shape: "clique", Algorithm: TopDown.String(), N: obs.NBucket(20)}

	// Cold: static table. A 20-relation clique estimate is enormous
	// (clamped at an hour).
	if got := p.predictPlanTime("clique", TopDown, 20, DefaultClusterSize); got < time.Minute {
		t.Fatalf("cold static prediction = %v, want huge", got)
	}

	// Baseline installed: its quantile wins over the static table even
	// with a single sample.
	base := obs.NewPlanMetrics()
	base.Observe(key, 2*time.Millisecond, false)
	p.SetBaselineHistory(base.Snapshot())
	if got := p.predictPlanTime("clique", TopDown, 20, DefaultClusterSize); got > 10*time.Millisecond {
		t.Fatalf("baseline prediction = %v, want ~2ms", got)
	}

	// Live series warm: it outranks the baseline once it has enough
	// samples.
	for i := 0; i < sloMinSamples; i++ {
		p.planObs.Observe(key, 80*time.Millisecond, false)
	}
	got := p.predictPlanTime("clique", TopDown, 20, DefaultClusterSize)
	if got < 20*time.Millisecond || got > time.Second {
		t.Fatalf("live prediction = %v, want ~100ms bucket", got)
	}

	// Removing the baseline keeps the live series in charge.
	p.SetBaselineHistory(nil)
	if again := p.predictPlanTime("clique", TopDown, 20, DefaultClusterSize); again != got {
		t.Fatalf("prediction changed after baseline removal: %v != %v", again, got)
	}
}

// TestPlanBudgetCacheHitRecordsSLO: a budgeted call served from the
// cache still gets SLO stats stamped (the cached entry itself never
// carries them).
func TestPlanBudgetCacheHitRecordsSLO(t *testing.T) {
	p := NewPlanner(WithAlgorithm(SolverAuto))
	g := workload.Star(8, workload.DefaultConfig())
	ctx := context.Background()

	if _, err := p.PlanGraph(ctx, g, WithPlanBudget(time.Minute)); err != nil {
		t.Fatal(err)
	}
	res, err := p.PlanGraph(ctx, g, WithPlanBudget(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.CacheHit {
		t.Fatal("second call was not a cache hit")
	}
	if res.Stats.PlanBudget != time.Minute || !res.Stats.SLOMet {
		t.Errorf("cache hit SLO stats = budget %v met %t", res.Stats.PlanBudget, res.Stats.SLOMet)
	}
	// An unbudgeted hit on the same entry carries no SLO stats: they
	// are per-request, not cached.
	res, err = p.PlanGraph(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanBudget != 0 || res.Stats.SLOMet {
		t.Errorf("unbudgeted hit leaked SLO stats: budget %v met %t",
			res.Stats.PlanBudget, res.Stats.SLOMet)
	}
	if m := p.Metrics(); m.SLOMet != 2 {
		t.Errorf("Metrics.SLOMet = %d, want 2 (budgeted calls only)", m.SLOMet)
	}
}

// TestStaticPairsMonotone: within every shape class the static pair
// estimate grows with n — the property rung ordering relies on.
func TestStaticPairsMonotone(t *testing.T) {
	for _, class := range []string{"chain", "cycle", "star", "clique", "grid", "mixed"} {
		prev := 0.0
		for n := 2; n <= 30; n++ {
			got := staticPairs(class, n)
			if got <= prev {
				t.Fatalf("%s: staticPairs(%d) = %g not > staticPairs(%d) = %g",
					class, n, got, n-1, prev)
			}
			prev = got
		}
	}
}
