package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dp"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/shape"
)

// DefaultPlanCacheSize is the capacity of a Planner's plan cache unless
// overridden with WithPlanCacheSize.
const DefaultPlanCacheSize = 256

// Planner is a long-lived planning session: it is constructed once with
// a cost model, conflict rule, and policy (algorithm, enumeration
// Budget, fallback behavior), and is then safe for concurrent use from
// any number of goroutines. Compared to the one-shot Optimize entry
// points, a Planner adds three things a server needs:
//
//   - Cancellation: every Plan* method takes a context.Context that is
//     polled inside the enumeration loops of all algorithms, so hostile
//     or huge queries can be cut off mid-flight.
//   - Budgets: WithBudget caps csg-cmp-pairs and costed plans; when the
//     cap trips, the planner degrades to a Greedy (GOO) plan instead of
//     hanging, recording the downgrade in Stats.FallbackGreedy.
//   - Reuse: DP tables are recycled through an internal pool, and
//     finished plans are cached in a bounded LRU keyed by a canonical
//     graph fingerprint, so repeated traffic over the same query shapes
//     skips enumeration entirely (Stats.CacheHit).
//
// Per-call Options may be passed to the Plan* methods; they are merged
// over the planner's construction-time options. The cache remains
// correct under per-call overrides because its keys include every
// plan-relevant configuration dimension.
type Planner struct {
	base  options
	pool  *memo.Pool
	cache *planCache

	// planObs is the dimensional latency registry: one histogram per
	// shape × algorithm × relation-count bucket. Every successful
	// planning call is observed — cache hits included, because the
	// per-shape cost history answers "what does a request cost", and
	// for cached traffic that cost is the lookup.
	planObs *obs.PlanMetrics

	plans       atomic.Uint64 //dp:atomic
	cacheHits   atomic.Uint64 //dp:atomic
	cacheMisses atomic.Uint64 //dp:atomic
	fallbacks   atomic.Uint64 //dp:atomic
	failures    atomic.Uint64 //dp:atomic

	// Memo-engine accounting, aggregated from the per-run Stats of every
	// enumeration (cache hits excluded — they do no memo work).
	pairsEmitted    atomic.Uint64 //dp:atomic
	arenaReuses     atomic.Uint64 //dp:atomic
	memoPeakEntries atomic.Int64  //dp:atomic

	// Parallel-enumeration accounting: runs that actually used worker
	// views, and the csg-cmp-pairs those workers processed in total.
	parallelRuns  atomic.Uint64 //dp:atomic
	parallelPairs atomic.Uint64 //dp:atomic

	// routed counts SolverAuto routing decisions per target algorithm
	// (indexed by Algorithm; SolverAuto itself is never a target).
	routed [int(SolverAuto) + 1]atomic.Uint64 //dp:atomic

	// SLO accounting for calls planned under WithPlanBudget: calls that
	// finished inside their budget, calls that overran it, and calls
	// the budget router routed below the topology route (see slo.go).
	sloMet      atomic.Uint64 //dp:atomic
	sloMissed   atomic.Uint64 //dp:atomic
	sloDegraded atomic.Uint64 //dp:atomic

	// histBase is the persisted planning-cost baseline the budget
	// router consults for series the live registry has not warmed up
	// (SetBaselineHistory); nil until a server installs one.
	histBase atomic.Pointer[obs.History]
}

// NewPlanner returns a Planner with the given configuration. With no
// options it plans with DPhyp under the Cout cost model, an unlimited
// budget, Greedy fallback enabled, and a DefaultPlanCacheSize plan
// cache.
func NewPlanner(opts ...Option) *Planner {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	p := &Planner{base: o, pool: &memo.Pool{}, planObs: obs.NewPlanMetrics()}
	p.base.pool = p.pool
	if o.cacheSize > 0 {
		p.cache = newPlanCache(o.cacheSize)
	}
	return p
}

// PlanObs returns the planner's dimensional latency registry: per
// shape × algorithm × relation-count-bucket planning-latency histograms
// and cache-hit counters, fed by every successful planning call. The
// serving layer renders it at /metrics and snapshots it into the
// persistent planning-cost history.
func (p *Planner) PlanObs() *obs.PlanMetrics { return p.planObs }

// observePlan records one successful planning call into the
// dimensional registry. shape is st.Shape when routing classified the
// graph and "unclassified" otherwise (direct algorithm calls skip the
// router), alg the algorithm that actually produced the plan.
func (p *Planner) observePlan(g *Graph, st *Stats, alg Algorithm, d time.Duration) {
	sh := st.Shape
	if sh == "" {
		sh = "unclassified"
	}
	p.planObs.Observe(obs.Key{
		Shape:     sh,
		Algorithm: alg.String(),
		N:         obs.NBucket(g.NumRels()),
	}, d, st.CacheHit)
}

// PlannerMetrics is a snapshot of a Planner's cumulative counters. For
// purely cacheable, error-free traffic, Plans = CacheHits + CacheMisses;
// uncacheable calls (observation hooks, generate-and-test filters, or a
// disabled cache) count toward Plans only, and a cacheable call that
// fails after its lookup counts toward CacheMisses and Failures but not
// Plans.
type PlannerMetrics struct {
	Plans          uint64 // successful planning calls, cache hits included
	CacheHits      uint64 // calls served from the plan cache
	CacheMisses    uint64 // cacheable calls that had to enumerate
	CacheEvictions uint64 // entries displaced by the LRU bound
	CacheEntries   int    // entries currently cached
	Fallbacks      uint64 // Greedy downgrades after budget trips
	Failures       uint64 // calls that returned an error

	// Memo-engine counters, aggregated across every enumeration run the
	// planner performed (cache hits excluded). PairsEmitted is the §2.2
	// effort yardstick summed over the session; ArenaReuses counts runs
	// that started on recycled memo storage (table slots and plan-node
	// arena) instead of allocating fresh; MemoPeakEntries is the largest
	// DP-table occupancy any single run reached.
	PairsEmitted    uint64
	ArenaReuses     uint64
	MemoPeakEntries int

	// Parallel-enumeration counters. ParallelRuns counts enumerations
	// that ran on worker views (Stats.Workers > 1); ParallelPairs sums
	// the csg-cmp-pairs those workers processed (built or, in the
	// deferred modes, collected), so average per-run fan-out is
	// ParallelPairs / ParallelRuns.
	ParallelRuns  uint64
	ParallelPairs uint64

	// AutoRouted counts SolverAuto routing decisions keyed by the
	// algorithm name the topology router picked (e.g. "dpsize"). Nil
	// when no call has been routed.
	AutoRouted map[string]uint64

	// Planning-time SLO counters, bumped only by calls that carried a
	// WithPlanBudget deadline. SLOMet + SLOMissed equals the number of
	// budgeted calls that produced a plan; SLODegraded counts the
	// subset the budget router routed below the topology route.
	SLOMet      uint64
	SLOMissed   uint64
	SLODegraded uint64
}

// Metrics returns a snapshot of the planner's counters. The snapshot is
// not atomic across fields: counters read under concurrent traffic may
// be a few calls apart from one another, but each is individually exact.
func (p *Planner) Metrics() PlannerMetrics {
	m := PlannerMetrics{
		Plans:           p.plans.Load(),
		CacheHits:       p.cacheHits.Load(),
		CacheMisses:     p.cacheMisses.Load(),
		Fallbacks:       p.fallbacks.Load(),
		Failures:        p.failures.Load(),
		PairsEmitted:    p.pairsEmitted.Load(),
		ArenaReuses:     p.arenaReuses.Load(),
		MemoPeakEntries: int(p.memoPeakEntries.Load()),
		ParallelRuns:    p.parallelRuns.Load(),
		ParallelPairs:   p.parallelPairs.Load(),
		SLOMet:          p.sloMet.Load(),
		SLOMissed:       p.sloMissed.Load(),
		SLODegraded:     p.sloDegraded.Load(),
	}
	if p.cache != nil {
		m.CacheEvictions = p.cache.evicted()
		m.CacheEntries = p.cache.len()
	}
	for a := range p.routed {
		if n := p.routed[a].Load(); n > 0 {
			if m.AutoRouted == nil {
				m.AutoRouted = make(map[string]uint64)
			}
			m.AutoRouted[Algorithm(a).String()] = n
		}
	}
	return m
}

// merged returns the planner's options overlaid with per-call options.
func (p *Planner) merged(opts []Option) options {
	o := p.base
	for _, f := range opts {
		f(&o)
	}
	o.pool = p.pool
	return o
}

// Plan optimizes an inner-join query. The query is validated and — on
// its first planning — repaired to a connected hypergraph (§2.1); the
// repair is remembered, so planning the same *Query repeatedly (as the
// cache encourages) does not re-add cross edges.
func (p *Planner) Plan(ctx context.Context, q *Query, opts ...Option) (*Result, error) {
	if q.err != nil {
		return nil, p.fail(q.err)
	}
	if q.g.NumRels() == 0 {
		return nil, p.fail(fmt.Errorf("repro: query has no relations"))
	}
	q.ensureConnected()
	o := p.merged(opts)
	o.ctx = ctx
	return p.planGraph(ctx, q.g, o, nil)
}

// PlanGraph runs the configured algorithm directly on a hypergraph. The
// graph must not be mutated for the duration of the call; disconnected
// graphs are not repaired (match the historical OptimizeGraph
// semantics), so they fail unless the caller ran MakeConnected.
func (p *Planner) PlanGraph(ctx context.Context, g *Graph, opts ...Option) (*Result, error) {
	o := p.merged(opts)
	o.ctx = ctx
	return p.planGraph(ctx, g, o, nil)
}

// PlanTree analyzes an operator tree (§5), derives the conflict-
// covering hypergraph, and optimizes it. Analysis of a shared TreeQuery
// is serialized internally, so concurrent PlanTree calls on the same
// query are safe.
func (p *Planner) PlanTree(ctx context.Context, t *TreeQuery, root *Expr, opts ...Option) (*Result, error) {
	o := p.merged(opts)
	o.ctx = ctx
	g, filter, err := t.derive(root, o)
	if err != nil {
		return nil, p.fail(err)
	}
	return p.planGraph(ctx, g, o, filter)
}

// BatchError reports the per-query failures of a PlanBatch call that
// could not plan every query. Errs is parallel to the input batch: a
// nil entry means the query at that index planned successfully (its
// Result is in the returned slice), a non-nil entry carries that
// query's own error. errors.Is/As see through to the individual errors
// (e.g. errors.Is(err, ErrBudgetExhausted)).
//
// Queries that were cut short because the batch context was cancelled —
// whether still waiting for a worker or already mid-enumeration — are
// reported as exactly ctx.Err() (identity, not just errors.Is), so
// callers can distinguish "this query is fine, the batch was abandoned"
// from a genuine per-query planning failure with a simple comparison
// (see Cancelled).
type BatchError struct {
	Errs []error
}

// Cancelled reports whether the query at index i failed only because
// the batch context was cancelled (its error is the context's own
// error, not a planning failure). It returns false for out-of-range
// indexes, successful queries, and genuine failures.
func (e *BatchError) Cancelled(i int, ctx context.Context) bool {
	if i < 0 || i >= len(e.Errs) || e.Errs[i] == nil {
		return false
	}
	cerr := ctx.Err()
	return cerr != nil && e.Errs[i] == cerr
}

// Error implements error.
func (e *BatchError) Error() string {
	failed, first := 0, -1
	for i, err := range e.Errs {
		if err != nil {
			failed++
			if first < 0 {
				first = i
			}
		}
	}
	if failed == 0 {
		return "repro: batch error with no failures"
	}
	return fmt.Sprintf("repro: %d of %d batch queries failed (first: query %d: %v)",
		failed, len(e.Errs), first, e.Errs[first])
}

// Unwrap exposes the non-nil per-query errors to errors.Is/errors.As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, 0, len(e.Errs))
	for _, err := range e.Errs {
		if err != nil {
			out = append(out, err)
		}
	}
	return out
}

// PlanBatch optimizes a batch of queries concurrently (bounded by
// GOMAXPROCS workers). results[i] is the plan for qs[i], or nil if that
// query failed. A failing query does not abort the batch: the remaining
// queries still plan, and the per-query errors are collected into a
// *BatchError (so one poisoned query among thousands costs exactly one
// result, not the whole batch). Cancellation of ctx is the exception —
// it stops the batch, and queries cut off by it report ctx's error.
func (p *Planner) PlanBatch(ctx context.Context, qs []*Query, opts ...Option) ([]*Result, error) {
	results := make([]*Result, len(qs))
	if len(qs) == 0 {
		return results, nil
	}
	errs := make([]error, len(qs))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(qs) {
		workers = len(qs)
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				res, err := p.Plan(ctx, qs[i], opts...)
				// A query interrupted mid-enumeration surfaces the
				// cancellation through whatever layer it reached (a
				// solver's abort, the greedy fallback's wrap, ...).
				// Normalize those entries to the context's own error so
				// a BatchError consumer can tell "cancelled with the
				// batch" apart from "this query itself is broken".
				if cerr := ctx.Err(); err != nil && cerr != nil && errors.Is(err, cerr) {
					err = cerr
				}
				results[i], errs[i] = res, err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, &BatchError{Errs: errs}
		}
	}
	return results, nil
}

// planGraph is the shared planning core: cache lookup, enumeration
// under limits, adaptive Greedy fallback, cache fill.
func (p *Planner) planGraph(ctx context.Context, g *Graph, o options, filter dp.Filter) (*Result, error) {
	// A caller that already gave up gets its context error immediately —
	// even a cache hit would be answering nobody.
	if err := ctx.Err(); err != nil {
		return nil, p.fail(err)
	}

	// The explain trace and the latency observation both measure from
	// here: validation above costs nothing, and a cache hit is as real a
	// planning outcome as an enumeration.
	start := time.Now()
	o.explain.Begin()

	// Build the graph's derived indexes up front, under the graph's
	// lock: afterwards the enumeration only reads the graph, which makes
	// concurrent planning over a shared graph safe.
	g.Freeze()

	// Resolve SolverAuto to a concrete algorithm before the cache
	// lookup: routing is a pure function of the (frozen) graph, so a
	// routed entry is interchangeable with one planned by naming the
	// same algorithm directly. annotate stamps the routing decision
	// onto the Stats of whichever path produced the result.
	// Classification costs one O(V+E) pass — the same order as the
	// Fingerprint scan every cached call already pays.
	annotate := func(*dp.Stats) {}
	slo := sloState{budget: o.planBudget}
	if o.alg == SolverAuto {
		span := o.explain.Start(obs.PhaseRoute)
		prof := shape.Classify(g)
		routed := routeAuto(prof, o.workers(g, filter))
		final := routed
		if slo.budget > 0 {
			// Budget-aware routing happens before the cache lookup for
			// the same reason SolverAuto resolution does: the key must
			// name the algorithm that actually plans, so a degraded call
			// shares entries with direct greedy/iterdp traffic and never
			// poisons the exact tier's entries. The budget itself stays
			// out of configKey — it only influences this choice.
			final, slo.predicted, slo.degraded = p.routeBudget(prof, routed, &o)
		}
		o.explain.End(span)
		o.alg = final
		p.routed[int(final)].Add(1)
		annotate = func(st *dp.Stats) {
			st.AutoRouted = true
			st.Shape = prof.Class.String()
			st.RoutedAlgorithm = final.String()
		}
	}

	// Observation hooks make a run non-reproducible from the cache (the
	// hook would not fire on a hit), and generate-and-test filters carry
	// per-analysis conflict state the fingerprint cannot see; bypass the
	// cache for both.
	cacheable := p.cache != nil && filter == nil && o.trace == nil && o.onEmit == nil
	var key string
	if cacheable {
		span := o.explain.Start(obs.PhaseCacheLookup)
		key = configKey(o) + "\x00" + g.Fingerprint()
		res, ok := p.cache.get(key)
		o.explain.End(span)
		if ok {
			res.Graph = g
			annotate(&res.Stats)
			// The cached Stats were stripped of their trace before
			// storage; attach this request's own (nil when untraced).
			o.explain.Finish()
			res.Stats.Trace = o.explain
			p.plans.Add(1)
			p.cacheHits.Add(1)
			elapsed := time.Since(start)
			p.recordSLO(&res.Stats, slo, res.Algorithm, elapsed)
			p.observePlan(g, &res.Stats, res.Algorithm, elapsed)
			return res, nil
		}
		p.cacheMisses.Add(1)
	}

	// IterDP records its own depth-0 spans (one per compression round,
	// final enumeration, recost) — wrapping it in an enumerate span
	// would double-count the whole tier; every other algorithm gets one
	// enumerate span around its run.
	var espan int32 = -1
	if o.alg != IterDP {
		espan = o.explain.Start(obs.PhaseEnumerate)
	}
	pl, st, err := runSolver(g, o, filter)
	o.explain.Annotate(espan, int64(st.CsgCmpPairs), st.TableEntries, st.Workers, 0)
	o.explain.End(espan)
	if err != nil {
		if o.noFallback || o.alg == Greedy || !errors.Is(err, dp.ErrBudgetExhausted) {
			return nil, p.fail(err)
		}
		// Budget trip: degrade to GOO. The greedy pass keeps the
		// context (cancellation still applies) but runs without a pair
		// budget — it needs only O(n³) pair inspections.
		og := o
		og.alg = Greedy
		og.budget = Budget{}
		og.trace = nil
		fspan := o.explain.Start(obs.PhaseFallback)
		gp, gst, gerr := runSolver(g, og, filter)
		o.explain.Annotate(fspan, int64(gst.CsgCmpPairs), gst.TableEntries, 1, 0)
		o.explain.End(fspan)
		if gerr != nil {
			return nil, p.fail(fmt.Errorf("repro: greedy fallback after budget trip: %w", gerr))
		}
		// Account for the work the aborted exact pass performed. The
		// occupancy high-water marks keep the exact pass's values when
		// larger — the greedy table holds only ~2n-1 entries, while the
		// aborted enumeration is what actually sized the memo.
		gst.CsgCmpPairs += st.CsgCmpPairs
		gst.CostedPlans += st.CostedPlans
		gst.TableEntries = max(gst.TableEntries, st.TableEntries)
		gst.MemoCapacity = max(gst.MemoCapacity, st.MemoCapacity)
		gst.MemoGrows = max(gst.MemoGrows, st.MemoGrows)
		gst.ArenaNodes = max(gst.ArenaNodes, st.ArenaNodes)
		// The greedy pass is serial; keep the aborted exact pass's
		// worker accounting so the trip is attributable.
		gst.Workers = st.Workers
		gst.WorkerPairs = st.WorkerPairs
		gst.BudgetExhausted = true
		gst.FallbackGreedy = true
		p.fallbacks.Add(1)
		pl, st, o.alg = gp, gst, Greedy
	}
	// Memo-engine session accounting: total pairs emitted (both passes of
	// a budget-tripped run were merged into st above), whether the run
	// reused pooled storage, and the table-occupancy high-water mark.
	p.pairsEmitted.Add(uint64(st.CsgCmpPairs))
	if st.ArenaReused {
		p.arenaReuses.Add(1)
	}
	if st.Workers > 1 {
		p.parallelRuns.Add(1)
		for _, wp := range st.WorkerPairs {
			p.parallelPairs.Add(uint64(wp))
		}
	}
	for {
		peak := p.memoPeakEntries.Load()
		if int64(st.TableEntries) <= peak ||
			p.memoPeakEntries.CompareAndSwap(peak, int64(st.TableEntries)) {
			break
		}
	}

	// The cache entry keeps the routing-agnostic stats (the key is the
	// routed algorithm's, so direct calls may hit it too) and never a
	// trace — a trace is per-request state, and a cached pointer would
	// leak one request's spans into every later hit.
	if cacheable {
		p.cache.add(key, pl, st, o.alg)
	}
	annotate(&st)
	o.explain.Finish()
	st.Trace = o.explain
	p.plans.Add(1)
	elapsed := time.Since(start)
	p.recordSLO(&st, slo, o.alg, elapsed)
	p.observePlan(g, &st, o.alg, elapsed)
	return &Result{Plan: pl, Stats: st, Graph: g, Algorithm: o.alg}, nil
}

func (p *Planner) fail(err error) error {
	p.failures.Add(1)
	return err
}

// configKey encodes every configuration dimension that influences plan
// choice, so per-call option overrides cannot alias cache entries. The
// budget and fallback policy are part of the key because a budget trip
// caches a Greedy plan — which must not be served to a call that could
// afford the exact enumeration (or that asked for a hard error).
// Parallelism is deliberately absent: the engine's order-independent
// tie-break makes plans byte-identical at every worker count, so a
// plan enumerated serially is interchangeable with a parallel one.
func configKey(o options) string {
	return fmt.Sprintf("%d/%s/%v/%t/%d:%d/%t/%d",
		o.alg, o.model.Name(), o.rule, o.genAndTest,
		o.budget.MaxCsgCmpPairs, o.budget.MaxCostedPlans, o.noFallback,
		o.clusterSize)
}

var (
	defaultPlannerOnce sync.Once
	defaultPlannerInst *Planner
)

// DefaultPlanner returns the lazily-initialized process-wide Planner
// backing the one-shot Query.Optimize, TreeQuery.Optimize,
// OptimizeGraph, and OptimizeJSON compatibility wrappers. It uses the
// default configuration (DPhyp, Cout, unlimited budget, shared plan
// cache); per-call options passed to the wrappers are merged on top.
func DefaultPlanner() *Planner {
	defaultPlannerOnce.Do(func() { defaultPlannerInst = NewPlanner() })
	return defaultPlannerInst
}
