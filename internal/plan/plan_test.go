package plan

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
)

func leftDeep3() *Node {
	l0 := Leaf(0, 100)
	l1 := Leaf(1, 200)
	l2 := Leaf(2, 300)
	j1 := Join(algebra.Join, l0, l1, []int{0}, 50, 50)
	return Join(algebra.LeftOuter, j1, l2, []int{1}, 60, 110)
}

func TestLeaf(t *testing.T) {
	l := Leaf(3, 42)
	if !l.IsLeaf() || l.Rel != 3 || l.Card != 42 || l.Cost != 0 {
		t.Errorf("leaf = %+v", l)
	}
	if !l.Rels.Equal(bitset.Single(3)) {
		t.Errorf("leaf rels = %v", l.Rels)
	}
	if l.Joins() != 0 || l.Relations() != 1 || l.Depth() != 1 {
		t.Error("leaf metrics")
	}
}

func TestJoinNode(t *testing.T) {
	p := leftDeep3()
	if p.IsLeaf() {
		t.Fatal("join is not a leaf")
	}
	if !p.Rels.Equal(bitset.New(0, 1, 2)) {
		t.Errorf("rels = %v", p.Rels)
	}
	if p.Joins() != 2 || p.Relations() != 3 || p.Depth() != 3 {
		t.Errorf("metrics: joins=%d rels=%d depth=%d", p.Joins(), p.Relations(), p.Depth())
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestJoinPanics(t *testing.T) {
	cases := []func(){
		func() { Join(algebra.Join, nil, Leaf(0, 1), nil, 1, 1) },
		func() { Join(algebra.Join, Leaf(0, 1), nil, nil, 1, 1) },
		func() { Join(algebra.InvalidOp, Leaf(0, 1), Leaf(1, 1), nil, 1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestShapes(t *testing.T) {
	a, b, c, d := Leaf(0, 1), Leaf(1, 1), Leaf(2, 1), Leaf(3, 1)
	ld := Join(algebra.Join, Join(algebra.Join, a, b, nil, 1, 1), c, nil, 1, 1)
	if s := ld.TreeShape(); s != LeftDeep {
		t.Errorf("shape = %v, want left-deep", s)
	}
	rd := Join(algebra.Join, a, Join(algebra.Join, b, c, nil, 1, 1), nil, 1, 1)
	if s := rd.TreeShape(); s != RightDeep {
		t.Errorf("shape = %v, want right-deep", s)
	}
	zz := Join(algebra.Join, d, Join(algebra.Join, Join(algebra.Join, a, b, nil, 1, 1), c, nil, 1, 1), nil, 1, 1)
	// d ⋈ ((a⋈b)⋈c): root has leaf left, composite right; inner all have leaf right.
	if s := zz.TreeShape(); s != ZigZag {
		t.Errorf("shape = %v, want zig-zag", s)
	}
	bushy := Join(algebra.Join,
		Join(algebra.Join, a, b, nil, 1, 1),
		Join(algebra.Join, c, d, nil, 1, 1), nil, 1, 1)
	if s := bushy.TreeShape(); s != Bushy {
		t.Errorf("shape = %v, want bushy", s)
	}
	if Leaf(0, 1).TreeShape() != LeftDeep {
		t.Error("single leaf defaults to left-deep")
	}
	for _, s := range []Shape{LeftDeep, RightDeep, ZigZag, Bushy} {
		if s.String() == "unknown" {
			t.Errorf("missing name for shape %d", s)
		}
	}
	if Shape(99).String() != "unknown" {
		t.Error("out-of-range shape must be unknown")
	}
}

func TestCompact(t *testing.T) {
	p := leftDeep3()
	got := p.Compact()
	want := "((R0 ⋈ R1) ⟕ R2)"
	if got != want {
		t.Errorf("Compact = %q, want %q", got, want)
	}
}

func TestStringRendering(t *testing.T) {
	s := leftDeep3().String()
	for _, frag := range []string{"leftouterjoin", "join", "scan R0", "scan R2", "card=", "cost=", "edges=[1]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q in:\n%s", frag, s)
		}
	}
}

func TestEqual(t *testing.T) {
	a := leftDeep3()
	b := leftDeep3()
	if !a.Equal(b) {
		t.Error("identical trees must be equal")
	}
	b.Op = algebra.Join
	if a.Equal(b) {
		t.Error("different root op must differ")
	}
	c := leftDeep3()
	c.Left.Left.Rel = 5
	c.Left.Left.Rels = bitset.Single(5)
	if a.Equal(c) {
		t.Error("different leaf must differ")
	}
	if a.Equal(nil) {
		t.Error("nil differs from non-nil")
	}
	var n1, n2 *Node
	if !n1.Equal(n2) {
		t.Error("nil equals nil")
	}
	// Cost differences alone do not affect structural equality.
	d := leftDeep3()
	d.Cost = 999
	if !a.Equal(d) {
		t.Error("cost must not affect Equal")
	}
}

func TestWalkAndLeafOrder(t *testing.T) {
	p := leftDeep3()
	var count int
	p.Walk(func(*Node) { count++ })
	if count != 5 {
		t.Errorf("walked %d nodes, want 5", count)
	}
	order := p.LeafOrder()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("leaf order = %v", order)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := leftDeep3()
	p.Rels = bitset.New(0, 1) // drop R2 from the root cover
	if p.Validate() == nil {
		t.Error("expected partition violation")
	}

	q := leftDeep3()
	q.Left.Right.Rel = 2 // duplicate R2 on both sides
	q.Left.Right.Rels = bitset.Single(2)
	q.Left.Rels = bitset.New(0, 2)
	if q.Validate() == nil {
		t.Error("expected overlap violation")
	}

	leaf := Leaf(0, 1)
	leaf.Rels = bitset.New(0, 1)
	if leaf.Validate() == nil {
		t.Error("expected leaf rels violation")
	}
}
