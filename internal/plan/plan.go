// Package plan represents the bushy operator trees produced by the join
// enumeration algorithms.
//
// A plan node is either a scan of a base relation or a binary operator
// over two subplans. Nodes carry the relation set they cover, the
// estimated output cardinality, the accumulated cost, and the hypergraph
// edges whose predicates are applied at the node, so that EmitCsgCmp can
// assemble the conjunction p = ⋀ P(u,v) of §3.5.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/bitset"
)

// Node is a node of an operator tree. Exactly one of the two layouts is
// populated: leaves have Rel ≥ 0 and no children; inner nodes have
// Op ≠ InvalidOp and both children.
type Node struct {
	Op          algebra.Op
	Left, Right *Node

	Rel  int        // base relation index for leaves; -1 otherwise
	Rels bitset.Set // set of relations covered by this subtree

	Card float64 // estimated output cardinality
	Cost float64 // accumulated cost under the optimizing cost model

	// Phys is the physical implementation chosen for this node when the
	// optimizing model is a cost.PhysicalModel; PhysNone under
	// logical-only models and for leaves.
	Phys algebra.PhysOp

	Edges []int // hypergraph edge indices applied at this node
}

// Leaf returns a scan node for relation rel with the given cardinality.
// A scan has zero cost under all provided models (only intermediate
// results are priced).
func Leaf(rel int, card float64) *Node {
	return &Node{Rel: rel, Rels: bitset.Single(rel), Card: card}
}

// Join returns an operator node combining left and right.
func Join(op algebra.Op, left, right *Node, edges []int, card, cost float64) *Node {
	if left == nil || right == nil {
		panic("plan: join with nil child")
	}
	if !op.Valid() {
		panic("plan: join with invalid operator")
	}
	return &Node{
		Op:    op,
		Left:  left,
		Right: right,
		Rel:   -1,
		Rels:  left.Rels.Union(right.Rels),
		Card:  card,
		Cost:  cost,
		Edges: edges,
	}
}

// IsLeaf reports whether n is a base relation scan.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Joins returns the number of operator nodes in the tree.
func (n *Node) Joins() int {
	if n.IsLeaf() {
		return 0
	}
	return 1 + n.Left.Joins() + n.Right.Joins()
}

// Relations returns the number of leaves.
func (n *Node) Relations() int { return n.Rels.Len() }

// Depth returns the height of the tree (a leaf has depth 1).
func (n *Node) Depth() int {
	if n.IsLeaf() {
		return 1
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// Shape classifies the tree form.
type Shape int

// Tree shapes, from most to least constrained.
const (
	LeftDeep  Shape = iota // every right child is a leaf
	RightDeep              // every left child is a leaf
	ZigZag                 // every operator has at least one leaf child
	Bushy                  // some operator joins two composite inputs
)

func (s Shape) String() string {
	switch s {
	case LeftDeep:
		return "left-deep"
	case RightDeep:
		return "right-deep"
	case ZigZag:
		return "zig-zag"
	case Bushy:
		return "bushy"
	}
	return "unknown"
}

// TreeShape returns the shape of the tree. Trees with ≤ 1 join are
// left-deep by convention.
func (n *Node) TreeShape() Shape {
	leftDeep, rightDeep, zigzag := true, true, true
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsLeaf() {
			return
		}
		if !m.Right.IsLeaf() {
			leftDeep = false
		}
		if !m.Left.IsLeaf() {
			rightDeep = false
		}
		if !m.Left.IsLeaf() && !m.Right.IsLeaf() {
			zigzag = false
		}
		walk(m.Left)
		walk(m.Right)
	}
	walk(n)
	switch {
	case leftDeep:
		return LeftDeep
	case rightDeep:
		return RightDeep
	case zigzag:
		return ZigZag
	default:
		return Bushy
	}
}

// Compact renders the tree on one line, e.g. "((R0 ⋈ R1) ⟕ R2)".
func (n *Node) Compact() string {
	var b strings.Builder
	n.compact(&b)
	return b.String()
}

func (n *Node) compact(b *strings.Builder) {
	if n.IsLeaf() {
		fmt.Fprintf(b, "R%d", n.Rel)
		return
	}
	b.WriteByte('(')
	n.Left.compact(b)
	b.WriteByte(' ')
	b.WriteString(n.Op.Symbol())
	b.WriteByte(' ')
	n.Right.compact(b)
	b.WriteByte(')')
}

// String renders an indented multi-line tree with cardinalities and
// costs.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%sscan R%d  card=%.6g\n", indent, n.Rel, n.Card)
		return
	}
	fmt.Fprintf(b, "%s%s %v  card=%.6g cost=%.6g", indent, n.Op, n.Rels, n.Card, n.Cost)
	if n.Phys != algebra.PhysNone {
		fmt.Fprintf(b, " phys=%s", n.Phys)
	}
	if len(n.Edges) > 0 {
		fmt.Fprintf(b, " edges=%v", n.Edges)
	}
	b.WriteByte('\n')
	n.Left.render(b, depth+1)
	n.Right.render(b, depth+1)
}

// Equal reports structural equality: same operators, same relation sets,
// same child structure. Costs and cardinalities are not compared.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.IsLeaf() != m.IsLeaf() {
		return false
	}
	if n.IsLeaf() {
		return n.Rel == m.Rel
	}
	return n.Op == m.Op && n.Rels.Equal(m.Rels) &&
		n.Left.Equal(m.Left) && n.Right.Equal(m.Right)
}

// Clone returns a deep copy of the tree, including the applied-edge
// slices. The planner's plan cache hands out clones so that one caller
// mutating a returned plan cannot corrupt another caller's result.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.Left = n.Left.Clone()
	c.Right = n.Right.Clone()
	if n.Edges != nil {
		c.Edges = append([]int(nil), n.Edges...)
	}
	return &c
}

// Walk calls f for every node in pre-order.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	if !n.IsLeaf() {
		n.Left.Walk(f)
		n.Right.Walk(f)
	}
}

// LeafOrder returns the relation indices in left-to-right leaf order.
func (n *Node) LeafOrder() []int {
	var out []int
	n.Walk(func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m.Rel)
		}
	})
	return out
}

// Validate checks structural invariants: children partition the relation
// set, leaves are singletons, operators are valid. It returns the first
// violation found.
func (n *Node) Validate() error {
	if n.IsLeaf() {
		if n.Rel < 0 {
			return fmt.Errorf("plan: leaf with negative relation index")
		}
		if !n.Rels.Equal(bitset.Single(n.Rel)) {
			return fmt.Errorf("plan: leaf R%d has Rels %v", n.Rel, n.Rels)
		}
		return nil
	}
	if !n.Op.Valid() {
		return fmt.Errorf("plan: inner node with invalid op")
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("plan: inner node with missing child")
	}
	if !n.Left.Rels.Disjoint(n.Right.Rels) {
		return fmt.Errorf("plan: children overlap: %v and %v", n.Left.Rels, n.Right.Rels)
	}
	if !n.Left.Rels.Union(n.Right.Rels).Equal(n.Rels) {
		return fmt.Errorf("plan: children do not partition %v", n.Rels)
	}
	if err := n.Left.Validate(); err != nil {
		return err
	}
	return n.Right.Validate()
}
