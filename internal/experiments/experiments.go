// Package experiments defines every experiment of the paper's evaluation
// — the two tables of §4.2/§4.3, Figures 5, 6, and 7, and the two §5.8
// experiments of Figure 8 — as runnable series. cmd/dpbench executes and
// prints them; bench_test.go wraps them as testing.B benchmarks. Keeping
// the definitions in one place guarantees that both report the same
// workloads.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/dpsize"
	"repro/internal/dpsub"
	"repro/internal/hypergraph"
	"repro/internal/optree"
	"repro/internal/plan"
	"repro/internal/workload"
)

// Runner performs one optimization of a prepared workload. Workload
// construction happens before the Runner is created, so timing a Runner
// measures pure optimization time, as the paper does. The context is
// threaded into the enumeration loops, so slow cells (16-relation
// DPsize/DPsub stars run for minutes) can be cut off with a deadline.
type Runner func(ctx context.Context) (*plan.Node, dp.Stats, error)

// Series is one experiment: a family of workloads swept over X, run by
// several competing configurations.
type Series struct {
	// ID is the stable identifier used by dpbench flags and EXPERIMENTS.md.
	ID string
	// Title describes the experiment as the paper captions it.
	Title string
	// XLabel names the sweep parameter.
	XLabel string
	// Xs are the sweep values.
	Xs []int
	// Algs names the competing configurations, in presentation order.
	Algs []string
	// Paper summarizes the expected result shape from the paper.
	Paper string
	// Make prepares a Runner for one (x, algorithm) cell.
	Make func(x int, alg string) Runner
}

func graphRunner(g *hypergraph.Graph, alg string) Runner {
	switch alg {
	case "dphyp":
		return func(ctx context.Context) (*plan.Node, dp.Stats, error) {
			return core.Solve(g, core.Options{Limits: dp.Limits{Ctx: ctx}})
		}
	case "dpsize":
		return func(ctx context.Context) (*plan.Node, dp.Stats, error) {
			return dpsize.Solve(g, dpsize.Options{Limits: dp.Limits{Ctx: ctx}})
		}
	case "dpsub":
		return func(ctx context.Context) (*plan.Node, dp.Stats, error) {
			return dpsub.Solve(g, dpsub.Options{Limits: dp.Limits{Ctx: ctx}})
		}
	}
	panic("experiments: unknown algorithm " + alg)
}

var threeDP = []string{"dphyp", "dpsize", "dpsub"}

// cycleSeries builds a Fig. 5 style series over hyperedge splits.
func cycleSeries(id, title string, n int) Series {
	return Series{
		ID:     id,
		Title:  title,
		XLabel: "hyperedge splits",
		Xs:     seq(0, workload.MaxSplits(n/2)),
		Algs:   threeDP,
		Paper:  "DPhyp lowest everywhere; DPsize beats DPsub on large cycles",
		Make: func(x int, alg string) Runner {
			g := workload.CycleHyper(n, x, workload.DefaultConfig())
			return graphRunner(g, alg)
		},
	}
}

// starSeries builds a Fig. 6 style series over hyperedge splits.
func starSeries(id, title string, sat int) Series {
	return Series{
		ID:     id,
		Title:  title,
		XLabel: "hyperedge splits",
		Xs:     seq(0, workload.MaxSplits(sat/2)),
		Algs:   threeDP,
		Paper:  "DPhyp lowest by a large margin; DPsub beats DPsize on stars",
		Make: func(x int, alg string) Runner {
			g := workload.StarHyper(sat, x, workload.DefaultConfig())
			return graphRunner(g, alg)
		},
	}
}

// starRegularSeries is Fig. 7: star queries without hyperedges, swept
// over the number of relations.
func starRegularSeries(maxN int) Series {
	return Series{
		ID:     "fig7-star-regular",
		Title:  "Star Queries without Hyperedges (Fig. 7)",
		XLabel: "number of relations",
		Xs:     seq(3, maxN),
		Algs:   threeDP,
		Paper:  "log-scale separation grows with n; DPhyp ≪ DPsub < DPsize at small n, DPsub worst overall growth",
		Make: func(x int, alg string) Runner {
			g := workload.Star(x, workload.DefaultConfig())
			return graphRunner(g, alg)
		},
	}
}

// antijoinSeries is Fig. 8a: a left-deep star operator tree with an
// increasing number of antijoins; hyperedge-driven DPhyp versus the
// TES generate-and-test alternative.
func antijoinSeries(n int) Series {
	return Series{
		ID:     "fig8a-antijoin",
		Title:  fmt.Sprintf("Star Query with %d Relations, increasing antijoins (Fig. 8a)", n),
		XLabel: "number of anti-joins",
		Xs:     seq(0, n-1),
		Algs:   []string{"dphyp-hypernodes", "dphyp-tes"},
		Paper:  "both fall as antijoins restrict the space; hypernodes faster by orders of magnitude",
		Make: func(x int, alg string) Runner {
			root, rels := workload.StarTree(n, x, workload.DefaultConfig())
			tr, err := optree.Analyze(root, rels, optree.Conservative)
			if err != nil {
				panic(err)
			}
			switch alg {
			case "dphyp-hypernodes":
				g := tr.Hypergraph(optree.TESEdges)
				return func(ctx context.Context) (*plan.Node, dp.Stats, error) {
					return core.Solve(g, core.Options{Limits: dp.Limits{Ctx: ctx}})
				}
			case "dphyp-tes":
				g := tr.Hypergraph(optree.SESEdges)
				f := tr.Filter(g)
				return func(ctx context.Context) (*plan.Node, dp.Stats, error) {
					return core.Solve(g, core.Options{Filter: f, Limits: dp.Limits{Ctx: ctx}})
				}
			}
			panic("experiments: unknown algorithm " + alg)
		},
	}
}

// outerJoinSeries is Fig. 8b: a left-deep cycle operator tree with an
// increasing number of outer joins; DPhyp versus DPsize, both on the
// TES-derived hypergraph. (DPsub is excluded as in the paper: "DPsub is
// so slow that we excluded it".)
func outerJoinSeries(n int) Series {
	return Series{
		ID:     "fig8b-outerjoin",
		Title:  fmt.Sprintf("Cycle Query with %d Relations, increasing outer joins (Fig. 8b)", n),
		XLabel: "number of outer joins",
		Xs:     seq(0, n-1),
		Algs:   []string{"dphyp", "dpsize"},
		Paper:  "time dips then grows again (outer joins reorder among themselves); DPhyp < DPsize throughout",
		Make: func(x int, alg string) Runner {
			root, rels := workload.CycleTree(n, x, workload.DefaultConfig())
			tr, err := optree.Analyze(root, rels, optree.Conservative)
			if err != nil {
				panic(err)
			}
			g := tr.Hypergraph(optree.TESEdges)
			return graphRunner(g, alg)
		},
	}
}

// All returns every experiment at the paper's sizes.
func All() []Series {
	return []Series{
		{
			ID:     "table-cycle4",
			Title:  "Cycle queries with 4 relations (§4.2 table)",
			XLabel: "hyperedge splits",
			Xs:     []int{0, 1},
			Algs:   threeDP,
			Paper:  "only small differences, all far below a millisecond",
			Make: func(x int, alg string) Runner {
				g := workload.CycleHyper(4, x, workload.DefaultConfig())
				return graphRunner(g, alg)
			},
		},
		{
			ID:     "table-star4",
			Title:  "Star queries with 4 satellite relations (§4.3 table)",
			XLabel: "hyperedge splits",
			Xs:     []int{0, 1},
			Algs:   threeDP,
			Paper:  "DPsize ≈ 2x DPhyp; DPsub between",
			Make: func(x int, alg string) Runner {
				g := workload.StarHyper(4, x, workload.DefaultConfig())
				return graphRunner(g, alg)
			},
		},
		cycleSeries("fig5-cycle8", "Cycle Queries with 8 Relations (Fig. 5 left)", 8),
		cycleSeries("fig5-cycle16", "Cycle Queries with 16 Relations (Fig. 5 right)", 16),
		starSeries("fig6-star8", "Star Queries with 8 Relations (Fig. 6 left)", 8),
		starSeries("fig6-star16", "Star Queries with 16 Relations (Fig. 6 right)", 16),
		starRegularSeries(16),
		antijoinSeries(16),
		outerJoinSeries(16),
	}
}

// Quick returns reduced-size variants that finish in seconds, for use in
// `go test -bench` and smoke runs. IDs carry a -quick suffix where the
// size differs from the paper's.
func Quick() []Series {
	qs := []Series{
		{
			ID:     "table-cycle4",
			Title:  "Cycle queries with 4 relations (§4.2 table)",
			XLabel: "hyperedge splits",
			Xs:     []int{0, 1},
			Algs:   threeDP,
			Make: func(x int, alg string) Runner {
				g := workload.CycleHyper(4, x, workload.DefaultConfig())
				return graphRunner(g, alg)
			},
		},
		{
			ID:     "table-star4",
			Title:  "Star queries with 4 satellite relations (§4.3 table)",
			XLabel: "hyperedge splits",
			Xs:     []int{0, 1},
			Algs:   threeDP,
			Make: func(x int, alg string) Runner {
				g := workload.StarHyper(4, x, workload.DefaultConfig())
				return graphRunner(g, alg)
			},
		},
		cycleSeries("fig5-cycle8", "Cycle Queries with 8 Relations (Fig. 5 left)", 8),
		cycleSeries("fig5-cycle12-quick", "Cycle Queries, reduced to 12 relations (Fig. 5 right)", 12),
		starSeries("fig6-star8", "Star Queries with 8 Relations (Fig. 6 left)", 8),
		starSeries("fig6-star12-quick", "Star Queries, reduced to 12 satellites (Fig. 6 right)", 12),
		starRegularSeries(13),
		antijoinSeries(12),
		outerJoinSeries(12),
	}
	qs[6].ID = "fig7-star-regular-quick"
	qs[7].ID = "fig8a-antijoin-quick"
	qs[8].ID = "fig8b-outerjoin-quick"
	return qs
}

// ByID finds a series by identifier in the given set.
func ByID(set []Series, id string) (Series, bool) {
	for _, s := range set {
		if s.ID == id {
			return s, true
		}
	}
	return Series{}, false
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}
