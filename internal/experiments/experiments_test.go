package experiments

import (
	"context"

	"testing"
)

func TestAllSeriesWellFormed(t *testing.T) {
	for _, set := range [][]Series{All(), Quick()} {
		ids := map[string]bool{}
		for _, s := range set {
			if s.ID == "" || s.Title == "" || s.XLabel == "" {
				t.Errorf("series %q missing metadata", s.ID)
			}
			if ids[s.ID] {
				t.Errorf("duplicate id %q", s.ID)
			}
			ids[s.ID] = true
			if len(s.Xs) == 0 || len(s.Algs) == 0 {
				t.Errorf("series %q has no sweep or algorithms", s.ID)
			}
		}
	}
}

// Every experiment covers the paper's evaluation: two tables, Figs 5–7,
// and the two Fig. 8 experiments.
func TestFullSuiteCoverage(t *testing.T) {
	want := []string{
		"table-cycle4", "table-star4",
		"fig5-cycle8", "fig5-cycle16",
		"fig6-star8", "fig6-star16",
		"fig7-star-regular", "fig8a-antijoin", "fig8b-outerjoin",
	}
	for _, id := range want {
		if _, ok := ByID(All(), id); !ok {
			t.Errorf("full suite missing %s", id)
		}
	}
	if _, ok := ByID(All(), "nope"); ok {
		t.Error("ByID must reject unknown ids")
	}
}

// Smoke-run every cell of the quick suite at its smallest sweep value,
// and every algorithm of the cheap series across the whole sweep:
// runners must succeed and produce consistent plan costs across
// algorithms of the same series.
func TestQuickRunnersExecute(t *testing.T) {
	for _, s := range Quick() {
		xs := []int{s.Xs[0]}
		cheap := len(s.Xs) <= 4
		if cheap {
			xs = s.Xs
		}
		for _, x := range xs {
			var costs []float64
			for _, alg := range s.Algs {
				p, st, err := s.Make(x, alg)(context.Background())
				if err != nil {
					t.Fatalf("%s x=%d %s: %v", s.ID, x, alg, err)
				}
				if st.CsgCmpPairs <= 0 {
					t.Errorf("%s x=%d %s: no pairs", s.ID, x, alg)
				}
				costs = append(costs, p.Cost)
			}
			for i := 1; i < len(costs); i++ {
				if costs[i] != costs[0] {
					t.Errorf("%s x=%d: algorithm %s cost %g != %g",
						s.ID, x, s.Algs[i], costs[i], costs[0])
				}
			}
		}
	}
}

// The Fig. 8a mechanism must show in the statistics: at high antijoin
// counts the hypernode formulation enumerates far fewer pairs than the
// generate-and-test alternative rejects.
func TestFig8aMechanism(t *testing.T) {
	s, ok := ByID(Quick(), "fig8a-antijoin-quick")
	if !ok {
		t.Fatal("missing fig8a")
	}
	k := s.Xs[len(s.Xs)-1] // all antijoins
	_, hyp, err := s.Make(k, "dphyp-hypernodes")(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, tes, err := s.Make(k, "dphyp-tes")(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hyp.CsgCmpPairs != k {
		t.Errorf("hypernodes pairs = %d, want %d (§5.7's O(n))", hyp.CsgCmpPairs, k)
	}
	if tes.FilterReject == 0 {
		t.Error("generate-and-test must reject candidates")
	}
}

// The Fig. 8b mechanism: the search space dips when outer joins freeze
// orderings against inner joins, then grows as outer joins dominate.
func TestFig8bMechanism(t *testing.T) {
	s, ok := ByID(Quick(), "fig8b-outerjoin-quick")
	if !ok {
		t.Fatal("missing fig8b")
	}
	pairs := map[int]int{}
	for _, k := range []int{0, 1, s.Xs[len(s.Xs)-1]} {
		_, st, err := s.Make(k, "dphyp")(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		pairs[k] = st.CsgCmpPairs
	}
	last := s.Xs[len(s.Xs)-1]
	if !(pairs[1] < pairs[0]) {
		t.Errorf("one outer join must shrink the space: %v", pairs)
	}
	if !(pairs[last] > pairs[1]) {
		t.Errorf("all-outer-join cycle must re-grow the space: %v", pairs)
	}
}
