// Package topdown implements a naive top-down memoization join
// enumerator — the "main competitor for dynamic programming" discussed in
// §1 of the paper. It recursively partitions relation sets, memoizing
// best plans, and needs generate-and-test over all 2^(|S|-1) partitions
// of every set it visits: exactly the overhead that DeHaan and Tompa's
// Top-Down Partition Search [7] removes with minimal graph cuts, and
// that DPccp/DPhyp avoid bottom-up.
//
// The paper does not measure this baseline (it measures DPsize and
// DPsub); it is included as an extension so the repository can
// demonstrate the §1 claim that naive memoization pays for failing
// partition tests the same way DPsub does.
package topdown

import (
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

// Options mirrors the options of the other enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *dp.Pool
}

// Solve runs top-down memoization over g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	b := opts.Pool.Get(g, opts.Model)
	defer opts.Pool.Put(b)
	b.Filter = opts.Filter
	b.OnEmit = opts.OnEmit
	b.SetLimits(opts.Limits)
	n := g.NumRels()
	if n == 0 {
		return nil, b.Stats, errEmpty
	}
	b.Init()

	// done marks sets whose partitions have all been explored, whether or
	// not a plan was found (failure memoization matters: disconnected
	// sets are re-encountered exponentially often otherwise).
	done := make(map[bitset.Set]bool, 1<<uint(min(n, 20)))

	var solve func(S bitset.Set) *plan.Node
	solve = func(S bitset.Set) *plan.Node {
		if S.IsSingleton() {
			return b.Best(S)
		}
		if done[S] {
			return b.Best(S)
		}
		done[S] = true
		// Generate-and-test over all partitions with min(S) ∈ S1,
		// recursing first so subplans are final before pricing.
		lo := S.MinSet()
		rest := S.MinusMin()
		for a := bitset.Empty; ; a = a.NextSubset(rest) {
			// The partition generate-and-test loop is where this
			// enumerator spends its time; poll cancellation here.
			if !b.Step() {
				return nil
			}
			S1 := lo.Union(a)
			S2 := S.Minus(S1)
			if S2.IsEmpty() {
				break // a == rest: S1 == S
			}
			if g.ConnectsTo(S1, S2) && solve(S1) != nil && solve(S2) != nil {
				b.EmitCsgCmp(S1, S2)
			}
			if a == rest {
				break
			}
		}
		return b.Best(S)
	}

	solve(g.AllNodes())
	p, err := b.Final()
	return p, b.Stats, err
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("topdown: empty hypergraph")
