// Package topdown implements a naive top-down memoization join
// enumerator — the "main competitor for dynamic programming" discussed in
// §1 of the paper. It recursively partitions relation sets, memoizing
// best plans, and needs generate-and-test over all 2^(|S|-1) partitions
// of every set it visits: exactly the overhead that DeHaan and Tompa's
// Top-Down Partition Search [7] removes with minimal graph cuts, and
// that DPccp/DPhyp avoid bottom-up.
//
// The paper does not measure this baseline (it measures DPsize and
// DPsub); it is included as an extension so the repository can
// demonstrate the §1 claim that naive memoization pays for failing
// partition tests the same way DPsub does.
//
// The solver is a pure enumerator: plan memoization, budgets, and plan
// construction route through the shared memo engine, and the failure
// memo (sets whose partitions have been fully explored without a plan)
// uses the same open-addressing memo.Table instead of a Go map.
package topdown

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Options mirrors the options of the other enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *memo.Pool

	// Explain, when non-nil, receives phase spans for the run (the
	// engine records the materialize phase; the planner wraps the whole
	// enumeration). Unlike OnEmit it does not force the serial engine.
	Explain *obs.Trace

	// Parallelism > 1 enables the parallel partition search: exploration
	// proceeds level-synchronously by descending set size (discovery only
	// flows from supersets to proper subsets, so by the time a level is
	// processed every set it must explore is known), with each level's
	// 2^(|S|-1) partition indices chunked across workers claimed by
	// atomic counter. Workers answer "does a plan for S exist" — the
	// serial recursion's solve() result — with a structural Definition-3
	// connectivity test cached per worker, which under the dp.ParallelSafe
	// admissibility precheck is exactly the answer the finished memo
	// would give. Discovered sets merge into the shared exploration memo
	// at level barriers; admitted pairs are collected per worker and
	// priced level-by-level (dp.ParRun.PriceLevels) afterwards, so the
	// final plan is byte-identical at any worker count. Graphs failing
	// the precheck, n ≥ 63, filters, and emission hooks fall back to the
	// serial recursion. 0 or 1 runs today's serial engine.
	Parallelism int
}

// Solve runs top-down memoization over g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	defer opts.Pool.Put(e)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	e.SetTrace(opts.Explain)
	n := g.NumRels()
	if n == 0 {
		return nil, e.Stats, errEmpty
	}
	b.Init()

	// The parallel mode needs plan-construction acceptance to be
	// cost-free (dp.ParallelSafe: membership ⇔ connectivity) and has no
	// serial emission order to offer observation hooks; the partition-
	// index arithmetic packs into one word, hence n < 63 (DPsub's gate).
	if opts.Parallelism > 1 && opts.Filter == nil && opts.OnEmit == nil &&
		n >= 2 && n < 63 && dp.ParallelSafe(g) {
		solveParallel(g, e, b, n, opts.Parallelism, opts.Explain)
		p, err := b.Final()
		return p, e.Stats, err
	}

	// done marks sets whose partitions have all been explored, whether or
	// not a plan was found (failure memoization matters: disconnected
	// sets are re-encountered exponentially often otherwise). It lives in
	// the engine's scratch table so its storage is pooled across runs.
	s := solver{g: g, e: e, done: e.Scratch(1 << uint(min(n, 12)))}
	s.solve(g.AllNodes())
	p, err := b.Final()
	return p, e.Stats, err
}

// exploreChunk is the number of consecutive partition indices one work
// unit covers. Large enough that the atomic claim amortizes, small
// enough that a level of one huge set (the first level is always the
// single set V with 2^(n-1) partitions) still spreads across workers.
const exploreChunk = 256

// solveParallel runs the level-synchronous parallel partition search.
//
// The serial recursion explores a uniquely determined set space: V is
// explored, and while exploring S, a partition (S1,S2) that passes
// ConnectsTo explores S1, and additionally explores S2 iff S1 turned
// out connected (the && short-circuit). That space is the least
// fixpoint of those discovery rules — independent of visit order — and
// since every discovered set is a proper subset of its discoverer, it
// can be computed level-by-level in descending set size. Each level's
// sets are exploded into (set, partition-chunk) work units claimed
// dynamically; discoveries collect per worker and fold into the shared
// exploration memo at the level barrier, exactly reproducing the
// serial explored space, pair set, and CsgCmpPairs count.
func solveParallel(g *hypergraph.Graph, e *memo.Engine, b *dp.Builder, n, workers int, tr *obs.Trace) {
	pr := dp.NewParRun(b, workers)
	pr.Par.StartLevel()
	collect := tr.Start(obs.PhaseCollect)

	// seen is the merged exploration memo (the parallel counterpart of
	// the serial done table); it is written only at level barriers, so
	// workers read it lock-free between them.
	seen := e.Scratch(1 << uint(min(n, 12)))
	all := g.AllNodes()
	seen.Put(all, 1)
	bySize := make([][]bitset.Set, n+1)
	bySize[n] = []bitset.Set{all}

	ws := make([]*wstate, workers)
	for w := range ws {
		we := pr.Bs[w].Engine
		ws[w] = &wstate{g: g, we: we, wb: pr.Bs[w], cache: we.Scratch(1 << uint(min(n, 12)))}
	}

	for size := n; size >= 2; size-- {
		level := bySize[size]
		if len(level) == 0 {
			continue
		}
		parts := uint64(1) << uint(size-1) // subsets of S \ min(S), incl. the empty-complement one
		chunksPerSet := (parts + exploreChunk - 1) / exploreChunk
		total := uint64(len(level)) * chunksPerSet
		var (
			next atomic.Uint64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			st := ws[w]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					u := next.Add(1) - 1
					if u >= total || st.we.Aborted() != nil {
						return
					}
					st.explore(level[u/chunksPerSet], u%chunksPerSet, parts, seen)
				}
			}()
		}
		wg.Wait()
		if pr.Par.Aborted() != nil {
			break
		}
		// Level barrier: fold each worker's discoveries into the shared
		// memo. Two workers may have found the same set; the memo check
		// dedups, so every set enters a worklist exactly once.
		for _, st := range ws {
			for _, T := range st.found {
				if _, ok := seen.Get(T); !ok {
					seen.Put(T, 1)
					bySize[T.Len()] = append(bySize[T.Len()], T)
				}
			}
			st.found = st.found[:0]
		}
	}
	pr.Par.FinishLevel(memo.LevelCollected)
	tr.Annotate(collect, int64(e.Stats.CsgCmpPairs), 0, workers, 0)
	tr.End(collect)
	if pr.Par.Aborted() != nil {
		return
	}
	price := tr.Start(obs.PhasePrice)
	pr.PriceLevels(pr.Buckets(n))
	tr.Annotate(price, 0, e.Entries(), workers, 0)
	tr.End(price)
}

// Per-worker connectivity-cache bits: connKnown marks a memoized
// Definition-3 answer (connYes its value); noted marks a set already
// appended to this worker's discovery list this run.
const (
	connYes   = 1
	connKnown = 2
	noted     = 4
)

// wstate is one worker's run-long exploration state. The cache lives in
// the worker engine's scratch table (pooled across runs); the found
// list is drained at every level barrier.
type wstate struct {
	g     *hypergraph.Graph
	we    *memo.Engine
	wb    *dp.Builder
	cache *memo.Table
	cs    hypergraph.ConnScratch
	found []bitset.Set
}

// explore runs one chunk of the partition generate-and-test loop of S:
// packed indices [chunk·exploreChunk, …) over the subsets of S\min(S)
// in Vance–Maier order (ascending packed index), mirroring the serial
// loop body with solve() answered structurally and pricing deferred.
//
//dp:hotpath
func (st *wstate) explore(S bitset.Set, chunk, parts uint64, seen *memo.Table) {
	lo := S.MinSet()
	rest := S.MinusMin()
	i := chunk * exploreChunk
	end := i + exploreChunk
	if last := parts - 1; end > last {
		end = last // index parts-1 is a == rest: S2 empty, the serial break
	}
	if i >= end {
		return
	}
	a := subsetAt(rest, i)
	for {
		if !st.we.Step() {
			return
		}
		S1 := lo.Union(a)
		S2 := S.Minus(S1)
		if st.g.ConnectsTo(S1, S2) {
			st.note(S1, seen)
			if st.conn(S1) {
				st.note(S2, seen)
				if st.conn(S2) && st.we.EmitDeferred(S1, S2) {
					st.wb.DeferPair(S1, S2)
				}
			}
		}
		i++
		if i >= end {
			return
		}
		a = a.NextSubset(rest)
	}
}

// conn answers the serial recursion's solve(S) — "does the finished
// memo hold a plan for S" — structurally: under dp.ParallelSafe every
// admitted pair stores a plan, so memo membership after full
// exploration is exactly Definition-3 connectivity.
//
//dp:hotpath
func (st *wstate) conn(S bitset.Set) bool {
	if S.IsSingleton() {
		return true // seeded by Init
	}
	v, _ := st.cache.Get(S)
	if v&connKnown == 0 {
		v |= connKnown
		if st.g.ConnectedSet(S, &st.cs) {
			v |= connYes
		}
		st.cache.Put(S, v)
	}
	return v&connYes != 0
}

// note records S for exploration at its own (strictly smaller) level:
// skipped if the shared memo already has it or this worker already
// found it. Runs per-discovery, not per-partition, so the append's
// amortized growth is off the hot path.
func (st *wstate) note(S bitset.Set, seen *memo.Table) {
	if S.IsSingleton() {
		return
	}
	if _, ok := seen.Get(S); ok {
		return
	}
	v, _ := st.cache.Get(S)
	if v&noted != 0 {
		return
	}
	st.cache.Put(S, v|noted)
	//nolint:hotpathalloc // append fires once per newly discovered set, not per partition tested; the buffer is re-sliced to zero at each barrier so its capacity is a once-per-run warmup cost
	st.found = append(st.found, S)
}

// subsetAt returns the subset of rest with packed index i: bit k of i
// selects the k-th smallest element of rest. NextSubset enumerates
// subsets in ascending packed index, so subsetAt(rest, i) is the i-th
// set of that order — the chunk seek for the partition loop.
func subsetAt(rest bitset.Set, i uint64) bitset.Set {
	a := bitset.Empty
	for v := rest.Min(); i != 0; v = rest.NextElem(v + 1) {
		if i&1 != 0 {
			a = a.Add(v)
		}
		i >>= 1
	}
	return a
}

// solver carries the recursion state of one top-down run, so the
// recursive partition search is a named method rather than a closure
// (closures allocate and cannot carry directives).
type solver struct {
	g    *hypergraph.Graph
	e    *memo.Engine
	done *memo.Table
}

// solve reports whether a plan for S exists in the memo after
// exploring S's partitions.
//
//dp:hotpath
func (s *solver) solve(S bitset.Set) bool {
	if S.IsSingleton() {
		return true // seeded by Init
	}
	if _, ok := s.done.Get(S); ok {
		return s.e.Contains(S)
	}
	s.done.Put(S, 1)
	// Generate-and-test over all partitions with min(S) ∈ S1,
	// recursing first so subplans are final before pricing.
	lo := S.MinSet()
	rest := S.MinusMin()
	for a := bitset.Empty; ; a = a.NextSubset(rest) {
		// The partition generate-and-test loop is where this
		// enumerator spends its time; poll cancellation here.
		if !s.e.Step() {
			return false
		}
		S1 := lo.Union(a)
		S2 := S.Minus(S1)
		if S2.IsEmpty() {
			break // a == rest: S1 == S
		}
		if s.g.ConnectsTo(S1, S2) && s.solve(S1) && s.solve(S2) {
			s.e.EmitPair(S1, S2)
		}
		if a.Equal(rest) {
			break
		}
	}
	return s.e.Contains(S)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("topdown: empty hypergraph")
