// Package topdown implements a naive top-down memoization join
// enumerator — the "main competitor for dynamic programming" discussed in
// §1 of the paper. It recursively partitions relation sets, memoizing
// best plans, and needs generate-and-test over all 2^(|S|-1) partitions
// of every set it visits: exactly the overhead that DeHaan and Tompa's
// Top-Down Partition Search [7] removes with minimal graph cuts, and
// that DPccp/DPhyp avoid bottom-up.
//
// The paper does not measure this baseline (it measures DPsize and
// DPsub); it is included as an extension so the repository can
// demonstrate the §1 claim that naive memoization pays for failing
// partition tests the same way DPsub does.
//
// The solver is a pure enumerator: plan memoization, budgets, and plan
// construction route through the shared memo engine, and the failure
// memo (sets whose partitions have been fully explored without a plan)
// uses the same open-addressing memo.Table instead of a Go map.
package topdown

import (
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Options mirrors the options of the other enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *memo.Pool

	// Explain, when non-nil, receives phase spans for the run (the
	// engine records the materialize phase; the planner wraps the whole
	// enumeration). Unlike OnEmit it does not force the serial engine.
	Explain *obs.Trace

	// Parallelism is accepted for interface parity but ignored: the
	// top-down recursion memoizes shared subproblems mid-flight, so its
	// partitions are not level-independent the way the bottom-up
	// enumerations are. The planner's router sends parallel clique
	// workloads — TopDown's serial specialty — to the level-parallel
	// DPsub instead.
	Parallelism int
}

// Solve runs top-down memoization over g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	defer opts.Pool.Put(e)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	e.SetTrace(opts.Explain)
	n := g.NumRels()
	if n == 0 {
		return nil, e.Stats, errEmpty
	}
	b.Init()

	// done marks sets whose partitions have all been explored, whether or
	// not a plan was found (failure memoization matters: disconnected
	// sets are re-encountered exponentially often otherwise). It lives in
	// the engine's scratch table so its storage is pooled across runs.
	s := solver{g: g, e: e, done: e.Scratch(1 << uint(min(n, 12)))}
	s.solve(g.AllNodes())
	p, err := b.Final()
	return p, e.Stats, err
}

// solver carries the recursion state of one top-down run, so the
// recursive partition search is a named method rather than a closure
// (closures allocate and cannot carry directives).
type solver struct {
	g    *hypergraph.Graph
	e    *memo.Engine
	done *memo.Table
}

// solve reports whether a plan for S exists in the memo after
// exploring S's partitions.
//
//dp:hotpath
func (s *solver) solve(S bitset.Set) bool {
	if S.IsSingleton() {
		return true // seeded by Init
	}
	if _, ok := s.done.Get(S); ok {
		return s.e.Contains(S)
	}
	s.done.Put(S, 1)
	// Generate-and-test over all partitions with min(S) ∈ S1,
	// recursing first so subplans are final before pricing.
	lo := S.MinSet()
	rest := S.MinusMin()
	for a := bitset.Empty; ; a = a.NextSubset(rest) {
		// The partition generate-and-test loop is where this
		// enumerator spends its time; poll cancellation here.
		if !s.e.Step() {
			return false
		}
		S1 := lo.Union(a)
		S2 := S.Minus(S1)
		if S2.IsEmpty() {
			break // a == rest: S1 == S
		}
		if s.g.ConnectsTo(S1, S2) && s.solve(S1) && s.solve(S2) {
			s.e.EmitPair(S1, S2)
		}
		if a.Equal(rest) {
			break
		}
	}
	return s.e.Contains(S)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("topdown: empty hypergraph")
