package topdown

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/hypergraph"
)

func randomHypergraph(rng *rand.Rand, n int) *hypergraph.Graph {
	g := hypergraph.New()
	for i := 0; i < n; i++ {
		g.AddRelation("R", float64(10+rng.Intn(1000)))
	}
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(rng.Intn(i), i, 0.05+rng.Float64()*0.5)
	}
	for k := 0; k < rng.Intn(n); k++ {
		var u, v bitset.Set
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				u = u.Add(i)
			case 1:
				v = v.Add(i)
			}
		}
		if !u.IsEmpty() && !v.IsEmpty() && u.Disjoint(v) {
			g.AddEdge(hypergraph.Edge{U: u, V: v, Sel: 0.05 + rng.Float64()*0.5})
		}
	}
	return g
}

// Top-down memoization explores exactly the csg-cmp-pairs reachable from
// the root set and must agree with DPhyp on cost.
func TestAgreesWithDPhyp(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 40; trial++ {
		g := randomHypergraph(rng, 3+rng.Intn(6))
		p1, _, err1 := Solve(g, Options{})
		p2, _, err2 := core.Solve(g, core.Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: topdown err=%v dphyp err=%v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if p1.Cost != p2.Cost {
			t.Errorf("trial %d: topdown cost %g != dphyp %g", trial, p1.Cost, p2.Cost)
		}
	}
}

// Memoization must emit each pair at most once.
func TestNoDuplicatePairs(t *testing.T) {
	g := hypergraph.PaperExampleGraph()
	seen := map[string]bool{}
	dups := 0
	if _, _, err := Solve(g, Options{OnEmit: func(a, b bitset.Set) {
		p := counting.Normalize(a, b)
		if seen[p.Key()] {
			dups++
		}
		seen[p.Key()] = true
	}}); err != nil {
		t.Fatal(err)
	}
	if dups != 0 {
		t.Errorf("%d duplicate pairs", dups)
	}
	// Top-down only visits pairs reachable through connected root
	// partitions, which for this graph is all of them.
	if len(seen) != counting.CountCsgCmpPairs(g) {
		t.Errorf("visited %d pairs, want %d", len(seen), counting.CountCsgCmpPairs(g))
	}
}

func TestDisconnectedFails(t *testing.T) {
	g := hypergraph.New()
	g.AddRelations(2, "R", 10)
	if _, _, err := Solve(g, Options{}); err == nil {
		t.Error("disconnected graph must fail")
	}
}

func TestEmptyFails(t *testing.T) {
	if _, _, err := Solve(hypergraph.New(), Options{}); err == nil {
		t.Error("empty graph must fail")
	}
}

func TestSingleRelation(t *testing.T) {
	g := hypergraph.New()
	g.AddRelation("only", 7)
	p, _, err := Solve(g, Options{})
	if err != nil || !p.IsLeaf() {
		t.Fatalf("p=%v err=%v", p, err)
	}
}
