// Package dpsub implements the subset-driven dynamic programming
// enumerator (§4.1): for every relation set S in ascending integer order
// it generates all subsets S1 ⊂ S with the Vance–Maier procedure, joins
// the best plans for S1 and S2 = S ∖ S1, and tests that (S1,S2) is a
// csg-cmp-pair. The subset tests fail massively on sparse query graphs —
// DPsub touches all 2^n subsets and, for each, all 2^|S| partitions
// (Θ(3^n) total) regardless of how few of them are connected — which is
// why the paper's evaluation shows it losing to DPhyp everywhere and to
// DPsize on large cycles, while winning over DPsize on stars.
//
// As with DPsize, hypergraph support needs no structural change: only
// the connectivity test must understand hyperedges (§4.1).
//
// The solver is a pure enumerator: memoization, budgets, and plan
// construction route through the shared memo engine (internal/memo),
// and subset generation uses the bitset.SubsetsOf iterator.
package dpsub

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Options mirrors the options of the other enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *memo.Pool

	// Explain, when non-nil, receives phase spans for the run (the
	// engine records the materialize phase; the planner wraps the whole
	// enumeration). Unlike OnEmit it does not force the serial engine.
	Explain *obs.Trace

	// Parallelism > 1 switches to the level-synchronous parallel
	// enumeration: relation sets are processed by ascending size
	// instead of ascending integer value (every proper subset still
	// precedes its supersets), and the sets of one size — whose Θ(2^|S|)
	// partition loops are independent given the smaller sizes — are
	// partitioned across workers. On cliques, where every subset is
	// connected, this parallelizes essentially the entire Θ(3^n) run.
	// 0 or 1 runs today's serial engine.
	Parallelism int
}

// Solve runs DPsub over g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	defer opts.Pool.Put(e)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	e.SetTrace(opts.Explain)
	n := g.NumRels()
	if n == 0 {
		return nil, e.Stats, errEmpty
	}
	b.Init()

	all := g.AllNodes()
	// The level enumeration steps with Gosper's hack, which needs one
	// bit of headroom above the universe; 63-relation queries are far
	// beyond exact enumeration anyway.
	// Filters may carry shared per-analysis state and hooks need the
	// serial emission order, so both pin direct solver calls to the
	// serial engine (the planner enforces the same gates).
	if opts.Parallelism > 1 && n < 63 && opts.Filter == nil && opts.OnEmit == nil {
		solveParallel(g, b, all, n, opts.Parallelism)
		p, err := b.Final()
		return p, e.Stats, err
	}

	enumerate(g, e, all)
	p, err := b.Final()
	return p, e.Stats, err
}

// enumerate is the serial DPsub loop nest (§4.1): Vance–Maier order is
// ascending integer order, so every proper subset of S is enumerated
// before S itself and the DP order is respected.
//
//dp:hotpath
func enumerate(g *hypergraph.Graph, e *memo.Engine, all bitset.Set) {
outer:
	for S := range all.SubsetsOf() {
		if S.Len() < 2 {
			continue
		}
		// "DPsub generates all subsets S1 ⊂ S and joins the best plans
		// for S1 and S2 = S ∖ S1."
		for S1 := range S.SubsetsOf() {
			if S1.Equal(S) {
				break // proper subsets only
			}
			// DPsub spends Θ(3^n) iterations mostly on failing subset
			// tests; poll cancellation in the innermost loop.
			if !e.Step() {
				break outer
			}
			S2 := S.Minus(S1)
			if !e.Contains(S1) || !e.Contains(S2) {
				continue // one side is not a connected subgraph
			}
			if !g.ConnectsTo(S1, S2) {
				continue
			}
			// Both orientations appear in the subset loop; emit the
			// normalized one (EmitPair prices commutative operators in
			// both directions itself).
			if S1.Min() < S2.Min() {
				e.EmitPair(S1, S2)
			}
		}
	}
}

// chunkSets bounds the relation sets per parallel work unit. Each set
// costs Θ(2^|S|) subset probes, so even short chunks amortize the
// atomic claim; short chunks keep the skewed middle levels balanced.
const chunkSets = 16

// solveParallel is the level-synchronous parallel DPsub: for each size
// s it materializes the size-s subsets of the universe in ascending
// order (Gosper's hack), partitions them into fixed chunks that
// workers claim dynamically, and runs each set's Vance–Maier partition
// loop on the claiming worker. All memo reads during a level hit sizes
// < s, frozen since the previous barrier; writes go to per-worker
// views merged deterministically at the barrier.
func solveParallel(g *hypergraph.Graph, b *dp.Builder, all bitset.Set, n, workers int) {
	pr := dp.NewParRun(b, workers)
	var sets []bitset.Set
	for s := 2; s <= n; s++ {
		sets = sets[:0]
		for S := bitset.Full(s); !all.Less(S); S = S.NextSameSize() {
			sets = append(sets, S)
		}
		pr.Par.StartLevel()
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			we := pr.Bs[w].Engine
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					lo := ci * chunkSets
					if lo >= len(sets) || we.Aborted() != nil {
						return
					}
					for _, S := range sets[lo:min(lo+chunkSets, len(sets))] {
						for S1 := range S.SubsetsOf() {
							if S1.Equal(S) {
								break
							}
							if !we.Step() {
								return
							}
							S2 := S.Minus(S1)
							if !we.Contains(S1) || !we.Contains(S2) {
								continue
							}
							if !g.ConnectsTo(S1, S2) {
								continue
							}
							if S1.Min() < S2.Min() {
								we.EmitPair(S1, S2)
							}
						}
					}
				}
			}()
		}
		wg.Wait()
		pr.Par.FinishLevel(memo.LevelBuilt)
		if pr.Par.Aborted() != nil {
			return
		}
	}
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("dpsub: empty hypergraph")
