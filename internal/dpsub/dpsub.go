// Package dpsub implements the subset-driven dynamic programming
// enumerator (§4.1): for every relation set S in ascending integer order
// it generates all subsets S1 ⊂ S with the Vance–Maier procedure, joins
// the best plans for S1 and S2 = S ∖ S1, and tests that (S1,S2) is a
// csg-cmp-pair. The subset tests fail massively on sparse query graphs —
// DPsub touches all 2^n subsets and, for each, all 2^|S| partitions
// (Θ(3^n) total) regardless of how few of them are connected — which is
// why the paper's evaluation shows it losing to DPhyp everywhere and to
// DPsize on large cycles, while winning over DPsize on stars.
//
// As with DPsize, hypergraph support needs no structural change: only
// the connectivity test must understand hyperedges (§4.1).
package dpsub

import (
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

// Options mirrors the options of the other enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *dp.Pool
}

// Solve runs DPsub over g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	b := opts.Pool.Get(g, opts.Model)
	defer opts.Pool.Put(b)
	b.Filter = opts.Filter
	b.OnEmit = opts.OnEmit
	b.SetLimits(opts.Limits)
	n := g.NumRels()
	if n == 0 {
		return nil, b.Stats, errEmpty
	}
	b.Init()

	all := g.AllNodes()
	// Ascending integer order enumerates every proper subset of S before
	// S itself, so the DP order is respected.
enumerate:
	for S := bitset.Empty.NextSubset(all); ; S = S.NextSubset(all) {
		if S.Len() >= 2 {
			// "DPsub generates all subsets S1 ⊂ S and joins the best
			// plans for S1 and S2 = S ∖ S1."
			for S1 := bitset.Empty.NextSubset(S); S1 != S; S1 = S1.NextSubset(S) {
				// DPsub spends Θ(3^n) iterations mostly on failing subset
				// tests; poll cancellation in the innermost loop.
				if !b.Step() {
					break enumerate
				}
				S2 := S.Minus(S1)
				if b.Best(S1) == nil || b.Best(S2) == nil {
					continue // one side is not a connected subgraph
				}
				if !g.ConnectsTo(S1, S2) {
					continue
				}
				// Both orientations appear in the subset loop; emit the
				// normalized one (EmitCsgCmp prices commutative operators
				// in both directions itself).
				if S1.Min() < S2.Min() {
					b.EmitCsgCmp(S1, S2)
				}
			}
		}
		if S == all {
			break
		}
	}
	p, err := b.Final()
	return p, b.Stats, err
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("dpsub: empty hypergraph")
