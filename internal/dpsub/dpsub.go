// Package dpsub implements the subset-driven dynamic programming
// enumerator (§4.1): for every relation set S in ascending integer order
// it generates all subsets S1 ⊂ S with the Vance–Maier procedure, joins
// the best plans for S1 and S2 = S ∖ S1, and tests that (S1,S2) is a
// csg-cmp-pair. The subset tests fail massively on sparse query graphs —
// DPsub touches all 2^n subsets and, for each, all 2^|S| partitions
// (Θ(3^n) total) regardless of how few of them are connected — which is
// why the paper's evaluation shows it losing to DPhyp everywhere and to
// DPsize on large cycles, while winning over DPsize on stars.
//
// As with DPsize, hypergraph support needs no structural change: only
// the connectivity test must understand hyperedges (§4.1).
//
// The solver is a pure enumerator: memoization, budgets, and plan
// construction route through the shared memo engine (internal/memo),
// and subset generation uses the bitset.SubsetsOf iterator.
package dpsub

import (
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/plan"
)

// Options mirrors the options of the other enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *memo.Pool
}

// Solve runs DPsub over g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	defer opts.Pool.Put(e)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	n := g.NumRels()
	if n == 0 {
		return nil, e.Stats, errEmpty
	}
	b.Init()

	all := g.AllNodes()
	// Vance–Maier order is ascending integer order, so every proper
	// subset of S is enumerated before S itself and the DP order is
	// respected.
enumerate:
	for S := range all.SubsetsOf() {
		if S.Len() < 2 {
			continue
		}
		// "DPsub generates all subsets S1 ⊂ S and joins the best plans
		// for S1 and S2 = S ∖ S1."
		for S1 := range S.SubsetsOf() {
			if S1 == S {
				break // proper subsets only
			}
			// DPsub spends Θ(3^n) iterations mostly on failing subset
			// tests; poll cancellation in the innermost loop.
			if !e.Step() {
				break enumerate
			}
			S2 := S.Minus(S1)
			if !e.Contains(S1) || !e.Contains(S2) {
				continue // one side is not a connected subgraph
			}
			if !g.ConnectsTo(S1, S2) {
				continue
			}
			// Both orientations appear in the subset loop; emit the
			// normalized one (EmitPair prices commutative operators in
			// both directions itself).
			if S1.Min() < S2.Min() {
				e.EmitPair(S1, S2)
			}
		}
	}
	p, err := b.Final()
	return p, e.Stats, err
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("dpsub: empty hypergraph")
