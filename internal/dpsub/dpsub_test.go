package dpsub

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/hypergraph"
)

func cycleGraph(n int) *hypergraph.Graph {
	g := hypergraph.New()
	g.AddRelations(n, "R", 100)
	for i := 0; i+1 < n; i++ {
		g.AddSimpleEdge(i, i+1, 0.1)
	}
	g.AddSimpleEdge(n-1, 0, 0.1)
	return g
}

func randomHypergraph(rng *rand.Rand, n int) *hypergraph.Graph {
	g := hypergraph.New()
	for i := 0; i < n; i++ {
		g.AddRelation("R", float64(10+rng.Intn(1000)))
	}
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(rng.Intn(i), i, 0.05+rng.Float64()*0.5)
	}
	for k := 0; k < rng.Intn(n); k++ {
		var u, v bitset.Set
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				u = u.Add(i)
			case 1:
				v = v.Add(i)
			}
		}
		if !u.IsEmpty() && !v.IsEmpty() && u.Disjoint(v) {
			g.AddEdge(hypergraph.Edge{U: u, V: v, Sel: 0.05 + rng.Float64()*0.5})
		}
	}
	return g
}

func TestEmitsExactPairSet(t *testing.T) {
	for _, g := range []*hypergraph.Graph{
		cycleGraph(6), hypergraph.PaperExampleGraph(),
	} {
		var got []counting.Pair
		if _, _, err := Solve(g, Options{OnEmit: func(s1, s2 bitset.Set) {
			got = append(got, counting.Normalize(s1, s2))
		}}); err != nil {
			t.Fatal(err)
		}
		want := counting.CsgCmpPairs(g)
		seen := map[string]bool{}
		for _, p := range got {
			if seen[p.Key()] {
				t.Errorf("duplicate pair %v|%v", p.S1, p.S2)
			}
			seen[p.Key()] = true
		}
		if len(got) != len(want) {
			t.Errorf("emitted %d pairs, want %d", len(got), len(want))
		}
		for _, p := range want {
			if !seen[p.Key()] {
				t.Errorf("missing pair %v|%v", p.S1, p.S2)
			}
		}
	}
}

// The ascending-integer subset order respects DP dependencies: every
// composing pair of a set appears before the set is used as a side.
func TestDPOrder(t *testing.T) {
	g := cycleGraph(6)
	var pairs []counting.Pair
	if _, _, err := Solve(g, Options{OnEmit: func(s1, s2 bitset.Set) {
		pairs = append(pairs, counting.Pair{S1: s1, S2: s2})
	}}); err != nil {
		t.Fatal(err)
	}
	lastCompose := map[string]int{}
	for i, p := range pairs {
		lastCompose[p.S1.Union(p.S2).Key()] = i
	}
	for i, p := range pairs {
		for _, side := range []bitset.Set{p.S1, p.S2} {
			if last, ok := lastCompose[side.Key()]; ok && last > i {
				t.Errorf("pair %d uses %v before its last composition at %d", i, side, last)
			}
		}
	}
}

func TestAgreesWithDPhyp(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 40; trial++ {
		g := randomHypergraph(rng, 3+rng.Intn(6))
		p1, s1, err1 := Solve(g, Options{})
		p2, s2, err2 := core.Solve(g, core.Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: dpsub err=%v dphyp err=%v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if p1.Cost != p2.Cost {
			t.Errorf("trial %d: dpsub cost %g != dphyp %g", trial, p1.Cost, p2.Cost)
		}
		if s1.CsgCmpPairs != s2.CsgCmpPairs {
			t.Errorf("trial %d: pair counts differ %d vs %d", trial, s1.CsgCmpPairs, s2.CsgCmpPairs)
		}
	}
}

func TestDisconnectedFails(t *testing.T) {
	g := hypergraph.New()
	g.AddRelations(3, "R", 10)
	g.AddSimpleEdge(0, 1, 0.5)
	if _, _, err := Solve(g, Options{}); err == nil {
		t.Error("disconnected graph must fail")
	}
}

func TestEmptyFails(t *testing.T) {
	if _, _, err := Solve(hypergraph.New(), Options{}); err == nil {
		t.Error("empty graph must fail")
	}
}

func TestSingleRelation(t *testing.T) {
	g := hypergraph.New()
	g.AddRelation("only", 7)
	p, _, err := Solve(g, Options{})
	if err != nil || !p.IsLeaf() {
		t.Fatalf("p=%v err=%v", p, err)
	}
}
