package workload

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/optree"
)

func cfg() Config { return DefaultConfig() }

func TestChainCycleStarClique(t *testing.T) {
	if g := Chain(5, cfg()); g.NumRels() != 5 || g.NumEdges() != 4 {
		t.Errorf("chain: %d rels %d edges", g.NumRels(), g.NumEdges())
	}
	if g := Cycle(5, cfg()); g.NumEdges() != 5 {
		t.Errorf("cycle: %d edges", g.NumEdges())
	}
	if g := Star(5, cfg()); g.NumEdges() != 4 {
		t.Errorf("star: %d edges", g.NumEdges())
	}
	if g := Clique(5, cfg()); g.NumEdges() != 10 {
		t.Errorf("clique: %d edges", g.NumEdges())
	}
	for _, g := range []*hypergraph.Graph{Chain(6, cfg()), Cycle(6, cfg()), Star(6, cfg()), Clique(5, cfg())} {
		if !g.IsConnected(g.AllNodes()) {
			t.Error("generated graph must be connected")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := CycleHyper(8, 2, cfg())
	b := CycleHyper(8, 2, cfg())
	if a.String() != b.String() {
		t.Error("same config must generate identical graphs")
	}
}

// TestCycleHyperPaperSplits verifies the split schedule against the
// paper's worked example for the 8-relation cycle: G1 has hyperedges
// ({R0,R1},{R6,R7}) and ({R2,R3},{R4,R5}); G2 additionally splits the
// first into ({R0},{R6}) and ({R1},{R7}); G3 splits the second into
// ({R2},{R4}) and ({R3},{R5}).
func TestCycleHyperPaperSplits(t *testing.T) {
	pairKey := func(u, v bitset.Set) string { return u.Key() + "|" + v.Key() }
	edgeSet := func(g *hypergraph.Graph) map[string]bool {
		out := map[string]bool{}
		for i := 8; i < g.NumEdges(); i++ { // first 8 are the cycle edges
			e := g.Edge(i)
			out[pairKey(e.U, e.V)] = true
		}
		return out
	}

	g0 := CycleHyper(8, 0, cfg())
	if got := edgeSet(g0); len(got) != 1 || !got[pairKey(bitset.Range(0, 4), bitset.Range(4, 8))] {
		t.Fatalf("G0 hyperedges wrong: %v", got)
	}

	g1 := CycleHyper(8, 1, cfg())
	if got := edgeSet(g1); len(got) != 2 || !got[pairKey(bitset.New(0, 1), bitset.New(6, 7))] || !got[pairKey(bitset.New(2, 3), bitset.New(4, 5))] {
		t.Fatalf("G1 hyperedges wrong: want ({R0,R1},{R6,R7}) and ({R2,R3},{R4,R5})")
	}

	g2 := CycleHyper(8, 2, cfg())
	got2 := edgeSet(g2)
	for _, w := range [][2]bitset.Set{
		{bitset.New(2, 3), bitset.New(4, 5)},
		{bitset.New(0), bitset.New(6)},
		{bitset.New(1), bitset.New(7)},
	} {
		if !got2[pairKey(w[0], w[1])] {
			t.Errorf("G2 missing %v -- %v", w[0], w[1])
		}
	}

	g3 := CycleHyper(8, 3, cfg())
	got3 := edgeSet(g3)
	for _, w := range [][2]bitset.Set{
		{bitset.New(0), bitset.New(6)},
		{bitset.New(1), bitset.New(7)},
		{bitset.New(2), bitset.New(4)},
		{bitset.New(3), bitset.New(5)},
	} {
		if !got3[pairKey(w[0], w[1])] {
			t.Errorf("G3 missing %v -- %v", w[0], w[1])
		}
	}
	if len(got3) != 4 {
		t.Errorf("G3 has %d hyperedges, want 4 simple ones", len(got3))
	}
}

func TestStarHyperStructure(t *testing.T) {
	// Fig. 4b: 8 satellites, hyperedge ({R1..R4},{R5..R8}).
	g := StarHyper(8, 0, cfg())
	if g.NumRels() != 9 {
		t.Fatalf("rels = %d, want 9", g.NumRels())
	}
	e := g.Edge(g.NumEdges() - 1)
	if !e.U.Equal(bitset.Range(1, 5)) || !e.V.Equal(bitset.Range(5, 9)) {
		t.Errorf("hyperedge = %v -- %v", e.U, e.V)
	}
	// Full split: all derived edges simple.
	gs := StarHyper(8, MaxSplits(4), cfg())
	for i := 8; i < gs.NumEdges(); i++ {
		if !gs.Edge(i).Simple() {
			t.Errorf("edge %d not simple after full split", i)
		}
	}
}

func TestMaxSplits(t *testing.T) {
	// From one (k,k) hyperedge to k simple edges takes k-1 splits.
	for _, half := range []int{2, 4, 8} {
		g := CycleHyper(2*half, 2*half/2-1, cfg())
		for i := 2 * half; i < g.NumEdges(); i++ {
			if !g.Edge(i).Simple() {
				t.Errorf("n=%d full split leaves non-simple edge %v -- %v",
					2*half, g.Edge(i).U, g.Edge(i).V)
			}
		}
	}
}

// All split stages must remain connected and solvable by DPhyp.
func TestAllSplitStagesSolvable(t *testing.T) {
	for splits := 0; splits <= 3; splits++ {
		for _, g := range []*hypergraph.Graph{
			CycleHyper(8, splits, cfg()),
			StarHyper(8, splits, cfg()),
		} {
			p, _, err := core.Solve(g, core.Options{})
			if err != nil {
				t.Fatalf("splits=%d: %v", splits, err)
			}
			if !p.Rels.Equal(g.AllNodes()) {
				t.Errorf("splits=%d: incomplete plan", splits)
			}
		}
	}
}

// More splits enlarge the search space (more, smaller hyperedges admit
// more csg-cmp-pairs) — the mechanism behind the Fig. 5/6 curves.
func TestSplitsGrowSearchSpace(t *testing.T) {
	prev := -1
	for splits := 0; splits <= 3; splits++ {
		g := CycleHyper(8, splits, cfg())
		_, stats, err := core.Solve(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.CsgCmpPairs < prev {
			t.Errorf("splits=%d: pairs %d below previous %d", splits, stats.CsgCmpPairs, prev)
		}
		prev = stats.CsgCmpPairs
	}
}

func TestStarTreeShape(t *testing.T) {
	root, rels := StarTree(5, 2, cfg())
	if len(rels) != 5 {
		t.Fatalf("rels = %d", len(rels))
	}
	tr, err := optree.Analyze(root, rels, optree.Conservative)
	if err != nil {
		t.Fatal(err)
	}
	ops := tr.Ops()
	if len(ops) != 4 {
		t.Fatalf("ops = %d", len(ops))
	}
	if ops[0].Op != algebra.AntiJoin || ops[1].Op != algebra.AntiJoin {
		t.Error("first k operators must be antijoins")
	}
	if ops[2].Op != algebra.Join || ops[3].Op != algebra.Join {
		t.Error("remaining operators must be inner joins")
	}
	g := tr.Hypergraph(optree.TESEdges)
	if _, _, err := core.Solve(g, core.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleTreeClosingPredicate(t *testing.T) {
	root, rels := CycleTree(6, 3, cfg())
	tr, err := optree.Analyze(root, rels, optree.Conservative)
	if err != nil {
		t.Fatal(err)
	}
	ops := tr.Ops()
	last := ops[len(ops)-1]
	if !last.Pred.Tables.Has(0) {
		t.Error("last operator must carry the cycle-closing predicate")
	}
	for i := 0; i < 3; i++ {
		if ops[i].Op != algebra.LeftOuter {
			t.Errorf("op %d = %v, want left outer", i, ops[i].Op)
		}
	}
	g := tr.Hypergraph(optree.TESEdges)
	if _, _, err := core.Solve(g, core.Options{}); err != nil {
		t.Fatal(err)
	}
}

// The §5.8 mechanism: more antijoins shrink the explored search space
// under the conservative rule (the basis of Fig. 8a).
func TestAntijoinsShrinkSearchSpace(t *testing.T) {
	var prev int
	for k := 0; k <= 7; k++ {
		root, rels := StarTree(8, k, cfg())
		tr, err := optree.Analyze(root, rels, optree.Conservative)
		if err != nil {
			t.Fatal(err)
		}
		g := tr.Hypergraph(optree.TESEdges)
		_, stats, err := core.Solve(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if k > 0 && stats.CsgCmpPairs > prev {
			t.Errorf("k=%d: pairs %d exceed k=%d's %d", k, stats.CsgCmpPairs, k-1, prev)
		}
		prev = stats.CsgCmpPairs
	}
	// Fully antijoined: exactly n-1 pairs (§5.7's O(n)).
	root, rels := StarTree(8, 7, cfg())
	tr, _ := optree.Analyze(root, rels, optree.Conservative)
	_, stats, err := core.Solve(tr.Hypergraph(optree.TESEdges), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CsgCmpPairs != 7 {
		t.Errorf("all-antijoin star pairs = %d, want 7", stats.CsgCmpPairs)
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		g := RandomSimple(rng, 6, 3, cfg())
		if !g.IsConnected(g.AllNodes()) {
			t.Error("random simple graph must be connected")
		}
		h := RandomHyper(rng, 6, 2, cfg())
		if !h.IsConnected(h.AllNodes()) {
			t.Error("random hypergraph must be connected")
		}
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { Cycle(2, cfg()) },
		func() { Star(1, cfg()) },
		func() { CycleHyper(7, 0, cfg()) },
		func() { StarHyper(3, 0, cfg()) },
		func() { StarTree(4, 4, cfg()) },
		func() { CycleTree(4, 4, cfg()) },
		func() { CycleHyper(8, 10, cfg()) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
