// Package workload generates the query graphs and operator trees of the
// paper's evaluation (§4 and §5.8).
//
// The hypergraph families follow the §4 construction: "we start with a
// simple graph and add one big hyperedge to it. Then, we successively
// split the hyperedge into two smaller ones until we reach simple
// edges." The split schedule reproduces the paper's example exactly
// (Fig. 4a and the derivation of G1–G3 for the 8-relation cycle): the
// initial hyperedge splits crosswise — u's low half pairs with v's high
// half — and every later split pairs halves straight; hyperedges are
// split in FIFO order, oldest first.
//
// Cardinalities and selectivities are drawn from a deterministic seeded
// generator so that benchmark runs are reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/hypergraph"
	"repro/internal/optree"
)

// Config controls cardinality and selectivity generation.
type Config struct {
	Seed             int64
	MinCard, MaxCard float64
	MinSel, MaxSel   float64
	HyperSel         float64 // selectivity of hyperedges
}

// DefaultConfig mirrors common join-ordering experiment setups: table
// sizes spread over three orders of magnitude, selective predicates.
func DefaultConfig() Config {
	return Config{
		Seed:    2008,
		MinCard: 100, MaxCard: 100000,
		MinSel: 0.001, MaxSel: 0.1,
		HyperSel: 0.05,
	}
}

// LargeConfig is tuned for queries beyond the historical 64-relation
// ceiling. DefaultConfig's per-join growth factor (card·sel) averages
// about 10×, which overflows float64 cardinality estimates near 100
// joins — every plan, including the true optimum, prices to +Inf and
// cost comparison degenerates. Real schemas at that scale are joined
// along PK–FK chains whose selectivity is the reciprocal of a key
// count, so the growth factor hovers near one; this config mirrors
// that (E[ln(card·sel)] ≈ 0.3), keeping estimates finite out to a few
// hundred relations.
func LargeConfig() Config {
	return Config{
		Seed:    2008,
		MinCard: 10, MaxCard: 10000,
		MinSel: 0.00001, MaxSel: 0.001,
		HyperSel: 0.0005,
	}
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

func (c Config) card(rng *rand.Rand) float64 {
	return c.MinCard + rng.Float64()*(c.MaxCard-c.MinCard)
}

func (c Config) sel(rng *rand.Rand) float64 {
	return c.MinSel + rng.Float64()*(c.MaxSel-c.MinSel)
}

// Chain returns a chain query graph R0 – R1 – ... – R(n-1).
func Chain(n int, cfg Config) *hypergraph.Graph {
	rng := cfg.rng()
	g := hypergraph.New()
	for i := 0; i < n; i++ {
		g.AddRelation(fmt.Sprintf("R%d", i), cfg.card(rng))
	}
	for i := 0; i+1 < n; i++ {
		g.AddSimpleEdge(i, i+1, cfg.sel(rng))
	}
	return g
}

// Cycle returns a cycle query graph over n ≥ 3 relations.
func Cycle(n int, cfg Config) *hypergraph.Graph {
	if n < 3 {
		panic("workload: cycle needs at least 3 relations")
	}
	g := Chain(n, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	g.AddSimpleEdge(n-1, 0, cfg.sel(rng))
	return g
}

// Star returns a star query graph with relation 0 as the hub and n-1
// satellites (n total relations), the shape of Fig. 7.
func Star(n int, cfg Config) *hypergraph.Graph {
	if n < 2 {
		panic("workload: star needs at least 2 relations")
	}
	rng := cfg.rng()
	g := hypergraph.New()
	g.AddRelation("F", cfg.MaxCard) // hub: the fact table
	for i := 1; i < n; i++ {
		g.AddRelation(fmt.Sprintf("D%d", i), cfg.card(rng))
	}
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(0, i, cfg.sel(rng))
	}
	return g
}

// Clique returns a complete query graph over n relations.
func Clique(n int, cfg Config) *hypergraph.Graph {
	rng := cfg.rng()
	g := hypergraph.New()
	for i := 0; i < n; i++ {
		g.AddRelation(fmt.Sprintf("R%d", i), cfg.card(rng))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddSimpleEdge(i, j, cfg.sel(rng))
		}
	}
	return g
}

// Grid returns an a×b lattice query graph (a, b ≥ 2): relation (i,j) is
// node i*b+j, joined to its right and lower neighbors. Grids are the
// standard "moderately dense" shape between chains and cliques in the
// join-ordering literature.
func Grid(a, b int, cfg Config) *hypergraph.Graph {
	if a < 2 || b < 2 {
		panic("workload: grid needs both dimensions ≥ 2")
	}
	rng := cfg.rng()
	g := hypergraph.New()
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddRelation(fmt.Sprintf("R%d_%d", i, j), cfg.card(rng))
		}
	}
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if j+1 < b {
				g.AddSimpleEdge(i*b+j, i*b+j+1, cfg.sel(rng))
			}
			if i+1 < a {
				g.AddSimpleEdge(i*b+j, (i+1)*b+j, cfg.sel(rng))
			}
		}
	}
	return g
}

// hyperSplit is one (u,v) hyperedge in the split schedule.
type hyperSplit struct {
	u, v  bitset.Set
	cross bool // whether the NEXT split of this edge pairs crosswise
}

// splitSchedule derives the list of hyperedges after the given number of
// splits, starting from (u0, v0). The initial edge splits crosswise, all
// derived edges straight, FIFO order (§4: G0...G3 of the 8-relation
// cycle).
func splitSchedule(u0, v0 bitset.Set, splits int) []hyperSplit {
	queue := []hyperSplit{{u: u0, v: v0, cross: true}}
	for s := 0; s < splits; s++ {
		// Pop the oldest splittable edge.
		idx := -1
		for i, e := range queue {
			if e.u.Len() > 1 {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic(fmt.Sprintf("workload: cannot split %d times", splits))
		}
		e := queue[idx]
		queue = append(queue[:idx], queue[idx+1:]...)
		uLo, uHi := halves(e.u)
		vLo, vHi := halves(e.v)
		var a, b hyperSplit
		if e.cross {
			a = hyperSplit{u: uLo, v: vHi}
			b = hyperSplit{u: uHi, v: vLo}
		} else {
			a = hyperSplit{u: uLo, v: vLo}
			b = hyperSplit{u: uHi, v: vHi}
		}
		queue = append(queue, a, b)
	}
	return queue
}

// halves splits a set into its low and high half by node order.
func halves(s bitset.Set) (lo, hi bitset.Set) {
	elems := s.Elems()
	mid := len(elems) / 2
	for _, e := range elems[:mid] {
		lo = lo.Add(e)
	}
	for _, e := range elems[mid:] {
		hi = hi.Add(e)
	}
	return lo, hi
}

// MaxSplits returns the number of split steps that fully decompose an
// initial hyperedge with `half` relations per hypernode into simple
// edges: each split turns one edge into two, and one edge must become
// `half` simple edges, so half-1 splits. This matches the paper's x-axes:
// splits 0..3 for 8 relations (half 4), 0..7 for 16 relations (half 8).
func MaxSplits(half int) int { return half - 1 }

// CycleHyper builds the Fig. 4a family: a cycle over n relations (n even,
// n ≥ 4) plus the hyperedge ({R0..R(n/2-1)}, {R(n/2)..R(n-1)}) split
// `splits` times. splits = 0 keeps the single big hyperedge; the maximum
// n/2 - 1 yields all simple diagonal edges (G3 for n = 8).
func CycleHyper(n, splits int, cfg Config) *hypergraph.Graph {
	if n < 4 || n%2 != 0 {
		panic("workload: cycle hypergraphs need an even n ≥ 4")
	}
	g := Cycle(n, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	u := bitset.Range(0, n/2)
	v := bitset.Range(n/2, n)
	for _, e := range splitSchedule(u, v, splits) {
		sel := cfg.HyperSel
		if e.u.IsSingleton() {
			sel = cfg.sel(rng)
		}
		g.AddEdge(hypergraph.Edge{U: e.u, V: e.v, Sel: sel, Op: algebra.Join,
			Label: fmt.Sprintf("h%v=%v", e.u, e.v)})
	}
	return g
}

// StarHyper builds the Fig. 4b family: a star with `sat` satellites
// (sat even, total sat+1 relations) plus the hyperedge
// ({R1..R(sat/2)}, {R(sat/2+1)..R(sat)}) split `splits` times.
func StarHyper(sat, splits int, cfg Config) *hypergraph.Graph {
	if sat < 4 || sat%2 != 0 {
		panic("workload: star hypergraphs need an even satellite count ≥ 4")
	}
	g := Star(sat+1, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	u := bitset.Range(1, sat/2+1)
	v := bitset.Range(sat/2+1, sat+1)
	for _, e := range splitSchedule(u, v, splits) {
		sel := cfg.HyperSel
		if e.u.IsSingleton() {
			sel = cfg.sel(rng)
		}
		g.AddEdge(hypergraph.Edge{U: e.u, V: e.v, Sel: sel, Op: algebra.Join,
			Label: fmt.Sprintf("h%v=%v", e.u, e.v)})
	}
	return g
}

// StarTree builds the §5.8 antijoin workload: a left-deep operator tree
// for a star query over n relations where the first k operators (the
// innermost ones) are antijoins and the remainder inner joins. Predicates
// connect the hub R0 with each satellite.
func StarTree(n, antijoins int, cfg Config) (*optree.Node, []optree.RelInfo) {
	if antijoins > n-1 {
		panic("workload: more antijoins than operators")
	}
	rng := cfg.rng()
	rels := make([]optree.RelInfo, n)
	rels[0] = optree.RelInfo{Name: "F", Card: cfg.MaxCard}
	for i := 1; i < n; i++ {
		rels[i] = optree.RelInfo{Name: fmt.Sprintf("D%d", i), Card: cfg.card(rng)}
	}
	cur := optree.NewLeaf(0)
	for i := 1; i < n; i++ {
		op := algebra.Join
		if i <= antijoins {
			op = algebra.AntiJoin
		}
		// Scale the selectivity so that a fact row matches a fraction of
		// the dimension (0.2–0.8): antijoins and semijoins then retain
		// meaningful cardinalities instead of degenerating to 0 or |F|.
		frac := 0.2 + 0.6*rng.Float64()
		cur = optree.NewOp(op, cur, optree.NewLeaf(i), optree.Predicate{
			Tables: bitset.New(0, i),
			Sel:    frac / rels[i].Card,
			Label:  fmt.Sprintf("F=D%d", i),
		})
	}
	return cur, rels
}

// CycleTree builds the §5.8 outer-join workload: a left-deep operator
// tree for a cycle query over n relations where the first k operators
// are left outer joins and the remainder inner joins. Operator i joins
// R_i with predicate {R(i-1), R_i}; the final operator additionally
// carries the cycle-closing predicate on {R0, R(n-1)}.
func CycleTree(n, outerJoins int, cfg Config) (*optree.Node, []optree.RelInfo) {
	if outerJoins > n-1 {
		panic("workload: more outer joins than operators")
	}
	rng := cfg.rng()
	rels := make([]optree.RelInfo, n)
	for i := 0; i < n; i++ {
		rels[i] = optree.RelInfo{Name: fmt.Sprintf("R%d", i), Card: cfg.card(rng)}
	}
	cur := optree.NewLeaf(0)
	for i := 1; i < n; i++ {
		op := algebra.Join
		if i <= outerJoins {
			op = algebra.LeftOuter
		}
		tabs := bitset.New(i-1, i)
		sel := cfg.sel(rng)
		label := fmt.Sprintf("R%d=R%d", i-1, i)
		if i == n-1 {
			tabs = tabs.Add(0) // closing predicate folded into the last operator
			sel *= cfg.sel(rng)
			label += fmt.Sprintf(" and R0=R%d", n-1)
		}
		cur = optree.NewOp(op, cur, optree.NewLeaf(i), optree.Predicate{
			Tables: tabs,
			Sel:    sel,
			Label:  label,
		})
	}
	return cur, rels
}

// RandomSimple returns a connected random simple graph: a random spanning
// tree plus `extra` random edges.
func RandomSimple(rng *rand.Rand, n, extra int, cfg Config) *hypergraph.Graph {
	g := hypergraph.New()
	for i := 0; i < n; i++ {
		g.AddRelation(fmt.Sprintf("R%d", i), cfg.MinCard+rng.Float64()*(cfg.MaxCard-cfg.MinCard))
	}
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(rng.Intn(i), i, cfg.MinSel+rng.Float64()*(cfg.MaxSel-cfg.MinSel))
	}
	for k := 0; k < extra; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddSimpleEdge(a, b, cfg.MinSel+rng.Float64()*(cfg.MaxSel-cfg.MinSel))
		}
	}
	return g
}

// RandomHyper returns a connected random hypergraph: a spanning tree of
// simple edges plus `extra` random hyperedges over disjoint hypernodes.
func RandomHyper(rng *rand.Rand, n, extra int, cfg Config) *hypergraph.Graph {
	g := RandomSimple(rng, n, 0, cfg)
	for k := 0; k < extra; k++ {
		var u, v bitset.Set
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				u = u.Add(i)
			case 1:
				v = v.Add(i)
			}
		}
		if !u.IsEmpty() && !v.IsEmpty() && u.Disjoint(v) {
			g.AddEdge(hypergraph.Edge{U: u, V: v, Sel: cfg.HyperSel})
		}
	}
	return g
}
