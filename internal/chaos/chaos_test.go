package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDisarmedIsInert(t *testing.T) {
	Reset()
	if Armed() {
		t.Fatal("fresh package reports Armed")
	}
	if err := Inject(SiteEnumerate); err != nil {
		t.Fatalf("Inject on disarmed site: %v", err)
	}
}

func TestArmTriggerDisarm(t *testing.T) {
	defer Reset()
	sentinel := errors.New("boom")
	Arm(SiteEnumerate, Fault{Err: sentinel})
	if !Armed() {
		t.Fatal("Armed() false after Arm")
	}
	if err := Inject(SiteEnumerate); !errors.Is(err, sentinel) {
		t.Fatalf("Inject = %v, want sentinel", err)
	}
	// A different site stays clean.
	if err := Inject(SiteMemoStep); err != nil {
		t.Fatalf("unarmed site injected: %v", err)
	}
	Disarm(SiteEnumerate)
	if Armed() {
		t.Fatal("Armed() true after last Disarm")
	}
	if err := Inject(SiteEnumerate); err != nil {
		t.Fatalf("Inject after Disarm: %v", err)
	}
}

func TestEverySchedule(t *testing.T) {
	defer Reset()
	sentinel := errors.New("boom")
	Arm(SiteMemoStep, Fault{Err: sentinel, Every: 3})
	var fired int
	for i := 0; i < 9; i++ {
		if Inject(SiteMemoStep) != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("Every=3 over 9 visits fired %d times, want 3", fired)
	}
	if got := Triggered(SiteMemoStep); got != 3 {
		t.Fatalf("Triggered = %d, want 3", got)
	}
}

func TestLimitCapsTriggers(t *testing.T) {
	defer Reset()
	sentinel := errors.New("boom")
	Arm(SitePoolAcquire, Fault{Err: sentinel, Limit: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if Inject(SitePoolAcquire) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("Limit=2 fired %d times", fired)
	}
}

func TestDelayIsSlept(t *testing.T) {
	defer Reset()
	Arm(SiteEnumerate, Fault{Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Inject(SiteEnumerate); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delay fault slept only %v", elapsed)
	}
}

func TestTruncateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateFile(path, 4); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "0123" {
		t.Fatalf("truncated content %q", data)
	}
	// keep beyond size is a no-op.
	if err := TruncateFile(path, 100); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != "0123" {
		t.Fatalf("oversize keep changed content to %q", data)
	}
}

func TestCorruptFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	orig := []byte(`{"version":1,"entries":[{"key":"x"}]}`)
	for _, p := range []string{a, b} {
		if err := os.WriteFile(p, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := CorruptFile(p, 4, 42); err != nil {
			t.Fatal(err)
		}
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed produced different corruption")
	}
	if string(da) == string(orig) {
		t.Fatal("corruption changed nothing")
	}
}
