// Package chaos is the repository's fault-injection harness: named
// injection points compiled into the planning and serving hot paths
// that cost one atomic load when disarmed and become programmable
// faults (delays, errors, trigger schedules) when a test arms them.
//
// The package exists so the robustness layer — the overload degradation
// ladder, the greedy fallback, warm-start snapshots — can be driven
// through its failure modes deterministically: a chaos test arms a
// fault at a site (say, a 50ms delay per enumeration poll), runs real
// traffic through the real server, and asserts the ladder engages,
// degrades plan quality instead of availability, and recovers once the
// fault is disarmed.
//
// # Contract at the injection sites
//
// Every site guards its Inject call behind Armed():
//
//	if chaos.Armed() {
//		if err := chaos.Inject(chaos.SiteEnumerate); err != nil {
//			return err
//		}
//	}
//
// Armed() is a single atomic load, false for the entire lifetime of any
// production process (nothing outside _test files arms faults), so the
// disarmed cost is one predictable branch. The dplint chaosgate
// analyzer enforces the guard: an unguarded Inject call in repository
// code is a lint error, which keeps the harness from quietly growing
// into an unconditional tax on the enumeration loops.
//
// Faults are process-global (the sites are reached from library code
// that has no test handle), so tests that arm them must not run in
// parallel with tests that assert fault-free behavior; defer Reset()
// and keep chaos tests in their own serial group.
package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one injection point compiled into the repository.
type Site string

// The compiled-in injection sites.
const (
	// SiteEnumerate fires once at the start of every solver dispatch
	// (repro.runSolver): an Err here makes the enumeration fail before
	// it starts — wrap dp.ErrBudgetExhausted to exercise the greedy
	// fallback, use any other error for a hard failure — and a Delay
	// models a solver that is slow to get going.
	SiteEnumerate Site = "solver.enumerate"
	// SiteMemoStep fires inside the memo engine's periodic
	// cancellation poll (every pollInterval Step calls, on runs that
	// carry a context or run-wide abort state): a Delay here slows the
	// enumeration itself — the knob chaos tests turn to push a server
	// past saturation with real, cancellable work — and an Err aborts
	// the run as if a limit had tripped.
	SiteMemoStep Site = "memo.step"
	// SitePoolAcquire fires at the head of the serving worker pool's
	// admission path: an Err simulates a saturated pool (use
	// service.ErrQueueFull for the shedding path), a Delay starves
	// admission without occupying workers.
	SitePoolAcquire Site = "pool.acquire"
)

// Fault programs one armed site. The zero value triggers on every
// visit with no delay and no error — useful only for counting.
type Fault struct {
	// Delay is slept on every triggered visit.
	Delay time.Duration
	// Err is returned by Inject on every triggered visit. Sites decide
	// what an error means (abort the run, fail admission, ...).
	Err error
	// Every makes only every Nth visit trigger (1 or 0 = every visit).
	// Untriggered visits are free apart from the counter bump.
	Every int
	// Limit caps the number of triggered visits; after Limit triggers
	// the fault stays armed but inert (0 = unlimited). This is how a
	// test injects exactly K failures and then asserts recovery.
	Limit int
}

// armed is the global fast-path gate: true iff at least one site has a
// fault installed. Sites check it before calling Inject.
var armed atomic.Bool

var (
	mu     sync.Mutex
	faults map[Site]*state
)

// state is one armed fault plus its visit accounting.
type state struct {
	f         Fault
	visits    uint64
	triggered uint64
}

// Armed reports whether any fault is installed. It is the guard every
// injection site must check before Inject; when false (always, outside
// chaos tests) the site costs this one atomic load.
//
//dp:hotpath
func Armed() bool { return armed.Load() }

// Arm installs f at site, replacing any previous fault there. The
// site's visit accounting restarts from zero.
func Arm(site Site, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if faults == nil {
		faults = make(map[Site]*state)
	}
	faults[site] = &state{f: f}
	armed.Store(true)
}

// Disarm removes the fault at site, if any.
func Disarm(site Site) {
	mu.Lock()
	defer mu.Unlock()
	delete(faults, site)
	if len(faults) == 0 {
		armed.Store(false)
	}
}

// Reset removes every fault. Chaos tests defer it so a failing
// assertion cannot leak a fault into the rest of the suite.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	faults = nil
	armed.Store(false)
}

// Triggered reports how many times the fault at site has actually
// fired (visits that passed the Every/Limit schedule).
func Triggered(site Site) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if s := faults[site]; s != nil {
		return s.triggered
	}
	return 0
}

// Inject visits site: if a fault is armed there and its schedule
// triggers, the fault's Delay is slept and its Err returned. Callers
// must only reach Inject behind an Armed() guard (enforced by the
// chaosgate lint analyzer), so the map lookup and lock are never paid
// on a disarmed process.
//
//dp:coldpath only reachable behind the Armed() fast-path gate, which is false outside chaos tests
func Inject(site Site) error {
	mu.Lock()
	s := faults[site]
	if s == nil {
		mu.Unlock()
		return nil
	}
	s.visits++
	every := s.f.Every
	if every < 1 {
		every = 1
	}
	if s.visits%uint64(every) != 0 {
		mu.Unlock()
		return nil
	}
	if s.f.Limit > 0 && s.triggered >= uint64(s.f.Limit) {
		mu.Unlock()
		return nil
	}
	s.triggered++
	delay, err := s.f.Delay, s.f.Err
	mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// TruncateFile cuts the file at path down to keep bytes — the
// "process died mid-write" shape of snapshot and history corruption.
// keep larger than the file leaves it unchanged.
func TruncateFile(path string, keep int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if keep < 0 {
		keep = 0
	}
	if keep >= info.Size() {
		return nil
	}
	return os.Truncate(path, keep)
}

// CorruptFile flips bits at n deterministically-seeded positions in the
// file at path — the "disk handed back garbage" shape of corruption.
// The positions and flipped bits depend only on seed and the file
// size, so a corruption test is reproducible.
func CorruptFile(path string, n int, seed int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("chaos: %s is empty; nothing to corrupt", path)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(data))
		bit := byte(1 << rng.Intn(8))
		data[pos] ^= bit
	}
	return os.WriteFile(path, data, 0o644)
}
