package oracle

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/dpccp"
	"repro/internal/dpsize"
	"repro/internal/dpsub"
	"repro/internal/goo"
	"repro/internal/hypergraph"
	"repro/internal/plan"
	"repro/internal/topdown"
	"repro/internal/workload"
)

// solverFn runs one exact enumerator under a cost model.
type solverFn func(*hypergraph.Graph, cost.Model) (*plan.Node, dp.Stats, error)

// exactSolvers are the five enumerators that must return cost-optimal
// plans, plus the parallel modes of all five (run at
// three workers to exercise partitioning, merging, and the
// order-independent tie-break even on the suite's small graphs — the
// internal solvers apply no size crossover). needsSimple marks solvers
// restricted to simple graphs.
var exactSolvers = []struct {
	name        string
	solve       solverFn
	needsSimple bool
}{
	{"dphyp", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return core.Solve(g, core.Options{Model: m})
	}, false},
	{"dpsize", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return dpsize.Solve(g, dpsize.Options{Model: m})
	}, false},
	{"dpsub", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return dpsub.Solve(g, dpsub.Options{Model: m})
	}, false},
	{"dpccp", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return dpccp.Solve(g, dpccp.Options{Model: m})
	}, true},
	{"topdown", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return topdown.Solve(g, topdown.Options{Model: m})
	}, false},
	{"dphyp-par3", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return core.Solve(g, core.Options{Model: m, Parallelism: 3})
	}, false},
	{"dpsize-par3", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return dpsize.Solve(g, dpsize.Options{Model: m, Parallelism: 3})
	}, false},
	{"dpsub-par3", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return dpsub.Solve(g, dpsub.Options{Model: m, Parallelism: 3})
	}, false},
	{"dpccp-par3", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return dpccp.Solve(g, dpccp.Options{Model: m, Parallelism: 3})
	}, true},
	{"topdown-par3", func(g *hypergraph.Graph, m cost.Model) (*plan.Node, dp.Stats, error) {
		return topdown.Solve(g, topdown.Options{Model: m, Parallelism: 3})
	}, false},
}

// allModels are the cost models the differential suite sweeps.
var allModels = []cost.Model{
	cost.Cout{}, cost.NestedLoop{}, cost.Hash{}, cost.Cmm{}, cost.Physical{},
}

// shapeClassCount is the number of generator classes genGraph cycles
// through: chain, cycle, star, clique, grid, random simple, random
// hypergraph.
const shapeClassCount = 7

// genGraph derives a deterministic random graph of the given shape
// class from seed. Sizes stay within the oracle's brute-force range
// (cliques are capped tighter — their Θ(3ⁿ) oracle walk dominates the
// suite's runtime).
func genGraph(seed int64, class int) *hypergraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	switch ((class % shapeClassCount) + shapeClassCount) % shapeClassCount {
	case 0:
		return workload.Chain(3+rng.Intn(8), cfg)
	case 1:
		return workload.Cycle(3+rng.Intn(8), cfg)
	case 2:
		return workload.Star(3+rng.Intn(8), cfg)
	case 3:
		return workload.Clique(3+rng.Intn(6), cfg)
	case 4:
		dims := [][2]int{{2, 2}, {2, 3}, {2, 4}, {2, 5}, {3, 3}}[rng.Intn(5)]
		return workload.Grid(dims[0], dims[1], cfg)
	case 5:
		return workload.RandomSimple(rng, 3+rng.Intn(8), rng.Intn(4), cfg)
	default:
		return workload.RandomHyper(rng, 3+rng.Intn(8), 1+rng.Intn(3), cfg)
	}
}

func isSimple(g *hypergraph.Graph) bool {
	for i := 0; i < g.NumEdges(); i++ {
		if !g.Edge(i).Simple() {
			return false
		}
	}
	return true
}

// costsMatch compares plan costs with a relative tolerance: equal-cost
// optima reached through different tree shapes may differ in the last
// few bits of floating-point accumulation.
func costsMatch(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// checkSolver runs one solver under one model and compares it against
// the oracle optimum.
func checkSolver(t *testing.T, tag string, g *hypergraph.Graph, m cost.Model,
	name string, solve solverFn, optimal *plan.Node) {
	t.Helper()
	p, _, err := solve(g, m)
	if err != nil {
		t.Errorf("%s: %s/%s failed: %v", tag, name, m.Name(), err)
		return
	}
	if err := p.Validate(); err != nil {
		t.Errorf("%s: %s/%s returned invalid plan: %v", tag, name, m.Name(), err)
		return
	}
	if !p.Rels.Equal(g.AllNodes()) {
		t.Errorf("%s: %s/%s plan covers %v, want %v", tag, name, m.Name(), p.Rels, g.AllNodes())
		return
	}
	if !costsMatch(p.Cost, optimal.Cost) {
		t.Errorf("%s: %s/%s cost %.10g != optimal %.10g\nsolver plan:\n%s\noracle plan:\n%s",
			tag, name, m.Name(), p.Cost, optimal.Cost, p, optimal)
	}
}

// TestDifferentialSolversAgainstOracle is the headline suite: ~500
// seeded random graphs spanning every shape class, every exact solver
// under every cost model, all asserted equal to the brute-force
// optimum. Greedy (GOO) rides along with the weaker assertion that it
// never beats the optimum (it must not — that would mean the exact
// space missed a plan) and always returns a valid plan.
func TestDifferentialSolversAgainstOracle(t *testing.T) {
	graphs := 500
	if testing.Short() {
		graphs = 100
	}
	for i := 0; i < graphs; i++ {
		seed := int64(1000 + i)
		class := i % shapeClassCount
		g := genGraph(seed, class)
		g.Freeze()
		simple := isSimple(g)
		tag := fmt.Sprintf("graph %d (seed %d class %d, n=%d)", i, seed, class, g.NumRels())

		for _, m := range allModels {
			optimal, err := Optimal(g, m)
			if err != nil {
				t.Fatalf("%s: oracle failed: %v", tag, err)
			}
			for _, s := range exactSolvers {
				if s.needsSimple && !simple {
					continue
				}
				checkSolver(t, tag, g, m, s.name, s.solve, optimal)
			}
			gp, _, err := goo.Solve(g, goo.Options{Model: m})
			if err != nil {
				t.Errorf("%s: greedy/%s failed: %v", tag, m.Name(), err)
			} else if err := gp.Validate(); err != nil {
				t.Errorf("%s: greedy/%s invalid plan: %v", tag, m.Name(), err)
			} else if gp.Cost < optimal.Cost && !costsMatch(gp.Cost, optimal.Cost) {
				t.Errorf("%s: greedy/%s cost %.10g beats the 'optimal' %.10g — oracle bug",
					tag, m.Name(), gp.Cost, optimal.Cost)
			}
		}
	}
}

// TestOracleAgreesWithItself: the oracle is deterministic and the
// memoized recursion returns a structurally valid tree.
func TestOracleAgreesWithItself(t *testing.T) {
	g := workload.CycleHyper(8, 1, workload.DefaultConfig())
	a, err := Optimal(g, cost.Cout{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimal(g, cost.Cout{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || !a.Equal(b) {
		t.Fatalf("oracle not deterministic: %g vs %g", a.Cost, b.Cost)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestOracleRejectsUnsupported: clear errors instead of wrong answers.
func TestOracleRejectsUnsupported(t *testing.T) {
	if _, err := Optimal(hypergraph.New(), nil); err == nil {
		t.Error("empty graph must fail")
	}

	big := workload.Chain(MaxRels+1, workload.DefaultConfig())
	if _, err := Optimal(big, nil); err == nil {
		t.Error("oversized graph must fail")
	}

	outer := hypergraph.New()
	outer.AddRelation("A", 10)
	outer.AddRelation("B", 10)
	outer.AddEdge(hypergraph.Edge{
		U: bitset.Single(0), V: bitset.Single(1), Sel: 0.5, Op: algebra.LeftOuter,
	})
	if _, err := Optimal(outer, nil); err == nil {
		t.Error("non-inner graph must fail")
	}

	disc := hypergraph.New()
	disc.AddRelation("A", 10)
	disc.AddRelation("B", 10)
	if _, err := Optimal(disc, nil); err == nil {
		t.Error("disconnected graph must fail")
	}
}

// TestPhysicalAnnotationsPresent: under the Physical model every inner
// node of every solver's plan carries a concrete physical operator.
func TestPhysicalAnnotationsPresent(t *testing.T) {
	g := workload.Star(7, workload.DefaultConfig())
	for _, s := range exactSolvers {
		p, _, err := s.solve(g, cost.Physical{})
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		p.Walk(func(n *plan.Node) {
			if !n.IsLeaf() && n.Phys == algebra.PhysNone {
				t.Errorf("%s: inner node %v lacks a physical operator", s.name, n.Rels)
			}
			if n.IsLeaf() && n.Phys != algebra.PhysNone {
				t.Errorf("%s: leaf R%d carries physical operator %s", s.name, n.Rel, n.Phys)
			}
		})
	}
	// Logical models leave nodes unannotated.
	p, _, err := core.Solve(g, core.Options{Model: cost.Cout{}})
	if err != nil {
		t.Fatal(err)
	}
	p.Walk(func(n *plan.Node) {
		if n.Phys != algebra.PhysNone {
			t.Errorf("Cout: node %v unexpectedly annotated %s", n.Rels, n.Phys)
		}
	})
}
