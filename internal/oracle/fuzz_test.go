package oracle

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/goo"
)

// FuzzSolverEquivalence is the cross-solver differential fuzzer: from a
// fuzzed (seed, class) pair it derives a random connected hypergraph,
// computes the brute-force optimum, and asserts that every exact solver
// under both a logical and a physical cost model reproduces it, and
// that Greedy stays valid and no cheaper than the optimum.
//
// CI runs this as a 30-second smoke (`-fuzz=FuzzSolverEquivalence
// -fuzztime=30s`); the seed corpus alone re-runs on every plain
// `go test`.
func FuzzSolverEquivalence(f *testing.F) {
	for i := int64(0); i < 14; i++ {
		f.Add(i*7919+3, uint8(i))
	}
	models := []cost.Model{cost.Cout{}, cost.Cmm{}, cost.Physical{}}
	f.Fuzz(func(t *testing.T, seed int64, class uint8) {
		g := genGraph(seed, int(class))
		g.Freeze()
		simple := isSimple(g)

		for _, m := range models {
			optimal, err := Optimal(g, m)
			if err != nil {
				t.Fatalf("oracle failed on generated graph (seed %d class %d): %v", seed, class, err)
			}
			tag := "fuzz"
			for _, s := range exactSolvers {
				if s.needsSimple && !simple {
					continue
				}
				checkSolver(t, tag, g, m, s.name, s.solve, optimal)
			}
			gp, _, err := goo.Solve(g, goo.Options{Model: m})
			if err != nil {
				t.Fatalf("greedy/%s failed: %v", m.Name(), err)
			}
			if err := gp.Validate(); err != nil {
				t.Fatalf("greedy/%s invalid plan: %v", m.Name(), err)
			}
			if gp.Cost < optimal.Cost && !costsMatch(gp.Cost, optimal.Cost) {
				t.Fatalf("greedy/%s cost %.10g beats the brute-force optimum %.10g",
					m.Name(), gp.Cost, optimal.Cost)
			}
		}
	})
}
