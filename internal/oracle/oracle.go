// Package oracle provides a brute-force join-ordering oracle for
// differential testing of the enumeration algorithms.
//
// Optimal exhaustively enumerates every bushy cross-product-free
// operator tree — all partitions of all Definition-3-connected
// subgraphs, both orientations of every join — and returns the cheapest
// plan under a given cost model. It shares nothing with the
// dp.Builder/EmitCsgCmp plan-construction machinery the production
// solvers go through except the cardinality and cost primitives
// themselves, so agreement between a solver and the oracle certifies
// the solver's enumeration (it reached every csg-cmp-pair that
// matters), not merely its arithmetic.
//
// The enumeration is Θ(3ⁿ) in the number of relations and is intended
// for n ≤ MaxRels; the differential and fuzz suites in this package run
// it against every solver × every cost model over seeded random graphs
// of all shape classes.
package oracle

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

// MaxRels bounds the brute-force enumeration: beyond 12 relations the
// 3ⁿ subset-partition walk leaves the unit-test regime.
const MaxRels = 12

// Optimal returns the cheapest bushy cross-product-free plan for g
// under model m (cost.Default() if nil) by exhaustive enumeration.
// Only pure inner-join graphs without dependent relations are
// supported — exactly the class the randomized differential workloads
// generate; richer operator trees are exercised by the optree suites.
func Optimal(g *hypergraph.Graph, m cost.Model) (*plan.Node, error) {
	n := g.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("oracle: empty graph")
	}
	if n > MaxRels {
		return nil, fmt.Errorf("oracle: %d relations exceed the brute-force limit of %d", n, MaxRels)
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i).Op != algebra.Join {
			return nil, fmt.Errorf("oracle: edge %d has non-inner operator %s", i, g.Edge(i).Op)
		}
	}
	for i := 0; i < n; i++ {
		if !g.Relation(i).Free.IsEmpty() {
			return nil, fmt.Errorf("oracle: relation %d is dependent", i)
		}
	}
	if m == nil {
		m = cost.Default()
	}
	e := &enum{g: g, m: m, memo: make(map[string]*plan.Node)}
	p := e.best(g.AllNodes())
	if p == nil {
		return nil, fmt.Errorf("oracle: hypergraph not connected, no plan for %v", g.AllNodes())
	}
	return p, nil
}

type enum struct {
	g    *hypergraph.Graph
	m    cost.Model
	memo map[string]*plan.Node // keyed by Set.Key; nil value = subgraph not connected
}

// best returns the cheapest plan covering exactly S, or nil when S is
// not connected in the Definition-3 sense. Every partition S = S1 ∪ S2
// with a connecting edge and two connected halves is tried, fixing
// min(S) ∈ S1 so each unordered partition is visited once.
func (e *enum) best(S bitset.Set) *plan.Node {
	key := S.Key()
	if p, ok := e.memo[key]; ok {
		return p
	}
	if S.IsSingleton() {
		r := S.Min()
		p := plan.Leaf(r, e.g.Relation(r).Card)
		e.memo[key] = p
		return p
	}
	var best *plan.Node
	rest := S.MinusMin()
	lo := S.MinSet()
	for a := bitset.Empty; ; a = a.NextSubset(rest) {
		if a.Equal(rest) {
			break // S2 would be empty
		}
		S1 := lo.Union(a)
		S2 := S.Minus(S1)
		if e.g.ConnectsTo(S1, S2) {
			p1, p2 := e.best(S1), e.best(S2)
			if p1 != nil && p2 != nil {
				if cand := e.join(S1, S2, p1, p2); best == nil || cand.Cost < best.Cost {
					best = cand
				}
			}
		}
	}
	e.memo[key] = best
	return best
}

// join prices the inner join of the two subplans in both orientations
// and returns the cheaper tree. The predicate-application rule mirrors
// the one the plan generator uses: every edge fully covered by S1 ∪ S2
// but by neither side alone is applied here, exactly once across the
// whole tree.
func (e *enum) join(S1, S2 bitset.Set, p1, p2 *plan.Node) *plan.Node {
	S := S1.Union(S2)
	sel := 1.0
	var applied []int
	for i := 0; i < e.g.NumEdges(); i++ {
		ed := e.g.Edge(i)
		nodes := ed.Nodes()
		if nodes.SubsetOf(S) && !nodes.SubsetOf(S1) && !nodes.SubsetOf(S2) {
			sel *= ed.Sel
			applied = append(applied, i)
		}
	}
	card := cost.EstimateCard(algebra.Join, p1.Card, p2.Card, sel)

	left, right := p1, p2
	c := e.m.JoinCost(algebra.Join, p1.Cost, p2.Cost, p1.Card, p2.Card, card)
	if c21 := e.m.JoinCost(algebra.Join, p2.Cost, p1.Cost, p2.Card, p1.Card, card); c21 < c {
		left, right, c = p2, p1, c21
	}
	node := plan.Join(algebra.Join, left, right, applied, card, c)
	if pm, ok := e.m.(cost.PhysicalModel); ok {
		node.Phys, _ = pm.ChooseJoin(algebra.Join, left.Cost, right.Cost, left.Card, right.Card, card)
	}
	return node
}
