package memo

import (
	"math/bits"

	"repro/internal/bitset"
)

// minSlots is the smallest table allocation. Power of two, large enough
// that the tiny queries dominating served traffic never grow the table.
const minSlots = 64

// maxLoadNum/maxLoadDen cap the load factor at 0.7: beyond that linear
// probing degrades into long clustered chains, below it memory is
// wasted on empty slots that still have to be cleared between runs.
const (
	maxLoadNum = 7
	maxLoadDen = 10
)

// Table is an open-addressing hash table from non-empty bitset.Set keys
// to int32 values, specialized for the join-enumeration memo: the empty
// set is never a valid key (every memoed relation set contains at least
// one relation) and doubles as the free-slot sentinel, and deletion is
// not supported — DP tables only ever grow within a run and are cleared
// wholesale between runs. Keys hash through bitset.Hash, whose
// single-word path is one multiply, so the ≤64-relation slot sequence
// is identical to the historical packed-word Fibonacci hash; wide keys
// fold their tail words into the same 64-bit hash before slotting.
//
// Compared to a Go map this removes interface hashing, per-bucket
// overflow pointers, and tophash bookkeeping from the hottest lookup
// path of the enumeration loops. The zero Table is empty and ready to
// use.
type Table struct {
	keys  []bitset.Set // power-of-two length; the empty set marks a free slot
	vals  []int32
	used  int
	shift uint // 64 - log2(len(keys))
	grows int  // rehash count since the last Reset
}

// shrinkFactor bounds how oversized recycled storage may be relative to
// the current run's hint before Reset reallocates it smaller. Without
// the bound, one huge query would permanently inflate a pooled engine:
// every later small run would pay a memclr over the giant key array and
// the memory would stay pinned for the process lifetime.
const shrinkFactor = 8

// Reset prepares the table for a run expecting roughly hint entries. The
// backing arrays are kept when they are already large enough — but not
// more than shrinkFactor times too large — so the arena-reuse fast path
// is a memclr; otherwise they are reallocated at the next power of two
// above hint/maxLoad. The return value reports whether existing storage
// was kept.
//
//dp:coldpath runs once per enumeration at setup (Put's empty-table lazy init included)
func (t *Table) Reset(hint int) (kept bool) {
	slots := minSlots
	for slots*maxLoadNum < hint*maxLoadDen {
		slots <<= 1
	}
	if len(t.keys) >= slots && len(t.keys) <= slots*shrinkFactor {
		clear(t.keys)
		kept = true
	} else {
		t.keys = make([]bitset.Set, slots)
		t.vals = make([]int32, slots)
	}
	t.shift = 64 - uint(bits.TrailingZeros(uint(len(t.keys))))
	t.used = 0
	t.grows = 0
	return kept
}

// Clear empties the table while keeping its backing storage regardless
// of size. The levels of one parallel run alternate between large and
// tiny (a deferred-pricing sweep visits every bucket size, and the top
// level always holds one set), so per-level shrinking would realloc and
// regrow constantly; shrink hygiene is a run-boundary concern handled
// by Reset.
//
//dp:coldpath runs once per parallel level at the barrier
func (t *Table) Clear() {
	clear(t.keys)
	t.used = 0
	t.grows = 0
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.used }

// Cap returns the number of slots.
func (t *Table) Cap() int { return len(t.keys) }

// Grows returns how many times the table rehashed since the last Reset.
func (t *Table) Grows() int { return t.grows }

// Get returns the value stored for k. The empty set is never stored
// (Put panics on it) and always misses — without the explicit guard it
// would match the free-slot sentinel and return a stale value.
//
//dp:hotpath
func (t *Table) Get(k bitset.Set) (int32, bool) {
	if len(t.keys) == 0 || k.IsEmpty() {
		return 0, false
	}
	mask := uint(len(t.keys) - 1)
	i := uint(k.Hash()>>t.shift) & mask
	for {
		if t.keys[i].Equal(k) {
			return t.vals[i], true
		}
		if t.keys[i].IsEmpty() {
			return 0, false
		}
		i = (i + 1) & mask
	}
}

// Put stores v for k, overwriting any existing entry. It panics on the
// empty set, which is reserved as the free-slot sentinel.
//
//dp:hotpath
func (t *Table) Put(k bitset.Set, v int32) {
	if k.IsEmpty() {
		panic("memo: empty relation set used as table key")
	}
	if len(t.keys) == 0 {
		t.Reset(0)
	}
	if (t.used+1)*maxLoadDen > len(t.keys)*maxLoadNum {
		t.grow()
	}
	mask := uint(len(t.keys) - 1)
	i := uint(k.Hash()>>t.shift) & mask
	for {
		if t.keys[i].Equal(k) {
			t.vals[i] = v
			return
		}
		if t.keys[i].IsEmpty() {
			t.keys[i] = k
			t.vals[i] = v
			t.used++
			return
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table and reinserts every entry.
//
//dp:coldpath doubling growth runs O(log n) times per enumeration; the copy is amortized
func (t *Table) grow() {
	oldKeys, oldVals := t.keys, t.vals
	slots := 2 * len(oldKeys)
	t.keys = make([]bitset.Set, slots)
	t.vals = make([]int32, slots)
	t.shift = 64 - uint(bits.TrailingZeros(uint(slots)))
	t.grows++
	mask := uint(slots - 1)
	for j, k := range oldKeys {
		if k.IsEmpty() {
			continue
		}
		i := uint(k.Hash()>>t.shift) & mask
		for !t.keys[i].IsEmpty() {
			i = (i + 1) & mask
		}
		t.keys[i] = k
		t.vals[i] = oldVals[j]
	}
}

// ForEach calls f for every entry, in slot order. Unlike ranging over a
// Go map the order is deterministic for a given insertion history.
func (t *Table) ForEach(f func(k bitset.Set, v int32)) {
	for i, k := range t.keys {
		if !k.IsEmpty() {
			f(k, t.vals[i])
		}
	}
}
