package memo

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
)

// storeBackend improves a fixed plan per emitted pair so engine-level
// parallel tests can drive Improve without the dp layer.
type storeBackend struct {
	e    *Engine
	cost func(S1, S2 bitset.Set) float64
}

func (b *storeBackend) BuildPair(S1, S2 bitset.Set) {
	lh, _ := b.e.Lookup(S1)
	rh, _ := b.e.Lookup(S2)
	if !b.e.ChargePlan() {
		return
	}
	b.e.Improve(S1.Union(S2), lh, rh, algebra.Join, algebra.PhysNone, 1, b.cost(S1, S2), nil)
}

func (b *storeBackend) Release() {}

// levelEntry snapshots one merged memo entry for comparison.
type levelEntry struct {
	S           bitset.Set
	cost        float64
	left, right bitset.Set
}

func (a levelEntry) equal(b levelEntry) bool {
	return a.S.Equal(b.S) && a.cost == b.cost && a.left.Equal(b.left) && a.right.Equal(b.right)
}

// runMergeScenario seeds singletons {0..3}, then emits the size-4
// partitions of {0,1,2,3} across nw workers in the given per-worker
// arrangement, merges, and returns the entry for the full set.
func runMergeScenario(t *testing.T, nw int, assign [][][2]bitset.Set, cost func(S1, S2 bitset.Set) float64) levelEntry {
	t.Helper()
	e := NewEngine()
	e.Reset(4)
	for i := 0; i < 4; i++ {
		e.EmitBase(i, 10)
	}
	// Seed the size-2 children the size-4 pairs reference.
	sb := &storeBackend{e: e, cost: cost}
	e.SetBackend(sb)
	for _, pair := range [][2]bitset.Set{
		{bitset.New(0), bitset.New(1)}, {bitset.New(2), bitset.New(3)},
		{bitset.New(0), bitset.New(2)}, {bitset.New(1), bitset.New(3)},
	} {
		e.EmitPair(pair[0], pair[1])
	}

	p := e.Parallel(nw)
	for _, w := range p.Workers() {
		wb := &storeBackend{e: w, cost: cost}
		w.SetBackend(wb)
	}
	p.StartLevel()
	var wg sync.WaitGroup
	for wi, pairs := range assign {
		w := p.Workers()[wi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, pr := range pairs {
				w.EmitPair(pr[0], pr[1])
			}
		}()
	}
	wg.Wait()
	newSets := p.FinishLevel(LevelBuilt)
	if len(newSets) != 1 || !newSets[0].Equal(bitset.Full(4)) {
		t.Fatalf("merge produced %v, want [%v]", newSets, bitset.Full(4))
	}
	h, ok := e.Lookup(bitset.Full(4))
	if !ok {
		t.Fatal("merged entry missing")
	}
	n := e.nodeAt(h)
	return levelEntry{S: n.rels, cost: n.cost,
		left: e.nodeAt(n.left).rels, right: e.nodeAt(n.right).rels}
}

// TestParallelMergeTieBreakOrderIndependent: equal-cost candidates for
// the same set must resolve to the lexicographically lowest
// (left, right) split no matter which worker found which candidate or
// in what order.
func TestParallelMergeTieBreakOrderIndependent(t *testing.T) {
	flat := func(S1, S2 bitset.Set) float64 { return 100 } // all plans tie
	pairs := [][2]bitset.Set{
		{bitset.New(0, 2), bitset.New(1, 3)},
		{bitset.New(0, 1), bitset.New(2, 3)},
	}
	want := levelEntry{S: bitset.Full(4), cost: 100,
		left: bitset.New(0, 1), right: bitset.New(2, 3)}

	arrangements := [][][][2]bitset.Set{
		{{pairs[0], pairs[1]}, nil},        // both on worker 0, worse split first
		{{pairs[1], pairs[0]}, nil},        // both on worker 0, best split first
		{{pairs[0]}, {pairs[1]}},           // split across workers
		{{pairs[1]}, {pairs[0]}},           // split the other way
		{nil, {pairs[0], pairs[1]}},        // all on worker 1
		{{pairs[0], pairs[1]}, {pairs[0]}}, // duplicate candidate on both
	}
	for i, a := range arrangements {
		got := runMergeScenario(t, 2, a, flat)
		if !got.equal(want) {
			t.Errorf("arrangement %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestParallelMergePrefersCheaper: cost still dominates the tie-break.
func TestParallelMergePrefersCheaper(t *testing.T) {
	cheaperHigh := func(S1, S2 bitset.Set) float64 {
		if S1.Equal(bitset.New(0, 2)) {
			return 50 // the lexicographically larger split is cheaper
		}
		return 100
	}
	got := runMergeScenario(t, 2,
		[][][2]bitset.Set{{{bitset.New(0, 1), bitset.New(2, 3)}}, {{bitset.New(0, 2), bitset.New(1, 3)}}},
		cheaperHigh)
	if got.cost != 50 || !got.left.Equal(bitset.New(0, 2)) {
		t.Errorf("got %+v, want the cheaper {0,2}x{1,3} split at cost 50", got)
	}
}

// TestSerialImproveTieBreakMatchesMerge: the serial engine applies the
// same order-independent rule, so serial and merged parallel state
// agree on equal-cost ties regardless of arrival order.
func TestSerialImproveTieBreakMatchesMerge(t *testing.T) {
	for _, order := range [][2]int{{0, 1}, {1, 0}} {
		e := NewEngine()
		e.Reset(4)
		for i := 0; i < 4; i++ {
			e.EmitBase(i, 10)
		}
		sb := &storeBackend{e: e, cost: func(_, _ bitset.Set) float64 { return 100 }}
		e.SetBackend(sb)
		for _, pr := range [][2]bitset.Set{
			{bitset.New(0), bitset.New(1)}, {bitset.New(2), bitset.New(3)},
			{bitset.New(0), bitset.New(2)}, {bitset.New(1), bitset.New(3)},
		} {
			e.EmitPair(pr[0], pr[1])
		}
		pairs := [][2]bitset.Set{
			{bitset.New(0, 1), bitset.New(2, 3)},
			{bitset.New(0, 2), bitset.New(1, 3)},
		}
		e.EmitPair(pairs[order[0]][0], pairs[order[0]][1])
		e.EmitPair(pairs[order[1]][0], pairs[order[1]][1])
		h, ok := e.Lookup(bitset.Full(4))
		if !ok {
			t.Fatal("no entry")
		}
		n := e.nodeAt(h)
		if !e.nodeAt(n.left).rels.Equal(bitset.New(0, 1)) {
			t.Errorf("order %v: winner left = %v, want {0,1}", order, e.nodeAt(n.left).rels)
		}
	}
}

// TestParallelBudgetSharedAcrossWorkers: the pair budget bounds the sum
// of emissions over all workers, and the trip aborts the main engine at
// the barrier with ErrBudgetExhausted.
func TestParallelBudgetSharedAcrossWorkers(t *testing.T) {
	e := NewEngine()
	e.Reset(4)
	e.SetLimits(Limits{MaxCsgCmpPairs: 3})
	for i := 0; i < 4; i++ {
		e.EmitBase(i, 10)
	}
	p := e.Parallel(2)
	for _, w := range p.Workers() {
		w.SetBackend(&storeBackend{e: w, cost: func(_, _ bitset.Set) float64 { return 1 }})
	}
	p.StartLevel()
	var wg sync.WaitGroup
	for _, w := range p.Workers() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				w.EmitPair(bitset.New(0), bitset.New(1))
			}
		}()
	}
	wg.Wait()
	p.FinishLevel(LevelBuilt)
	if err := e.Aborted(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Aborted() = %v, want ErrBudgetExhausted", err)
	}
	if _, err := e.Final(bitset.Full(4)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Final = %v, want ErrBudgetExhausted", err)
	}
}

// TestParallelCancellationPropagates: a cancelled context observed by
// one worker stops the others and surfaces from Final.
func TestParallelCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine()
	e.Reset(4)
	e.SetLimits(Limits{Ctx: ctx})
	for i := 0; i < 4; i++ {
		e.EmitBase(i, 10)
	}
	p := e.Parallel(2)
	for _, w := range p.Workers() {
		w.SetBackend(&storeBackend{e: w, cost: func(_, _ bitset.Set) float64 { return 1 }})
	}
	p.StartLevel()
	w := p.Workers()[0]
	for i := 0; i < 10*pollInterval && w.Step(); i++ {
	}
	if w.Aborted() == nil {
		t.Fatal("worker did not observe cancellation")
	}
	p.FinishLevel(LevelBuilt)
	if !errors.Is(e.Aborted(), context.Canceled) {
		t.Fatalf("main Aborted() = %v, want context.Canceled", e.Aborted())
	}
}

// TestParallelPoolRecycle: worker views, their arenas, and the shared
// state survive a pool round-trip and a second parallel run starts
// clean.
func TestParallelPoolRecycle(t *testing.T) {
	pool := &Pool{}
	run := func() *Engine {
		e := pool.Get()
		e.Reset(4)
		for i := 0; i < 4; i++ {
			e.EmitBase(i, 10)
		}
		p := e.Parallel(2)
		for _, w := range p.Workers() {
			w.SetBackend(&storeBackend{e: w, cost: func(_, _ bitset.Set) float64 { return 1 }})
		}
		p.StartLevel()
		p.Workers()[0].EmitPair(bitset.New(0), bitset.New(1))
		p.Workers()[1].EmitPair(bitset.New(2), bitset.New(3))
		sets := p.FinishLevel(LevelBuilt)
		if len(sets) != 2 {
			t.Fatalf("level added %v, want two sets", sets)
		}
		if e.Stats.CsgCmpPairs != 2 || e.Stats.Workers != 2 {
			t.Fatalf("stats = %+v", e.Stats)
		}
		return e
	}
	e1 := run()
	pool.Put(e1)
	e2 := pool.Get()
	if e2 != e1 {
		t.Skip("pool did not recycle the engine (GC ran); nothing to verify")
	}
	run()
	pool.Put(e2)
}
