package memo

import "sync"

// Pool recycles Engines — table slots, plan-node arena, edge store, and
// the attached Backend with its scratch buffers — across planning calls.
// A long-lived Planner owns one Pool so that steady traffic over similar
// query sizes reaches a steady state with no enumeration-side
// allocations at all: Reset keeps backing arrays, and only the winning
// plan tree is materialized per run.
//
// A nil *Pool is valid and simply allocates fresh Engines, so solvers
// can thread an optional pool without nil checks at every call site.
type Pool struct {
	pool sync.Pool
}

// Get returns an Engine, reusing pooled storage when available. The
// caller must Reset it (internal/dp.NewRun does) before use.
func (p *Pool) Get() *Engine {
	if p != nil {
		if e, ok := p.pool.Get().(*Engine); ok {
			return e
		}
	}
	return NewEngine()
}

// Put releases e's per-run references and returns it to the pool. Plans
// materialized by Final are freshly allocated and survive; the arena and
// table storage are recycled. e must not be used after Put.
func (p *Pool) Put(e *Engine) {
	if p == nil || e == nil {
		return
	}
	if e.backend != nil {
		e.backend.Release()
	}
	if e.par != nil {
		// Worker views recycle with the main engine: drop their per-run
		// references (graph, model, shared abort state) but keep their
		// tables, arenas, and backends for the next parallel run.
		for _, w := range e.par.Ws {
			if w.backend != nil {
				w.backend.Release()
			}
			w.OnEmit = nil
			w.limits = Limits{}
			w.abortErr = nil
			w.shared = nil
			w.warm = true
		}
	}
	e.OnEmit = nil
	e.limits = Limits{}
	e.abortErr = nil
	e.warm = true
	p.pool.Put(e)
}
