package memo

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
)

// parShared is the run-wide state of one parallel enumeration: budget
// counters charged atomically by every worker, and the first abort
// cause (cancellation or budget trip), published so sibling workers
// stop at their next poll.
type parShared struct {
	pairs   atomic.Int64 //dp:atomic
	plans   atomic.Int64 //dp:atomic
	aborted atomic.Bool  //dp:atomic

	mu  sync.Mutex
	err error
}

func (sh *parShared) reset() {
	sh.pairs.Store(0)
	sh.plans.Store(0)
	sh.aborted.Store(false)
	sh.mu.Lock()
	sh.err = nil
	sh.mu.Unlock()
}

// abort records the first cause; later causes are dropped so every
// worker reports the same error.
func (sh *parShared) abort(err error) {
	sh.mu.Lock()
	if sh.err == nil {
		sh.err = err
		sh.aborted.Store(true)
	}
	sh.mu.Unlock()
}

func (sh *parShared) cause() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.err
}

// Par orchestrates a level-synchronous parallel enumeration over one
// main engine. Each worker owns a private view (an Engine layered over
// the main one): during a level, workers read the main table and arena
// — frozen between barriers — and write candidate plans only into
// their own view, so no lock is ever taken on the enumeration path.
// FinishLevel merges the per-worker levels back into the main engine,
// resolving duplicate relation sets with the same order-independent
// tie-break Improve applies, which makes the merged state — and hence
// the final plan — identical at any worker count, and identical to the
// serial engine's.
//
// A Par is created once per main engine and recycled with it through
// the Pool: the worker views, their tables, arenas, and attached
// backends all survive pool round-trips.
type Par struct {
	Main *Engine
	Ws   []*Engine

	sh parShared

	// Barrier-merge scratch, reused across levels and pool round-trips
	// (the sorter wrapper exists so the sort takes no per-call closure
	// or interface-boxing allocation).
	ents   []mergeEnt
	sorter entSorter
}

// Parallel prepares (or revives) the engine's parallel orchestration
// with n worker views and arms the shared budget/abort state from the
// engine's current Limits. n must be at least 2. Call after Reset,
// SetLimits, and the backend attachment for the run.
func (e *Engine) Parallel(n int) *Par {
	if e.par == nil {
		e.par = &Par{Main: e}
	}
	p := e.par
	p.sh.reset()
	for len(p.Ws) < n {
		p.Ws = append(p.Ws, &Engine{parent: e})
	}
	ws := p.Ws[:n]
	// Worker tables are sized (and shrink-bounded) once per run: a level
	// holds at most the run's entries split across the workers, and the
	// main table was just Reset with the run's hint. Between levels
	// StartLevel only clears them — level sizes within one run swing too
	// wildly for per-level shrink heuristics (see Table.Clear).
	hint := e.table.Cap() / n
	for _, w := range ws {
		w.Stats = Stats{}
		w.OnEmit = nil
		w.limits = e.limits
		w.steps = 0
		w.abortErr = nil
		w.shared = &p.sh
		w.nodes = w.nodes[:0]
		w.edges = w.edges[:0]
		w.table.Reset(hint)
	}
	e.Stats.Workers = n
	// Always a fresh slice: Stats — including this header — is copied
	// into Results and the plan cache when the run finishes, so reusing
	// backing storage across runs would mutate plans already handed out.
	e.Stats.WorkerPairs = make([]int, n)
	return p
}

// Workers returns the active worker views.
func (p *Par) Workers() []*Engine { return p.Ws[:p.Main.Stats.Workers] }

// StartLevel opens a level: every worker's private table and arena are
// cleared (capacity kept — Parallel sized them for the run) and its
// arena base pinned to the current end of the main arena, so plans
// built this level reference merged children by their final handles and
// need no remapping at the barrier.
func (p *Par) StartLevel() {
	base := p.Main.base + int32(len(p.Main.nodes))
	for _, w := range p.Workers() {
		w.table.Clear()
		w.nodes = w.nodes[:0]
		w.edges = w.edges[:0]
		w.base = base
	}
}

// mergeEnt is one per-worker level entry awaiting the barrier merge.
type mergeEnt struct {
	S bitset.Set
	w *Engine
	h int32 // local arena index within w
}

// entSorter orders merge entries by relation set; a pointer to the
// Par-owned instance satisfies sort.Interface without allocating.
type entSorter struct{ s []mergeEnt }

func (e *entSorter) Len() int           { return len(e.s) }
func (e *entSorter) Swap(i, j int)      { e.s[i], e.s[j] = e.s[j], e.s[i] }
func (e *entSorter) Less(i, j int) bool { return e.s[i].S.Less(e.s[j].S) }

// LevelKind tells FinishLevel how to attribute the workers' CsgCmpPairs
// counters, so emissions and plan builds each count exactly once even
// in the two-phase (collect, then price) solver modes.
type LevelKind int

const (
	// LevelBuilt: the workers emitted and priced pairs in place
	// (DPsize/DPsub). Counts toward the run total and WorkerPairs.
	LevelBuilt LevelKind = iota
	// LevelCollected: the workers only recorded pairs for deferred
	// pricing (parallel DPccp's enumeration phase). Counts toward the
	// run total; WorkerPairs waits for the pricing phase.
	LevelCollected
	// LevelPriced: the workers built plans for pairs already counted at
	// collection time (PriceLevels). Counts toward WorkerPairs only.
	LevelPriced
)

// FinishLevel is the level barrier: it folds every worker's private
// entries into the main table and arena and accumulates the workers'
// counters into the main Stats. Duplicate relation sets (the same S
// reached by pairs that landed on different workers) are resolved by
// cost, then by the order-independent tie-break, so the merged winner
// does not depend on how candidates were partitioned. Entries are
// installed in ascending relation-set order, which makes the main
// engine's slot layout — and ForEach order — independent of scheduling.
//
// For LevelBuilt it returns the relation sets added this level, sorted
// ascending (DPsize/DPsub drive the next level off them; the slice is
// retained by the caller, so it cannot be pooled). The collect/price
// kinds return nil — their callers never consume the sets, and skipping
// the slice keeps the deferred-pricing barriers allocation-free.
func (p *Par) FinishLevel(kind LevelKind) []bitset.Set {
	m := p.Main
	ents := p.ents[:0]
	for i, w := range p.Workers() {
		w.table.ForEach(func(S bitset.Set, h int32) {
			ents = append(ents, mergeEnt{S: S, w: w, h: h - w.base})
		})
		st := &w.Stats
		if kind != LevelPriced {
			m.Stats.CsgCmpPairs += st.CsgCmpPairs
		}
		if kind != LevelCollected {
			m.Stats.WorkerPairs[i] += st.CsgCmpPairs
		}
		m.Stats.CostedPlans += st.CostedPlans
		m.Stats.FilterReject += st.FilterReject
		m.Stats.InvalidReject += st.InvalidReject
		m.Stats.AmbiguousOps += st.AmbiguousOps
		*st = Stats{}
	}
	p.ents = ents // keep grown storage for the next level
	p.sorter.s = ents
	sort.Sort(&p.sorter)

	var newSets []bitset.Set
	if kind == LevelBuilt {
		newSets = make([]bitset.Set, 0, len(ents))
	}
	for i := 0; i < len(ents); {
		j := i + 1
		best := ents[i]
		bn := &best.w.nodes[best.h]
		for ; j < len(ents) && ents[j].S.Equal(best.S); j++ {
			cand := ents[j]
			cn := &cand.w.nodes[cand.h]
			if cn.cost < bn.cost ||
				(cn.cost == bn.cost && m.tieBeats(cn.left, cn.right, bn.left, bn.right)) {
				best, bn = cand, cn
			}
		}
		n := *bn
		if n.edgeCnt > 0 {
			off := int32(len(m.edges))
			m.edges = append(m.edges, best.w.edges[n.edgeOff:n.edgeOff+n.edgeCnt]...)
			n.edgeOff = off
		}
		h := int32(len(m.nodes))
		m.nodes = append(m.nodes, n)
		m.table.Put(best.S, h)
		if kind == LevelBuilt {
			newSets = append(newSets, best.S)
		}
		i = j
	}

	if p.sh.aborted.Load() && m.abortErr == nil {
		m.abortErr = p.sh.cause()
	}
	return newSets
}

// Aborted returns the run-wide abort cause, if any worker tripped a
// limit or observed cancellation, without waiting for a barrier.
func (p *Par) Aborted() error {
	if p.sh.aborted.Load() {
		return p.sh.cause()
	}
	return p.Main.abortErr
}
