// Package memo is the shared enumeration engine behind every join
// enumeration algorithm in this repository (DPhyp, DPsize, DPsub, DPccp,
// TopDown, and the GOO fallback).
//
// The paper's central claim (Moerkotte & Neumann, SIGMOD 2008) is that
// join enumeration speed is decided by how cheaply csg-cmp-pairs are
// generated and memoized. This package owns the memoization half of that
// equation so the solvers can be pure enumerators:
//
//   - an open-addressing hash Table specialized for bitset.Set (uint64)
//     keys — the DP table mapping relation sets to plans — replacing the
//     generic map[bitset.Set]*plan.Node each solver used to carry;
//   - a flat plan-node arena addressed by indices, not pointers: during
//     enumeration no plan nodes are heap-allocated at all, table entries
//     are overwritten in place when a cheaper plan is found, and only the
//     winning tree is materialized into *plan.Node form by Final;
//   - centralized budget accounting (csg-cmp-pairs and costed plans),
//     context-cancellation polling (Step), cost-based pruning (Improve
//     keeps an entry only when it beats the incumbent), and the counting
//     and observation hooks (Stats, OnEmit);
//   - sync.Pool-backed reuse (Pool): a long-lived Planner recycles
//     engines across runs, so steady traffic re-enumerates into already-
//     allocated tables and arenas.
//
// The engine is deliberately ignorant of hypergraphs and cost models.
// The semantic half of plan construction — operator recovery, dependency
// constraints, conflict filters, selectivity and cardinality estimation,
// costing — lives in a Backend (internal/dp.Builder), which EmitPair
// calls for every admitted csg-cmp-pair. Solvers talk to the engine
// through EmitBase/EmitPair plus the Contains/Step/Aborted tests their
// enumeration orders need.
package memo

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/plan"
)

// ErrBudgetExhausted reports that an enumeration stopped because it
// reached its Limits before connecting the full graph. Callers that can
// tolerate suboptimal plans should fall back to a heuristic (GOO) when
// they see this error; the Planner layer does so automatically.
var ErrBudgetExhausted = errors.New("memo: enumeration budget exhausted")

// Limits bounds one enumeration run. The zero value imposes no bounds.
//
// Ctx is polled periodically (every pollInterval units of enumeration
// work) so that cancellation interrupts even the O(3^n) inner loops of
// DPsub within microseconds. The two Max fields cap the paper's two
// effort yardsticks: csg-cmp-pairs emitted and candidate plans priced.
type Limits struct {
	Ctx            context.Context
	MaxCsgCmpPairs int // 0 = unlimited
	MaxCostedPlans int // 0 = unlimited
}

// pollInterval is the number of Step calls between context polls.
// Polling a context costs an atomic load plus a channel check; amortizing
// it keeps the per-iteration overhead of the enumeration loops below a
// nanosecond while still reacting to cancellation promptly.
const pollInterval = 1024

// Stats counts the work an enumeration performed. The number of
// csg-cmp-pairs is the paper's yardstick: "the minimal number of cost
// function calls of any dynamic programming algorithm is exactly the
// number of csg-cmp-pairs" (§2.2).
type Stats struct {
	CsgCmpPairs   int // EmitPair invocations (unordered pairs)
	CostedPlans   int // plans actually priced (2x for commutative ops)
	FilterReject  int // plans rejected by the generate-and-test filter
	InvalidReject int // plans rejected by dependency constraints
	AmbiguousOps  int // pairs connected by more than one non-inner edge
	TableEntries  int // number of connected subgraphs with a plan

	// Parallel-enumeration accounting, filled by the Par orchestration.
	// Workers is the worker count the run enumerated with (0 or 1 =
	// serial engine); WorkerPairs counts the csg-cmp-pairs each worker
	// actually built plans for, so skew across workers is observable.
	Workers     int
	WorkerPairs []int

	// Memo-engine accounting, filled by Final.
	MemoCapacity int  // open-addressing slots at the end of the run
	MemoGrows    int  // table rehashes during the run
	ArenaNodes   int  // arena slots used (≈ TableEntries; leaves included)
	ArenaReused  bool // the run started on recycled table/arena storage

	// Large-query tier accounting, filled by the iterative-DP driver
	// (internal/iterdp). Subproblems counts the exactly-solved
	// compressed subproblems (the final enumeration included); Rounds
	// counts the compression rounds the graph went through. Both are
	// zero for runs the exact solvers handled directly.
	Subproblems int
	Rounds      int

	// Session-level accounting, filled by the Planner layer.
	BudgetExhausted bool // exact enumeration stopped at its Limits
	FallbackGreedy  bool // a GOO plan was substituted after the budget trip
	CacheHit        bool // served from the planner's fingerprint cache

	// Adaptive-routing accounting, filled by the Planner when the
	// SolverAuto mode picked the algorithm. RoutedAlgorithm names the
	// solver the topology router selected — it stays put even when a
	// budget trip later downgraded the run to greedy (FallbackGreedy
	// then reports the downgrade alongside it).
	AutoRouted      bool   // the algorithm was chosen by SolverAuto
	Shape           string // topology class the router saw (e.g. "star")
	RoutedAlgorithm string // solver the router picked (e.g. "dphyp")

	// Planning-time SLO accounting, filled by the Planner on calls that
	// carried a WithPlanBudget deadline. The fields are per-request (set
	// after the cache, like the routing fields above), so cached entries
	// never leak one caller's budget into another's stats. SLORung is
	// the degradation ladder position of the algorithm that produced the
	// plan: 0 = exact enumeration, 1 = the iterative-DP tier, 2 = greedy.
	// SLODegraded reports that budget routing picked a lower rung than
	// topology routing alone would have; SLOMet that the call's wall
	// time actually fit inside PlanBudget.
	PlanBudget    time.Duration // the call's planning-time budget (0 = none)
	PredictedCost time.Duration // router's wall-time prediction for the chosen rung
	SLORung       int           // ladder rung that planned: 0 exact, 1 iterdp, 2 greedy
	SLODegraded   bool          // budget routing descended below the topology route
	SLOMet        bool          // wall time ≤ PlanBudget

	// Trace is the explain trace of this planning call, non-nil only
	// when the caller requested one (explain=1 or sampling). It is
	// per-request state: the plan cache strips it before storing stats,
	// so a cached Stats never carries another request's spans.
	Trace *obs.Trace
}

// Backend builds plans for emitted csg-cmp-pairs. It is the semantic
// half of the engine: internal/dp.Builder implements it with the §3.5
// plan-construction logic (operator recovery, dependency constraints,
// filters, costing) and stores candidates back through Improve.
type Backend interface {
	// BuildPair prices the csg-cmp-pair (S1, S2) and stores improvements.
	// Bookkeeping (pair budget, Stats.CsgCmpPairs, OnEmit) has already
	// happened in EmitPair by the time BuildPair runs.
	BuildPair(S1, S2 bitset.Set)
	// Release drops per-run references (graph, cost model, filter) so a
	// pooled engine does not pin them; the backend itself stays attached
	// to the engine and is revived by the next run.
	Release()
}

// node is one arena slot: a plan node with children addressed by arena
// index instead of pointer. Leaves have left == right == -1 and carry
// their base relation in rel; inner nodes reference an edge span in the
// engine's flat edge store.
type node struct {
	rels             bitset.Set
	card, cost       float64
	left, right      int32
	edgeOff, edgeCnt int32
	rel              int32
	op               algebra.Op
	phys             algebra.PhysOp
}

// Engine is the shared open-addressing memo: DP table, plan-node arena,
// budget and cancellation enforcement, and counting hooks. It is not
// safe for concurrent use; the Planner layer gives each in-flight plan
// its own pooled engine. Parallel enumeration (see Par) runs on worker
// views — private Engines layered over a read-only parent — so the
// engine itself never needs locks.
type Engine struct {
	// Stats counts the run's work. The backend increments the reject
	// counters directly; everything else is maintained by the engine.
	Stats Stats

	// OnEmit, if set, observes every csg-cmp-pair in emission order.
	OnEmit func(S1, S2 bitset.Set)

	backend Backend

	table   Table
	scratch Table
	nodes   []node
	edges   []int32

	limits   Limits
	trace    *obs.Trace // explain trace, nil for untraced runs
	steps    int
	abortErr error
	warm     bool // storage was recycled from a previous run

	// Worker-view state (see Par). On a worker view, parent is the main
	// engine whose merged levels the view reads through, base offsets
	// this view's arena handles past the parent's, and shared carries
	// the run-wide budget and abort state. All three are nil/zero on a
	// serial engine, which keeps the serial hot paths branch-predictable.
	parent *Engine
	base   int32
	shared *parShared

	// par is the reusable parallel orchestration of a main engine: the
	// worker views (and their pooled backends) survive pool round-trips
	// alongside the engine.
	par *Par
}

// NewEngine returns an empty engine. Most callers obtain engines through
// a Pool instead, then attach a backend and Reset per run.
func NewEngine() *Engine { return &Engine{} }

// Reset prepares the engine for a run over n relations: the table is
// cleared (keeping its storage when possible), the arena truncated, and
// stats, limits, and hooks zeroed. Stats.ArenaReused reports whether the
// run actually starts on recycled storage: the engine came back from a
// pool and the table kept its arrays (a pooled engine whose table had to
// be reallocated for a larger query does not count as a reuse).
func (e *Engine) Reset(n int) {
	hint := 64
	if n > 0 {
		// A connected query of n relations has between n + (n-1) memo
		// entries (chain) and 2^n - 1 (clique). Size for the dense end so
		// cliques never rehash mid-run — sparse shapes pay a slightly
		// larger memclr, dense ones avoid O(entries) rehash copies — and
		// cap the pre-size at 4096 entries, beyond which growth takes
		// over (doubling from a 4096-entry table amortizes fine).
		if n < 12 {
			hint = 1 << uint(n)
		} else {
			hint = 1 << 12
		}
	}
	kept := e.table.Reset(hint)
	// Arena storage follows the same shrink policy as the table: one
	// huge run must not pin its node and edge arrays on a pooled engine
	// forever.
	if cap(e.nodes) > hint*shrinkFactor {
		e.nodes = nil
	} else {
		e.nodes = e.nodes[:0]
	}
	if cap(e.edges) > hint*shrinkFactor {
		e.edges = nil
	} else {
		e.edges = e.edges[:0]
	}
	e.Stats = Stats{ArenaReused: e.warm && kept}
	e.OnEmit = nil
	e.limits = Limits{}
	e.trace = nil
	e.steps = 0
	e.abortErr = nil
}

// SetBackend attaches the plan-construction backend.
func (e *Engine) SetBackend(b Backend) { e.backend = b }

// Backend returns the attached backend (nil on a fresh engine). Pools
// use it to revive the backend that traveled with a recycled engine.
func (e *Engine) Backend() Backend { return e.backend }

// SetLimits installs cancellation and budget bounds for the run.
func (e *Engine) SetLimits(l Limits) { e.limits = l }

// SetTrace attaches the run's explain trace (nil for untraced runs —
// every trace hook is nil-safe, so the untraced hot path pays nothing).
// The engine only records phase boundaries it owns (the materialize
// step in Final); solvers and the planner record their own phases on
// the same trace.
func (e *Engine) SetTrace(t *obs.Trace) { e.trace = t }

// Aborted returns the cancellation or budget error once a limit has
// tripped, and nil while the run may proceed. Solvers use it to unwind
// recursive enumeration cheaply.
func (e *Engine) Aborted() error { return e.abortErr }

// Step records one unit of enumeration work (a loop iteration or
// recursive call) and reports whether the run may continue. The context
// is polled every pollInterval steps; budget limits are enforced in
// EmitPair and ChargePlan where the counted events happen. On a worker
// view the poll additionally observes the run-wide abort flag, so a
// budget trip or cancellation seen by any worker stops the others
// within pollInterval steps.
//
//dp:hotpath
func (e *Engine) Step() bool {
	if e.abortErr != nil {
		return false
	}
	if e.limits.Ctx == nil && e.shared == nil {
		return true
	}
	e.steps++
	if e.steps%pollInterval != 0 {
		return true
	}
	if sh := e.shared; sh != nil && sh.aborted.Load() {
		e.abortErr = sh.cause()
		return false
	}
	if ctx := e.limits.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			e.abort(err)
			return false
		}
	}
	// Fault injection rides the amortized poll, so an armed delay slows
	// the enumeration at pollInterval granularity — real, cancellable
	// work, which is what the chaos suite saturates servers with. The
	// Armed() gate keeps the disarmed cost to one atomic load per poll.
	if chaos.Armed() {
		if err := chaos.Inject(chaos.SiteMemoStep); err != nil {
			e.abort(err)
			return false
		}
	}
	return true
}

// abort records err as this engine's abort cause and, on a worker view,
// publishes it run-wide so sibling workers stop at their next poll.
//
//dp:coldpath abort runs once per enumeration, after which every Step returns false
func (e *Engine) abort(err error) {
	e.abortErr = err
	if e.shared != nil {
		e.shared.abort(err)
	}
}

// EmitBase seeds the memo with the access plan for base relation rel
// ("dpTable[{v}] = plan for v").
//
//dp:hotpath
func (e *Engine) EmitBase(rel int, card float64) {
	S := bitset.Single(rel)
	idx := int32(len(e.nodes))
	e.nodes = append(e.nodes, node{rels: S, card: card, left: -1, right: -1, rel: int32(rel)}) //nolint:hotpathalloc // arena growth is amortized; pooled runs reuse capacity
	e.table.Put(S, idx)
}

// EmitPair admits the csg-cmp-pair (S1, S2): it enforces the pair
// budget, counts the emission, fires the observation hook, and hands the
// pair to the backend for plan construction. Solvers must only emit
// pairs whose sides already have memo entries (subsets before supersets)
// and which are connected by at least one edge.
//
//dp:hotpath
func (e *Engine) EmitPair(S1, S2 bitset.Set) {
	if e.abortErr != nil {
		return
	}
	if !e.chargePair() {
		return
	}
	e.Stats.CsgCmpPairs++
	if e.OnEmit != nil {
		e.OnEmit(S1, S2)
	}
	e.backend.BuildPair(S1, S2)
}

// chargePair enforces the csg-cmp-pair budget for one emission. Worker
// views charge a run-wide atomic counter (so the budget bounds the sum
// across workers, matching the serial semantics); serial engines keep
// the counter in Stats with no atomics on the hot path.
func (e *Engine) chargePair() bool {
	max := e.limits.MaxCsgCmpPairs
	if sh := e.shared; sh != nil {
		if sh.aborted.Load() {
			e.abortErr = sh.cause()
			return false
		}
		if max > 0 {
			if n := sh.pairs.Add(1); n > int64(max) {
				e.abort(pairBudgetErr(int(n), max))
				return false
			}
		}
		return true
	}
	if max > 0 && e.Stats.CsgCmpPairs >= max {
		e.abortErr = pairBudgetErr(e.Stats.CsgCmpPairs, max)
		return false
	}
	return true
}

// pairBudgetErr builds the csg-cmp-pair budget-trip error. Split out of
// chargePair so the fmt machinery stays off the emission hot path.
//
//dp:coldpath runs at most once per enumeration, when the pair budget trips
func pairBudgetErr(n, max int) error {
	return fmt.Errorf("%w: %d csg-cmp-pairs emitted (limit %d)", ErrBudgetExhausted, n, max)
}

// EmitDeferred admits the csg-cmp-pair (S1, S2) for later pricing: it
// enforces the pair budget and counts the emission exactly like
// EmitPair, but does not build a plan. The parallel DPhyp/DPccp paths
// use it while collecting pairs into level buckets; BuildDeferred
// prices them afterwards. It reports whether the run may continue.
//
//dp:hotpath
func (e *Engine) EmitDeferred(S1, S2 bitset.Set) bool {
	if e.abortErr != nil {
		return false
	}
	if !e.chargePair() {
		return false
	}
	e.Stats.CsgCmpPairs++
	return true
}

// BuildDeferred prices a pair previously admitted with EmitDeferred on
// this (worker) view. The emission was already counted, so only the
// per-worker built-pairs counter moves; merge accounting knows not to
// re-add it to the run total.
//
//dp:hotpath
func (e *Engine) BuildDeferred(S1, S2 bitset.Set) {
	if e.abortErr != nil {
		return
	}
	e.Stats.CsgCmpPairs++
	e.backend.BuildPair(S1, S2)
}

// ChargePlan accounts for one candidate plan about to be priced and
// reports whether the costed-plans budget allows it. On a trip the run
// is aborted with ErrBudgetExhausted. Worker views charge the shared
// run-wide counter so the budget bounds the sum across workers.
//
//dp:hotpath
func (e *Engine) ChargePlan() bool {
	max := e.limits.MaxCostedPlans
	if sh := e.shared; sh != nil {
		if max > 0 {
			if n := sh.plans.Add(1); n > int64(max) {
				e.abort(planBudgetErr(int(n), max))
				return false
			}
		}
		e.Stats.CostedPlans++
		return true
	}
	if max > 0 && e.Stats.CostedPlans >= max {
		e.abortErr = planBudgetErr(e.Stats.CostedPlans, max)
		return false
	}
	e.Stats.CostedPlans++
	return true
}

// planBudgetErr builds the costed-plan budget-trip error off the hot
// path, like pairBudgetErr.
//
//dp:coldpath runs at most once per enumeration, when the plan budget trips
func planBudgetErr(n, max int) error {
	return fmt.Errorf("%w: %d plans costed (limit %d)", ErrBudgetExhausted, n, max)
}

// Contains reports whether S has a memo entry. This is the DP-table
// connectivity test of the bottom-up enumerators ("this exploits the
// fact that DP strategies enumerate subsets before supersets"). Worker
// views fall through to the parent's merged levels on a miss.
//
//dp:hotpath
func (e *Engine) Contains(S bitset.Set) bool {
	if _, ok := e.table.Get(S); ok {
		return true
	}
	if e.parent != nil {
		_, ok := e.parent.table.Get(S)
		return ok
	}
	return false
}

// Lookup returns the arena handle of the best plan for S. Worker views
// check their private level first (same-level incumbents they own),
// then the parent's merged levels, which are read-only for the
// duration of the level.
//
//dp:hotpath
func (e *Engine) Lookup(S bitset.Set) (int32, bool) {
	if h, ok := e.table.Get(S); ok {
		return h, true
	}
	if e.parent != nil {
		return e.parent.table.Get(S)
	}
	return 0, false
}

// nodeAt resolves an arena handle against this view: handles below the
// view's base live in the parent's (merged, frozen) arena, the rest in
// the view's private one. On a serial engine base is 0 and every handle
// is local.
func (e *Engine) nodeAt(h int32) *node {
	if e.parent != nil && h < e.base {
		return &e.parent.nodes[h]
	}
	return &e.nodes[h-e.base]
}

// PlanInfo returns the estimated cardinality and cost of the plan at
// arena handle h.
//
//dp:hotpath
func (e *Engine) PlanInfo(h int32) (card, cost float64) {
	n := e.nodeAt(h)
	return n.card, n.cost
}

// BestCost returns the cost of the incumbent plan for S, if any. The
// engine applies the incumbent comparison itself inside Improve; this
// accessor exists for tests and tooling that inspect pruning decisions.
func (e *Engine) BestCost(S bitset.Set) (float64, bool) {
	h, ok := e.Lookup(S)
	if !ok {
		return 0, false
	}
	return e.nodeAt(h).cost, true
}

// Improve stores the plan "left op right" for S if it beats the
// incumbent (cost-based pruning). Children are given by arena handle;
// edges lists the hypergraph edges applied at the node and is copied
// into the engine's flat edge store, so callers may reuse their slice.
// An improved entry overwrites its arena slot in place — safe because
// every enumeration order finalizes subsets before supersets, so no
// parent references the slot yet.
//
// Ties are broken order-independently: among equal-cost candidates the
// plan with the numerically lowest (left, right) relation-set pair
// wins, never the one that happened to arrive first. This makes the
// winning plan a pure function of the candidate *set*, so parallel
// enumerations — which partition candidates across workers and merge
// per-worker bests — produce byte-identical plans to the serial engine
// at any worker count.
//
//dp:hotpath
func (e *Engine) Improve(S bitset.Set, left, right int32, op algebra.Op, phys algebra.PhysOp, card, cost float64, edges []int) {
	if h, ok := e.table.Get(S); ok {
		n := e.nodeAt(h)
		if cost > n.cost {
			return
		}
		if cost == n.cost && !e.tieBeats(left, right, n.left, n.right) {
			return
		}
		off, cnt := e.storeEdges(edges, n.edgeOff, n.edgeCnt)
		*n = node{rels: S, card: card, cost: cost, left: left, right: right,
			edgeOff: off, edgeCnt: cnt, rel: -1, op: op, phys: phys}
		return
	}
	off, cnt := e.storeEdges(edges, 0, 0)
	h := e.base + int32(len(e.nodes))
	//nolint:hotpathalloc // arena growth is amortized; pooled runs reuse capacity
	e.nodes = append(e.nodes, node{rels: S, card: card, cost: cost, left: left, right: right,
		edgeOff: off, edgeCnt: cnt, rel: -1, op: op, phys: phys})
	e.table.Put(S, h)
}

// tieBeats reports whether the candidate split (newL, newR) wins an
// equal-cost tie against the incumbent split (oldL, oldR): the
// lexicographically smaller (left rels, right rels) pair is canonical.
func (e *Engine) tieBeats(newL, newR, oldL, oldR int32) bool {
	nl, ol := e.nodeAt(newL).rels, e.nodeAt(oldL).rels
	if !nl.Equal(ol) {
		return nl.Less(ol)
	}
	return e.nodeAt(newR).rels.Less(e.nodeAt(oldR).rels)
}

// storeEdges writes edges into the flat store, reusing the span
// (oldOff, oldCnt) of a node being overwritten when it is large enough.
func (e *Engine) storeEdges(edges []int, oldOff, oldCnt int32) (off, cnt int32) {
	if len(edges) == 0 {
		return 0, 0
	}
	cnt = int32(len(edges))
	if cnt <= oldCnt {
		off = oldOff
		for i, idx := range edges {
			e.edges[off+int32(i)] = int32(idx)
		}
		return off, cnt
	}
	off = int32(len(e.edges))
	for _, idx := range edges {
		e.edges = append(e.edges, int32(idx)) //nolint:hotpathalloc // edge-store growth is amortized; pooled runs reuse capacity
	}
	return off, cnt
}

// Scratch returns the engine's auxiliary table, cleared and sized for
// roughly hint entries. TopDown uses it as its failure memo (sets whose
// partitions are fully explored), so pooled engines recycle that
// storage along with the main table. One scratch user per run.
func (e *Engine) Scratch(hint int) *Table {
	e.scratch.Reset(hint)
	return &e.scratch
}

// ForEach calls f for every memoed relation set, in deterministic slot
// order. DPsize uses it to collect the connected subgraphs of each size.
func (e *Engine) ForEach(f func(S bitset.Set)) {
	e.table.ForEach(func(k bitset.Set, _ int32) { f(k) })
}

// Entries returns the current number of memo entries.
func (e *Engine) Entries() int { return e.table.Len() }

// Final returns the materialized plan covering all (the full relation
// set), or the abort error if a limit tripped, or an error when the
// enumeration could not connect the graph. It also snapshots the memo
// occupancy counters into Stats.
func (e *Engine) Final(all bitset.Set) (*plan.Node, error) {
	e.Stats.TableEntries = e.table.Len()
	e.Stats.MemoCapacity = e.table.Cap()
	e.Stats.MemoGrows = e.table.Grows()
	e.Stats.ArenaNodes = len(e.nodes)
	if e.abortErr != nil {
		return nil, e.abortErr
	}
	h, ok := e.table.Get(all)
	if !ok {
		return nil, fmt.Errorf("memo: no plan for %v: hypergraph not connected or all plans rejected", all)
	}
	span := e.trace.Start(obs.PhaseMaterialize)
	p := e.materialize(h)
	e.trace.Annotate(span, 0, e.Stats.TableEntries, 0, 0)
	e.trace.End(span)
	return p, nil
}

// Plan materializes the memoed plan for S, or nil. Intended for tests
// and tooling; Final is the production exit.
func (e *Engine) Plan(S bitset.Set) *plan.Node {
	h, ok := e.table.Get(S)
	if !ok {
		return nil
	}
	return e.materialize(h)
}

// materialize converts the arena subtree rooted at h into the pointer-
// based plan.Node form callers consume. The arena itself stays intact
// (and pooled); the returned tree is freshly allocated and safe to keep.
func (e *Engine) materialize(h int32) *plan.Node {
	n := e.nodeAt(h)
	if n.left < 0 {
		return plan.Leaf(int(n.rel), n.card)
	}
	l := e.materialize(n.left)
	r := e.materialize(n.right)
	var edges []int
	if n.edgeCnt > 0 {
		edges = make([]int, n.edgeCnt)
		for i := range edges {
			edges[i] = int(e.edges[n.edgeOff+int32(i)])
		}
	}
	p := plan.Join(n.op, l, r, edges, n.card, n.cost)
	p.Phys = n.phys
	return p
}
