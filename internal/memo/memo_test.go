package memo

import (
	"context"
	"errors"
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
)

// lcg is a tiny deterministic pseudo-random source so table tests are
// reproducible without seeding math/rand.
type lcg uint64

// fromBits builds a Set from a word-0 bit pattern, standing in for the
// raw integer conversions the packed-word representation used to allow.
func fromBits(raw uint64) bitset.Set {
	var s bitset.Set
	for e := 0; e < 64; e++ {
		if raw&(1<<uint(e)) != 0 {
			s = s.Add(e)
		}
	}
	return s
}

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func TestTableBasic(t *testing.T) {
	var tb Table
	tb.Reset(0)
	if tb.Len() != 0 {
		t.Fatalf("fresh table Len = %d", tb.Len())
	}
	if _, ok := tb.Get(bitset.New(3)); ok {
		t.Fatal("Get on empty table must miss")
	}
	tb.Put(bitset.New(3), 7)
	tb.Put(bitset.New(1, 2), 9)
	if v, ok := tb.Get(bitset.New(3)); !ok || v != 7 {
		t.Fatalf("Get = %d,%t want 7,true", v, ok)
	}
	tb.Put(bitset.New(3), 8) // overwrite must not grow Len
	if v, _ := tb.Get(bitset.New(3)); v != 8 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d want 2", tb.Len())
	}
}

func TestTableGetEmptyMisses(t *testing.T) {
	var tb Table
	tb.Reset(0)
	tb.Put(bitset.New(1), 5)
	// The empty set is the free-slot sentinel; looking it up must miss
	// rather than match a free slot and return its stale value.
	if v, ok := tb.Get(bitset.Empty); ok {
		t.Fatalf("Get(Empty) = %d,true — matched the free-slot sentinel", v)
	}
}

func TestTablePutEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put(Empty) must panic: the empty set is the free-slot sentinel")
		}
	}()
	var tb Table
	tb.Reset(0)
	tb.Put(bitset.Empty, 1)
}

// TestTableGrowthCollisionHeavy drives the table through several rehashes
// with keys chosen to hash into a single slot of the initial table, the
// worst case for linear probing: one long cluster that must stay intact
// across growth.
func TestTableGrowthCollisionHeavy(t *testing.T) {
	var tb Table
	tb.Reset(0)
	if tb.Cap() != minSlots {
		t.Fatalf("initial capacity = %d want %d", tb.Cap(), minSlots)
	}
	shift := uint(64 - 6) // 64 slots
	var keys []bitset.Set
	for k := uint64(1); len(keys) < 300; k++ {
		if fromBits(k).Hash()>>shift == 0 { // all collide in slot 0 initially
			keys = append(keys, fromBits(k))
		}
	}
	for i, k := range keys {
		tb.Put(k, int32(i))
	}
	if tb.Grows() == 0 {
		t.Fatal("300 colliding inserts into 64 slots must rehash")
	}
	if tb.Len() != len(keys) {
		t.Fatalf("Len = %d want %d", tb.Len(), len(keys))
	}
	for i, k := range keys {
		if v, ok := tb.Get(k); !ok || v != int32(i) {
			t.Fatalf("key %v lost across rehash: got %d,%t", k, v, ok)
		}
	}
	// Absent keys must still miss (the probe chains must terminate).
	misses := 0
	for k := uint64(1); misses < 100; k++ {
		s := fromBits(k * 2654435761)
		if s.IsEmpty() {
			continue
		}
		found := false
		for _, have := range keys {
			if have.Equal(s) {
				found = true
				break
			}
		}
		if !found {
			misses++
			if _, ok := tb.Get(s); ok {
				t.Fatalf("phantom hit for %v", s)
			}
		}
	}
}

// TestTableMatchesMap cross-checks a large random workload against a Go
// map, including overwrites.
func TestTableMatchesMap(t *testing.T) {
	var tb Table
	tb.Reset(16)
	ref := make(map[string]int32)
	refKey := make(map[string]bitset.Set)
	r := lcg(42)
	for i := 0; i < 50_000; i++ {
		k := fromBits(r.next())
		if k.IsEmpty() {
			continue
		}
		v := int32(r.next() >> 33)
		tb.Put(k, v)
		ref[k.Key()] = v
		refKey[k.Key()] = k
	}
	if tb.Len() != len(ref) {
		t.Fatalf("Len = %d want %d", tb.Len(), len(ref))
	}
	for key, v := range ref {
		if got, ok := tb.Get(refKey[key]); !ok || got != v {
			t.Fatalf("Get(%v) = %d,%t want %d,true", refKey[key], got, ok, v)
		}
	}
	seen := 0
	tb.ForEach(func(k bitset.Set, v int32) {
		seen++
		if ref[k.Key()] != v {
			t.Fatalf("ForEach yielded %v=%d, want %d", k, v, ref[k.Key()])
		}
	})
	if seen != len(ref) {
		t.Fatalf("ForEach visited %d entries, want %d", seen, len(ref))
	}
}

func TestTableResetKeepsStorage(t *testing.T) {
	var tb Table
	tb.Reset(400)
	capBefore := tb.Cap()
	tb.Put(bitset.New(1), 1)
	// A moderately smaller hint (within shrinkFactor) must keep and
	// clear the existing arrays.
	if kept := tb.Reset(200); !kept {
		t.Fatal("Reset within the shrink bound must keep storage")
	}
	if tb.Cap() != capBefore {
		t.Fatalf("Reset reallocated: cap %d -> %d", capBefore, tb.Cap())
	}
	if tb.Len() != 0 {
		t.Fatalf("Reset did not clear: Len = %d", tb.Len())
	}
	if _, ok := tb.Get(bitset.New(1)); ok {
		t.Fatal("entry survived Reset")
	}
}

func TestTableResetShrinksOversized(t *testing.T) {
	var tb Table
	tb.Reset(100_000)
	huge := tb.Cap()
	// A tiny hint after a huge run must reallocate small: pooled
	// engines must not pin one giant query's storage forever.
	if kept := tb.Reset(4); kept {
		t.Fatal("Reset far below the shrink bound must reallocate")
	}
	if tb.Cap() >= huge {
		t.Fatalf("oversized table not shrunk: cap %d -> %d", huge, tb.Cap())
	}
	if tb.Cap() != minSlots {
		t.Fatalf("shrunk capacity = %d, want %d", tb.Cap(), minSlots)
	}
}

// recordBackend is a minimal Backend that records emitted pairs.
type recordBackend struct {
	pairs [][2]bitset.Set
}

func (b *recordBackend) BuildPair(S1, S2 bitset.Set) {
	b.pairs = append(b.pairs, [2]bitset.Set{S1, S2})
}
func (b *recordBackend) Release() {}

func TestEngineArenaImprove(t *testing.T) {
	e := NewEngine()
	e.Reset(2)
	e.EmitBase(0, 100)
	e.EmitBase(1, 50)
	S := bitset.New(0, 1)
	l, _ := e.Lookup(bitset.New(0))
	r, _ := e.Lookup(bitset.New(1))

	e.Improve(S, l, r, algebra.Join, algebra.PhysNone, 500, 500, []int{0})
	nodes := len(e.nodes)
	// A worse candidate must be pruned...
	e.Improve(S, l, r, algebra.Join, algebra.PhysNone, 500, 700, []int{1})
	if c, _ := e.BestCost(S); c != 500 {
		t.Fatalf("worse candidate overwrote: cost %g", c)
	}
	// ...and a better one must overwrite in place, not append.
	e.Improve(S, r, l, algebra.Join, algebra.PhysNone, 500, 300, []int{2})
	if len(e.nodes) != nodes {
		t.Fatalf("improvement appended a new arena node: %d -> %d", nodes, len(e.nodes))
	}
	if c, _ := e.BestCost(S); c != 300 {
		t.Fatalf("improvement lost: cost %g", c)
	}
	p := e.Plan(S)
	if p == nil || p.Cost != 300 || len(p.Edges) != 1 || p.Edges[0] != 2 {
		t.Fatalf("materialized plan wrong: %+v", p)
	}
	if p.Left.Rel != 1 || p.Right.Rel != 0 {
		t.Fatalf("improved orientation lost: %s", p.Compact())
	}
	if e.Entries() != 3 {
		t.Fatalf("Entries = %d want 3", e.Entries())
	}
}

func TestEnginePairBudget(t *testing.T) {
	e := NewEngine()
	e.Reset(2)
	b := &recordBackend{}
	e.SetBackend(b)
	e.SetLimits(Limits{MaxCsgCmpPairs: 2})
	for i := 0; i < 5; i++ {
		e.EmitPair(bitset.New(0), bitset.New(1))
	}
	if len(b.pairs) != 2 {
		t.Fatalf("backend saw %d pairs, want 2", len(b.pairs))
	}
	if e.Stats.CsgCmpPairs != 2 {
		t.Fatalf("CsgCmpPairs = %d want 2", e.Stats.CsgCmpPairs)
	}
	if !errors.Is(e.Aborted(), ErrBudgetExhausted) {
		t.Fatalf("Aborted = %v, want ErrBudgetExhausted", e.Aborted())
	}
	if _, err := e.Final(bitset.New(0, 1)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Final after trip = %v", err)
	}
}

func TestEngineCostedPlanBudget(t *testing.T) {
	e := NewEngine()
	e.Reset(2)
	e.SetLimits(Limits{MaxCostedPlans: 3})
	for i := 0; i < 3; i++ {
		if !e.ChargePlan() {
			t.Fatalf("charge %d rejected below the limit", i)
		}
	}
	if e.ChargePlan() {
		t.Fatal("charge above the limit admitted")
	}
	if !errors.Is(e.Aborted(), ErrBudgetExhausted) {
		t.Fatalf("Aborted = %v", e.Aborted())
	}
}

func TestEngineStepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := NewEngine()
	e.Reset(2)
	e.SetLimits(Limits{Ctx: ctx})
	cancel()
	alive := 0
	for i := 0; i < 4*pollInterval; i++ {
		if !e.Step() {
			break
		}
		alive++
	}
	if alive >= 4*pollInterval {
		t.Fatal("cancellation never observed")
	}
	if !errors.Is(e.Aborted(), context.Canceled) {
		t.Fatalf("Aborted = %v", e.Aborted())
	}
}

func TestPoolRecyclesStorage(t *testing.T) {
	pool := &Pool{}
	e := pool.Get()
	e.Reset(8)
	if e.Stats.ArenaReused {
		t.Fatal("fresh engine must not report ArenaReused")
	}
	e.EmitBase(0, 10)
	pool.Put(e)

	// sync.Pool may drop entries (it does so randomly under -race), so
	// retry a few times: at least one Get must come back warm.
	warm := false
	for i := 0; i < 32 && !warm; i++ {
		e2 := pool.Get()
		e2.Reset(8)
		warm = e2.Stats.ArenaReused
		if warm && e2.Entries() != 0 {
			t.Fatalf("recycled engine not cleared: %d entries", e2.Entries())
		}
		e2.EmitBase(0, 10)
		pool.Put(e2)
	}
	if !warm {
		t.Fatal("pool never recycled an engine in 32 round-trips")
	}

	// A nil pool must behave like no pool at all.
	var np *Pool
	e3 := np.Get()
	if e3 == nil {
		t.Fatal("nil pool Get returned nil engine")
	}
	np.Put(e3) // must not panic
}

func TestEngineFinalNoPlan(t *testing.T) {
	e := NewEngine()
	e.Reset(2)
	e.EmitBase(0, 10)
	e.EmitBase(1, 10)
	if _, err := e.Final(bitset.New(0, 1)); err == nil {
		t.Fatal("Final without a full plan must fail")
	}
	if e.Stats.TableEntries != 2 || e.Stats.ArenaNodes != 2 {
		t.Fatalf("occupancy stats wrong: %+v", e.Stats)
	}
	if e.Stats.MemoCapacity == 0 {
		t.Fatal("MemoCapacity not recorded")
	}
}
