package dpsize

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/hypergraph"
)

func chainGraph(n int) *hypergraph.Graph {
	g := hypergraph.New()
	g.AddRelations(n, "R", 100)
	for i := 0; i+1 < n; i++ {
		g.AddSimpleEdge(i, i+1, 0.1)
	}
	return g
}

func cycleGraph(n int) *hypergraph.Graph {
	g := chainGraph(n)
	g.AddSimpleEdge(n-1, 0, 0.1)
	return g
}

func starGraph(n int) *hypergraph.Graph {
	g := hypergraph.New()
	g.AddRelations(n, "R", 100)
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(0, i, 0.1)
	}
	return g
}

func randomHypergraph(rng *rand.Rand, n int) *hypergraph.Graph {
	g := hypergraph.New()
	for i := 0; i < n; i++ {
		g.AddRelation("R", float64(10+rng.Intn(1000)))
	}
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(rng.Intn(i), i, 0.05+rng.Float64()*0.5)
	}
	for k := 0; k < rng.Intn(n); k++ {
		var u, v bitset.Set
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				u = u.Add(i)
			case 1:
				v = v.Add(i)
			}
		}
		if !u.IsEmpty() && !v.IsEmpty() && u.Disjoint(v) {
			g.AddEdge(hypergraph.Edge{U: u, V: v, Sel: 0.05 + rng.Float64()*0.5})
		}
	}
	return g
}

// DPsize must emit exactly the csg-cmp-pairs (after normalization its
// emission set equals the oracle's, though in size order rather than
// DPhyp's traversal order).
func TestEmitsExactPairSet(t *testing.T) {
	for _, g := range []*hypergraph.Graph{
		chainGraph(6), cycleGraph(6), starGraph(6), hypergraph.PaperExampleGraph(),
	} {
		var got []counting.Pair
		_, _, err := Solve(g, Options{OnEmit: func(s1, s2 bitset.Set) {
			got = append(got, counting.Normalize(s1, s2))
		}})
		if err != nil {
			t.Fatal(err)
		}
		want := counting.CsgCmpPairs(g)
		seen := map[string]bool{}
		for _, p := range got {
			if seen[p.Key()] {
				t.Errorf("duplicate pair %v|%v", p.S1, p.S2)
			}
			seen[p.Key()] = true
		}
		if len(got) != len(want) {
			t.Errorf("emitted %d pairs, want %d", len(got), len(want))
		}
		for _, p := range want {
			if !seen[p.Key()] {
				t.Errorf("missing pair %v|%v", p.S1, p.S2)
			}
		}
	}
}

// Differential test: DPsize and DPhyp must agree on optimal cost for
// random hypergraphs (they search the same space).
func TestAgreesWithDPhyp(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		g := randomHypergraph(rng, 3+rng.Intn(6))
		p1, _, err1 := Solve(g, Options{})
		p2, _, err2 := core.Solve(g, core.Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: dpsize err=%v dphyp err=%v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if p1.Cost != p2.Cost {
			t.Errorf("trial %d: dpsize cost %g != dphyp %g", trial, p1.Cost, p2.Cost)
		}
	}
}

func TestOptimalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		g := randomHypergraph(rng, 3+rng.Intn(4))
		p, _, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, ok := counting.BruteForceCout(g)
		if !ok {
			t.Fatal("oracle disagrees about solvability")
		}
		if p.Cost > want*(1+1e-9) {
			t.Errorf("trial %d: cost %g > optimal %g", trial, p.Cost, want)
		}
	}
}

func TestDisconnectedFails(t *testing.T) {
	g := hypergraph.New()
	g.AddRelations(2, "R", 10)
	if _, _, err := Solve(g, Options{}); err == nil {
		t.Error("disconnected graph must fail")
	}
}

func TestEmptyFails(t *testing.T) {
	if _, _, err := Solve(hypergraph.New(), Options{}); err == nil {
		t.Error("empty graph must fail")
	}
}

func TestSingleRelation(t *testing.T) {
	g := hypergraph.New()
	g.AddRelation("only", 7)
	p, stats, err := Solve(g, Options{})
	if err != nil || !p.IsLeaf() {
		t.Fatalf("p=%v err=%v", p, err)
	}
	if stats.CsgCmpPairs != 0 {
		t.Error("no pairs expected")
	}
}

// DPsize does strictly more raw pair tests than DPhyp emits pairs; the
// paper's complexity point in one assertion.
func TestWastedWorkExceedsDPhyp(t *testing.T) {
	g := starGraph(8)
	_, sizeStats, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, hypStats, err := core.Solve(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sizeStats.CsgCmpPairs != hypStats.CsgCmpPairs {
		t.Errorf("both must emit the same pairs: %d vs %d",
			sizeStats.CsgCmpPairs, hypStats.CsgCmpPairs)
	}
}
