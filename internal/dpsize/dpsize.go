// Package dpsize implements the size-driven dynamic programming
// algorithm of Figure 1 of the paper — the Selinger-style enumerator
// "which still forms the core of state-of-the-art commercial query
// optimizers like the one of DB2" — extended to hypergraphs.
//
// DPsize generates plans in the order of increasing size: for every plan
// size s it pairs every table entry of size s1 with every entry of size
// s − s1 and applies two tests, marked (*) in the paper's pseudocode:
// disjointness and graph connectivity. As the paper's complexity
// analysis [17] shows, these tests fail far more often than they
// succeed, which is exactly the overhead the evaluation measures. To
// deal with hypergraphs, "the pseudocode does not have to be changed:
// only the second test has to be implemented in such a way that it is
// capable to deal with hyperedges" (§4.1) — here via
// hypergraph.ConnectsTo, which understands hypernodes and generalized
// edges.
//
// The solver is a pure enumerator: memoization, budgets, and plan
// construction route through the shared memo engine (internal/memo).
package dpsize

import (
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/plan"
)

// Options configures a DPsize run. It mirrors core.Options so that the
// baselines run under identical cost models, filters, and limits.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *memo.Pool
}

// Solve runs DPsize over g and returns the optimal bushy cross-product-
// free plan, enumeration statistics, and an error if no plan exists.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	defer opts.Pool.Put(e)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	n := g.NumRels()
	if n == 0 {
		return nil, e.Stats, errEmpty
	}
	b.Init()

	// bySize[s] lists the connected subgraphs of size s discovered so
	// far. Entries of size s are only created while processing plan size
	// s, so collecting after each round keeps the lists complete.
	bySize := make([][]bitset.Set, n+1)
	for i := 0; i < n; i++ {
		bySize[1] = append(bySize[1], bitset.Single(i))
	}

enumerate:
	for s := 2; s <= n; s++ { // "for ∀ 1 < s ≤ n ascending: size of plan"
		for s1 := 1; s1 < s; s1++ { // "size of left subplan"
			s2 := s - s1
			for _, S1 := range bySize[s1] {
				for _, S2 := range bySize[s2] {
					// The failing (*) tests dominate the run time, so the
					// cancellation poll sits in the innermost loop.
					if !e.Step() {
						break enumerate
					}
					if !S1.Disjoint(S2) { // (*) "if S1 ∩ S2 ≠ ∅ continue"
						continue
					}
					if !g.ConnectsTo(S1, S2) { // (*) hyperedge-capable test
						continue
					}
					// The s1/s2 double loop visits each unordered pair in
					// both orientations; EmitPair prices both sides of
					// commutative operators itself, so emit once.
					if S1.Min() < S2.Min() {
						e.EmitPair(S1, S2)
					}
				}
			}
		}
		e.ForEach(func(S bitset.Set) {
			if S.Len() == s {
				bySize[s] = append(bySize[s], S)
			}
		})
	}
	p, err := b.Final()
	return p, e.Stats, err
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("dpsize: empty hypergraph")
