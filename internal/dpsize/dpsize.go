// Package dpsize implements the size-driven dynamic programming
// algorithm of Figure 1 of the paper — the Selinger-style enumerator
// "which still forms the core of state-of-the-art commercial query
// optimizers like the one of DB2" — extended to hypergraphs.
//
// DPsize generates plans in the order of increasing size: for every plan
// size s it pairs every table entry of size s1 with every entry of size
// s − s1 and applies two tests, marked (*) in the paper's pseudocode:
// disjointness and graph connectivity. As the paper's complexity
// analysis [17] shows, these tests fail far more often than they
// succeed, which is exactly the overhead the evaluation measures. To
// deal with hypergraphs, "the pseudocode does not have to be changed:
// only the second test has to be implemented in such a way that it is
// capable to deal with hyperedges" (§4.1) — here via
// hypergraph.ConnectsTo, which understands hypernodes and generalized
// edges.
//
// The solver is a pure enumerator: memoization, budgets, and plan
// construction route through the shared memo engine (internal/memo).
package dpsize

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Options configures a DPsize run. It mirrors core.Options so that the
// baselines run under identical cost models, filters, and limits.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *memo.Pool

	// Explain, when non-nil, receives phase spans for the run (the
	// engine records the materialize phase; the planner wraps the whole
	// enumeration). Unlike OnEmit it does not force the serial engine.
	Explain *obs.Trace

	// Parallelism > 1 enumerates each plan size level-synchronously
	// across that many workers: all pairs within a size are independent
	// given the previous sizes, so the (*) tests and plan construction
	// partition freely; worker results merge at the level barrier with
	// an order-independent tie-break, keeping plans byte-identical to
	// the serial engine. 0 or 1 runs today's serial engine.
	Parallelism int
}

// Solve runs DPsize over g and returns the optimal bushy cross-product-
// free plan, enumeration statistics, and an error if no plan exists.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	defer opts.Pool.Put(e)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	e.SetTrace(opts.Explain)
	n := g.NumRels()
	if n == 0 {
		return nil, e.Stats, errEmpty
	}
	b.Init()

	// bySize[s] lists the connected subgraphs of size s discovered so
	// far. Entries of size s are only created while processing plan size
	// s, so collecting after each round keeps the lists complete.
	bySize := make([][]bitset.Set, n+1)
	for i := 0; i < n; i++ {
		bySize[1] = append(bySize[1], bitset.Single(i))
	}

	// Filters may carry shared per-analysis state and hooks need the
	// serial emission order, so both pin direct solver calls to the
	// serial engine (the planner enforces the same gates).
	if opts.Parallelism > 1 && opts.Filter == nil && opts.OnEmit == nil {
		solveParallel(g, b, bySize, n, opts.Parallelism)
		p, err := b.Final()
		return p, e.Stats, err
	}

	enumerate(g, e, bySize, n)
	p, err := b.Final()
	return p, e.Stats, err
}

// enumerate is the serial DPsize loop nest of Fig. 3: all (S1, S2)
// candidate pairs by ascending plan size, dominated by the failing (*)
// tests.
//
//dp:hotpath
func enumerate(g *hypergraph.Graph, e *memo.Engine, bySize [][]bitset.Set, n int) {
sizes:
	for s := 2; s <= n; s++ { // "for ∀ 1 < s ≤ n ascending: size of plan"
		for s1 := 1; s1 < s; s1++ { // "size of left subplan"
			s2 := s - s1
			for _, S1 := range bySize[s1] {
				for _, S2 := range bySize[s2] {
					// The failing (*) tests dominate the run time, so the
					// cancellation poll sits in the innermost loop.
					if !e.Step() {
						break sizes
					}
					if !S1.Disjoint(S2) { // (*) "if S1 ∩ S2 ≠ ∅ continue"
						continue
					}
					if !g.ConnectsTo(S1, S2) { // (*) hyperedge-capable test
						continue
					}
					// The s1/s2 double loop visits each unordered pair in
					// both orientations; EmitPair prices both sides of
					// commutative operators itself, so emit once.
					if S1.Min() < S2.Min() {
						e.EmitPair(S1, S2)
					}
				}
			}
		}
		collectSize(e, bySize, s)
	}
}

// collectSize gathers the connected subgraphs of size s the round just
// created, completing bySize[s] before the next plan size reads it.
//
//dp:coldpath runs once per plan-size level, not per candidate pair
func collectSize(e *memo.Engine, bySize [][]bitset.Set, s int) {
	e.ForEach(func(S bitset.Set) {
		if S.Len() == s {
			bySize[s] = append(bySize[s], S)
		}
	})
}

// sizeChunk is one unit of parallel work within a plan-size level: a
// contiguous block of left-subplan candidates for one (s1, s2) split.
// Chunks have stable identities independent of the worker count, so
// the set of pairs tested — and, with the engine's order-independent
// tie-break, the merged plans — never depends on scheduling.
type sizeChunk struct {
	s1, lo, hi int
}

// chunkBlock bounds the left-side candidates per chunk: small enough
// to balance skewed levels across workers, large enough that the
// atomic chunk-claim is amortized over thousands of (*) tests.
const chunkBlock = 64

// solveParallel runs the level-synchronous parallel DPsize: plan sizes
// proceed in order, and within a size the candidate pairs partition
// into chunks that workers claim dynamically (cheap work-stealing for
// skewed shapes). Workers build plans into private memo views; the
// level barrier merges them back deterministically.
func solveParallel(g *hypergraph.Graph, b *dp.Builder, bySize [][]bitset.Set, n, workers int) {
	pr := dp.NewParRun(b, workers)
	var chunks []sizeChunk
	for s := 2; s <= n; s++ {
		chunks = chunks[:0]
		for s1 := 1; s1 < s; s1++ {
			if len(bySize[s-s1]) == 0 {
				continue
			}
			for lo := 0; lo < len(bySize[s1]); lo += chunkBlock {
				chunks = append(chunks, sizeChunk{s1, lo, min(lo+chunkBlock, len(bySize[s1]))})
			}
		}
		pr.Par.StartLevel()
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			we := pr.Bs[w].Engine
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= len(chunks) || we.Aborted() != nil {
						return
					}
					c := chunks[ci]
					right := bySize[s-c.s1]
					for _, S1 := range bySize[c.s1][c.lo:c.hi] {
						for _, S2 := range right {
							if !we.Step() {
								return
							}
							if !S1.Disjoint(S2) {
								continue
							}
							if !g.ConnectsTo(S1, S2) {
								continue
							}
							if S1.Min() < S2.Min() {
								we.EmitPair(S1, S2)
							}
						}
					}
				}
			}()
		}
		wg.Wait()
		bySize[s] = pr.Par.FinishLevel(memo.LevelBuilt)
		if pr.Par.Aborted() != nil {
			return
		}
	}
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("dpsize: empty hypergraph")
