package dp

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/hypergraph"
)

func twoRelGraph(op algebra.Op) *hypergraph.Graph {
	g := hypergraph.New()
	g.AddRelation("L", 100)
	g.AddRelation("R", 50)
	g.AddEdge(hypergraph.Edge{U: bitset.New(0), V: bitset.New(1), Sel: 0.1, Op: op})
	return g
}

func TestInitSeedsSingletons(t *testing.T) {
	g := twoRelGraph(algebra.Join)
	b := NewBuilder(g, nil)
	b.Init()
	for i := 0; i < 2; i++ {
		p := b.Best(bitset.Single(i))
		if p == nil || !p.IsLeaf() || p.Rel != i {
			t.Fatalf("missing singleton plan for %d", i)
		}
	}
	if b.Model.Name() != "Cout" {
		t.Error("nil model must default to Cout")
	}
}

func TestEmitCsgCmpInnerJoinBothOrientations(t *testing.T) {
	g := twoRelGraph(algebra.Join)
	b := NewBuilder(g, cost.Cout{})
	b.Init()
	b.Engine.EmitPair(bitset.New(0), bitset.New(1))
	if b.Engine.Stats.CsgCmpPairs != 1 {
		t.Errorf("pairs = %d", b.Engine.Stats.CsgCmpPairs)
	}
	// Commutative: both orientations priced.
	if b.Engine.Stats.CostedPlans != 2 {
		t.Errorf("costed = %d, want 2", b.Engine.Stats.CostedPlans)
	}
	p := b.Best(bitset.New(0, 1))
	if p == nil || p.Op != algebra.Join {
		t.Fatalf("plan = %v", p)
	}
	if p.Card != 100*50*0.1 {
		t.Errorf("card = %g", p.Card)
	}
}

func TestEmitCsgCmpNonCommutativeOrientation(t *testing.T) {
	g := twoRelGraph(algebra.AntiJoin)
	b := NewBuilder(g, cost.Cout{})
	b.Init()
	// Emit with the pair swapped relative to the edge orientation: the
	// builder must still put the edge's U side on the left.
	b.Engine.EmitPair(bitset.New(1), bitset.New(0))
	if b.Engine.Stats.CostedPlans != 1 {
		t.Errorf("costed = %d, want 1 (non-commutative)", b.Engine.Stats.CostedPlans)
	}
	p := b.Best(bitset.New(0, 1))
	if p == nil {
		t.Fatal("no plan")
	}
	if p.Op != algebra.AntiJoin || p.Left.Rel != 0 || p.Right.Rel != 1 {
		t.Errorf("orientation wrong: %s", p.Compact())
	}
}

func TestDependentSwitch(t *testing.T) {
	g := twoRelGraph(algebra.Join)
	g.SetFree(1, bitset.New(0)) // R depends on L
	b := NewBuilder(g, cost.Cout{})
	b.Init()
	b.Engine.EmitPair(bitset.New(0), bitset.New(1))
	p := b.Best(bitset.New(0, 1))
	if p == nil {
		t.Fatal("no plan")
	}
	if p.Op != algebra.DepJoin {
		t.Errorf("op = %v, want dep-join (§5.6)", p.Op)
	}
	if p.Left.Rel != 0 {
		t.Error("provider must be on the left")
	}
	// The reversed orientation (dependent side left) must be rejected.
	if b.Engine.Stats.InvalidReject != 1 {
		t.Errorf("invalid rejects = %d, want 1", b.Engine.Stats.InvalidReject)
	}
}

func TestDependentFullOuterImpossible(t *testing.T) {
	g := twoRelGraph(algebra.FullOuter)
	g.SetFree(1, bitset.New(0))
	b := NewBuilder(g, cost.Cout{})
	b.Init()
	b.Engine.EmitPair(bitset.New(0), bitset.New(1))
	if b.Best(bitset.New(0, 1)) != nil {
		t.Error("dependent full outer join must be impossible")
	}
	if b.Engine.Stats.InvalidReject != 2 {
		t.Errorf("invalid rejects = %d, want 2 (both orientations)", b.Engine.Stats.InvalidReject)
	}
}

func TestFilterOrientationFlags(t *testing.T) {
	g := twoRelGraph(algebra.Join)
	b := NewBuilder(g, cost.Cout{})
	var seen [][2]bool // (left has R0, flipped flag)
	b.Filter = func(left, right bitset.Set, conn []EdgeRef) bool {
		seen = append(seen, [2]bool{left.Has(0), conn[0].Flipped})
		return true
	}
	b.Init()
	b.Engine.EmitPair(bitset.New(0), bitset.New(1))
	if len(seen) != 2 {
		t.Fatalf("filter called %d times", len(seen))
	}
	for _, s := range seen {
		// When R0 is on the left, the stored orientation (U={R0}) is not
		// flipped, and vice versa.
		if s[0] == s[1] {
			t.Errorf("flip flag inconsistent with orientation: %v", s)
		}
	}
}

func TestAmbiguousOperatorCounting(t *testing.T) {
	g := hypergraph.New()
	g.AddRelation("A", 10)
	g.AddRelation("B", 10)
	g.AddEdge(hypergraph.Edge{U: bitset.New(0), V: bitset.New(1), Sel: 0.1, Op: algebra.SemiJoin})
	g.AddEdge(hypergraph.Edge{U: bitset.New(0), V: bitset.New(1), Sel: 0.2, Op: algebra.AntiJoin})
	b := NewBuilder(g, cost.Cout{})
	b.Init()
	b.Engine.EmitPair(bitset.New(0), bitset.New(1))
	if b.Engine.Stats.AmbiguousOps != 1 {
		t.Errorf("ambiguous = %d, want 1", b.Engine.Stats.AmbiguousOps)
	}
	if b.Best(bitset.New(0, 1)) == nil {
		t.Error("plan must still be built")
	}
}

func TestEmitWithoutEdgePanics(t *testing.T) {
	g := hypergraph.New()
	g.AddRelation("A", 10)
	g.AddRelation("B", 10)
	b := NewBuilder(g, cost.Cout{})
	b.Init()
	defer func() {
		if recover() == nil {
			t.Error("EmitCsgCmp without a connecting edge must panic")
		}
	}()
	b.Engine.EmitPair(bitset.New(0), bitset.New(1))
}

func TestFinalErrors(t *testing.T) {
	g := hypergraph.New()
	g.AddRelation("A", 10)
	g.AddRelation("B", 10)
	b := NewBuilder(g, cost.Cout{})
	b.Init()
	if _, err := b.Final(); err == nil {
		t.Error("Final must fail without a complete plan")
	}
}

// Selectivity application: a hyperedge that never separates cleanly into
// (u ⊆ S1, v ⊆ S2) must still be charged exactly once, at the first node
// covering it.
func TestHyperedgeSelectivityChargedOnce(t *testing.T) {
	g := hypergraph.New()
	g.AddRelations(4, "R", 10)
	g.AddSimpleEdge(0, 1, 0.5)
	g.AddSimpleEdge(2, 3, 0.5)
	g.AddSimpleEdge(1, 2, 0.5)
	// Hyperedge interleaved across the simple-edge structure.
	g.AddEdge(hypergraph.Edge{U: bitset.New(0, 2), V: bitset.New(1, 3), Sel: 0.1})
	b := NewBuilder(g, cost.Cout{})
	b.Init()
	// Build ((R0 R1) (R2 R3)): the hyperedge's sides straddle the join.
	b.Engine.EmitPair(bitset.New(0), bitset.New(1))
	b.Engine.EmitPair(bitset.New(2), bitset.New(3))
	b.Engine.EmitPair(bitset.New(0, 1), bitset.New(2, 3))
	p := b.Best(bitset.Full(4))
	if p == nil {
		t.Fatal("no plan")
	}
	// card = 10^4 * 0.5^3 (simple edges) * 0.1 (hyperedge) = 125.
	if p.Card != 125 {
		t.Errorf("card = %g, want 125 (hyperedge charged once)", p.Card)
	}
}
