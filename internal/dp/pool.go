package dp

import (
	"sync"

	"repro/internal/cost"
	"repro/internal/hypergraph"
)

// Pool recycles Builders — most importantly their DP table maps, whose
// bucket arrays are the dominant allocation of an enumeration run —
// across planning calls. A long-lived Planner owns one Pool so that
// steady traffic over similar query sizes reaches a steady state with no
// table allocations at all; clearing a Go map keeps its buckets.
//
// A nil *Pool is valid and simply allocates fresh Builders, so solvers
// can thread an optional pool without nil checks at every call site.
type Pool struct {
	pool sync.Pool
}

// Get returns a Builder over g using model m (cost.Default() if nil),
// reusing pooled scratch state when available.
func (p *Pool) Get(g *hypergraph.Graph, m cost.Model) *Builder {
	if p != nil {
		if b, ok := p.pool.Get().(*Builder); ok {
			if m == nil {
				m = cost.Default()
			}
			b.G = g
			b.Model = m
			return b
		}
	}
	return NewBuilder(g, m)
}

// Put clears b's per-run state and returns it to the pool. The plan
// nodes a finished run produced are allocated individually and only
// referenced by the table, so the caller's result tree survives. b must
// not be used after Put.
func (p *Pool) Put(b *Builder) {
	if p == nil || b == nil {
		return
	}
	clear(b.Table)
	b.G = nil
	b.Model = nil
	b.Filter = nil
	b.OnEmit = nil
	b.Stats = Stats{}
	b.connBuf = b.connBuf[:0]
	b.limits = Limits{}
	b.steps = 0
	b.abortErr = nil
	p.pool.Put(b)
}
