// Package dp provides the plan-construction semantics shared by all
// join enumeration algorithms in this repository (DPhyp, DPsize, DPsub,
// DPccp, TopDown, and the GOO fallback).
//
// Storage and accounting live one layer down, in internal/memo: the
// open-addressing DP table, the flat plan-node arena, budget and
// cancellation enforcement, and the counting hooks. This package
// contributes the Backend the engine calls for every admitted
// csg-cmp-pair: Builder implements the plan-construction logic of
// EmitCsgCmp (§3.5) — recovering the operator attached to the connecting
// hyperedges (§5.4), switching to dependent variants when the right side
// references the left (§5.6), applying the optional generate-and-test
// filter (the TES-check alternative measured in Fig. 8a), estimating
// cardinalities, and costing both orientations of commutative operators
// — and materializes the winning plan tree out of the engine's arena.
package dp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/plan"
)

// ErrBudgetExhausted reports that an enumeration stopped because it
// reached its Limits before connecting the full graph. It is the memo
// engine's sentinel, re-exported for the solver and planner layers.
var ErrBudgetExhausted = memo.ErrBudgetExhausted

// Limits bounds one enumeration run; see memo.Limits.
type Limits = memo.Limits

// Stats counts the work an enumeration performed; see memo.Stats.
type Stats = memo.Stats

// Pool recycles memo engines across planning calls; see memo.Pool.
type Pool = memo.Pool

// EdgeRef identifies a hyperedge connecting a concrete csg-cmp-pair.
// Flipped is true when the edge's stored (U,V) orientation is reversed
// relative to the pair: U ⊆ S2 rather than U ⊆ S1.
type EdgeRef struct {
	Idx     int
	Flipped bool
}

// Filter decides whether a candidate join of left and right (in that
// argument order) may be built. conn lists the connecting edges with
// Flipped relative to (left, right). It implements the generate-and-test
// paradigm of §5.8: the TES test rejects plans after they have been
// enumerated, which is exactly the overhead Fig. 8a measures.
type Filter func(left, right bitset.Set, conn []EdgeRef) bool

// Builder is the plan-construction backend of one enumeration run: it
// holds the graph and cost model the memo engine is deliberately
// ignorant of, plus reusable scratch buffers for edge recovery. It
// implements memo.Backend and stays attached to its engine across pool
// round-trips so the buffers are recycled too.
type Builder struct {
	G      *hypergraph.Graph
	Model  cost.Model
	Filter Filter

	// Engine is the memo this run stores plans into.
	Engine *memo.Engine

	connBuf []EdgeRef
	flipBuf []EdgeRef
	edgeBuf []int

	// Deferred-pair storage for the enumerate-first parallel modes:
	// recs is this builder's collection buffer (each worker Builder
	// collects into its own), buckets is the size-keyed assembly the
	// main Builder hands to PriceLevels. Both keep their backing arrays
	// across pool round-trips, so steady-state deferred pricing
	// allocates nothing (see BenchmarkMemo/deferred-buckets).
	recs    []PairRec
	buckets [][]PairRec
}

// NewRun obtains an engine (recycled from pool when possible), resets it
// for a run over g, and attaches a Builder using the given cost model
// (cost.Default() if nil). Return the engine to the pool with pool.Put
// when the run's statistics have been read.
func NewRun(pool *memo.Pool, g *hypergraph.Graph, m cost.Model) (*memo.Engine, *Builder) {
	if m == nil {
		m = cost.Default()
	}
	e := pool.Get()
	e.Reset(g.NumRels())
	b, _ := e.Backend().(*Builder)
	if b == nil {
		b = &Builder{}
		e.SetBackend(b)
	}
	b.G, b.Model, b.Engine = g, m, e
	return e, b
}

// ParRun couples the memo engine's parallel orchestration with one
// Builder per worker view, so plan construction — edge recovery,
// dependency checks, costing — runs lock-free on every worker: the
// scratch buffers the Builder reuses are private to its view.
type ParRun struct {
	Par  *memo.Par
	Bs   []*Builder
	main *Builder
}

// NewParRun prepares n parallel worker views over b's engine. Like the
// engine views themselves, the worker Builders ride the pool: a
// recycled engine revives them with their scratch buffers intact.
func NewParRun(b *Builder, n int) *ParRun {
	par := b.Engine.Parallel(n)
	bs := make([]*Builder, n)
	for i, w := range par.Workers() {
		wb, _ := w.Backend().(*Builder)
		if wb == nil {
			wb = &Builder{}
			w.SetBackend(wb)
		}
		wb.G, wb.Model, wb.Filter, wb.Engine = b.G, b.Model, b.Filter, w
		wb.ResetPairs()
		bs[i] = wb
	}
	return &ParRun{Par: par, Bs: bs, main: b}
}

// DeferPair records an admitted csg-cmp-pair for deferred pricing into
// this builder's pooled buffer. Callers gate on Engine.EmitDeferred
// first, so budget and emission accounting happen exactly once.
//
//dp:hotpath
func (b *Builder) DeferPair(S1, S2 bitset.Set) {
	//nolint:hotpathalloc // append into a pooled buffer: capacity survives pool round-trips, so steady state does not grow
	b.recs = append(b.recs, PairRec{S1: S1, S2: S2})
}

// ResetPairs truncates the deferred-pair buffer, keeping its storage.
func (b *Builder) ResetPairs() { b.recs = b.recs[:0] }

// Buckets groups every worker-collected deferred pair by result-set
// size into the main Builder's pooled buckets, ready for PriceLevels.
// Bucket-internal order (worker index, then collection order) does not
// affect the outcome: pairs within a level are independent and the
// engine's Improve tie-break is order-independent, so plans stay
// byte-identical at any worker count. The bucket storage is recycled
// through the pool, so steady-state assembly allocates nothing.
func (pr *ParRun) Buckets(n int) [][]PairRec {
	b := pr.main
	if cap(b.buckets) < n+1 {
		b.buckets = make([][]PairRec, n+1)
	}
	b.buckets = b.buckets[:n+1]
	for i := range b.buckets {
		b.buckets[i] = b.buckets[i][:0]
	}
	for _, wb := range pr.Bs {
		for _, p := range wb.recs {
			s := p.S1.Union(p.S2).Len()
			b.buckets[s] = append(b.buckets[s], p)
		}
	}
	return b.buckets
}

// PairRec is one csg-cmp-pair whose pricing was deferred: the
// enumerate-first parallel modes of DPhyp and DPccp collect the pairs
// their (serial or per-start-vertex) enumeration admits, then price
// them level-synchronously with PriceLevels.
type PairRec struct {
	S1, S2 bitset.Set
}

// priceChunk bounds the deferred pairs per parallel work unit. Pricing
// a pair costs two O(|E|) edge scans plus the cost model, so even
// small chunks amortize the atomic claim while keeping skewed levels
// (a star's hub level holds almost everything) balanced.
const priceChunk = 128

// PriceLevels prices deferred pairs level-by-level: buckets[s] holds
// the pairs whose result set has s relations, and all pairs within a
// bucket are independent given the merged smaller levels, so workers
// claim fixed chunks of each bucket dynamically. Emission was already
// counted when the pairs were collected, so the per-level merges add
// only per-worker built counts, not run totals. On abort (budget or
// cancellation) the remaining levels are skipped; the main engine
// carries the cause.
func (pr *ParRun) PriceLevels(buckets [][]PairRec) {
	for s := 2; s < len(buckets); s++ {
		bucket := buckets[s]
		if len(bucket) == 0 {
			continue
		}
		pr.Par.StartLevel()
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := range pr.Bs {
			we := pr.Bs[w].Engine
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					lo := (int(next.Add(1)) - 1) * priceChunk
					if lo >= len(bucket) || we.Aborted() != nil {
						return
					}
					for _, p := range bucket[lo:min(lo+priceChunk, len(bucket))] {
						if !we.Step() {
							return
						}
						we.BuildDeferred(p.S1, p.S2)
					}
				}
			}()
		}
		wg.Wait()
		pr.Par.FinishLevel(memo.LevelPriced)
		if pr.Par.Aborted() != nil {
			return
		}
	}
}

// ParallelSafe reports whether g admits the enumerate-first parallel
// modes (DPhyp, DPccp, TopDown). Deferred pricing requires that every
// admitted pair actually produces a memo entry — otherwise a later
// level would price against a missing subplan, and the parallel spines
// could not substitute a structural connectivity test for mid-level
// DP-table membership. Plans are only rejected after admission by
// dependency constraints (§5.6), which need free variables, so graphs
// without dependent relations qualify outright.
//
// The admissibility precheck extends this to one class of dependent
// graphs, cost-free (it inspects only relation Free sets and edge
// operators): when at most ONE relation carries free variables and
// every edge operator is the commutative inner join, BuildPair always
// stores at least one orientation. Proof sketch: for a pair (S1,S2)
// with the dependent relation in S1, FreeTables(S2) is empty, so the
// orientation (S2,S1) passes the left-references-right rejection; if
// S1's free tables overlap S2 that orientation becomes Join's
// dependent variant (DepJoin), which is valid. Two dependent relations
// can reference each other across the pair and reject both
// orientations, and a non-commutative operator pins the orientation so
// only one is ever tried — both cases stay serial. (The
// generate-and-test Filter rejects after admission too; the planner
// and the solvers keep filtered runs serial.)
func ParallelSafe(g *hypergraph.Graph) bool {
	dependent := 0
	for i := 0; i < g.NumRels(); i++ {
		if !g.Relation(i).Free.IsEmpty() {
			dependent++
		}
	}
	if dependent == 0 {
		return true
	}
	if dependent > 1 {
		return false
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i).Op != algebra.Join {
			return false
		}
	}
	return true
}

// NewBuilder returns a Builder over g with a fresh engine, for tests and
// tooling that drive plan construction directly. Production runs go
// through NewRun.
func NewBuilder(g *hypergraph.Graph, m cost.Model) *Builder {
	_, b := NewRun(nil, g, m)
	return b
}

// Release drops the per-run references so a pooled engine does not pin
// the graph or model; the scratch buffers stay for the next run.
func (b *Builder) Release() {
	b.G = nil
	b.Model = nil
	b.Filter = nil
	b.Engine = nil
	b.connBuf = b.connBuf[:0]
	b.flipBuf = b.flipBuf[:0]
	b.edgeBuf = b.edgeBuf[:0]
	b.recs = b.recs[:0]
	for i := range b.buckets {
		b.buckets[i] = b.buckets[i][:0]
	}
}

// Init seeds the DP table with access plans for single relations
// ("dpTable[{v}] = plan for v"). A session arriving with its context
// already canceled (or its budget already spent by an earlier solver
// on the same engine) must not seed fresh entries, so the loop polls
// like every other emission loop.
//
//dp:hotpath
func (b *Builder) Init() {
	for i := 0; i < b.G.NumRels(); i++ {
		if !b.Engine.Step() {
			return
		}
		b.Engine.EmitBase(i, b.G.Relation(i).Card)
	}
}

// Best materializes the memoed plan for S, or nil. Intended for tests;
// the enumeration-side membership test is Engine.Contains.
func (b *Builder) Best(S bitset.Set) *plan.Node { return b.Engine.Plan(S) }

// Final returns the plan covering all relations, or an error when the
// enumeration could not connect the graph (the hypergraph was not
// Definition-3 connected, or every candidate plan was filtered out).
func (b *Builder) Final() (*plan.Node, error) {
	return b.Engine.Final(b.G.AllNodes())
}

// BuildPair implements memo.Backend, following §3.5: it recovers the
// connecting edges and their predicates, resolves the operator, and
// prices one orientation for non-commutative operators or both for
// commutative ones. Budget and emission bookkeeping has already happened
// in Engine.EmitPair.
//
//dp:hotpath
func (b *Builder) BuildPair(S1, S2 bitset.Set) {
	conn := b.connBuf[:0]
	//nolint:hotpathalloc // EachConnectingEdge does not retain the callback, so it stays on the stack
	b.G.EachConnectingEdge(S1, S2, func(idx int, flipped bool) {
		conn = append(conn, EdgeRef{Idx: idx, Flipped: flipped})
	})
	b.connBuf = conn
	if len(conn) == 0 {
		// Not a csg-cmp-pair; callers are expected to have checked, so
		// this indicates an enumeration bug.
		panic(fmt.Sprintf("dp: EmitPair(%v,%v) without connecting edge", S1, S2))
	}

	// Operator recovery (§5.4): every hyperedge carries the operator it
	// was derived from. Simple predicate edges carry the inner join. At
	// most one connecting edge should be non-inner for TES-derived
	// graphs; if several are, the latest wins and the event is counted.
	op := algebra.Join
	leftIsS1 := true
	nonInner := 0
	for _, ref := range conn {
		e := b.G.Edge(ref.Idx)
		if e.Op != algebra.Join {
			nonInner++
			op = e.Op
			leftIsS1 = !ref.Flipped
		}
	}
	if nonInner > 1 {
		b.Engine.Stats.AmbiguousOps++
	}

	if op.Commutative() {
		b.tryBuild(S1, S2, op, conn, false)
		b.tryBuild(S2, S1, op, conn, true)
		return
	}
	if leftIsS1 {
		b.tryBuild(S1, S2, op, conn, false)
	} else {
		b.tryBuild(S2, S1, op, conn, true)
	}
}

// tryBuild prices "left op right" and stores it through Engine.Improve
// if it beats the incumbent for left ∪ right. connFlipped indicates that
// the EdgeRef.Flipped flags in conn are relative to the swapped
// orientation.
func (b *Builder) tryBuild(left, right bitset.Set, op algebra.Op, conn []EdgeRef, connFlipped bool) {
	e := b.Engine
	lh, lok := e.Lookup(left)
	rh, rok := e.Lookup(right)
	if !lok || !rok {
		panic(fmt.Sprintf("dp: missing subplan for %v or %v", left, right))
	}

	// Dependency constraints (§5.6). The left argument must not reference
	// the right side; if the right side references the left, the operator
	// becomes its dependent counterpart.
	if b.G.FreeTables(left).Overlaps(right) {
		e.Stats.InvalidReject++
		return
	}
	if b.G.FreeTables(right).Overlaps(left) {
		op = op.DependentVariant()
		if !op.Valid() {
			e.Stats.InvalidReject++
			return
		}
	}

	if b.Filter != nil {
		fc := conn
		if connFlipped {
			fc = b.flipRefs(conn)
		}
		if !b.Filter(left, right, fc) {
			e.Stats.FilterReject++
			return
		}
	}

	// Predicate application (§3.5): a predicate is evaluated at the first
	// node that covers all relations it references. For simple edges this
	// is the join separating the two endpoints, but a hyperedge can
	// become fully covered at a join that splits its hypernodes across
	// sides in a way that never satisfies u ⊆ S1 ∧ v ⊆ S2; its
	// selectivity must still be charged exactly once. We therefore apply
	// every edge covered by S = left ∪ right but by neither child alone,
	// which keeps cardinality estimates independent of the join order.
	S := left.Union(right)
	sel := 1.0
	applied := b.edgeBuf[:0]
	for i := 0; i < b.G.NumEdges(); i++ {
		ed := b.G.Edge(i)
		nodes := ed.Nodes()
		if nodes.SubsetOf(S) && !nodes.SubsetOf(left) && !nodes.SubsetOf(right) {
			sel *= ed.Sel
			applied = append(applied, i)
		}
	}
	b.edgeBuf = applied
	if !e.ChargePlan() {
		return
	}
	lcard, lcost := e.PlanInfo(lh)
	rcard, rcost := e.PlanInfo(rh)
	card := cost.EstimateCard(op, lcard, rcard, sel)
	var (
		c    float64
		phys algebra.PhysOp
	)
	if pm, ok := b.Model.(cost.PhysicalModel); ok {
		phys, c = pm.ChooseJoin(op, lcost, rcost, lcard, rcard, card)
	} else {
		c = b.Model.JoinCost(op, lcost, rcost, lcard, rcard, card)
	}

	e.Improve(S, lh, rh, op, phys, card, c, applied)
}

// flipRefs inverts the Flipped flags into the reusable flip buffer.
func (b *Builder) flipRefs(conn []EdgeRef) []EdgeRef {
	out := b.flipBuf[:0]
	for _, r := range conn {
		out = append(out, EdgeRef{Idx: r.Idx, Flipped: !r.Flipped})
	}
	b.flipBuf = out
	return out
}
