// Package dp provides the dynamic-programming plumbing shared by all
// join enumeration algorithms in this repository (DPhyp, DPsize, DPsub,
// DPccp, and the top-down memoization baseline).
//
// The central piece is Builder, which owns the DP table mapping relation
// sets to their best plans and implements the plan-construction logic of
// EmitCsgCmp (§3.5): recovering the operator attached to the connecting
// hyperedges (§5.4), switching to dependent variants when the right side
// references the left (§5.6), applying the optional generate-and-test
// filter (the TES-check alternative measured in Fig. 8a), estimating
// cardinalities, and costing both orientations of commutative operators.
package dp

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

// ErrBudgetExhausted reports that an enumeration stopped because it
// reached its Limits before connecting the full graph. Callers that can
// tolerate suboptimal plans should fall back to a heuristic (GOO) when
// they see this error; the Planner layer does so automatically.
var ErrBudgetExhausted = errors.New("dp: enumeration budget exhausted")

// Limits bounds one enumeration run. The zero value imposes no bounds.
//
// Ctx is polled periodically (every pollInterval units of enumeration
// work) so that cancellation interrupts even the O(3^n) inner loops of
// DPsub within microseconds. The two Max fields cap the paper's two
// effort yardsticks: csg-cmp-pairs emitted and candidate plans priced.
type Limits struct {
	Ctx            context.Context
	MaxCsgCmpPairs int // 0 = unlimited
	MaxCostedPlans int // 0 = unlimited
}

// pollInterval is the number of Step calls between context polls.
// Polling a context costs an atomic load plus a channel check; amortizing
// it keeps the per-iteration overhead of the enumeration loops below a
// nanosecond while still reacting to cancellation promptly.
const pollInterval = 1024

// EdgeRef identifies a hyperedge connecting a concrete csg-cmp-pair.
// Flipped is true when the edge's stored (U,V) orientation is reversed
// relative to the pair: U ⊆ S2 rather than U ⊆ S1.
type EdgeRef struct {
	Idx     int
	Flipped bool
}

// Filter decides whether a candidate join of left and right (in that
// argument order) may be built. conn lists the connecting edges with
// Flipped relative to (left, right). It implements the generate-and-test
// paradigm of §5.8: the TES test rejects plans after they have been
// enumerated, which is exactly the overhead Fig. 8a measures.
type Filter func(left, right bitset.Set, conn []EdgeRef) bool

// Stats counts the work an enumeration performed. The number of
// csg-cmp-pairs is the paper's yardstick: "the minimal number of cost
// function calls of any dynamic programming algorithm is exactly the
// number of csg-cmp-pairs" (§2.2).
type Stats struct {
	CsgCmpPairs   int // EmitCsgCmp invocations (unordered pairs)
	CostedPlans   int // plans actually priced (2x for commutative ops)
	FilterReject  int // plans rejected by the generate-and-test filter
	InvalidReject int // plans rejected by dependency constraints
	AmbiguousOps  int // pairs connected by more than one non-inner edge
	TableEntries  int // number of connected subgraphs with a plan

	// Session-level accounting, filled by the Planner layer.
	BudgetExhausted bool // exact enumeration stopped at its Limits
	FallbackGreedy  bool // a GOO plan was substituted after the budget trip
	CacheHit        bool // served from the planner's fingerprint cache

	// Adaptive-routing accounting, filled by the Planner when the
	// SolverAuto mode picked the algorithm. RoutedAlgorithm names the
	// solver the topology router selected — it stays put even when a
	// budget trip later downgraded the run to greedy (FallbackGreedy
	// then reports the downgrade alongside it).
	AutoRouted      bool   // the algorithm was chosen by SolverAuto
	Shape           string // topology class the router saw (e.g. "star")
	RoutedAlgorithm string // solver the router picked (e.g. "dphyp")
}

// Builder is the shared DP state.
type Builder struct {
	G      *hypergraph.Graph
	Model  cost.Model
	Filter Filter

	// OnEmit, if set, observes every csg-cmp-pair in emission order.
	OnEmit func(S1, S2 bitset.Set)

	Table map[bitset.Set]*plan.Node
	Stats Stats

	connBuf []EdgeRef

	limits   Limits
	steps    int
	abortErr error
}

// NewBuilder returns a Builder over g using the given cost model
// (cost.Default() if nil).
func NewBuilder(g *hypergraph.Graph, m cost.Model) *Builder {
	if m == nil {
		m = cost.Default()
	}
	return &Builder{
		G:     g,
		Model: m,
		Table: make(map[bitset.Set]*plan.Node, 1<<uint(min(g.NumRels(), 20))),
	}
}

// SetLimits installs cancellation and budget bounds for the next run.
func (b *Builder) SetLimits(l Limits) { b.limits = l }

// Aborted returns the cancellation or budget error once a limit has
// tripped, and nil while the run may proceed. Solvers use it to unwind
// recursive enumeration cheaply.
func (b *Builder) Aborted() error { return b.abortErr }

// Step records one unit of enumeration work (a loop iteration or
// recursive call) and reports whether the run may continue. The context
// is polled every pollInterval steps; budget limits are enforced in
// EmitCsgCmp and tryBuild where the counted events happen.
func (b *Builder) Step() bool {
	if b.abortErr != nil {
		return false
	}
	if b.limits.Ctx == nil {
		return true
	}
	b.steps++
	if b.steps%pollInterval != 0 {
		return true
	}
	if err := b.limits.Ctx.Err(); err != nil {
		b.abortErr = err
		return false
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Init seeds the DP table with access plans for single relations
// ("dpTable[{v}] = plan for v").
func (b *Builder) Init() {
	for i := 0; i < b.G.NumRels(); i++ {
		b.Table[bitset.Single(i)] = plan.Leaf(i, b.G.Relation(i).Card)
	}
}

// Best returns the best plan for S, or nil.
func (b *Builder) Best(S bitset.Set) *plan.Node { return b.Table[S] }

// Final returns the plan covering all relations, or an error when the
// enumeration could not connect the graph (the hypergraph was not
// Definition-3 connected, or every candidate plan was filtered out).
func (b *Builder) Final() (*plan.Node, error) {
	if b.abortErr != nil {
		b.Stats.TableEntries = len(b.Table)
		return nil, b.abortErr
	}
	p := b.Table[b.G.AllNodes()]
	if p == nil {
		return nil, fmt.Errorf("dp: no plan for %v: hypergraph not connected or all plans rejected", b.G.AllNodes())
	}
	b.Stats.TableEntries = len(b.Table)
	return p, nil
}

// EmitCsgCmp considers building plans from the csg-cmp-pair (S1, S2),
// following §3.5: it recovers the connecting edges and their predicates,
// resolves the operator, and prices one orientation for non-commutative
// operators or both for commutative ones.
func (b *Builder) EmitCsgCmp(S1, S2 bitset.Set) {
	if b.abortErr != nil {
		return
	}
	if max := b.limits.MaxCsgCmpPairs; max > 0 && b.Stats.CsgCmpPairs >= max {
		b.abortErr = fmt.Errorf("%w: %d csg-cmp-pairs emitted (limit %d)",
			ErrBudgetExhausted, b.Stats.CsgCmpPairs, max)
		return
	}
	b.Stats.CsgCmpPairs++
	if b.OnEmit != nil {
		b.OnEmit(S1, S2)
	}

	conn := b.connBuf[:0]
	b.G.EachConnectingEdge(S1, S2, func(idx int, flipped bool) {
		conn = append(conn, EdgeRef{Idx: idx, Flipped: flipped})
	})
	b.connBuf = conn
	if len(conn) == 0 {
		// Not a csg-cmp-pair; callers are expected to have checked, so
		// this indicates an enumeration bug.
		panic(fmt.Sprintf("dp: EmitCsgCmp(%v,%v) without connecting edge", S1, S2))
	}

	// Operator recovery (§5.4): every hyperedge carries the operator it
	// was derived from. Simple predicate edges carry the inner join. At
	// most one connecting edge should be non-inner for TES-derived
	// graphs; if several are, the latest wins and the event is counted.
	op := algebra.Join
	leftIsS1 := true
	nonInner := 0
	for _, ref := range conn {
		e := b.G.Edge(ref.Idx)
		if e.Op != algebra.Join {
			nonInner++
			op = e.Op
			leftIsS1 = !ref.Flipped
		}
	}
	if nonInner > 1 {
		b.Stats.AmbiguousOps++
	}

	if op.Commutative() {
		b.tryBuild(S1, S2, op, conn, false)
		b.tryBuild(S2, S1, op, conn, true)
		return
	}
	if leftIsS1 {
		b.tryBuild(S1, S2, op, conn, false)
	} else {
		b.tryBuild(S2, S1, op, conn, true)
	}
}

// tryBuild prices "left op right" and stores it if it improves the table
// entry for left ∪ right. connFlipped indicates that the EdgeRef.Flipped
// flags in conn are relative to the swapped orientation.
func (b *Builder) tryBuild(left, right bitset.Set, op algebra.Op, conn []EdgeRef, connFlipped bool) {
	p1 := b.Table[left]
	p2 := b.Table[right]
	if p1 == nil || p2 == nil {
		panic(fmt.Sprintf("dp: missing subplan for %v or %v", left, right))
	}

	// Dependency constraints (§5.6). The left argument must not reference
	// the right side; if the right side references the left, the operator
	// becomes its dependent counterpart.
	if b.G.FreeTables(left).Overlaps(right) {
		b.Stats.InvalidReject++
		return
	}
	if b.G.FreeTables(right).Overlaps(left) {
		op = op.DependentVariant()
		if !op.Valid() {
			b.Stats.InvalidReject++
			return
		}
	}

	if b.Filter != nil {
		fc := conn
		if connFlipped {
			fc = flipRefs(conn)
		}
		if !b.Filter(left, right, fc) {
			b.Stats.FilterReject++
			return
		}
	}

	// Predicate application (§3.5): a predicate is evaluated at the first
	// node that covers all relations it references. For simple edges this
	// is the join separating the two endpoints, but a hyperedge can
	// become fully covered at a join that splits its hypernodes across
	// sides in a way that never satisfies u ⊆ S1 ∧ v ⊆ S2; its
	// selectivity must still be charged exactly once. We therefore apply
	// every edge covered by S = left ∪ right but by neither child alone,
	// which keeps cardinality estimates independent of the join order.
	S := left.Union(right)
	sel := 1.0
	var applied []int
	for i := 0; i < b.G.NumEdges(); i++ {
		e := b.G.Edge(i)
		nodes := e.Nodes()
		if nodes.SubsetOf(S) && !nodes.SubsetOf(left) && !nodes.SubsetOf(right) {
			sel *= e.Sel
			applied = append(applied, i)
		}
	}
	if max := b.limits.MaxCostedPlans; max > 0 && b.Stats.CostedPlans >= max {
		b.abortErr = fmt.Errorf("%w: %d plans costed (limit %d)",
			ErrBudgetExhausted, b.Stats.CostedPlans, max)
		return
	}
	card := cost.EstimateCard(op, p1.Card, p2.Card, sel)
	var (
		c    float64
		phys algebra.PhysOp
	)
	if pm, ok := b.Model.(cost.PhysicalModel); ok {
		phys, c = pm.ChooseJoin(op, p1.Cost, p2.Cost, p1.Card, p2.Card, card)
	} else {
		c = b.Model.JoinCost(op, p1.Cost, p2.Cost, p1.Card, p2.Card, card)
	}
	b.Stats.CostedPlans++

	if cur := b.Table[S]; cur == nil || c < cur.Cost {
		node := plan.Join(op, p1, p2, applied, card, c)
		node.Phys = phys
		b.Table[S] = node
	}
}

func flipRefs(conn []EdgeRef) []EdgeRef {
	out := make([]EdgeRef, len(conn))
	for i, r := range conn {
		out[i] = EdgeRef{Idx: r.Idx, Flipped: !r.Flipped}
	}
	return out
}
