// Package goo implements Greedy Operator Ordering (Fegaras-style greedy
// join ordering as described in Moerkotte's "Building Query Compilers"
// [16]): starting from single relations, repeatedly join the pair of
// connected components whose combination has the smallest estimated
// cardinality.
//
// GOO is not part of the paper's evaluation; it is included as the
// practical fallback a downstream user needs for queries beyond the
// reach of exact dynamic programming (the DP table alone is exponential
// in the number of relations). GOO runs in O(n³) pair inspections, works
// on arbitrary hypergraphs including TES-derived ones, and produces
// valid — though not necessarily optimal — bushy plans through the same
// plan-construction core as the exact algorithms, so operator recovery
// and dependent-join handling behave identically.
package goo

import (
	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

// Options mirrors the options of the exact enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *dp.Pool
}

// Solve runs greedy operator ordering over g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	b := opts.Pool.Get(g, opts.Model)
	defer opts.Pool.Put(b)
	b.Filter = opts.Filter
	b.OnEmit = opts.OnEmit
	b.SetLimits(opts.Limits)
	n := g.NumRels()
	if n == 0 {
		return nil, b.Stats, errEmpty
	}
	b.Init()

	comps := make([]bitset.Set, n)
	for i := 0; i < n; i++ {
		comps[i] = bitset.Single(i)
	}

	for len(comps) > 1 {
		bestI, bestJ := -1, -1
		bestCard := 0.0
		for i := 0; i < len(comps); i++ {
			for j := i + 1; j < len(comps); j++ {
				if !b.Step() {
					return nil, b.Stats, b.Aborted()
				}
				if !g.ConnectsTo(comps[i], comps[j]) {
					continue
				}
				// Rank by the inner-join cardinality approximation; the
				// real operator is recovered when the pair is emitted.
				ci, cj := b.Best(comps[i]), b.Best(comps[j])
				card := cost.EstimateCard(algebra.Join, ci.Card, cj.Card,
					g.SelectivityBetween(comps[i], comps[j]))
				if bestI < 0 || card < bestCard {
					bestI, bestJ, bestCard = i, j, card
				}
			}
		}
		if bestI < 0 {
			return nil, b.Stats, errDisconnected
		}
		s1, s2 := comps[bestI], comps[bestJ]
		if s1.Min() < s2.Min() {
			b.EmitCsgCmp(s1, s2)
		} else {
			b.EmitCsgCmp(s2, s1)
		}
		merged := s1.Union(s2)
		if b.Best(merged) == nil {
			if err := b.Aborted(); err != nil {
				return nil, b.Stats, err
			}
			// The only candidate pair was rejected (dependency or
			// filter); greedy has no alternative to fall back to.
			return nil, b.Stats, errRejected
		}
		comps[bestI] = merged
		comps = append(comps[:bestJ], comps[bestJ+1:]...)
	}
	p, err := b.Final()
	return p, b.Stats, err
}

type solverError string

func (e solverError) Error() string { return string(e) }

const (
	errEmpty        = solverError("goo: empty hypergraph")
	errDisconnected = solverError("goo: hypergraph is disconnected")
	errRejected     = solverError("goo: greedy choice rejected; no plan")
)
