// Package goo implements Greedy Operator Ordering (Fegaras-style greedy
// join ordering as described in Moerkotte's "Building Query Compilers"
// [16]): starting from single relations, repeatedly join the pair of
// connected components whose combination has the smallest estimated
// cardinality.
//
// GOO is not part of the paper's evaluation; it is included as the
// practical fallback a downstream user needs for queries beyond the
// reach of exact dynamic programming (the DP table alone is exponential
// in the number of relations). GOO runs in O(n³) pair inspections, works
// on arbitrary hypergraphs including TES-derived ones, and produces
// valid — though not necessarily optimal — bushy plans through the same
// plan-construction core as the exact algorithms, so operator recovery
// and dependent-join handling behave identically.
package goo

import (
	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Options mirrors the options of the exact enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *memo.Pool

	// Explain, when non-nil, receives phase spans for the run (the
	// engine records the materialize phase; the planner wraps the whole
	// enumeration). Unlike OnEmit it does not force the serial engine.
	Explain *obs.Trace

	// Parallelism is accepted for interface parity but ignored: GOO is
	// inherently sequential (each greedy merge depends on the previous
	// one), and its O(n³) pair inspections are far below the scale
	// where fork/join pays. It stays the serial fallback even inside a
	// parallel planning session.
	Parallelism int
}

// Solve runs greedy operator ordering over g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	defer opts.Pool.Put(e)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	e.SetTrace(opts.Explain)
	n := g.NumRels()
	if n == 0 {
		return nil, e.Stats, errEmpty
	}
	b.Init()

	comps := make([]bitset.Set, n)
	for i := 0; i < n; i++ {
		comps[i] = bitset.Single(i)
	}
	if err := greedy(g, e, comps); err != nil {
		return nil, e.Stats, err
	}
	p, err := b.Final()
	return p, e.Stats, err
}

// greedy repeatedly merges the component pair with the smallest
// estimated join cardinality until one component covers the graph. The
// O(n³) pair scan is the entire cost of a GOO fallback run, which the
// planner invokes precisely when an exact enumeration already spent its
// budget — so the scan itself must not add allocation or miss
// cancellation.
//
//dp:hotpath
func greedy(g *hypergraph.Graph, e *memo.Engine, comps []bitset.Set) error {
	for len(comps) > 1 {
		bestI, bestJ := -1, -1
		bestCard := 0.0
		for i := 0; i < len(comps); i++ {
			for j := i + 1; j < len(comps); j++ {
				if !e.Step() {
					return e.Aborted()
				}
				if !g.ConnectsTo(comps[i], comps[j]) {
					continue
				}
				// Rank by the inner-join cardinality approximation; the
				// real operator is recovered when the pair is emitted.
				hi, iok := e.Lookup(comps[i])
				hj, jok := e.Lookup(comps[j])
				if !iok || !jok {
					panic("goo: component without a memo entry")
				}
				ciCard, _ := e.PlanInfo(hi)
				cjCard, _ := e.PlanInfo(hj)
				card := cost.EstimateCard(algebra.Join, ciCard, cjCard,
					g.SelectivityBetween(comps[i], comps[j]))
				if bestI < 0 || card < bestCard {
					bestI, bestJ, bestCard = i, j, card
				}
			}
		}
		if bestI < 0 {
			return errDisconnected
		}
		s1, s2 := comps[bestI], comps[bestJ]
		if s1.Min() < s2.Min() {
			e.EmitPair(s1, s2)
		} else {
			e.EmitPair(s2, s1)
		}
		merged := s1.Union(s2)
		if !e.Contains(merged) {
			if err := e.Aborted(); err != nil {
				return err
			}
			// The only candidate pair was rejected (dependency or
			// filter); greedy has no alternative to fall back to.
			return errRejected
		}
		comps[bestI] = merged
		comps = append(comps[:bestJ], comps[bestJ+1:]...)
	}
	return nil
}

type solverError string

func (e solverError) Error() string { return string(e) }

const (
	errEmpty        = solverError("goo: empty hypergraph")
	errDisconnected = solverError("goo: hypergraph is disconnected")
	errRejected     = solverError("goo: greedy choice rejected; no plan")
)
