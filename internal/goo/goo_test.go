package goo

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hypergraph"
	"repro/internal/workload"
)

func TestGreedyFindsValidPlans(t *testing.T) {
	cfg := workload.DefaultConfig()
	for _, g := range []*hypergraph.Graph{
		workload.Chain(8, cfg),
		workload.Cycle(8, cfg),
		workload.Star(8, cfg),
		workload.Clique(7, cfg),
		hypergraph.PaperExampleGraph(),
	} {
		p, _, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Rels.Equal(g.AllNodes()) {
			t.Error("incomplete plan")
		}
		if err := p.Validate(); err != nil {
			t.Error(err)
		}
	}
}

// Greedy cost must never beat the exact optimum, and should be close on
// benign graphs.
func TestGreedyNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	cfg := workload.DefaultConfig()
	for trial := 0; trial < 40; trial++ {
		g := workload.RandomHyper(rng, 3+rng.Intn(7), rng.Intn(3), cfg)
		greedy, _, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt, _, err := core.Solve(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Cost < opt.Cost*(1-1e-9) {
			t.Errorf("trial %d: greedy cost %g beats optimal %g", trial, greedy.Cost, opt.Cost)
		}
	}
}

// Greedy handles sizes far beyond exact DP.
func TestGreedyScales(t *testing.T) {
	g := workload.Chain(60, workload.DefaultConfig())
	p, _, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Relations() != 60 {
		t.Error("incomplete plan")
	}
}

func TestGreedyErrors(t *testing.T) {
	if _, _, err := Solve(hypergraph.New(), Options{}); err == nil {
		t.Error("empty graph must fail")
	}
	g := hypergraph.New()
	g.AddRelations(2, "R", 10)
	if _, _, err := Solve(g, Options{}); err == nil {
		t.Error("disconnected graph must fail")
	}
}
