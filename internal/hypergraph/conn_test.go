package hypergraph

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// TestConnectedSetHypernodeNotSubsumed pins the case that separates
// Definition-3 connectivity from naive hypernode BFS: with the single
// edge ({b,c},{a}), the set {a,b,c} is NOT connected — no partition has
// both halves connected — even though a BFS that absorbs whole
// hypernodes would reach every node.
func TestConnectedSetHypernodeNotSubsumed(t *testing.T) {
	g := New()
	g.AddRelations(3, "R", 10)
	g.AddEdge(Edge{U: bitset.New(1, 2), V: bitset.New(0), Sel: 0.5})
	var sc ConnScratch
	if g.ConnectedSet(bitset.New(0, 1, 2), &sc) {
		t.Fatal("ConnectedSet({a,b,c}) = true; hyperedge ({b,c},{a}) alone must not connect it")
	}
	if g.IsConnected(bitset.New(0, 1, 2)) {
		t.Fatal("oracle disagrees: IsConnected should be false too")
	}
	// Adding the inner edge (b,c) makes {b,c} connected and the partition
	// {a} | {b,c} a valid Definition-3 witness.
	g.AddSimpleEdge(1, 2, 0.5)
	if !g.ConnectedSet(bitset.New(0, 1, 2), &sc) {
		t.Fatal("ConnectedSet({a,b,c}) = false after adding edge (b,c)")
	}
}

// TestConnectedSetMatchesOracle property-tests ConnectedSet against the
// recursive Definition-3 oracle IsConnected over random hypergraphs —
// simple edges, hyperedges, and generalized (u,v,w) edges — for every
// subset of the node set.
func TestConnectedSetMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2008))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(6) // 2..7 relations: 2^n subsets stay cheap
		g := New()
		g.AddRelations(n, "R", float64(10+rng.Intn(1000)))
		edges := 1 + rng.Intn(2*n)
		for e := 0; e < edges; e++ {
			switch rng.Intn(3) {
			case 0: // simple edge
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					g.AddSimpleEdge(a, b, 0.1+0.8*rng.Float64())
				}
			case 1: // hyperedge
				u, v := randHypernode(rng, n), randHypernode(rng, n)
				if !u.Overlaps(v) {
					g.AddEdge(Edge{U: u, V: v, Sel: 0.1 + 0.8*rng.Float64()})
				}
			default: // generalized edge with a free side
				u, v, w := randHypernode(rng, n), randHypernode(rng, n), randHypernode(rng, n)
				if !u.Overlaps(v) && !u.Overlaps(w) && !v.Overlaps(w) {
					g.AddEdge(Edge{U: u, V: v, W: w, Sel: 0.1 + 0.8*rng.Float64()})
				}
			}
		}
		g.Freeze()
		var sc ConnScratch
		all := g.AllNodes()
		for S := bitset.Empty.NextSubset(all); ; S = S.NextSubset(all) {
			want := g.IsConnected(S)
			if got := g.ConnectedSet(S, &sc); got != want {
				t.Fatalf("trial %d: ConnectedSet(%v) = %v, IsConnected = %v\n%v",
					trial, S, got, want, g)
			}
			if S.Equal(all) {
				break
			}
		}
	}
}

func randHypernode(rng *rand.Rand, n int) bitset.Set {
	s := bitset.Single(rng.Intn(n))
	for rng.Intn(3) == 0 {
		s = s.Add(rng.Intn(n))
	}
	return s
}

func BenchmarkConnectedSet(b *testing.B) {
	g := New()
	g.AddRelations(12, "R", 100)
	for i := 0; i < 11; i++ {
		g.AddSimpleEdge(i, i+1, 0.5)
	}
	g.AddEdge(Edge{U: bitset.New(0, 3), V: bitset.New(7, 9), Sel: 0.5})
	g.Freeze()
	var sc ConnScratch
	S := bitset.Range(0, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !g.ConnectedSet(S, &sc) {
			b.Fatal("expected connected")
		}
	}
}
