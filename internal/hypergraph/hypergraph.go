// Package hypergraph implements the query hypergraphs of "Dynamic
// Programming Strikes Back" (Moerkotte & Neumann, SIGMOD 2008).
//
// A hypergraph H = (V,E) has relations as nodes and join predicates as
// edges. A hyperedge is an unordered pair (u,v) of non-empty, disjoint
// hypernodes (Definition 1); a generalized hyperedge (Definition 6) is a
// triple (u,v,w) where the relations in w may appear on either side of
// the join. Nodes are totally ordered by their index; the ordering drives
// duplicate avoidance in the enumeration algorithms.
//
// The package provides the neighborhood computation N(S,X) of §2.3
// (Equation 1), including the elimination of subsumed hypernodes
// (E↓(S,X)), connectivity predicates for csg-cmp-pair tests, a
// Definition-3 connectivity oracle for validation, and connectivity
// repair by cross hyperedges (§2.1).
package hypergraph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/algebra"
	"repro/internal/bitset"
)

// Relation is a node of the hypergraph: a base relation with an estimated
// cardinality used by the cost model.
//
// Free is non-empty for dependent relations (§5.1/§5.6): table-valued
// expressions such as S(R) whose evaluation references attributes of the
// relations in Free. Base tables have Free = ∅.
type Relation struct {
	Name string
	Card float64
	Free bitset.Set
}

// Edge is a (possibly generalized) hyperedge. U and V are the two
// hypernodes; W is the optional set of "free side" relations of
// Definition 6 that may appear on either side of the join (empty for
// ordinary hyperedges). U, V, W must be non-empty (W may be empty),
// pairwise disjoint subsets of the node set.
//
// Each edge additionally carries the information the plan generator
// needs: the selectivity of the represented predicate, the operator the
// edge was derived from (§5.4 attaches the originating operator so that
// EmitCsgCmp can rebuild non-commutative plans), and an optional label
// and payload for predicate bookkeeping by higher layers.
//
// For edges derived from non-commutative operators, U is the hypernode
// that must appear on the *left* of the operator and V the one on the
// right (§5.7: r = TES(∘) ∩ T(right(∘)), l = TES(∘) ∖ r).
type Edge struct {
	U, V, W bitset.Set
	Sel     float64
	Op      algebra.Op
	Label   string
	Payload any
}

// Simple reports whether the edge is simple: |U| = |V| = 1 and W = ∅
// (Definitions 1 and 6).
func (e *Edge) Simple() bool {
	return e.W.IsEmpty() && e.U.IsSingleton() && e.V.IsSingleton()
}

// Nodes returns all nodes the edge touches: U ∪ V ∪ W.
func (e *Edge) Nodes() bitset.Set { return e.U.Union(e.V).Union(e.W) }

// Graph is a query hypergraph under construction or in use. The zero
// value is an empty graph; add relations and edges, then hand it to an
// enumerator. Graphs are not safe for concurrent mutation; after a call
// to Freeze (which the Planner performs before enumeration) concurrent
// readers are safe as long as no further mutations happen.
type Graph struct {
	rels  []Relation
	edges []Edge

	// mu guards the lazily built state (derived indexes, connectivity
	// memo) so that Freeze and the Definition-3 oracle can be used from
	// concurrent readers. The relations and edges themselves are only
	// written by the single-threaded construction phase.
	mu sync.Mutex

	// Derived indexes, rebuilt lazily after mutations.
	dirty           bool
	simpleNeighbors []bitset.Set // node -> union of simple-edge partners
	complexEdges    []int        // indices of non-simple edges

	// Definition-3 connectivity memo, invalidated on mutation.
	// Keyed by Set.Key (Set itself is not a valid map key).
	connMemo map[string]bool
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddRelation appends a relation and returns its node index. Cardinality
// must be positive. Node indices determine the total order ≺ of §2.1.
func (g *Graph) AddRelation(name string, card float64) int {
	if len(g.rels) >= bitset.MaxElems {
		panic(fmt.Sprintf("hypergraph: more than %d relations", bitset.MaxElems))
	}
	if card <= 0 {
		panic(fmt.Sprintf("hypergraph: relation %q has non-positive cardinality %g", name, card))
	}
	g.rels = append(g.rels, Relation{Name: name, Card: card})
	g.invalidate()
	return len(g.rels) - 1
}

// AddRelations adds n relations named prefix0..prefix(n-1) with the given
// uniform cardinality and returns the index of the first.
func (g *Graph) AddRelations(n int, prefix string, card float64) int {
	first := len(g.rels)
	for i := 0; i < n; i++ {
		g.AddRelation(fmt.Sprintf("%s%d", prefix, i), card)
	}
	return first
}

// AddEdge validates and appends an edge, returning its index.
func (g *Graph) AddEdge(e Edge) int {
	all := g.AllNodes()
	if e.U.IsEmpty() || e.V.IsEmpty() {
		panic("hypergraph: hyperedge hypernodes must be non-empty (Definition 1)")
	}
	if !e.U.SubsetOf(all) || !e.V.SubsetOf(all) || !e.W.SubsetOf(all) {
		panic("hypergraph: edge references unknown relations")
	}
	if e.U.Overlaps(e.V) || e.U.Overlaps(e.W) || e.V.Overlaps(e.W) {
		panic("hypergraph: u, v, w must be pairwise disjoint")
	}
	if e.Sel <= 0 || e.Sel > 1 {
		panic(fmt.Sprintf("hypergraph: selectivity %g outside (0,1]", e.Sel))
	}
	if e.Op == algebra.InvalidOp {
		e.Op = algebra.Join
	}
	g.edges = append(g.edges, e)
	g.invalidate()
	return len(g.edges) - 1
}

// AddSimpleEdge adds an ordinary binary inner-join edge between relations
// a and b with the given selectivity and returns its index.
func (g *Graph) AddSimpleEdge(a, b int, sel float64) int {
	return g.AddEdge(Edge{U: bitset.Single(a), V: bitset.Single(b), Sel: sel})
}

// SetFree marks relation rel as a dependent expression whose free
// variables reference the relations in free (§5.6). It panics if rel
// would depend on itself.
func (g *Graph) SetFree(rel int, free bitset.Set) {
	if free.Has(rel) {
		panic("hypergraph: relation cannot depend on itself")
	}
	if !free.SubsetOf(g.AllNodes()) {
		panic("hypergraph: free set references unknown relations")
	}
	g.rels[rel].Free = free
}

// FreeTables returns FT(S): the tables referenced freely by the
// expressions of the relations in S that are not themselves in S. A plan
// for S can only be evaluated once all of FT(S) is bound by the left
// argument of an enclosing dependent join (§5.6).
func (g *Graph) FreeTables(S bitset.Set) bitset.Set {
	var ft bitset.Set
	for i := S.NextElem(0); i >= 0; i = S.NextElem(i + 1) {
		ft = ft.Union(g.rels[i].Free)
	}
	return ft.Minus(S)
}

// NumRels returns |V|.
func (g *Graph) NumRels() int { return len(g.rels) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Relation returns the i-th relation.
func (g *Graph) Relation(i int) Relation { return g.rels[i] }

// Edge returns a pointer to the i-th edge. The pointer stays valid until
// the next AddEdge.
func (g *Graph) Edge(i int) *Edge { return &g.edges[i] }

// AllNodes returns the full node set V.
func (g *Graph) AllNodes() bitset.Set { return bitset.Full(len(g.rels)) }

func (g *Graph) invalidate() {
	g.dirty = true
	g.connMemo = nil
}

// Freeze eagerly builds the derived indexes under the graph's lock.
// Call it once before handing the graph to concurrent enumerations: the
// index build is the only write the read path would otherwise perform
// lazily, so a frozen, no-longer-mutated graph is safe for any number of
// concurrent readers. (Goroutines observing the clean index state via
// Freeze's mutex inherit the necessary happens-before edge.)
func (g *Graph) Freeze() {
	g.mu.Lock()
	g.ensureIndex()
	g.mu.Unlock()
}

//dp:coldpath index rebuild runs once per graph mutation, guarded by g.dirty
func (g *Graph) ensureIndex() {
	if !g.dirty && g.simpleNeighbors != nil {
		return
	}
	g.simpleNeighbors = make([]bitset.Set, len(g.rels))
	g.complexEdges = g.complexEdges[:0]
	for i := range g.edges {
		e := &g.edges[i]
		if e.Simple() {
			a, b := e.U.Min(), e.V.Min()
			g.simpleNeighbors[a] = g.simpleNeighbors[a].Add(b)
			g.simpleNeighbors[b] = g.simpleNeighbors[b].Add(a)
		} else {
			g.complexEdges = append(g.complexEdges, i)
		}
	}
	g.dirty = false
}

// CandidateHypernodes returns E↓(S,X): the ⊆-minimal hypernodes v such
// that some edge (u,v) has u ⊆ S, v ∩ S = ∅, v ∩ X = ∅ (§2.3). For
// generalized edges (u,v,w) with u ⊆ S the candidate is v ∪ (w∖S) per §6.
// Exposed for tests and for the counting package; the hot path is
// Neighborhood.
func (g *Graph) CandidateHypernodes(S, X bitset.Set) []bitset.Set {
	g.ensureIndex()
	forbidden := S.Union(X)

	var cands []bitset.Set
	// Simple edges produce singleton candidates, which are minimal by
	// construction.
	var singles bitset.Set
	S.ForEach(func(i int) {
		singles = singles.Union(g.simpleNeighbors[i])
	})
	singles = singles.Minus(forbidden)
	singles.ForEach(func(b int) {
		cands = append(cands, bitset.Single(b))
	})

	for _, ei := range g.complexEdges {
		e := &g.edges[ei]
		for flip := 0; flip < 2; flip++ {
			u, v := e.U, e.V
			if flip == 1 {
				u, v = v, u
			}
			if !u.SubsetOf(S) || v.Overlaps(S) {
				continue
			}
			cand := v.Union(e.W.Minus(S))
			if cand.Overlaps(forbidden) {
				continue
			}
			cands = append(cands, cand)
		}
	}
	return minimalHypernodes(cands)
}

// candLess orders candidate hypernodes by cardinality, then canonically.
func candLess(a, b bitset.Set) bool {
	la, lb := a.Len(), b.Len()
	if la != lb {
		return la < lb
	}
	return a.Less(b)
}

// minimalHypernodes removes duplicates and any hypernode that is a strict
// superset of another candidate ("Define E↓(S,X) to be the minimal set of
// hypernodes such that for all v ∈ E↓'(S,X) there exists a hypernode v'
// in E↓(S,X) such that v' ⊆ v", §2.3).
func minimalHypernodes(cands []bitset.Set) []bitset.Set {
	if len(cands) <= 1 {
		return cands
	}
	// Sorting by cardinality lets each candidate be checked only against
	// smaller ones. Candidate lists are bounded by the edge count and
	// typically tiny, so an insertion sort beats sort.Slice here — and
	// unlike sort.Slice it neither boxes the slice nor allocates the
	// comparison closure (this runs on the DPhyp/DPccp neighborhood hot
	// path).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && candLess(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	out := cands[:0]
	for _, c := range cands {
		subsumed := false
		for _, m := range out {
			if m.SubsetOf(c) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out = append(out, c)
		}
	}
	return out
}

// Neighborhood computes N(S,X) of Equation 1: the union of min(v) over
// all v in E↓(S,X). The returned set contains one representative node per
// minimal candidate hypernode; the remaining nodes of a hypernode are
// reached through recursive growth and validated against the DP table, as
// described in §3 ("the algorithm therefore picks a canonical end node").
func (g *Graph) Neighborhood(S, X bitset.Set) bitset.Set {
	return g.neighborhoodFrom(S, X, g.SimpleNeighborUnion(S), nil)
}

// NeighborScratch holds the candidate buffer NeighborhoodWith reuses
// across calls, removing the per-call allocation that dominates the
// DPhyp neighborhood computation on hypergraph workloads. Each
// enumeration goroutine owns its own scratch.
type NeighborScratch struct {
	cands []bitset.Set
}

// SimpleNeighborUnion returns the union of the simple-edge partners of
// every node in S, before any forbidden-set filtering. DPhyp maintains
// this union incrementally while growing subgraphs — extending S by n
// only needs the union over n — and passes it to NeighborhoodWith,
// replacing the O(|S|) per-call recomputation inside Neighborhood.
func (g *Graph) SimpleNeighborUnion(S bitset.Set) bitset.Set {
	g.ensureIndex()
	var su bitset.Set
	for i := S.NextElem(0); i >= 0; i = S.NextElem(i + 1) {
		su = su.Union(g.simpleNeighbors[i])
	}
	return su
}

// NeighborhoodWith computes N(S,X) like Neighborhood, given the
// precomputed SimpleNeighborUnion of S and a reusable candidate
// buffer. It is the allocation-free hot path of the DPhyp enumeration.
func (g *Graph) NeighborhoodWith(S, X, su bitset.Set, sc *NeighborScratch) bitset.Set {
	g.ensureIndex()
	return g.neighborhoodFrom(S, X, su, sc)
}

func (g *Graph) neighborhoodFrom(S, X, su bitset.Set, sc *NeighborScratch) bitset.Set {
	forbidden := S.Union(X)
	n := su.Minus(forbidden)

	if len(g.complexEdges) == 0 {
		return n
	}

	// Complex candidates, filtered against the singleton candidates and
	// each other for ⊆-minimality.
	var cands []bitset.Set
	if sc != nil {
		cands = sc.cands[:0]
	}
	for _, ei := range g.complexEdges {
		e := &g.edges[ei]
		for flip := 0; flip < 2; flip++ {
			u, v := e.U, e.V
			if flip == 1 {
				u, v = v, u
			}
			if !u.SubsetOf(S) || v.Overlaps(S) {
				continue
			}
			cand := v.Union(e.W.Minus(S))
			if cand.Overlaps(forbidden) {
				continue
			}
			if cand.IsSingleton() {
				n = n.Union(cand)
				continue
			}
			if cand.Overlaps(n) {
				// Subsumed by a singleton candidate.
				continue
			}
			cands = append(cands, cand)
		}
	}
	if sc != nil {
		sc.cands = cands[:0] // keep grown storage for the next call
	}
	if len(cands) > 0 {
		for _, c := range minimalHypernodes(cands) {
			if c.Overlaps(n) {
				// A singleton added after the candidate was collected may
				// subsume it.
				continue
			}
			n = n.Union(c.MinSet())
		}
	}
	return n
}

// ConnectsTo reports whether some edge connects disjoint hypernodes S1
// and S2: ∃(u,v,w) ∈ E with u ⊆ S1, v ⊆ S2, w ⊆ S1∪S2 or the symmetric
// orientation (Definitions 4 and 7).
func (g *Graph) ConnectsTo(S1, S2 bitset.Set) bool {
	both := S1.Union(S2)
	for i := range g.edges {
		e := &g.edges[i]
		if !e.W.SubsetOf(both) {
			continue
		}
		if (e.U.SubsetOf(S1) && e.V.SubsetOf(S2)) ||
			(e.U.SubsetOf(S2) && e.V.SubsetOf(S1)) {
			return true
		}
	}
	return false
}

// HasEdgeInto reports whether some edge leads from S1 into S2 in the
// orientation-sensitive sense used by EmitCsg: ∃(u,v) ∈ E with u ⊆ S1 and
// v ⊆ S2 (either stored orientation qualifies, since hyperedges are
// unordered pairs).
func (g *Graph) HasEdgeInto(S1, S2 bitset.Set) bool { return g.ConnectsTo(S1, S2) }

// EachConnectingEdge calls f for every edge that connects S1 and S2,
// passing the edge index and whether the edge's stored (U,V) orientation
// is flipped relative to (S1,S2) — that is, flipped is true when U ⊆ S2.
// Orientation matters for edges derived from non-commutative operators
// (§5.4).
func (g *Graph) EachConnectingEdge(S1, S2 bitset.Set, f func(idx int, flipped bool)) {
	both := S1.Union(S2)
	for i := range g.edges {
		e := &g.edges[i]
		if !e.W.SubsetOf(both) {
			continue
		}
		switch {
		case e.U.SubsetOf(S1) && e.V.SubsetOf(S2):
			f(i, false)
		case e.U.SubsetOf(S2) && e.V.SubsetOf(S1):
			f(i, true)
		}
	}
}

// SelectivityBetween returns the product of the selectivities of all
// edges connecting S1 and S2. Every edge is counted at exactly one join
// of any operator tree (the join where its endpoints first appear on
// opposite sides), which makes cardinality estimates independent of the
// join order.
func (g *Graph) SelectivityBetween(S1, S2 bitset.Set) float64 {
	sel := 1.0
	//nolint:hotpathalloc // EachConnectingEdge does not retain the callback, so it stays on the stack
	g.EachConnectingEdge(S1, S2, func(idx int, _ bool) {
		sel *= g.edges[idx].Sel
	})
	return sel
}

// IsConnected implements the recursive connectivity test of Definition 3:
// S is connected iff |S| = 1 or there is a partition S = V' ∪ V” bridged
// by an edge with both halves connected. Results are memoized until the
// graph is mutated. This is exponential in |S| and exists as a
// correctness oracle for tests and search-space accounting; the
// enumeration algorithms never call it (they use DP-table lookups
// instead, §3.2).
func (g *Graph) IsConnected(S bitset.Set) bool {
	if S.IsEmpty() {
		return false
	}
	if S.IsSingleton() {
		return true
	}
	g.mu.Lock()
	if g.connMemo == nil {
		g.connMemo = make(map[string]bool)
	}
	key := S.Key()
	v, ok := g.connMemo[key]
	g.mu.Unlock()
	if ok {
		return v
	}
	// Fix min(S) ∈ V' to avoid checking each partition twice.
	res := false
	rest := S.MinusMin()
	lo := S.MinSet()
	// Enumerate subsets A of rest; V' = lo ∪ A, V'' = S ∖ V'.
	// A may be empty (V' = {min}), but V'' must be non-empty, so A ⊂ rest.
	for a := bitset.Empty; ; a = a.NextSubset(rest) {
		v1 := lo.Union(a)
		v2 := S.Minus(v1)
		if !v2.IsEmpty() &&
			g.ConnectsTo(v1, v2) && g.IsConnected(v1) && g.IsConnected(v2) {
			res = true
			break
		}
		if a.Equal(rest) {
			break
		}
	}
	g.mu.Lock()
	g.connMemo[key] = res
	g.mu.Unlock()
	return res
}

// ConnScratch holds the reusable union-find state of ConnectedSet so
// repeated tests are allocation-free after the first call. Each
// goroutine owns its own scratch; the zero value is ready to use.
type ConnScratch struct {
	comp []int32
}

// ConnectedSet reports whether S is connected in the Definition-3 sense,
// agreeing with IsConnected on every input (property-tested), but
// iteratively and in polynomial time: a simple-edge BFS from min(S)
// decides simple graphs outright, and a union-find fixpoint over the
// edges induced in S handles hyperedges. A hyperedge (u,v,w) may merge
// two components A and B only when u lies within A, v within B, and w
// within A ∪ B — exactly the condition under which the edge witnesses a
// Definition-3 partition of A ∪ B, so every component the fixpoint forms
// is Definition-3 connected and no false positives arise. It is the
// structural membership test of the parallel enumeration spines, which
// cannot consult the DP table mid-level: under the dp.ParallelSafe
// admissibility precheck, table membership is equivalent to Definition-3
// connectivity.
//
// Safe for concurrent readers of a frozen graph; unlike IsConnected it
// takes no lock and builds no memo (callers cache results per worker).
//
//dp:hotpath
func (g *Graph) ConnectedSet(S bitset.Set, sc *ConnScratch) bool {
	if S.IsEmpty() {
		return false
	}
	if S.IsSingleton() {
		return true
	}
	g.ensureIndex()

	// Fast path: grow the component of min(S) along simple edges. On
	// simple graphs Definition 3 degenerates to ordinary graph
	// connectivity, so this alone decides the answer.
	C := S.MinSet()
	for {
		nb := g.SimpleNeighborUnion(C).Intersect(S).Minus(C)
		if nb.IsEmpty() {
			break
		}
		C = C.Union(nb)
	}
	if C.Equal(S) {
		return true
	}
	if len(g.complexEdges) == 0 {
		return false
	}
	return g.connectedSetHyper(S, C, sc)
}

// connectedSetHyper is ConnectedSet's general case: union-find to
// fixpoint, seeded with the simple-edge component C of min(S). Only
// edges fully inside S participate (Definition 3 restricts partition
// witnesses to the induced sub-hypergraph).
//
//dp:coldpath runs only on graphs with complex edges, and the parallel spines cache the verdict per worker so each set pays it once; the union-find closures stay off the simple-graph hot path
func (g *Graph) connectedSetHyper(S, C bitset.Set, sc *ConnScratch) bool {
	n := len(g.rels)
	if cap(sc.comp) < n {
		sc.comp = make([]int32, n)
	}
	comp := sc.comp[:n]
	S.ForEach(func(i int) { comp[i] = int32(i) })
	root := int32(C.Min())
	C.ForEach(func(i int) { comp[i] = root })
	comps := S.Len() - C.Len() + 1

	find := func(x int32) int32 {
		for comp[x] != x {
			comp[x] = comp[comp[x]] // path halving
			x = comp[x]
		}
		return x
	}
	// sameComp reports whether every node of hypernode h currently lies
	// in one component, returning its root.
	sameComp := func(h bitset.Set) (int32, bool) {
		r := find(int32(h.Min()))
		ok := true
		h.ForEach(func(x int) {
			if find(int32(x)) != r {
				ok = false
			}
		})
		return r, ok
	}

	for changed := true; changed && comps > 1; {
		changed = false
		for i := range g.edges {
			e := &g.edges[i]
			if !e.U.SubsetOf(S) || !e.V.SubsetOf(S) || !e.W.SubsetOf(S) {
				continue
			}
			ra, ok := sameComp(e.U)
			if !ok {
				continue
			}
			rb, ok := sameComp(e.V)
			if !ok || ra == rb {
				continue
			}
			if !e.W.IsEmpty() {
				wok := true
				e.W.ForEach(func(x int) {
					if r := find(int32(x)); r != ra && r != rb {
						wok = false
					}
				})
				if !wok {
					continue
				}
			}
			comp[rb] = ra
			comps--
			changed = true
		}
	}
	return comps == 1
}

// Components partitions the node set into reachability components, where
// an edge links every node it touches (U ∪ V ∪ W). Two nodes in different
// components are certainly not connected in the Definition-3 sense; this
// is the partition the connectivity repair of §2.1 operates on.
func (g *Graph) Components() []bitset.Set {
	n := len(g.rels)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := range g.edges {
		nodes := g.edges[i].Nodes()
		first := nodes.Min()
		nodes.ForEach(func(e int) { union(first, e) })
	}
	byRoot := map[int]bitset.Set{}
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = byRoot[r].Add(i)
	}
	sort.Ints(roots)
	out := make([]bitset.Set, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// MakeConnected applies the connectivity repair of §2.1: "for every pair
// of connected components, we can add a hyperedge whose hypernodes
// contain exactly the relations of the connected components", interpreted
// as ⨯ operators with selectivity 1. It returns the number of edges
// added.
func (g *Graph) MakeConnected() int {
	comps := g.Components()
	added := 0
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			g.AddEdge(Edge{
				U:     comps[i],
				V:     comps[j],
				Sel:   1,
				Op:    algebra.Join,
				Label: "cross",
			})
			added++
		}
	}
	return added
}

// String renders a compact description of the graph.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hypergraph: %d relations, %d edges\n", len(g.rels), len(g.edges))
	for i, r := range g.rels {
		fmt.Fprintf(&b, "  R%d %s |%g|\n", i, r.Name, r.Card)
	}
	for i := range g.edges {
		e := &g.edges[i]
		fmt.Fprintf(&b, "  e%d: %v -- %v", i, e.U, e.V)
		if !e.W.IsEmpty() {
			fmt.Fprintf(&b, " free %v", e.W)
		}
		fmt.Fprintf(&b, " sel=%g op=%s", e.Sel, e.Op)
		if e.Label != "" {
			fmt.Fprintf(&b, " (%s)", e.Label)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot renders the hypergraph in Graphviz format. Simple edges become
// plain edges; hyperedges become a box node connected to both hypernodes'
// members.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("graph query {\n  node [shape=circle];\n")
	for i, r := range g.rels {
		fmt.Fprintf(&b, "  R%d [label=\"%s\"];\n", i, r.Name)
	}
	for i := range g.edges {
		e := &g.edges[i]
		if e.Simple() {
			fmt.Fprintf(&b, "  R%d -- R%d;\n", e.U.Min(), e.V.Min())
			continue
		}
		fmt.Fprintf(&b, "  he%d [shape=box,label=\"%s\"];\n", i, e.Op.Symbol())
		e.U.ForEach(func(n int) { fmt.Fprintf(&b, "  R%d -- he%d [style=solid];\n", n, i) })
		e.V.ForEach(func(n int) { fmt.Fprintf(&b, "  he%d -- R%d [style=solid];\n", i, n) })
		e.W.ForEach(func(n int) { fmt.Fprintf(&b, "  he%d -- R%d [style=dashed];\n", i, n) })
	}
	b.WriteString("}\n")
	return b.String()
}

// Fingerprint returns a canonical, collision-free key describing
// everything about the graph that influences plan choice: the relation
// cardinalities and free sets, and for every edge its hypernodes,
// selectivity, and operator, in stored order. Labels, payloads, and
// relation names are display/execution metadata and are excluded, so two
// structurally identical queries share a fingerprint and can share a
// cached plan. Edge order is part of the key because plans reference
// edges by index.
func (g *Graph) Fingerprint() string {
	var b []byte
	b = strconv.AppendInt(b, int64(len(g.rels)), 10)
	for i := range g.rels {
		r := &g.rels[i]
		b = append(b, '|')
		b = strconv.AppendFloat(b, r.Card, 'b', -1, 64)
		if !r.Free.IsEmpty() {
			b = append(b, '~')
			b = r.Free.AppendHex(b)
		}
	}
	for i := range g.edges {
		e := &g.edges[i]
		b = append(b, ';')
		b = e.U.AppendHex(b)
		b = append(b, ',')
		b = e.V.AppendHex(b)
		b = append(b, ',')
		b = e.W.AppendHex(b)
		b = append(b, ':')
		b = strconv.AppendFloat(b, e.Sel, 'b', -1, 64)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(e.Op), 10)
	}
	return string(b)
}

// Clone returns a deep copy of the graph (edges share payload pointers).
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		rels:  append([]Relation(nil), g.rels...),
		edges: append([]Edge(nil), g.edges...),
	}
	ng.invalidate()
	return ng
}

// PaperExampleGraph builds the hypergraph of Figure 2: six relations,
// simple edges R1–R2, R2–R3, R4–R5, R5–R6, and the hyperedge
// ({R1,R2,R3},{R4,R5,R6}). Node indices are shifted down by one (the
// paper's R1 is node 0). Used by tests and the complexpredicate example.
func PaperExampleGraph() *Graph {
	g := New()
	for i := 1; i <= 6; i++ {
		g.AddRelation(fmt.Sprintf("R%d", i), 100)
	}
	g.AddSimpleEdge(0, 1, 0.1) // R1-R2
	g.AddSimpleEdge(1, 2, 0.1) // R2-R3
	g.AddSimpleEdge(3, 4, 0.1) // R4-R5
	g.AddSimpleEdge(4, 5, 0.1) // R5-R6
	g.AddEdge(Edge{
		U:     bitset.New(0, 1, 2),
		V:     bitset.New(3, 4, 5),
		Sel:   0.05,
		Label: "R1.a+R2.b+R3.c = R4.d+R5.e+R6.f",
	})
	return g
}
