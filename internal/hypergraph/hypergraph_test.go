package hypergraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
	"repro/internal/bitset"
)

// fromBits builds a Set from a word-0 bit pattern, for quick.Check
// properties that generate random masks as integers.
func fromBits(raw uint64) bitset.Set {
	var s bitset.Set
	for e := 0; e < 64; e++ {
		if raw&(1<<uint(e)) != 0 {
			s = s.Add(e)
		}
	}
	return s
}

func chain(n int) *Graph {
	g := New()
	g.AddRelations(n, "R", 100)
	for i := 0; i+1 < n; i++ {
		g.AddSimpleEdge(i, i+1, 0.1)
	}
	return g
}

func TestAddRelationValidation(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Error("non-positive cardinality must panic")
		}
	}()
	g.AddRelation("bad", 0)
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	g.AddRelations(4, "R", 10)
	cases := []struct {
		name string
		e    Edge
	}{
		{"empty u", Edge{U: bitset.Empty, V: bitset.New(1), Sel: 0.5}},
		{"empty v", Edge{U: bitset.New(0), V: bitset.Empty, Sel: 0.5}},
		{"overlap uv", Edge{U: bitset.New(0, 1), V: bitset.New(1, 2), Sel: 0.5}},
		{"overlap uw", Edge{U: bitset.New(0), V: bitset.New(1), W: bitset.New(0), Sel: 0.5}},
		{"unknown rel", Edge{U: bitset.New(0), V: bitset.New(9), Sel: 0.5}},
		{"bad sel", Edge{U: bitset.New(0), V: bitset.New(1), Sel: 0}},
		{"sel > 1", Edge{U: bitset.New(0), V: bitset.New(1), Sel: 1.5}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			g.AddEdge(c.e)
		}()
	}
}

func TestEdgeDefaultsToInnerJoin(t *testing.T) {
	g := New()
	g.AddRelations(2, "R", 10)
	i := g.AddEdge(Edge{U: bitset.New(0), V: bitset.New(1), Sel: 0.5})
	if g.Edge(i).Op != algebra.Join {
		t.Errorf("default op = %v, want join", g.Edge(i).Op)
	}
}

func TestSimple(t *testing.T) {
	e := Edge{U: bitset.New(0), V: bitset.New(1)}
	if !e.Simple() {
		t.Error("binary edge must be simple")
	}
	e2 := Edge{U: bitset.New(0, 1), V: bitset.New(2)}
	if e2.Simple() {
		t.Error("hyperedge must not be simple")
	}
	e3 := Edge{U: bitset.New(0), V: bitset.New(1), W: bitset.New(2)}
	if e3.Simple() {
		t.Error("generalized edge must not be simple (Definition 6)")
	}
}

// TestNeighborhoodPaperExample replays the neighborhood computations that
// §2.3 works through on the Figure 2 hypergraph. Paper relations R1..R6
// are nodes 0..5 here.
func TestNeighborhoodPaperExample(t *testing.T) {
	g := PaperExampleGraph()

	// "For our hypergraph in Fig. 2 and with X = S = {R1,R2,R3}, we have
	// E↓(S,X) = {{R4,R5,R6}}."
	S := bitset.New(0, 1, 2)
	cands := g.CandidateHypernodes(S, S)
	if len(cands) != 1 || !cands[0].Equal(bitset.New(3, 4, 5)) {
		t.Fatalf("E↓ = %v, want [{R4,R5,R6}]", cands)
	}

	// "...we have N(S,X) = {R4}."
	if n := g.Neighborhood(S, S); !n.Equal(bitset.New(3)) {
		t.Errorf("N(S,X) = %v, want {R4} (node 3)", n)
	}

	// From the trace discussion in §3.2: for S1 = {R2} with R1 forbidden,
	// the neighborhood consists only of {R3}.
	if n := g.Neighborhood(bitset.New(1), bitset.New(0, 1)); !n.Equal(bitset.New(2)) {
		t.Errorf("N({R2}, {R1,R2}) = %v, want {R3}", n)
	}

	// From §3.4: for S2 = {R4} with X = {R1,R2,R3} ∪ B_{R1}, the
	// neighborhood is {R5}.
	if n := g.Neighborhood(bitset.New(3), bitset.New(0, 1, 2)); !n.Equal(bitset.New(4)) {
		t.Errorf("N({R4}, ...) = %v, want {R5}", n)
	}
}

func TestMinRepresentativePaperExample(t *testing.T) {
	// §2.3: with S = {R4,R5,R6}: min(S) = {R4}, min̄(S) = {R5,R6}.
	S := bitset.New(3, 4, 5)
	if !S.MinSet().Equal(bitset.New(3)) {
		t.Errorf("min(S) = %v", S.MinSet())
	}
	if !S.MinusMin().Equal(bitset.New(4, 5)) {
		t.Errorf("min̄(S) = %v", S.MinusMin())
	}
}

func TestNeighborhoodSubsumption(t *testing.T) {
	// A hyperedge whose target hypernode is a superset of a
	// simple-neighbor singleton must be dropped from E↓ (subsumed).
	g := New()
	g.AddRelations(4, "R", 10)
	g.AddSimpleEdge(0, 1, 0.5)                                       // candidate {R1}
	g.AddEdge(Edge{U: bitset.New(0), V: bitset.New(1, 2), Sel: 0.5}) // subsumed by {R1}
	g.AddEdge(Edge{U: bitset.New(0), V: bitset.New(2, 3), Sel: 0.5}) // minimal
	cands := g.CandidateHypernodes(bitset.New(0), bitset.New(0))
	want := map[string]bool{bitset.New(1).Key(): true, bitset.New(2, 3).Key(): true}
	if len(cands) != 2 {
		t.Fatalf("E↓ = %v", cands)
	}
	for _, c := range cands {
		if !want[c.Key()] {
			t.Errorf("unexpected candidate %v", c)
		}
	}
	// Neighborhood picks representatives: R1 and min({R2,R3}) = R2.
	if n := g.Neighborhood(bitset.New(0), bitset.New(0)); !n.Equal(bitset.New(1, 2)) {
		t.Errorf("N = %v, want {R1,R2}", n)
	}
}

func TestNeighborhoodSubsumptionAmongComplex(t *testing.T) {
	g := New()
	g.AddRelations(5, "R", 10)
	g.AddEdge(Edge{U: bitset.New(0), V: bitset.New(1, 2, 3), Sel: 0.5})
	g.AddEdge(Edge{U: bitset.New(0), V: bitset.New(1, 2), Sel: 0.5})
	cands := g.CandidateHypernodes(bitset.New(0), bitset.New(0))
	if len(cands) != 1 || !cands[0].Equal(bitset.New(1, 2)) {
		t.Fatalf("E↓ = %v, want [{R2,R3}]", cands)
	}
}

func TestNeighborhoodRespectsExclusion(t *testing.T) {
	g := PaperExampleGraph()
	// Excluding any node of the hyperedge target removes the candidate
	// entirely (v ∩ X = ∅ condition).
	S := bitset.New(0, 1, 2)
	X := S.Add(5) // forbid R6
	if n := g.Neighborhood(S, X); !n.IsEmpty() {
		t.Errorf("N = %v, want empty: hypernode overlaps X", n)
	}
}

func TestNeighborhoodDisconnectedSet(t *testing.T) {
	// Neighborhood is defined for any S, even one that does not induce a
	// connected subgraph (used during recursive growth).
	g := chain(5)
	S := bitset.New(0, 2) // not adjacent
	n := g.Neighborhood(S, S)
	if !n.Equal(bitset.New(1, 3)) {
		t.Errorf("N = %v, want {R1,R3}", n)
	}
}

func TestConnectsTo(t *testing.T) {
	g := PaperExampleGraph()
	cases := []struct {
		s1, s2 bitset.Set
		want   bool
	}{
		{bitset.New(0), bitset.New(1), true},
		{bitset.New(0), bitset.New(2), false},
		{bitset.New(0, 1, 2), bitset.New(3, 4, 5), true},
		{bitset.New(0, 1), bitset.New(3, 4, 5), false}, // hyperedge u ⊄ {R1,R2}
		{bitset.New(0, 1, 2), bitset.New(3, 4), false}, // v ⊄ {R4,R5}
		{bitset.New(3, 4, 5), bitset.New(0, 1, 2), true},
	}
	for _, c := range cases {
		if got := g.ConnectsTo(c.s1, c.s2); got != c.want {
			t.Errorf("ConnectsTo(%v,%v) = %v, want %v", c.s1, c.s2, got, c.want)
		}
	}
}

func TestGeneralizedEdgeConnectivity(t *testing.T) {
	// Definition 7: (u,v,w) connects V1, V2 iff u ⊆ V1, v ⊆ V2,
	// w ⊆ V1 ∪ V2 (or symmetric).
	g := New()
	g.AddRelations(4, "R", 10)
	g.AddEdge(Edge{U: bitset.New(0), V: bitset.New(1), W: bitset.New(2), Sel: 0.5})

	if !g.ConnectsTo(bitset.New(0, 2), bitset.New(1)) {
		t.Error("w on the left side must connect")
	}
	if !g.ConnectsTo(bitset.New(0), bitset.New(1, 2)) {
		t.Error("w on the right side must connect")
	}
	if g.ConnectsTo(bitset.New(0), bitset.New(1)) {
		t.Error("w missing entirely must not connect")
	}
	if g.ConnectsTo(bitset.New(0, 3), bitset.New(1)) {
		t.Error("w unplaced must not connect")
	}
}

func TestGeneralizedEdgeNeighborhood(t *testing.T) {
	// §6: given V1 and edge (u,v,w) with u ⊆ V1, the neighboring
	// hypernode is v ∪ (w ∖ V1).
	g := New()
	g.AddRelations(4, "R", 10)
	g.AddEdge(Edge{U: bitset.New(0), V: bitset.New(1), W: bitset.New(2, 3), Sel: 0.5})

	// Nothing of w in S: candidate {R1,R2,R3}, representative R1.
	cands := g.CandidateHypernodes(bitset.New(0), bitset.New(0))
	if len(cands) != 1 || !cands[0].Equal(bitset.New(1, 2, 3)) {
		t.Fatalf("E↓ = %v", cands)
	}

	// Part of w already in S: candidate shrinks to v ∪ (w ∖ S).
	cands = g.CandidateHypernodes(bitset.New(0, 2), bitset.New(0, 2))
	if len(cands) != 1 || !cands[0].Equal(bitset.New(1, 3)) {
		t.Fatalf("E↓ = %v, want [{R1,R3}]", cands)
	}

	// All of w in S: candidate is exactly v.
	cands = g.CandidateHypernodes(bitset.New(0, 2, 3), bitset.New(0, 2, 3))
	if len(cands) != 1 || !cands[0].Equal(bitset.New(1)) {
		t.Fatalf("E↓ = %v, want [{R1}]", cands)
	}
}

func TestIsConnectedChain(t *testing.T) {
	g := chain(5)
	if !g.IsConnected(bitset.New(0, 1, 2)) {
		t.Error("prefix of chain is connected")
	}
	if g.IsConnected(bitset.New(0, 2)) {
		t.Error("gap in chain is not connected")
	}
	if !g.IsConnected(bitset.New(3)) {
		t.Error("singleton is connected")
	}
	if g.IsConnected(bitset.Empty) {
		t.Error("empty set is not connected")
	}
	if !g.IsConnected(g.AllNodes()) {
		t.Error("whole chain is connected")
	}
}

// TestIsConnectedHyperedgeSubtlety captures the Definition-3 subtlety:
// a set bridged only by a hyperedge whose far side is internally
// disconnected is NOT connected — joining it would need a cross product.
func TestIsConnectedHyperedgeSubtlety(t *testing.T) {
	g := New()
	g.AddRelations(3, "R", 10)
	g.AddEdge(Edge{U: bitset.New(0), V: bitset.New(1, 2), Sel: 0.5})
	if g.IsConnected(bitset.New(0, 1, 2)) {
		t.Error("{R0,R1,R2} must not be connected: {R1,R2} has no internal edge")
	}
	// Adding an edge inside the far hypernode makes it connected.
	g.AddSimpleEdge(1, 2, 0.5)
	if !g.IsConnected(bitset.New(0, 1, 2)) {
		t.Error("{R0,R1,R2} must be connected after adding R1-R2")
	}
}

func TestIsConnectedPaperExample(t *testing.T) {
	g := PaperExampleGraph()
	for _, s := range []bitset.Set{
		bitset.New(0, 1), bitset.New(1, 2), bitset.New(0, 1, 2),
		bitset.New(3, 4, 5), g.AllNodes(),
	} {
		if !g.IsConnected(s) {
			t.Errorf("%v must be connected", s)
		}
	}
	for _, s := range []bitset.Set{
		bitset.New(0, 2), bitset.New(0, 3), bitset.New(2, 3),
		bitset.New(0, 1, 3), bitset.New(0, 1, 2, 3),
	} {
		if g.IsConnected(s) {
			t.Errorf("%v must not be connected", s)
		}
	}
}

func TestComponentsAndMakeConnected(t *testing.T) {
	g := New()
	g.AddRelations(5, "R", 10)
	g.AddSimpleEdge(0, 1, 0.5)
	g.AddSimpleEdge(2, 3, 0.5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	added := g.MakeConnected()
	if added != 3 { // C(3,2) pairs
		t.Errorf("added %d edges, want 3", added)
	}
	if len(g.Components()) != 1 {
		t.Error("graph must have one component after repair")
	}
	if !g.IsConnected(g.AllNodes()) {
		t.Error("graph must be Definition-3 connected after repair")
	}
	// Repair edges are selectivity-1 cross joins.
	e := g.Edge(g.NumEdges() - 1)
	if e.Sel != 1 || e.Label != "cross" {
		t.Errorf("repair edge = %+v", e)
	}
}

func TestSelectivityBetween(t *testing.T) {
	g := New()
	g.AddRelations(3, "R", 10)
	g.AddSimpleEdge(0, 1, 0.1)
	g.AddSimpleEdge(1, 2, 0.2)
	g.AddSimpleEdge(0, 2, 0.5)
	got := g.SelectivityBetween(bitset.New(0, 1), bitset.New(2))
	if got != 0.2*0.5 {
		t.Errorf("sel = %g, want 0.1", got)
	}
	if g.SelectivityBetween(bitset.New(0), bitset.New(1)) != 0.1 {
		t.Error("single edge selectivity")
	}
}

func TestEachConnectingEdgeOrientation(t *testing.T) {
	g := New()
	g.AddRelations(3, "R", 10)
	g.AddEdge(Edge{U: bitset.New(0, 1), V: bitset.New(2), Sel: 0.5, Op: algebra.LeftOuter})
	var idx int
	var flipped bool
	count := 0
	g.EachConnectingEdge(bitset.New(2), bitset.New(0, 1), func(i int, f bool) {
		idx, flipped, count = i, f, count+1
	})
	if count != 1 || idx != 0 || !flipped {
		t.Errorf("idx=%d flipped=%v count=%d; want 0,true,1", idx, flipped, count)
	}
	g.EachConnectingEdge(bitset.New(0, 1), bitset.New(2), func(i int, f bool) {
		if f {
			t.Error("orientation must not be flipped")
		}
	})
}

// Property: the neighborhood of S never intersects S or X, and every
// representative is genuinely reachable (some candidate hypernode
// contains it as its minimum).
func TestNeighborhoodProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 10, 14)
	f := func(sRaw, xRaw uint16) bool {
		all := g.AllNodes()
		S := fromBits(uint64(sRaw)).Intersect(all)
		if S.IsEmpty() {
			return true
		}
		X := fromBits(uint64(xRaw)).Intersect(all)
		n := g.Neighborhood(S, X)
		if n.Overlaps(S) || n.Overlaps(X) {
			return false
		}
		cands := g.CandidateHypernodes(S, X)
		// Each representative must be the min of some candidate, and each
		// candidate must contribute its min.
		want := bitset.Empty
		for _, c := range cands {
			want = want.Union(c.MinSet())
		}
		return n.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ConnectsTo is symmetric.
func TestConnectsToSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 9, 12)
	f := func(aRaw, bRaw uint16) bool {
		all := g.AllNodes()
		a := fromBits(uint64(aRaw)).Intersect(all)
		b := fromBits(uint64(bRaw)).Intersect(all).Minus(a)
		if a.IsEmpty() || b.IsEmpty() {
			return true
		}
		return g.ConnectsTo(a, b) == g.ConnectsTo(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a connected random hypergraph with a spanning tree of
// simple edges plus extra simple and complex edges.
func randomGraph(rng *rand.Rand, n, extra int) *Graph {
	g := New()
	g.AddRelations(n, "R", 100)
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(rng.Intn(i), i, 0.1)
	}
	for k := 0; k < extra; k++ {
		if rng.Intn(2) == 0 {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddSimpleEdge(a, b, 0.2)
			}
			continue
		}
		// Random disjoint hypernodes.
		var u, v bitset.Set
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				u = u.Add(i)
			case 1:
				v = v.Add(i)
			}
		}
		if u.IsEmpty() || v.IsEmpty() || u.Overlaps(v) {
			continue
		}
		g.AddEdge(Edge{U: u, V: v, Sel: 0.3})
	}
	return g
}

func TestStringAndDot(t *testing.T) {
	g := PaperExampleGraph()
	s := g.String()
	if !strings.Contains(s, "6 relations") || !strings.Contains(s, "5 edges") {
		t.Errorf("String = %q", s)
	}
	d := g.Dot()
	for _, frag := range []string{"graph query", "R0 -- R1", "he4", "shape=box"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Dot missing %q:\n%s", frag, d)
		}
	}
}

func TestClone(t *testing.T) {
	g := PaperExampleGraph()
	c := g.Clone()
	c.AddRelation("extra", 5)
	c.AddSimpleEdge(5, 6, 0.5)
	if g.NumRels() != 6 || g.NumEdges() != 5 {
		t.Error("clone mutation leaked into original")
	}
	if c.NumRels() != 7 || c.NumEdges() != 6 {
		t.Error("clone not mutated")
	}
}

func TestMemoInvalidation(t *testing.T) {
	g := New()
	g.AddRelations(3, "R", 10)
	g.AddSimpleEdge(0, 1, 0.5)
	if g.IsConnected(bitset.New(0, 1, 2)) {
		t.Fatal("not yet connected")
	}
	g.AddSimpleEdge(1, 2, 0.5)
	if !g.IsConnected(bitset.New(0, 1, 2)) {
		t.Fatal("memo must be invalidated by AddEdge")
	}
}

func BenchmarkNeighborhoodSimple(b *testing.B) {
	g := chain(20)
	S := bitset.Range(5, 10)
	X := bitset.Range(0, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Neighborhood(S, X)
	}
}

func BenchmarkNeighborhoodHyper(b *testing.B) {
	g := PaperExampleGraph()
	S := bitset.New(0, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Neighborhood(S, S)
	}
}
