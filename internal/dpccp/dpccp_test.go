package dpccp

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/hypergraph"
)

func randomSimpleGraph(rng *rand.Rand, n int) *hypergraph.Graph {
	g := hypergraph.New()
	for i := 0; i < n; i++ {
		g.AddRelation("R", float64(10+rng.Intn(1000)))
	}
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(rng.Intn(i), i, 0.05+rng.Float64()*0.5)
	}
	for k := 0; k < rng.Intn(2*n); k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddSimpleEdge(a, b, 0.05+rng.Float64()*0.5)
		}
	}
	return g
}

// §4.4: "DPhyp performs exactly like DPccp on regular graphs." Both must
// emit the identical pair sequence, not merely the same set.
func TestIdenticalSequenceToDPhyp(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		g := randomSimpleGraph(rng, 3+rng.Intn(7))
		var ccp, hyp []counting.Pair
		p1, _, err1 := Solve(g, Options{OnEmit: func(a, b bitset.Set) {
			ccp = append(ccp, counting.Pair{S1: a, S2: b})
		}})
		p2, _, err2 := core.Solve(g, core.Options{OnEmit: func(a, b bitset.Set) {
			hyp = append(hyp, counting.Pair{S1: a, S2: b})
		}})
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if len(ccp) != len(hyp) {
			t.Fatalf("trial %d: %d pairs vs %d", trial, len(ccp), len(hyp))
		}
		for i := range ccp {
			if !ccp[i].Equal(hyp[i]) {
				t.Fatalf("trial %d: sequence diverges at %d: %v|%v vs %v|%v",
					trial, i, ccp[i].S1, ccp[i].S2, hyp[i].S1, hyp[i].S2)
			}
		}
		if p1.Cost != p2.Cost {
			t.Errorf("trial %d: costs differ %g vs %g", trial, p1.Cost, p2.Cost)
		}
	}
}

// DPccp never emits an invalid or duplicate pair (it meets the lower
// bound without tests).
func TestMeetsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for trial := 0; trial < 25; trial++ {
		g := randomSimpleGraph(rng, 3+rng.Intn(6))
		var got []counting.Pair
		if _, stats, err := Solve(g, Options{OnEmit: func(a, b bitset.Set) {
			got = append(got, counting.Normalize(a, b))
		}}); err != nil {
			t.Fatal(err)
		} else if want := counting.CountCsgCmpPairs(g); stats.CsgCmpPairs != want {
			t.Errorf("trial %d: emitted %d, lower bound %d", trial, stats.CsgCmpPairs, want)
		}
		seen := map[string]bool{}
		for _, p := range got {
			if seen[p.Key()] {
				t.Errorf("duplicate %v|%v", p.S1, p.S2)
			}
			seen[p.Key()] = true
		}
	}
}

func TestPanicsOnHyperedge(t *testing.T) {
	g := hypergraph.PaperExampleGraph()
	defer func() {
		if recover() == nil {
			t.Error("hyperedge input must panic")
		}
	}()
	Solve(g, Options{})
}

func TestEmptyFails(t *testing.T) {
	if _, _, err := Solve(hypergraph.New(), Options{}); err == nil {
		t.Error("empty graph must fail")
	}
}

func TestDisconnectedFails(t *testing.T) {
	g := hypergraph.New()
	g.AddRelations(2, "R", 10)
	if _, _, err := Solve(g, Options{}); err == nil {
		t.Error("disconnected graph must fail")
	}
}
