// Package dpccp implements DPccp, the csg-cmp-pair enumerator for
// ordinary (simple) query graphs from Moerkotte & Neumann, VLDB 2006
// [17] — the starting point the DPhyp paper generalizes.
//
// On simple graphs connectivity is preserved by construction (subgraphs
// grow along adjacency), so DPccp needs no failing tests at all: every
// emission is a valid csg-cmp-pair, which is why it meets the §2.2 lower
// bound exactly. The package exists as a cross-check for §4.4's claim
// that "DPhyp performs exactly like DPccp on regular graphs": the tests
// verify both emit identical pair sequences.
//
// The solver is a pure enumerator: memoization, budgets, and plan
// construction route through the shared memo engine (internal/memo),
// and neighborhood subsets are generated with the bitset.SubsetsOf
// iterator.
//
// Solve panics if the graph contains hyperedges; use DPhyp for those.
package dpccp

import (
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/plan"
)

// Options mirrors the options of the other enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *memo.Pool
}

type solver struct {
	g *hypergraph.Graph
	e *memo.Engine
}

// Solve runs DPccp over the simple graph g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	for i := 0; i < g.NumEdges(); i++ {
		if !g.Edge(i).Simple() {
			panic("dpccp: hyperedge in input graph; DPccp handles simple graphs only")
		}
	}
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	defer opts.Pool.Put(e)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	n := g.NumRels()
	if n == 0 {
		return nil, e.Stats, errEmpty
	}
	b.Init()
	s := &solver{g: g, e: e}

	for v := n - 1; v >= 0 && e.Aborted() == nil; v-- {
		S := bitset.Single(v)
		s.emitCmp(S)
		s.enumerateCsgRec(S, bitset.BelowEq(v))
	}
	p, err := b.Final()
	return p, e.Stats, err
}

// enumerateCsgRec grows connected subgraphs along the adjacency
// structure. On simple graphs S1 ∪ N' is connected for every non-empty
// N' ⊆ N(S1), so no membership test is required.
func (s *solver) enumerateCsgRec(S1, X bitset.Set) {
	if !s.e.Step() {
		return
	}
	N := s.g.Neighborhood(S1, X)
	if N.IsEmpty() {
		return
	}
	for n := range N.SubsetsOf() {
		if !s.e.Step() {
			return
		}
		s.emitCmp(S1.Union(n))
	}
	newX := X.Union(N)
	for n := range N.SubsetsOf() {
		s.enumerateCsgRec(S1.Union(n), newX)
	}
}

// emitCmp enumerates all connected complements of the csg S1. Nodes
// ordered before min(S1) are excluded to avoid duplicate pairs; each
// complement is grown from its ≺-minimal neighbor.
func (s *solver) emitCmp(S1 bitset.Set) {
	if !s.e.Step() {
		return
	}
	X := S1.Union(bitset.BelowEq(S1.Min()))
	N := s.g.Neighborhood(S1, X)
	if N.IsEmpty() {
		return
	}
	for v := N.Max(); v >= 0 && s.e.Aborted() == nil; v = prevElem(N, v) {
		S2 := bitset.Single(v)
		s.e.EmitPair(S1, S2)
		s.growCmp(S1, S2, X.Union(N.Intersect(bitset.BelowEq(v))))
	}
}

// growCmp extends the complement S2; every grown set remains connected
// and adjacent to S1, so every subset is emitted unconditionally.
func (s *solver) growCmp(S1, S2, X bitset.Set) {
	if !s.e.Step() {
		return
	}
	N := s.g.Neighborhood(S2, X)
	if N.IsEmpty() {
		return
	}
	for n := range N.SubsetsOf() {
		if !s.e.Step() {
			return
		}
		s.e.EmitPair(S1, S2.Union(n))
	}
	newX := X.Union(N)
	for n := range N.SubsetsOf() {
		s.growCmp(S1, S2.Union(n), newX)
	}
}

func prevElem(N bitset.Set, v int) int {
	below := N.Intersect(bitset.Below(v))
	if below.IsEmpty() {
		return -1
	}
	return below.Max()
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("dpccp: empty graph")
