// Package dpccp implements DPccp, the csg-cmp-pair enumerator for
// ordinary (simple) query graphs from Moerkotte & Neumann, VLDB 2006
// [17] — the starting point the DPhyp paper generalizes.
//
// On simple graphs connectivity is preserved by construction (subgraphs
// grow along adjacency), so DPccp needs no failing tests at all: every
// emission is a valid csg-cmp-pair, which is why it meets the §2.2 lower
// bound exactly. The package exists as a cross-check for §4.4's claim
// that "DPhyp performs exactly like DPccp on regular graphs": the tests
// verify both emit identical pair sequences.
//
// The solver is a pure enumerator: memoization, budgets, and plan
// construction route through the shared memo engine (internal/memo),
// and neighborhood subsets are generated with the bitset.SubsetsOf
// iterator.
//
// Solve panics if the graph contains hyperedges; use DPhyp for those.
package dpccp

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Options mirrors the options of the other enumerators.
type Options struct {
	Model  cost.Model
	Filter dp.Filter
	OnEmit func(S1, S2 bitset.Set)
	Limits dp.Limits
	Pool   *memo.Pool

	// Explain, when non-nil, receives phase spans for the run (the
	// engine records the materialize phase; the planner wraps the whole
	// enumeration). Unlike OnEmit it does not force the serial engine.
	Explain *obs.Trace

	// Parallelism > 1 enables the two-phase parallel mode: the csg-cmp
	// enumeration — which on simple graphs needs no DP-table access at
	// all — partitions across start vertices claimed dynamically by
	// workers, and the collected pairs are then priced level-by-level
	// in parallel (dp.ParRun.PriceLevels). Graphs with dependent
	// relations fall back to the serial engine (dp.ParallelSafe).
	// 0 or 1 runs today's serial engine.
	Parallelism int
}

type solver struct {
	g *hypergraph.Graph
	e *memo.Engine

	// emit receives every csg-cmp-pair: the engine's EmitPair in the
	// serial mode, a deferred-pair recorder in the parallel mode. One
	// enumeration body serves both, so the modes cannot drift apart.
	emit func(S1, S2 bitset.Set)
}

// Solve runs DPccp over the simple graph g.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	for i := 0; i < g.NumEdges(); i++ {
		if !g.Edge(i).Simple() {
			panic("dpccp: hyperedge in input graph; DPccp handles simple graphs only")
		}
	}
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	defer opts.Pool.Put(e)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	e.SetTrace(opts.Explain)
	n := g.NumRels()
	if n == 0 {
		return nil, e.Stats, errEmpty
	}
	b.Init()

	// The parallel mode needs plan-construction acceptance to be
	// cost-free (dp.ParallelSafe) and has no serial emission order to
	// offer observation hooks; filters may carry per-analysis state the
	// worker builders must not share. The planner enforces the same
	// gates; they are repeated here so direct solver callers are safe.
	if opts.Parallelism > 1 && opts.Filter == nil && opts.OnEmit == nil && dp.ParallelSafe(g) {
		solveParallel(g, b, n, opts.Parallelism)
		p, err := b.Final()
		return p, e.Stats, err
	}

	s := &solver{g: g, e: e, emit: e.EmitPair}
	for v := n - 1; v >= 0 && e.Aborted() == nil; v-- {
		S := bitset.Single(v)
		s.emitCmp(S)
		s.enumerateCsgRec(S, bitset.BelowEq(v))
	}
	p, err := b.Final()
	return p, e.Stats, err
}

// solveParallel runs the two-phase parallel DPccp. Phase 1 partitions
// the enumeration — the serial solver body with emit redirected to a
// deferred-pair recorder; on simple graphs it needs no DP-table access
// — across start vertices that workers claim dynamically (descending,
// matching the serial order), so skewed shapes — a star's hub vertex
// emits almost every pair — cost at most one worker's imbalance.
// Phase 2 buckets the collected pairs by result-set size (pooled
// storage; bucket order is irrelevant under the order-independent
// merge tie-break) and prices the buckets level-parallel.
func solveParallel(g *hypergraph.Graph, b *dp.Builder, n, workers int) {
	pr := dp.NewParRun(b, workers)
	pr.Par.StartLevel()
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wb := pr.Bs[w]
		we := wb.Engine
		wg.Add(1)
		go func() {
			defer wg.Done()
			col := solver{g: g, e: we, emit: func(S1, S2 bitset.Set) {
				if we.EmitDeferred(S1, S2) {
					wb.DeferPair(S1, S2)
				}
			}}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || we.Aborted() != nil {
					return
				}
				v := n - 1 - i
				S := bitset.Single(v)
				col.emitCmp(S)
				col.enumerateCsgRec(S, bitset.BelowEq(v))
			}
		}()
	}
	wg.Wait()
	pr.Par.FinishLevel(memo.LevelCollected)
	if pr.Par.Aborted() != nil {
		return
	}
	pr.PriceLevels(pr.Buckets(n))
}

// enumerateCsgRec grows connected subgraphs along the adjacency
// structure. On simple graphs S1 ∪ N' is connected for every non-empty
// N' ⊆ N(S1), so no membership test is required.
//
//dp:hotpath
func (s *solver) enumerateCsgRec(S1, X bitset.Set) {
	if !s.e.Step() {
		return
	}
	N := s.g.Neighborhood(S1, X)
	if N.IsEmpty() {
		return
	}
	for n := range N.SubsetsOf() {
		if !s.e.Step() {
			return
		}
		s.emitCmp(S1.Union(n))
	}
	newX := X.Union(N)
	for n := range N.SubsetsOf() {
		s.enumerateCsgRec(S1.Union(n), newX)
	}
}

// emitCmp enumerates all connected complements of the csg S1. Nodes
// ordered before min(S1) are excluded to avoid duplicate pairs; each
// complement is grown from its ≺-minimal neighbor.
//
//dp:hotpath
func (s *solver) emitCmp(S1 bitset.Set) {
	if !s.e.Step() {
		return
	}
	X := S1.Union(bitset.BelowEq(S1.Min()))
	N := s.g.Neighborhood(S1, X)
	if N.IsEmpty() {
		return
	}
	for v := N.Max(); v >= 0 && s.e.Aborted() == nil; v = prevElem(N, v) {
		S2 := bitset.Single(v)
		s.emit(S1, S2)
		s.growCmp(S1, S2, X.Union(N.Intersect(bitset.BelowEq(v))))
	}
}

// growCmp extends the complement S2; every grown set remains connected
// and adjacent to S1, so every subset is emitted unconditionally.
//
//dp:hotpath
func (s *solver) growCmp(S1, S2, X bitset.Set) {
	if !s.e.Step() {
		return
	}
	N := s.g.Neighborhood(S2, X)
	if N.IsEmpty() {
		return
	}
	for n := range N.SubsetsOf() {
		if !s.e.Step() {
			return
		}
		s.emit(S1, S2.Union(n))
	}
	newX := X.Union(N)
	for n := range N.SubsetsOf() {
		s.growCmp(S1, S2.Union(n), newX)
	}
}

//dp:hotpath
func prevElem(N bitset.Set, v int) int {
	below := N.Intersect(bitset.Below(v))
	if below.IsEmpty() {
		return -1
	}
	return below.Max()
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("dpccp: empty graph")
