// Package cost provides cardinality estimation and cost models for the
// join-ordering optimizers.
//
// The DPhyp paper hides cost calculation behind an abstract cost function
// (§3.5: "we hide the cost calculations in an abstract function cost").
// This package supplies concrete instances. The default is C_out — the
// sum of the cardinalities of all intermediate results — which is the
// standard model in the join-ordering literature (including the DPccp
// paper the algorithms build on) because it is independent of physical
// operator choices and makes optimality easy to verify.
//
// Cardinality estimation is classical: the size of an inner join is the
// product of the input sizes discounted by the product of the
// selectivities of all predicates connecting the two sides. Non-inner
// operators get the natural adaptations (a left outer join preserves all
// left rows; a semijoin never exceeds the left input; a nestjoin emits
// exactly one row per left row; and so on).
package cost

import (
	"math"

	"repro/internal/algebra"
)

// EstimateCard estimates the output cardinality of applying op to inputs
// with cardinalities leftCard and rightCard under the combined predicate
// selectivity sel (the product of the selectivities of all edges
// connecting the two sides).
func EstimateCard(op algebra.Op, leftCard, rightCard, sel float64) float64 {
	inner := leftCard * rightCard * sel
	// matchFrac approximates the fraction of left rows with at least one
	// join partner. For independent matches, a left row expects
	// rightCard*sel partners, capped at probability 1.
	matchFrac := math.Min(1, rightCard*sel)
	switch op.RegularVariant() {
	case algebra.Join:
		return inner
	case algebra.SemiJoin:
		return leftCard * matchFrac
	case algebra.AntiJoin:
		return leftCard * (1 - matchFrac)
	case algebra.LeftOuter:
		// Matching rows plus NULL-padded non-matching left rows.
		return inner + leftCard*(1-matchFrac)
	case algebra.FullOuter:
		rightMatchFrac := math.Min(1, leftCard*sel)
		return inner + leftCard*(1-matchFrac) + rightCard*(1-rightMatchFrac)
	case algebra.NestJoin:
		// One output row per left row (§5.1: RT S = {r ∘ ν(r) | r ∈ R}).
		return leftCard
	}
	return inner
}

// Model prices a single join node given the costs and cardinalities of
// its inputs and the estimated output cardinality. Implementations must
// be monotone in the input costs so that dynamic programming over
// subplans is admissible (Bellman's principle).
type Model interface {
	// JoinCost returns the TOTAL cost of the combined plan (it already
	// includes leftCost and rightCost).
	JoinCost(op algebra.Op, leftCost, rightCost, leftCard, rightCard, outCard float64) float64
	// Name identifies the model in reports.
	Name() string
}

// Cout is the C_out cost model: the cost of a plan is the sum of the
// cardinalities of all intermediate (non-leaf) results.
type Cout struct{}

// JoinCost implements Model.
func (Cout) JoinCost(_ algebra.Op, leftCost, rightCost, _, _, outCard float64) float64 {
	return leftCost + rightCost + outCard
}

// Name implements Model.
func (Cout) Name() string { return "Cout" }

// NestedLoop models a tuple-at-a-time nested-loop evaluation: each join
// reads the full cross product of its inputs.
type NestedLoop struct{}

// JoinCost implements Model.
func (NestedLoop) JoinCost(_ algebra.Op, leftCost, rightCost, leftCard, rightCard, _ float64) float64 {
	return leftCost + rightCost + leftCard*rightCard
}

// Name implements Model.
func (NestedLoop) Name() string { return "Cnlj" }

// Hash models a main-memory hash join: build on the right input, probe
// with the left, pay for the output.
type Hash struct{}

// JoinCost implements Model.
func (Hash) JoinCost(_ algebra.Op, leftCost, rightCost, leftCard, rightCard, outCard float64) float64 {
	const buildFactor = 1.5 // hashing a row is a bit dearer than probing
	return leftCost + rightCost + leftCard + buildFactor*rightCard + outCard
}

// Name implements Model.
func (Hash) Name() string { return "Chash" }

// Default is the model used when none is specified.
func Default() Model { return Cout{} }
