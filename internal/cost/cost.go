// Package cost provides cardinality estimation and cost models for the
// join-ordering optimizers.
//
// The DPhyp paper hides cost calculation behind an abstract cost function
// (§3.5: "we hide the cost calculations in an abstract function cost").
// This package supplies concrete instances. The default is C_out — the
// sum of the cardinalities of all intermediate results — which is the
// standard model in the join-ordering literature (including the DPccp
// paper the algorithms build on) because it is independent of physical
// operator choices and makes optimality easy to verify.
//
// Cardinality estimation is classical: the size of an inner join is the
// product of the input sizes discounted by the product of the
// selectivities of all predicates connecting the two sides. Non-inner
// operators get the natural adaptations (a left outer join preserves all
// left rows; a semijoin never exceeds the left input; a nestjoin emits
// exactly one row per left row; and so on).
//
// The models are pluggable: anything implementing Model (or
// PhysicalModel, to additionally choose hash/sort-merge/index-NLJ
// implementations per node) can be handed to the enumeration algorithms
// through the planner's WithCostModel option. Implementations provided
// here: Cout (default), NestedLoop, Hash, Cmm (per-operator main-memory
// weights), and Physical (operator selection).
package cost

import (
	"math"

	"repro/internal/algebra"
)

// EstimateCard estimates the output cardinality of applying op to inputs
// with cardinalities leftCard and rightCard under the combined predicate
// selectivity sel (the product of the selectivities of all edges
// connecting the two sides).
func EstimateCard(op algebra.Op, leftCard, rightCard, sel float64) float64 {
	inner := leftCard * rightCard * sel
	// matchFrac approximates the fraction of left rows with at least one
	// join partner. For independent matches, a left row expects
	// rightCard*sel partners, capped at probability 1.
	matchFrac := math.Min(1, rightCard*sel)
	switch op.RegularVariant() {
	case algebra.Join:
		return inner
	case algebra.SemiJoin:
		return leftCard * matchFrac
	case algebra.AntiJoin:
		return leftCard * (1 - matchFrac)
	case algebra.LeftOuter:
		// Matching rows plus NULL-padded non-matching left rows.
		return inner + leftCard*(1-matchFrac)
	case algebra.FullOuter:
		rightMatchFrac := math.Min(1, leftCard*sel)
		return inner + leftCard*(1-matchFrac) + rightCard*(1-rightMatchFrac)
	case algebra.NestJoin:
		// One output row per left row (§5.1: RT S = {r ∘ ν(r) | r ∈ R}).
		return leftCard
	}
	return inner
}

// Model prices a single join node given the costs and cardinalities of
// its inputs and the estimated output cardinality. Implementations must
// be monotone in the input costs so that dynamic programming over
// subplans is admissible (Bellman's principle).
type Model interface {
	// JoinCost returns the TOTAL cost of the combined plan (it already
	// includes leftCost and rightCost).
	JoinCost(op algebra.Op, leftCost, rightCost, leftCard, rightCard, outCard float64) float64
	// Name identifies the model in reports.
	Name() string
}

// Cout is the C_out cost model: the cost of a plan is the sum of the
// cardinalities of all intermediate (non-leaf) results.
type Cout struct{}

// JoinCost implements Model.
func (Cout) JoinCost(_ algebra.Op, leftCost, rightCost, _, _, outCard float64) float64 {
	return leftCost + rightCost + outCard
}

// Name implements Model.
func (Cout) Name() string { return "Cout" }

// NestedLoop models a tuple-at-a-time nested-loop evaluation: each join
// reads the full cross product of its inputs.
type NestedLoop struct{}

// JoinCost implements Model.
func (NestedLoop) JoinCost(_ algebra.Op, leftCost, rightCost, leftCard, rightCard, _ float64) float64 {
	return leftCost + rightCost + leftCard*rightCard
}

// Name implements Model.
func (NestedLoop) Name() string { return "Cnlj" }

// Hash models a main-memory hash join: build on the right input, probe
// with the left, pay for the output.
type Hash struct{}

// JoinCost implements Model.
func (Hash) JoinCost(_ algebra.Op, leftCost, rightCost, leftCard, rightCard, outCard float64) float64 {
	const buildFactor = 1.5 // hashing a row is a bit dearer than probing
	return leftCost + rightCost + leftCard + buildFactor*rightCard + outCard
}

// Name implements Model.
func (Hash) Name() string { return "Chash" }

// Cmm is an adaptation of the C_mm main-memory cost model (Moerkotte,
// "Building Query Compilers"): joins are priced as hash-based
// implementations with per-operator weights instead of C_out's uniform
// "one unit per output row". Builds are dearer than probes, semi- and
// antijoins probe with early-out and materialize no combined rows,
// outer joins pay for NULL padding, and nestjoins re-evaluate their
// right side per left row.
type Cmm struct{}

// Per-row weights of the C_mm adaptation.
const (
	cmmProbe = 1.0 // hashing + probing one left row
	cmmBuild = 2.0 // building one hash table entry
	cmmOut   = 0.5 // materializing one output row
)

// JoinCost implements Model.
func (Cmm) JoinCost(op algebra.Op, leftCost, rightCost, leftCard, rightCard, outCard float64) float64 {
	local := cmmProbe*leftCard + cmmBuild*rightCard
	switch op.RegularVariant() {
	case algebra.SemiJoin, algebra.AntiJoin:
		// Early-out probes; output rows are references to left rows.
		local += 0.25 * cmmOut * outCard
	case algebra.LeftOuter:
		local += cmmOut * (outCard + 0.1*leftCard) // NULL padding of misses
	case algebra.FullOuter:
		// Padding on both sides requires tracking unmatched build rows.
		local += cmmOut*outCard + 0.1*cmmOut*(leftCard+rightCard)
	case algebra.NestJoin:
		// Nested evaluation: one right-side pass per left row.
		local = leftCard*(1+log2(rightCard)) + cmmOut*outCard
	default:
		local += cmmOut * outCard
	}
	if op.Dependent() {
		// Dependent right sides are re-evaluated per binding; charge a
		// surcharge on the local work (child costs stay untouched, so
		// Bellman monotonicity is preserved).
		local *= 1.25
	}
	return leftCost + rightCost + local
}

// Name implements Model.
func (Cmm) Name() string { return "Cmm" }

// PhysicalModel is a Model that additionally chooses a physical
// implementation per join node. The plan generator (dp.Builder) detects
// the interface and annotates every plan node it builds with the chosen
// operator, so the final tree doubles as a physical plan.
//
// Contract: JoinCost(args…) must equal the cost returned by
// ChooseJoin(args…) — the model prices a plan exactly as it would
// execute it.
type PhysicalModel interface {
	Model
	// ChooseJoin returns the cheapest physical implementation for the
	// node and the TOTAL plan cost under that choice (including
	// leftCost and rightCost).
	ChooseJoin(op algebra.Op, leftCost, rightCost, leftCard, rightCard, outCard float64) (algebra.PhysOp, float64)
}

// Physical is a PhysicalModel pricing three implementations per join —
// hash join, sort-merge join, and index nested-loop — and picking the
// cheapest. Operators whose right side must be re-evaluated per left
// row (dependent joins, nestjoins) are pinned to index-NLJ, the only
// strategy with that shape.
//
// The per-implementation formulas are classical main-memory estimates:
//
//	hash:       1.2·|L| + 1.8·|R|           (probe left, build right)
//	sort-merge: 0.5·(|L|·log|L| + |R|·log|R|)
//	index-NLJ:  |L|·(1 + log|R|)            (one index descent per left row)
//
// all plus the output cardinality. Sort-merge wins on small balanced
// inputs, index-NLJ on small-left/large-right skew, hash elsewhere.
type Physical struct{}

// Physical implements PhysicalModel.
var _ PhysicalModel = Physical{}

// JoinCost implements Model; it returns ChooseJoin's cost.
func (p Physical) JoinCost(op algebra.Op, leftCost, rightCost, leftCard, rightCard, outCard float64) float64 {
	_, c := p.ChooseJoin(op, leftCost, rightCost, leftCard, rightCard, outCard)
	return c
}

// ChooseJoin implements PhysicalModel.
func (Physical) ChooseJoin(op algebra.Op, leftCost, rightCost, leftCard, rightCard, outCard float64) (algebra.PhysOp, float64) {
	base := leftCost + rightCost + outCard
	inlj := leftCard * (1 + log2(rightCard))
	if op.Dependent() || op.RegularVariant() == algebra.NestJoin {
		return algebra.PhysIndexNLJ, base + inlj
	}
	hash := 1.2*leftCard + 1.8*rightCard
	merge := 0.5 * (leftCard*log2(leftCard) + rightCard*log2(rightCard))

	best, c := algebra.PhysHashJoin, hash
	if merge < c {
		best, c = algebra.PhysSortMerge, merge
	}
	if inlj < c {
		best, c = algebra.PhysIndexNLJ, inlj
	}
	return best, base + c
}

// Name implements Model.
func (Physical) Name() string { return "Cphys" }

// log2 is a cardinality-safe binary logarithm: estimates below two rows
// clamp to 1 so that degenerate inputs never produce zero or negative
// per-row work.
func log2(card float64) float64 {
	if card < 2 {
		return 1
	}
	return math.Log2(card)
}

// Default is the model used when none is specified.
func Default() Model { return Cout{} }
