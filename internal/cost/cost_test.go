package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/algebra"
)

func TestEstimateCardInner(t *testing.T) {
	got := EstimateCard(algebra.Join, 100, 200, 0.01)
	if got != 200 {
		t.Errorf("inner join card = %g, want 200", got)
	}
}

func TestEstimateCardSemiAnti(t *testing.T) {
	// 100 left rows, each expects 0.5 partners -> matchFrac 0.5.
	semi := EstimateCard(algebra.SemiJoin, 100, 50, 0.01)
	anti := EstimateCard(algebra.AntiJoin, 100, 50, 0.01)
	if semi != 50 {
		t.Errorf("semijoin card = %g, want 50", semi)
	}
	if anti != 50 {
		t.Errorf("antijoin card = %g, want 50", anti)
	}
	// Semi + anti must always partition the left input.
	f := func(l, r uint16, s uint8) bool {
		lc, rc := float64(l%1000)+1, float64(r%1000)+1
		sel := (float64(s%100) + 1) / 100
		sm := EstimateCard(algebra.SemiJoin, lc, rc, sel)
		an := EstimateCard(algebra.AntiJoin, lc, rc, sel)
		return math.Abs(sm+an-lc) < 1e-9 && sm >= 0 && an >= 0 && sm <= lc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEstimateCardSemiCapped(t *testing.T) {
	// With many partners per row the match fraction caps at 1.
	got := EstimateCard(algebra.SemiJoin, 100, 1000, 0.5)
	if got != 100 {
		t.Errorf("capped semijoin card = %g, want 100", got)
	}
}

func TestEstimateCardOuter(t *testing.T) {
	// Left outer preserves all left rows: card >= leftCard and
	// card >= inner join card.
	f := func(l, r uint16, s uint8) bool {
		lc, rc := float64(l%1000)+1, float64(r%1000)+1
		sel := (float64(s%100) + 1) / 100
		lo := EstimateCard(algebra.LeftOuter, lc, rc, sel)
		in := EstimateCard(algebra.Join, lc, rc, sel)
		fo := EstimateCard(algebra.FullOuter, lc, rc, sel)
		return lo >= lc-1e-9 && lo >= in-1e-9 && fo >= lo-1e-9 && fo >= rc-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEstimateCardNestJoin(t *testing.T) {
	// Exactly one output row per left row (§5.1).
	if got := EstimateCard(algebra.NestJoin, 123, 456, 0.1); got != 123 {
		t.Errorf("nestjoin card = %g, want 123", got)
	}
}

func TestEstimateCardDependentMirrorsRegular(t *testing.T) {
	for _, pair := range [][2]algebra.Op{
		{algebra.DepJoin, algebra.Join},
		{algebra.DepLeftOuter, algebra.LeftOuter},
		{algebra.DepAntiJoin, algebra.AntiJoin},
		{algebra.DepSemiJoin, algebra.SemiJoin},
		{algebra.DepNestJoin, algebra.NestJoin},
	} {
		d := EstimateCard(pair[0], 100, 50, 0.1)
		r := EstimateCard(pair[1], 100, 50, 0.1)
		if d != r {
			t.Errorf("%v card %g != %v card %g", pair[0], d, pair[1], r)
		}
	}
}

func TestCoutModel(t *testing.T) {
	m := Cout{}
	if m.Name() != "Cout" {
		t.Error("name")
	}
	got := m.JoinCost(algebra.Join, 10, 20, 5, 5, 100)
	if got != 130 {
		t.Errorf("Cout = %g, want 130", got)
	}
}

func TestNestedLoopModel(t *testing.T) {
	m := NestedLoop{}
	got := m.JoinCost(algebra.Join, 10, 20, 5, 6, 100)
	if got != 10+20+30 {
		t.Errorf("Cnlj = %g", got)
	}
	if m.Name() != "Cnlj" {
		t.Error("name")
	}
}

func TestHashModel(t *testing.T) {
	m := Hash{}
	got := m.JoinCost(algebra.Join, 10, 20, 5, 6, 100)
	want := 10.0 + 20 + 5 + 1.5*6 + 100
	if got != want {
		t.Errorf("Chash = %g, want %g", got, want)
	}
	if m.Name() != "Chash" {
		t.Error("name")
	}
}

// Monotonicity: every model's JoinCost must grow with the input costs so
// that DP over optimal subplans is admissible.
func TestModelsMonotone(t *testing.T) {
	models := []Model{Cout{}, NestedLoop{}, Hash{}}
	f := func(lc, rc uint16, extra uint8) bool {
		l, r := float64(lc), float64(rc)
		e := float64(extra) + 1
		for _, m := range models {
			base := m.JoinCost(algebra.Join, l, r, 10, 10, 100)
			bumped := m.JoinCost(algebra.Join, l+e, r, 10, 10, 100)
			if bumped <= base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDefault(t *testing.T) {
	if Default().Name() != "Cout" {
		t.Error("default model must be Cout")
	}
}
