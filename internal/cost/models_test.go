package cost

import (
	"testing"

	"repro/internal/algebra"
)

// TestModelMonotonicity: every model must be monotone in the input
// costs (Bellman admissibility) — raising a child's cost must never
// lower the combined cost.
func TestModelMonotonicity(t *testing.T) {
	models := []Model{Cout{}, NestedLoop{}, Hash{}, Cmm{}, Physical{}}
	ops := []algebra.Op{
		algebra.Join, algebra.SemiJoin, algebra.AntiJoin,
		algebra.LeftOuter, algebra.FullOuter, algebra.NestJoin,
		algebra.DepJoin, algebra.DepSemiJoin,
	}
	for _, m := range models {
		for _, op := range ops {
			lo := m.JoinCost(op, 100, 200, 1000, 500, 2000)
			hiL := m.JoinCost(op, 150, 200, 1000, 500, 2000)
			hiR := m.JoinCost(op, 100, 260, 1000, 500, 2000)
			if hiL < lo || hiR < lo {
				t.Errorf("%s/%s: not monotone in input costs (%g, %g vs %g)",
					m.Name(), op, hiL, hiR, lo)
			}
		}
	}
}

// TestPhysicalChoosesEachOperator: each physical implementation wins in
// the regime it is designed for.
func TestPhysicalChoosesEachOperator(t *testing.T) {
	p := Physical{}
	cases := []struct {
		name              string
		op                algebra.Op
		lCard, rCard, out float64
		want              algebra.PhysOp
	}{
		// Balanced large inputs: hash.
		{"hash", algebra.Join, 1e6, 1e6, 1e6, algebra.PhysHashJoin},
		// Small balanced inputs: sort-merge (0.5·n·log n beats 1.2/1.8 linear).
		{"sort-merge", algebra.Join, 4, 4, 4, algebra.PhysSortMerge},
		// Tiny left, huge right: index nested loop.
		{"index-nlj", algebra.Join, 10, 1e7, 100, algebra.PhysIndexNLJ},
		// Dependent joins are pinned to index-NLJ regardless of cards.
		{"dependent", algebra.DepJoin, 1e6, 1e6, 1e6, algebra.PhysIndexNLJ},
		{"nestjoin", algebra.NestJoin, 1e6, 1e6, 1e6, algebra.PhysIndexNLJ},
	}
	for _, c := range cases {
		phys, cost := p.ChooseJoin(c.op, 0, 0, c.lCard, c.rCard, c.out)
		if phys != c.want {
			t.Errorf("%s: chose %v, want %v", c.name, phys, c.want)
		}
		// Contract: JoinCost must equal ChooseJoin's cost.
		if jc := p.JoinCost(c.op, 0, 0, c.lCard, c.rCard, c.out); jc != cost {
			t.Errorf("%s: JoinCost %g != ChooseJoin cost %g", c.name, jc, cost)
		}
		if cost <= 0 {
			t.Errorf("%s: non-positive cost %g", c.name, cost)
		}
	}
}

// TestCmmOperatorSensitivity: C_mm distinguishes operators where C_out
// does not — a semijoin (probe-only) must be cheaper than the
// corresponding inner join at equal cardinalities.
func TestCmmOperatorSensitivity(t *testing.T) {
	m := Cmm{}
	join := m.JoinCost(algebra.Join, 0, 0, 1000, 500, 800)
	semi := m.JoinCost(algebra.SemiJoin, 0, 0, 1000, 500, 800)
	full := m.JoinCost(algebra.FullOuter, 0, 0, 1000, 500, 800)
	if semi >= join {
		t.Errorf("Cmm: semijoin (%g) should be cheaper than join (%g)", semi, join)
	}
	if full <= join {
		t.Errorf("Cmm: full outer (%g) should be dearer than join (%g)", full, join)
	}
	dep := m.JoinCost(algebra.DepJoin, 0, 0, 1000, 500, 800)
	if dep <= join {
		t.Errorf("Cmm: dependent join (%g) should be dearer than join (%g)", dep, join)
	}
}

// TestModelNamesDistinct: cache keys embed Model.Name, so the names
// must be pairwise distinct.
func TestModelNamesDistinct(t *testing.T) {
	models := []Model{Cout{}, NestedLoop{}, Hash{}, Cmm{}, Physical{}}
	seen := map[string]bool{}
	for _, m := range models {
		if seen[m.Name()] {
			t.Errorf("duplicate model name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}
