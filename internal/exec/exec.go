// Package exec is a small in-memory tuple engine that evaluates both
// initial operator trees and optimized plans, so the repository can
// verify — not merely assert — that every reordering the optimizer
// produces computes the same result as the original query.
//
// The engine implements all binary operators of §5.1: inner join, left
// and full outer join (with NULL padding), left semijoin and antijoin,
// the nestjoin (binary grouping with aggregate expressions), and all
// dependent counterparts (the right side is re-evaluated per left tuple
// under a binding, as in the d-join R C S(R)).
//
// Predicates follow the §5.2 assumption that "all predicates are strong
// on all tables": the provided SumEq predicate evaluates to false as soon
// as any referenced attribute is NULL, so NULL-padded tuples never join.
//
// Everything is deliberately simple nested-loops evaluation — the engine
// exists for correctness checking and examples, not performance.
package exec

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/algebra"
)

// Value is a nullable 64-bit integer.
type Value struct {
	Int  int64
	Null bool
}

// NullValue is the SQL NULL used for outer-join padding.
var NullValue = Value{Null: true}

// V is shorthand for a non-null value.
func V(i int64) Value { return Value{Int: i} }

func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	return fmt.Sprintf("%d", v.Int)
}

// ColID identifies a column. Rel ≥ 0 names a column of a base relation
// (or dependent table); Rel < 0 identifies computed columns such as
// nestjoin aggregates (by convention Rel = -1-k for the k-th aggregate).
type ColID struct {
	Rel, Col int
}

func (c ColID) String() string {
	if c.Rel < 0 {
		return fmt.Sprintf("agg%d", -1-c.Rel)
	}
	return fmt.Sprintf("R%d.c%d", c.Rel, c.Col)
}

// AggCol returns the ColID of the k-th nestjoin aggregate column.
func AggCol(k int) ColID { return ColID{Rel: -1 - k} }

// Row is one tuple.
type Row []Value

// Rel is a materialized intermediate result: a schema plus rows.
type Rel struct {
	Cols []ColID
	Rows []Row
}

// index maps the schema to positions for predicate evaluation.
func (r *Rel) index() map[ColID]int {
	m := make(map[ColID]int, len(r.Cols))
	for i, c := range r.Cols {
		m[c] = i
	}
	return m
}

// Canonical renders the relation as a sorted multiset fingerprint:
// columns ordered by ColID, rows sorted lexicographically. Two results
// are equivalent iff their fingerprints match, independent of column or
// row order.
func (r *Rel) Canonical() string {
	perm := make([]int, len(r.Cols))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ca, cb := r.Cols[perm[a]], r.Cols[perm[b]]
		if ca.Rel != cb.Rel {
			return ca.Rel < cb.Rel
		}
		return ca.Col < cb.Col
	})
	lines := make([]string, 0, len(r.Rows)+1)
	var hdr strings.Builder
	for _, p := range perm {
		hdr.WriteString(r.Cols[p].String())
		hdr.WriteByte('|')
	}
	rows := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		var b strings.Builder
		for _, p := range perm {
			b.WriteString(row[p].String())
			b.WriteByte('|')
		}
		rows[i] = b.String()
	}
	sort.Strings(rows)
	lines = append(lines, hdr.String())
	lines = append(lines, rows...)
	return strings.Join(lines, "\n")
}

// Equal reports multiset equality of two results up to column order.
func Equal(a, b *Rel) bool { return a.Canonical() == b.Canonical() }

// Binding carries the outer tuple context for dependent evaluation.
// A nil *Binding is the empty context.
type Binding struct {
	parent *Binding
	cols   []ColID
	row    Row
}

// Extend returns a child binding with the given columns bound.
func (b *Binding) Extend(cols []ColID, row Row) *Binding {
	return &Binding{parent: b, cols: cols, row: row}
}

// Lookup finds a bound column value.
func (b *Binding) Lookup(c ColID) (Value, bool) {
	for cur := b; cur != nil; cur = cur.parent {
		for i, cc := range cur.cols {
			if cc == c {
				return cur.row[i], true
			}
		}
	}
	return Value{}, false
}

// Source provides the rows of a leaf.
type Source interface {
	// Columns returns the leaf's schema.
	Columns() []ColID
	// Rows materializes the rows under the given outer binding.
	Rows(b *Binding) ([]Row, error)
}

// BaseTable is an ordinary stored relation.
type BaseTable struct {
	RelID   int
	NumCols int
	Data    []Row
}

// Columns implements Source.
func (t *BaseTable) Columns() []ColID { return relCols(t.RelID, t.NumCols) }

// Rows implements Source.
func (t *BaseTable) Rows(*Binding) ([]Row, error) { return t.Data, nil }

// DepTable is a table-valued expression with free variables (§5.6's
// S(R)): its rows are a function of the bound outer columns.
type DepTable struct {
	RelID   int
	NumCols int
	// Needs lists the outer columns the function reads; evaluation fails
	// if any is unbound, which catches invalid plans that evaluate a
	// dependent expression before its provider.
	Needs []ColID
	Fn    func(args []Value) []Row
}

// Columns implements Source.
func (t *DepTable) Columns() []ColID { return relCols(t.RelID, t.NumCols) }

// Rows implements Source.
func (t *DepTable) Rows(b *Binding) ([]Row, error) {
	args := make([]Value, len(t.Needs))
	for i, c := range t.Needs {
		v, ok := b.Lookup(c)
		if !ok {
			return nil, fmt.Errorf("exec: dependent table R%d evaluated without binding for %v", t.RelID, c)
		}
		args[i] = v
	}
	return t.Fn(args), nil
}

func relCols(rel, n int) []ColID {
	cols := make([]ColID, n)
	for i := range cols {
		cols[i] = ColID{Rel: rel, Col: i}
	}
	return cols
}

// Pred is a join predicate over a concatenated row.
type Pred interface {
	// Eval returns the truth of the predicate; NULL semantics collapse
	// unknown to false (strong predicates, §5.2).
	Eval(idx map[ColID]int, row Row) (bool, error)
	fmt.Stringer
}

// SumEq is the predicate family used throughout the repository:
// sum(Left columns) = sum(Right columns). With a single column per side
// it is an ordinary equi-join predicate; with several it is the complex
// predicate of §1/§6 (e.g. R1.a + R2.b + R3.c = R4.d + R5.e + R6.f) that
// induces a true hyperedge.
type SumEq struct {
	Left, Right []ColID
}

// Eval implements Pred. Any NULL input makes the predicate false, so it
// is strong w.r.t. every referenced table.
func (p SumEq) Eval(idx map[ColID]int, row Row) (bool, error) {
	sum := func(cols []ColID) (int64, bool, error) {
		var s int64
		for _, c := range cols {
			pos, ok := idx[c]
			if !ok {
				return 0, false, fmt.Errorf("exec: predicate column %v not in scope", c)
			}
			v := row[pos]
			if v.Null {
				return 0, true, nil
			}
			s += v.Int
		}
		return s, false, nil
	}
	l, lnull, err := sum(p.Left)
	if err != nil {
		return false, err
	}
	r, rnull, err := sum(p.Right)
	if err != nil {
		return false, err
	}
	if lnull || rnull {
		return false, nil
	}
	return l == r, nil
}

func (p SumEq) String() string {
	f := func(cols []ColID) string {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = c.String()
		}
		return strings.Join(parts, "+")
	}
	return f(p.Left) + " = " + f(p.Right)
}

// AggKind selects the nestjoin aggregate function.
type AggKind int

// Aggregate kinds.
const (
	Count AggKind = iota // number of matching right tuples
	Sum                  // sum of one right column over the group
)

// Agg is a nestjoin aggregate specification: one a_i : e_i pair of §5.1
// (the common case of a single aggregate function call).
type Agg struct {
	Out  ColID // computed output column
	Kind AggKind
	Arg  ColID // summed column (Sum only)
}

// apply folds the aggregate over the group g(r) of matching right rows.
// An empty group yields COUNT = 0 and SUM = NULL, matching SQL.
func (a *Agg) apply(idx map[ColID]int, group []Row) (Value, error) {
	switch a.Kind {
	case Count:
		return V(int64(len(group))), nil
	case Sum:
		if len(group) == 0 {
			return NullValue, nil
		}
		pos, ok := idx[a.Arg]
		if !ok {
			return Value{}, fmt.Errorf("exec: aggregate column %v not in scope", a.Arg)
		}
		var s int64
		for _, r := range group {
			if r[pos].Null {
				continue
			}
			s += r[pos].Int
		}
		return V(s), nil
	}
	return Value{}, fmt.Errorf("exec: unknown aggregate kind %d", a.Kind)
}

// JoinSpec is the payload attached to optree predicates and hypergraph
// edges: the executable predicates plus an optional nestjoin aggregate.
type JoinSpec struct {
	Preds []Pred
	Agg   *Agg
}

// Plan is an executable operator tree. Leaves have a Source; inner nodes
// have an operator, children, predicates, and (for nestjoins) an
// aggregate.
type Plan struct {
	Op          algebra.Op
	Left, Right *Plan
	Leaf        Source
	Preds       []Pred
	Agg         *Agg
}

// NewLeaf wraps a source.
func NewLeaf(s Source) *Plan { return &Plan{Leaf: s} }

// NewJoin builds an operator node.
func NewJoin(op algebra.Op, l, r *Plan, spec JoinSpec) *Plan {
	return &Plan{Op: op, Left: l, Right: r, Preds: spec.Preds, Agg: spec.Agg}
}

// Run evaluates the plan with an empty outer binding.
func Run(p *Plan) (*Rel, error) { return eval(p, nil) }

func eval(p *Plan, b *Binding) (*Rel, error) {
	if p.Leaf != nil {
		rows, err := p.Leaf.Rows(b)
		if err != nil {
			return nil, err
		}
		return &Rel{Cols: p.Leaf.Columns(), Rows: rows}, nil
	}
	left, err := eval(p.Left, b)
	if err != nil {
		return nil, err
	}
	if p.Op.Dependent() {
		return evalDependent(p, b, left)
	}
	right, err := eval(p.Right, b)
	if err != nil {
		return nil, err
	}
	return combine(p.Op.RegularVariant(), left, right, p.Preds, p.Agg)
}

// evalDependent re-evaluates the right subtree once per left tuple, with
// the left tuple bound (R C S(R) semantics, §5.1).
func evalDependent(p *Plan, b *Binding, left *Rel) (*Rel, error) {
	op := p.Op.RegularVariant()
	var out *Rel
	for _, lrow := range left.Rows {
		b2 := b.Extend(left.Cols, lrow)
		right, err := eval(p.Right, b2)
		if err != nil {
			return nil, err
		}
		part, err := combine(op, &Rel{Cols: left.Cols, Rows: []Row{lrow}}, right, p.Preds, p.Agg)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = &Rel{Cols: part.Cols}
		}
		out.Rows = append(out.Rows, part.Rows...)
	}
	if out == nil {
		// Empty left input: derive the schema without rows.
		right, err := eval(p.Right, b.Extend(left.Cols, makeNullRow(len(left.Cols))))
		if err != nil {
			// The schema is still known even if the probe fails.
			right = &Rel{Cols: p.Right.columns()}
		}
		part, err := combine(op, &Rel{Cols: left.Cols}, right, p.Preds, p.Agg)
		if err != nil {
			return nil, err
		}
		return part, nil
	}
	return out, nil
}

func makeNullRow(n int) Row {
	r := make(Row, n)
	for i := range r {
		r[i] = NullValue
	}
	return r
}

// columns derives the output schema of a plan without evaluating it.
func (p *Plan) columns() []ColID {
	if p.Leaf != nil {
		return p.Leaf.Columns()
	}
	l := p.Left.columns()
	switch p.Op.RegularVariant() {
	case algebra.SemiJoin, algebra.AntiJoin:
		return l
	case algebra.NestJoin:
		return append(append([]ColID{}, l...), p.Agg.Out)
	default:
		return append(append([]ColID{}, l...), p.Right.columns()...)
	}
}

// combine evaluates one regular binary operator by nested loops.
func combine(op algebra.Op, left, right *Rel, preds []Pred, agg *Agg) (*Rel, error) {
	concatCols := append(append([]ColID{}, left.Cols...), right.Cols...)
	idx := (&Rel{Cols: concatCols}).index()

	match := func(lrow, rrow Row) (bool, error) {
		row := append(append(Row{}, lrow...), rrow...)
		for _, p := range preds {
			ok, err := p.Eval(idx, row)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	switch op {
	case algebra.Join, algebra.LeftOuter, algebra.FullOuter:
		out := &Rel{Cols: concatCols}
		rightMatched := make([]bool, len(right.Rows))
		for _, lrow := range left.Rows {
			found := false
			for ri, rrow := range right.Rows {
				ok, err := match(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					found = true
					rightMatched[ri] = true
					out.Rows = append(out.Rows, concat(lrow, rrow))
				}
			}
			if !found && (op == algebra.LeftOuter || op == algebra.FullOuter) {
				out.Rows = append(out.Rows, concat(lrow, makeNullRow(len(right.Cols))))
			}
		}
		if op == algebra.FullOuter {
			for ri, rrow := range right.Rows {
				if !rightMatched[ri] {
					out.Rows = append(out.Rows, concat(makeNullRow(len(left.Cols)), rrow))
				}
			}
		}
		return out, nil

	case algebra.SemiJoin, algebra.AntiJoin:
		out := &Rel{Cols: left.Cols}
		for _, lrow := range left.Rows {
			found := false
			for _, rrow := range right.Rows {
				ok, err := match(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					found = true
					break
				}
			}
			if found == (op == algebra.SemiJoin) {
				out.Rows = append(out.Rows, lrow)
			}
		}
		return out, nil

	case algebra.NestJoin:
		if agg == nil {
			return nil, fmt.Errorf("exec: nestjoin without aggregate specification")
		}
		out := &Rel{Cols: append(append([]ColID{}, left.Cols...), agg.Out)}
		rightIdx := right.index()
		for _, lrow := range left.Rows {
			var group []Row
			for _, rrow := range right.Rows {
				ok, err := match(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					group = append(group, rrow)
				}
			}
			v, err := agg.apply(rightIdx, group)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, append(append(Row{}, lrow...), v))
		}
		return out, nil
	}
	return nil, fmt.Errorf("exec: unsupported operator %v", op)
}

func concat(a, b Row) Row { return append(append(Row{}, a...), b...) }
