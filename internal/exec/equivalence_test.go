package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/dpsize"
	"repro/internal/dpsub"
	"repro/internal/hypergraph"
	"repro/internal/optree"
	"repro/internal/plan"
	"repro/internal/topdown"
)

// treeGen builds random initial operator trees whose predicates respect
// two scoping rules the paper's framework assumes:
//
//   - visibility: an ancestor predicate references only columns that
//     survive projection (semijoins, antijoins, and nestjoins hide their
//     right side);
//   - simplification (§5.2): with all predicates strong, a predicate must
//     not reference the null-extended side of a descendant outer join —
//     otherwise the query is unsimplified (the outer join would collapse
//     to an inner join) and the conflict rules are not applicable.
//
// The generator therefore tracks the "strict" (non-nullable) visible
// tables and draws predicate references from them. Full outer joins make
// both sides nullable, so they are only placed at the root.
type treeGen struct {
	rng     *rand.Rand
	ops     []algebra.Op
	nextAgg int
}

func (g *treeGen) build(lo, hi int, isRoot bool) (node *optree.Node, strict bitset.Set) {
	if hi-lo == 1 {
		return optree.NewLeaf(lo), bitset.Single(lo)
	}
	split := lo + 1 + g.rng.Intn(hi-lo-1)
	left, lstrict := g.build(lo, split, false)
	right, rstrict := g.build(split, hi, false)

	op := g.ops[g.rng.Intn(len(g.ops))]
	for op == algebra.FullOuter && !isRoot {
		op = g.ops[g.rng.Intn(len(g.ops))]
	}
	a := pick(g.rng, lstrict)
	b := pick(g.rng, rstrict)
	pred := SumEq{Left: []ColID{{Rel: a, Col: 0}}, Right: []ColID{{Rel: b, Col: 0}}}
	spec := JoinSpec{Preds: []Pred{pred}}
	if op == algebra.NestJoin {
		spec.Agg = &Agg{Out: AggCol(g.nextAgg), Kind: Count}
		g.nextAgg++
	}
	node = optree.NewOp(op, left, right, optree.Predicate{
		Tables:  bitset.New(a, b),
		Sel:     0.1 + g.rng.Float64()*0.4,
		Label:   pred.String(),
		Payload: spec,
	})
	switch op {
	case algebra.Join:
		strict = lstrict.Union(rstrict)
	case algebra.LeftOuter:
		strict = lstrict // right side becomes nullable
	case algebra.FullOuter:
		strict = bitset.Empty // both sides nullable (root only)
	default: // semi, anti, nest project the right side away
		strict = lstrict
	}
	return node, strict
}

func pick(rng *rand.Rand, s bitset.Set) int {
	elems := s.Elems()
	return elems[rng.Intn(len(elems))]
}

// randomDB fills n single-column tables with small values so joins both
// hit and miss.
func randomDB(rng *rand.Rand, n int) *DB {
	db := &DB{Sources: make([]Source, n)}
	for i := 0; i < n; i++ {
		rows := make([]Row, 1+rng.Intn(4))
		for j := range rows {
			rows[j] = Row{V(int64(rng.Intn(4)))}
		}
		db.Sources[i] = &BaseTable{RelID: i, NumCols: 1, Data: rows}
	}
	return db
}

type namedSolver struct {
	name  string
	solve func(t *optree.Tree) (*plan.Node, *DB, error)
}

// TestPlanEquivalence is the central §5 property test: for random
// operator trees over joins, outer joins, semijoins, antijoins, and
// nestjoins, every plan produced from the TES-derived hypergraph — by
// DPhyp, DPsize, DPsub, top-down memoization, and DPhyp in
// generate-and-test mode — must compute exactly the initial tree's
// result on random databases.
func TestPlanEquivalence(t *testing.T) {
	opsMix := [][]algebra.Op{
		{algebra.Join},
		{algebra.Join, algebra.LeftOuter},
		{algebra.Join, algebra.SemiJoin, algebra.AntiJoin},
		{algebra.Join, algebra.LeftOuter, algebra.FullOuter},
		{algebra.Join, algebra.LeftOuter, algebra.SemiJoin, algebra.AntiJoin, algebra.NestJoin},
	}
	rng := rand.New(rand.NewSource(20080610))
	trials := 0
	for mi, mix := range opsMix {
		for rep := 0; rep < 24; rep++ {
			n := 2 + rng.Intn(5)
			gen := &treeGen{rng: rng, ops: mix}
			root, _ := gen.build(0, n, true)
			rels := make([]optree.RelInfo, n)
			for i := range rels {
				rels[i] = optree.RelInfo{Name: fmt.Sprintf("R%d", i), Card: float64(10 + rng.Intn(90))}
			}
			for _, rule := range []optree.ConflictRule{optree.Conservative, optree.Published} {
				tr, err := optree.Analyze(root, rels, rule)
				if err != nil {
					t.Fatalf("mix %d rep %d: Analyze: %v", mi, rep, err)
				}
				db := randomDB(rng, n)
				refPlan, err := FromOpTree(root, db)
				if err != nil {
					t.Fatalf("FromOpTree: %v", err)
				}
				ref, err := Run(refPlan)
				if err != nil {
					t.Fatalf("reference execution: %v", err)
				}
				checkSolvers(t, tr, db, ref, fmt.Sprintf("mix %d rep %d rule %v tree %v", mi, rep, rule, root))
				trials++
			}
		}
	}
	if trials == 0 {
		t.Fatal("no trials executed")
	}
}

func checkSolvers(t *testing.T, tr *optree.Tree, db *DB, ref *Rel, ctx string) {
	t.Helper()
	gTES := tr.Hypergraph(optree.TESEdges)
	gSES := tr.Hypergraph(optree.SESEdges)

	run := func(name string, p *plan.Node, graph *hypergraph.Graph, err error) {
		t.Helper()
		if err != nil {
			t.Errorf("%s / %s: solve failed: %v", ctx, name, err)
			return
		}
		ep, err := FromPlan(p, graph, db)
		if err != nil {
			t.Errorf("%s / %s: convert: %v", ctx, name, err)
			return
		}
		got, err := Run(ep)
		if err != nil {
			t.Errorf("%s / %s: execute: %v\nplan:\n%s", ctx, name, err, p)
			return
		}
		if !Equal(ref, got) {
			t.Errorf("%s / %s: result mismatch\nplan:\n%s\nwant:\n%s\ngot:\n%s",
				ctx, name, p, ref.Canonical(), got.Canonical())
		}
	}

	p1, _, err1 := core.Solve(gTES, core.Options{})
	run("dphyp", p1, gTES, err1)

	p2, _, err2 := dpsize.Solve(gTES, dpsize.Options{})
	run("dpsize", p2, gTES, err2)

	p3, _, err3 := dpsub.Solve(gTES, dpsub.Options{})
	run("dpsub", p3, gTES, err3)

	p4, _, err4 := topdown.Solve(gTES, topdown.Options{})
	run("topdown", p4, gTES, err4)

	p5, _, err5 := core.Solve(gSES, core.Options{Filter: tr.Filter(gSES)})
	run("dphyp-generate-and-test", p5, gSES, err5)
}

// TestDependentJoinEquivalence checks the §5.6 pipeline end to end: a
// query over a base table, a dependent table expression S(R), and a
// further base table is optimized and executed; the dependent join must
// be placed so its provider is on the left, and the result must match
// direct evaluation.
func TestDependentJoinEquivalence(t *testing.T) {
	// Tree: (R0 ⋈ S1(R0)) ⋈ R2 with predicates (R0,S1) and (S1,R2).
	p01 := SumEq{Left: []ColID{{Rel: 0, Col: 0}}, Right: []ColID{{Rel: 1, Col: 0}}}
	p12 := SumEq{Left: []ColID{{Rel: 1, Col: 0}}, Right: []ColID{{Rel: 2, Col: 0}}}
	inner := optree.NewOp(algebra.Join, optree.NewLeaf(0), optree.NewLeaf(1),
		optree.Predicate{Tables: bitset.New(0, 1), Sel: 0.3, Payload: JoinSpec{Preds: []Pred{p01}}})
	root := optree.NewOp(algebra.Join, inner, optree.NewLeaf(2),
		optree.Predicate{Tables: bitset.New(1, 2), Sel: 0.3, Payload: JoinSpec{Preds: []Pred{p12}}})
	rels := []optree.RelInfo{
		{Name: "R0", Card: 20},
		{Name: "S(R0)", Card: 5, Free: bitset.New(0)},
		{Name: "R2", Card: 20},
	}
	tr, err := optree.Analyze(root, rels, optree.Conservative)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(rng, 3)
		// Replace R1 with a dependent table: S(r) = {r mod 3, (r+1) mod 3}.
		db.Sources[1] = &DepTable{
			RelID: 1, NumCols: 1,
			Needs: []ColID{{Rel: 0, Col: 0}},
			Fn: func(args []Value) []Row {
				if args[0].Null {
					return nil
				}
				v := args[0].Int
				return []Row{{V(v % 3)}, {V((v + 1) % 3)}}
			},
		}
		refPlan, err := FromOpTree(root, db)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Run(refPlan)
		if err != nil {
			t.Fatal(err)
		}

		g := tr.Hypergraph(optree.TESEdges)
		p, _, err := core.Solve(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := FromPlan(p, g, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(ep)
		if err != nil {
			t.Fatalf("execute: %v\n%s", err, p)
		}
		if !Equal(ref, got) {
			t.Fatalf("trial %d mismatch\nplan:\n%s\nwant:\n%s\ngot:\n%s",
				trial, p, ref.Canonical(), got.Canonical())
		}
	}
}
