package exec

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/optree"
	"repro/internal/plan"
)

// DB binds relation indices to row sources.
type DB struct {
	Sources []Source
}

// FromOpTree converts an initial operator tree into an executable plan.
// Each operator applies exactly its own predicate (the payload of its
// Predicate), which defines the query's reference semantics.
func FromOpTree(n *optree.Node, db *DB) (*Plan, error) {
	if n.IsLeaf() {
		if n.Rel >= len(db.Sources) || db.Sources[n.Rel] == nil {
			return nil, fmt.Errorf("exec: no source for relation %d", n.Rel)
		}
		return NewLeaf(db.Sources[n.Rel]), nil
	}
	left, err := FromOpTree(n.Left, db)
	if err != nil {
		return nil, err
	}
	right, err := FromOpTree(n.Right, db)
	if err != nil {
		return nil, err
	}
	spec, err := specOf(n.Pred.Payload)
	if err != nil {
		return nil, err
	}
	// If the right side contains dependent tables bound by the left, the
	// initial tree's operator is evaluated dependently (the initial tree
	// writes R ⋈ S(R) with a regular operator; evaluation is dependent by
	// nature, cf. the §5.6 equivalences).
	op := n.Op
	if dependsOnSibling(n.Right, n.Left, db) {
		op = op.DependentVariant()
		if !op.Valid() {
			return nil, fmt.Errorf("exec: operator %v cannot be made dependent", n.Op)
		}
	}
	return NewJoin(op, left, right, spec), nil
}

// dependsOnSibling reports whether some dependent table under sub reads
// columns of relations under sibling.
func dependsOnSibling(sub, sibling *optree.Node, db *DB) bool {
	sibs := map[int]bool{}
	var collect func(n *optree.Node)
	collect = func(n *optree.Node) {
		if n.IsLeaf() {
			sibs[n.Rel] = true
			return
		}
		collect(n.Left)
		collect(n.Right)
	}
	collect(sibling)

	found := false
	var walk func(n *optree.Node)
	walk = func(n *optree.Node) {
		if n.IsLeaf() {
			if dt, ok := db.Sources[n.Rel].(*DepTable); ok {
				for _, c := range dt.Needs {
					if sibs[c.Rel] {
						found = true
					}
				}
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(sub)
	return found
}

// FromPlan converts an optimizer plan into an executable plan. The
// predicates applied at each node are the payloads of the hypergraph
// edges the optimizer assigned there (plan.Node.Edges), conjoined into
// the operator's join condition.
func FromPlan(p *plan.Node, g *hypergraph.Graph, db *DB) (*Plan, error) {
	if p.IsLeaf() {
		if p.Rel >= len(db.Sources) || db.Sources[p.Rel] == nil {
			return nil, fmt.Errorf("exec: no source for relation %d", p.Rel)
		}
		return NewLeaf(db.Sources[p.Rel]), nil
	}
	left, err := FromPlan(p.Left, g, db)
	if err != nil {
		return nil, err
	}
	right, err := FromPlan(p.Right, g, db)
	if err != nil {
		return nil, err
	}
	var spec JoinSpec
	for _, ei := range p.Edges {
		s, err := specOf(g.Edge(ei).Payload)
		if err != nil {
			return nil, fmt.Errorf("edge %d: %w", ei, err)
		}
		spec.Preds = append(spec.Preds, s.Preds...)
		if s.Agg != nil {
			if spec.Agg != nil {
				return nil, fmt.Errorf("exec: two aggregates at one plan node")
			}
			spec.Agg = s.Agg
		}
	}
	return NewJoin(p.Op, left, right, spec), nil
}

func specOf(payload any) (JoinSpec, error) {
	switch v := payload.(type) {
	case nil:
		return JoinSpec{}, nil // e.g. selectivity-1 cross repair edges
	case JoinSpec:
		return v, nil
	case *JoinSpec:
		return *v, nil
	case Pred:
		return JoinSpec{Preds: []Pred{v}}, nil
	default:
		return JoinSpec{}, fmt.Errorf("exec: unsupported predicate payload %T", payload)
	}
}
