package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/optree"
	"repro/internal/simplify"
)

// looseTreeGen builds random initial operator trees WITHOUT the
// simplification precondition: predicates may reference nullable
// (outer-join-padded) tables, which is exactly what real, unsimplified
// queries look like. Visibility is still respected (semijoin/antijoin/
// nestjoin right sides stay out of scope).
type looseTreeGen struct {
	rng *rand.Rand
	ops []algebra.Op
}

func (g *looseTreeGen) build(lo, hi int) (node *optree.Node, visible bitset.Set) {
	if hi-lo == 1 {
		return optree.NewLeaf(lo), bitset.Single(lo)
	}
	split := lo + 1 + g.rng.Intn(hi-lo-1)
	left, lvis := g.build(lo, split)
	right, rvis := g.build(split, hi)

	op := g.ops[g.rng.Intn(len(g.ops))]
	a := pick(g.rng, lvis)
	b := pick(g.rng, rvis)
	pred := SumEq{Left: []ColID{{Rel: a, Col: 0}}, Right: []ColID{{Rel: b, Col: 0}}}
	node = optree.NewOp(op, left, right, optree.Predicate{
		Tables:  bitset.New(a, b),
		Sel:     0.1 + g.rng.Float64()*0.4,
		Label:   pred.String(),
		Payload: JoinSpec{Preds: []Pred{pred}},
	})
	switch op {
	case algebra.Join, algebra.LeftOuter, algebra.FullOuter:
		visible = lvis.Union(rvis)
	default:
		visible = lvis
	}
	return node, visible
}

// TestSimplifyThenOptimizeEquivalence closes the loop on the §5.2
// precondition: unsimplified random trees (nullable predicate
// references allowed) are first simplified, then TES-analyzed,
// optimized by DPhyp, executed, and compared against the ORIGINAL
// (unsimplified) tree's direct evaluation. Simplification must be an
// equivalence transformation, and after it the conflict rules must be
// sound.
func TestSimplifyThenOptimizeEquivalence(t *testing.T) {
	mixes := [][]algebra.Op{
		{algebra.Join, algebra.LeftOuter},
		{algebra.Join, algebra.LeftOuter, algebra.SemiJoin},
		{algebra.Join, algebra.LeftOuter, algebra.FullOuter},
	}
	rng := rand.New(rand.NewSource(19970301))
	for mi, mix := range mixes {
		for rep := 0; rep < 40; rep++ {
			n := 2 + rng.Intn(5)
			gen := &looseTreeGen{rng: rng, ops: mix}
			root, _ := gen.build(0, n)
			rels := make([]optree.RelInfo, n)
			for i := range rels {
				rels[i] = optree.RelInfo{Name: fmt.Sprintf("R%d", i), Card: float64(10 + rng.Intn(90))}
			}
			db := randomDB(rng, n)

			// Reference result from the UNSIMPLIFIED tree.
			refPlan, err := FromOpTree(root, db)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Run(refPlan)
			if err != nil {
				t.Fatal(err)
			}

			// Simplify in place, then sanity-check: direct evaluation of
			// the simplified tree must already match.
			simplify.Simplify(root)
			simpPlan, err := FromOpTree(root, db)
			if err != nil {
				t.Fatal(err)
			}
			simp, err := Run(simpPlan)
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(ref, simp) {
				t.Fatalf("mix %d rep %d: simplification changed semantics\ntree: %v\nwant:\n%s\ngot:\n%s",
					mi, rep, root, ref.Canonical(), simp.Canonical())
			}

			for _, rule := range []optree.ConflictRule{optree.Conservative, optree.Published} {
				tr, err := optree.Analyze(root, rels, rule)
				if err != nil {
					t.Fatalf("mix %d rep %d: %v", mi, rep, err)
				}
				g := tr.Hypergraph(optree.TESEdges)
				p, _, err := core.Solve(g, core.Options{})
				if err != nil {
					t.Fatalf("mix %d rep %d rule %v: %v", mi, rep, rule, err)
				}
				ep, err := FromPlan(p, g, db)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(ep)
				if err != nil {
					t.Fatalf("mix %d rep %d rule %v: execute: %v\n%s", mi, rep, rule, err, p)
				}
				if !Equal(ref, got) {
					t.Errorf("mix %d rep %d rule %v: mismatch after simplify+optimize\ntree: %v\nplan:\n%s\nwant:\n%s\ngot:\n%s",
						mi, rep, rule, root, p, ref.Canonical(), got.Canonical())
				}
			}
		}
	}
}
