package exec

import (
	"testing"

	"repro/internal/algebra"
)

// rows builds single-column rows from ints.
func rows1(vals ...int64) []Row {
	out := make([]Row, len(vals))
	for i, v := range vals {
		out[i] = Row{V(v)}
	}
	return out
}

func table(rel int, vals ...int64) *BaseTable {
	return &BaseTable{RelID: rel, NumCols: 1, Data: rows1(vals...)}
}

func eq(a, b ColID) Pred { return SumEq{Left: []ColID{a}, Right: []ColID{b}} }

func col(rel int) ColID { return ColID{Rel: rel, Col: 0} }

func mustRun(t *testing.T, p *Plan) *Rel {
	t.Helper()
	r, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func joinSpec(rels ...int) JoinSpec {
	return JoinSpec{Preds: []Pred{eq(col(rels[0]), col(rels[1]))}}
}

func TestInnerJoin(t *testing.T) {
	p := NewJoin(algebra.Join,
		NewLeaf(table(0, 1, 2, 3)),
		NewLeaf(table(1, 2, 2, 4)),
		joinSpec(0, 1))
	r := mustRun(t, p)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (value 2 matches twice)", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[0].Int != 2 || row[1].Int != 2 {
			t.Errorf("row = %v", row)
		}
	}
}

func TestLeftOuterJoin(t *testing.T) {
	p := NewJoin(algebra.LeftOuter,
		NewLeaf(table(0, 1, 2)),
		NewLeaf(table(1, 2)),
		joinSpec(0, 1))
	r := mustRun(t, p)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	var padded, matched int
	for _, row := range r.Rows {
		if row[1].Null {
			padded++
			if row[0].Int != 1 {
				t.Errorf("padded row = %v", row)
			}
		} else {
			matched++
		}
	}
	if padded != 1 || matched != 1 {
		t.Errorf("padded=%d matched=%d", padded, matched)
	}
}

func TestFullOuterJoin(t *testing.T) {
	p := NewJoin(algebra.FullOuter,
		NewLeaf(table(0, 1, 2)),
		NewLeaf(table(1, 2, 3)),
		joinSpec(0, 1))
	r := mustRun(t, p)
	// 1 matched (2=2), left 1 padded, right 3 padded.
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(r.Rows), r.Canonical())
	}
	var leftPad, rightPad int
	for _, row := range r.Rows {
		if row[0].Null {
			leftPad++
		}
		if row[1].Null {
			rightPad++
		}
	}
	if leftPad != 1 || rightPad != 1 {
		t.Errorf("leftPad=%d rightPad=%d", leftPad, rightPad)
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	mk := func(op algebra.Op) *Rel {
		return mustRun(t, NewJoin(op,
			NewLeaf(table(0, 1, 2, 2, 3)),
			NewLeaf(table(1, 2, 2)),
			joinSpec(0, 1)))
	}
	semi := mk(algebra.SemiJoin)
	// Semijoin keeps each matching left row once, no duplicates from
	// multiple partners.
	if len(semi.Rows) != 2 {
		t.Fatalf("semi rows = %d, want 2", len(semi.Rows))
	}
	if len(semi.Cols) != 1 {
		t.Error("semijoin must project to left columns")
	}
	anti := mk(algebra.AntiJoin)
	if len(anti.Rows) != 2 {
		t.Fatalf("anti rows = %d, want 2 (values 1 and 3)", len(anti.Rows))
	}
	for _, row := range anti.Rows {
		if row[0].Int == 2 {
			t.Error("antijoin kept a matching row")
		}
	}
}

func TestNestJoinCount(t *testing.T) {
	agg := &Agg{Out: AggCol(0), Kind: Count}
	p := NewJoin(algebra.NestJoin,
		NewLeaf(table(0, 1, 2)),
		NewLeaf(table(1, 2, 2, 5)),
		JoinSpec{Preds: []Pred{eq(col(0), col(1))}, Agg: agg})
	r := mustRun(t, p)
	// Exactly one output row per left row (§5.1).
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	counts := map[int64]int64{}
	for _, row := range r.Rows {
		counts[row[0].Int] = row[1].Int
	}
	if counts[1] != 0 || counts[2] != 2 {
		t.Errorf("counts = %v, want 1->0, 2->2", counts)
	}
}

func TestNestJoinSum(t *testing.T) {
	right := &BaseTable{RelID: 1, NumCols: 2, Data: []Row{
		{V(2), V(10)}, {V(2), V(20)}, {V(9), V(99)},
	}}
	agg := &Agg{Out: AggCol(0), Kind: Sum, Arg: ColID{Rel: 1, Col: 1}}
	p := NewJoin(algebra.NestJoin,
		NewLeaf(table(0, 1, 2)),
		NewLeaf(right),
		JoinSpec{Preds: []Pred{eq(col(0), col(1))}, Agg: agg})
	r := mustRun(t, p)
	sums := map[int64]Value{}
	for _, row := range r.Rows {
		sums[row[0].Int] = row[1]
	}
	if !sums[1].Null {
		t.Errorf("empty group sum = %v, want NULL", sums[1])
	}
	if sums[2].Null || sums[2].Int != 30 {
		t.Errorf("sum = %v, want 30", sums[2])
	}
}

func TestNestJoinWithoutAggFails(t *testing.T) {
	p := NewJoin(algebra.NestJoin, NewLeaf(table(0, 1)), NewLeaf(table(1, 1)),
		JoinSpec{Preds: []Pred{eq(col(0), col(1))}})
	if _, err := Run(p); err == nil {
		t.Error("nestjoin without aggregate must fail")
	}
}

// Strong predicates: NULL-padded tuples never join (§5.2). An inner join
// stacked on a left outer join must drop the padded rows.
func TestStrongPredicateDropsPadded(t *testing.T) {
	lo := NewJoin(algebra.LeftOuter,
		NewLeaf(table(0, 1, 2)),
		NewLeaf(table(1, 2)),
		joinSpec(0, 1))
	top := NewJoin(algebra.Join, lo, NewLeaf(table(2, 1, 2)), joinSpec(1, 2))
	r := mustRun(t, top)
	// Only the (2,2) row survives to join with R2's 2.
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1:\n%s", len(r.Rows), r.Canonical())
	}
	if r.Rows[0][0].Int != 2 {
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestComplexSumPredicate(t *testing.T) {
	// R0.c0 + R1.c0 = R2.c0: a true hyperedge predicate.
	j01 := NewJoin(algebra.Join, NewLeaf(table(0, 1, 2)), NewLeaf(table(1, 3, 4)), JoinSpec{})
	_ = j01
	pred := SumEq{Left: []ColID{col(0), col(1)}, Right: []ColID{col(2)}}
	top := NewJoin(algebra.Join,
		NewJoin(algebra.Join, NewLeaf(table(0, 1, 2)), NewLeaf(table(1, 3, 4)), JoinSpec{}),
		NewLeaf(table(2, 4, 5, 100)),
		JoinSpec{Preds: []Pred{pred}})
	r := mustRun(t, top)
	// Pairs: (1,3)->4 ✓, (1,4)->5 ✓, (2,3)->5 ✓, (2,4)->6 ✗. So 3 rows.
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(r.Rows), r.Canonical())
	}
}

func TestDependentJoin(t *testing.T) {
	// S(r) = {r, r+1} for each outer tuple r of R0.
	dep := &DepTable{
		RelID:   1,
		NumCols: 1,
		Needs:   []ColID{col(0)},
		Fn: func(args []Value) []Row {
			if args[0].Null {
				return nil
			}
			v := args[0].Int
			return rows1(v, v+1)
		},
	}
	p := NewJoin(algebra.DepJoin,
		NewLeaf(table(0, 10, 20)),
		NewLeaf(dep),
		JoinSpec{}) // no predicate: d-join with p = true
	r := mustRun(t, p)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4:\n%s", len(r.Rows), r.Canonical())
	}
}

func TestDependentSemiAndAnti(t *testing.T) {
	// S(r) non-empty iff r is even.
	dep := &DepTable{
		RelID:   1,
		NumCols: 1,
		Needs:   []ColID{col(0)},
		Fn: func(args []Value) []Row {
			if args[0].Null || args[0].Int%2 != 0 {
				return nil
			}
			return rows1(args[0].Int)
		},
	}
	semi := mustRun(t, NewJoin(algebra.DepSemiJoin,
		NewLeaf(table(0, 1, 2, 3, 4)), NewLeaf(dep), JoinSpec{}))
	if len(semi.Rows) != 2 {
		t.Errorf("dep semijoin rows = %d, want 2", len(semi.Rows))
	}
	anti := mustRun(t, NewJoin(algebra.DepAntiJoin,
		NewLeaf(table(0, 1, 2, 3, 4)), NewLeaf(dep), JoinSpec{}))
	if len(anti.Rows) != 2 {
		t.Errorf("dep antijoin rows = %d, want 2", len(anti.Rows))
	}
}

func TestUnboundDependentTableFails(t *testing.T) {
	dep := &DepTable{
		RelID: 1, NumCols: 1, Needs: []ColID{col(0)},
		Fn: func([]Value) []Row { return nil },
	}
	// Regular join: the dependent table is evaluated without a binding.
	p := NewJoin(algebra.Join, NewLeaf(dep), NewLeaf(table(0, 1)), JoinSpec{})
	if _, err := Run(p); err == nil {
		t.Error("unbound dependent table must fail")
	}
}

func TestCanonicalEquality(t *testing.T) {
	a := &Rel{Cols: []ColID{col(0), col(1)}, Rows: []Row{{V(1), V(2)}, {V(3), V(4)}}}
	// Same multiset, different column and row order.
	b := &Rel{Cols: []ColID{col(1), col(0)}, Rows: []Row{{V(4), V(3)}, {V(2), V(1)}}}
	if !Equal(a, b) {
		t.Error("results must be equal up to column and row order")
	}
	c := &Rel{Cols: []ColID{col(0), col(1)}, Rows: []Row{{V(1), V(2)}}}
	if Equal(a, c) {
		t.Error("different multisets must differ")
	}
	// Duplicates matter.
	d := &Rel{Cols: []ColID{col(0), col(1)}, Rows: []Row{{V(1), V(2)}, {V(1), V(2)}}}
	e := &Rel{Cols: []ColID{col(0), col(1)}, Rows: []Row{{V(1), V(2)}}}
	if Equal(d, e) {
		t.Error("multiset cardinality must matter")
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := table(0)
	r := mustRun(t, NewJoin(algebra.LeftOuter, NewLeaf(empty), NewLeaf(table(1, 1)), joinSpec(0, 1)))
	if len(r.Rows) != 0 {
		t.Error("left outer join of empty left must be empty (left linearity, Def. 5)")
	}
	r2 := mustRun(t, NewJoin(algebra.FullOuter, NewLeaf(empty), NewLeaf(table(1, 7)), joinSpec(0, 1)))
	if len(r2.Rows) != 1 || !r2.Rows[0][0].Null {
		t.Errorf("full outer join must preserve the right side: %v", r2.Rows)
	}
}

func TestPredicateOutOfScope(t *testing.T) {
	p := NewJoin(algebra.Join, NewLeaf(table(0, 1)), NewLeaf(table(1, 1)),
		JoinSpec{Preds: []Pred{eq(col(0), col(9))}})
	if _, err := Run(p); err == nil {
		t.Error("out-of-scope predicate column must fail")
	}
}

func TestValueString(t *testing.T) {
	if NullValue.String() != "NULL" || V(42).String() != "42" {
		t.Error("value rendering")
	}
	if AggCol(0).String() != "agg0" {
		t.Errorf("AggCol = %q", AggCol(0).String())
	}
	if col(1).String() != "R1.c0" {
		t.Errorf("col = %q", col(1).String())
	}
	if (SumEq{Left: []ColID{col(0)}, Right: []ColID{col(1)}}).String() != "R0.c0 = R1.c0" {
		t.Error("SumEq rendering")
	}
}
