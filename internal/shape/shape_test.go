package shape

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/hypergraph"
	"repro/internal/workload"
)

// TestClassifyCanonicalShapes: every workload generator maps to its
// class across a range of sizes.
func TestClassifyCanonicalShapes(t *testing.T) {
	cfg := workload.DefaultConfig()
	cases := []struct {
		name string
		g    *hypergraph.Graph
		want Class
	}{
		{"chain1", workload.Chain(1, cfg), Chain},
		{"chain2", workload.Chain(2, cfg), Chain},
		{"triangle", workload.Cycle(3, cfg), Clique}, // C3 = K3; clique has precedence
		{"grid2x2", workload.Grid(2, 2, cfg), Cycle}, // 2×2 lattice = C4
	}
	for n := 3; n <= 12; n++ {
		cases = append(cases, struct {
			name string
			g    *hypergraph.Graph
			want Class
		}{fmt.Sprintf("chain%d", n), workload.Chain(n, cfg), Chain})
	}
	for n := 4; n <= 12; n++ {
		cases = append(cases,
			struct {
				name string
				g    *hypergraph.Graph
				want Class
			}{fmt.Sprintf("cycle%d", n), workload.Cycle(n, cfg), Cycle},
			struct {
				name string
				g    *hypergraph.Graph
				want Class
			}{fmt.Sprintf("star%d", n), workload.Star(n, cfg), Star})
	}
	for n := 3; n <= 10; n++ {
		cases = append(cases, struct {
			name string
			g    *hypergraph.Graph
			want Class
		}{fmt.Sprintf("clique%d", n), workload.Clique(n, cfg), Clique})
	}
	for _, dims := range [][2]int{{2, 3}, {2, 5}, {3, 3}, {3, 4}, {4, 4}} {
		cases = append(cases, struct {
			name string
			g    *hypergraph.Graph
			want Class
		}{fmt.Sprintf("grid%dx%d", dims[0], dims[1]), workload.Grid(dims[0], dims[1], cfg), Grid})
	}
	for _, c := range cases {
		p := Classify(c.g)
		if p.Class != c.want {
			t.Errorf("%s: classified %v, want %v (profile %+v)", c.name, p.Class, c.want, p)
		}
		if !p.Connected {
			t.Errorf("%s: reported disconnected", c.name)
		}
		if p.Rels != c.g.NumRels() {
			t.Errorf("%s: Rels = %d, want %d", c.name, p.Rels, c.g.NumRels())
		}
	}
}

// TestClassifyHyperedgeFamilies: the §4 hyperedge families keep their
// skeleton class and report the hyperedge count.
func TestClassifyHyperedgeFamilies(t *testing.T) {
	cfg := workload.DefaultConfig()
	// At 0 and 1 splits every extra edge is still a genuine hyperedge,
	// so the simple skeleton — and with it the class — is unchanged.
	// Deeper splits legitimately turn hyperedges into simple chords and
	// leave the canonical classes; those only need to stay well-formed.
	for splits := 0; splits <= 1; splits++ {
		p := Classify(workload.CycleHyper(8, splits, cfg))
		if p.Class != Cycle {
			t.Errorf("CycleHyper(8,%d): class %v, want cycle", splits, p.Class)
		}
		if p.HyperEdges == 0 {
			t.Errorf("CycleHyper(8,%d): no hyperedges counted", splits)
		}
		if p.HyperDensity <= 0 || p.HyperDensity >= 1 {
			t.Errorf("CycleHyper(8,%d): hyper density %g outside (0,1)", splits, p.HyperDensity)
		}
		p = Classify(workload.StarHyper(8, splits, cfg))
		if p.Class != Star {
			t.Errorf("StarHyper(8,%d): class %v, want star", splits, p.Class)
		}
	}
	for splits := 2; splits <= 3; splits++ {
		for _, g := range []*hypergraph.Graph{
			workload.CycleHyper(8, splits, cfg),
			workload.StarHyper(8, splits, cfg),
		} {
			if p := Classify(g); !p.Connected || p.Rels != g.NumRels() {
				t.Errorf("split %d: malformed profile %+v", splits, p)
			}
		}
	}
}

// TestClassifyEdgeCases: empty graphs, duplicate predicates,
// hyperedge-only connectivity, and genuinely irregular graphs.
func TestClassifyEdgeCases(t *testing.T) {
	if p := Classify(hypergraph.New()); p.Class != Mixed || p.Rels != 0 {
		t.Errorf("empty graph: %+v", p)
	}

	// Duplicate predicates between the same pair collapse: a chain with a
	// doubled edge is still a chain.
	g := workload.Chain(5, workload.DefaultConfig())
	g.AddSimpleEdge(1, 2, 0.5)
	if p := Classify(g); p.Class != Chain || p.SimpleEdges != 4 {
		t.Errorf("chain with duplicate edge: %+v", p)
	}

	// Two chains held together only by a hyperedge: skeleton is
	// disconnected, so the class is Mixed, but the graph is Connected.
	g = hypergraph.New()
	for i := 0; i < 6; i++ {
		g.AddRelation(fmt.Sprintf("R%d", i), 100)
	}
	g.AddSimpleEdge(0, 1, 0.1)
	g.AddSimpleEdge(1, 2, 0.1)
	g.AddSimpleEdge(3, 4, 0.1)
	g.AddSimpleEdge(4, 5, 0.1)
	g.AddEdge(hypergraph.Edge{U: bitset.New(0, 1, 2), V: bitset.New(3, 4, 5), Sel: 0.05})
	p := Classify(g)
	if p.Class != Mixed || !p.Connected || p.HyperEdges != 1 {
		t.Errorf("hyperedge-bridged chains: %+v", p)
	}

	// A chain with one chord is none of the canonical shapes.
	g = workload.Chain(6, workload.DefaultConfig())
	g.AddSimpleEdge(0, 3, 0.2)
	if p := Classify(g); p.Class != Mixed {
		t.Errorf("chain with chord: class %v, want mixed", p.Class)
	}

	// Fully disconnected pair of relations.
	g = hypergraph.New()
	g.AddRelation("A", 10)
	g.AddRelation("B", 20)
	if p := Classify(g); p.Class != Mixed || p.Connected {
		t.Errorf("edgeless pair: %+v", p)
	}
}

// relabel rebuilds g with relation i stored at position perm[i],
// preserving structure exactly.
func relabel(g *hypergraph.Graph, perm []int) *hypergraph.Graph {
	inv := make([]int, len(perm))
	for old, nw := range perm {
		inv[nw] = old
	}
	ng := hypergraph.New()
	for nw := 0; nw < g.NumRels(); nw++ {
		r := g.Relation(inv[nw])
		ng.AddRelation(r.Name, r.Card)
	}
	mapSet := func(s bitset.Set) bitset.Set {
		var out bitset.Set
		s.ForEach(func(e int) { out = out.Add(perm[e]) })
		return out
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		ng.AddEdge(hypergraph.Edge{
			U: mapSet(e.U), V: mapSet(e.V), W: mapSet(e.W),
			Sel: e.Sel, Op: e.Op, Label: e.Label,
		})
	}
	return ng
}

// TestClassifyRelabelInvariance: the profile must not depend on relation
// numbering. Property-style: random permutations over every generator.
func TestClassifyRelabelInvariance(t *testing.T) {
	cfg := workload.DefaultConfig()
	rng := rand.New(rand.NewSource(42))
	graphs := []*hypergraph.Graph{
		workload.Chain(7, cfg),
		workload.Cycle(8, cfg),
		workload.Star(9, cfg),
		workload.Clique(6, cfg),
		workload.Grid(3, 4, cfg),
		workload.CycleHyper(8, 1, cfg),
		workload.StarHyper(8, 2, cfg),
		workload.RandomSimple(rng, 9, 4, cfg),
		workload.RandomHyper(rng, 8, 3, cfg),
	}
	for gi, g := range graphs {
		base := Classify(g)
		for trial := 0; trial < 20; trial++ {
			perm := rng.Perm(g.NumRels())
			got := Classify(relabel(g, perm))
			// Selectivities and cardinalities move with the permutation;
			// every structural feature must be identical.
			if got != base {
				t.Fatalf("graph %d trial %d: profile changed under relabeling:\n got %+v\nwant %+v",
					gi, trial, got, base)
			}
		}
	}
}

// TestClassifyIsReadOnly: Classify on a frozen graph must not trip the
// race detector when called concurrently (exercised with -race in CI).
func TestClassifyIsReadOnly(t *testing.T) {
	g := workload.Star(10, workload.DefaultConfig())
	g.Freeze()
	done := make(chan Profile, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- Classify(g) }()
	}
	want := Classify(g)
	for i := 0; i < 8; i++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent Classify diverged: %+v vs %+v", got, want)
		}
	}
}
