// Package shape classifies the topology of a query hypergraph.
//
// The paper's evaluation (§4) shows that the relative performance of the
// enumeration algorithms is a function of query shape: on chains and
// cycles the three dynamic programming variants are within small factors
// of each other, while on stars and cliques DPsize and DPsub fall behind
// DPhyp by orders of magnitude (Figs. 5–7). An adaptive planner
// therefore needs a cheap, label-invariant classifier that recognizes
// the canonical shapes before enumeration starts; the Planner's
// SolverAuto mode routes on the result.
//
// Classify runs in O(|V| + |E|): it computes the degree sequence of the
// simple-edge skeleton (hyperedges are counted separately — they do not
// change the skeleton class, mirroring the paper's "cycle/star with
// hyperedges" families), checks connectivity with a union-find pass, and
// matches the degree profile against the canonical shapes. Degree
// profiles are permutation-invariant, so the classification cannot
// depend on relation labels or insertion order.
package shape

import (
	"fmt"

	"repro/internal/hypergraph"
)

// Class is a topology class of the simple-edge skeleton.
type Class int

// The recognized classes, in classification precedence order (a triangle
// is reported as Clique, not Cycle; a 2×2 grid as Cycle, not Grid; a
// 2-relation query as Chain, not Star).
const (
	// Mixed is everything that matches no canonical shape, including
	// graphs whose simple-edge skeleton is disconnected (e.g. queries
	// held together only by hyperedges).
	Mixed Class = iota
	// Chain is a path R0 – R1 – … – R(n-1); a single relation counts.
	Chain
	// Cycle is a closed chain (every relation has exactly two simple
	// neighbors).
	Cycle
	// Star has one hub connected to n-1 satellites (Fig. 7).
	Star
	// Clique has all n(n-1)/2 simple edges.
	Clique
	// Grid is an a×b lattice (a,b ≥ 2), matched by its degree profile.
	Grid
)

var classNames = map[Class]string{
	Mixed: "mixed", Chain: "chain", Cycle: "cycle",
	Star: "star", Clique: "clique", Grid: "grid",
}

func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Profile describes a hypergraph's topology: the skeleton class plus the
// quantitative features (relation count, edge counts, densities) the
// routing policy combines with the paper's §4 crossover data.
type Profile struct {
	// Class is the topology class of the simple-edge skeleton.
	Class Class
	// Rels is the number of relations, |V|.
	Rels int
	// SimpleEdges counts distinct unordered simple-edge pairs
	// (duplicate predicates between the same two relations collapse).
	SimpleEdges int
	// HyperEdges counts non-simple edges (complex and generalized
	// hyperedges, §2.1/§6), duplicates included.
	HyperEdges int
	// Density is SimpleEdges / (n choose 2): 0 for edgeless graphs,
	// 1 for cliques.
	Density float64
	// HyperDensity is HyperEdges / (SimpleEdges + HyperEdges), the
	// fraction of join predicates that are hyperedges.
	HyperDensity float64
	// MaxDegree is the largest simple-edge degree of any relation.
	MaxDegree int
	// Connected reports whether the full hypergraph (hyperedges
	// included) is one reachability component.
	Connected bool
}

// Classify computes the Profile of g in O(|V| + |E|) time (plus the
// inverse-Ackermann union-find factor). It never mutates the graph and
// is safe for concurrent use on a frozen graph.
//
// The Grid class is matched by its degree profile (edge count and degree
// histogram of some a×b factorization), which is a necessary but not
// sufficient condition for being a lattice; the router only uses the
// class to pick among exact solvers, so a false Grid positive costs at
// most a suboptimal-speed — never a suboptimal-plan — choice.
func Classify(g *hypergraph.Graph) Profile {
	n := g.NumRels()
	p := Profile{Rels: n}
	if n == 0 {
		return p
	}

	deg := make([]int, n)
	seenPair := make(map[string]struct{}, g.NumEdges())
	all := newUnionFind(n)  // connectivity of the full hypergraph
	skel := newUnionFind(n) // connectivity of the simple skeleton

	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.Simple() {
			a, b := e.U.Min(), e.V.Min()
			pair := e.U.Union(e.V).Key()
			if _, dup := seenPair[pair]; !dup {
				seenPair[pair] = struct{}{}
				deg[a]++
				deg[b]++
				p.SimpleEdges++
			}
			skel.union(a, b)
			all.union(a, b)
		} else {
			p.HyperEdges++
			nodes := e.Nodes()
			first := nodes.Min()
			nodes.ForEach(func(v int) { all.union(first, v) })
		}
	}

	hist := map[int]int{}
	for _, d := range deg {
		hist[d]++
		if d > p.MaxDegree {
			p.MaxDegree = d
		}
	}
	p.Connected = all.components() == 1
	if n >= 2 {
		p.Density = float64(p.SimpleEdges) / float64(n*(n-1)/2)
	}
	if total := p.SimpleEdges + p.HyperEdges; total > 0 {
		p.HyperDensity = float64(p.HyperEdges) / float64(total)
	}

	m := p.SimpleEdges
	skelConnected := skel.components() == 1
	switch {
	case n == 1:
		p.Class = Chain
	case !skelConnected:
		p.Class = Mixed
	case m == n-1 && p.MaxDegree <= 2:
		// A connected graph with n-1 edges is a tree; max degree 2
		// makes it a path.
		p.Class = Chain
	case n >= 3 && m == n*(n-1)/2:
		// All distinct pairs present. Checked before Cycle so that the
		// triangle — which is both — reports as Clique.
		p.Class = Clique
	case m == n && p.MaxDegree == 2:
		// Connected and 2-regular (sum of degrees is 2n, so max 2
		// forces all 2): a single cycle.
		p.Class = Cycle
	case m == n-1 && p.MaxDegree == n-1:
		// A tree with a universal hub.
		p.Class = Star
	case gridDegreeProfile(n, m, hist):
		p.Class = Grid
	default:
		p.Class = Mixed
	}
	return p
}

// gridDegreeProfile reports whether (n, m, degree histogram) matches an
// a×b lattice for some factorization n = a·b with 2 ≤ a ≤ b: m must be
// a(b-1) + b(a-1), the four corners have degree 2, border nodes degree
// 3, and interior nodes degree 4.
func gridDegreeProfile(n, m int, hist map[int]int) bool {
	for a := 2; a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		b := n / a
		if m != a*(b-1)+b*(a-1) {
			continue
		}
		want := map[int]int{2: 4}
		if a == 2 {
			// No interior: only corners (degree 2) and border (degree 3).
			if b > 2 {
				want[3] = 2 * (b - 2)
			}
		} else {
			want[3] = 2*(a-2) + 2*(b-2)
			want[4] = (a - 2) * (b - 2)
		}
		if histEqual(hist, want) {
			return true
		}
	}
	return false
}

func histEqual(got, want map[int]int) bool {
	if len(got) != len(want) {
		return false
	}
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// unionFind is a small path-halving union-find over [0, n).
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

func (u *unionFind) components() int {
	c := 0
	for i := range u.parent {
		if u.find(i) == i {
			c++
		}
	}
	return c
}
