package obs

import (
	"testing"
	"time"
)

// TestSlowRingEviction is the satellite check on /debug/plans ring
// semantics: the ring fills to capacity, then a slower newcomer
// displaces the fastest resident and a faster newcomer is dropped.
func TestSlowRingEviction(t *testing.T) {
	r := NewSlowRing(3)
	for i, d := range []time.Duration{5 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond} {
		if !r.Observe(RingEntry{Fingerprint: string(rune('a' + i)), Duration: d}) {
			t.Fatalf("entry %d rejected before the ring was full", i)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}

	// Slower than the fastest resident (1ms): evicts it.
	if !r.Observe(RingEntry{Fingerprint: "d", Duration: 2 * time.Millisecond}) {
		t.Fatal("slower-than-min newcomer must be admitted")
	}
	// Faster than everything resident: dropped.
	if r.Observe(RingEntry{Fingerprint: "e", Duration: 500 * time.Microsecond}) {
		t.Fatal("faster-than-min newcomer must be rejected")
	}

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	wantOrder := []string{"a", "c", "d"} // 5ms, 3ms, 2ms — slowest first
	for i, want := range wantOrder {
		if snap[i].Fingerprint != want {
			t.Fatalf("snapshot[%d] = %q (%v), want %q; full: %+v",
				i, snap[i].Fingerprint, snap[i].Duration, want, snap)
		}
	}
	// The 1ms entry ("b") was the eviction victim.
	for _, e := range snap {
		if e.Fingerprint == "b" {
			t.Fatal("fastest resident was not evicted")
		}
	}
}

func TestSlowRingTiesNewestFirst(t *testing.T) {
	r := NewSlowRing(4)
	for i := 0; i < 3; i++ {
		r.Observe(RingEntry{Duration: time.Millisecond})
	}
	snap := r.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Seq < snap[i].Seq {
			t.Fatalf("equal durations must sort newest first: %+v", snap)
		}
	}
}

func TestSlowRingSeqAssigned(t *testing.T) {
	r := NewSlowRing(2)
	r.Observe(RingEntry{Duration: time.Second})
	r.Observe(RingEntry{Duration: time.Second})
	r.Observe(RingEntry{Duration: 2 * time.Second})
	snap := r.Snapshot()
	if snap[0].Seq != 3 {
		t.Fatalf("seq of third observation = %d, want 3", snap[0].Seq)
	}
}

func TestSlowRingDefaultSize(t *testing.T) {
	r := NewSlowRing(0)
	for i := 0; i < DefaultRingSize+5; i++ {
		r.Observe(RingEntry{Duration: time.Duration(i+1) * time.Millisecond})
	}
	if r.Len() != DefaultRingSize {
		t.Fatalf("Len = %d, want %d", r.Len(), DefaultRingSize)
	}
}
