package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func seedMetrics() (*PlanMetrics, Key) {
	m := NewPlanMetrics()
	k := Key{Shape: "chain", Algorithm: "iterdp", N: "65-128"}
	for i := 0; i < 20; i++ {
		m.Observe(k, time.Duration(i+1)*time.Millisecond, false)
	}
	m.Observe(Key{Shape: "star", Algorithm: "dphyp", N: "1-8"}, 50*time.Microsecond, false)
	return m, k
}

// TestHistoryRoundTrip is the satellite check: load → merge → save →
// load must preserve counts exactly, and a second save cycle built
// from Clone(baseline).Merge(live) must not double-count.
func TestHistoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.json")

	m, k := seedMetrics()

	// First boot: nothing on disk yet.
	baseline, err := LoadHistory(path)
	if err != nil {
		t.Fatalf("load missing: %v", err)
	}
	if baseline.Len() != 0 {
		t.Fatalf("missing file should load empty, got %d series", baseline.Len())
	}

	// Save cycle 1: baseline (empty) + live snapshot.
	out := baseline.Clone()
	if err := out.Merge(m.Snapshot()); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := out.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}

	// Restart: reload, counts intact.
	reloaded, err := LoadHistory(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if reloaded.Len() != 2 {
		t.Fatalf("reloaded %d series, want 2", reloaded.Len())
	}
	entries := reloaded.Entries()
	var chain *HistoryEntry
	for i := range entries {
		if entries[i].Shape == "chain" {
			chain = &entries[i]
		}
	}
	if chain == nil || chain.Count != 20 {
		t.Fatalf("chain series after reload = %+v", chain)
	}
	if chain.P50Seconds <= 0 || chain.P99Seconds < chain.P50Seconds {
		t.Fatalf("derived quantiles p50=%v p99=%v", chain.P50Seconds, chain.P99Seconds)
	}

	// Save cycle 2 with the same live metrics: Clone keeps the loaded
	// baseline pristine, so repeated periodic saves double the counts
	// (baseline 20 + live 20), not accumulate per save.
	out2 := reloaded.Clone()
	if err := out2.Merge(m.Snapshot()); err != nil {
		t.Fatalf("merge 2: %v", err)
	}
	if err := out2.Save(path); err != nil {
		t.Fatalf("save 2: %v", err)
	}
	final, err := LoadHistory(path)
	if err != nil {
		t.Fatalf("final load: %v", err)
	}
	if got, _ := seriesCount(final, k); got != 40 {
		t.Fatalf("after second save chain count = %d, want 40", got)
	}
	// The reloaded baseline itself must be untouched by the merges.
	if got, _ := seriesCount(reloaded, k); got != 20 {
		t.Fatalf("baseline mutated: count = %d, want 20", got)
	}
}

func seriesCount(h *History, k Key) (uint64, bool) {
	for _, e := range h.Entries() {
		if e.Shape == k.Shape && e.Algorithm == k.Algorithm && e.N == k.N {
			return e.Count, true
		}
	}
	return 0, false
}

func TestHistoryQuantile(t *testing.T) {
	m := NewPlanMetrics()
	k := Key{Shape: "cycle", Algorithm: "dpccp", N: "9-16"}
	// 100 observations at ~1ms: p50 and p99 both land in the bucket
	// containing 1ms.
	for i := 0; i < 100; i++ {
		m.Observe(k, time.Millisecond, false)
	}
	h := m.Snapshot()
	p50, ok := h.Quantile(k, 0.5)
	if !ok {
		t.Fatal("no p50 for observed series")
	}
	if p50 < 100*time.Microsecond || p50 > 10*time.Millisecond {
		t.Fatalf("p50 = %v, want within the 1ms bucket neighborhood", p50)
	}
	if _, ok := h.Quantile(Key{Shape: "nope"}, 0.5); ok {
		t.Fatal("quantile of unknown series must report !ok")
	}

	// Mass beyond the last bound reports the last bound (conservative).
	m2 := NewPlanMetrics()
	k2 := Key{Shape: "clique", Algorithm: "dpsub", N: "17-32"}
	m2.Observe(k2, time.Hour, false)
	p99, ok := m2.Snapshot().Quantile(k2, 0.99)
	if !ok || p99 != time.Duration(DefaultBounds[len(DefaultBounds)-1]*float64(time.Second)) {
		t.Fatalf("overflow p99 = %v ok=%v, want last bound", p99, ok)
	}
}

func TestHistoryLoadErrors(t *testing.T) {
	dir := t.TempDir()

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHistory(corrupt); err == nil {
		t.Fatal("corrupt file must error, not load empty")
	}

	versioned := filepath.Join(dir, "vers.json")
	if err := os.WriteFile(versioned, []byte(`{"version":99,"bounds":[],"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHistory(versioned); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch error = %v", err)
	}

	badBounds := filepath.Join(dir, "bounds.json")
	if err := os.WriteFile(badBounds, []byte(`{"version":1,"bounds":[0.5],"entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadHistory(badBounds); err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Fatalf("bounds mismatch error = %v", err)
	}
}

func TestHistoryMergeBoundsMismatch(t *testing.T) {
	a := NewHistory()
	b := &History{bounds: []float64{0.1, 1}, entries: map[Key]*HistoryEntry{}}
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bounds must error")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil = %v", err)
	}
}
