package obs

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// sampleRE matches one Prometheus text-format sample line:
// name{label="value",...} value — with the label block optional.
var sampleRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? [-+0-9.eEInfNa]+$`)

var leRE = regexp.MustCompile(`le="([^"]*)"`)

// ValidatePrometheusText is a minimal exposition-format checker used by
// the metrics tests (package tests and the service's /metrics test):
// it verifies that every sample line parses as `name{labels} value`,
// that histogram families declare TYPE histogram, and that each
// histogram series has monotone cumulative buckets ending in a +Inf
// bucket. It is not a full Prometheus parser — it exists to catch the
// label-escaping and monotonicity mistakes hand-rolled exporters make.
func ValidatePrometheusText(text string) error {
	histograms := map[string]bool{}
	// series key (family + labels minus le) → last cumulative value
	lastCum := map[string]float64{}
	sawInf := map[string]bool{}

	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("bad TYPE line %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("unknown metric type in %q", line)
			}
			if parts[3] == "histogram" {
				histograms[parts[2]] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRE.MatchString(line) {
			return fmt.Errorf("malformed sample line %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		val, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			return fmt.Errorf("bad value in %q: %v", line, err)
		}
		for fam := range histograms {
			if name != fam+"_bucket" {
				continue
			}
			labels := ""
			if i := strings.Index(line, "{"); i >= 0 {
				labels = line[i : strings.Index(line, "} ")+1]
			}
			le := leRE.FindStringSubmatch(labels)
			if le == nil {
				return fmt.Errorf("histogram bucket without le label: %q", line)
			}
			series := fam + "|" + strings.Replace(labels, le[0], "", 1)
			if val < lastCum[series] {
				return fmt.Errorf("non-monotone histogram bucket: %q (prev %g)", line, lastCum[series])
			}
			lastCum[series] = val
			if le[1] == "+Inf" {
				sawInf[series] = true
			}
		}
	}
	for series := range lastCum {
		if !sawInf[series] {
			return fmt.Errorf("histogram series %s has no +Inf bucket", series)
		}
	}
	return nil
}
