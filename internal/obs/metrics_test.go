package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestNBucket(t *testing.T) {
	cases := map[int]string{
		1: "1-8", 8: "1-8", 9: "9-16", 16: "9-16", 17: "17-32",
		33: "33-64", 64: "33-64", 65: "65-128", 100: "65-128",
		129: "129-256", 1000: "257+",
	}
	for n, want := range cases {
		if got := NBucket(n); got != want {
			t.Errorf("NBucket(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestHistogramObserveAndWrite(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(20 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(20 * time.Second) // beyond the last bound: +Inf only
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	var buf bytes.Buffer
	h.Write(&buf, "x_seconds", `shape="star"`)
	out := buf.String()
	if !strings.Contains(out, `x_seconds_bucket{shape="star",le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `x_seconds_count{shape="star"} 3`) {
		t.Fatalf("missing count:\n%s", out)
	}
	// Buckets must be cumulative and monotone.
	re := regexp.MustCompile(`x_seconds_bucket\{shape="star",le="[^"]+"\} (\d+)`)
	last := -1
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		v, _ := strconv.Atoi(m[1])
		if v < last {
			t.Fatalf("non-monotone buckets:\n%s", out)
		}
		last = v
	}
}

func TestPlanMetricsObserveAndRender(t *testing.T) {
	m := NewPlanMetrics()
	star := Key{Shape: "star", Algorithm: "dphyp", N: "1-8"}
	chain := Key{Shape: "chain", Algorithm: "iterdp", N: "65-128"}
	m.Observe(star, 100*time.Microsecond, false)
	m.Observe(star, 10*time.Microsecond, true) // cache hit counts too
	m.Observe(chain, 50*time.Millisecond, false)

	keys := m.Keys()
	if len(keys) != 2 || keys[0] != chain || keys[1] != star {
		t.Fatalf("Keys = %v", keys)
	}

	var buf bytes.Buffer
	m.WritePrometheus(&buf, "planner_plan_seconds")
	out := buf.String()
	for _, want := range []string{
		"# TYPE planner_plan_seconds histogram",
		`planner_plan_seconds_count{shape="star",algorithm="dphyp",n="1-8"} 2`,
		`planner_plan_seconds_count{shape="chain",algorithm="iterdp",n="65-128"} 1`,
		`planner_plan_seconds_cache_hits_total{shape="star",algorithm="dphyp",n="1-8"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestPrometheusTextValidity parses the rendered exposition: every
// non-comment line must be `name{label="v",...} value` or `name value`,
// every histogram family must have monotone buckets ending at +Inf ==
// count, and the new shape/algorithm labels must be present.
func TestPrometheusTextValidity(t *testing.T) {
	m := NewPlanMetrics()
	m.Observe(Key{Shape: "star", Algorithm: "dphyp", N: "1-8"}, time.Millisecond, false)
	m.Observe(Key{Shape: "clique", Algorithm: "topdown", N: "9-16"}, 40*time.Second, false)
	var buf bytes.Buffer
	m.WritePrometheus(&buf, "planner_plan_seconds")

	if err := ValidatePrometheusText(buf.String()); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.String())
	}
	for _, label := range []string{`shape="star"`, `algorithm="dphyp"`, `algorithm="topdown"`, `n="9-16"`} {
		if !strings.Contains(buf.String(), label) {
			t.Errorf("missing label %s", label)
		}
	}
}

func TestPlanMetricsSnapshotMatchesObservations(t *testing.T) {
	m := NewPlanMetrics()
	k := Key{Shape: "cycle", Algorithm: "dpccp", N: "9-16"}
	for i := 0; i < 10; i++ {
		m.Observe(k, time.Duration(i+1)*time.Millisecond, false)
	}
	h := m.Snapshot()
	entries := h.Entries()
	if len(entries) != 1 || entries[0].Count != 10 {
		t.Fatalf("snapshot entries = %+v", entries)
	}
	if p50, ok := h.Quantile(k, 0.5); !ok || p50 <= 0 || p50 > 10*time.Millisecond {
		t.Fatalf("p50 = %v ok=%v", p50, ok)
	}
}
