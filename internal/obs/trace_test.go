package obs

import (
	"testing"
	"time"
)

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Begin()
	h := tr.Start(PhaseEnumerate)
	if h != -1 {
		t.Fatalf("nil trace Start = %d, want -1", h)
	}
	tr.End(h)
	tr.Annotate(h, 1, 2, 3, 4)
	tr.SetRound(h, 1)
	tr.Finish()
	if tr.Len() != 0 || tr.Spans() != nil || tr.PhaseTotal(PhaseEnumerate) != 0 {
		t.Fatal("nil trace should report empty")
	}
}

func TestTraceSpansAndNesting(t *testing.T) {
	tr := NewTrace()
	outer := tr.Start(PhaseEnumerate)
	inner := tr.Start(PhaseMaterialize)
	time.Sleep(time.Millisecond)
	tr.End(inner)
	tr.End(outer)
	next := tr.Start(PhaseRecost)
	tr.End(next)
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Phase != PhaseEnumerate || spans[0].Depth != 0 {
		t.Fatalf("outer span = %+v, want enumerate at depth 0", spans[0])
	}
	if spans[1].Phase != PhaseMaterialize || spans[1].Depth != 1 {
		t.Fatalf("inner span = %+v, want materialize at depth 1", spans[1])
	}
	if spans[2].Depth != 0 {
		t.Fatalf("span after closed nesting at depth %d, want 0", spans[2].Depth)
	}
	if spans[0].Dur <= 0 || spans[1].Dur <= 0 {
		t.Fatal("span durations must be positive")
	}
	if spans[1].Dur > spans[0].Dur {
		t.Fatalf("nested span (%v) longer than its parent (%v)", spans[1].Dur, spans[0].Dur)
	}
	if tr.Total < spans[0].Dur {
		t.Fatalf("Total %v < outer span %v", tr.Total, spans[0].Dur)
	}
	if spans[0].Round != -1 {
		t.Fatalf("default Round = %d, want -1", spans[0].Round)
	}
}

func TestTraceAnnotateAndRound(t *testing.T) {
	tr := NewTrace()
	h := tr.Start(PhaseCluster)
	tr.Annotate(h, 1234, 56, 4, 7)
	tr.SetRound(h, 2)
	tr.End(h)
	s := tr.Spans()[0]
	if s.Pairs != 1234 || s.MemoEntries != 56 || s.Workers != 4 || s.Subproblems != 7 || s.Round != 2 {
		t.Fatalf("annotated span = %+v", s)
	}
}

func TestTraceOverflowDrops(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < MaxSpans+10; i++ {
		h := tr.Start(PhaseOther)
		tr.End(h)
	}
	if tr.Len() != MaxSpans {
		t.Fatalf("Len = %d, want %d", tr.Len(), MaxSpans)
	}
	if tr.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", tr.Dropped)
	}
}

func TestTraceBeginResets(t *testing.T) {
	tr := NewTrace()
	tr.End(tr.Start(PhaseRoute))
	tr.Finish()
	tr.Begin()
	if tr.Len() != 0 || tr.Total != 0 || tr.Dropped != 0 {
		t.Fatalf("Begin did not reset: len=%d total=%v dropped=%d", tr.Len(), tr.Total, tr.Dropped)
	}
}

func TestPhaseNames(t *testing.T) {
	if PhaseCluster.String() != "iterdp_round" {
		t.Fatalf("PhaseCluster = %q", PhaseCluster.String())
	}
	if Phase(200).String() != "other" {
		t.Fatalf("unknown phase = %q", Phase(200).String())
	}
}

func TestPhaseTotal(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < 3; i++ {
		h := tr.Start(PhaseCluster)
		time.Sleep(200 * time.Microsecond)
		tr.End(h)
	}
	if got := tr.PhaseTotal(PhaseCluster); got < 600*time.Microsecond {
		t.Fatalf("PhaseTotal(cluster) = %v, want >= 600µs", got)
	}
	if tr.PhaseTotal(PhaseRecost) != 0 {
		t.Fatal("PhaseTotal of unrecorded phase must be 0")
	}
}
