package obs

import (
	"sync"
	"time"
)

// DefaultRingSize is the capacity of a SlowRing unless the server
// configures otherwise.
const DefaultRingSize = 32

// RingEntry summarizes one finished planning request for the
// /debug/plans surface. Trace is non-nil only when the request was
// traced (explain=1 or sampled); the summary fields are always filled
// so an untraced slow plan is still attributable.
type RingEntry struct {
	Seq         uint64        // monotone admission sequence (debugging aid)
	Time        time.Time     // when the plan finished
	Fingerprint string        // coalescing/cache key hash identifying the query
	Shape       string        // topology class ("unclassified" when unrouted)
	Algorithm   string        // algorithm that produced the plan
	Relations   int           // query size
	Duration    time.Duration // wall time of the planning call
	Pairs       int64         // csg-cmp-pairs the enumeration emitted
	Workers     int           // enumeration worker count (0/1 = serial)
	CacheHit    bool
	Coalesced   bool
	Fallback    bool   // greedy fallback after a budget trip
	Trace       *Trace // phase spans, when the request was traced
}

// SlowRing keeps the N slowest plans seen so far: a bounded set where
// a finished plan displaces the current fastest member once the ring
// is full, and is dropped if it is faster than everything already
// there. Eviction order is therefore strictly by duration — the
// fastest resident always goes first — which is what /debug/plans
// wants: the ring converges on the worst requests the server has
// served, not merely the latest.
type SlowRing struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	entries []RingEntry
}

// NewSlowRing returns a ring keeping the n slowest plans
// (DefaultRingSize when n <= 0).
func NewSlowRing(n int) *SlowRing {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &SlowRing{cap: n, entries: make([]RingEntry, 0, n)}
}

// Observe offers one finished plan to the ring and reports whether it
// was admitted. The entry's Seq is assigned here.
func (r *SlowRing) Observe(e RingEntry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	e.Seq = r.seq
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, e)
		return true
	}
	// Full: evict the fastest resident iff the newcomer is slower.
	min := 0
	for i := 1; i < len(r.entries); i++ {
		if r.entries[i].Duration < r.entries[min].Duration {
			min = i
		}
	}
	if e.Duration <= r.entries[min].Duration {
		return false
	}
	r.entries[min] = e
	return true
}

// Snapshot returns the resident entries sorted slowest-first (ties by
// recency, newest first). The returned slice is a copy.
func (r *SlowRing) Snapshot() []RingEntry {
	r.mu.Lock()
	out := make([]RingEntry, len(r.entries))
	copy(out, r.entries)
	r.mu.Unlock()
	// Insertion sort: the ring is small (tens of entries).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := &out[j-1], &out[j]
			if b.Duration > a.Duration || (b.Duration == a.Duration && b.Seq > a.Seq) {
				out[j-1], out[j] = out[j], out[j-1]
			} else {
				break
			}
		}
	}
	return out
}

// Len returns the number of resident entries.
func (r *SlowRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
