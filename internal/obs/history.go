package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// historyVersion is the on-disk format version. A loaded file with a
// different version (or different bucket bounds) is rejected rather
// than silently merged into mismatched buckets.
const historyVersion = 1

// HistoryEntry is one persisted series: the shape × algorithm ×
// n-bucket key, the cumulative observation count and latency sum, the
// per-bucket counts (parallel to Bounds, non-cumulative), and the
// derived p50/p99 — recomputed at save time so consumers that only
// want the headline quantiles never need the buckets.
type HistoryEntry struct {
	Shape      string   `json:"shape"`
	Algorithm  string   `json:"algorithm"`
	N          string   `json:"n"`
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []uint64 `json:"buckets"`
	P50Seconds float64  `json:"p50_seconds"`
	P99Seconds float64  `json:"p99_seconds"`
}

// historyFile is the JSON document at rest.
type historyFile struct {
	Version     int            `json:"version"`
	UpdatedUnix int64          `json:"updated_unix"`
	Bounds      []float64      `json:"bounds"`
	Entries     []HistoryEntry `json:"entries"`
}

// History is the persistent planning-cost record: per shape ×
// algorithm × n-bucket, enough bucket mass to answer "what does
// planning this kind of query usually cost here" — the input the
// planning-time budget router (ROADMAP item 5) consumes. It is a
// plain value (no atomics): snapshots come from PlanMetrics, merges
// and saves happen on one goroutine.
type History struct {
	bounds  []float64
	entries map[Key]*HistoryEntry
}

// NewHistory returns an empty history over DefaultBounds.
func NewHistory() *History {
	return &History{bounds: DefaultBounds, entries: make(map[Key]*HistoryEntry)}
}

func (h *History) add(k Key, count uint64, sum float64, buckets []uint64) {
	e := h.entries[k]
	if e == nil {
		e = &HistoryEntry{Shape: k.Shape, Algorithm: k.Algorithm, N: k.N,
			Buckets: make([]uint64, len(h.bounds))}
		h.entries[k] = e
	}
	e.Count += count
	e.SumSeconds += sum
	for i := range buckets {
		if i < len(e.Buckets) {
			e.Buckets[i] += buckets[i]
		}
	}
}

// Merge folds other into h (bucket-wise addition). Histories over
// different bounds cannot merge and return an error.
func (h *History) Merge(other *History) error {
	if other == nil {
		return nil
	}
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: merging histories with different bucket bounds (%d vs %d)",
			len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("obs: merging histories with different bucket bounds at %d", i)
		}
	}
	for k, e := range other.entries {
		h.add(k, e.Count, e.SumSeconds, e.Buckets)
	}
	return nil
}

// Clone returns a deep copy, so a loaded baseline can be merged with a
// live snapshot repeatedly without accumulating across saves.
func (h *History) Clone() *History {
	out := &History{bounds: h.bounds, entries: make(map[Key]*HistoryEntry, len(h.entries))}
	for k, e := range h.entries {
		ce := *e
		ce.Buckets = append([]uint64(nil), e.Buckets...)
		out.entries[k] = &ce
	}
	return out
}

// Len returns the number of recorded series.
func (h *History) Len() int { return len(h.entries) }

// Entries returns the series sorted by (shape, algorithm, n), with
// P50Seconds/P99Seconds freshly derived from the buckets.
func (h *History) Entries() []HistoryEntry {
	out := make([]HistoryEntry, 0, len(h.entries))
	for _, e := range h.entries {
		ce := *e
		ce.Buckets = append([]uint64(nil), e.Buckets...)
		ce.P50Seconds = quantile(h.bounds, ce.Buckets, ce.Count, 0.50)
		ce.P99Seconds = quantile(h.bounds, ce.Buckets, ce.Count, 0.99)
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Shape != out[j].Shape {
			return out[i].Shape < out[j].Shape
		}
		if out[i].Algorithm != out[j].Algorithm {
			return out[i].Algorithm < out[j].Algorithm
		}
		return out[i].N < out[j].N
	})
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) of planning latency
// for the series k, by linear interpolation inside the histogram
// buckets. The second return is false when the series has no
// observations. Mass above the last bound reports the last bound — a
// lower bound on the true quantile, which is the conservative
// direction for a budget router ("at least this expensive").
func (h *History) Quantile(k Key, q float64) (time.Duration, bool) {
	e := h.entries[k]
	if e == nil || e.Count == 0 {
		return 0, false
	}
	return time.Duration(quantile(h.bounds, e.Buckets, e.Count, q) * float64(time.Second)), true
}

// quantile interpolates the q-quantile in seconds from non-cumulative
// bucket counts.
func quantile(bounds []float64, buckets []uint64, count uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	target := q * float64(count)
	var cum uint64
	for i, b := range buckets {
		if i >= len(bounds) {
			break
		}
		prev := cum
		cum += b
		if float64(cum) >= target && b > 0 {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (target - float64(prev)) / float64(b)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(bounds[i]-lo)
		}
	}
	// The quantile sits in the +Inf overflow; report the last bound.
	return bounds[len(bounds)-1]
}

// Save writes the history atomically (temp file + rename) as JSON.
func (h *History) Save(path string) error {
	doc := historyFile{
		Version:     historyVersion,
		UpdatedUnix: time.Now().Unix(),
		Bounds:      h.bounds,
		Entries:     h.Entries(),
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding history: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".history-*.json")
	if err != nil {
		return fmt.Errorf("obs: saving history: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return fmt.Errorf("obs: saving history: %w", werr)
		}
		return fmt.Errorf("obs: saving history: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obs: saving history: %w", err)
	}
	return nil
}

// LoadHistory reads a history file. A missing file is not an error —
// it returns an empty history, so first boots and wiped volumes start
// clean. A present-but-unreadable file is an error: silently dropping
// accumulated cost history would quietly degrade the budget router.
func LoadHistory(path string) (*History, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewHistory(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("obs: loading history: %w", err)
	}
	var doc historyFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("obs: decoding history %s: %w", path, err)
	}
	if doc.Version != historyVersion {
		return nil, fmt.Errorf("obs: history %s has version %d, want %d", path, doc.Version, historyVersion)
	}
	if len(doc.Bounds) != len(DefaultBounds) {
		return nil, fmt.Errorf("obs: history %s has %d bucket bounds, want %d", path, len(doc.Bounds), len(DefaultBounds))
	}
	for i := range doc.Bounds {
		if doc.Bounds[i] != DefaultBounds[i] {
			return nil, fmt.Errorf("obs: history %s bucket bounds differ at %d", path, i)
		}
	}
	h := NewHistory()
	for _, e := range doc.Entries {
		buckets := e.Buckets
		if len(buckets) > len(h.bounds) {
			buckets = buckets[:len(h.bounds)]
		}
		h.add(Key{Shape: e.Shape, Algorithm: e.Algorithm, N: e.N}, e.Count, e.SumSeconds, buckets)
	}
	return h, nil
}
