// Package obs is the planning observability layer: explain traces
// (phase/span recording of one planning call), dimensional planning-
// latency metrics (shape × algorithm × relation-count-bucket), a
// persistent planning-cost history, and a bounded ring of the slowest
// recent plans.
//
// The package sits below everything else in the repository — it imports
// only the standard library — so the memo engine, the iterative-DP
// tier, the Planner, and the serving layer can all thread the same
// types through without dependency cycles.
//
// Design constraints, in order:
//
//   - Zero cost when off. Every Trace method is nil-receiver-safe, so
//     untraced runs pay one pointer test per phase boundary and nothing
//     else. Tracing is opt-in per request (explain=1), or sampled.
//   - Alloc-free when on. A Trace is a fixed-capacity value: spans live
//     in a pre-sized array, labels are Phase constants, and recording a
//     span writes into that storage — no interface boxing, no fmt, no
//     append beyond capacity. Hot-path code may therefore call the
//     span hooks under the //dp:hotpath discipline (the hotpathalloc
//     analyzer has a golden case for exactly this idiom).
//   - Phase boundaries only. Spans mark planner phases (cache lookup,
//     routing, iterdp compression rounds, enumeration, materialize),
//     never per-pair events; a trace of the largest supported query is
//     a few dozen spans.
package obs

import "time"

// Phase identifies what a span measured. The zero value is PhaseOther
// so a forgotten assignment is visibly unlabeled rather than silently
// claiming to be a cache lookup.
type Phase uint8

// The planning phases, in rough pipeline order.
const (
	PhaseOther       Phase = iota
	PhaseRoute             // topology classification + SolverAuto routing
	PhaseCacheLookup       // graph fingerprint + plan-cache probe
	PhaseEnumerate         // one exact/greedy enumeration (or iterdp's final pass)
	PhaseFallback          // the greedy second pass after a budget trip
	PhaseCluster           // one iterdp compression round (cluster, sub-solve, compress)
	PhaseRecost            // iterdp's bottom-up recost against the original graph
	PhaseMaterialize       // arena → *plan.Node materialization of the winner
	PhaseCollect           // parallel spine: partitioned enumeration collecting deferred pairs
	PhasePrice             // parallel spine: level-synchronous pricing of collected pairs
)

var phaseNames = [...]string{
	PhaseOther:       "other",
	PhaseRoute:       "route",
	PhaseCacheLookup: "cache_lookup",
	PhaseEnumerate:   "enumerate",
	PhaseFallback:    "fallback",
	PhaseCluster:     "iterdp_round",
	PhaseRecost:      "recost",
	PhaseMaterialize: "materialize",
	PhaseCollect:     "collect",
	PhasePrice:       "price",
}

// String returns the stable wire name of the phase (e.g. "iterdp_round").
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "other"
}

// MaxSpans bounds the spans one trace can hold. The deepest real trace
// is an iterdp run over ~1000 relations: a handful of compression
// rounds plus the fixed planner phases — far below this cap. When the
// cap is hit further spans are counted in Dropped instead of recorded,
// so the trace degrades to a summary rather than allocating.
const MaxSpans = 64

// maxDepth bounds span nesting (planner phase → solver-internal span).
const maxDepth = 8

// Span is one recorded phase: wall-clock extent plus the work counters
// the phase's owner filled in. Start is the offset from the trace
// begin, so spans are self-contained without absolute timestamps.
type Span struct {
	Phase Phase
	// Depth is the nesting level at which the span was opened: 0 for
	// planner-level phases, 1 for spans opened inside another phase
	// (e.g. materialize inside enumerate). Depth-0 spans partition the
	// planning call, so their durations sum to ≈ Total.
	Depth uint8
	// Round is the iterdp compression-round index for PhaseCluster
	// spans, and -1 elsewhere.
	Round int16
	// Workers is the worker count the phase's enumeration ran with
	// (0 = not an enumeration, 1 = serial).
	Workers int32
	Start   time.Duration // offset from the trace begin
	Dur     time.Duration
	// Pairs counts csg-cmp-pairs emitted during the phase; MemoEntries
	// and Subproblems likewise snapshot the phase's memo occupancy and
	// (for iterdp rounds) exactly-solved subproblem count. All three
	// are zero when the phase does no enumeration work.
	Pairs       int64
	MemoEntries int32
	Subproblems int32
}

// Trace records the phases of one planning call. Construct with
// NewTrace (or embed a zero Trace and call Begin); a nil *Trace is a
// valid no-op recorder, so call sites need no conditionals.
//
// A Trace is not safe for concurrent use — it belongs to exactly one
// planning call. (Parallel enumeration is unaffected: spans are
// recorded by the orchestrating goroutine at phase boundaries, never
// by the workers.)
type Trace struct {
	// Total is the wall time from Begin to Finish.
	Total time.Duration
	// Dropped counts spans discarded after the MaxSpans cap was hit.
	Dropped int32

	begin time.Time
	n     int32
	depth int8
	open  [maxDepth]int32
	spans [MaxSpans]Span
}

// NewTrace returns a started trace (Begin already called).
func NewTrace() *Trace {
	t := &Trace{}
	t.Begin()
	return t
}

// Begin (re)starts the trace clock and clears previously recorded
// spans. Safe on nil.
func (t *Trace) Begin() {
	if t == nil {
		return
	}
	t.begin = time.Now()
	t.Total = 0
	t.Dropped = 0
	t.n = 0
	t.depth = 0
}

// Start opens a span for phase p and returns its handle. Safe on nil
// (returns a handle End ignores). Spans opened while another is open
// nest: their Depth is one deeper, and depth-0 spans remain a
// partition of the call.
//
//dp:hotpath
func (t *Trace) Start(p Phase) int32 {
	if t == nil {
		return -1
	}
	if t.n >= MaxSpans || t.depth >= maxDepth {
		t.Dropped++
		return -1
	}
	h := t.n
	t.n++
	t.spans[h] = Span{
		Phase: p,
		Depth: uint8(t.depth),
		Round: -1,
		Start: time.Since(t.begin),
	}
	t.open[t.depth] = h
	t.depth++
	return h
}

// End closes the span h opened by Start. Safe on nil receivers and
// invalid handles.
//
//dp:hotpath
func (t *Trace) End(h int32) {
	if t == nil || h < 0 || h >= t.n {
		return
	}
	s := &t.spans[h]
	s.Dur = time.Since(t.begin) - s.Start
	if t.depth > 0 && t.open[t.depth-1] == h {
		t.depth--
	}
}

// Annotate fills the work counters of the still-addressable span h.
// Safe on nil receivers and invalid handles.
//
//dp:hotpath
func (t *Trace) Annotate(h int32, pairs int64, memoEntries, workers, subproblems int) {
	if t == nil || h < 0 || h >= t.n {
		return
	}
	s := &t.spans[h]
	s.Pairs = pairs
	s.MemoEntries = int32(memoEntries)
	s.Workers = int32(workers)
	s.Subproblems = int32(subproblems)
}

// SetRound tags span h as iterdp compression round r.
func (t *Trace) SetRound(h int32, r int) {
	if t == nil || h < 0 || h >= t.n {
		return
	}
	t.spans[h].Round = int16(r)
}

// Finish stops the trace clock. Further spans may still be recorded
// (Finish is idempotent and only snapshots Total).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Total = time.Since(t.begin)
}

// Len returns the number of recorded spans. Safe on nil.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return int(t.n)
}

// Spans returns the recorded spans (a view, not a copy — callers must
// not retain it past the trace's reuse). Safe on nil.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans[:t.n]
}

// PhaseTotal sums the durations of all spans with the given phase.
func (t *Trace) PhaseTotal(p Phase) time.Duration {
	if t == nil {
		return 0
	}
	var sum time.Duration
	for i := int32(0); i < t.n; i++ {
		if t.spans[i].Phase == p {
			sum += t.spans[i].Dur
		}
	}
	return sum
}
