package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBounds are the planning-latency histogram bucket upper bounds
// in seconds, 10µs..10s: cache hits sit in the lowest buckets, small
// exact enumerations in the middle, iterdp runs over hundreds of
// relations near the top, and anything beyond the last bound is about
// to trip a deadline.
var DefaultBounds = []float64{
	.00001, .000025, .00005, .0001, .00025, .0005, .001, .0025, .005,
	.01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with atomic counters,
// rendered in the Prometheus cumulative style. Buckets are upper
// bounds in seconds; observations above the last bound land only in
// the total count (+Inf).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // buckets[i] counts observations ≤ bounds[i] (non-cumulative; summed at render)
	count   atomic.Uint64   //dp:atomic
	sumNs   atomic.Uint64   //dp:atomic
}

// NewHistogram returns a histogram over the given bucket bounds
// (DefaultBounds when nil). The bounds slice is retained, not copied.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBounds
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	for i, b := range h.bounds {
		if s <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed durations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Snapshot copies the per-bucket (non-cumulative) counts.
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Write renders the histogram in Prometheus text exposition format
// under the given metric name and (pre-rendered, brace-free) label
// string, e.g. `shape="star",algorithm="dphyp",n="1-8"`. The snapshot
// is taken under concurrent Observe calls (which bump a bucket before
// the total), so each cumulative bucket is capped at the total read
// first — keeping the rendered histogram monotone with +Inf == count
// even when a scrape lands between the two increments.
func (h *Histogram) Write(w io.Writer, name, labels string) {
	count := h.count.Load()
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if cum > count {
			cum = count
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatBound(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, count)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, count)
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, count)
	}
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// NBucket maps a relation count to its stable bucket label. The
// boundaries follow the planning regimes: ≤8 is the cached/interactive
// tier, 9–16 the exact sweet spot, 17–32 budgeted exact, 33–64 the
// single-word ceiling, 65–128 and beyond the iterdp tier.
func NBucket(n int) string {
	switch {
	case n <= 8:
		return "1-8"
	case n <= 16:
		return "9-16"
	case n <= 32:
		return "17-32"
	case n <= 64:
		return "33-64"
	case n <= 128:
		return "65-128"
	case n <= 256:
		return "129-256"
	default:
		return "257+"
	}
}

// Key identifies one dimensional metric series. All three fields are
// stable label values: Shape is the topology class the router saw
// ("unclassified" when planning bypassed the router), Algorithm the
// algorithm that actually produced the plan, and N the NBucket label
// of the query's relation count.
type Key struct {
	Shape     string
	Algorithm string
	N         string
}

// cell is the per-series state: the latency histogram plus a
// cache-hit count (hits are included in the histogram; the counter
// lets consumers separate hit latency from enumeration latency).
type cell struct {
	hist *Histogram
	hits atomic.Uint64 //dp:atomic
}

// PlanMetrics is the dimensional planning-latency registry: one
// histogram (and cache-hit counter) per shape × algorithm × n-bucket
// series, created on first observation. Safe for concurrent use; the
// steady-state Observe path is a read-locked map probe plus atomic
// bumps — no allocation once a series exists.
type PlanMetrics struct {
	mu     sync.RWMutex
	cells  map[Key]*cell
	bounds []float64
}

// NewPlanMetrics returns an empty registry over DefaultBounds.
func NewPlanMetrics() *PlanMetrics {
	return &PlanMetrics{cells: make(map[Key]*cell), bounds: DefaultBounds}
}

// Observe records one successful planning call: its latency into the
// series histogram, and the hit counter when the plan came from the
// plan cache. Cache hits MUST be observed too — the per-shape history
// that budget routing consumes is about what a request costs, and for
// cached traffic that cost is the lookup, not the enumeration.
func (m *PlanMetrics) Observe(k Key, d time.Duration, cacheHit bool) {
	m.mu.RLock()
	c := m.cells[k]
	m.mu.RUnlock()
	if c == nil {
		m.mu.Lock()
		c = m.cells[k]
		if c == nil {
			c = &cell{hist: NewHistogram(m.bounds)}
			m.cells[k] = c
		}
		m.mu.Unlock()
	}
	c.hist.Observe(d)
	if cacheHit {
		c.hits.Add(1)
	}
}

// Keys returns the materialized series keys in deterministic order.
func (m *PlanMetrics) Keys() []Key {
	m.mu.RLock()
	keys := make([]Key, 0, len(m.cells))
	for k := range m.cells {
		keys = append(keys, k)
	}
	m.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Shape != keys[j].Shape {
			return keys[i].Shape < keys[j].Shape
		}
		if keys[i].Algorithm != keys[j].Algorithm {
			return keys[i].Algorithm < keys[j].Algorithm
		}
		return keys[i].N < keys[j].N
	})
	return keys
}

// WritePrometheus renders every series as one histogram family named
// name (plus a <name ± suffix> cache-hit counter family), labeled by
// shape, algorithm, and n.
func (m *PlanMetrics) WritePrometheus(w io.Writer, name string) {
	keys := m.Keys()
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, k := range keys {
		m.mu.RLock()
		c := m.cells[k]
		m.mu.RUnlock()
		c.hist.Write(w, name, labelsFor(k))
	}
	fmt.Fprintf(w, "# TYPE %s_cache_hits_total counter\n", name)
	for _, k := range keys {
		m.mu.RLock()
		c := m.cells[k]
		m.mu.RUnlock()
		fmt.Fprintf(w, "%s_cache_hits_total{%s} %d\n", name, labelsFor(k), c.hits.Load())
	}
}

func labelsFor(k Key) string {
	return fmt.Sprintf("shape=%q,algorithm=%q,n=%q", k.Shape, k.Algorithm, k.N)
}

// Quantile estimates the q-quantile (0 < q < 1) of the live series k —
// History.Quantile over the in-process registry instead of a persisted
// file. The count return is the series' observation total, so a budget
// router can demand a minimum sample size before trusting the estimate
// over its colder fallbacks; ok is false for an empty or absent series.
func (m *PlanMetrics) Quantile(k Key, q float64) (d time.Duration, count uint64, ok bool) {
	m.mu.RLock()
	c := m.cells[k]
	m.mu.RUnlock()
	if c == nil {
		return 0, 0, false
	}
	count = c.hist.Count()
	if count == 0 {
		return 0, 0, false
	}
	d = time.Duration(quantile(m.bounds, c.hist.Snapshot(), count, q) * float64(time.Second))
	return d, count, true
}

// Snapshot captures the registry into a History: one entry per series
// with the bucket counts, count, and sum as of now. The snapshot is
// cumulative since process start; merge it over a loaded baseline
// before persisting (see History.Merge).
func (m *PlanMetrics) Snapshot() *History {
	h := NewHistory()
	for _, k := range m.Keys() {
		m.mu.RLock()
		c := m.cells[k]
		m.mu.RUnlock()
		h.add(k, c.hist.Count(), c.hist.Sum(), c.hist.Snapshot())
	}
	return h
}
