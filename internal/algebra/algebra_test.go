package algebra

import (
	"testing"
	"testing/quick"
)

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, o := range AllOps() {
		got, err := ParseOp(o.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", o.String(), err)
		}
		if got != o {
			t.Errorf("round trip %v -> %v", o, got)
		}
	}
}

func TestParseOpUnknown(t *testing.T) {
	if _, err := ParseOp("bogus"); err == nil {
		t.Error("expected error for unknown operator")
	}
	if _, err := ParseOp(""); err == nil {
		t.Error("expected error for empty name")
	}
}

func TestValid(t *testing.T) {
	if InvalidOp.Valid() {
		t.Error("InvalidOp must not be valid")
	}
	for _, o := range AllOps() {
		if !o.Valid() {
			t.Errorf("%v must be valid", o)
		}
	}
	if Op(200).Valid() {
		t.Error("out-of-range op must not be valid")
	}
}

func TestCommutativity(t *testing.T) {
	// §5.4: only join and full outer join commute.
	want := map[Op]bool{Join: true, FullOuter: true}
	for _, o := range AllOps() {
		if got := o.Commutative(); got != want[o] {
			t.Errorf("Commutative(%v) = %v", o, got)
		}
	}
}

func TestLinearity(t *testing.T) {
	// Observation 1: all operators in LOP are left-linear; B is left- and
	// right-linear; full outer is neither.
	for _, o := range LOP() {
		if !o.LeftLinear() {
			t.Errorf("%v must be left-linear", o)
		}
		if o.RightLinear() {
			t.Errorf("%v must not be right-linear", o)
		}
	}
	if !Join.LeftLinear() || !Join.RightLinear() {
		t.Error("join must be left- and right-linear")
	}
	if FullOuter.LeftLinear() || FullOuter.RightLinear() {
		t.Error("full outer join is neither left- nor right-linear")
	}
}

func TestDependentVariants(t *testing.T) {
	pairs := map[Op]Op{
		Join:      DepJoin,
		LeftOuter: DepLeftOuter,
		AntiJoin:  DepAntiJoin,
		SemiJoin:  DepSemiJoin,
		NestJoin:  DepNestJoin,
	}
	for reg, dep := range pairs {
		if got := reg.DependentVariant(); got != dep {
			t.Errorf("DependentVariant(%v) = %v, want %v", reg, got, dep)
		}
		if got := dep.RegularVariant(); got != reg {
			t.Errorf("RegularVariant(%v) = %v, want %v", dep, got, reg)
		}
		if !dep.Dependent() {
			t.Errorf("%v must report Dependent", dep)
		}
		if reg.Dependent() {
			t.Errorf("%v must not report Dependent", reg)
		}
	}
	if FullOuter.DependentVariant() != InvalidOp {
		t.Error("full outer join has no dependent counterpart")
	}
	if DepJoin.DependentVariant() != DepJoin {
		t.Error("dependent op maps to itself")
	}
}

// TestOCMatrix checks OC against the appendix conflict table (Fig. 9),
// restricted to the rows/columns where the left-hand side is expressible
// (the "lhs not possible" rows of Fig. 9 never reach OC because the
// syntactic constraints already rule them out; OC must still be
// conservative for them, which the paper's formula is).
func TestOCMatrix(t *testing.T) {
	cases := []struct {
		o1, o2 Op
		want   bool
	}{
		// ∘1 = B row: conflicts only with full outer below it.
		{Join, Join, false},
		{Join, SemiJoin, false},
		{Join, AntiJoin, false},
		{Join, NestJoin, false},
		{Join, LeftOuter, false},
		{Join, FullOuter, true}, // (R B S) M T ≠ R B (S M T), GOJ 4.54

		// ∘1 = P (left outer).
		{LeftOuter, Join, true},       // 4.48: lhs simplifiable, not equal
		{LeftOuter, LeftOuter, false}, // 4.46 with pST strong
		{LeftOuter, SemiJoin, true},
		{LeftOuter, AntiJoin, true},
		{LeftOuter, NestJoin, true},
		{LeftOuter, FullOuter, true},

		// ∘1 = M (full outer).
		{FullOuter, Join, true},
		{FullOuter, LeftOuter, false}, // 4.51 with pST strong
		{FullOuter, FullOuter, false}, // 4.50 with both strong
		{FullOuter, SemiJoin, true},
		{FullOuter, AntiJoin, true},
		{FullOuter, NestJoin, true},

		// Other non-inner ancestors conflict with everything.
		{SemiJoin, Join, true},
		{SemiJoin, SemiJoin, true},
		{AntiJoin, LeftOuter, true},
		{NestJoin, Join, true},
	}
	for _, c := range cases {
		if got := OC(c.o1, c.o2); got != c.want {
			t.Errorf("OC(%v,%v) = %v, want %v", c.o1, c.o2, got, c.want)
		}
	}
}

// Property: dependent operators behave exactly like their regular
// counterparts in OC (the paper: "each operator also stands for its
// dependent counterpart").
func TestOCDependentEquivalence(t *testing.T) {
	all := AllOps()
	f := func(i, j uint8) bool {
		o1 := all[int(i)%len(all)]
		o2 := all[int(j)%len(all)]
		return OC(o1, o2) == OC(o1.RegularVariant(), o2.RegularVariant())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the inner join as descendant never conflicts unless the
// ancestor is non-inner (B is freely reorderable below everything except
// by the ∘1≠B clause).
func TestOCJoinAncestorOnlyFullOuterConflicts(t *testing.T) {
	for _, o2 := range AllOps() {
		want := o2.RegularVariant() == FullOuter
		if got := OC(Join, o2); got != want {
			t.Errorf("OC(Join,%v) = %v, want %v", o2, got, want)
		}
	}
}

func TestSymbols(t *testing.T) {
	seen := map[string]Op{}
	for _, o := range AllOps() {
		sym := o.Symbol()
		if sym == "" || sym == "?" {
			t.Errorf("missing symbol for %v", o)
		}
		if prev, dup := seen[sym]; dup {
			t.Errorf("symbol %q reused by %v and %v", sym, prev, o)
		}
		seen[sym] = o
	}
}

func TestOpSetHelpers(t *testing.T) {
	if len(AllOps()) != NumOps {
		t.Errorf("AllOps has %d ops, want %d", len(AllOps()), NumOps)
	}
	if len(RegularOps()) != 6 {
		t.Errorf("RegularOps = %v", RegularOps())
	}
	if len(LOP()) != 9 {
		t.Errorf("LOP must have 9 operators per §5.1, got %d", len(LOP()))
	}
	for _, o := range LOP() {
		if o == Join || o == FullOuter {
			t.Errorf("%v must not be in LOP", o)
		}
	}
}

func TestPadding(t *testing.T) {
	if !LeftOuter.PadsRight() || !FullOuter.PadsRight() {
		t.Error("outer joins pad the right side")
	}
	if Join.PadsRight() || SemiJoin.PadsRight() || AntiJoin.PadsRight() {
		t.Error("non-outer ops do not pad")
	}
	if !FullOuter.PadsLeft() {
		t.Error("full outer pads the left side")
	}
	if LeftOuter.PadsLeft() {
		t.Error("left outer does not pad the left side")
	}
}
