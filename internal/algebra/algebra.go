// Package algebra defines the binary operator vocabulary of §5.1 of
// "Dynamic Programming Strikes Back" together with the algebraic
// properties the plan generator relies on: linearity (Definition 5),
// commutativity, and the operator conflict matrix OC(∘1,∘2) derived in
// the paper's appendix.
//
// The operator set is: the inner join B; the non-inner operators
// full outer join M, left outer join P, left antijoin I, left semijoin G,
// left nestjoin T; and the dependent counterparts d-join C, dependent
// left outer join Q, dependent left antijoin J, dependent left semijoin H,
// and dependent left nestjoin U. The paper's LOP set is
// {P, I, G, T, C, Q, J, H, U}.
package algebra

import "fmt"

// Op identifies a binary algebraic operator.
type Op uint8

// The operators of §5.1. The single-letter comments show the symbols the
// paper uses.
const (
	InvalidOp Op = iota

	Join      // B  — inner join, fully reorderable
	FullOuter // M  — full outer join
	LeftOuter // P  — left outer join
	AntiJoin  // I  — left antijoin
	SemiJoin  // G  — left semijoin
	NestJoin  // T  — left nestjoin (binary grouping / MD-join)

	DepJoin      // C — left dependent join (d-join / cross apply)
	DepLeftOuter // Q — dependent left outer join (outer apply)
	DepAntiJoin  // J — dependent left antijoin
	DepSemiJoin  // H — dependent left semijoin
	DepNestJoin  // U — dependent left nestjoin

	numOps
)

// NumOps is the number of valid operators (excluding InvalidOp).
const NumOps = int(numOps) - 1

var opNames = [...]string{
	InvalidOp:    "invalid",
	Join:         "join",
	FullOuter:    "fullouterjoin",
	LeftOuter:    "leftouterjoin",
	AntiJoin:     "antijoin",
	SemiJoin:     "semijoin",
	NestJoin:     "nestjoin",
	DepJoin:      "dep-join",
	DepLeftOuter: "dep-leftouterjoin",
	DepAntiJoin:  "dep-antijoin",
	DepSemiJoin:  "dep-semijoin",
	DepNestJoin:  "dep-nestjoin",
}

var opSymbols = [...]string{
	InvalidOp:    "?",
	Join:         "⋈",
	FullOuter:    "⟗",
	LeftOuter:    "⟕",
	AntiJoin:     "▷",
	SemiJoin:     "⋉",
	NestJoin:     "△",
	DepJoin:      "⋈d",
	DepLeftOuter: "⟕d",
	DepAntiJoin:  "▷d",
	DepSemiJoin:  "⋉d",
	DepNestJoin:  "△d",
}

// String returns the lower-case operator name (stable; used in the JSON
// query format).
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Symbol returns the algebraic symbol used in plan pretty-printing.
func (o Op) Symbol() string {
	if int(o) < len(opSymbols) {
		return opSymbols[o]
	}
	return "?"
}

// Valid reports whether o is one of the defined operators.
func (o Op) Valid() bool { return o > InvalidOp && o < numOps }

// ParseOp is the inverse of String. It returns InvalidOp and an error for
// unknown names.
func ParseOp(name string) (Op, error) {
	for o := Join; o < numOps; o++ {
		if opNames[o] == name {
			return o, nil
		}
	}
	return InvalidOp, fmt.Errorf("algebra: unknown operator %q", name)
}

// Commutative reports whether the operator commutes: R ∘ S = S ∘ R.
// "Only the join and the full outer join are commutative; all other
// operators are not." (§5.4). Dependent operators never commute because
// their right side is evaluated per left tuple.
func (o Op) Commutative() bool { return o == Join || o == FullOuter }

// LeftLinear reports whether the operator is left linear (Definition 5).
// Observation 1: all operators in LOP are left-linear and B is left- and
// right-linear. The full outer join is neither.
func (o Op) LeftLinear() bool {
	switch o {
	case Join, LeftOuter, AntiJoin, SemiJoin, NestJoin,
		DepJoin, DepLeftOuter, DepAntiJoin, DepSemiJoin, DepNestJoin:
		return true
	}
	return false
}

// RightLinear reports whether the operator is right linear (Definition 5).
// Only the inner join is right-linear among the considered operators.
func (o Op) RightLinear() bool { return o == Join }

// Dependent reports whether the operator is one of the dependent variants
// of §5.1/§5.6 whose right-hand side references attributes of the left.
func (o Op) Dependent() bool {
	switch o {
	case DepJoin, DepLeftOuter, DepAntiJoin, DepSemiJoin, DepNestJoin:
		return true
	}
	return false
}

// DependentVariant returns the dependent counterpart of a regular
// operator (§5.6: EmitCsgCmp turns an operator into its dependent
// counterpart when FT(P2) ∩ S1 ≠ ∅). Dependent operators map to
// themselves.
func (o Op) DependentVariant() Op {
	switch o {
	case Join:
		return DepJoin
	case LeftOuter:
		return DepLeftOuter
	case AntiJoin:
		return DepAntiJoin
	case SemiJoin:
		return DepSemiJoin
	case NestJoin:
		return DepNestJoin
	case FullOuter:
		// The full outer join has no dependent counterpart in §5.1; a
		// dependent full outer would need both sides to preserve rows
		// while one depends on the other, which is not well defined.
		return InvalidOp
	}
	return o
}

// RegularVariant is the inverse of DependentVariant: it strips the
// dependency, mapping C→B, Q→P, J→I, H→G, U→T. Regular operators map to
// themselves.
func (o Op) RegularVariant() Op {
	switch o {
	case DepJoin:
		return Join
	case DepLeftOuter:
		return LeftOuter
	case DepAntiJoin:
		return AntiJoin
	case DepSemiJoin:
		return SemiJoin
	case DepNestJoin:
		return NestJoin
	}
	return o
}

// NullRejecting is a helper for executor-side checks: it reports whether
// the operator can introduce NULL-padded tuples on some side (outer
// joins). Left outer pads the right side, full outer pads both.
func (o Op) PadsRight() bool {
	return o == LeftOuter || o == FullOuter || o == DepLeftOuter
}

// PadsLeft reports whether the operator can NULL-pad left-side columns.
func (o Op) PadsLeft() bool { return o == FullOuter }

// PhysOp identifies the physical implementation a physical cost model
// chose for a join node. The logical-only cost models (C_out, C_mm, …)
// leave plan nodes at PhysNone; a cost.PhysicalModel picks one of the
// concrete algorithms per node and the plan generator records it.
type PhysOp uint8

// The physical join implementations.
const (
	// PhysNone means no physical choice was made (logical costing).
	PhysNone PhysOp = iota
	// PhysHashJoin builds a hash table on the right input and probes
	// with the left.
	PhysHashJoin
	// PhysSortMerge sorts both inputs on the join key and merges.
	PhysSortMerge
	// PhysIndexNLJ looks up each left row in an index (or re-evaluates
	// the right side, for dependent joins) — nested-loop style.
	PhysIndexNLJ

	numPhysOps
)

var physOpNames = [...]string{
	PhysNone:      "none",
	PhysHashJoin:  "hash",
	PhysSortMerge: "sort-merge",
	PhysIndexNLJ:  "index-nlj",
}

// String returns the stable lower-case name of the physical operator.
func (p PhysOp) String() string {
	if int(p) < len(physOpNames) {
		return physOpNames[p]
	}
	return fmt.Sprintf("physop(%d)", uint8(p))
}

// ParsePhysOp is the inverse of PhysOp.String.
func ParsePhysOp(name string) (PhysOp, error) {
	for p := PhysNone; p < numPhysOps; p++ {
		if physOpNames[p] == name {
			return p, nil
		}
	}
	return PhysNone, fmt.Errorf("algebra: unknown physical operator %q", name)
}

// OC is the operator conflict predicate of §5.5 / appendix A.3:
//
//	OC(∘1,∘2) = (∘1 = B ∧ ∘2 = M)
//	          ∨ (∘1 ≠ B ∧ ¬(∘1 = ∘2 = P) ∧ ¬(∘1 = M ∧ ∘2 ∈ {P,M}))
//
// where "each operator also stands for its dependent counterpart". The
// argument order follows the appendix: for left nesting (the descendant
// in the left subtree) the descendant is ∘1 and the ancestor ∘2; for
// right nesting the ancestor is ∘1 and the descendant ∘2. A true result
// means the pair is NOT freely reorderable, so (together with the LC/RC
// table-overlap gate) the descendant's TES is merged into the ancestor's.
func OC(o1, o2 Op) bool {
	// Dependent operators inherit the conflict behaviour of their regular
	// counterparts.
	a := o1.RegularVariant()
	b := o2.RegularVariant()
	if a == Join && b == FullOuter {
		return true
	}
	if a == Join {
		return false
	}
	// a ≠ B from here on.
	if a == LeftOuter && b == LeftOuter {
		return false // 4.46: (R P S) P T = R P (S P T) when pST strong
	}
	if a == FullOuter && (b == LeftOuter || b == FullOuter) {
		return false // 4.50/4.51 with strong predicates
	}
	return true
}

// AllOps lists every valid operator; useful for exhaustive tests.
func AllOps() []Op {
	ops := make([]Op, 0, NumOps)
	for o := Join; o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}

// RegularOps lists the non-dependent operators of §5.1.
func RegularOps() []Op {
	return []Op{Join, FullOuter, LeftOuter, AntiJoin, SemiJoin, NestJoin}
}

// LOP is the paper's set of left-linear operators with limited
// reorderability: {P, I, G, T, C, Q, J, H, U}.
func LOP() []Op {
	return []Op{LeftOuter, AntiJoin, SemiJoin, NestJoin,
		DepJoin, DepLeftOuter, DepAntiJoin, DepSemiJoin, DepNestJoin}
}
