// Package optree implements the non-inner-join front end of §5 of the
// paper: initial operator trees, syntactic eligibility sets (SES), total
// eligibility sets (TES) via the bottom-up CalcTES procedure with the
// LeftConflict/RightConflict/OC rules of the appendix, and the derivation
// of query hyperedges from TESs (§5.7).
//
// A query with outer joins, antijoins, semijoins, nestjoins, or dependent
// joins is given as an operator tree equivalent to the query (§5.3; "a
// query (hyper-)graph alone does not capture the semantics of a query in
// a correct way"). The tree is analyzed once; the result is a hypergraph
// whose hyperedges "directly cover all possible conflicts", so DPhyp
// needs no extension beyond the hyperedge computation to order non-inner
// joins.
//
// # Conflict rules
//
// Two conflict-detection variants are provided (see ConflictRule):
//
//   - Published: the literal LC/RC gates of §5.5, where the ancestor
//     predicate's tables are intersected with the right-branch (resp.
//     left-branch) tables on the path between the two operators.
//   - Conservative (default): additionally treats the ancestor predicate
//     as conflicting when it references any table under the descendant
//     operator. On star-shaped queries the published gate never fires
//     (hub–satellite predicates never mention other right branches), so
//     antijoin TESs would not grow and the search-space reduction the
//     paper measures in Fig. 8a (§5.7: "reduced from O(n²) to O(n)")
//     could not occur. The conservative gate restores exactly that
//     behaviour. Conservatism can only forbid reorderings, never admit
//     invalid ones, so plans remain correct under both variants; the
//     equivalence property tests exercise both.
package optree

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/dp"
	"repro/internal/hypergraph"
)

// RelInfo describes one base relation (or dependent table expression) of
// the query. Free lists the relations a dependent expression references
// (empty for base tables), as in §5.6's S(R).
type RelInfo struct {
	Name string
	Card float64
	Free bitset.Set
}

// Predicate is the join predicate attached to an operator node.
type Predicate struct {
	// Tables is FT(p): the relations whose attributes the predicate
	// references.
	Tables bitset.Set
	// Sel is the predicate's selectivity.
	Sel float64
	// Label describes the predicate for plan rendering.
	Label string
	// Payload carries an executable predicate for the exec engine.
	Payload any
	// ExprTables is FT(e_i) for nestjoin aggregate expressions (§5.5's
	// SES rule for nl_{p,[a1:e1,...]}). Empty for other operators.
	ExprTables bitset.Set
	// NestRefs lists nestjoin nodes whose computed attributes a_i this
	// predicate references (the third CalcTES rule: "if ∃a_i: a_i ∈
	// F(p1)").
	NestRefs []*Node
}

// Node is a node of the initial operator tree: either a relation leaf
// (Rel ≥ 0) or a binary operator with a predicate.
type Node struct {
	Rel         int // leaf relation index; -1 for operators
	Op          algebra.Op
	Left, Right *Node
	Pred        Predicate

	// Computed by Analyze.
	tables bitset.Set
	ses    bitset.Set
	tes    bitset.Set
}

// NewLeaf returns a relation leaf.
func NewLeaf(rel int) *Node { return &Node{Rel: rel} }

// NewOp returns an operator node.
func NewOp(op algebra.Op, left, right *Node, pred Predicate) *Node {
	return &Node{Rel: -1, Op: op, Left: left, Right: right, Pred: pred}
}

// IsLeaf reports whether n is a relation leaf.
func (n *Node) IsLeaf() bool { return n.Rel >= 0 }

// Tables returns T(∘): the relations in the subtree (valid after
// Analyze).
func (n *Node) Tables() bitset.Set { return n.tables }

// SES returns the syntactic eligibility set (valid after Analyze).
func (n *Node) SES() bitset.Set { return n.ses }

// TES returns the total eligibility set (valid after Analyze).
func (n *Node) TES() bitset.Set { return n.tes }

// ConflictRule selects the LC/RC gating variant; see the package comment.
type ConflictRule int

const (
	// Conservative extends the published gate so that an ancestor
	// predicate referencing any table under the descendant operator
	// counts as a potential conflict. Default.
	Conservative ConflictRule = iota
	// Published is the literal §5.5 rule.
	Published
)

func (c ConflictRule) String() string {
	if c == Published {
		return "published"
	}
	return "conservative"
}

// Tree is an analyzed operator tree.
type Tree struct {
	Root *Node
	Rels []RelInfo
	Rule ConflictRule

	ops []*Node // operators in bottom-up (post) order
}

// Analyze validates the tree and computes T, SES, and TES for every
// operator using CalcTES (§5.5). The relations must appear in the leaves
// in ascending index order from left to right — the §5.4 convention that
// lets EmitCsgCmp reconstruct which side of a non-commutative operator a
// hyperedge endpoint belongs to.
func Analyze(root *Node, rels []RelInfo, rule ConflictRule) (*Tree, error) {
	t := &Tree{Root: root, Rels: rels, Rule: rule}

	// Validate leaf order and collect operators bottom-up.
	nextLeaf := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.IsLeaf() {
			if n.Rel != nextLeaf {
				return fmt.Errorf("optree: leaf R%d out of order; leaves must be numbered left to right (§5.4), expected R%d", n.Rel, nextLeaf)
			}
			if n.Rel >= len(rels) {
				return fmt.Errorf("optree: leaf R%d has no RelInfo", n.Rel)
			}
			nextLeaf++
			n.tables = bitset.Single(n.Rel)
			return nil
		}
		if !n.Op.Valid() {
			return fmt.Errorf("optree: invalid operator")
		}
		if n.Op.Dependent() {
			return fmt.Errorf("optree: initial trees use regular operators; dependency is expressed via RelInfo.Free and resolved by the plan generator (§5.6)")
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("optree: operator with missing child")
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		if err := walk(n.Right); err != nil {
			return err
		}
		n.tables = n.Left.tables.Union(n.Right.tables)
		if n.Pred.Sel <= 0 || n.Pred.Sel > 1 {
			return fmt.Errorf("optree: predicate selectivity %g outside (0,1]", n.Pred.Sel)
		}
		if !n.Pred.Tables.SubsetOf(n.tables) {
			return fmt.Errorf("optree: predicate references %v outside the operator's tables %v", n.Pred.Tables, n.tables)
		}
		if n.Pred.Tables.Intersect(n.Right.tables).IsEmpty() || n.Pred.Tables.Intersect(n.Left.tables).IsEmpty() {
			return fmt.Errorf("optree: predicate %v must reference both sides (%v | %v); degenerate predicates are handled by query simplification before plan generation (§5.2)",
				n.Pred.Tables, n.Left.tables, n.Right.tables)
		}
		t.ops = append(t.ops, n)
		return nil
	}
	if root == nil {
		return nil, fmt.Errorf("optree: nil root")
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	if nextLeaf != len(rels) {
		return nil, fmt.Errorf("optree: %d relations declared but %d leaves found", len(rels), nextLeaf)
	}
	for i := range rels {
		if rels[i].Card <= 0 {
			return nil, fmt.Errorf("optree: relation %d has non-positive cardinality", i)
		}
		if rels[i].Free.Has(i) {
			return nil, fmt.Errorf("optree: relation %d depends on itself", i)
		}
	}

	t.computeSES()
	t.computeTES()
	return t, nil
}

// computeSES applies the §5.5 definitions. With base relations and
// dependent table expressions both contributing SES(R) = {R}, the SES of
// an operator is the set of tables referenced by its predicate (and, for
// nestjoins, by its aggregate expressions), intersected with its subtree.
func (t *Tree) computeSES() {
	for _, n := range t.ops {
		refs := n.Pred.Tables.Union(n.Pred.ExprTables)
		n.ses = refs.Intersect(n.tables)
		n.tes = n.ses
	}
}

// computeTES runs CalcTES bottom-up for every operator (§5.5). t.ops is
// already in post order, so descendants are final before their ancestors
// are processed.
func (t *Tree) computeTES() {
	for _, o1 := range t.ops {
		// Left subtree descendants.
		forEachOp(o1.Left, func(o2 *Node) {
			if t.leftConflict(o1, o2) {
				o1.tes = o1.tes.Union(o2.tes)
			}
		})
		// Right subtree descendants.
		forEachOp(o1.Right, func(o2 *Node) {
			if t.rightConflict(o1, o2) {
				o1.tes = o1.tes.Union(o2.tes)
			}
		})
		// Nestjoin attribute dependencies: if p1 references an attribute
		// computed by a nestjoin below, the nestjoin must happen first.
		for _, nj := range o1.Pred.NestRefs {
			if nj != o1 {
				o1.tes = o1.tes.Union(nj.tes)
			}
		}
	}
}

// forEachOp visits every operator node in the subtree rooted at n.
func forEachOp(n *Node, f func(*Node)) {
	if n == nil || n.IsLeaf() {
		return
	}
	f(n)
	forEachOp(n.Left, f)
	forEachOp(n.Right, f)
}

// rightTables computes RightTables(∘1,∘2) for ∘2 ∈ STO(left(∘1)): the
// union of T(right(∘3)) for all ∘3 on the path from ∘2 (inclusive) to ∘1
// (exclusive), plus T(left(∘2)) when ∘2 is commutative (the normalization
// of appendix A.1 folded into the definition: "If ∘2 is commutative, we
// add T(left(∘2)) to RightTables(∘1,∘2)").
func rightTables(o1, o2 *Node) bitset.Set {
	var acc bitset.Set
	for cur := o1.Left; cur != nil && !cur.IsLeaf(); {
		acc = acc.Union(cur.Right.tables)
		if cur == o2 {
			break
		}
		if o2.tables.SubsetOf(cur.Left.tables) {
			cur = cur.Left
		} else {
			cur = cur.Right
		}
	}
	if o2.Op.Commutative() {
		acc = acc.Union(o2.Left.tables)
	}
	return acc
}

// leftTables is the symmetric definition for ∘2 ∈ STO(right(∘1)): the
// union of T(left(∘3)) for ∘3 on the path from ∘2 (inclusive) to ∘1
// (exclusive), plus T(right(∘2)) when ∘2 is commutative.
func leftTables(o1, o2 *Node) bitset.Set {
	var acc bitset.Set
	for cur := o1.Right; cur != nil && !cur.IsLeaf(); {
		acc = acc.Union(cur.Left.tables)
		if cur == o2 {
			break
		}
		if o2.tables.SubsetOf(cur.Right.tables) {
			cur = cur.Right
		} else {
			cur = cur.Left
		}
	}
	if o2.Op.Commutative() {
		acc = acc.Union(o2.Right.tables)
	}
	return acc
}

// leftConflict implements LeftConflict(∘(p2), ∘p1) = LC ∧ OC(∘2,∘1) for
// ∘2 in the left subtree of ∘1 (appendix A.1: the descendant is the first
// OC argument for left nesting).
func (t *Tree) leftConflict(o1, o2 *Node) bool {
	if !algebra.OC(o2.Op, o1.Op) {
		return false
	}
	lc := o1.Pred.Tables.Overlaps(rightTables(o1, o2))
	if t.Rule == Conservative {
		lc = lc || o1.Pred.Tables.Overlaps(o2.tables)
	}
	return lc
}

// rightConflict implements RightConflict(∘p1, ∘(p2)) = RC ∧ OC(∘1,∘2) for
// ∘2 in the right subtree of ∘1 (appendix A.2: the ancestor is the first
// OC argument for right nesting), plus a soundness amendment applied
// under both rule variants.
//
// The amendment: when ∘1 is an outer join, its right subtree's rows can
// be NULL-padded, so hoisting any null-rejecting descendant ∘2 above ∘1
// drops the padded rows and changes the result — the RC table-overlap
// gate cannot see this because the danger comes from ∘2's own predicate
// rejecting padded rows, not from ∘1's predicate overlapping ∘2's
// tables. Only the proven outer-join associativities may escape:
// (P,P) via 4.46, (M,P) via 4.51, (M,M) via 4.50 — exactly the pairs
// with OC = false — and even those only when ∘1's predicate avoids ∘2's
// padded side (their predicate convention requires the ancestor to
// reference the descendant's preserved side). Without the amendment the
// execution-equivalence property tests of this repository produce plans
// with wrong results — the defect in the 2008 conflict analysis that
// Moerkotte, Fender & Neumann corrected in "On the Correct and Complete
// Enumeration of the Core Search Space" (SIGMOD 2013).
func (t *Tree) rightConflict(o1, o2 *Node) bool {
	// Second amendment: the right side of a semijoin, antijoin, or
	// nestjoin is an existence/aggregation scope whose rows are never
	// part of the output. Hoisting any operator out of the scope changes
	// the output schema and multiplicity, so every right-subtree
	// descendant conflicts; the scope's tables all join the ancestor's
	// TES, making the derived hyperedge treat the scope as one unit
	// (ordering within the scope remains free through its own edges).
	switch o1.Op {
	case algebra.SemiJoin, algebra.AntiJoin, algebra.NestJoin:
		return true
	}
	if o1.Op == algebra.LeftOuter || o1.Op == algebra.FullOuter {
		if !algebra.OC(o1.Op, o2.Op) {
			// (P,P), (M,P), (M,M): associative, but only under the
			// predicate convention — check the padded side.
			var padded bitset.Set
			switch o2.Op {
			case algebra.LeftOuter:
				padded = o2.Right.tables
			case algebra.FullOuter:
				padded = o2.tables
			}
			return o1.Pred.Tables.Overlaps(padded)
		}
		return true
	}
	if !algebra.OC(o1.Op, o2.Op) {
		return false
	}
	rc := o1.Pred.Tables.Overlaps(leftTables(o1, o2))
	if t.Rule == Conservative {
		rc = rc || o1.Pred.Tables.Overlaps(o2.tables)
	}
	return rc
}

// Ops returns the operator nodes bottom-up. Exposed for tests.
func (t *Tree) Ops() []*Node { return t.ops }

// EdgeMode selects which eligibility sets become hyperedges.
type EdgeMode int

const (
	// TESEdges derives one hyperedge per operator from its TES (§5.7):
	// r = TES(∘) ∩ T(right(∘)), l = TES(∘) ∖ r. This is the fast
	// formulation: "the hyperedges directly cover all possible
	// conflicts".
	TESEdges EdgeMode = iota
	// SESEdges derives edges from the SES only. Combined with the TES
	// Filter this is the generate-and-test paradigm the paper compares
	// against in Fig. 8a ("DPhyp TESs").
	SESEdges
)

// Hypergraph builds the query hypergraph for the analyzed tree.
func (t *Tree) Hypergraph(mode EdgeMode) *hypergraph.Graph {
	g := hypergraph.New()
	for i, r := range t.Rels {
		g.AddRelation(r.Name, r.Card)
		if !r.Free.IsEmpty() {
			g.SetFree(i, r.Free)
		}
	}
	for _, o := range t.ops {
		es := o.tes
		if mode == SESEdges {
			es = o.ses
		}
		r := es.Intersect(o.Right.tables)
		l := es.Minus(r)
		g.AddEdge(hypergraph.Edge{
			U:       l,
			V:       r,
			Sel:     o.Pred.Sel,
			Op:      o.Op,
			Label:   o.Pred.Label,
			Payload: o.Pred.Payload,
		})
	}
	return g
}

// Filter returns the generate-and-test TES check of §5.8 for use with the
// SESEdges graph g: a candidate join (left, right) is accepted only if,
// for every connecting edge, the full TES of the originating operator is
// covered and correctly placed. Plans built this way match the TESEdges
// formulation; the difference is that invalid candidates are enumerated
// and rejected late, which is the overhead Fig. 8a measures.
func (t *Tree) Filter(g *hypergraph.Graph) dp.Filter {
	// Edge i of the SESEdges graph corresponds to t.ops[i].
	type tesSides struct {
		l, r bitset.Set
		comm bool
	}
	sides := make([]tesSides, len(t.ops))
	for i, o := range t.ops {
		r := o.tes.Intersect(o.Right.tables)
		sides[i] = tesSides{l: o.tes.Minus(r), r: r, comm: o.Op.Commutative()}
	}
	return func(left, right bitset.Set, conn []dp.EdgeRef) bool {
		for _, ref := range conn {
			s := sides[ref.Idx]
			if !ref.Flipped {
				if !s.l.SubsetOf(left) || !s.r.SubsetOf(right) {
					return false
				}
			} else {
				if !s.comm {
					return false
				}
				if !s.l.SubsetOf(right) || !s.r.SubsetOf(left) {
					return false
				}
			}
		}
		return true
	}
}

// String renders the tree in compact form, e.g. "((R0 ▷ R1) ⋈ R2)".
func (n *Node) String() string {
	if n.IsLeaf() {
		return fmt.Sprintf("R%d", n.Rel)
	}
	return fmt.Sprintf("(%s %s %s)", n.Left, n.Op.Symbol(), n.Right)
}
