package optree

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/counting"
	"repro/internal/plan"
)

// leftDeepStar builds (((R0 ∘1 R1) ∘2 R2) ... ∘k Rk) with hub–satellite
// predicates {R0,Ri} and the given operators (ops[i] joins satellite
// i+1).
func leftDeepStar(ops []algebra.Op) (*Node, []RelInfo) {
	n := len(ops) + 1
	rels := make([]RelInfo, n)
	for i := range rels {
		rels[i] = RelInfo{Name: "R", Card: 100}
	}
	cur := NewLeaf(0)
	for i, op := range ops {
		cur = NewOp(op, cur, NewLeaf(i+1), Predicate{
			Tables: bitset.New(0, i+1),
			Sel:    0.1,
		})
	}
	return cur, rels
}

// leftDeepCycle builds a left-deep tree over a cycle query: predicate i
// references {R_{i-1}, R_i}, and the final operator also carries the
// closing predicate {R0, R_{n-1}} folded into its table set.
func leftDeepCycle(ops []algebra.Op) (*Node, []RelInfo) {
	n := len(ops) + 1
	rels := make([]RelInfo, n)
	for i := range rels {
		rels[i] = RelInfo{Name: "R", Card: 100}
	}
	cur := NewLeaf(0)
	for i, op := range ops {
		tabs := bitset.New(i, i+1)
		if i == len(ops)-1 {
			tabs = tabs.Add(0) // closing edge predicate
		}
		cur = NewOp(op, cur, NewLeaf(i+1), Predicate{Tables: tabs, Sel: 0.1})
	}
	return cur, rels
}

func mustAnalyze(t *testing.T, root *Node, rels []RelInfo, rule ConflictRule) *Tree {
	t.Helper()
	tr, err := Analyze(root, rels, rule)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return tr
}

func ops(o algebra.Op, n int) []algebra.Op {
	out := make([]algebra.Op, n)
	for i := range out {
		out[i] = o
	}
	return out
}

func TestAnalyzeValidation(t *testing.T) {
	// Leaves out of order.
	bad := NewOp(algebra.Join, NewLeaf(1), NewLeaf(0), Predicate{Tables: bitset.New(0, 1), Sel: 0.1})
	if _, err := Analyze(bad, []RelInfo{{Name: "a", Card: 1}, {Name: "b", Card: 1}}, Conservative); err == nil {
		t.Error("out-of-order leaves must fail (§5.4 numbering)")
	}
	// Predicate referencing one side only.
	oneSided := NewOp(algebra.Join, NewLeaf(0), NewLeaf(1), Predicate{Tables: bitset.New(0), Sel: 0.1})
	if _, err := Analyze(oneSided, []RelInfo{{Name: "a", Card: 1}, {Name: "b", Card: 1}}, Conservative); err == nil {
		t.Error("one-sided predicate must fail")
	}
	// Predicate referencing tables outside the subtree.
	outside := NewOp(algebra.Join, NewLeaf(0), NewLeaf(1), Predicate{Tables: bitset.New(0, 1, 5), Sel: 0.1})
	if _, err := Analyze(outside, []RelInfo{{Name: "a", Card: 1}, {Name: "b", Card: 1}}, Conservative); err == nil {
		t.Error("out-of-scope predicate must fail")
	}
	// Dependent operator in the initial tree.
	dep := NewOp(algebra.DepJoin, NewLeaf(0), NewLeaf(1), Predicate{Tables: bitset.New(0, 1), Sel: 0.1})
	if _, err := Analyze(dep, []RelInfo{{Name: "a", Card: 1}, {Name: "b", Card: 1}}, Conservative); err == nil {
		t.Error("dependent operators must be rejected in initial trees")
	}
	// Bad selectivity.
	root, rels := leftDeepStar(ops(algebra.Join, 2))
	root.Pred.Sel = 0
	if _, err := Analyze(root, rels, Conservative); err == nil {
		t.Error("zero selectivity must fail")
	}
	// Missing relations.
	root2, rels2 := leftDeepStar(ops(algebra.Join, 2))
	if _, err := Analyze(root2, rels2[:2], Conservative); err == nil {
		t.Error("missing RelInfo must fail")
	}
}

func TestSESIsPredicateTables(t *testing.T) {
	root, rels := leftDeepStar(ops(algebra.Join, 3))
	tr := mustAnalyze(t, root, rels, Conservative)
	for i, o := range tr.Ops() {
		want := bitset.New(0, i+1)
		if !o.SES().Equal(want) {
			t.Errorf("op %d: SES = %v, want %v", i, o.SES(), want)
		}
	}
}

// Inner joins never conflict with each other: TES = SES and the derived
// hypergraph is exactly the star of simple edges.
func TestInnerJoinStarNoConflicts(t *testing.T) {
	root, rels := leftDeepStar(ops(algebra.Join, 4))
	for _, rule := range []ConflictRule{Conservative, Published} {
		tr := mustAnalyze(t, root, rels, rule)
		for i, o := range tr.Ops() {
			if !o.TES().Equal(o.SES()) {
				t.Errorf("rule %v op %d: TES %v != SES %v", rule, i, o.TES(), o.SES())
			}
		}
		g := tr.Hypergraph(TESEdges)
		if g.NumEdges() != 4 {
			t.Fatalf("edges = %d", g.NumEdges())
		}
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(i)
			if !e.Simple() {
				t.Errorf("rule %v edge %d not simple: %v -- %v", rule, i, e.U, e.V)
			}
		}
	}
}

// Under the conservative rule, a left-deep all-antijoin star accumulates
// prefix TESs, collapsing the search space to the original order — the
// §5.7 claim that the all-antijoin star explores only O(n) pairs.
func TestAntijoinStarConservativePrefixTES(t *testing.T) {
	k := 5
	root, rels := leftDeepStar(ops(algebra.AntiJoin, k))
	tr := mustAnalyze(t, root, rels, Conservative)
	for i, o := range tr.Ops() {
		want := bitset.Range(0, i+2) // {R0..R_{i+1}}
		if !o.TES().Equal(want) {
			t.Errorf("op %d: TES = %v, want prefix %v", i, o.TES(), want)
		}
	}
	g := tr.Hypergraph(TESEdges)
	pairs := counting.CountCsgCmpPairs(g)
	if pairs != k {
		t.Errorf("all-antijoin star explores %d pairs, want O(n) = %d", pairs, k)
	}
}

// Under the published rule, hub–satellite predicates never overlap the
// right-branch path tables, so no conflict fires and antijoins stay
// star-shaped (semantically valid — antijoins against the hub commute —
// but not what the paper's Fig. 8a measured; see the package comment).
func TestAntijoinStarPublishedStaysStar(t *testing.T) {
	root, rels := leftDeepStar(ops(algebra.AntiJoin, 4))
	tr := mustAnalyze(t, root, rels, Published)
	for i, o := range tr.Ops() {
		if !o.TES().Equal(o.SES()) {
			t.Errorf("op %d: TES = %v, want SES %v", i, o.TES(), o.SES())
		}
	}
}

// Outer joins among themselves do not conflict (OC(P,P) = false, eq.
// 4.46), so a cycle of outer joins keeps small TESs under both rules;
// but an inner join above an outer join freezes the outer join's tables
// (Fig. 9: (R P S) B T ≠ R P (S B T)).
func TestOuterJoinCycleTES(t *testing.T) {
	for _, rule := range []ConflictRule{Conservative, Published} {
		root, rels := leftDeepCycle(ops(algebra.LeftOuter, 5))
		tr := mustAnalyze(t, root, rels, rule)
		for i, o := range tr.Ops() {
			if !o.TES().Equal(o.SES()) {
				t.Errorf("rule %v op %d: outer joins must not conflict: TES %v SES %v",
					rule, i, o.TES(), o.SES())
			}
		}
	}

	// Mixed: joins above outer joins absorb them.
	mixed := []algebra.Op{algebra.LeftOuter, algebra.LeftOuter, algebra.Join, algebra.Join}
	root, rels := leftDeepCycle(mixed)
	tr := mustAnalyze(t, root, rels, Published)
	opsList := tr.Ops()
	// op 2 is the first inner join; its predicate {R2,R3} overlaps the
	// right-branch tables of both outer joins below, and OC(P,B) = true.
	if got := opsList[2].TES(); got.Equal(opsList[2].SES()) {
		t.Errorf("join above outer joins must grow its TES, got %v", got)
	}
	// The outer joins themselves keep TES = SES.
	for i := 0; i < 2; i++ {
		if !opsList[i].TES().Equal(opsList[i].SES()) {
			t.Errorf("outer join %d TES grew unexpectedly", i)
		}
	}
}

// Full outer joins conflict with inner joins in both directions
// (OC(B,M) and OC(M,B) are both true). The commutativity normalization
// folded into RightTables makes the published gate fire even though the
// hub sits in the full outer join's left argument.
func TestFullOuterConflicts(t *testing.T) {
	root, rels := leftDeepStar([]algebra.Op{algebra.FullOuter, algebra.Join})
	tr := mustAnalyze(t, root, rels, Published)
	o := tr.Ops()
	// Inner join above the full outer join: conflict → TES grows to
	// cover the full outer join's tables.
	if got, want := o[1].TES(), bitset.New(0, 1, 2); !got.Equal(want) {
		t.Errorf("join TES = %v, want %v (absorbing the full outer join)", got, want)
	}
}

// TES-derived hyperedges must respect §5.7: r-part inside the right
// subtree, l-part the rest, operator attached.
func TestHypergraphEdgeDerivation(t *testing.T) {
	root, rels := leftDeepStar(ops(algebra.AntiJoin, 3))
	tr := mustAnalyze(t, root, rels, Conservative)
	g := tr.Hypergraph(TESEdges)
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		if e.Op != algebra.AntiJoin {
			t.Errorf("edge %d op = %v", i, e.Op)
		}
		if !e.V.Equal(bitset.Single(i + 1)) {
			t.Errorf("edge %d right side = %v, want {R%d}", i, e.V, i+1)
		}
		if !e.U.Equal(bitset.Range(0, i+1)) {
			t.Errorf("edge %d left side = %v, want prefix", i, e.U)
		}
	}
	// Relations carry cardinalities into the graph.
	if g.Relation(0).Card != 100 {
		t.Error("cardinality not propagated")
	}
}

// The SESEdges graph plus TES filter must admit exactly the plans of the
// TESEdges graph: same optimal cost, fewer or equal pairs on the
// hyperedge side.
func TestGenerateAndTestEquivalence(t *testing.T) {
	configs := [][]algebra.Op{
		ops(algebra.AntiJoin, 5),
		{algebra.AntiJoin, algebra.Join, algebra.AntiJoin, algebra.Join},
		{algebra.SemiJoin, algebra.Join, algebra.Join, algebra.AntiJoin},
		ops(algebra.Join, 5),
	}
	for ci, cfg := range configs {
		root, rels := leftDeepStar(cfg)
		tr := mustAnalyze(t, root, rels, Conservative)

		gHyper := tr.Hypergraph(TESEdges)
		pHyper, sHyper, err := core.Solve(gHyper, core.Options{})
		if err != nil {
			t.Fatalf("config %d hyper: %v", ci, err)
		}

		gSES := tr.Hypergraph(SESEdges)
		pSES, sSES, err := core.Solve(gSES, core.Options{Filter: tr.Filter(gSES)})
		if err != nil {
			t.Fatalf("config %d ses: %v", ci, err)
		}

		if pHyper.Cost != pSES.Cost {
			t.Errorf("config %d: hyper cost %g != generate-and-test cost %g",
				ci, pHyper.Cost, pSES.Cost)
		}
		if sHyper.CsgCmpPairs > sSES.CsgCmpPairs {
			t.Errorf("config %d: hyperedges explored more pairs (%d) than generate-and-test (%d)",
				ci, sHyper.CsgCmpPairs, sSES.CsgCmpPairs)
		}
	}
}

// §5.7's efficiency claim in miniature: on the all-antijoin star, the
// hyperedge formulation explores dramatically fewer pairs than
// generate-and-test.
func TestSearchSpaceReduction(t *testing.T) {
	root, rels := leftDeepStar(ops(algebra.AntiJoin, 8))
	tr := mustAnalyze(t, root, rels, Conservative)

	gHyper := tr.Hypergraph(TESEdges)
	_, sHyper, err := core.Solve(gHyper, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gSES := tr.Hypergraph(SESEdges)
	_, sSES, err := core.Solve(gSES, core.Options{Filter: tr.Filter(gSES)})
	if err != nil {
		t.Fatal(err)
	}
	if sHyper.CsgCmpPairs != 8 {
		t.Errorf("hyperedge pairs = %d, want n-1 = 8", sHyper.CsgCmpPairs)
	}
	// The generate-and-test table also prunes (rejected sets never become
	// DP entries), so the emitted-pair gap is quadratic-vs-linear here;
	// the orders-of-magnitude difference the paper plots is wall time,
	// which additionally pays for the exponential neighborhood subset
	// iteration (measured by BenchmarkFig8aAntijoins).
	if sSES.CsgCmpPairs < 4*sHyper.CsgCmpPairs {
		t.Errorf("expected a superlinear emitted-pair gap: hyper %d vs ses %d",
			sHyper.CsgCmpPairs, sSES.CsgCmpPairs)
	}
	if sSES.FilterReject == 0 {
		t.Error("generate-and-test must reject candidates")
	}
	if sHyper.FilterReject != 0 {
		t.Error("hyperedge mode has no filter to reject anything")
	}
}

// Dependent relations: RelInfo.Free flows into the hypergraph so that
// EmitCsgCmp can apply the §5.6 dependent-variant switch.
func TestDependentRelationFlow(t *testing.T) {
	// R0 ⋈ S(R0): S depends on R0.
	root := NewOp(algebra.Join, NewLeaf(0), NewLeaf(1),
		Predicate{Tables: bitset.New(0, 1), Sel: 0.5})
	rels := []RelInfo{
		{Name: "R", Card: 50},
		{Name: "S(R)", Card: 10, Free: bitset.New(0)},
	}
	tr := mustAnalyze(t, root, rels, Conservative)
	g := tr.Hypergraph(TESEdges)
	if !g.FreeTables(bitset.New(1)).Equal(bitset.New(0)) {
		t.Fatalf("free tables = %v", g.FreeTables(bitset.New(1)))
	}
	p, _, err := core.Solve(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The plan must use the dependent join with S on the right.
	if p.Op != algebra.DepJoin {
		t.Errorf("op = %v, want dep-join", p.Op)
	}
	if p.Right.Rel != 1 {
		t.Errorf("dependent side must be the right argument")
	}
}

// Nestjoin attribute references force ordering: a predicate referencing a
// nestjoin's aggregate output absorbs the nestjoin's TES.
func TestNestjoinAttributeDependency(t *testing.T) {
	// (R0 T R1) ⋈ R2 where the join predicate references the aggregate
	// computed by the nestjoin.
	nest := NewOp(algebra.NestJoin, NewLeaf(0), NewLeaf(1),
		Predicate{Tables: bitset.New(0, 1), Sel: 0.1, ExprTables: bitset.New(1)})
	root := NewOp(algebra.Join, nest, NewLeaf(2),
		Predicate{Tables: bitset.New(0, 2), Sel: 0.1, NestRefs: []*Node{nest}})
	rels := []RelInfo{{Name: "R0", Card: 10}, {Name: "R1", Card: 10}, {Name: "R2", Card: 10}}
	tr := mustAnalyze(t, root, rels, Published)
	join := tr.Ops()[1]
	if !nest.TES().SubsetOf(join.TES()) {
		t.Errorf("join TES %v must absorb nestjoin TES %v", join.TES(), nest.TES())
	}
}

func TestTreeString(t *testing.T) {
	root, _ := leftDeepStar([]algebra.Op{algebra.AntiJoin, algebra.Join})
	if got := root.String(); got != "((R0 ▷ R1) ⋈ R2)" {
		t.Errorf("String = %q", got)
	}
}

// Plans from TES-derived hypergraphs must carry the originating operators
// (§5.4: "we associate with each hyperedge the operator from which it was
// derived").
func TestOperatorRecovery(t *testing.T) {
	root, rels := leftDeepStar([]algebra.Op{algebra.SemiJoin, algebra.LeftOuter, algebra.Join})
	tr := mustAnalyze(t, root, rels, Conservative)
	g := tr.Hypergraph(TESEdges)
	p, _, err := core.Solve(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	count := map[algebra.Op]int{}
	p.Walk(func(n *plan.Node) {
		if !n.IsLeaf() {
			count[n.Op]++
		}
	})
	if count[algebra.SemiJoin] != 1 || count[algebra.LeftOuter] != 1 || count[algebra.Join] != 1 {
		t.Errorf("operator counts = %v, want one of each", count)
	}
	// Non-commutative operators must keep their satellite on the right.
	p.Walk(func(n *plan.Node) {
		if n.IsLeaf() || n.Op == algebra.Join {
			return
		}
		if !n.Right.Rels.IsSingleton() {
			t.Errorf("%v has composite right side %v", n.Op, n.Right.Rels)
		}
	})
}
