package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/counting"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

func chainGraph(n int) *hypergraph.Graph {
	g := hypergraph.New()
	g.AddRelations(n, "R", 100)
	for i := 0; i+1 < n; i++ {
		g.AddSimpleEdge(i, i+1, 0.1)
	}
	return g
}

func cycleGraph(n int) *hypergraph.Graph {
	g := chainGraph(n)
	g.AddSimpleEdge(n-1, 0, 0.1)
	return g
}

func starGraph(n int) *hypergraph.Graph {
	g := hypergraph.New()
	g.AddRelations(n, "R", 100)
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(0, i, 0.1)
	}
	return g
}

func cliqueGraph(n int) *hypergraph.Graph {
	g := hypergraph.New()
	g.AddRelations(n, "R", 100)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddSimpleEdge(i, j, 0.1)
		}
	}
	return g
}

// collectPairs runs DPhyp and returns the emitted csg-cmp-pairs in
// emission order.
func collectPairs(t *testing.T, g *hypergraph.Graph) []counting.Pair {
	t.Helper()
	var pairs []counting.Pair
	_, _, err := Solve(g, Options{OnEmit: func(s1, s2 bitset.Set) {
		pairs = append(pairs, counting.Pair{S1: s1, S2: s2})
	}})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return pairs
}

// assertExactCcps checks that DPhyp emitted exactly the csg-cmp-pairs of
// the graph: no duplicates, none missing, all normalized, and in an order
// valid for dynamic programming (subset pairs before superset pairs).
func assertExactCcps(t *testing.T, g *hypergraph.Graph) {
	t.Helper()
	got := collectPairs(t, g)
	want := counting.CsgCmpPairs(g)

	seen := map[string]int{}
	for i, p := range got {
		if p.S1.Min() >= p.S2.Min() {
			t.Errorf("pair %d: %v|%v not normalized (min(S1) must precede min(S2))", i, p.S1, p.S2)
		}
		if prev, dup := seen[p.Key()]; dup {
			t.Errorf("pair %v|%v emitted twice (at %d and %d)", p.S1, p.S2, prev, i)
		}
		seen[p.Key()] = i
	}
	if len(got) != len(want) {
		t.Errorf("emitted %d pairs, oracle says %d", len(got), len(want))
	}
	for _, p := range want {
		if _, ok := seen[p.Key()]; !ok {
			t.Errorf("missing csg-cmp-pair %v|%v", p.S1, p.S2)
		}
	}
	// DP order: every (S1',S2') with S1'⊆S1, S2'⊆S2 must appear before
	// (S1,S2) (§2.2).
	for i, p := range got {
		for j, q := range got {
			if i == j {
				continue
			}
			if q.S1.SubsetOf(p.S1) && q.S2.SubsetOf(p.S2) && j > i {
				t.Errorf("DP order violated: %v|%v (at %d) after %v|%v (at %d)",
					q.S1, q.S2, j, p.S1, p.S2, i)
			}
		}
	}
}

func TestExactCcpsStandardShapes(t *testing.T) {
	for n := 2; n <= 7; n++ {
		t.Run("chain", func(t *testing.T) { assertExactCcps(t, chainGraph(n)) })
		t.Run("star", func(t *testing.T) { assertExactCcps(t, starGraph(n)) })
		t.Run("clique", func(t *testing.T) { assertExactCcps(t, cliqueGraph(n)) })
		if n >= 3 {
			t.Run("cycle", func(t *testing.T) { assertExactCcps(t, cycleGraph(n)) })
		}
	}
}

func TestExactCcpsPaperExample(t *testing.T) {
	assertExactCcps(t, hypergraph.PaperExampleGraph())
}

func TestPaperExampleStats(t *testing.T) {
	g := hypergraph.PaperExampleGraph()
	p, stats, err := Solve(g, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if stats.CsgCmpPairs != 9 {
		t.Errorf("csg-cmp-pairs = %d, want 9", stats.CsgCmpPairs)
	}
	if !p.Rels.Equal(g.AllNodes()) {
		t.Errorf("plan covers %v", p.Rels)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("plan invalid: %v", err)
	}
	// The only way across the hyperedge is {R1,R2,R3} x {R4,R5,R6}: the
	// root must join exactly these two sides.
	left, right := p.Left.Rels, p.Right.Rels
	want1, want2 := bitset.New(0, 1, 2), bitset.New(3, 4, 5)
	if !(left.Equal(want1) && right.Equal(want2) || left.Equal(want2) && right.Equal(want1)) {
		t.Errorf("root joins %v and %v, want the hyperedge sides", left, right)
	}
}

// TestExactCcpsRandomHypergraphs is the main differential test: on random
// connected hypergraphs, DPhyp must emit exactly the oracle's pair set.
func TestExactCcpsRandomHypergraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2008))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6) // 3..8 relations
		g := randomHypergraph(rng, n)
		assertExactCcps(t, g)
	}
}

// randomHypergraph builds a connected hypergraph: spanning tree of simple
// edges plus random extra simple edges and hyperedges.
func randomHypergraph(rng *rand.Rand, n int) *hypergraph.Graph {
	g := hypergraph.New()
	for i := 0; i < n; i++ {
		g.AddRelation("R", float64(10+rng.Intn(1000)))
	}
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(rng.Intn(i), i, 0.05+rng.Float64()*0.5)
	}
	extras := rng.Intn(n)
	for k := 0; k < extras; k++ {
		if rng.Intn(2) == 0 {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddSimpleEdge(a, b, 0.05+rng.Float64()*0.5)
			}
			continue
		}
		var u, v bitset.Set
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				u = u.Add(i)
			case 1:
				v = v.Add(i)
			}
		}
		if !u.IsEmpty() && !v.IsEmpty() && u.Disjoint(v) {
			g.AddEdge(hypergraph.Edge{U: u, V: v, Sel: 0.05 + rng.Float64()*0.5})
		}
	}
	return g
}

// TestOptimalityAgainstBruteForce verifies Bellman optimality of DPhyp
// plans under C_out on random inner-join hypergraphs.
func TestOptimalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(5)
		g := randomHypergraph(rng, n)
		p, _, err := Solve(g, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, ok := counting.BruteForceCout(g)
		if !ok {
			t.Fatalf("trial %d: oracle found no plan but DPhyp did", trial)
		}
		if diff := p.Cost - want; diff > 1e-6*want+1e-9 || diff < -1e-6*want-1e-9 {
			t.Errorf("trial %d: DPhyp cost %g, optimal %g\n%s", trial, p.Cost, want, p)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("trial %d: invalid plan: %v", trial, err)
		}
	}
}

// Every join in the produced plan must be over graph-connected parts:
// cross-product-freeness.
func TestNoCrossProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		g := randomHypergraph(rng, 3+rng.Intn(6))
		p, _, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		p.Walk(func(n *plan.Node) {
			if n.IsLeaf() {
				return
			}
			if !g.ConnectsTo(n.Left.Rels, n.Right.Rels) {
				t.Errorf("cross product: %v x %v", n.Left.Rels, n.Right.Rels)
			}
			if !g.IsConnected(n.Rels) {
				t.Errorf("join produces disconnected set %v", n.Rels)
			}
		})
	}
}

// The trace of the Figure 2 graph reaches the milestones the paper
// describes: the final pair joins the hyperedge sides, and complements
// are grown through the canonical node R4.
func TestTracePaperExample(t *testing.T) {
	g := hypergraph.PaperExampleGraph()
	tr := &Trace{}
	if _, _, err := Solve(g, Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	pairs := tr.Pairs()
	if len(pairs) != 9 {
		t.Fatalf("trace has %d pairs, want 9:\n%s", len(pairs), tr)
	}
	last := pairs[len(pairs)-1]
	if !last.S1.Equal(bitset.New(0, 1, 2)) || !last.S2.Equal(bitset.New(3, 4, 5)) {
		t.Errorf("last pair %v|%v, want {R1,R2,R3}|{R4,R5,R6}", last.S1, last.S2)
	}
	if tr.String() == "" {
		t.Error("trace rendering empty")
	}
}

func TestDisconnectedGraphFails(t *testing.T) {
	g := hypergraph.New()
	g.AddRelations(3, "R", 10)
	g.AddSimpleEdge(0, 1, 0.5)
	if _, _, err := Solve(g, Options{}); err == nil {
		t.Error("disconnected graph must fail")
	}
	// Definition-3 disconnection (hyperedge into an internally
	// disconnected hypernode) must fail too.
	g2 := hypergraph.New()
	g2.AddRelations(3, "R", 10)
	g2.AddEdge(hypergraph.Edge{U: bitset.New(0), V: bitset.New(1, 2), Sel: 0.5})
	if _, _, err := Solve(g2, Options{}); err == nil {
		t.Error("Definition-3 disconnected graph must fail")
	}
}

func TestEmptyGraphFails(t *testing.T) {
	if _, _, err := Solve(hypergraph.New(), Options{}); err == nil {
		t.Error("empty graph must fail")
	}
}

func TestSingleRelation(t *testing.T) {
	g := hypergraph.New()
	g.AddRelation("only", 42)
	p, stats, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsLeaf() || p.Card != 42 {
		t.Errorf("plan = %+v", p)
	}
	if stats.CsgCmpPairs != 0 {
		t.Errorf("pairs = %d", stats.CsgCmpPairs)
	}
}

func TestFilterRejectsEverything(t *testing.T) {
	g := chainGraph(3)
	reject := func(left, right bitset.Set, conn []dp.EdgeRef) bool { return false }
	_, stats, err := Solve(g, Options{Filter: reject})
	if err == nil {
		t.Error("all-rejecting filter must leave no final plan")
	}
	if stats.FilterReject == 0 {
		t.Error("filter rejections must be counted")
	}
}

func TestFilterPassthroughMatchesUnfiltered(t *testing.T) {
	g := cycleGraph(6)
	accept := func(left, right bitset.Set, conn []dp.EdgeRef) bool { return true }
	p1, s1, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, s2, err := Solve(g, Options{Filter: accept})
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cost != p2.Cost {
		t.Errorf("filtered cost %g != unfiltered %g", p2.Cost, p1.Cost)
	}
	if s1.CsgCmpPairs != s2.CsgCmpPairs {
		t.Errorf("pair counts differ: %d vs %d", s1.CsgCmpPairs, s2.CsgCmpPairs)
	}
}

// Generalized hyperedges (§6): DPhyp must handle (u,v,w) edges without
// modification and find plans that place w-relations on either side.
func TestGeneralizedHyperedge(t *testing.T) {
	g := hypergraph.New()
	g.AddRelations(3, "R", 100)
	g.AddSimpleEdge(0, 1, 0.1)
	// Predicate over R0, R2 with R1 movable to either side. The only
	// Definition-3-valid root partition is ({R0,R1}, {R2}) with R1 placed
	// on the left of the generalized edge.
	g.AddEdge(hypergraph.Edge{U: bitset.New(0), V: bitset.New(2), W: bitset.New(1), Sel: 0.2})
	p, _, err := Solve(g, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !p.Rels.Equal(g.AllNodes()) {
		t.Errorf("plan covers %v", p.Rels)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	l, r := p.Left.Rels, p.Right.Rels
	if !(l.Equal(bitset.New(0, 1)) && r.Equal(bitset.New(2)) || l.Equal(bitset.New(2)) && r.Equal(bitset.New(0, 1))) {
		t.Errorf("root joins %v and %v, want {R0,R1} with {R2}", l, r)
	}
	assertExactCcps(t, g)

	// An unplaceable w (no way to make both sides connected) must fail.
	g2 := hypergraph.New()
	g2.AddRelations(3, "R", 100)
	g2.AddEdge(hypergraph.Edge{U: bitset.New(0), V: bitset.New(2), W: bitset.New(1), Sel: 0.2})
	if _, _, err := Solve(g2, Options{}); err == nil {
		t.Error("graph with stranded w-relation must have no plan")
	}
}

// DPhyp statistics must match the §2.2 lower bound exactly: the number of
// emitted pairs equals the number of csg-cmp-pairs of the graph.
func TestStatsMatchLowerBound(t *testing.T) {
	for _, g := range []*hypergraph.Graph{
		chainGraph(6), cycleGraph(6), starGraph(6), cliqueGraph(5),
		hypergraph.PaperExampleGraph(),
	} {
		_, stats, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := counting.CountCsgCmpPairs(g)
		if stats.CsgCmpPairs != want {
			t.Errorf("pairs = %d, lower bound %d", stats.CsgCmpPairs, want)
		}
	}
}

func BenchmarkDPhypChain10(b *testing.B)  { benchGraph(b, chainGraph(10)) }
func BenchmarkDPhypCycle10(b *testing.B)  { benchGraph(b, cycleGraph(10)) }
func BenchmarkDPhypStar10(b *testing.B)   { benchGraph(b, starGraph(10)) }
func BenchmarkDPhypClique10(b *testing.B) { benchGraph(b, cliqueGraph(10)) }

func benchGraph(b *testing.B, g *hypergraph.Graph) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
