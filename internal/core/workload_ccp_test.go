package core

import (
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/workload"
)

// The evaluation's hypergraph families (Fig. 4) must also be enumerated
// exactly: for every split stage of the 8-relation cycle and star
// workloads, DPhyp's emitted pairs equal the exhaustive oracle's.
func TestExactCcpsEvaluationWorkloads(t *testing.T) {
	cfg := workload.DefaultConfig()
	for splits := 0; splits <= 3; splits++ {
		t.Run("cycle8", func(t *testing.T) {
			assertExactCcps(t, workload.CycleHyper(8, splits, cfg))
		})
		t.Run("star8", func(t *testing.T) {
			assertExactCcps(t, workload.StarHyper(8, splits, cfg))
		})
	}
	t.Run("cycle4", func(t *testing.T) {
		for splits := 0; splits <= 1; splits++ {
			assertExactCcps(t, workload.CycleHyper(4, splits, cfg))
		}
	})
	t.Run("star4", func(t *testing.T) {
		for splits := 0; splits <= 1; splits++ {
			assertExactCcps(t, workload.StarHyper(4, splits, cfg))
		}
	})
}

// Splitting hyperedges only ever adds csg-cmp-pairs (the derived edges
// are strictly weaker constraints), which is why the Fig. 5/6 curves
// grow with the split count.
func TestSplitsMonotoneSearchSpace(t *testing.T) {
	cfg := workload.DefaultConfig()
	families := []func(splits int) *hypergraph.Graph{
		func(s int) *hypergraph.Graph { return workload.CycleHyper(8, s, cfg) },
		func(s int) *hypergraph.Graph { return workload.StarHyper(8, s, cfg) },
	}
	for fi, family := range families {
		prev := -1
		for splits := 0; splits <= 3; splits++ {
			_, stats, err := Solve(family(splits), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if stats.CsgCmpPairs < prev {
				t.Errorf("family %d: pairs shrank at %d splits: %d < %d",
					fi, splits, stats.CsgCmpPairs, prev)
			}
			prev = stats.CsgCmpPairs
		}
	}
}
