// Package core implements DPhyp, the join enumeration algorithm of
// "Dynamic Programming Strikes Back" (Moerkotte & Neumann, SIGMOD 2008).
//
// DPhyp enumerates exactly the csg-cmp-pairs of a query hypergraph in an
// order valid for dynamic programming: every pair (S1',S2') with
// S1' ⊆ S1 and S2' ⊆ S2 is enumerated before (S1,S2). The algorithm is
// structured as the five member functions of §3:
//
//   - Solve initializes the DP table with single-relation plans and
//     seeds the enumeration from every node in decreasing ≺ order;
//   - EnumerateCsgRec grows connected subgraphs by adding subsets of the
//     neighborhood, using DP-table lookups as the connectivity test;
//   - EmitCsg finds complement seeds in the neighborhood of a finished
//     connected subgraph;
//   - EnumerateCmpRec grows those seeds into connected complements;
//   - EmitCsgCmp builds and prices plans for each csg-cmp-pair (shared
//     with the other algorithms via internal/dp).
//
// Hyperedges are traversed as n:1 edges leading to a canonical
// representative node of the far side (Equation 1); the remaining nodes
// of a hypernode are picked up by recursive growth and validated against
// the DP table ("this exploits the fact that DP strategies enumerate
// subsets before supersets").
//
// Duplicate complements are avoided with the refinement inherited from
// DPccp [17]: the seed v additionally forbids all neighborhood members
// ordered before it, so every complement is grown from its ≺-minimal
// neighbor exactly once.
package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Options configures a DPhyp run.
type Options struct {
	// Model is the cost model; cost.Default() when nil.
	Model cost.Model

	// Filter enables the generate-and-test paradigm of §5.8: candidate
	// plans are enumerated from the (smaller-edged) graph and rejected
	// late, inside EmitCsgCmp. Used to reproduce the "DPhyp TESs" curve
	// of Fig. 8a. Nil for the pure hypergraph-driven mode.
	Filter dp.Filter

	// OnEmit observes csg-cmp-pairs in emission order (tests, traces).
	OnEmit func(S1, S2 bitset.Set)

	// Trace, when non-nil, records the traversal steps analogous to
	// Fig. 3.
	Trace *Trace

	// Explain, when non-nil, receives phase spans for the run (the
	// engine records the materialize phase; the planner wraps the whole
	// enumeration). Unlike Trace/OnEmit it does not force the serial
	// engine — spans are recorded at phase boundaries by the
	// orchestrating goroutine, never by workers.
	Explain *obs.Trace

	// Limits bounds the run: cancellation is polled inside the
	// enumeration recursion, and budget trips abort with
	// dp.ErrBudgetExhausted. The zero value imposes no bounds.
	Limits dp.Limits

	// Pool, when non-nil, supplies recycled memo engines (table,
	// arena, and backend scratch) from previous runs.
	Pool *memo.Pool

	// Parallelism > 1 enables the parallel spine: the csg-cmp
	// enumeration itself is partitioned across workers by start vertex
	// (every csg grown from vertex v has min = v, so its intra-vertex
	// membership tests are worker-local), with cross-vertex membership
	// — complements whose minimum is a vertex possibly still in flight
	// on another worker — answered by a structural Definition-3
	// connectivity test cached per worker. Under the dp.ParallelSafe
	// admissibility precheck table membership is exactly connectivity,
	// so the partitioned enumeration admits the same pairs as the
	// serial order. Admitted pairs are collected per worker and then
	// priced level-by-level across workers (dp.ParRun.PriceLevels).
	// Graphs failing the precheck fall back to the serial engine.
	// 0 or 1 runs today's serial engine.
	Parallelism int
}

// Solver runs DPhyp over one hypergraph. It is a pure enumerator: all
// memoization, budget accounting, and plan construction route through
// the memo engine (e) and its dp.Builder backend (b).
type Solver struct {
	g    *hypergraph.Graph
	e    *memo.Engine
	b    *dp.Builder
	opts Options

	// emit and contains are the enumeration's two memo touch points.
	// In the serial mode they are the engine's EmitPair/Contains; the
	// parallel mode redirects them to a pair recorder backed by a
	// membership-only table.
	emit     func(S1, S2 bitset.Set)
	contains func(S bitset.Set) bool

	// sc is the reusable neighborhood candidate buffer; together with
	// the incrementally maintained simple-neighbor unions it removes
	// the remaining per-csg allocations from the recursion.
	sc hypergraph.NeighborScratch
}

// New prepares a solver. The graph must stay unmodified during Run.
func New(g *hypergraph.Graph, opts Options) *Solver {
	e, b := dp.NewRun(opts.Pool, g, opts.Model)
	b.Filter = opts.Filter
	e.OnEmit = opts.OnEmit
	e.SetLimits(opts.Limits)
	e.SetTrace(opts.Explain)
	s := &Solver{g: g, e: e, b: b, opts: opts}
	s.emit = e.EmitPair
	s.contains = e.Contains
	return s
}

// Solve is the convenience entry point: it runs DPhyp on g and returns
// the optimal bushy plan without cross products. When opts.Pool is set,
// the engine's scratch state is returned to the pool before Solve
// returns (the plan itself is materialized out of the arena and stays
// valid).
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	s := New(g, opts)
	p, err := s.Run()
	st := s.Stats()
	opts.Pool.Put(s.e)
	return p, st, err
}

// Stats returns the enumeration statistics of the last Run.
func (s *Solver) Stats() dp.Stats { return s.e.Stats }

// Engine exposes the memo engine (read-only use) for tests and tooling.
func (s *Solver) Engine() *memo.Engine { return s.e }

// Run executes the Solve routine of §3.1.
func (s *Solver) Run() (*plan.Node, error) {
	n := s.g.NumRels()
	if n == 0 {
		return nil, errEmpty
	}
	s.b.Init()
	s.opts.Trace.init(n)

	// Mirror the planner's serial gates for direct solver callers:
	// filters may carry shared per-analysis state, and hooks/traces need
	// the serial emission order (dp.ParallelSafe additionally requires
	// cost-free pair acceptance for the deferred mode).
	if s.opts.Parallelism > 1 && s.opts.Filter == nil && s.opts.OnEmit == nil &&
		s.opts.Trace == nil && dp.ParallelSafe(s.g) {
		return s.runParallel(n)
	}
	s.enumerate(n)
	return s.b.Final()
}

// enumerate drives the §3.1 outer loop, feeding pairs to s.emit.
//
//dp:hotpath
func (s *Solver) enumerate(n int) {
	// "for each v ∈ V descending according to ≺: EmitCsg({v});
	// EnumerateCsgRec({v}, B_v)"
	for v := n - 1; v >= 0 && s.e.Aborted() == nil; v-- {
		S := bitset.Single(v)
		su := s.g.SimpleNeighborUnion(S)
		s.opts.Trace.add(StepStartNode, S, bitset.Empty)
		s.emitCsg(S, su)
		s.enumerateCsgRec(S, bitset.BelowEq(v), su)
	}
}

// runParallel is the parallel spine: the csg-cmp enumeration itself is
// partitioned across workers. Workers claim start vertices dynamically
// (descending, matching the serial seeding order); each runs the full
// §3 member-function body for its vertices with the two memo touch
// points redirected — emit records pairs into the worker's deferred
// bucket, and contains answers with a structural Definition-3
// connectivity test (hypergraph.ConnectedSet) cached in the worker's
// scratch table.
//
// Why structural connectivity is the correct membership oracle: under
// dp.ParallelSafe every admitted pair stores a plan, so the serial DP
// table holds S iff S is a connected csg. Queries with min(S) equal to
// the worker's own start vertex concern csgs the worker grows itself;
// queries with a smaller min concern vertices another worker owns —
// the serial order would have completed them already, and connectivity
// is exactly the answer the finished table would give. The partitioned
// enumeration therefore admits the same pair set as the serial order,
// and the order-independent barrier merge makes the final plan
// byte-identical at any worker count.
//
// After the single collect barrier (memo.LevelCollected folds the
// workers' pair counters; their tables carry no plans), the recorded
// pairs are bucketed by result-set size through the pooled
// dp.ParRun.Buckets and priced level-by-level across the same workers.
func (s *Solver) runParallel(n int) (*plan.Node, error) {
	pr := dp.NewParRun(s.b, s.opts.Parallelism)
	pr.Par.StartLevel()
	collect := s.opts.Explain.Start(obs.PhaseCollect)
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := range pr.Bs {
		wb := pr.Bs[w]
		we := wb.Engine
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := we.Scratch(1 << uint(min(n, 12)))
			var cs hypergraph.ConnScratch
			col := &Solver{g: s.g, e: we, b: wb}
			col.emit = func(S1, S2 bitset.Set) {
				if we.EmitDeferred(S1, S2) {
					wb.DeferPair(S1, S2)
				}
			}
			col.contains = func(S bitset.Set) bool {
				if v, ok := conn.Get(S); ok {
					return v != 0
				}
				var v int32
				if s.g.ConnectedSet(S, &cs) {
					v = 1
				}
				conn.Put(S, v)
				return v != 0
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || we.Aborted() != nil {
					return
				}
				v := n - 1 - i
				S := bitset.Single(v)
				su := s.g.SimpleNeighborUnion(S)
				col.emitCsg(S, su)
				col.enumerateCsgRec(S, bitset.BelowEq(v), su)
			}
		}()
	}
	wg.Wait()
	pr.Par.FinishLevel(memo.LevelCollected)
	s.opts.Explain.Annotate(collect, int64(s.e.Stats.CsgCmpPairs), 0, s.opts.Parallelism, 0)
	s.opts.Explain.End(collect)
	if pr.Par.Aborted() == nil {
		price := s.opts.Explain.Start(obs.PhasePrice)
		pr.PriceLevels(pr.Buckets(n))
		s.opts.Explain.Annotate(price, 0, s.e.Entries(), s.opts.Parallelism, 0)
		s.opts.Explain.End(price)
	}
	return s.b.Final()
}

// enumerateCsgRec extends the connected subgraph S1 (§3.2). X is the set
// of forbidden nodes; every node the function will consider itself is
// forbidden in recursive calls to avoid duplicate enumeration. su is
// the incrementally maintained SimpleNeighborUnion of S1.
//
//dp:hotpath
func (s *Solver) enumerateCsgRec(S1, X, su bitset.Set) {
	if !s.e.Step() {
		return
	}
	N := s.g.NeighborhoodWith(S1, X, su, &s.sc)
	if N.IsEmpty() {
		return
	}
	// First pass: emit smaller sets before growing them further. The
	// Vance–Maier order enumerates every proper subset of a subset
	// before it, so the DP order is respected within the loop, too.
	for n := bitset.Empty.NextSubset(N); ; n = n.NextSubset(N) {
		if !s.e.Step() {
			return
		}
		next := S1.Union(n)
		if s.contains(next) {
			s.opts.Trace.add(StepCsg, next, bitset.Empty)
			s.emitCsg(next, su.Union(s.g.SimpleNeighborUnion(n)))
		}
		if n.Equal(N) {
			break
		}
	}
	// Second pass: recursive growth with the whole neighborhood
	// forbidden ("when a function performs a recursive call it forbids
	// all nodes it will investigate itself").
	newX := X.Union(N)
	for n := bitset.Empty.NextSubset(N); ; n = n.NextSubset(N) {
		s.enumerateCsgRec(S1.Union(n), newX, su.Union(s.g.SimpleNeighborUnion(n)))
		if n.Equal(N) {
			break
		}
	}
}

// emitCsg generates the seeds of all complements of the connected
// subgraph S1 (§3.3). su is the SimpleNeighborUnion of S1.
//
//dp:hotpath
func (s *Solver) emitCsg(S1, su bitset.Set) {
	if !s.e.Step() {
		return
	}
	X := S1.Union(bitset.BelowEq(S1.Min()))
	N := s.g.NeighborhoodWith(S1, X, su, &s.sc)
	if N.IsEmpty() {
		return
	}
	// "for each v ∈ N descending according to ≺"
	for v := N.Max(); v >= 0 && s.e.Aborted() == nil; v = prevElem(N, v) {
		S2 := bitset.Single(v)
		// "if ∃(u,v) ∈ E : u ⊆ S1 ∧ v ⊆ S2": the neighborhood may
		// contain representatives of larger hypernodes that do not yet
		// connect (§3.3's step 20: no edge between {R1,R2,R3} and {R4}).
		if s.g.ConnectsTo(S1, S2) {
			s.opts.Trace.add(StepCmp, S1, S2)
			s.emit(S1, S2)
		}
		// Forbid the smaller-ordered neighbors while growing this seed so
		// each complement is produced from its ≺-minimal seed only (the
		// duplicate-avoidance scheme of DPccp [17]).
		s.enumerateCmpRec(S1, S2, X.Union(N.Intersect(bitset.BelowEq(v))), s.g.SimpleNeighborUnion(S2))
	}
}

// prevElem returns the largest element of N strictly below v, or -1.
//
//dp:hotpath
func prevElem(N bitset.Set, v int) int {
	below := N.Intersect(bitset.Below(v))
	if below.IsEmpty() {
		return -1
	}
	return below.Max()
}

// enumerateCmpRec grows the complement S2 of S1 (§3.4). su is the
// SimpleNeighborUnion of S2.
//
//dp:hotpath
func (s *Solver) enumerateCmpRec(S1, S2, X, su bitset.Set) {
	if !s.e.Step() {
		return
	}
	N := s.g.NeighborhoodWith(S2, X, su, &s.sc)
	if N.IsEmpty() {
		return
	}
	for n := bitset.Empty.NextSubset(N); ; n = n.NextSubset(N) {
		if !s.e.Step() {
			return
		}
		next := S2.Union(n)
		// "if dpTable[S2 ∪ N] ≠ ∅ ∧ ∃(u,v) ∈ E : u ⊆ S1 ∧ v ⊆ S2 ∪ N"
		if s.contains(next) && s.g.ConnectsTo(S1, next) {
			s.opts.Trace.add(StepCmp, S1, next)
			s.emit(S1, next)
		}
		if n.Equal(N) {
			break
		}
	}
	// "X = X ∪ N(S2,X)" before the recursive descent.
	newX := X.Union(N)
	for n := bitset.Empty.NextSubset(N); ; n = n.NextSubset(N) {
		s.enumerateCmpRec(S1, S2.Union(n), newX, su.Union(s.g.SimpleNeighborUnion(n)))
		if n.Equal(N) {
			break
		}
	}
}

type solverError string

func (e solverError) Error() string { return string(e) }

const errEmpty = solverError("dphyp: empty hypergraph")
