package core

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
)

// StepKind classifies a traversal event recorded by Trace. The kinds
// correspond to the highlighted states in the paper's Figure 3: the
// enumeration visits singleton start nodes, grows connected subgraphs,
// and constructs connected complements.
type StepKind uint8

// Step kinds.
const (
	StepStartNode StepKind = iota // Solve processes a singleton {v}
	StepCsg                       // EnumerateCsgRec found a connected subgraph
	StepCmp                       // a csg-cmp-pair (S1,S2) is emitted
)

func (k StepKind) String() string {
	switch k {
	case StepStartNode:
		return "start"
	case StepCsg:
		return "csg"
	case StepCmp:
		return "csg-cmp"
	}
	return "?"
}

// Step is one recorded traversal event.
type Step struct {
	Kind   StepKind
	S1, S2 bitset.Set
}

// Trace records the traversal of a DPhyp run, mirroring the step-by-step
// walkthrough of Figure 3. A nil *Trace is valid and records nothing, so
// the hot path stays branch-cheap.
type Trace struct {
	Steps []Step
	n     int
}

//dp:coldpath trace capture is a debugging mode, never enabled on production runs
func (t *Trace) init(n int) {
	if t == nil {
		return
	}
	t.Steps = t.Steps[:0]
	t.n = n
}

//dp:coldpath trace capture is a debugging mode, never enabled on production runs
func (t *Trace) add(kind StepKind, s1, s2 bitset.Set) {
	if t == nil {
		return
	}
	t.Steps = append(t.Steps, Step{Kind: kind, S1: s1, S2: s2})
}

// Pairs returns only the csg-cmp-pair emission events.
func (t *Trace) Pairs() []Step {
	var out []Step
	for _, s := range t.Steps {
		if s.Kind == StepCmp {
			out = append(out, s)
		}
	}
	return out
}

// String renders the trace, one numbered step per line, in the spirit of
// Figure 3's legend (connected subgraph / connected complement).
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for i, s := range t.Steps {
		switch s.Kind {
		case StepStartNode:
			fmt.Fprintf(&b, "%3d  start        %v\n", i+1, s.S1)
		case StepCsg:
			fmt.Fprintf(&b, "%3d  csg          %v\n", i+1, s.S1)
		case StepCmp:
			fmt.Fprintf(&b, "%3d  csg-cmp-pair %v | %v\n", i+1, s.S1, s.S2)
		}
	}
	return b.String()
}
