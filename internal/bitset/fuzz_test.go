package bitset

import (
	"math/bits"
	"testing"
)

// FuzzBitsetWidth drives random element sets across the 64/65-element
// boundary: each input describes two 128-bit patterns (a, b) plus an
// offset. The pair is evaluated twice — once as given (typically
// exercising the multi-word paths) and once with every element shifted
// down by the offset so that, whenever the patterns fit, the sets
// collapse into the single-word fast path. Shifting is a set
// isomorphism, so union, intersect, minus, xor, the predicates, and the
// full subset enumeration must commute with it: the single-word and
// multi-word code paths have to produce identical results, element for
// element, enumeration order included.
func FuzzBitsetWidth(f *testing.F) {
	f.Add(uint64(1), uint64(1), uint64(1), uint64(0), uint8(1))
	f.Add(uint64(1)<<63, uint64(1), uint64(1)<<63, uint64(3), uint8(1))
	f.Add(^uint64(0), uint64(0), uint64(0xF0F0), uint64(0xF), uint8(60))
	f.Add(uint64(0x8000000000000001), uint64(0x8000000000000001), uint64(3), uint64(3), uint8(63))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint8(7))
	f.Add(uint64(0xDEADBEEF), uint64(0xCAFE), uint64(0xBEEF), uint64(0xDEAD), uint8(32))

	f.Fuzz(func(t *testing.T, alo, ahi, blo, bhi uint64, off uint8) {
		shift := int(off % 64)

		// elemsAt decodes the two words as elements [shift, shift+128).
		elemsAt := func(lo, hi uint64, base int) []int {
			var out []int
			for w := lo; w != 0; w &= w - 1 {
				out = append(out, base+bits.TrailingZeros64(w))
			}
			for w := hi; w != 0; w &= w - 1 {
				out = append(out, base+64+bits.TrailingZeros64(w))
			}
			return out
		}
		// up sits at the offset (straddling the boundary for most
		// inputs); down is the same set translated to start at zero.
		aUp, aDown := New(elemsAt(alo, ahi, shift)...), New(elemsAt(alo, ahi, 0)...)
		bUp, bDown := New(elemsAt(blo, bhi, shift)...), New(elemsAt(blo, bhi, 0)...)

		// shiftDown translates a result of the up-universe back down.
		shiftDown := func(s Set) Set {
			out := Empty
			s.ForEach(func(e int) {
				if e < shift {
					t.Fatalf("element %d below offset %d", e, shift)
				}
				out = out.Add(e - shift)
			})
			return out
		}
		requireEqual := func(tag string, up, down Set) {
			t.Helper()
			if got := shiftDown(up); !got.Equal(down) {
				t.Fatalf("%s: wide path %v (down-shifted %v) != narrow path %v", tag, up, got, down)
			}
		}

		requireEqual("union", aUp.Union(bUp), aDown.Union(bDown))
		requireEqual("intersect", aUp.Intersect(bUp), aDown.Intersect(bDown))
		requireEqual("minus", aUp.Minus(bUp), aDown.Minus(bDown))
		requireEqual("xor", aUp.Xor(bUp), aDown.Xor(bDown))
		requireEqual("minset", aUp.MinSet(), aDown.MinSet())
		requireEqual("minusmin", aUp.MinusMin(), aDown.MinusMin())

		for _, p := range []struct {
			tag      string
			up, down bool
		}{
			{"subsetof", aUp.SubsetOf(bUp), aDown.SubsetOf(bDown)},
			{"propersubsetof", aUp.ProperSubsetOf(bUp), aDown.ProperSubsetOf(bDown)},
			{"overlaps", aUp.Overlaps(bUp), aDown.Overlaps(bDown)},
			{"equal", aUp.Equal(bUp), aDown.Equal(bDown)},
			{"less", aUp.Less(bUp), aDown.Less(bDown)},
			{"isempty", aUp.IsEmpty(), aDown.IsEmpty()},
			{"issingleton", aUp.IsSingleton(), aDown.IsSingleton()},
		} {
			if p.up != p.down {
				t.Fatalf("%s: wide path %v != narrow path %v (a=%v b=%v shift=%d)",
					p.tag, p.up, p.down, aUp, bUp, shift)
			}
		}
		if aUp.Len() != aDown.Len() {
			t.Fatalf("len: %d != %d", aUp.Len(), aDown.Len())
		}

		// Subset enumeration must visit the same subsets in the same
		// order through both paths. Cap the mask size to keep 2^k sane.
		mask := aUp
		for mask.Len() > 12 {
			mask = mask.MinusMin()
		}
		maskDown := shiftDown(mask)
		upSubs, downSubs := Subsets(mask), Subsets(maskDown)
		if len(upSubs) != len(downSubs) {
			t.Fatalf("subset enumeration: %d vs %d subsets of %v", len(upSubs), len(downSubs), mask)
		}
		for i := range upSubs {
			if got := shiftDown(upSubs[i]); !got.Equal(downSubs[i]) {
				t.Fatalf("subset enumeration diverges at %d: %v vs %v", i, upSubs[i], downSubs[i])
			}
		}
	})
}
