package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// fromBits builds a Set from a word-0 bit pattern. Tests use it where
// they previously converted raw integers to Set.
func fromBits(raw uint64) Set {
	var s Set
	for e := 0; e < 64; e++ {
		if raw&(1<<uint(e)) != 0 {
			s = s.Add(e)
		}
	}
	return s
}

func TestNewAndMembership(t *testing.T) {
	s := New(0, 3, 5)
	for e := 0; e < MaxElems; e++ {
		want := e == 0 || e == 3 || e == 5
		if got := s.Has(e); got != want {
			t.Errorf("Has(%d) = %v, want %v", e, got, want)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestHasOutOfRange(t *testing.T) {
	s := New(0, 63)
	if s.Has(-1) {
		t.Error("Has(-1) must be false")
	}
	if s.Has(64) {
		t.Error("Has(64) must be false")
	}
	if !s.Has(63) {
		t.Error("Has(63) must be true")
	}
	if s.Has(MaxElems) {
		t.Error("Has(MaxElems) must be false")
	}
}

func TestSingletonPanics(t *testing.T) {
	for _, e := range []int{-1, MaxElems, MaxElems + 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Single(%d) did not panic", e)
				}
			}()
			Single(e)
		}()
	}
}

func TestRange(t *testing.T) {
	if got := Range(2, 5); !got.Equal(New(2, 3, 4)) {
		t.Errorf("Range(2,5) = %v", got)
	}
	if got := Range(3, 3); !got.IsEmpty() {
		t.Errorf("Range(3,3) = %v, want empty", got)
	}
	if got := Full(4); !got.Equal(New(0, 1, 2, 3)) {
		t.Errorf("Full(4) = %v", got)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(0, 1, 2)
	b := New(2, 3)
	if got := a.Union(b); !got.Equal(New(0, 1, 2, 3)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(2)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(New(0, 1)) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Overlaps(b) || a.Disjoint(b) {
		t.Error("a and b share element 2")
	}
	if !New(0, 1).SubsetOf(a) {
		t.Error("SubsetOf failed")
	}
	if !New(0, 1).ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Error("ProperSubsetOf failed")
	}
}

func TestMinMaxRepresentative(t *testing.T) {
	s := New(3, 5, 9)
	if s.Min() != 3 {
		t.Errorf("Min = %d", s.Min())
	}
	if s.Max() != 9 {
		t.Errorf("Max = %d", s.Max())
	}
	if !s.MinSet().Equal(New(3)) {
		t.Errorf("MinSet = %v", s.MinSet())
	}
	if !s.MinusMin().Equal(New(5, 9)) {
		t.Errorf("MinusMin = %v", s.MinusMin())
	}
	if !Empty.MinSet().IsEmpty() {
		t.Error("MinSet(∅) must be ∅ per §2.3")
	}
	if !Empty.MinusMin().IsEmpty() {
		t.Error("MinusMin(∅) must be ∅")
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min(∅) did not panic")
		}
	}()
	Empty.Min()
}

func TestBelow(t *testing.T) {
	// B_v = {w | w ≤ v} is the forbidden prefix used by Solve.
	if got := Below(0); !got.IsEmpty() {
		t.Errorf("Below(0) = %v", got)
	}
	if got := Below(3); !got.Equal(New(0, 1, 2)) {
		t.Errorf("Below(3) = %v", got)
	}
	if got := BelowEq(3); !got.Equal(New(0, 1, 2, 3)) {
		t.Errorf("BelowEq(3) = %v", got)
	}
}

func TestElemsAndForEach(t *testing.T) {
	s := New(7, 1, 4)
	want := []int{1, 4, 7}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	var seen []int
	s.ForEach(func(e int) { seen = append(seen, e) })
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 4 || seen[2] != 7 {
		t.Errorf("ForEach order = %v", seen)
	}
}

func TestNextElem(t *testing.T) {
	s := New(2, 5, 63)
	cases := []struct{ from, want int }{
		{0, 2}, {2, 2}, {3, 5}, {6, 63}, {63, 63}, {64, -1}, {-5, 2},
	}
	for _, c := range cases {
		if got := s.NextElem(c.from); got != c.want {
			t.Errorf("NextElem(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if Empty.NextElem(0) != -1 {
		t.Error("NextElem on empty set")
	}
}

func TestString(t *testing.T) {
	if got := New(0, 2).String(); got != "{R0,R2}" {
		t.Errorf("String = %q", got)
	}
	if got := Empty.String(); got != "{}" {
		t.Errorf("String(∅) = %q", got)
	}
}

// TestSubsetsExhaustive checks the Vance–Maier enumeration against an
// explicit powerset construction.
func TestSubsetsExhaustive(t *testing.T) {
	m := New(1, 3, 4, 6)
	got := Subsets(m)
	if len(got) != 15 {
		t.Fatalf("expected 15 non-empty subsets, got %d", len(got))
	}
	// Ascending numeric order, all distinct, all subsets of m, last is m.
	for i, s := range got {
		if !s.SubsetOf(m) || s.IsEmpty() {
			t.Errorf("subset %v invalid", s)
		}
		if i > 0 && !got[i-1].Less(s) {
			t.Errorf("not ascending at %d: %v >= %v", i, got[i-1], s)
		}
	}
	if !got[len(got)-1].Equal(m) {
		t.Errorf("last subset %v, want %v", got[len(got)-1], m)
	}
}

func TestProperSubsets(t *testing.T) {
	m := New(0, 2)
	got := ProperSubsets(m)
	if len(got) != 2 {
		t.Fatalf("ProperSubsets = %v", got)
	}
	for _, s := range got {
		if s.Equal(m) {
			t.Errorf("proper subsets must exclude m")
		}
	}
	if ProperSubsets(Empty) != nil {
		t.Error("ProperSubsets(∅) must be nil")
	}
	if len(ProperSubsets(New(5))) != 0 {
		t.Error("singleton has no proper non-empty subsets")
	}
}

// Property: Vance–Maier subset enumeration yields exactly 2^|m| - 1
// distinct non-empty subsets of m for arbitrary masks.
func TestSubsetEnumerationProperty(t *testing.T) {
	f := func(raw uint16) bool {
		m := fromBits(uint64(raw))
		if m.IsEmpty() {
			return len(Subsets(m)) == 0
		}
		subs := Subsets(m)
		if len(subs) != 1<<uint(m.Len())-1 {
			return false
		}
		seen := map[string]bool{}
		for _, s := range subs {
			if seen[s.Key()] || !s.SubsetOf(m) || s.IsEmpty() {
				return false
			}
			seen[s.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: set algebra satisfies De Morgan-ish laws within a universe.
func TestAlgebraProperties(t *testing.T) {
	f := func(a, b, u uint32) bool {
		U := fromBits(uint64(u))
		A, B := fromBits(uint64(a)).Intersect(U), fromBits(uint64(b)).Intersect(U)
		if A.Union(B).Len() != A.Len()+B.Len()-A.Intersect(B).Len() {
			return false // inclusion-exclusion
		}
		if !A.Minus(B).Disjoint(B) {
			return false
		}
		if !A.Minus(B).Union(A.Intersect(B)).Equal(A) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: MinSet/MinusMin partition the set.
func TestMinPartitionProperty(t *testing.T) {
	f := func(raw uint64) bool {
		s := fromBits(raw)
		if s.IsEmpty() {
			return s.MinSet().IsEmpty() && s.MinusMin().IsEmpty()
		}
		return s.MinSet().Union(s.MinusMin()).Equal(s) &&
			s.MinSet().Disjoint(s.MinusMin()) &&
			s.MinSet().IsSingleton() &&
			s.MinSet().Min() == s.Min()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: Elems is sorted ascending and round-trips through New.
func TestElemsRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		s := fromBits(raw)
		es := s.Elems()
		if !sort.IntsAreSorted(es) {
			return false
		}
		return New(es...).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIsSingleton(t *testing.T) {
	if Empty.IsSingleton() {
		t.Error("∅ is not a singleton")
	}
	for e := 0; e < MaxElems; e += 7 {
		if !Single(e).IsSingleton() {
			t.Errorf("Single(%d) must be a singleton", e)
		}
	}
	if New(1, 2).IsSingleton() {
		t.Error("{1,2} is not a singleton")
	}
	if New(1, 99).IsSingleton() {
		t.Error("{1,99} is not a singleton")
	}
	if New(70, 99).IsSingleton() {
		t.Error("{70,99} is not a singleton")
	}
}

func BenchmarkSubsetEnumeration(b *testing.B) {
	m := Full(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var count int
		for n := Empty.NextSubset(m); ; n = n.NextSubset(m) {
			count++
			if n.Equal(m) {
				break
			}
		}
		if count != 1<<16-1 {
			b.Fatal("bad count")
		}
	}
}

func BenchmarkSetOps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]Set, 1024)
	for i := range xs {
		xs[i] = fromBits(rng.Uint64())
	}
	b.ResetTimer()
	var acc Set
	for i := 0; i < b.N; i++ {
		s := xs[i%len(xs)]
		acc = acc.Xor(s.Union(acc).Intersect(s).MinSet())
	}
	_ = acc
}

// TestSubsetsOfMatchesSubsets: the iterator must yield exactly the
// Vance–Maier sequence Subsets returns, for every mask over a small
// universe and for random sparse masks over the full width.
func TestSubsetsOfMatchesSubsets(t *testing.T) {
	check := func(m Set) {
		want := Subsets(m)
		var got []Set
		for s := range m.SubsetsOf() {
			got = append(got, s)
		}
		if len(got) != len(want) {
			t.Fatalf("mask %v: %d subsets, want %d", m, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("mask %v: subset %d = %v, want %v", m, i, got[i], want[i])
			}
		}
	}
	for m := uint64(0); m < 1<<10; m++ {
		check(fromBits(m))
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		// Sparse masks exercise the non-contiguous wrap-around carries.
		check(fromBits(rng.Uint64() & rng.Uint64() & rng.Uint64()))
	}
}

// TestSubsetsOfProperties checks the iterator invariants directly:
// count 2^|m|−1, every yield a non-empty subset of m, strictly
// ascending numeric order, m itself last.
func TestSubsetsOfProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		m := fromBits(rng.Uint64()).Intersect(Full(14)) // bounded popcount keeps 2^|m| small
		count := 0
		prev := Empty
		last := Empty
		for s := range m.SubsetsOf() {
			count++
			if s.IsEmpty() {
				t.Fatalf("mask %v yielded the empty set", m)
			}
			if !s.SubsetOf(m) {
				t.Fatalf("mask %v yielded non-subset %v", m, s)
			}
			if count > 1 && !prev.Less(s) {
				t.Fatalf("mask %v: order not ascending (%v after %v)", m, s, prev)
			}
			prev, last = s, s
		}
		if want := 1<<uint(m.Len()) - 1; count != want {
			t.Fatalf("mask %v: %d subsets, want %d", m, count, want)
		}
		if !m.IsEmpty() && !last.Equal(m) {
			t.Fatalf("mask %v: last subset %v, want the mask itself", m, last)
		}
	}
}

// TestSubsetsOfEarlyBreak: breaking out of the range must stop the
// iteration cleanly (this is what the budget-tripped solver loops do).
func TestSubsetsOfEarlyBreak(t *testing.T) {
	m := Full(16)
	n := 0
	for range m.SubsetsOf() {
		n++
		if n == 10 {
			break
		}
	}
	if n != 10 {
		t.Fatalf("saw %d subsets after break at 10", n)
	}
	for range Empty.SubsetsOf() {
		t.Fatal("empty mask must yield nothing")
	}
}

// BenchmarkSubsetsOf measures the iterator against the hand-rolled loop
// it replaced (BenchmarkSubsetEnumeration above).
func BenchmarkSubsetsOf(b *testing.B) {
	m := Full(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var count int
		for range m.SubsetsOf() {
			count++
		}
		if count != 1<<16-1 {
			b.Fatal("bad count")
		}
	}
}
