// Package bitset implements fixed-width sets of relation indices.
//
// Join enumeration algorithms manipulate sets of relations at very high
// frequency: membership tests, unions, neighborhood masks, and — most
// importantly — enumeration of all subsets of a set. Following Vance and
// Maier ("Rapid bushy join-order optimization with Cartesian products",
// SIGMOD 1996), a set of up to 64 relations is represented as a single
// uint64 so that all of these operations are a handful of machine
// instructions. The DPhyp paper (Moerkotte & Neumann, SIGMOD 2008)
// explicitly builds on this representation: "Since we want to use the fast
// subset enumeration procedure introduced by Vance and Maier, we must have
// a single bit representing a hypernode" (§2.3).
//
// Sets are values; all operations return new sets. The zero value is the
// empty set.
package bitset

import (
	"fmt"
	"iter"
	"math/bits"
	"strconv"
	"strings"
)

// MaxElems is the largest number of distinct elements a Set can hold.
// Element indices must lie in [0, MaxElems).
const MaxElems = 64

// Set is a set of small non-negative integers (relation indices) packed
// into a machine word. Bit i is set iff element i is a member.
type Set uint64

// Empty is the empty set.
const Empty Set = 0

// New returns a set containing the given elements.
// It panics if any element is outside [0, MaxElems).
func New(elems ...int) Set {
	var s Set
	for _, e := range elems {
		s = s.Add(e)
	}
	return s
}

// Single returns the singleton set {e}.
func Single(e int) Set {
	if e < 0 || e >= MaxElems {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", e, MaxElems))
	}
	return Set(1) << uint(e)
}

// Range returns the set {lo, lo+1, ..., hi-1}. Range(a, a) is empty.
func Range(lo, hi int) Set {
	if lo < 0 || hi > MaxElems || lo > hi {
		panic(fmt.Sprintf("bitset: invalid range [%d,%d)", lo, hi))
	}
	var s Set
	for e := lo; e < hi; e++ {
		s |= Single(e)
	}
	return s
}

// Full returns the set {0, 1, ..., n-1}.
func Full(n int) Set { return Range(0, n) }

// Add returns s ∪ {e}.
func (s Set) Add(e int) Set { return s | Single(e) }

// Remove returns s ∖ {e}.
func (s Set) Remove(e int) Set { return s &^ Single(e) }

// Has reports whether e ∈ s.
func (s Set) Has(e int) bool {
	return e >= 0 && e < MaxElems && s&(Set(1)<<uint(e)) != 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s ∖ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// IsEmpty reports whether s = ∅.
func (s Set) IsEmpty() bool { return s == 0 }

// Len returns |s|.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s ⊂ t (subset and not equal).
func (s Set) ProperSubsetOf(t Set) bool { return s&^t == 0 && s != t }

// Less reports whether s precedes t in the canonical total order on
// sets: numeric order of the packed word, which enumeration relies on
// (Vance–Maier subset enumeration yields subsets in exactly this
// order). All code outside this package must compare sets with Less /
// == rather than the raw word so that the ordering survives a wider
// representation (ROADMAP: >64 relations).
func (s Set) Less(t Set) bool { return s < t }

// NextSameSize returns the successor of s in Less order among sets of
// the same cardinality (Gosper's hack). Iterating from Full(k) yields
// every k-subset in canonical order; the result exceeds any universe
// that has been exhausted, which callers detect with Less. It panics
// on the empty set (the hack divides by the lowest set bit).
func (s Set) NextSameSize() Set {
	if s == 0 {
		panic("bitset: NextSameSize on empty set")
	}
	c := s & -s
	r := s + c
	return r | ((s^r)>>2)>>uint(bits.TrailingZeros64(uint64(c)))
}

// AppendHex appends the set's canonical hexadecimal form to b and
// returns the extended slice, for fingerprint/cache-key construction
// without exposing the word width at call sites.
func (s Set) AppendHex(b []byte) []byte {
	return strconv.AppendUint(b, uint64(s), 16)
}

// Disjoint reports whether s ∩ t = ∅.
func (s Set) Disjoint(t Set) bool { return s&t == 0 }

// Overlaps reports whether s ∩ t ≠ ∅.
func (s Set) Overlaps(t Set) bool { return s&t != 0 }

// IsSingleton reports whether |s| = 1.
func (s Set) IsSingleton() bool { return s != 0 && s&(s-1) == 0 }

// Min returns the smallest element of s. This is the representative node
// min(S) used throughout the DPhyp paper (§2.3). It panics on the empty
// set; use MinSet for the set-valued variant that maps ∅ to ∅.
func (s Set) Min() int {
	if s == 0 {
		panic("bitset: Min of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// MinSet returns min(S) as a set: the singleton holding the smallest
// element, or the empty set if s is empty (Definition of min in §2.3).
func (s Set) MinSet() Set {
	return s & -s // lowest set bit
}

// MinusMin returns s ∖ min(s): every element except the representative.
// This is the min̄(S) = S ∖ min(S) of §2.3. For the empty set it returns
// the empty set.
func (s Set) MinusMin() Set {
	return s & (s - 1) // clear lowest set bit
}

// Max returns the largest element of s. It panics on the empty set.
func (s Set) Max() int {
	if s == 0 {
		panic("bitset: Max of empty set")
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// Below returns the set {w | w < e}: all elements strictly ordered before
// e. Combined with Add(e) this yields the B_v = {w | w ≤ v} sets used by
// Solve and EmitCsg for duplicate avoidance.
func Below(e int) Set {
	if e < 0 || e >= MaxElems {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", e, MaxElems))
	}
	return Set(1)<<uint(e) - 1
}

// BelowEq returns B_e = {w | w ≤ e}.
func BelowEq(e int) Set { return Below(e) | Single(e) }

// Elems returns the elements of s in ascending order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for t := s; t != 0; t &= t - 1 {
		out = append(out, bits.TrailingZeros64(uint64(t)))
	}
	return out
}

// ForEach calls f for every element of s in ascending order.
func (s Set) ForEach(f func(e int)) {
	for t := s; t != 0; t &= t - 1 {
		f(bits.TrailingZeros64(uint64(t)))
	}
}

// NextElem returns the smallest element of s that is ≥ from, or -1 if
// there is none. It enables allocation-free iteration:
//
//	for e := s.NextElem(0); e >= 0; e = s.NextElem(e + 1) { ... }
func (s Set) NextElem(from int) int {
	if from >= MaxElems {
		return -1
	}
	if from < 0 {
		from = 0
	}
	t := s &^ (Set(1)<<uint(from) - 1)
	if t == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(t))
}

// String renders the set as {R0,R3,R5} style for debugging.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(e int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "R%d", e)
	})
	b.WriteByte('}')
	return b.String()
}

// NextSubset returns the next non-empty subset of m after s in the
// Vance–Maier enumeration order, which visits all non-empty subsets of m
// in increasing numeric value of their bit patterns, ending with m itself.
// The iteration protocol is:
//
//	for n := Empty.NextSubset(m); ; n = n.NextSubset(m) {
//	    ...use n...
//	    if n == m { break }
//	}
//
// Starting from the empty set it yields the first (numerically smallest)
// non-empty subset. After s == m it wraps to the empty set.
func (s Set) NextSubset(m Set) Set {
	return (s - m) & m
}

// SubsetsOf returns an iterator over all non-empty subsets of m in
// Vance–Maier order (ascending numeric bit-pattern value, ending with m
// itself). It packages the (s − m) & m enumeration step so that the
// enumeration loops of DPsub and DPccp read as plain range statements
// instead of hand-rolled wrap-around loops:
//
//	for s := range m.SubsetsOf() { ... }
//
// The iterator is allocation-free and supports early break. An empty m
// yields nothing.
func (m Set) SubsetsOf() iter.Seq[Set] {
	//nolint:hotpathalloc // one iterator closure per enumeration loop, amortized over its 2^|m| yields
	return func(yield func(Set) bool) {
		if m == 0 {
			return
		}
		for s := Empty.NextSubset(m); ; s = s.NextSubset(m) {
			if !yield(s) || s == m {
				return
			}
		}
	}
}

// Subsets returns all non-empty subsets of m in Vance–Maier order.
// Intended for tests and small sets; hot paths should use NextSubset.
func Subsets(m Set) []Set {
	if m == 0 {
		return nil
	}
	out := make([]Set, 0, 1<<uint(m.Len())-1)
	for n := Empty.NextSubset(m); ; n = n.NextSubset(m) {
		out = append(out, n)
		if n == m {
			break
		}
	}
	return out
}

// ProperSubsets returns all non-empty proper subsets of m (excludes m).
func ProperSubsets(m Set) []Set {
	subs := Subsets(m)
	if len(subs) == 0 {
		return nil
	}
	return subs[:len(subs)-1] // m is always last in Vance–Maier order
}
