// Package bitset implements sets of relation indices.
//
// Join enumeration algorithms manipulate sets of relations at very high
// frequency: membership tests, unions, neighborhood masks, and — most
// importantly — enumeration of all subsets of a set. Following Vance and
// Maier ("Rapid bushy join-order optimization with Cartesian products",
// SIGMOD 1996), a set of up to 64 relations is represented as a single
// uint64 so that all of these operations are a handful of machine
// instructions. The DPhyp paper (Moerkotte & Neumann, SIGMOD 2008)
// explicitly builds on this representation: "Since we want to use the fast
// subset enumeration procedure introduced by Vance and Maier, we must have
// a single bit representing a hypernode" (§2.3).
//
// This package breaks the 64-relation ceiling that representation
// implies while keeping the Vance–Maier speed where it matters: a Set is
// a single machine word plus an extension tail that stays nil for every
// set whose elements are all below 64. The enumeration loops of the
// exact solvers only ever see sub-64-relation subproblems (the
// large-query tier compresses bigger graphs first), so their hot paths
// compile down to the same handful of instructions as before; sets with
// elements ≥ 64 transparently grow a []uint64 tail and every operation —
// including Gosper same-size stepping and Vance–Maier subset
// enumeration — works across words.
//
// Sets are values; all operations return new sets, and a Set's words are
// never mutated after construction, so Sets may be freely shared across
// goroutines. The zero value is the empty set. The representation is
// canonical (the tail is nil unless the set has an element ≥ 64, and
// never ends in a zero word), which makes Equal a plain word comparison.
// Set is deliberately NOT comparable with ==: compare with Equal, order
// with Less, and key maps with Key. No code outside this package may
// assume the word count or index words directly (the bitsetwidth
// analyzer guards the operator half of that invariant).
package bitset

import (
	"fmt"
	"iter"
	"math/bits"
	"strconv"
	"strings"
)

// MaxElems is the largest number of distinct elements a Set can hold.
// Element indices must lie in [0, MaxElems). The bound exists to catch
// runaway indices, not to size anything: sets below 64 elements cost one
// machine word, larger ones one word per started 64 elements.
const MaxElems = 1024

// wordBits is the number of elements per word.
const wordBits = 64

// Set is a set of small non-negative integers (relation indices). Bit i
// of the packed words is set iff element i is a member: lo holds
// elements 0..63, hi[w] holds elements 64(w+1)..64(w+2)-1.
//
// Invariant (canonical form): hi is nil when every element is below 64,
// and hi never ends in a zero word. Every exported operation preserves
// the invariant, so sets representing the same elements are wordwise
// identical and Equal needs no normalization. The hi tail is immutable
// once attached to a Set; operations allocate fresh tails, never write
// through shared ones.
type Set struct {
	lo uint64
	hi []uint64
}

// Empty is the empty set.
var Empty Set

// trim drops trailing zero words so the representation stays canonical.
// The argument slice is owned by the caller (freshly allocated).
func trim(hi []uint64) []uint64 {
	n := len(hi)
	for n > 0 && hi[n-1] == 0 {
		n--
	}
	if n == 0 {
		return nil
	}
	return hi[:n]
}

// wide builds a canonical Set from a low word and a caller-owned tail.
func wide(lo uint64, hi []uint64) Set {
	return Set{lo: lo, hi: trim(hi)}
}

// word returns the w-th 64-bit word of s (word 0 is lo).
func (s Set) word(w int) uint64 {
	if w == 0 {
		return s.lo
	}
	if w-1 < len(s.hi) {
		return s.hi[w-1]
	}
	return 0
}

// words returns the number of words the canonical representation uses.
func (s Set) words() int { return 1 + len(s.hi) }

// New returns a set containing the given elements.
// It panics if any element is outside [0, MaxElems).
func New(elems ...int) Set {
	var s Set
	for _, e := range elems {
		s = s.Add(e)
	}
	return s
}

// Single returns the singleton set {e}.
func Single(e int) Set {
	if e < 0 || e >= MaxElems {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", e, MaxElems))
	}
	if e < wordBits {
		return Set{lo: 1 << uint(e)}
	}
	return singleWide(e)
}

// singleWide builds the singleton {e} for e ≥ 64.
//
//dp:coldpath only sets with elements ≥ 64 allocate a tail; the ≤64-relation hot path never enters the wide branches
func singleWide(e int) Set {
	hi := make([]uint64, e/wordBits)
	hi[e/wordBits-1] = 1 << uint(e%wordBits)
	return Set{hi: hi}
}

// Range returns the set {lo, lo+1, ..., hi-1}. Range(a, a) is empty.
func Range(lo, hi int) Set {
	if lo < 0 || hi > MaxElems || lo > hi {
		panic(fmt.Sprintf("bitset: invalid range [%d,%d)", lo, hi))
	}
	var s Set
	for e := lo; e < hi; e++ {
		s = s.Add(e)
	}
	return s
}

// Full returns the set {0, 1, ..., n-1}.
func Full(n int) Set { return Range(0, n) }

// Add returns s ∪ {e}.
func (s Set) Add(e int) Set {
	if e >= 0 && e < wordBits && s.hi == nil {
		return Set{lo: s.lo | 1<<uint(e)}
	}
	return s.Union(Single(e))
}

// Remove returns s ∖ {e}.
func (s Set) Remove(e int) Set {
	if e >= 0 && e < wordBits && s.hi == nil {
		return Set{lo: s.lo &^ (1 << uint(e))}
	}
	return s.Minus(Single(e))
}

// Has reports whether e ∈ s.
func (s Set) Has(e int) bool {
	if e < 0 || e >= MaxElems {
		return false
	}
	if e < wordBits {
		return s.lo&(1<<uint(e)) != 0
	}
	w := e/wordBits - 1
	return w < len(s.hi) && s.hi[w]&(1<<uint(e%wordBits)) != 0
}

// Equal reports whether s and t contain the same elements. Set is not
// comparable with ==; this is the equality test.
//
//dp:hotpath
func (s Set) Equal(t Set) bool {
	if s.hi == nil && t.hi == nil {
		return s.lo == t.lo
	}
	return s.equalWide(t)
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) equalWide(t Set) bool {
	if s.lo != t.lo || len(s.hi) != len(t.hi) {
		return false
	}
	for i, w := range s.hi {
		if t.hi[i] != w {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
//
//dp:hotpath
func (s Set) Union(t Set) Set {
	if s.hi == nil && t.hi == nil {
		return Set{lo: s.lo | t.lo}
	}
	return s.unionWide(t)
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) unionWide(t Set) Set {
	if len(t.hi) > len(s.hi) {
		s, t = t, s
	}
	hi := make([]uint64, len(s.hi))
	copy(hi, s.hi)
	for i, w := range t.hi {
		hi[i] |= w
	}
	// The longer canonical tail keeps its non-zero top word: no trim.
	return Set{lo: s.lo | t.lo, hi: hi}
}

// Intersect returns s ∩ t.
//
//dp:hotpath
func (s Set) Intersect(t Set) Set {
	if s.hi == nil && t.hi == nil {
		return Set{lo: s.lo & t.lo}
	}
	return s.intersectWide(t)
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) intersectWide(t Set) Set {
	n := min(len(s.hi), len(t.hi))
	if n == 0 {
		return Set{lo: s.lo & t.lo}
	}
	hi := make([]uint64, n)
	for i := range hi {
		hi[i] = s.hi[i] & t.hi[i]
	}
	return wide(s.lo&t.lo, hi)
}

// Minus returns s ∖ t.
//
//dp:hotpath
func (s Set) Minus(t Set) Set {
	if s.hi == nil && t.hi == nil {
		return Set{lo: s.lo &^ t.lo}
	}
	return s.minusWide(t)
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) minusWide(t Set) Set {
	if len(s.hi) == 0 {
		return Set{lo: s.lo &^ t.lo}
	}
	hi := make([]uint64, len(s.hi))
	for i, w := range s.hi {
		if i < len(t.hi) {
			w &^= t.hi[i]
		}
		hi[i] = w
	}
	return wide(s.lo&^t.lo, hi)
}

// IsEmpty reports whether s = ∅. Canonical form makes this a single
// word test: a set with a tail always has an element ≥ 64.
//
//dp:hotpath
func (s Set) IsEmpty() bool { return s.lo == 0 && s.hi == nil }

// Len returns |s|.
func (s Set) Len() int {
	n := bits.OnesCount64(s.lo)
	for _, w := range s.hi {
		n += bits.OnesCount64(w)
	}
	return n
}

// SubsetOf reports whether s ⊆ t.
//
//dp:hotpath
func (s Set) SubsetOf(t Set) bool {
	if s.hi == nil {
		return s.lo&^t.lo == 0
	}
	return s.subsetOfWide(t)
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) subsetOfWide(t Set) bool {
	if s.lo&^t.lo != 0 || len(s.hi) > len(t.hi) {
		return false
	}
	for i, w := range s.hi {
		if w&^t.hi[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊂ t (subset and not equal).
func (s Set) ProperSubsetOf(t Set) bool { return s.SubsetOf(t) && !s.Equal(t) }

// Less reports whether s precedes t in the canonical total order on
// sets: numeric order of the packed words (the order Vance–Maier subset
// enumeration yields subsets in). All code outside this package must
// compare sets with Less / Equal rather than raw words so that the
// ordering is independent of the representation width.
//
//dp:hotpath
func (s Set) Less(t Set) bool {
	if s.hi == nil && t.hi == nil {
		return s.lo < t.lo
	}
	return s.lessWide(t)
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) lessWide(t Set) bool {
	// Canonical form: a longer tail means a larger top element, hence a
	// larger packed value.
	if len(s.hi) != len(t.hi) {
		return len(s.hi) < len(t.hi)
	}
	for i := len(s.hi) - 1; i >= 0; i-- {
		if s.hi[i] != t.hi[i] {
			return s.hi[i] < t.hi[i]
		}
	}
	return s.lo < t.lo
}

// Disjoint reports whether s ∩ t = ∅.
//
//dp:hotpath
func (s Set) Disjoint(t Set) bool { return !s.Overlaps(t) }

// Overlaps reports whether s ∩ t ≠ ∅.
//
//dp:hotpath
func (s Set) Overlaps(t Set) bool {
	if s.lo&t.lo != 0 {
		return true
	}
	if s.hi == nil || t.hi == nil {
		return false
	}
	return s.overlapsWide(t)
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) overlapsWide(t Set) bool {
	n := min(len(s.hi), len(t.hi))
	for i := 0; i < n; i++ {
		if s.hi[i]&t.hi[i] != 0 {
			return true
		}
	}
	return false
}

// IsSingleton reports whether |s| = 1.
func (s Set) IsSingleton() bool {
	if s.hi == nil {
		return s.lo != 0 && s.lo&(s.lo-1) == 0
	}
	if s.lo != 0 {
		return false
	}
	for i, w := range s.hi {
		if w != 0 {
			return i == len(s.hi)-1 && w&(w-1) == 0
		}
	}
	return false
}

// Min returns the smallest element of s. This is the representative node
// min(S) used throughout the DPhyp paper (§2.3). It panics on the empty
// set; use MinSet for the set-valued variant that maps ∅ to ∅.
func (s Set) Min() int {
	if s.lo != 0 {
		return bits.TrailingZeros64(s.lo)
	}
	for i, w := range s.hi {
		if w != 0 {
			return (i+1)*wordBits + bits.TrailingZeros64(w)
		}
	}
	panic("bitset: Min of empty set")
}

// MinSet returns min(S) as a set: the singleton holding the smallest
// element, or the empty set if s is empty (Definition of min in §2.3).
//
//dp:hotpath
func (s Set) MinSet() Set {
	if s.lo != 0 || s.hi == nil {
		return Set{lo: s.lo & -s.lo}
	}
	return s.minSetWide()
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) minSetWide() Set {
	for i, w := range s.hi {
		if w != 0 {
			hi := make([]uint64, i+1)
			hi[i] = w & -w
			return Set{hi: hi}
		}
	}
	return Empty
}

// MinusMin returns s ∖ min(s): every element except the representative.
// This is the min̄(S) = S ∖ min(S) of §2.3. For the empty set it returns
// the empty set.
//
//dp:hotpath
func (s Set) MinusMin() Set {
	if s.hi == nil {
		return Set{lo: s.lo & (s.lo - 1)}
	}
	return s.minusMinWide()
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) minusMinWide() Set {
	if s.lo != 0 {
		hi := make([]uint64, len(s.hi))
		copy(hi, s.hi)
		return Set{lo: s.lo & (s.lo - 1), hi: hi}
	}
	hi := make([]uint64, len(s.hi))
	copy(hi, s.hi)
	for i, w := range hi {
		if w != 0 {
			hi[i] = w & (w - 1)
			break
		}
	}
	return wide(0, hi)
}

// Max returns the largest element of s. It panics on the empty set.
func (s Set) Max() int {
	if s.hi != nil {
		// Canonical: the last word is non-zero.
		w := len(s.hi) - 1
		return (w+1)*wordBits + 63 - bits.LeadingZeros64(s.hi[w])
	}
	if s.lo == 0 {
		panic("bitset: Max of empty set")
	}
	return 63 - bits.LeadingZeros64(s.lo)
}

// Below returns the set {w | w < e}: all elements strictly ordered before
// e. Combined with Add(e) this yields the B_v = {w | w ≤ v} sets used by
// Solve and EmitCsg for duplicate avoidance.
func Below(e int) Set {
	if e < 0 || e >= MaxElems {
		panic(fmt.Sprintf("bitset: element %d out of range [0,%d)", e, MaxElems))
	}
	if e < wordBits {
		return Set{lo: 1<<uint(e) - 1}
	}
	return belowWide(e)
}

//dp:coldpath only elements ≥ 64 build a tail; the ≤64-relation hot path never enters the wide branches
func belowWide(e int) Set {
	hi := make([]uint64, e/wordBits)
	for i := 0; i < e/wordBits-1; i++ {
		hi[i] = ^uint64(0)
	}
	hi[e/wordBits-1] = 1<<uint(e%wordBits) - 1
	return wide(^uint64(0), hi)
}

// BelowEq returns B_e = {w | w ≤ e}.
func BelowEq(e int) Set { return Below(e).Add(e) }

// Elems returns the elements of s in ascending order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(e int) { out = append(out, e) })
	return out
}

// ForEach calls f for every element of s in ascending order.
func (s Set) ForEach(f func(e int)) {
	for t := s.lo; t != 0; t &= t - 1 {
		f(bits.TrailingZeros64(t))
	}
	for i, w := range s.hi {
		for t := w; t != 0; t &= t - 1 {
			f((i+1)*wordBits + bits.TrailingZeros64(t))
		}
	}
}

// NextElem returns the smallest element of s that is ≥ from, or -1 if
// there is none. It enables allocation-free iteration:
//
//	for e := s.NextElem(0); e >= 0; e = s.NextElem(e + 1) { ... }
//
//dp:hotpath
func (s Set) NextElem(from int) int {
	if from < 0 {
		from = 0
	}
	if from < wordBits {
		if t := s.lo &^ (1<<uint(from) - 1); t != 0 {
			return bits.TrailingZeros64(t)
		}
		from = wordBits
	}
	if s.hi == nil {
		return -1
	}
	return s.nextElemWide(from)
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) nextElemWide(from int) int {
	if from >= MaxElems {
		return -1
	}
	w := from/wordBits - 1
	if w < len(s.hi) {
		if t := s.hi[w] &^ (1<<uint(from%wordBits) - 1); t != 0 {
			return (w+1)*wordBits + bits.TrailingZeros64(t)
		}
	}
	for w++; w < len(s.hi); w++ {
		if s.hi[w] != 0 {
			return (w+1)*wordBits + bits.TrailingZeros64(s.hi[w])
		}
	}
	return -1
}

// NextSameSize returns the successor of s in Less order among sets of
// the same cardinality (Gosper's hack). Iterating from Full(k) yields
// every k-subset in canonical order; the result exceeds any universe
// that has been exhausted, which callers detect with Less. It panics
// on the empty set (the hack divides by the lowest set bit).
//
//dp:hotpath
func (s Set) NextSameSize() Set {
	if s.hi == nil {
		if s.lo == 0 {
			panic("bitset: NextSameSize on empty set")
		}
		c := s.lo & -s.lo
		r := s.lo + c
		if r != 0 {
			return Set{lo: r | ((s.lo^r)>>2)>>uint(bits.TrailingZeros64(c))}
		}
		// The lowest block of ones reaches bit 63: the carry leaves the
		// word. Fall through to the multi-word stepper, which propagates
		// it into a fresh tail word.
	}
	return s.nextSameSizeWide()
}

// nextSameSizeWide is Gosper's hack across words: r = s + c (c the
// lowest set bit), then the shifted-down block of changed low ones is
// OR-ed back in. Each step is O(words).
//
//dp:coldpath only sets with elements ≥ 64 (or a carry out of word 0) reach the multi-word stepper; the ≤64-relation hot path never enters the wide branches
func (s Set) nextSameSizeWide() Set {
	if s.IsEmpty() {
		panic("bitset: NextSameSize on empty set")
	}
	low := s.Min()
	// r = s + (1 << low), rippling the carry across words.
	words := s.words()
	r := make([]uint64, words+1) // room for a carry into a new word
	for i := 0; i < words; i++ {
		r[i] = s.word(i)
	}
	carry := uint64(1) << uint(low%wordBits)
	for i := low / wordBits; carry != 0 && i < len(r); i++ {
		sum, c := bits.Add64(r[i], carry, 0)
		r[i], carry = sum, c
	}
	// The block of ones that carried out of s spans bits [low, top) where
	// top is the first position ≥ low that is now set in r... equivalently
	// (s ^ r) marks exactly the changed bits; the hack keeps
	// (changed >> (2 + low)) of them as the new low block.
	res := wide(r[0], r[1:])
	changed := s.Xor(res)
	return res.Union(changed.rsh(2 + low))
}

// Xor returns the symmetric difference s △ t. It is used by the
// multi-word Gosper stepper and exposed for completeness.
func (s Set) Xor(t Set) Set {
	if s.hi == nil && t.hi == nil {
		return Set{lo: s.lo ^ t.lo}
	}
	if len(t.hi) > len(s.hi) {
		s, t = t, s
	}
	hi := make([]uint64, len(s.hi))
	copy(hi, s.hi)
	for i, w := range t.hi {
		hi[i] ^= w
	}
	return wide(s.lo^t.lo, hi)
}

// rsh returns s with every element shifted down by n (elements below n
// are dropped).
func (s Set) rsh(n int) Set {
	if n == 0 {
		return s
	}
	if s.hi == nil {
		if n >= wordBits {
			return Empty
		}
		return Set{lo: s.lo >> uint(n)}
	}
	words := s.words()
	drop := n / wordBits
	sh := uint(n % wordBits)
	out := make([]uint64, words) // out[i] = word i of the result
	for i := 0; i+drop < words; i++ {
		w := s.word(i+drop) >> sh
		if sh != 0 && i+drop+1 < words {
			w |= s.word(i+drop+1) << (wordBits - sh)
		}
		out[i] = w
	}
	return wide(out[0], out[1:])
}

// NextSubset returns the next non-empty subset of m after s in the
// Vance–Maier enumeration order, which visits all non-empty subsets of m
// in increasing numeric value of their bit patterns, ending with m itself.
// The iteration protocol is:
//
//	for n := Empty.NextSubset(m); ; n = n.NextSubset(m) {
//	    ...use n...
//	    if n.Equal(m) { break }
//	}
//
// Starting from the empty set it yields the first (numerically smallest)
// non-empty subset. After s.Equal(m) it wraps to the empty set.
//
//dp:hotpath
func (s Set) NextSubset(m Set) Set {
	if s.hi == nil && m.hi == nil {
		return Set{lo: (s.lo - m.lo) & m.lo}
	}
	return s.nextSubsetWide(m)
}

// nextSubsetWide is the Vance–Maier step (s − m) & m with a multi-word
// borrow-rippling subtraction.
//
//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) nextSubsetWide(m Set) Set {
	words := m.words()
	if s.words() > words {
		panic("bitset: NextSubset state is not a subset of the mask")
	}
	out := make([]uint64, words)
	var borrow uint64
	for i := 0; i < words; i++ {
		d, b := bits.Sub64(s.word(i), m.word(i), borrow)
		out[i], borrow = d&m.word(i), b
	}
	return wide(out[0], out[1:])
}

// SubsetsOf returns an iterator over all non-empty subsets of m in
// Vance–Maier order (ascending numeric bit-pattern value, ending with m
// itself). It packages the (s − m) & m enumeration step so that the
// enumeration loops of DPsub and DPccp read as plain range statements
// instead of hand-rolled wrap-around loops:
//
//	for s := range m.SubsetsOf() { ... }
//
// The iterator is allocation-free on single-word sets and supports early
// break. An empty m yields nothing.
func (m Set) SubsetsOf() iter.Seq[Set] {
	//nolint:hotpathalloc // one iterator closure per enumeration loop, amortized over its 2^|m| yields
	return func(yield func(Set) bool) {
		if m.IsEmpty() {
			return
		}
		for s := Empty.NextSubset(m); ; s = s.NextSubset(m) {
			if !yield(s) || s.Equal(m) {
				return
			}
		}
	}
}

// Subsets returns all non-empty subsets of m in Vance–Maier order.
// Intended for tests and small sets; hot paths should use NextSubset.
func Subsets(m Set) []Set {
	if m.IsEmpty() {
		return nil
	}
	out := make([]Set, 0, 1<<uint(m.Len())-1)
	for n := Empty.NextSubset(m); ; n = n.NextSubset(m) {
		out = append(out, n)
		if n.Equal(m) {
			break
		}
	}
	return out
}

// ProperSubsets returns all non-empty proper subsets of m (excludes m).
func ProperSubsets(m Set) []Set {
	subs := Subsets(m)
	if len(subs) == 0 {
		return nil
	}
	return subs[:len(subs)-1] // m is always last in Vance–Maier order
}

// AppendHex appends the set's canonical hexadecimal form to b and
// returns the extended slice, for fingerprint/cache-key construction
// without exposing the word width at call sites. The form is the hex of
// the packed big-endian value with no leading zeros, so it is identical
// for equal sets regardless of how they were built, and matches the
// historical single-word encoding for sets below 64 elements.
func (s Set) AppendHex(b []byte) []byte {
	if s.hi == nil {
		return strconv.AppendUint(b, s.lo, 16)
	}
	// Canonical: top word non-zero, printed without padding; lower words
	// zero-padded to 16 digits.
	b = strconv.AppendUint(b, s.hi[len(s.hi)-1], 16)
	for i := len(s.hi) - 2; i >= 0; i-- {
		b = appendHexPadded(b, s.hi[i])
	}
	return appendHexPadded(b, s.lo)
}

func appendHexPadded(b []byte, w uint64) []byte {
	for sh := 60; sh >= 0; sh -= 4 {
		b = append(b, "0123456789abcdef"[w>>uint(sh)&0xf])
	}
	return b
}

// Key returns a canonical string key for s, for use as a Go map key
// (Set itself is not comparable). The encoding is private to this
// package; treat it as opaque bytes.
func (s Set) Key() string {
	if s.hi == nil {
		var b [8]byte
		for i := range b {
			b[i] = byte(s.lo >> (8 * i))
		}
		return string(b[:])
	}
	b := make([]byte, 8*s.words())
	for w := 0; w < s.words(); w++ {
		v := s.word(w)
		for i := 0; i < 8; i++ {
			b[8*w+i] = byte(v >> (8 * i))
		}
	}
	return string(b)
}

// fibMul is the 64-bit Fibonacci-hashing multiplier (2^64 divided by the
// golden ratio, rounded to odd). Relation-set keys are heavily clustered
// in their low bits — enumeration visits {R0}, {R0,R1}, {R0,R1,R2}, … —
// and multiplying by this constant spreads that low-bit entropy across
// the high bits, which open-addressing tables shift down to index slots.
const fibMul = 0x9E3779B97F4A7C15

// Hash returns a 64-bit hash of s whose high bits are well mixed, for
// open-addressing tables that index by hash >> shift (internal/memo).
// For single-word sets it is exactly the historical Fibonacci hash of
// the packed word, so the ≤64-relation memo slot sequence — and with it
// the hot-path probe behavior — is unchanged by the multi-word widening.
//
//dp:hotpath
func (s Set) Hash() uint64 {
	if s.hi == nil {
		return s.lo * fibMul
	}
	return s.hashWide()
}

//dp:coldpath only sets with elements ≥ 64 have a tail; the ≤64-relation hot path never enters the wide branches
func (s Set) hashWide() uint64 {
	h := s.lo * fibMul
	for _, w := range s.hi {
		h = (h ^ (w * fibMul)) * fibMul
	}
	return h
}

// String renders the set as {R0,R3,R5} style for debugging.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(e int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "R%d", e)
	})
	b.WriteByte('}')
	return b.String()
}
