package bitset

import (
	"math/big"
	"math/rand"
	"sort"
	"strconv"
	"testing"
)

// This file is the property wall around the multi-word widening: every
// operation is cross-checked against two independent references —
//
//   - a map[int]bool model (the set-theoretic ground truth), and
//   - the legacy single-word uint64 semantics, for any set whose
//     elements all lie below 64 (bit-for-bit compatibility with the
//     pre-widening representation),
//
// over randomized domains on both sides of the 64-element boundary plus
// exhaustive small universes. A math/big packed-value shadow pins the
// total order, the hex encoding, and the Gosper successor for wide sets,
// where no legacy words exist to compare against.

// refSet is the map-based reference model.
type refSet map[int]bool

func refOf(s Set) refSet {
	r := refSet{}
	s.ForEach(func(e int) { r[e] = true })
	return r
}

func (r refSet) union(o refSet) refSet {
	out := refSet{}
	for e := range r {
		out[e] = true
	}
	for e := range o {
		out[e] = true
	}
	return out
}

func (r refSet) intersect(o refSet) refSet {
	out := refSet{}
	for e := range r {
		if o[e] {
			out[e] = true
		}
	}
	return out
}

func (r refSet) minus(o refSet) refSet {
	out := refSet{}
	for e := range r {
		if !o[e] {
			out[e] = true
		}
	}
	return out
}

func (r refSet) xor(o refSet) refSet {
	out := refSet{}
	for e := range r {
		if !o[e] {
			out[e] = true
		}
	}
	for e := range o {
		if !r[e] {
			out[e] = true
		}
	}
	return out
}

func (r refSet) subsetOf(o refSet) bool {
	for e := range r {
		if !o[e] {
			return false
		}
	}
	return true
}

func (r refSet) elems() []int {
	out := make([]int, 0, len(r))
	for e := range r {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

func (r refSet) build() Set {
	return New(r.elems()...)
}

// packed returns the set's value as a big.Int over the packed words —
// the numeric shadow defining the canonical total order and hex form.
func packed(s Set) *big.Int {
	v := new(big.Int)
	s.ForEach(func(e int) { v.SetBit(v, e, 1) })
	return v
}

// legacyWord returns the pre-widening uint64 representation, valid only
// when every element is below 64.
func legacyWord(t *testing.T, s Set) uint64 {
	t.Helper()
	var w uint64
	s.ForEach(func(e int) {
		if e >= 64 {
			t.Fatalf("legacyWord on set with element %d", e)
		}
		w |= 1 << uint(e)
	})
	return w
}

// checkCanonical asserts the representation invariant every operation
// must preserve: no tail unless an element ≥ 64 exists, and never a
// zero top word. Equal/IsEmpty/Hash/Key all rely on it.
func checkCanonical(t *testing.T, tag string, s Set) {
	t.Helper()
	if s.hi == nil {
		return
	}
	if len(s.hi) == 0 {
		t.Fatalf("%s: non-nil empty tail", tag)
	}
	if s.hi[len(s.hi)-1] == 0 {
		t.Fatalf("%s: zero top word in tail %v", tag, s.hi)
	}
}

// sampleDomains yields element-set samples spanning the boundary: all
// subsets of tiny universes, random legacy (<64) sets, straddling sets,
// and sparse wide sets.
func sampleDomains(rng *rand.Rand) [][]int {
	var out [][]int
	// Exhaustive small universes, one plain and one straddling 64.
	for _, base := range []int{0, 61} {
		for mask := 0; mask < 1<<5; mask++ {
			var elems []int
			for b := 0; b < 5; b++ {
				if mask&(1<<b) != 0 {
					elems = append(elems, base+b)
				}
			}
			out = append(out, elems)
		}
	}
	pick := func(n, lo, hi int) []int {
		seen := map[int]bool{}
		for len(seen) < n {
			seen[lo+rng.Intn(hi-lo)] = true
		}
		return refSet(seen).elems()
	}
	for i := 0; i < 40; i++ {
		out = append(out, pick(1+rng.Intn(10), 0, 64))    // legacy
		out = append(out, pick(1+rng.Intn(10), 48, 80))   // straddling
		out = append(out, pick(1+rng.Intn(12), 0, 300))   // wide sparse
		out = append(out, pick(1+rng.Intn(6), 120, 1024)) // far tail
	}
	return out
}

// TestPropertyOpsAgainstReferences: the headline model-based sweep.
func TestPropertyOpsAgainstReferences(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	domains := sampleDomains(rng)
	sets := make([]Set, len(domains))
	for i, elems := range domains {
		sets[i] = New(elems...)
		checkCanonical(t, "New", sets[i])
	}

	for trial := 0; trial < 4000; trial++ {
		a := sets[rng.Intn(len(sets))]
		b := sets[rng.Intn(len(sets))]
		ra, rb := refOf(a), refOf(b)

		// Binary ops against the map model.
		for _, op := range []struct {
			name string
			got  Set
			want refSet
		}{
			{"Union", a.Union(b), ra.union(rb)},
			{"Intersect", a.Intersect(b), ra.intersect(rb)},
			{"Minus", a.Minus(b), ra.minus(rb)},
			{"Xor", a.Xor(b), ra.xor(rb)},
		} {
			checkCanonical(t, op.name, op.got)
			if !op.got.Equal(op.want.build()) {
				t.Fatalf("%v %s %v = %v, reference says %v", a, op.name, b, op.got, op.want.build())
			}
		}

		// Predicates against the map model.
		if got, want := a.SubsetOf(b), ra.subsetOf(rb); got != want {
			t.Fatalf("%v SubsetOf %v = %v, want %v", a, b, got, want)
		}
		if got, want := a.Overlaps(b), len(ra.intersect(rb)) > 0; got != want {
			t.Fatalf("%v Overlaps %v = %v, want %v", a, b, got, want)
		}
		if a.Disjoint(b) == a.Overlaps(b) {
			t.Fatalf("%v Disjoint/Overlaps %v disagree", a, b)
		}
		wantEq := len(ra.xor(rb)) == 0
		if a.Equal(b) != wantEq {
			t.Fatalf("%v Equal %v = %v, want %v", a, b, a.Equal(b), wantEq)
		}
		if a.ProperSubsetOf(b) != (ra.subsetOf(rb) && !wantEq) {
			t.Fatalf("%v ProperSubsetOf %v wrong", a, b)
		}

		// Unary accessors against the map model.
		if a.Len() != len(ra) {
			t.Fatalf("%v Len = %d, want %d", a, a.Len(), len(ra))
		}
		if a.IsEmpty() != (len(ra) == 0) || a.IsSingleton() != (len(ra) == 1) {
			t.Fatalf("%v IsEmpty/IsSingleton wrong", a)
		}
		elems := ra.elems()
		if got := a.Elems(); !equalInts(got, elems) {
			t.Fatalf("%v Elems = %v, want %v", a, got, elems)
		}
		if len(elems) > 0 {
			if a.Min() != elems[0] || a.Max() != elems[len(elems)-1] {
				t.Fatalf("%v Min/Max = %d/%d, want %d/%d", a, a.Min(), a.Max(), elems[0], elems[len(elems)-1])
			}
			if !a.MinSet().Equal(Single(elems[0])) {
				t.Fatalf("%v MinSet = %v", a, a.MinSet())
			}
			if !a.MinusMin().Equal(New(elems[1:]...)) {
				t.Fatalf("%v MinusMin = %v", a, a.MinusMin())
			}
		} else if !a.MinSet().IsEmpty() || !a.MinusMin().IsEmpty() {
			t.Fatalf("empty set MinSet/MinusMin not empty")
		}
		for _, e := range elems {
			if !a.Has(e) {
				t.Fatalf("%v Has(%d) = false", a, e)
			}
		}
		// Add/Remove round-trips.
		e := rng.Intn(MaxElems)
		added := a.Add(e)
		checkCanonical(t, "Add", added)
		if !added.Has(e) || added.Len() != len(ra.union(refSet{e: true})) {
			t.Fatalf("%v Add(%d) = %v", a, e, added)
		}
		removed := added.Remove(e)
		checkCanonical(t, "Remove", removed)
		if !removed.Equal(a.Remove(e)) || removed.Has(e) {
			t.Fatalf("%v Add(%d).Remove(%d) = %v", a, e, e, removed)
		}

		// NextElem walks exactly the element list.
		var walked []int
		for e := a.NextElem(0); e >= 0; e = a.NextElem(e + 1) {
			walked = append(walked, e)
		}
		if !equalInts(walked, elems) {
			t.Fatalf("%v NextElem walk = %v, want %v", a, walked, elems)
		}
		if len(elems) > 0 {
			mid := elems[rng.Intn(len(elems))]
			if got := a.NextElem(mid); got != mid {
				t.Fatalf("%v NextElem(%d) = %d, want %d", a, mid, got, mid)
			}
		}

		// Total order, hex, hash, key: big.Int shadow.
		pa, pb := packed(a), packed(b)
		if got, want := a.Less(b), pa.Cmp(pb) < 0; got != want {
			t.Fatalf("%v Less %v = %v, packed-value order says %v", a, b, got, want)
		}
		if gotHex, wantHex := string(a.AppendHex(nil)), pa.Text(16); gotHex != wantHex {
			t.Fatalf("%v AppendHex = %q, want %q", a, gotHex, wantHex)
		}
		if a.Equal(b) && (a.Hash() != b.Hash() || a.Key() != b.Key()) {
			t.Fatalf("%v: equal sets with different Hash/Key", a)
		}
		if !a.Equal(b) && a.Key() == b.Key() {
			t.Fatalf("%v vs %v: distinct sets share a Key", a, b)
		}

		// Legacy single-word shadow: for sets entirely below 64 the new
		// code must agree with the historical uint64 semantics exactly.
		if (len(elems) == 0 || elems[len(elems)-1] < 64) && (b.IsEmpty() || b.Max() < 64) {
			wa, wb := legacyWord(t, a), legacyWord(t, b)
			checkLegacy(t, a, b, wa, wb)
		}
	}
}

// checkLegacy pins the pre-widening uint64 semantics for sub-64 sets.
func checkLegacy(t *testing.T, a, b Set, wa, wb uint64) {
	t.Helper()
	for _, op := range []struct {
		name string
		got  Set
		want uint64
	}{
		{"Union", a.Union(b), wa | wb},
		{"Intersect", a.Intersect(b), wa & wb},
		{"Minus", a.Minus(b), wa &^ wb},
		{"Xor", a.Xor(b), wa ^ wb},
		{"MinSet", a.MinSet(), wa & -wa},
		{"MinusMin", a.MinusMin(), wa & (wa - 1)},
		{"NextSubset", a.Intersect(b).NextSubset(b), (wa&wb - wb) & wb},
	} {
		if got := legacyWord(t, op.got); got != op.want {
			t.Fatalf("legacy %s: %v op %v = %#x, want %#x", op.name, a, b, got, op.want)
		}
	}
	if a.Less(b) != (wa < wb) {
		t.Fatalf("legacy Less: %v vs %v disagrees with word order", a, b)
	}
	if a.Equal(b) != (wa == wb) {
		t.Fatalf("legacy Equal: %v vs %v disagrees with word equality", a, b)
	}
	if a.SubsetOf(b) != (wa&^wb == 0) {
		t.Fatalf("legacy SubsetOf: %v vs %v", a, b)
	}
	if a.Hash() != wa*fibMul {
		t.Fatalf("legacy Hash: %v = %#x, want Fibonacci hash %#x", a, a.Hash(), wa*fibMul)
	}
	if got, want := string(a.AppendHex(nil)), strconv.FormatUint(wa, 16); got != want {
		t.Fatalf("legacy AppendHex: %v = %q, want %q", a, got, want)
	}
	// Gosper successor, whenever the legacy word has one (the carry
	// staying inside the word).
	if wa != 0 {
		c := wa & -wa
		r := wa + c
		if r != 0 {
			want := r | ((wa^r)>>2)/c
			if got := legacyWord(t, a.NextSameSize()); got != want {
				t.Fatalf("legacy NextSameSize: %v = %#x, want %#x", a, got, want)
			}
		}
	}
}

// TestPropertySubsetEnumeration: SubsetsOf yields exactly the non-empty
// subsets, in strictly increasing packed-value (Less) order, ending
// with the mask — on both sides of the boundary.
func TestPropertySubsetEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	masks := []Set{
		New(0, 1, 2),
		New(5, 17, 40, 63),
		New(62, 63, 64, 65), // straddles the word boundary
		New(1, 63, 64, 127, 128),
		New(200, 300, 400),
	}
	for i := 0; i < 10; i++ {
		var elems []int
		for len(elems) < 2+rng.Intn(9) {
			elems = append(elems, rng.Intn(140))
		}
		masks = append(masks, New(elems...))
	}
	for _, m := range masks {
		k := m.Len()
		want := 1<<uint(k) - 1
		var got []Set
		for s := range m.SubsetsOf() {
			got = append(got, s)
		}
		if len(got) != want {
			t.Fatalf("%v: %d subsets, want %d", m, len(got), want)
		}
		seen := map[string]bool{}
		for i, s := range got {
			checkCanonical(t, "subset", s)
			if s.IsEmpty() || !s.SubsetOf(m) {
				t.Fatalf("%v: yielded non-subset %v", m, s)
			}
			if seen[s.Key()] {
				t.Fatalf("%v: duplicate subset %v", m, s)
			}
			seen[s.Key()] = true
			if i > 0 && !got[i-1].Less(s) {
				t.Fatalf("%v: order violation at %d: %v !< %v", m, i, got[i-1], s)
			}
		}
		if !got[len(got)-1].Equal(m) {
			t.Fatalf("%v: last subset %v is not the mask", m, got[len(got)-1])
		}
		// Subsets/ProperSubsets agree with the iterator.
		if subs := Subsets(m); len(subs) != len(got) {
			t.Fatalf("%v: Subsets len %d != iterator %d", m, len(subs), len(got))
		}
		if ps := ProperSubsets(m); len(ps) != len(got)-1 {
			t.Fatalf("%v: ProperSubsets len %d", m, len(ps))
		}
		// Early break is honored.
		n := 0
		for range m.SubsetsOf() {
			n++
			if n == 2 {
				break
			}
		}
		if n != 2 {
			t.Fatalf("%v: early break yielded %d", m, n)
		}
	}
}

// TestPropertyGosperSequence: iterating NextSameSize from Full(k)
// enumerates every k-subset of an n-universe exactly once, in strictly
// increasing canonical order — including across the 64-bit boundary.
func TestPropertyGosperSequence(t *testing.T) {
	binom := func(n, k int) int {
		out := 1
		for i := 0; i < k; i++ {
			out = out * (n - i) / (i + 1)
		}
		return out
	}
	for _, tc := range []struct{ n, k int }{
		{6, 1}, {6, 3}, {10, 4}, {63, 1}, {64, 2}, {65, 2}, {66, 3}, {70, 2}, {130, 2},
	} {
		prev := Empty
		count := 0
		for s := Full(tc.k); s.Max() < tc.n; s = s.NextSameSize() {
			checkCanonical(t, "gosper", s)
			if s.Len() != tc.k {
				t.Fatalf("n=%d k=%d: %v has %d elements", tc.n, tc.k, s, s.Len())
			}
			if count > 0 && !prev.Less(s) {
				t.Fatalf("n=%d k=%d: order violation %v !< %v", tc.n, tc.k, prev, s)
			}
			prev = s
			count++
			if count > binom(tc.n, tc.k) {
				break
			}
		}
		if want := binom(tc.n, tc.k); count != want {
			t.Fatalf("n=%d k=%d: enumerated %d subsets, want %d", tc.n, tc.k, count, want)
		}
	}
}

// TestPropertyLessTotalOrder: irreflexivity, trichotomy, transitivity
// on random triples spanning the boundary.
func TestPropertyLessTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	domains := sampleDomains(rng)
	pickSet := func() Set { return New(domains[rng.Intn(len(domains))]...) }
	for i := 0; i < 3000; i++ {
		a, b, c := pickSet(), pickSet(), pickSet()
		if a.Less(a) {
			t.Fatalf("%v Less itself", a)
		}
		lt, gt, eq := a.Less(b), b.Less(a), a.Equal(b)
		if (lt && gt) || (lt && eq) || (gt && eq) || (!lt && !gt && !eq) {
			t.Fatalf("trichotomy violated for %v vs %v: lt=%v gt=%v eq=%v", a, b, lt, gt, eq)
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			t.Fatalf("transitivity violated: %v < %v < %v but not %v < %v", a, b, c, a, c)
		}
	}
}

// TestPropertyRangeBuilders: Range/Below/BelowEq/Full against the model.
func TestPropertyRangeBuilders(t *testing.T) {
	for _, tc := range []struct{ lo, hi int }{
		{0, 0}, {0, 5}, {3, 9}, {0, 64}, {60, 70}, {63, 65}, {64, 64}, {64, 130}, {100, 200},
	} {
		want := refSet{}
		for e := tc.lo; e < tc.hi; e++ {
			want[e] = true
		}
		got := Range(tc.lo, tc.hi)
		checkCanonical(t, "Range", got)
		if !got.Equal(want.build()) || got.Len() != len(want) {
			t.Fatalf("Range(%d,%d) = %v", tc.lo, tc.hi, got)
		}
	}
	for _, e := range []int{0, 1, 63, 64, 65, 200} {
		if !Below(e).Equal(Range(0, e)) {
			t.Fatalf("Below(%d) != Range(0,%d)", e, e)
		}
		if !BelowEq(e).Equal(Range(0, e+1)) {
			t.Fatalf("BelowEq(%d) != Range(0,%d)", e, e+1)
		}
		if !Full(e).Equal(Below(e)) {
			t.Fatalf("Full(%d) != Below(%d)", e, e)
		}
		if !Single(e).Equal(New(e)) || Single(e).Min() != e || !Single(e).IsSingleton() {
			t.Fatalf("Single(%d) malformed", e)
		}
	}
}

// TestPropertyHashMixing: a quick avalanche sanity — distinct sets in a
// dense straddling family rarely collide after the table shift.
func TestPropertyHashMixing(t *testing.T) {
	seen := map[uint64]string{}
	collisions := 0
	total := 0
	for lo := 0; lo < 64; lo += 3 {
		for hi := 64; hi < 192; hi += 5 {
			s := New(lo, hi, hi/2)
			h := s.Hash() >> 48 // 16-bit slot index, as a small memo table would use
			if prev, ok := seen[h]; ok && prev != s.Key() {
				collisions++
			}
			seen[h] = s.Key()
			total++
		}
	}
	if collisions > total/4 {
		t.Fatalf("excessive slot collisions: %d of %d", collisions, total)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
