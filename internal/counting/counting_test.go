package counting

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/hypergraph"
)

func chainGraph(n int) *hypergraph.Graph {
	g := hypergraph.New()
	g.AddRelations(n, "R", 100)
	for i := 0; i+1 < n; i++ {
		g.AddSimpleEdge(i, i+1, 0.1)
	}
	return g
}

func cycleGraph(n int) *hypergraph.Graph {
	g := chainGraph(n)
	g.AddSimpleEdge(n-1, 0, 0.1)
	return g
}

func starGraph(n int) *hypergraph.Graph { // n total relations: center 0
	g := hypergraph.New()
	g.AddRelations(n, "R", 100)
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(0, i, 0.1)
	}
	return g
}

func cliqueGraph(n int) *hypergraph.Graph {
	g := hypergraph.New()
	g.AddRelations(n, "R", 100)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddSimpleEdge(i, j, 0.1)
		}
	}
	return g
}

// Closed-form search space sizes for the standard graph shapes, from the
// complexity analysis in Moerkotte & Neumann, VLDB 2006 [17].
func TestConnectedSubgraphCounts(t *testing.T) {
	for n := 2; n <= 8; n++ {
		if got, want := len(ConnectedSubgraphs(chainGraph(n))), n*(n+1)/2; got != want {
			t.Errorf("chain(%d): #csg = %d, want %d", n, got, want)
		}
		if got, want := len(ConnectedSubgraphs(starGraph(n))), 1<<(n-1)+n-1; got != want {
			t.Errorf("star(%d): #csg = %d, want %d", n, got, want)
		}
		if got, want := len(ConnectedSubgraphs(cliqueGraph(n))), 1<<n-1; got != want {
			t.Errorf("clique(%d): #csg = %d, want %d", n, got, want)
		}
		if n >= 3 {
			if got, want := len(ConnectedSubgraphs(cycleGraph(n))), n*n-n+1; got != want {
				t.Errorf("cycle(%d): #csg = %d, want %d", n, got, want)
			}
		}
	}
}

func TestCsgCmpPairCounts(t *testing.T) {
	for n := 2; n <= 8; n++ {
		if got, want := CountCsgCmpPairs(chainGraph(n)), (n*n*n-n)/6; got != want {
			t.Errorf("chain(%d): #ccp = %d, want %d", n, got, want)
		}
		if got, want := CountCsgCmpPairs(starGraph(n)), (n-1)*(1<<(n-2)); got != want {
			t.Errorf("star(%d): #ccp = %d, want %d", n, got, want)
		}
		cliqueWant := (pow3(n) - 2*(1<<n) + 1) / 2
		if got := CountCsgCmpPairs(cliqueGraph(n)); got != cliqueWant {
			t.Errorf("clique(%d): #ccp = %d, want %d", n, got, cliqueWant)
		}
		if n >= 3 {
			if got, want := CountCsgCmpPairs(cycleGraph(n)), (n*n*n-2*n*n+n)/2; got != want {
				t.Errorf("cycle(%d): #ccp = %d, want %d", n, got, want)
			}
		}
	}
}

func pow3(n int) int {
	p := 1
	for i := 0; i < n; i++ {
		p *= 3
	}
	return p
}

func TestPairsNormalized(t *testing.T) {
	pairs := CsgCmpPairs(cycleGraph(5))
	seen := map[string]bool{}
	for _, p := range pairs {
		if p.S1.Min() >= p.S2.Min() {
			t.Errorf("pair %v|%v not normalized", p.S1, p.S2)
		}
		if !p.S1.Disjoint(p.S2) {
			t.Errorf("pair %v|%v overlaps", p.S1, p.S2)
		}
		if seen[p.Key()] {
			t.Errorf("duplicate pair %v|%v", p.S1, p.S2)
		}
		seen[p.Key()] = true
	}
}

func TestNormalize(t *testing.T) {
	a, b := bitset.New(2, 3), bitset.New(0, 1)
	p := Normalize(a, b)
	if !p.S1.Equal(b) || !p.S2.Equal(a) {
		t.Errorf("Normalize = %v", p)
	}
	p2 := Normalize(b, a)
	if !p2.Equal(p) {
		t.Error("Normalize must be orientation independent")
	}
}

// The Figure 2 hypergraph: its big hyperedge means far fewer
// csg-cmp-pairs than the same graph with a clique of simple edges.
func TestPaperExampleSearchSpace(t *testing.T) {
	g := hypergraph.PaperExampleGraph()
	csgs := ConnectedSubgraphs(g)
	pairs := CsgCmpPairs(g)
	// Connected subgraphs: chains within {R1,R2,R3}: {0},{1},{2},{01},
	// {12},{012}; within {R4,R5,R6}: {3},{4},{5},{34},{45},{345}; and the
	// sets containing both sides require the hyperedge: {012345} plus
	// supersets of 012|345 unions... only {012}∪{345} qualifies, plus
	// nothing partial (hyperedge needs all six). So 6 + 6 + 1 = 13.
	if len(csgs) != 13 {
		t.Errorf("#csg = %d, want 13: %v", len(csgs), csgs)
	}
	// Pairs: chain(3) on each side contributes 4 each; across the
	// hyperedge only ({012},{345}). So 4 + 4 + 1 = 9.
	if len(pairs) != 9 {
		t.Errorf("#ccp = %d, want 9: %v", len(pairs), pairs)
	}
	found := false
	for _, p := range pairs {
		if p.S1.Equal(bitset.New(0, 1, 2)) && p.S2.Equal(bitset.New(3, 4, 5)) {
			found = true
		}
	}
	if !found {
		t.Error("hyperedge pair ({R1,R2,R3},{R4,R5,R6}) missing")
	}
}

func TestBruteForceCoutChain(t *testing.T) {
	// Chain R0-R1-R2 with cards 100 and sel 0.1: ((R0⋈R1)⋈R2) costs
	// card(01)+card(012) = 1000 + 10000... card(012)=100^3*0.1*0.1=1e4.
	// (R0⋈(R1⋈R2)) symmetric: also 1000+10000. No cheaper tree.
	g := chainGraph(3)
	got, ok := BruteForceCout(g)
	if !ok {
		t.Fatal("chain must have a plan")
	}
	if got != 11000 {
		t.Errorf("optimal Cout = %g, want 11000", got)
	}
}

func TestBruteForceCoutDisconnected(t *testing.T) {
	g := hypergraph.New()
	g.AddRelations(2, "R", 10)
	if _, ok := BruteForceCout(g); ok {
		t.Error("disconnected graph must have no cross-product-free plan")
	}
}

func TestBruteForceCoutFavorsSelectiveJoin(t *testing.T) {
	// Star with one very selective satellite: best plan joins it first.
	g := hypergraph.New()
	g.AddRelation("F", 10000)
	g.AddRelation("D1", 100)
	g.AddRelation("D2", 100)
	g.AddSimpleEdge(0, 1, 0.0001) // F-D1 very selective
	g.AddSimpleEdge(0, 2, 0.01)   // F-D2
	got, ok := BruteForceCout(g)
	if !ok {
		t.Fatal("no plan")
	}
	// (F⋈D1) card = 10000*100*0.0001 = 100; then ⋈D2 = 100*100*0.01 = 100.
	// Total 200. Other order: (F⋈D2)=10^7*0.01=10^5? 10000*100*0.01=10^4,
	// then *100*0.0001 = 10^4*100*0.0001=100; total 10100. So 200 wins.
	if got != 200 {
		t.Errorf("optimal Cout = %g, want 200", got)
	}
}

func TestBruteForceCoutPanics(t *testing.T) {
	g := hypergraph.New()
	g.AddRelations(2, "R", 10)
	g.AddEdge(hypergraph.Edge{U: bitset.New(0), V: bitset.New(1), Sel: 0.5, Op: 3 /* non-join */})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-inner edge must panic")
			}
		}()
		BruteForceCout(g)
	}()

	g2 := hypergraph.New()
	g2.AddRelations(2, "R", 10)
	g2.AddSimpleEdge(0, 1, 0.5)
	g2.SetFree(1, bitset.New(0))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dependent relation must panic")
			}
		}()
		BruteForceCout(g2)
	}()
}
