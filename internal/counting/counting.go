// Package counting provides brute-force enumeration oracles for the
// search-space quantities of §2.2: connected subgraphs (csg) — the number
// of DP table entries — and csg-cmp-pairs (ccp) — the lower bound on the
// number of cost function calls of any dynamic programming algorithm.
//
// Everything here is deliberately simple and exponential; it exists to
// validate the fast enumerators and to report search-space sizes in the
// experiment harness, not to be fast.
package counting

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/hypergraph"
)

// Pair is a csg-cmp-pair (Definition 4), normalized so that
// min(S1) ≺ min(S2), matching the restriction DPhyp enumerates under
// (§2.2: "we will restrict the enumeration of csg-cmp-pairs to those
// (S1,S2) which satisfy min(S1) ≺ min(S2)").
type Pair struct {
	S1, S2 bitset.Set
}

// Key returns a canonical string for use as a Go map key (Pair itself is
// not comparable because bitset.Set carries a word slice).
func (p Pair) Key() string { return p.S1.Key() + "|" + p.S2.Key() }

// Equal reports componentwise equality.
func (p Pair) Equal(q Pair) bool { return p.S1.Equal(q.S1) && p.S2.Equal(q.S2) }

// ConnectedSubgraphs returns every node set that induces a connected
// subgraph (Definition 3), in ascending bit-pattern order.
func ConnectedSubgraphs(g *hypergraph.Graph) []bitset.Set {
	all := g.AllNodes()
	var out []bitset.Set
	for s := bitset.Empty.NextSubset(all); ; s = s.NextSubset(all) {
		if g.IsConnected(s) {
			out = append(out, s)
		}
		if s.Equal(all) {
			break
		}
	}
	return out
}

// CsgCmpPairs returns every normalized csg-cmp-pair of g.
func CsgCmpPairs(g *hypergraph.Graph) []Pair {
	csgs := ConnectedSubgraphs(g)
	all := g.AllNodes()
	var out []Pair
	for _, s1 := range csgs {
		rest := all.Minus(s1)
		if rest.IsEmpty() {
			continue
		}
		for s2 := bitset.Empty.NextSubset(rest); ; s2 = s2.NextSubset(rest) {
			if s1.Min() < s2.Min() && g.IsConnected(s2) && g.ConnectsTo(s1, s2) {
				out = append(out, Pair{S1: s1, S2: s2})
			}
			if s2.Equal(rest) {
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].S1.Equal(out[j].S1) {
			return out[i].S1.Less(out[j].S1)
		}
		return out[i].S2.Less(out[j].S2)
	})
	return out
}

// CountCsgCmpPairs returns the number of normalized csg-cmp-pairs: the
// minimal number of cost-function calls of any DP algorithm (§2.2).
func CountCsgCmpPairs(g *hypergraph.Graph) int { return len(CsgCmpPairs(g)) }

// Normalize maps an arbitrary (S1,S2) to its normalized form.
func Normalize(s1, s2 bitset.Set) Pair {
	if s1.Min() < s2.Min() {
		return Pair{S1: s1, S2: s2}
	}
	return Pair{S1: s2, S2: s1}
}

// BruteForceCout computes the optimal C_out cost over all bushy,
// cross-product-free join trees of an inner-join-only hypergraph, by
// memoized recursion over all graph-connected partitions. It is an
// independent implementation (own cardinality computation, no shared
// plan-construction code) used to validate the optimizers' optimality.
//
// It panics if the graph contains non-inner edges or dependent relations;
// those cases are validated differentially between enumerators instead.
func BruteForceCout(g *hypergraph.Graph) (float64, bool) {
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i).Op != algebra.Join {
			panic("counting: BruteForceCout supports inner joins only")
		}
	}
	for i := 0; i < g.NumRels(); i++ {
		if !g.Relation(i).Free.IsEmpty() {
			panic("counting: BruteForceCout does not support dependent relations")
		}
	}

	// card(S) for inner joins is partition independent: the product of
	// base cardinalities and of the selectivities of all edges internal
	// to S (each predicate applied exactly once).
	cardMemo := map[string]float64{} // keyed by Set.Key
	var card func(S bitset.Set) float64
	card = func(S bitset.Set) float64 {
		key := S.Key()
		if c, ok := cardMemo[key]; ok {
			return c
		}
		c := 1.0
		S.ForEach(func(i int) { c *= g.Relation(i).Card })
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(i)
			// Internal iff both hypernodes (and the free part) lie in S.
			if e.U.SubsetOf(S) && e.V.SubsetOf(S) && e.W.SubsetOf(S) {
				c *= e.Sel
			}
		}
		cardMemo[key] = c
		return c
	}

	const inf = 1e308
	memo := map[string]float64{} // keyed by Set.Key
	var best func(S bitset.Set) float64
	best = func(S bitset.Set) float64 {
		if S.IsSingleton() {
			return 0
		}
		key := S.Key()
		if c, ok := memo[key]; ok {
			return c
		}
		res := inf
		rest := S.MinusMin()
		lo := S.MinSet()
		for a := bitset.Empty; ; a = a.NextSubset(rest) {
			s1 := lo.Union(a)
			s2 := S.Minus(s1)
			if !s2.IsEmpty() && g.ConnectsTo(s1, s2) {
				c1, c2 := best(s1), best(s2)
				if c1 < inf && c2 < inf {
					if total := c1 + c2 + card(S); total < res {
						res = total
					}
				}
			}
			if a.Equal(rest) {
				break
			}
		}
		memo[key] = res
		return res
	}

	res := best(g.AllNodes())
	if res >= inf {
		return 0, false
	}
	return res, true
}
