// Package simplify implements the outer-join simplification the paper
// assumes as a precondition (§5.2: "we assume that all proposed
// simplifications [2, 11] have been applied"), following
// Galindo-Legaria & Rosenthal (TODS 1997) and Bhargava et al.
//
// With all predicates strong (§5.2), an operator that rejects
// NULL-padded tuples from one of its inputs turns a descendant outer
// join on that input into a stricter operator:
//
//   - a strong predicate referencing the null-padded side of a left
//     outer join below it converts that left outer join to an inner
//     join (padded rows would fail the predicate and be discarded
//     anyway);
//   - similarly, a full outer join degrades to a left outer join when
//     its right side is referenced from above, to a right-side-
//     preserving join (rewritten here as a left outer join with the
//     arguments untouched and the padding side reduced) when its left
//     side is referenced, and to an inner join when both are.
//
// The conflict rules of §5.5 are only sound for simplified trees: an
// inner join above a left outer join is declared freely reorderable
// (OC(B,P) = false for right nesting), which is valid precisely because
// in a simplified tree the inner join's predicate cannot reference the
// outer join's padded side. Running Simplify first makes arbitrary
// initial trees safe for TES-based plan generation; the equivalence
// property tests exercise exactly this pipeline.
package simplify

import (
	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/optree"
)

// Result reports what Simplify did.
type Result struct {
	// Rewrites counts operator conversions.
	Rewrites int
}

// Simplify rewrites the operator tree in place, converting outer joins
// that are made redundant by strong predicates above them. It returns
// statistics about the rewrite. The tree must not yet be analyzed
// (Simplify runs before optree.Analyze).
//
// The traversal is top-down: each operator contributes the tables its
// strong predicate references; any outer join whose padded side
// intersects the references from strictly above is degraded. References
// from the operator's own predicate apply to its descendants but not to
// itself (an outer join's own predicate does not simplify it).
func Simplify(root *optree.Node) Result {
	var res Result
	// Iterate to a fixpoint: degrading a full outer join to a left outer
	// join can expose further simplifications through re-collected
	// reference sets. Each pass is O(nodes); trees are tiny.
	for {
		before := res.Rewrites
		walk(root, bitset.Empty, &res)
		if res.Rewrites == before {
			return res
		}
	}
}

// walk pushes down the set of tables referenced by strong predicates
// strictly above n.
func walk(n *optree.Node, above bitset.Set, res *Result) {
	if n == nil || n.IsLeaf() {
		return
	}
	// Does a predicate from above reference this operator's padded
	// side(s)?
	switch n.Op {
	case algebra.LeftOuter:
		if above.Overlaps(tablesOf(n.Right)) {
			n.Op = algebra.Join
			res.Rewrites++
		}
	case algebra.FullOuter:
		// M produces: matched rows, left rows with NULL-padded right
		// columns, and right rows with NULL-padded left columns. A
		// null-rejecting reference to the LEFT side drops the rows whose
		// left columns are padded, leaving exactly a left outer join; a
		// reference to the RIGHT side leaves a right outer join, which
		// the §5.4 leaf-numbering convention cannot express without
		// swapping children — so that case conservatively stays a full
		// outer join (correct, merely less reorderable: OC treats M
		// strictly). References to both sides leave an inner join.
		leftRef := above.Overlaps(tablesOf(n.Left))
		rightRef := above.Overlaps(tablesOf(n.Right))
		switch {
		case leftRef && rightRef:
			n.Op = algebra.Join
			res.Rewrites++
		case leftRef:
			n.Op = algebra.LeftOuter
			res.Rewrites++
		}
	}
	// Children additionally see this operator's own predicate references
	// — but only if the operator is null-rejecting, i.e. a tuple failing
	// the predicate is dropped from the output. That holds for the inner
	// join and the semijoin. It does NOT hold for outer joins (failing
	// tuples are padded, not dropped), for the antijoin (failing tuples
	// are exactly the kept ones), or for the nestjoin (every left tuple
	// survives with an empty group).
	childAbove := above
	if n.Op == algebra.Join || n.Op == algebra.SemiJoin {
		childAbove = above.Union(n.Pred.Tables)
	}
	walk(n.Left, childAbove, res)
	walk(n.Right, childAbove, res)
}

// tablesOf collects the leaf relations of a subtree. Simplify runs
// before optree.Analyze, so the memoized Tables() is not yet available.
func tablesOf(n *optree.Node) bitset.Set {
	if n == nil {
		return bitset.Empty
	}
	if n.IsLeaf() {
		return bitset.Single(n.Rel)
	}
	return tablesOf(n.Left).Union(tablesOf(n.Right))
}
