package simplify

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/optree"
)

func pred(tables ...int) optree.Predicate {
	return optree.Predicate{Tables: bitset.New(tables...), Sel: 0.1}
}

func TestJoinAboveLeftOuterSimplifies(t *testing.T) {
	// (R0 ⟕ R1) ⋈_{p(R1,R2)} R2: the join predicate references the
	// padded side R1 → the outer join becomes an inner join.
	lo := optree.NewOp(algebra.LeftOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
	root := optree.NewOp(algebra.Join, lo, optree.NewLeaf(2), pred(1, 2))
	res := Simplify(root)
	if res.Rewrites != 1 {
		t.Fatalf("rewrites = %d, want 1", res.Rewrites)
	}
	if lo.Op != algebra.Join {
		t.Errorf("outer join not simplified: %v", lo.Op)
	}
}

func TestJoinReferencingPreservedSideDoesNotSimplify(t *testing.T) {
	// (R0 ⟕ R1) ⋈_{p(R0,R2)} R2: the join references the preserved side
	// only → no simplification.
	lo := optree.NewOp(algebra.LeftOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
	root := optree.NewOp(algebra.Join, lo, optree.NewLeaf(2), pred(0, 2))
	if res := Simplify(root); res.Rewrites != 0 {
		t.Fatalf("rewrites = %d, want 0", res.Rewrites)
	}
	if lo.Op != algebra.LeftOuter {
		t.Error("outer join wrongly simplified")
	}
}

func TestOuterJoinAboveDoesNotSimplify(t *testing.T) {
	// (R0 ⟕ R1) ⟕_{p(R1,R2)} R2: the upper operator pads instead of
	// dropping, so the lower outer join must stay.
	lo := optree.NewOp(algebra.LeftOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
	root := optree.NewOp(algebra.LeftOuter, lo, optree.NewLeaf(2), pred(1, 2))
	if res := Simplify(root); res.Rewrites != 0 {
		t.Fatalf("rewrites = %d, want 0", res.Rewrites)
	}
	if lo.Op != algebra.LeftOuter {
		t.Error("outer join wrongly simplified under a padding ancestor")
	}
}

func TestAntiAndNestJoinAreNotNullRejecting(t *testing.T) {
	for _, op := range []algebra.Op{algebra.AntiJoin, algebra.NestJoin} {
		lo := optree.NewOp(algebra.LeftOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
		root := optree.NewOp(op, lo, optree.NewLeaf(2), pred(1, 2))
		if res := Simplify(root); res.Rewrites != 0 {
			t.Errorf("%v: rewrites = %d, want 0 (failing tuples are kept)", op, res.Rewrites)
		}
	}
}

func TestSemiJoinIsNullRejecting(t *testing.T) {
	lo := optree.NewOp(algebra.LeftOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
	root := optree.NewOp(algebra.SemiJoin, lo, optree.NewLeaf(2), pred(1, 2))
	if res := Simplify(root); res.Rewrites != 1 {
		t.Fatalf("rewrites = %d, want 1", res.Rewrites)
	}
	if lo.Op != algebra.Join {
		t.Error("semijoin reference must simplify the outer join")
	}
}

func TestFullOuterDegradations(t *testing.T) {
	// Left side referenced: the left-padded rows are refuted → M becomes
	// a left outer join.
	fo := optree.NewOp(algebra.FullOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
	root := optree.NewOp(algebra.Join, fo, optree.NewLeaf(2), pred(0, 2))
	Simplify(root)
	if fo.Op != algebra.LeftOuter {
		t.Errorf("M with left side referenced must become P, got %v", fo.Op)
	}

	// Both sides referenced: M → B.
	fo2 := optree.NewOp(algebra.FullOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
	root2 := optree.NewOp(algebra.Join, fo2, optree.NewLeaf(2), pred(0, 1, 2))
	Simplify(root2)
	if fo2.Op != algebra.Join {
		t.Errorf("M with both sides referenced must become B, got %v", fo2.Op)
	}

	// Only the right side referenced: a right outer join would be needed,
	// which §5.4 leaf numbering cannot express — kept as M (documented
	// conservative choice; correctness unaffected).
	fo3 := optree.NewOp(algebra.FullOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
	root3 := optree.NewOp(algebra.Join, fo3, optree.NewLeaf(2), pred(1, 2))
	Simplify(root3)
	if fo3.Op != algebra.FullOuter {
		t.Errorf("M with only right side referenced stays M, got %v", fo3.Op)
	}
}

func TestFixpointCascade(t *testing.T) {
	// ((R0 ⟕ R1) ⟕ R2) ⋈_{p(R2,R3)} R3: the join simplifies the upper
	// outer join; the now-inner predicate p(R1,R2) then simplifies the
	// lower one. Requires the fixpoint iteration.
	lo1 := optree.NewOp(algebra.LeftOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
	lo2 := optree.NewOp(algebra.LeftOuter, lo1, optree.NewLeaf(2), pred(1, 2))
	root := optree.NewOp(algebra.Join, lo2, optree.NewLeaf(3), pred(2, 3))
	res := Simplify(root)
	if res.Rewrites != 2 {
		t.Fatalf("rewrites = %d, want 2 (cascade)", res.Rewrites)
	}
	if lo2.Op != algebra.Join {
		t.Error("upper outer join not simplified")
	}
	if lo1.Op != algebra.Join {
		t.Error("cascaded simplification missed the lower outer join")
	}
}

func TestDeepReferencePropagation(t *testing.T) {
	// The null-rejecting reference may sit many levels above.
	lo := optree.NewOp(algebra.LeftOuter, optree.NewLeaf(0), optree.NewLeaf(1), pred(0, 1))
	mid := optree.NewOp(algebra.Join, lo, optree.NewLeaf(2), pred(0, 2))
	root := optree.NewOp(algebra.Join, mid, optree.NewLeaf(3), pred(1, 3))
	Simplify(root)
	if lo.Op != algebra.Join {
		t.Error("deep reference must simplify the outer join")
	}
}

func TestLeafAndNilSafe(t *testing.T) {
	if res := Simplify(optree.NewLeaf(0)); res.Rewrites != 0 {
		t.Error("leaf must be a no-op")
	}
}
