package hotpathalloc_test

import (
	"strings"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	diags := analysistest.RunFull(t, "testdata/src", hotpathalloc.Analyzer)

	// The pooled-bucket idiom (collector.deferPair): one append finding
	// silenced by //nolint:hotpathalloc with a justification — it must
	// register as suppressed, not active, and carry its reason.
	var suppressed int
	for _, d := range diags {
		if !d.Suppressed {
			continue
		}
		suppressed++
		if !strings.Contains(d.Reason, "pooled buffer") {
			t.Errorf("%s: unexpected suppression reason %q", d.Position, d.Reason)
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed findings = %d, want 1", suppressed)
	}
}
