// Package hot exercises every construct hotpathalloc flags and the
// arena idioms it must allow.
package hot

import "fmt"

type enum struct {
	buf   []uint64
	pairs int
}

func noop() {}

func sink(v any)            {}
func variadic(vs ...any)    {}
func sinkErr(err error) int { return 0 }

//dp:hotpath
func allocs(n int) {
	_ = []int{1, 2}          // want `slice literal allocates on a //dp:hotpath function`
	_ = map[int]int{}        // want `map literal allocates on a //dp:hotpath function`
	_ = &enum{}              // want `&composite literal escapes to the heap on a //dp:hotpath function`
	_ = make([]byte, n)      // want `make allocates on a //dp:hotpath function`
	_ = new(enum)            // want `new allocates on a //dp:hotpath function`
	_ = func() {}            // want `function literal allocates a closure on a //dp:hotpath function`
	go noop()                // want `go statement on a //dp:hotpath function`
	_ = fmt.Sprintf("%d", n) // want `fmt call allocates on a //dp:hotpath function`
	_ = enum{}               // stack value, no finding
}

//dp:hotpath
func boxing(n int, sl []any, e error) {
	sink(n)         // want `argument boxes int into`
	variadic(n, n)  // want `argument boxes int into` `argument boxes int into`
	variadic(sl...) // forwarding a slice, no boxing
	sink(nil)       // nil never boxes
	sink(e)         // already an interface
	_ = sinkErr(nil)
}

// panicPath: panic arguments are by definition cold, the whole subtree
// is exempt.
//
//dp:hotpath
func panicPath(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n))
	}
}

// arena is the reuse idiom: reslice to zero length, append within the
// provisioned capacity.
//
//dp:hotpath
func arena(e *enum, xs []uint64) {
	buf := e.buf[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	e.buf = append(e.buf[:0], buf...)
}

//dp:hotpath
func growingAppend(e *enum, x uint64) {
	e.buf = append(e.buf, x) // want `append may grow its backing array on a //dp:hotpath function`
	var out []uint64
	out = append(out, x) // want `append may grow its backing array on a //dp:hotpath function`
	_ = out
}

// root has no allocation itself; the finding surfaces in its
// unannotated static callee, pulled in by the closure walk.
//
//dp:hotpath
func root(e *enum) {
	callee(e)
	coldGrow(e)
}

func callee(e *enum) {
	e.buf = append(e.buf, 1) // want `append may grow its backing array on a //dp:hotpath function`
}

// coldGrow is the annotated slow path: the closure walk stops here, so
// its allocations are deliberate and unreported.
//
//dp:coldpath doubling growth is amortized over the enumeration
func coldGrow(e *enum) {
	next := make([]uint64, 0, 2*cap(e.buf)+16)
	e.buf = append(next, e.buf...)
}

//dp:coldpath
func badCold() {} // want `//dp:coldpath requires a justification: //dp:coldpath <reason>`

//dp:hotpath
//dp:coldpath it cannot be both
func conflicted() {} // want `function is marked both //dp:hotpath and //dp:coldpath`

// notHot is unannotated and unreachable from any root: allocate freely.
func notHot() []int {
	return []int{1, 2, 3}
}
