// Package hot exercises every construct hotpathalloc flags and the
// arena idioms it must allow.
package hot

import "fmt"

type enum struct {
	buf   []uint64
	pairs int
}

func noop() {}

func sink(v any)            {}
func variadic(vs ...any)    {}
func sinkErr(err error) int { return 0 }

//dp:hotpath
func allocs(n int) {
	_ = []int{1, 2}          // want `slice literal allocates on a //dp:hotpath function`
	_ = map[int]int{}        // want `map literal allocates on a //dp:hotpath function`
	_ = &enum{}              // want `&composite literal escapes to the heap on a //dp:hotpath function`
	_ = make([]byte, n)      // want `make allocates on a //dp:hotpath function`
	_ = new(enum)            // want `new allocates on a //dp:hotpath function`
	_ = func() {}            // want `function literal allocates a closure on a //dp:hotpath function`
	go noop()                // want `go statement on a //dp:hotpath function`
	_ = fmt.Sprintf("%d", n) // want `fmt call allocates on a //dp:hotpath function`
	_ = enum{}               // stack value, no finding
}

//dp:hotpath
func boxing(n int, sl []any, e error) {
	sink(n)         // want `argument boxes int into`
	variadic(n, n)  // want `argument boxes int into` `argument boxes int into`
	variadic(sl...) // forwarding a slice, no boxing
	sink(nil)       // nil never boxes
	sink(e)         // already an interface
	_ = sinkErr(nil)
}

// panicPath: panic arguments are by definition cold, the whole subtree
// is exempt.
//
//dp:hotpath
func panicPath(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n))
	}
}

// arena is the reuse idiom: reslice to zero length, append within the
// provisioned capacity.
//
//dp:hotpath
func arena(e *enum, xs []uint64) {
	buf := e.buf[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	e.buf = append(e.buf[:0], buf...)
}

//dp:hotpath
func growingAppend(e *enum, x uint64) {
	e.buf = append(e.buf, x) // want `append may grow its backing array on a //dp:hotpath function`
	var out []uint64
	out = append(out, x) // want `append may grow its backing array on a //dp:hotpath function`
	_ = out
}

// root has no allocation itself; the finding surfaces in its
// unannotated static callee, pulled in by the closure walk.
//
//dp:hotpath
func root(e *enum) {
	callee(e)
	coldGrow(e)
}

func callee(e *enum) {
	e.buf = append(e.buf, 1) // want `append may grow its backing array on a //dp:hotpath function`
}

// coldGrow is the annotated slow path: the closure walk stops here, so
// its allocations are deliberate and unreported.
//
//dp:coldpath doubling growth is amortized over the enumeration
func coldGrow(e *enum) {
	next := make([]uint64, 0, 2*cap(e.buf)+16)
	e.buf = append(next, e.buf...)
}

//dp:coldpath
func badCold() {} // want `//dp:coldpath requires a justification: //dp:coldpath <reason>`

//dp:hotpath
//dp:coldpath it cannot be both
func conflicted() {} // want `function is marked both //dp:hotpath and //dp:coldpath`

// notHot is unannotated and unreachable from any root: allocate freely.
func notHot() []int {
	return []int{1, 2, 3}
}

// span is fixed-size phase storage, mirroring internal/obs.
type span struct {
	phase uint8
	start int64
	dur   int64
}

// recorder is the observability hook idiom (internal/obs.Trace): a
// nil-receiver-safe recorder whose spans live in a pre-sized array, so
// hot enumeration code may call it at phase boundaries. All of it must
// be finding-free — writing into fixed storage is not an allocation.
type recorder struct {
	n     int32
	spans [8]span
}

//dp:hotpath
func (t *recorder) start(p uint8, now int64) int32 {
	if t == nil || int(t.n) >= len(t.spans) {
		return -1
	}
	h := t.n
	t.n++
	t.spans[h] = span{phase: p, start: now}
	return h
}

//dp:hotpath
func (t *recorder) end(h int32, now int64) {
	if t == nil || h < 0 || h >= t.n {
		return
	}
	t.spans[h].dur = now - t.spans[h].start
}

// traced is a hot function instrumented with the recorder: the span
// hooks ride along the closure walk and stay clean.
//
//dp:hotpath
func traced(e *enum, t *recorder, now int64) {
	h := t.start(1, now)
	e.pairs++
	t.end(h, now)
}

// pairRec mirrors the deferred-pricing record: collected on the hot
// emission path, priced later at a level barrier.
type pairRec struct{ s1, s2 uint64 }

// collector is the pooled-bucket idiom (internal/dp.Builder.DeferPair):
// the record buffer is recycled through a pool, so its capacity
// survives across runs and append growth is a warmup cost, not a
// steady-state allocation. The analyzer cannot see pool lifetimes, so
// the site carries a //nolint with a written justification — the
// suppression (not a finding) is what the test asserts.
type collector struct {
	recs []pairRec
}

//dp:hotpath
func (c *collector) deferPair(s1, s2 uint64) {
	//nolint:hotpathalloc // append into a pooled buffer: capacity survives pool round-trips, so steady state does not grow
	c.recs = append(c.recs, pairRec{s1: s1, s2: s2})
}
