// Package hotpathalloc enforces the //dp:hotpath directive: a function
// so annotated — and every module function it statically calls — must
// not contain allocating constructs. The DP enumerators emit hundreds
// of millions of pairs per plan; a single hidden allocation on that
// path shows up directly in the paper's table-6 throughput numbers and,
// worse, as GC pauses that skew the dpserved latency histograms.
//
// Flagged inside the hotpath closure:
//
//   - composite literals of slice or map type (and & of any composite
//     literal), map/slice/chan make, and new
//   - append calls that can grow their backing array — append is
//     allowed only when the destination is visibly a reslice
//     (append(buf[:0], ...) or an ident previously assigned from a
//     reslice or make in the same function), the arena-reuse idiom
//     used throughout internal/memo
//   - conversions, arguments, and assignments that box a concrete
//     value into an interface (including fmt argument lists)
//   - calls into the fmt package (always allocate)
//   - function literals and go statements (closure capture + stack)
//
// The closure stops at functions annotated //dp:coldpath <reason> —
// the slow path reached once per table growth or per abort, where
// allocation is deliberate. The reason is mandatory. Calls that cannot
// be resolved statically (interface methods, function-typed fields)
// are not followed; the seams that matter here (memo backend,
// hypergraph callbacks) are annotated on the concrete implementations.
//
// Arguments to panic(...) are exempt: constructing the panic message
// allocates, and that path is by definition not hot.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the hotpathalloc invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions annotated //dp:hotpath (and their static callees) must not allocate",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	idx := analysis.FuncIndex(pass.Prog)

	// Invert the index so we can find each decl's package info.
	pkgOf := make(map[*ast.FuncDecl]*analysis.Package)
	for fn, decl := range idx {
		if p := analysis.PackageOf(pass.Prog, fn); p != nil {
			pkgOf[decl] = p
		}
	}

	// Roots: every //dp:hotpath function. Also validate //dp:coldpath
	// reasons while scanning declarations.
	var worklist []*types.Func
	cold := make(map[*types.Func]bool)
	for fn, decl := range idx {
		if reason, ok := analysis.Directive(decl.Doc, "coldpath"); ok {
			cold[fn] = true
			if reason == "" {
				pass.Reportf(decl.Pos(), "//dp:coldpath requires a justification: //dp:coldpath <reason>")
			}
		}
		if analysis.HasDirective(decl.Doc, "hotpath") {
			if cold[fn] {
				pass.Reportf(decl.Pos(), "function is marked both //dp:hotpath and //dp:coldpath")
				continue
			}
			worklist = append(worklist, fn)
		}
	}

	// BFS over static calls from the roots.
	seen := make(map[*types.Func]bool, len(worklist))
	for _, fn := range worklist {
		seen[fn] = true
	}
	for len(worklist) > 0 {
		fn := worklist[0]
		worklist = worklist[1:]
		decl := idx[fn]
		if decl == nil || decl.Body == nil {
			continue
		}
		pkg := pkgOf[decl]
		if pkg == nil {
			continue
		}
		for _, callee := range checkFunc(pass, pkg, decl) {
			if seen[callee] || cold[callee] {
				continue
			}
			if idx[callee] == nil {
				continue // outside the module (stdlib); fmt is flagged at the call site
			}
			seen[callee] = true
			worklist = append(worklist, callee)
		}
	}
	return nil
}

// checkFunc reports allocation findings inside one hotpath function and
// returns its statically resolvable callees.
func checkFunc(pass *analysis.Pass, pkg *analysis.Package, decl *ast.FuncDecl) []*types.Func {
	info := pkg.Info
	resliced := reslicedIdents(info, decl.Body)
	var callees []*types.Func

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := info.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates on a //dp:hotpath function")
				return false
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates on a //dp:hotpath function")
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal escapes to the heap on a //dp:hotpath function")
					return false
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal allocates a closure on a //dp:hotpath function")
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement on a //dp:hotpath function")
			return false
		case *ast.CallExpr:
			stop, cs := checkCall(pass, info, n, resliced)
			callees = append(callees, cs...)
			if stop {
				return false
			}
		}
		return true
	}

	// Walk statements, skipping panic(...) argument subtrees entirely.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPanic(info, call) {
			return false
		}
		if n == nil {
			return true
		}
		return visit(n)
	})
	return callees
}

// checkCall handles the call-shaped findings: builtin allocators,
// append growth, fmt calls, interface-boxing arguments. It returns
// whether the walk should skip the call's children and any resolved
// module callees.
func checkCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, resliced map[types.Object]bool) (stop bool, callees []*types.Func) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates on a //dp:hotpath function")
			case "new":
				pass.Reportf(call.Pos(), "new allocates on a //dp:hotpath function")
			case "append":
				if !appendAllowed(info, call, resliced) {
					pass.Reportf(call.Pos(), "append may grow its backing array on a //dp:hotpath function; reuse a presized buffer")
				}
			}
			return false, nil
		}
	}
	if analysis.IsPkgCall(info, call, "fmt") {
		pass.Reportf(call.Pos(), "fmt call allocates on a //dp:hotpath function")
		return true, nil // arguments box into ...any; one finding is enough
	}
	// Interface boxing through argument passing.
	if sig := analysis.CallSignature(info, call); sig != nil {
		checkBoxedArgs(pass, info, call, sig)
	}
	if fn := analysis.FuncForCall(info, call); fn != nil {
		callees = append(callees, fn)
	}
	return false, callees
}

// checkBoxedArgs flags concrete-typed arguments passed to interface
// parameters: each such call boxes the value on the heap.
func checkBoxedArgs(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) || isNil(info, arg) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into %s on a //dp:hotpath function", at, pt)
	}
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// appendAllowed implements the arena idiom: append is fine when its
// destination is visibly a reslice (append(x[:n], ...)) or an ident
// that was assigned from a reslice or make earlier in the function —
// capacity was provisioned; steady-state appends don't grow.
func appendAllowed(info *types.Info, call *ast.CallExpr, resliced map[types.Object]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		if obj := info.Uses[dst]; obj != nil && resliced[obj] {
			return true
		}
	case *ast.SelectorExpr:
		// Arena fields (e.arena = append(e.arena, ...)) grow amortized;
		// those sites carry explicit nolint comments instead.
		return false
	}
	return false
}

// reslicedIdents collects local identifiers assigned from a reslice or
// make anywhere in the function body (order is not tracked; the idiom
// is `buf := s.buf[:0]` at function entry).
func reslicedIdents(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if !provisioned(info, as.Rhs[i]) {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// provisioned reports whether e visibly provides capacity: a reslice, a
// make call, or an append chain rooted at one.
func provisioned(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				if b.Name() == "make" {
					return true
				}
				if b.Name() == "append" && len(e.Args) > 0 {
					return provisioned(info, e.Args[0])
				}
			}
		}
	}
	return false
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
