// Package bitsetwidth enforces the opacity of bitset.Set outside its
// owning package: no code elsewhere may assume the word count, index
// into words, or otherwise touch the representation. Since the
// multi-word widening (a single-word fast path plus a []uint64 tail for
// elements ≥ 64), Set is a non-comparable struct, so the guarded
// invariant moved with it:
//
//   - conversions between Set and integer types, and integer literals
//     becoming Sets, are flagged (the representation is not a number);
//   - word-level operators (shifts, masks, arithmetic, ordering
//     comparisons) on Set operands are flagged;
//   - equality operators (==, !=) on Set are now flagged too: the
//     compiler rejects them on the slice-bearing struct, but the
//     analyzer reports them first with a clearer message (use
//     Equal/IsEmpty), and it also catches the interface-boxed form the
//     compiler accepts and the runtime panics on;
//   - map types keyed by Set are flagged: key by Set.Key() instead.
//
// Every diagnostic is a site that silently assumed the historical
// single-word representation. Suppress individual sites with
// //nolint:bitsetwidth // <reason>; the suppressed count is still
// reported by `dplint -json` so the worklist stays visible.
package bitsetwidth

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the bitsetwidth invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "bitsetwidth",
	Doc:  "flag code outside internal/bitset that assumes the Set representation (word math, comparability, map keys)",
	Run:  run,
}

// bitsetPkg is the package (matched by import-path suffix) that owns
// the Set representation and is therefore exempt.
const bitsetPkg = "internal/bitset"

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		if analysis.PathHasSuffix(pkg.Path, bitsetPkg) {
			continue
		}
		for _, f := range pkg.Files {
			checkFile(pass, pkg, f)
		}
	}
	return nil
}

func checkFile(pass *analysis.Pass, pkg *analysis.Package, f *ast.File) {
	info := pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkConversion(pass, info, n)
		case *ast.BinaryExpr:
			checkBinary(pass, info, n)
		case *ast.UnaryExpr:
			if wordOp(n.Op) && isSet(info, n.X) {
				pass.Reportf(n.Pos(), "unary %s on bitset.Set assumes the single-word representation; add a bitset method instead", n.Op)
			}
		case *ast.MapType:
			if tv, ok := info.Types[n.Key]; ok && tv.Type != nil && setType(tv.Type) {
				pass.Reportf(n.Key.Pos(), "bitset.Set is not comparable and cannot key a map; key by Set.Key()")
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && isSet(info, n.Tag) {
				pass.Reportf(n.Tag.Pos(), "switch on bitset.Set requires comparability; compare cases with Equal")
			}
		}
		return true
	})
}

// checkConversion flags T(x) where exactly one of T and x's type is
// bitset.Set and the other is an integer.
func checkConversion(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := tv.Type
	arg := call.Args[0]
	src := info.Types[arg].Type
	if src == nil {
		return
	}
	switch {
	case setType(dst):
		// For an untyped constant operand go/types records the converted
		// type, so Set(1) shows src == Set: test constant-ness first.
		if isUntypedConst(info, arg) || (!setType(src) && isInteger(src)) {
			pass.Reportf(call.Pos(), "integer converted to bitset.Set; construct sets through the bitset API")
		}
	case setType(src) && !setType(dst) && isInteger(dst):
		pass.Reportf(call.Pos(), "bitset.Set converted to %s exposes the single-word representation", dst)
	}
}

func checkBinary(pass *analysis.Pass, info *types.Info, b *ast.BinaryExpr) {
	if b.Op == token.EQL || b.Op == token.NEQ {
		if isSet(info, b.X) || isSet(info, b.Y) {
			pass.Reportf(b.OpPos, "equality %s on bitset.Set; the multi-word Set is not comparable — use Equal (or IsEmpty)", b.Op)
		}
		return
	}
	if !wordOp(b.Op) {
		return
	}
	if isSet(info, b.X) || isSet(info, b.Y) {
		what := "operator"
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			what = "ordering comparison"
		case token.SHL, token.SHR:
			what = "shift"
		}
		pass.Reportf(b.OpPos, "%s %s on bitset.Set assumes the single-word representation; use a bitset method", what, b.Op)
	}
}

// wordOp reports whether op only makes sense on the raw machine word.
// Equality is handled separately (it gets its own diagnostic).
func wordOp(op token.Token) bool {
	switch op {
	case token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT,
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func isSet(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	return t != nil && setType(t)
}

func setType(t types.Type) bool {
	return analysis.NamedPathSuffix(t, "Set", bitsetPkg)
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isUntypedConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
