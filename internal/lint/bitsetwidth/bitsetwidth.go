// Package bitsetwidth flags expressions outside internal/bitset that
// treat bitset.Set as a raw uint64: conversions between Set and integer
// types, integer literals becoming Sets, and word-level operators
// (shifts, masks, arithmetic, ordering comparisons) applied to Set
// operands.
//
// bitset.Set is a single machine word today, which caps queries at 64
// relations (ROADMAP item 1). Every site this analyzer reports is a
// place that would break silently if Set became a multi-word struct —
// the analyzer's output is the mechanical worklist for that refactor,
// tracked in LINT_BASELINE.json. Equality comparisons (==, !=) are
// allowed: they survive any representation change that keeps Set
// comparable.
//
// Suppress individual sites with //nolint:bitsetwidth // <reason>; the
// suppressed count is still reported by `dplint -json` so the worklist
// stays visible.
package bitsetwidth

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the bitsetwidth invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "bitsetwidth",
	Doc:  "flag code outside internal/bitset that assumes bitset.Set is a raw uint64",
	Run:  run,
}

// bitsetPkg is the package (matched by import-path suffix) that owns
// the Set representation and is therefore exempt.
const bitsetPkg = "internal/bitset"

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		if analysis.PathHasSuffix(pkg.Path, bitsetPkg) {
			continue
		}
		for _, f := range pkg.Files {
			checkFile(pass, pkg, f)
		}
	}
	return nil
}

func checkFile(pass *analysis.Pass, pkg *analysis.Package, f *ast.File) {
	info := pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkConversion(pass, info, n)
		case *ast.BinaryExpr:
			checkBinary(pass, info, n)
		case *ast.UnaryExpr:
			if wordOp(n.Op) && isSet(info, n.X) {
				pass.Reportf(n.Pos(), "unary %s on bitset.Set assumes the single-word representation; add a bitset method instead", n.Op)
			}
		}
		return true
	})
}

// checkConversion flags T(x) where exactly one of T and x's type is
// bitset.Set and the other is an integer.
func checkConversion(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := tv.Type
	arg := call.Args[0]
	src := info.Types[arg].Type
	if src == nil {
		return
	}
	switch {
	case setType(dst):
		// For an untyped constant operand go/types records the converted
		// type, so Set(1) shows src == Set: test constant-ness first.
		if isUntypedConst(info, arg) || (!setType(src) && isInteger(src)) {
			pass.Reportf(call.Pos(), "integer converted to bitset.Set; construct sets through the bitset API")
		}
	case setType(src) && !setType(dst) && isInteger(dst):
		pass.Reportf(call.Pos(), "bitset.Set converted to %s exposes the single-word representation", dst)
	}
}

func checkBinary(pass *analysis.Pass, info *types.Info, b *ast.BinaryExpr) {
	if !wordOp(b.Op) {
		return
	}
	if isSet(info, b.X) || isSet(info, b.Y) {
		what := "operator"
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			what = "ordering comparison"
		case token.SHL, token.SHR:
			what = "shift"
		}
		pass.Reportf(b.OpPos, "%s %s on bitset.Set assumes the single-word representation; use a bitset method", what, b.Op)
	}
}

// wordOp reports whether op only makes sense on the raw machine word.
// Equality survives any comparable representation and is allowed.
func wordOp(op token.Token) bool {
	switch op {
	case token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT,
		token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

func isSet(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	return t != nil && setType(t)
}

func setType(t types.Type) bool {
	return analysis.NamedPathSuffix(t, "Set", bitsetPkg)
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isUntypedConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
