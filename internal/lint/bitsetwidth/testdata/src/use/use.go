// Package use exercises bitsetwidth outside the owning package.
package use

import "internal/bitset"

type mySet = bitset.Set

func conversions(s bitset.Set, n uint64) {
	_ = bitset.Set(1)       // want `integer converted to bitset\.Set`
	_ = bitset.Set(n)       // want `integer converted to bitset\.Set`
	_ = uint64(s)           // want `bitset\.Set converted to uint64`
	_ = int(s)              // want `bitset\.Set converted to int`
	_ = mySet(n)            // want `integer converted to bitset\.Set`
	_ = bitset.Set(s)       // identity conversion: no finding
	_ = float64(len(elems)) // unrelated conversion: no finding
	_ = bitset.Word(s)      // plain call, not a conversion
}

var elems []int

func operators(s, t bitset.Set) {
	_ = s < t  // want `ordering comparison < on bitset\.Set`
	_ = s >= t // want `ordering comparison >= on bitset\.Set`
	_ = s << 3 // want `shift << on bitset\.Set`
	_ = s & t  // want `operator & on bitset\.Set`
	_ = s + 1  // want `operator \+ on bitset\.Set`
	_ = -s     // want `unary - on bitset\.Set`
	_ = s == t // equality survives representation changes: no finding
	_ = s != t
	_ = s.Less(t) // the sanctioned form
}

func suppressed(s bitset.Set) {
	_ = uint64(s) //nolint:bitsetwidth // fibonacci hashing worklist, tracked in LINT_BASELINE.json
	_ = uint64(s) //nolint:bitsetwidth
	_ = s < 0     //nolint:dplint // reason covering every analyzer
}
