// Package use exercises bitsetwidth outside the owning package.
package use

import "internal/bitset"

type mySet = bitset.Set

func conversions(s bitset.Set, n uint64) {
	_ = bitset.Set(1)       // want `integer converted to bitset\.Set`
	_ = bitset.Set(n)       // want `integer converted to bitset\.Set`
	_ = uint64(s)           // want `bitset\.Set converted to uint64`
	_ = int(s)              // want `bitset\.Set converted to int`
	_ = mySet(n)            // want `integer converted to bitset\.Set`
	_ = bitset.Set(s)       // identity conversion: no finding
	_ = float64(len(elems)) // unrelated conversion: no finding
	_ = bitset.Word(s)      // plain call, not a conversion
}

var elems []int

func operators(s, t bitset.Set) {
	_ = s < t      // want `ordering comparison < on bitset\.Set`
	_ = s >= t     // want `ordering comparison >= on bitset\.Set`
	_ = s << 3     // want `shift << on bitset\.Set`
	_ = s & t      // want `operator & on bitset\.Set`
	_ = s + 1      // want `operator \+ on bitset\.Set`
	_ = -s         // want `unary - on bitset\.Set`
	_ = s == t     // want `equality == on bitset\.Set`
	_ = s != t     // want `equality != on bitset\.Set`
	_ = s.Less(t)  // the sanctioned forms
	_ = s.Equal(t) // (the stub's Set is comparable so the compiler is silent;
	// the real multi-word Set makes == a compile error — the analyzer
	// reports it first, with the migration hint)
}

// comparability exercises the representation-independence checks that
// replaced the old ==/!= allowance.
func comparability(s, t bitset.Set) {
	var seen map[bitset.Set]int // want `bitset\.Set is not comparable and cannot key a map`
	_ = seen
	type pair struct{ a, b bitset.Set }
	byPair := map[mySet][]pair{} // want `bitset\.Set is not comparable and cannot key a map`
	_ = byPair
	good := map[string]pair{} // keyed by Set.Key(): no finding
	_ = good
	switch s { // want `switch on bitset\.Set requires comparability`
	case t:
	}
}

func suppressed(s bitset.Set) {
	_ = uint64(s) //nolint:bitsetwidth // fibonacci hashing worklist, tracked in LINT_BASELINE.json
	_ = uint64(s) //nolint:bitsetwidth
	_ = s < 0     //nolint:dplint // reason covering every analyzer
}
