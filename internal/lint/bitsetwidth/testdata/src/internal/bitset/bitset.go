// Package bitset is a minimal stand-in for repro/internal/bitset: the
// analyzer matches the package by import-path suffix, so this stub
// exercises both the Set-type detection and the own-package exemption.
package bitset

type Set uint64

// Less lives inside the owning package: raw word operations here must
// not be reported.
func (s Set) Less(t Set) bool { return s < t }

// Word does arbitrary word math, all exempt in this package.
func Word(s Set) Set { return (s << 1) & (s - 1) }

// Equal is the sanctioned comparison of the real multi-word Set.
func (s Set) Equal(t Set) bool { return s == t }

// Key is the sanctioned map key of the real multi-word Set.
func (s Set) Key() string { return "" }
