package bitsetwidth_test

import (
	"strings"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/bitsetwidth"
)

func TestBitsetWidth(t *testing.T) {
	diags := analysistest.RunFull(t, "testdata/src", bitsetwidth.Analyzer)

	// The suppressed() block: three findings silenced by nolint (one per
	// line), one of which lacks a justification and is itself reported.
	var suppressed, malformed int
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if d.Analyzer == "bitsetwidth" && d.Reason != "" && !strings.Contains(d.Reason, "worklist") && !strings.Contains(d.Reason, "reason") {
				t.Errorf("%s: unexpected suppression reason %q", d.Position, d.Reason)
			}
		}
		if d.Analyzer == "nolint" {
			malformed++
			if !strings.Contains(d.Message, "without a justification") {
				t.Errorf("%s: unexpected nolint message %q", d.Position, d.Message)
			}
		}
	}
	if suppressed != 3 {
		t.Errorf("suppressed findings = %d, want 3", suppressed)
	}
	if malformed != 1 {
		t.Errorf("malformed nolint findings = %d, want 1", malformed)
	}
}
