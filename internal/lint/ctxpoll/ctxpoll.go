// Package ctxpoll checks that enumeration loops stay cancellable: in
// the solver and engine packages, any loop that emits work into the
// memo (EmitPair, EmitBase, ...) must also reach a cancellation poll
// (Step or Aborted) on every iteration. A loop that emits but never
// polls can run for seconds past a context cancellation or budget trip
// — dpsub alone enumerates 3^n subproblems — which breaks the
// dpserved latency contract.
//
// A loop satisfies the invariant when any of the following holds:
//
//   - its body (or, for a for-statement, its condition) contains a
//     direct call to a poll function;
//   - its body calls a module function that polls at entry — the
//     recursive enumerators (dpccp's enumerateCsgRec, dphyp's
//     emitCsg) open with `if !e.Step() { return }`, which polls once
//     per call and therefore once per loop iteration;
//   - the emits themselves only happen inside such poll-at-entry
//     callees.
//
// Function literals nested in a loop body are scanned separately, not
// as part of the loop: a loop that spawns worker goroutines is not
// itself the iteration that must poll.
//
// Emitters are matched by method/function name rather than by resolved
// callee because several solvers emit through function-typed fields
// (s.emit(...)), which no static resolver can follow; the names are
// specific enough that false positives name a function the reader
// should rename anyway.
package ctxpoll

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the ctxpoll invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "loops that emit plan pairs must poll for cancellation every iteration",
	Run:  run,
}

// pkgSuffixes are the enumeration packages the invariant applies to,
// matched by import-path suffix.
var pkgSuffixes = []string{
	"internal/core",
	"internal/dpsize",
	"internal/dpsub",
	"internal/dpccp",
	"internal/topdown",
	"internal/goo",
	"internal/memo",
	"internal/dp",
}

// emitNames are the calls that count as emitting work; pollNames the
// calls that count as a cancellation poll.
var emitNames = map[string]bool{
	"EmitPair":      true,
	"EmitBase":      true,
	"EmitDeferred":  true,
	"BuildDeferred": true,
	"emit":          true,
}

var pollNames = map[string]bool{
	"Step":    true,
	"Aborted": true,
}

// funcFacts summarizes one module function for the loop check.
type funcFacts struct {
	// pollsAtEntry: the first statement of the body polls, so every
	// call to this function is itself a poll.
	pollsAtEntry bool
	// emits: the body (transitively, through static calls) reaches an
	// emitter without an interposed poll-at-entry callee.
	emits bool
	// calls are the statically resolvable module callees.
	calls []*types.Func
}

func run(pass *analysis.Pass) error {
	idx := analysis.FuncIndex(pass.Prog)

	// Pass 1: direct facts per declared function.
	facts := make(map[*types.Func]*funcFacts, len(idx))
	for fn, decl := range idx {
		facts[fn] = summarize(pass.Prog, fn, decl)
	}

	// Pass 2: propagate emits through static calls, stopping at
	// poll-at-entry callees (those repolarize the loop: one poll per
	// call covers the emission inside).
	for changed := true; changed; {
		changed = false
		for _, f := range facts {
			if f.emits {
				continue
			}
			for _, callee := range f.calls {
				cf := facts[callee]
				if cf != nil && cf.emits && !cf.pollsAtEntry {
					f.emits = true
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: check every loop in the target packages.
	for _, pkg := range pass.Prog.Pkgs {
		if !targetPkg(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			checkFile(pass, pkg, file, facts)
		}
	}
	return nil
}

func targetPkg(path string) bool {
	for _, s := range pkgSuffixes {
		if analysis.PathHasSuffix(path, s) {
			return true
		}
	}
	return false
}

// summarize computes the direct (non-transitive) facts of one function.
func summarize(prog *analysis.Program, fn *types.Func, decl *ast.FuncDecl) *funcFacts {
	f := &funcFacts{}
	if decl.Body == nil {
		return f
	}
	pkg := analysis.PackageOf(prog, fn)
	if pkg == nil {
		return f
	}
	info := pkg.Info
	if len(decl.Body.List) > 0 && containsPoll(decl.Body.List[0]) {
		f.pollsAtEntry = true
	}
	inspectSkippingFuncLits(decl.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if name, ok := callName(call); ok && emitNames[name] {
			f.emits = true
		}
		if callee := analysis.FuncForCall(info, call); callee != nil {
			f.calls = append(f.calls, callee)
		}
	})
	return f
}

func checkFile(pass *analysis.Pass, pkg *analysis.Package, file *ast.File, facts map[*types.Func]*funcFacts) {
	info := pkg.Info
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var cond ast.Expr
		switch l := n.(type) {
		case *ast.ForStmt:
			body, cond = l.Body, l.Cond
		case *ast.RangeStmt:
			body = l.Body
		default:
			return true
		}
		if !loopEmits(info, body, facts) {
			return true
		}
		if loopPolls(info, body, cond, facts) {
			return true
		}
		pass.Reportf(n.Pos(),
			"loop emits plan pairs but never polls for cancellation; call Step/Aborted each iteration")
		return true
	})
}

// loopEmits reports whether the loop body (excluding nested function
// literals) calls an emitter directly or through a non-polling callee.
func loopEmits(info *types.Info, body *ast.BlockStmt, facts map[*types.Func]*funcFacts) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return
		}
		if name, ok := callName(call); ok && emitNames[name] {
			found = true
			return
		}
		if callee := analysis.FuncForCall(info, call); callee != nil {
			if f := facts[callee]; f != nil && f.emits && !f.pollsAtEntry {
				found = true
			}
		}
	})
	return found
}

// loopPolls reports whether the loop reaches a poll each iteration: a
// direct poll call in the body or condition, or a call to a
// poll-at-entry module function.
func loopPolls(info *types.Info, body *ast.BlockStmt, cond ast.Expr, facts map[*types.Func]*funcFacts) bool {
	if cond != nil && exprPolls(cond) {
		return true
	}
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return
		}
		if name, ok := callName(call); ok && pollNames[name] {
			found = true
			return
		}
		if callee := analysis.FuncForCall(info, call); callee != nil {
			if f := facts[callee]; f != nil && f.pollsAtEntry {
				found = true
			}
		}
	})
	return found
}

// containsPoll reports whether the statement contains a direct call to
// a poll function (used for the poll-at-entry test on a function's
// first statement).
func containsPoll(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := callName(call); ok && pollNames[name] {
				found = true
			}
		}
		return true
	})
	return found
}

func exprPolls(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := callName(call); ok && pollNames[name] {
				found = true
			}
		}
		return true
	})
	return found
}

// callName extracts the bare name being called: Step for e.Step(...),
// emit for s.emit(...) or emit(...).
func callName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// inspectSkippingFuncLits walks the subtree calling fn on every node,
// without descending into function literals.
func inspectSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
