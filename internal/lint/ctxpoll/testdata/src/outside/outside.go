// Package outside is not in ctxpoll's target-package list: identical
// unpolled loops must not be reported here.
package outside

import "internal/memo"

func unpolledButExempt(e *memo.Engine, sets []uint64) {
	for _, s := range sets {
		e.EmitPair(s, s)
	}
}
