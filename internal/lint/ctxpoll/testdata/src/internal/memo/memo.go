// Package memo is a minimal engine stand-in: ctxpoll matches emitters
// and polls by name, so only the method set matters.
package memo

type Engine struct{ aborted bool }

func (e *Engine) Step() bool     { return !e.aborted }
func (e *Engine) Aborted() error { return nil }

func (e *Engine) EmitPair(s1, s2 uint64) {}
func (e *Engine) EmitBase(rel int)       {}
