// Package dpsub exercises ctxpoll's loop checks inside a target
// package (matched by the internal/dpsub path suffix).
package dpsub

import "internal/memo"

type solver struct {
	e    *memo.Engine
	emit func(s1, s2 uint64)
}

func polled(e *memo.Engine, sets []uint64) {
	for _, s := range sets {
		if !e.Step() {
			return
		}
		e.EmitPair(s, s)
	}
}

func unpolled(e *memo.Engine, sets []uint64) {
	for _, s := range sets { // want `loop emits plan pairs but never polls`
		e.EmitPair(s, s)
	}
}

func condPolled(e *memo.Engine, n uint64) {
	for i := uint64(0); i < n && e.Aborted() == nil; i++ {
		e.EmitPair(i, i)
	}
}

// fieldEmitUnpolled emits through a function-typed field: resolvable by
// name only, which is exactly why emitters are name-matched.
func (s *solver) fieldEmitUnpolled(sets []uint64) {
	for _, x := range sets { // want `loop emits plan pairs but never polls`
		s.emit(x, x)
	}
}

// rec polls at entry, so every call is itself a poll.
func (s *solver) rec(x uint64) {
	if !s.e.Step() {
		return
	}
	s.e.EmitPair(x, x)
	s.rec(x + 1)
}

// viaPollAtEntry's loop emits only through rec, which polls at entry:
// one poll per iteration, no finding.
func (s *solver) viaPollAtEntry(sets []uint64) {
	for _, x := range sets {
		s.rec(x)
	}
}

// helper emits without polling; callers inherit the obligation.
func helper(e *memo.Engine, x uint64) {
	e.EmitPair(x, x)
}

func viaHelperUnpolled(e *memo.Engine, sets []uint64) {
	for _, x := range sets { // want `loop emits plan pairs but never polls`
		helper(e, x)
	}
}

func viaHelperPolled(e *memo.Engine, sets []uint64) {
	for _, x := range sets {
		if !e.Step() {
			return
		}
		helper(e, x)
	}
}

// spawner's loop only starts goroutines; the emitting loop lives in the
// literal, which polls. The outer loop itself must not be flagged.
func spawner(e *memo.Engine, sets []uint64) {
	for range [4]int{} {
		go func() {
			for _, x := range sets {
				if !e.Step() {
					return
				}
				e.EmitPair(x, x)
			}
		}()
	}
}

// unpolledLit: the literal's own loop emits without polling and is
// scanned as its own function body.
func unpolledLit(e *memo.Engine, sets []uint64) func() {
	return func() {
		for _, x := range sets { // want `loop emits plan pairs but never polls`
			e.EmitPair(x, x)
		}
	}
}
