package ctxpoll_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ctxpoll"
)

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, "testdata/src", ctxpoll.Analyzer)
}
