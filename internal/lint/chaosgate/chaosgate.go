// Package chaosgate checks that every fault-injection point stays free
// when disarmed: a call to chaos.Inject anywhere outside the chaos
// package itself must sit inside the body of an `if chaos.Armed()`
// guard. Inject takes the package lock and consults the fault table —
// acceptable in a chaos test, not in a production enumeration loop —
// while Armed is one atomic load. The guard is what keeps the harness
// from quietly growing into an unconditional tax on the hot paths
// (chaos.go documents the contract; this analyzer enforces it).
//
// The guard must be the block form, with the Inject call reached
// through the if's body:
//
//	if chaos.Armed() {
//		if err := chaos.Inject(chaos.SiteEnumerate); err != nil { ... }
//	}
//
// A compound condition (`if chaos.Armed() && once {`) still counts. A
// guard does not extend into nested function literals — the literal
// runs later, when the armed check may no longer hold, so it needs its
// own guard.
package chaosgate

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// Analyzer is the chaosgate invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "chaosgate",
	Doc:  "chaos.Inject must be guarded by an if chaos.Armed() block",
	Run:  run,
}

// chaosPkg is the import-path suffix of the fault-injection harness.
const chaosPkg = "internal/chaos"

func run(pass *analysis.Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		if analysis.PathHasSuffix(pkg.Path, chaosPkg) {
			continue // the harness may call itself freely
		}
		for _, file := range pkg.Files {
			checkFile(pass, pkg, file)
		}
	}
	return nil
}

func checkFile(pass *analysis.Pass, pkg *analysis.Package, file *ast.File) {
	analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isChaosCall(pkg, call, "Inject") {
			return true
		}
		if !armedGuarded(pkg, stack) {
			pass.Reportf(call.Pos(),
				"chaos.Inject outside an `if chaos.Armed()` guard; the disarmed path must cost one atomic load")
		}
		return true
	})
}

// armedGuarded reports whether the node at the top of stack is reached
// through the body of an if statement whose condition calls
// chaos.Armed. The search stops at function literals: a guard outside
// the literal does not cover the literal's later execution.
func armedGuarded(pkg *analysis.Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			// Guarded only when the path descends into the if's body —
			// not its condition, init, or else branch.
			if i+1 < len(stack) && stack[i+1] == s.Body && condArmed(pkg, s.Cond) {
				return true
			}
		}
	}
	return false
}

// condArmed reports whether the condition expression contains a call to
// chaos.Armed.
func condArmed(pkg *analysis.Package, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isChaosCall(pkg, call, "Armed") {
			found = true
		}
		return true
	})
	return found
}

// isChaosCall reports whether the call statically resolves to the named
// function of the chaos package.
func isChaosCall(pkg *analysis.Package, call *ast.CallExpr, name string) bool {
	fn := analysis.FuncForCall(pkg.Info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return analysis.PathHasSuffix(fn.Pkg().Path(), chaosPkg)
}
