package chaosgate_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/chaosgate"
)

func TestChaosgate(t *testing.T) {
	analysistest.Run(t, "testdata/src", chaosgate.Analyzer)
}
