// Package chaos is a minimal stub of the repository's fault-injection
// harness, just enough surface for the chaosgate golden tests.
package chaos

// Site names one injection point.
type Site string

// SiteEnumerate is a stand-in injection site.
const SiteEnumerate Site = "solver.enumerate"

// Armed reports whether any fault is installed.
func Armed() bool { return false }

// Inject visits the site.
func Inject(site Site) error { _ = site; return nil }
