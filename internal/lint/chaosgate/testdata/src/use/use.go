// Package use exercises chaosgate outside the chaos package.
package use

import "internal/chaos"

func guarded() error {
	if chaos.Armed() {
		if err := chaos.Inject(chaos.SiteEnumerate); err != nil {
			return err
		}
	}
	return nil
}

func guardedCompound(once bool) {
	if chaos.Armed() && once {
		_ = chaos.Inject(chaos.SiteEnumerate)
	}
}

func guardedNestedIf() {
	if chaos.Armed() {
		if true {
			_ = chaos.Inject(chaos.SiteEnumerate) // deeper nesting inside the guard is fine
		}
	}
}

func unguarded() {
	_ = chaos.Inject(chaos.SiteEnumerate) // want `chaos\.Inject outside an .if chaos\.Armed\(\). guard`
}

func wrongBranch() {
	if chaos.Armed() {
		_ = 1
	} else {
		_ = chaos.Inject(chaos.SiteEnumerate) // want `chaos\.Inject outside an .if chaos\.Armed\(\). guard`
	}
}

func otherCondition(ready bool) {
	if ready {
		_ = chaos.Inject(chaos.SiteEnumerate) // want `chaos\.Inject outside an .if chaos\.Armed\(\). guard`
	}
}

func negatedGuard() error {
	// The early-return form is NOT recognized: the analyzer demands the
	// block form so the guard is visible at the call site.
	if !chaos.Armed() {
		return nil
	}
	return chaos.Inject(chaos.SiteEnumerate) // want `chaos\.Inject outside an .if chaos\.Armed\(\). guard`
}

func literalEscapes() func() {
	if chaos.Armed() {
		return func() {
			_ = chaos.Inject(chaos.SiteEnumerate) // want `chaos\.Inject outside an .if chaos\.Armed\(\). guard`
		}
	}
	return nil
}

func literalWithOwnGuard() func() {
	return func() {
		if chaos.Armed() {
			_ = chaos.Inject(chaos.SiteEnumerate) // literal re-checks: fine
		}
	}
}

// Armed and Inject names from unrelated types must not confuse the
// analyzer.
type other struct{}

func (other) Armed() bool           { return true }
func (other) Inject(s string) error { _ = s; return nil }

func unrelated(o other) {
	if o.Armed() {
		_ = o.Inject("x") // not the chaos package: no finding
	}
	_ = o.Inject("y") // not the chaos package: no finding
}
