package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule loads every package of the Go module rooted at dir: the
// module path is read from go.mod, each directory containing non-test
// .go files becomes a package, and the packages are parsed and
// type-checked in dependency order. Standard-library imports resolve
// through the toolchain's export data (no network, no module cache).
func LoadModule(dir string) (*Program, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", dir)
	}
	dirs := make(map[string]string)
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(dir, path)
			if err != nil {
				return err
			}
			imp := modPath
			if rel != "." {
				imp = modPath + "/" + filepath.ToSlash(rel)
			}
			dirs[imp] = path
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return load(dirs)
}

// LoadTree loads the GOPATH-style source tree under srcRoot: every
// directory with .go files becomes a package whose import path is its
// path relative to srcRoot. The analyzer tests use this to type-check
// golden testdata packages (testdata/src/...).
func LoadTree(srcRoot string) (*Program, error) {
	dirs := make(map[string]string)
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() || strings.HasPrefix(d.Name(), ".") {
			if d.IsDir() {
				return filepath.SkipDir
			}
			return nil
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(srcRoot, path)
			if err != nil {
				return err
			}
			dirs[filepath.ToSlash(rel)] = path
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no Go packages under %s", srcRoot)
	}
	return load(dirs)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if goSource(e) {
			return true
		}
	}
	return false
}

func goSource(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

// load parses and type-checks the packages in dirs (import path ->
// directory), resolving imports among them and delegating the rest to
// the compiler's export data.
func load(dirs map[string]string) (*Program, error) {
	fset := token.NewFileSet()
	parsed := make(map[string]*Package, len(dirs))
	for imp, dir := range dirs {
		pkg, err := parseDir(fset, imp, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			parsed[imp] = pkg
		}
	}

	// Topologically order by intra-load imports so dependencies
	// type-check first.
	order := make([]string, 0, len(parsed))
	state := make(map[string]int, len(parsed)) // 0 new, 1 visiting, 2 done
	var visit func(string) error
	visit = func(imp string) error {
		switch state[imp] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", imp)
		case 2:
			return nil
		}
		state[imp] = 1
		for _, dep := range importsOf(parsed[imp]) {
			if _, ok := parsed[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[imp] = 2
		order = append(order, imp)
		return nil
	}
	roots := make([]string, 0, len(parsed))
	for imp := range parsed {
		roots = append(roots, imp)
	}
	sort.Strings(roots)
	for _, imp := range roots {
		if err := visit(imp); err != nil {
			return nil, err
		}
	}

	imp := &chainImporter{
		loaded: make(map[string]*types.Package, len(parsed)),
		std:    importer.ForCompiler(fset, "gc", nil),
		fset:   fset,
	}
	prog := &Program{Fset: fset}
	for _, path := range order {
		pkg := parsed[path]
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
		}
		pkg.Types = tpkg
		imp.loaded[path] = tpkg
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

func parseDir(fset *token.FileSet, imp, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: imp, Dir: dir}
	for _, e := range ents {
		if !goSource(e) {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

func importsOf(pkg *Package) []string {
	var out []string
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			out = append(out, strings.Trim(spec.Path.Value, `"`))
		}
	}
	return out
}

// chainImporter resolves imports of loaded packages from the in-memory
// type-check results and everything else (the standard library) from
// the compiler's export data, falling back to type-checking the
// dependency from GOROOT source when no export data is installed.
type chainImporter struct {
	loaded map[string]*types.Package
	std    types.Importer
	src    types.Importer
	fset   *token.FileSet
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.loaded[path]; ok {
		return pkg, nil
	}
	pkg, err := c.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	if c.src == nil {
		c.src = importer.ForCompiler(c.fset, "source", nil)
	}
	return c.src.Import(path)
}
