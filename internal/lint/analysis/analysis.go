// Package analysis is the minimal static-analysis framework behind the
// dplint invariant suite (cmd/dplint). It mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer owns a name, a doc
// string, and a Run function over a type-checked program — but is built
// entirely on the standard library (go/parser, go/types, go/importer)
// so the repository stays dependency-free.
//
// Differences from x/tools worth knowing:
//
//   - An Analyzer runs over the whole Program at once, not one package
//     at a time. The dplint analyzers are inherently whole-program
//     (call-graph closures from //dp:hotpath roots, field-access scans
//     for //dp:atomic), so program granularity replaces the Facts
//     machinery.
//   - Suppression is handled by the driver, not the analyzers: a
//     finding on a line carrying (or directly below a line carrying)
//     a `//nolint:dplint // reason` or `//nolint:<analyzer> // reason`
//     comment is downgraded to Suppressed. The justification after the
//     second `//` is mandatory; a bare nolint is itself a finding.
//
// The directive comments recognized across the repository are:
//
//	//dp:hotpath            this function and everything it statically
//	                        calls inside the module must not allocate
//	//dp:coldpath <reason>  stop the hotpath closure here (mandatory
//	                        justification: amortized growth, abort path)
//	//dp:atomic             this struct field may only be accessed
//	                        through sync/atomic
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Package is one type-checked package of a loaded Program.
type Package struct {
	// Path is the import path ("repro/internal/memo").
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checking results for Files.
	Info *types.Info
}

// A Program is a load of every package the analyzers see, in
// dependency order (imports precede importers).
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// A Pass carries one analyzer invocation over a program. Findings are
// reported through Reportf; the driver attaches the analyzer name and
// applies nolint suppression afterwards.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// An Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:<name> suppressions.
	Name string
	// Doc is the one-paragraph description shown by `dplint -help`.
	Doc string
	// Run reports the analyzer's findings for the program.
	Run func(*Pass) error
}

// A Diagnostic is one finding, resolved to a file position by the
// driver.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string

	// Position is Pos resolved against the program's FileSet.
	Position token.Position
	// Suppressed marks a finding silenced by a nolint comment; Reason
	// carries the mandatory justification from that comment.
	Suppressed bool
	Reason     string
}

// Run executes every analyzer over prog, resolves positions, applies
// nolint suppression, and returns all diagnostics sorted by position.
// Analyzer errors (not findings) are returned as the error.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Prog: prog}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		all = append(all, pass.diags...)
	}
	sup := newSuppressions(prog)
	all = append(all, sup.malformed...)
	for i := range all {
		all[i].Position = prog.Fset.Position(all[i].Pos)
		if reason, ok := sup.lookup(all[i].Analyzer, all[i].Position); ok {
			all[i].Suppressed = true
			all[i].Reason = reason
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := all[i].Position, all[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// suppressions indexes the nolint comments of a program by file and
// line. A nolint comment silences findings on its own line and — when
// it is the only thing on its line — on the following line.
type suppressions struct {
	// byLine maps file -> line -> (analyzer set, reason).
	byLine    map[string]map[int]nolintEntry
	malformed []Diagnostic
}

type nolintEntry struct {
	names  map[string]bool // nil means all dplint analyzers
	reason string
}

const nolintPrefix = "//nolint:"

func newSuppressions(prog *Program) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]nolintEntry)}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					s.add(prog.Fset, c)
				}
			}
		}
	}
	return s
}

func (s *suppressions) add(fset *token.FileSet, c *ast.Comment) {
	text := c.Text
	if !strings.HasPrefix(text, nolintPrefix) {
		return
	}
	pos := fset.Position(c.Pos())
	rest := text[len(nolintPrefix):]
	spec, reason, ok := strings.Cut(rest, "//")
	reason = strings.TrimSpace(reason)
	if !ok || reason == "" {
		s.malformed = append(s.malformed, Diagnostic{
			Analyzer: "nolint",
			Pos:      c.Pos(),
			Message:  "nolint directive without a justification: write //nolint:" + strings.TrimSpace(spec) + " // <reason>",
		})
		// Malformed suppressions still suppress: the missing reason is
		// already its own finding, and double-reporting the underlying
		// diagnostic would drown it out.
	}
	entry := nolintEntry{reason: reason}
	names := strings.TrimSpace(spec)
	if names != "dplint" && names != "all" {
		entry.names = make(map[string]bool)
		for _, n := range strings.Split(names, ",") {
			entry.names[strings.TrimSpace(n)] = true
		}
	}
	m := s.byLine[pos.Filename]
	if m == nil {
		m = make(map[int]nolintEntry)
		s.byLine[pos.Filename] = m
	}
	// The comment silences findings on its own line (trailing form) and
	// on the following line (standalone form). Distinguishing the two
	// would need raw line text; covering both is harmless and keeps the
	// rule simple.
	m[pos.Line] = entry
	m[pos.Line+1] = entry
}

func (s *suppressions) lookup(analyzer string, pos token.Position) (string, bool) {
	m := s.byLine[pos.Filename]
	if m == nil {
		return "", false
	}
	e, ok := m[pos.Line]
	if !ok {
		return "", false
	}
	if e.names != nil && !e.names[analyzer] {
		return "", false
	}
	return e.reason, true
}

// --- directive helpers -------------------------------------------------

// HasDirective reports whether the doc comment group contains the given
// //dp: directive (exact word match on the first token of a line).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	_, ok := Directive(doc, name)
	return ok
}

// Directive returns the argument text following the named //dp:
// directive in doc ("//dp:coldpath amortized growth" -> "amortized
// growth"), and whether the directive is present.
func Directive(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//dp:" + name
	for _, c := range doc.List {
		if c.Text == prefix {
			return "", true
		}
		if strings.HasPrefix(c.Text, prefix+" ") {
			return strings.TrimSpace(c.Text[len(prefix)+1:]), true
		}
	}
	return "", false
}

// FieldDirective reports whether a struct field carries the directive in
// either its doc comment or its trailing line comment.
func FieldDirective(f *ast.Field, name string) bool {
	return HasDirective(f.Doc, name) || HasDirective(f.Comment, name)
}

// FuncForCall resolves a call expression to the *types.Func it will
// invoke, when that can be decided statically: plain function calls,
// method calls on concrete receivers, and qualified package calls.
// Calls through interfaces, function-typed values, and built-ins return
// nil.
func FuncForCall(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn == nil {
				return nil
			}
			// Interface dispatch cannot be resolved statically.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
