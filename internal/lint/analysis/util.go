package analysis

import (
	"go/ast"
	"go/types"
)

// WithStack walks the subtree rooted at n, calling fn for every node
// with the stack of enclosing nodes (outermost first, not including the
// node itself). Returning false skips the node's children.
func WithStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(node, stack)
		if keep {
			stack = append(stack, node)
		}
		return keep
	})
}

// FuncIndex maps every function and method declared across the program
// to its declaration, so analyzers can chase static calls from a
// *types.Func back to a body.
func FuncIndex(prog *Program) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = fd
				}
			}
		}
	}
	return idx
}

// PackageOf returns the loaded package that declares pos's file, found
// by matching the declaring object's package path.
func PackageOf(prog *Program, obj types.Object) *Package {
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	return prog.Package(obj.Pkg().Path())
}

// CallSignature returns the signature of a (non-conversion) call
// expression, or nil.
func CallSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// IsPkgCall reports whether the call invokes a function belonging to
// the package with the given import path (e.g. "fmt" or "sync/atomic").
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return false
	}
	if _, isSel := info.Selections[sel]; isSel {
		return false // method call, not a package-qualified call
	}
	return obj.Pkg().Path() == pkgPath
}

// NamedPathSuffix reports whether t (or the type it points to) is a
// defined type with the given name whose package path equals suffix or
// ends with "/"+suffix. Aliases are resolved: `type mySet = bitset.Set`
// is still Set.
func NamedPathSuffix(t types.Type, name, suffix string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathHasSuffix(obj.Pkg().Path(), suffix)
}

// PathHasSuffix reports whether an import path equals suffix or ends
// with "/"+suffix.
func PathHasSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}
