// Package analysistest runs a dplint analyzer over a golden source
// tree and compares its findings against expectations embedded in the
// sources, mirroring golang.org/x/tools/go/analysis/analysistest on
// top of the repository's stdlib-only framework.
//
// Expectations are `// want` comments at the end of the line a finding
// is reported on:
//
//	x := bitset.Set(7) // want `integer converted to bitset\.Set`
//
// Each backquoted or double-quoted string after `want` is a regular
// expression; the line must produce exactly that many active findings,
// each matching a distinct pattern. Lines without a want comment must
// produce no active findings. Suppressed findings are not matched
// against want comments — tests covering the //nolint escape hatch
// assert on the Diagnostic slice directly (see RunFull).
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// Run loads the GOPATH-style tree under srcRoot (testdata/src), runs
// the analyzer, and checks its active findings against the tree's
// `// want` comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer) {
	t.Helper()
	RunFull(t, srcRoot, a)
}

// RunFull is Run but returns every diagnostic — suppressed included —
// for additional assertions.
func RunFull(t *testing.T, srcRoot string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	prog, err := analysis.LoadTree(srcRoot)
	if err != nil {
		t.Fatalf("loading %s: %v", srcRoot, err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, prog)

	type key struct {
		file string
		line int
	}
	unmatched := make(map[key][]*want)
	for i := range wants {
		w := &wants[i]
		unmatched[key{w.file, w.line}] = append(unmatched[key{w.file, w.line}], w)
	}
	for _, d := range diags {
		if d.Suppressed || d.Analyzer == "nolint" {
			continue
		}
		k := key{d.Position.Filename, d.Position.Line}
		matched := false
		for _, w := range unmatched[k] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: [%s] %s", d.Position, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.rx)
		}
	}
	return diags
}

type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// collectWants extracts the `// want` expectations from every comment
// in the program.
func collectWants(t *testing.T, prog *analysis.Program) []want {
	t.Helper()
	var out []want
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rxs, err := parseWant(c.Text[idx+len("// want "):])
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					for _, rx := range rxs {
						out = append(out, want{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}
	return out
}

// parseWant parses a sequence of backquoted or double-quoted regexps.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		q := s[0]
		if q != '`' && q != '"' {
			return nil, fmt.Errorf("want: expected quoted regexp, got %q", s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			return nil, fmt.Errorf("want: unterminated %q", s)
		}
		rx, err := regexp.Compile(s[1 : 1+end])
		if err != nil {
			return nil, fmt.Errorf("want: %v", err)
		}
		out = append(out, rx)
		s = s[2+end:]
	}
}
