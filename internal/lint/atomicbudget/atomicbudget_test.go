package atomicbudget_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/atomicbudget"
)

func TestAtomicBudget(t *testing.T) {
	analysistest.Run(t, "testdata/src", atomicbudget.Analyzer)
}
