// Package atomicbudget enforces the //dp:atomic field directive: a
// struct field annotated with it is shared mutable state (the parallel
// enumeration's run-wide budget counters, the planner's metrics) and
// may only be touched through sync/atomic.
//
// Two field shapes are accepted:
//
//   - sync/atomic wrapper types (atomic.Int64, atomic.Uint64,
//     atomic.Bool, ...): the field may only appear as the receiver of a
//     method call (f.Load(), f.Add(1), ...) or behind &. Reading or
//     assigning the field value copies the wrapper, which both races
//     and defeats go vet's copylocks — it is reported here at the
//     access site.
//   - arrays of wrapper types ([N]atomic.Uint64, per-enum-value
//     counters): elements may only appear as method-call receivers
//     (f[i].Add(1)); index-only range and len(f) are allowed, a range
//     value variable (which copies every wrapper) is not.
//   - plain integer fields: every access must be an &f argument to a
//     sync/atomic function (atomic.AddInt64(&s.f, 1)). Any direct read,
//     write, or ++/-- is reported. This catches the PR 5 class of race
//     where a shared budget counter is bumped non-atomically from
//     worker goroutines.
//
// The directive is written on the field's own line (doc comment or
// trailing comment). Composite-literal initialization is not tracked;
// annotated fields are expected to rely on their zero value.
package atomicbudget

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the atomicbudget invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicbudget",
	Doc:  "fields annotated //dp:atomic may only be accessed via sync/atomic",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	fields := collect(pass)
	if len(fields) == 0 {
		return nil
	}
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			checkFile(pass, pkg, f, fields)
		}
	}
	return nil
}

// collect gathers every //dp:atomic-annotated struct field as its
// types.Var, validating the field type while at it.
func collect(pass *analysis.Pass) map[*types.Var]bool {
	fields := make(map[*types.Var]bool)
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, f := range st.Fields.List {
					if !analysis.FieldDirective(f, "atomic") {
						continue
					}
					for _, name := range f.Names {
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if !atomicWrapper(v.Type()) && !wrapperArray(v.Type()) && !plainWord(v.Type()) {
							pass.Reportf(name.Pos(),
								"//dp:atomic field %s has type %s; use a sync/atomic type or an integer accessed via sync/atomic",
								name.Name, v.Type())
							continue
						}
						fields[v] = true
					}
				}
				return true
			})
		}
	}
	return fields
}

func checkFile(pass *analysis.Pass, pkg *analysis.Package, file *ast.File, fields map[*types.Var]bool) {
	info := pkg.Info
	analysis.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, _ := s.Obj().(*types.Var)
		if v == nil || !fields[v] {
			return true
		}
		if !allowedUse(info, sel, stack) {
			how := "through its atomic methods"
			if !atomicWrapper(v.Type()) && !wrapperArray(v.Type()) {
				how = "via sync/atomic functions on its address"
			}
			pass.Reportf(sel.Sel.Pos(),
				"field %s is //dp:atomic: access it only %s", v.Name(), how)
		}
		return true
	})
	_ = pkg
}

// allowedUse decides whether the annotated-field selector appears in a
// legal context, judging by its immediate ancestors.
func allowedUse(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	v, _ := info.Selections[sel].Obj().(*types.Var)
	parent := stack[len(stack)-1]
	if wrapperArray(v.Type()) {
		switch p := parent.(type) {
		case *ast.IndexExpr:
			// field[i].Load(): the indexed element must itself be used as
			// a method-call receiver, checked one level further up.
			if p.X != sel || len(stack) < 3 {
				return false
			}
			ps, ok := stack[len(stack)-2].(*ast.SelectorExpr)
			if !ok || ps.X != p {
				return false
			}
			call, ok := stack[len(stack)-3].(*ast.CallExpr)
			return ok && call.Fun == ps
		case *ast.RangeStmt:
			// Index-only range reads just the length; a value variable
			// would copy every element's wrapper.
			return p.X == sel && p.Value == nil
		case *ast.CallExpr:
			// len(field) is a pure length read.
			if id, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "len" {
					return true
				}
			}
			return false
		}
		return false
	}
	if atomicWrapper(v.Type()) {
		// Method-call receiver: parent is the SelectorExpr f.Load whose
		// X is our field selector, grandparent the CallExpr.
		if ps, ok := parent.(*ast.SelectorExpr); ok && ps.X == sel && len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ps {
				return true
			}
		}
		// &f is fine: the pointer can only be used through methods.
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == sel {
			return true
		}
		return false
	}
	// Plain word: only &f passed directly to a sync/atomic function.
	u, ok := parent.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND || u.X != sel || len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	return analysis.IsPkgCall(info, call, "sync/atomic")
}

// atomicWrapper reports whether t is one of the sync/atomic wrapper
// types (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...).
func atomicWrapper(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// wrapperArray reports whether t is an array of sync/atomic wrappers
// (e.g. [N]atomic.Uint64, used for per-enum-value counters).
func wrapperArray(t types.Type) bool {
	a, ok := t.Underlying().(*types.Array)
	return ok && atomicWrapper(a.Elem())
}

// plainWord reports whether t is an integer type sync/atomic can
// operate on through a pointer.
func plainWord(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
