// Package counters exercises every //dp:atomic field shape the
// analyzer accepts, plus the accesses it must reject.
package counters

import "sync/atomic"

type budget struct {
	pairs atomic.Uint64    //dp:atomic
	spill int64            //dp:atomic
	perOp [4]atomic.Uint64 //dp:atomic
	name  string           //dp:atomic // want `//dp:atomic field name has type string`
	free  uint64
}

func wrapperOK(b *budget) uint64 {
	b.pairs.Add(1)
	p := &b.pairs
	return p.Load()
}

func wrapperCopy(b *budget) atomic.Uint64 {
	return b.pairs // want `field pairs is //dp:atomic: access it only through its atomic methods`
}

func plainOK(b *budget) int64 {
	atomic.AddInt64(&b.spill, 1)
	return atomic.LoadInt64(&b.spill)
}

func plainDirect(b *budget) int64 {
	b.spill++      // want `field spill is //dp:atomic: access it only via sync/atomic functions on its address`
	return b.spill // want `field spill is //dp:atomic: access it only via sync/atomic functions on its address`
}

func plainAddr(b *budget) *int64 {
	return &b.spill // want `field spill is //dp:atomic: access it only via sync/atomic functions on its address`
}

func arrayOK(b *budget, i int) uint64 {
	b.perOp[i].Add(1)
	n := uint64(len(b.perOp))
	for j := range b.perOp {
		n += b.perOp[j].Load()
	}
	return n
}

func arrayCopy(b *budget, i int) atomic.Uint64 {
	return b.perOp[i] // want `field perOp is //dp:atomic: access it only through its atomic methods`
}

func arrayRangeValue(b *budget) uint64 {
	var n uint64
	for _, c := range b.perOp { // want `field perOp is //dp:atomic: access it only through its atomic methods`
		n += c.Load()
	}
	return n
}

func unannotated(b *budget) uint64 {
	b.free++
	return b.free
}
