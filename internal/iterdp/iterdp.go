// Package iterdp implements the large-query planning tier: iterative
// dynamic programming by graph simplification, in the spirit of
// Kossmann and Stocker's IDP and Neumann's query-graph simplification.
//
// The exact enumerators explore the full cross-product-free bushy
// space, which is exponential in the number of relations; beyond a few
// dozen relations no budget makes them finish. This tier keeps the
// exact machinery but applies it piecewise: greedily merge the
// cheapest-joined neighboring vertices into clusters of at most
// ClusterSize relations, solve each multi-relation cluster EXACTLY with
// the existing engine, collapse every cluster to a single compound
// vertex whose cardinality is its subplan's estimate, and repeat on the
// compressed graph until it fits one final exact enumeration. The
// stitched plan is then re-costed bottom-up against the ORIGINAL graph,
// so the reported cost and cardinalities are consistent with what the
// exact solvers would report for the same tree.
//
// The result is optimal within each exactly-solved subproblem but only
// heuristically good across cluster boundaries: the greedy clustering
// decides which relations may never be interleaved. That is the same
// trade every iterative-DP planner makes — the alternative for a
// 1000-relation query is a purely greedy plan with no optimal substructure
// at all.
//
// The package is deliberately ignorant of solver routing: callers
// inject the exact solver through Options.Exact, which keeps the
// dependency arrow pointing from the planning root down to this package
// and lets tests substitute an oracle-checked solver.
package iterdp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/plan"
)

// DefaultClusterSize is the subproblem budget when Options.ClusterSize
// is zero: subgraphs of up to 12 relations exact-solve in well under a
// millisecond on every topology (even a 12-clique emits only ~260k
// pairs), which keeps the whole tier inside an interactive budget for
// 1000-relation inputs.
const DefaultClusterSize = 12

// MaxClusterSize caps Options.ClusterSize: a 20-relation clique
// subproblem is already minutes of enumeration, far outside what a
// tier built for 100–1000-relation queries may spend on one cluster.
const MaxClusterSize = 20

// ErrStalled reports that the clustering could not compress the graph
// down to one final enumeration — the input was disconnected or held
// together only by hyperedges too wide to fold into any cluster. It
// wraps dp.ErrBudgetExhausted so the planner's existing greedy-fallback
// policy catches it: GOO handles those graphs, just without the exact
// subproblems.
var ErrStalled = fmt.Errorf("iterdp: clustering cannot compress the graph: %w", dp.ErrBudgetExhausted)

// ErrUnsupported reports a graph outside the tier's scope: non-inner
// operators or dependent relations, whose reordering constraints the
// compound vertices cannot represent. Like ErrStalled it wraps
// dp.ErrBudgetExhausted, degrading such queries to the GOO fallback
// (whose plan construction enforces those constraints pair by pair).
var ErrUnsupported = fmt.Errorf("iterdp: non-inner operators or dependent relations are beyond the simplification tier: %w", dp.ErrBudgetExhausted)

// Options configures one iterative-DP run.
type Options struct {
	// ClusterSize is the largest relation count handed to one exact
	// sub-enumeration (0 = DefaultClusterSize; capped at
	// MaxClusterSize).
	ClusterSize int
	// Model prices the final stitched plan (cost.Default() if nil). It
	// should match the model the Exact callback optimizes under.
	Model cost.Model
	// Exact solves one compressed subproblem optimally. Required. The
	// sub-hypergraph has at most ClusterSize relations and is connected;
	// the returned plan's leaves index the subgraph's relations.
	Exact func(sub *hypergraph.Graph) (*plan.Node, dp.Stats, error)
	// Ctx cancels the clustering loops between sub-solves (the Exact
	// callback is expected to carry its own cancellation).
	Ctx context.Context
	// Explain, when non-nil, receives one span per compression round
	// (clustering + exact sub-solves + compress, tagged with the round
	// index), one for the final enumeration over the compound vertices,
	// and one for the recost pass — never a span per subproblem, so the
	// trace of a 1000-relation run stays within its fixed capacity.
	Explain *obs.Trace
}

// vertex is one node of the current compression level: the original
// relations it covers, its current cardinality estimate, and the plan
// tree (over original relation indices) that produces it.
type vertex struct {
	rels bitset.Set
	card float64
	pl   *plan.Node
}

// Solve plans g through iterative compression. The returned plan covers
// every relation of g; its Cost/Card fields are recomputed against g
// under opts.Model, so they are comparable with exact-solver output.
func Solve(g *hypergraph.Graph, opts Options) (*plan.Node, dp.Stats, error) {
	var stats dp.Stats
	n := g.NumRels()
	if n == 0 {
		return nil, stats, fmt.Errorf("iterdp: empty graph")
	}
	if opts.Exact == nil {
		return nil, stats, fmt.Errorf("iterdp: Options.Exact is required")
	}
	cs := opts.ClusterSize
	if cs <= 0 {
		cs = DefaultClusterSize
	}
	if cs < 2 {
		cs = 2
	}
	if cs > MaxClusterSize {
		cs = MaxClusterSize
	}
	model := opts.Model
	if model == nil {
		model = cost.Default()
	}
	for i := 0; i < n; i++ {
		if !g.Relation(i).Free.IsEmpty() {
			return nil, stats, ErrUnsupported
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.Edge(i).Op.RegularVariant() != algebra.Join {
			return nil, stats, ErrUnsupported
		}
	}

	// Level 0: every original relation is its own vertex.
	verts := make([]vertex, n)
	for i := 0; i < n; i++ {
		r := g.Relation(i)
		verts[i] = vertex{rels: bitset.Single(i), card: r.Card, pl: plan.Leaf(i, r.Card)}
	}
	cur := g

	for len(verts) > cs {
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, stats, err
		}
		span := opts.Explain.Start(obs.PhaseCluster)
		opts.Explain.SetRound(span, stats.Rounds)
		pairsBefore, subsBefore := stats.CsgCmpPairs, stats.Subproblems
		groups := clusterRound(cur, verts, cs)
		merged := false
		for _, grp := range groups {
			if len(grp) > 1 {
				merged = true
				break
			}
		}
		if !merged {
			opts.Explain.End(span)
			return nil, stats, ErrStalled
		}
		next := make([]vertex, 0, len(groups))
		for _, grp := range groups {
			if len(grp) == 1 {
				next = append(next, verts[grp[0]])
				continue
			}
			sub := buildSubgraph(cur, verts, grp)
			sp, st, err := opts.Exact(sub)
			accumulate(&stats, st)
			if err != nil {
				opts.Explain.End(span)
				return nil, stats, fmt.Errorf("iterdp: subproblem of %d relations: %w", len(grp), err)
			}
			stats.Subproblems++
			next = append(next, vertex{
				rels: unionRels(verts, grp),
				card: sp.Card,
				pl:   expand(sp, grp, verts),
			})
		}
		cur = compress(cur, verts, groups, next)
		verts = next
		stats.Rounds++
		opts.Explain.Annotate(span, int64(stats.CsgCmpPairs-pairsBefore),
			len(verts), 0, stats.Subproblems-subsBefore)
		opts.Explain.End(span)
	}

	var final *plan.Node
	if len(verts) == 1 {
		final = verts[0].pl
	} else {
		span := opts.Explain.Start(obs.PhaseEnumerate)
		pairsBefore := stats.CsgCmpPairs
		sp, st, err := opts.Exact(cur)
		accumulate(&stats, st)
		if err != nil {
			opts.Explain.End(span)
			return nil, stats, fmt.Errorf("iterdp: final enumeration over %d compound vertices: %w", len(verts), err)
		}
		stats.Subproblems++
		all := make([]int, len(verts))
		for i := range all {
			all[i] = i
		}
		final = expand(sp, all, verts)
		opts.Explain.Annotate(span, int64(stats.CsgCmpPairs-pairsBefore),
			st.TableEntries, st.Workers, 1)
		opts.Explain.End(span)
	}
	rspan := opts.Explain.Start(obs.PhaseRecost)
	recost(g, final, model)
	opts.Explain.End(rspan)
	stats.TableEntries = max(stats.TableEntries, final.Joins()+final.Relations())
	return final, stats, nil
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// accumulate folds one sub-enumeration's counters into the run total.
// Effort counters sum; capacity high-water marks take the max (each
// sub-solve recycles the same pooled engine).
func accumulate(total *dp.Stats, st dp.Stats) {
	total.CsgCmpPairs += st.CsgCmpPairs
	total.CostedPlans += st.CostedPlans
	total.FilterReject += st.FilterReject
	total.InvalidReject += st.InvalidReject
	total.AmbiguousOps += st.AmbiguousOps
	total.MemoCapacity = max(total.MemoCapacity, st.MemoCapacity)
	total.MemoGrows = max(total.MemoGrows, st.MemoGrows)
	total.ArenaNodes = max(total.ArenaNodes, st.ArenaNodes)
	total.ArenaReused = total.ArenaReused || st.ArenaReused
}

// clusterRound greedily merges adjacent vertices of cur into groups of
// at most cs members. Merging follows GOO's rule — always fuse the pair
// with the smallest estimated joint cardinality — so the relations most
// aggressively reduced by their join predicates end up optimized
// together inside one exact subproblem. Only simple edges drive merges:
// a simple edge between two clusters is internal to their union, which
// keeps every group connected in its induced subgraph. The result is a
// partition of [0, len(verts)) ordered by smallest member; members are
// ascending. Deterministic: candidate pairs are scanned in first-seen
// edge order with a (score, i, j) tie-break.
func clusterRound(cur *hypergraph.Graph, verts []vertex, cs int) [][]int {
	m := len(verts)
	parent := make([]int, m)
	size := make([]int, m)
	card := make([]float64, m)
	for i := range parent {
		parent[i] = i
		size[i] = 1
		card[i] = verts[i].card
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	type cand struct {
		a, b int // cluster roots, a < b
		sel  float64
	}
	for {
		// One pass over the edges: aggregate parallel simple edges
		// between the same cluster pair into a single candidate with the
		// product of their selectivities (each predicate applies once).
		idx := map[[2]int]int{}
		var cands []cand
		for i := 0; i < cur.NumEdges(); i++ {
			e := cur.Edge(i)
			if !e.Simple() {
				continue
			}
			a, b := find(e.U.Min()), find(e.V.Min())
			if a == b || size[a]+size[b] > cs {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if j, ok := idx[[2]int{a, b}]; ok {
				cands[j].sel *= e.Sel
			} else {
				idx[[2]int{a, b}] = len(cands)
				cands = append(cands, cand{a: a, b: b, sel: e.Sel})
			}
		}
		best, bestScore := -1, 0.0
		for j, c := range cands {
			score := cost.EstimateCard(algebra.Join, card[c.a], card[c.b], c.sel)
			if best < 0 || score < bestScore ||
				(score == bestScore && (c.a < cands[best].a ||
					(c.a == cands[best].a && c.b < cands[best].b))) {
				best, bestScore = j, score
			}
		}
		if best < 0 {
			break
		}
		c := cands[best]
		parent[c.b] = c.a
		size[c.a] += size[c.b]
		card[c.a] = bestScore
	}

	members := map[int][]int{}
	var order []int
	for i := 0; i < m; i++ { // ascending i ⇒ members ascending, roots by first member
		r := find(i)
		if len(members[r]) == 0 {
			order = append(order, r)
		}
		members[r] = append(members[r], i)
	}
	groups := make([][]int, 0, len(order))
	for _, r := range order {
		groups = append(groups, members[r])
	}
	return groups
}

// buildSubgraph induces the subproblem for one group: its vertices
// become relations 0..len(grp)-1 with their current cardinalities, and
// every edge of cur that lies entirely inside the group is remapped.
func buildSubgraph(cur *hypergraph.Graph, verts []vertex, grp []int) *hypergraph.Graph {
	sub := hypergraph.New()
	local := make(map[int]int, len(grp))
	for si, vi := range grp {
		local[vi] = si
		sub.AddRelation(fmt.Sprintf("C%d", vi), verts[vi].card)
	}
	inGroup := bitset.New(grp...)
	for i := 0; i < cur.NumEdges(); i++ {
		e := cur.Edge(i)
		if !e.Nodes().SubsetOf(inGroup) {
			continue
		}
		sub.AddEdge(hypergraph.Edge{
			U:   remap(e.U, local),
			V:   remap(e.V, local),
			W:   remap(e.W, local),
			Sel: e.Sel,
			Op:  e.Op,
		})
	}
	return sub
}

// remap translates a node set of the outer graph into subgraph indices.
func remap(s bitset.Set, local map[int]int) bitset.Set {
	out := bitset.Empty
	s.ForEach(func(e int) { out = out.Add(local[e]) })
	return out
}

// unionRels unions the original-relation coverage of a group.
func unionRels(verts []vertex, grp []int) bitset.Set {
	out := bitset.Empty
	for _, vi := range grp {
		out = out.Union(verts[vi].rels)
	}
	return out
}

// expand replaces each leaf of a subproblem plan (indexing grp) with the
// plan tree of the underlying vertex. Inner-node Card/Cost are carried
// over as estimates; Solve's final recost pass replaces them with
// original-graph figures.
func expand(sp *plan.Node, grp []int, verts []vertex) *plan.Node {
	if sp.IsLeaf() {
		return verts[grp[sp.Rel]].pl
	}
	l := expand(sp.Left, grp, verts)
	r := expand(sp.Right, grp, verts)
	return &plan.Node{
		Op:   sp.Op,
		Left: l, Right: r,
		Rel:  -1,
		Rels: l.Rels.Union(r.Rels),
		Card: sp.Card,
		Cost: sp.Cost,
		Phys: sp.Phys,
	}
}

// compress builds the next-level graph: one relation per group, and one
// aggregated simple edge per connected group pair (parallel edges
// collapse into a selectivity product; edges internal to a group were
// consumed by its subproblem). Hyperedges spanning several groups
// degrade to a simple edge between the groups holding their U- and
// V-minima — an approximation, but one that only steers the NEXT
// round's clustering and final enumeration; the predicate itself is
// re-applied exactly during the final recost against the original graph.
func compress(cur *hypergraph.Graph, verts []vertex, groups [][]int, next []vertex) *hypergraph.Graph {
	ng := hypergraph.New()
	for i, v := range next {
		ng.AddRelation(fmt.Sprintf("G%d", i), v.card)
	}
	groupOf := make([]int, len(verts))
	for gi, grp := range groups {
		for _, vi := range grp {
			groupOf[vi] = gi
		}
	}
	idx := map[[2]int]int{}
	var pairs [][2]int
	sels := []float64{}
	for i := 0; i < cur.NumEdges(); i++ {
		e := cur.Edge(i)
		a, b := groupOf[e.U.Min()], groupOf[e.V.Min()]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if j, ok := idx[[2]int{a, b}]; ok {
			sels[j] *= e.Sel
		} else {
			idx[[2]int{a, b}] = len(pairs)
			pairs = append(pairs, [2]int{a, b})
			sels = append(sels, e.Sel)
		}
	}
	for j, p := range pairs {
		// Dense graphs can collapse hundreds of parallel edges into one
		// pair; the selectivity product then underflows float64 to 0,
		// which AddEdge rejects. Clamp to the smallest positive value —
		// compression selectivities only steer clustering and the
		// compound-level enumeration, and the final recost re-applies
		// every original edge exactly.
		if sels[j] <= 0 {
			sels[j] = math.SmallestNonzeroFloat64
		}
		ng.AddSimpleEdge(p[0], p[1], sels[j])
	}
	return ng
}

// recost recomputes Card, Cost, and the applied-edge list of every
// inner node bottom-up against the original graph, mirroring the §3.5
// plan construction: the cardinality of a join is the product of the
// input cardinalities and the selectivities of all connecting edges,
// and the cost model prices the node on top of its children.
func recost(g *hypergraph.Graph, n *plan.Node, model cost.Model) {
	if n.IsLeaf() {
		n.Card = g.Relation(n.Rel).Card
		n.Cost = 0
		return
	}
	recost(g, n.Left, model)
	recost(g, n.Right, model)
	var edges []int
	g.EachConnectingEdge(n.Left.Rels, n.Right.Rels, func(idx int, _ bool) {
		edges = append(edges, idx)
	})
	sel := g.SelectivityBetween(n.Left.Rels, n.Right.Rels)
	n.Edges = edges
	n.Card = cost.EstimateCard(n.Op, n.Left.Card, n.Right.Card, sel)
	n.Cost = model.JoinCost(n.Op, n.Left.Cost, n.Right.Cost,
		n.Left.Card, n.Right.Card, n.Card)
}
