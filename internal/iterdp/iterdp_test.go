package iterdp_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/hypergraph"
	"repro/internal/iterdp"
	"repro/internal/memo"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/workload"
)

// exactSolver adapts the DPhyp engine into the tier's Exact callback,
// the same wiring the planning root uses.
func exactSolver(model cost.Model, pool *memo.Pool) func(*hypergraph.Graph) (*plan.Node, dp.Stats, error) {
	return func(sub *hypergraph.Graph) (*plan.Node, dp.Stats, error) {
		sub.Freeze()
		return core.Solve(sub, core.Options{Model: model, Pool: pool, Parallelism: 1})
	}
}

// costsMatch compares plan costs with a relative tolerance (equal-cost
// optima reached through different tree shapes differ in the last bits
// of floating-point accumulation).
func costsMatch(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// oracleChecked wraps an Exact callback so that every subproblem the
// tier hands to the engine is additionally brute-forced by the oracle,
// asserting the engine found the true optimum of each compressed
// subgraph. This is the satellite differential wall: cluster sizes stay
// within oracle.MaxRels, so every subproblem is checkable.
func oracleChecked(t *testing.T, model cost.Model,
	inner func(*hypergraph.Graph) (*plan.Node, dp.Stats, error),
	checked *int) func(*hypergraph.Graph) (*plan.Node, dp.Stats, error) {
	t.Helper()
	return func(sub *hypergraph.Graph) (*plan.Node, dp.Stats, error) {
		p, st, err := inner(sub)
		if err != nil {
			return p, st, err
		}
		if sub.NumRels() <= oracle.MaxRels {
			opt, oerr := oracle.Optimal(sub, model)
			if oerr != nil {
				t.Errorf("oracle rejected a %d-relation subproblem: %v", sub.NumRels(), oerr)
			} else if !costsMatch(p.Cost, opt.Cost) {
				t.Errorf("subproblem of %d relations: engine cost %.10g != oracle optimum %.10g\nengine:\n%s\noracle:\n%s",
					sub.NumRels(), p.Cost, opt.Cost, p, opt)
			}
			*checked++
		} else {
			t.Errorf("subproblem of %d relations exceeds oracle.MaxRels=%d", sub.NumRels(), oracle.MaxRels)
		}
		return p, st, err
	}
}

// checkPlan asserts the stitched plan is structurally valid, covers the
// whole graph, and carries self-consistent recosted figures.
func checkPlan(t *testing.T, tag string, g *hypergraph.Graph, p *plan.Node) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: invalid plan: %v", tag, err)
	}
	if !p.Rels.Equal(g.AllNodes()) {
		t.Fatalf("%s: plan covers %v, want %v", tag, p.Rels, g.AllNodes())
	}
	if p.Relations() != g.NumRels() || p.Joins() != g.NumRels()-1 {
		t.Fatalf("%s: plan has %d relations / %d joins, want %d / %d",
			tag, p.Relations(), p.Joins(), g.NumRels(), g.NumRels()-1)
	}
	if p.Cost <= 0 || math.IsNaN(p.Cost) || math.IsInf(p.Cost, 0) {
		t.Fatalf("%s: suspicious recosted plan cost %v", tag, p.Cost)
	}
}

// TestLargeShapesOracleDifferential is the headline acceptance test:
// 100-relation chain, star, and grid queries (plus a cycle and a
// clique-ish random graph) plan end-to-end through the simplification
// tier, and EVERY exactly-solved subproblem matches the brute-force
// oracle optimum.
func TestLargeShapesOracleDifferential(t *testing.T) {
	cfg := workload.LargeConfig()
	shapes := []struct {
		name string
		g    *hypergraph.Graph
	}{
		{"chain100", workload.Chain(100, cfg)},
		{"star100", workload.Star(100, cfg)},
		{"grid10x10", workload.Grid(10, 10, cfg)},
		{"cycle80", workload.Cycle(80, cfg)},
	}
	model := cost.Default()
	pool := &memo.Pool{}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			sh.g.Freeze()
			checked := 0
			p, stats, err := iterdp.Solve(sh.g, iterdp.Options{
				Model: model,
				Exact: oracleChecked(t, model, exactSolver(model, pool), &checked),
			})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			checkPlan(t, sh.name, sh.g, p)
			if stats.Subproblems == 0 || checked == 0 {
				t.Fatalf("expected exact subproblems, got Subproblems=%d checked=%d",
					stats.Subproblems, checked)
			}
			if stats.Rounds == 0 {
				t.Fatalf("a %d-relation graph must need at least one compression round", sh.g.NumRels())
			}
			if stats.CsgCmpPairs == 0 || stats.CostedPlans == 0 {
				t.Fatalf("sub-enumeration effort not accumulated: %+v", stats)
			}
		})
	}
}

// TestRandomLargeOracleDifferential sweeps seeded random simple graphs
// of 65–120 relations — just past the historical single-word ceiling up
// to nearly double it — through the oracle-checked tier.
func TestRandomLargeOracleDifferential(t *testing.T) {
	runs := 12
	if testing.Short() {
		runs = 4
	}
	cfg := workload.LargeConfig()
	model := cost.Default()
	pool := &memo.Pool{}
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(int64(7000 + i)))
		n := 65 + rng.Intn(56) // 65..120
		g := workload.RandomSimple(rng, n, rng.Intn(n/4), cfg)
		g.Freeze()
		checked := 0
		p, stats, err := iterdp.Solve(g, iterdp.Options{
			Model: model,
			Exact: oracleChecked(t, model, exactSolver(model, pool), &checked),
		})
		if err != nil {
			t.Fatalf("seed %d (n=%d): %v", 7000+i, n, err)
		}
		checkPlan(t, "random", g, p)
		if checked != stats.Subproblems {
			t.Fatalf("seed %d: checked %d subproblems but stats say %d",
				7000+i, checked, stats.Subproblems)
		}
	}
}

// TestDeterministic asserts that repeated runs over the same graph
// produce byte-identical plans: the clustering tie-breaks and the
// engine's plan tie-breaks are both order-independent.
func TestDeterministic(t *testing.T) {
	cfg := workload.LargeConfig()
	model := cost.Default()
	for _, n := range []int{70, 100} {
		g := workload.Chain(n, cfg)
		g.Freeze()
		var first *plan.Node
		for rep := 0; rep < 3; rep++ {
			pool := &memo.Pool{}
			p, _, err := iterdp.Solve(g, iterdp.Options{
				Model: model,
				Exact: exactSolver(model, pool),
			})
			if err != nil {
				t.Fatalf("chain %d rep %d: %v", n, rep, err)
			}
			if first == nil {
				first = p
			} else if !p.Equal(first) || p.Compact() != first.Compact() {
				t.Fatalf("chain %d: rep %d plan differs:\n%s\nvs\n%s",
					n, rep, p.Compact(), first.Compact())
			}
		}
	}
}

// TestSmallGraphIsExact: when the whole graph fits one cluster, the
// tier must degenerate to a single exact enumeration — the returned
// plan cost equals the brute-force optimum outright.
func TestSmallGraphIsExact(t *testing.T) {
	cfg := workload.DefaultConfig()
	model := cost.Default()
	pool := &memo.Pool{}
	graphs := []struct {
		name string
		g    *hypergraph.Graph
	}{
		{"chain10", workload.Chain(10, cfg)},
		{"star8", workload.Star(8, cfg)},
		{"clique8", workload.Clique(8, cfg)},
	}
	for _, tc := range graphs {
		tc.g.Freeze()
		p, stats, err := iterdp.Solve(tc.g, iterdp.Options{
			Model: model,
			Exact: exactSolver(model, pool),
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		checkPlan(t, tc.name, tc.g, p)
		opt, oerr := oracle.Optimal(tc.g, model)
		if oerr != nil {
			t.Fatalf("%s: oracle: %v", tc.name, oerr)
		}
		if !costsMatch(p.Cost, opt.Cost) {
			t.Fatalf("%s: tier cost %.10g != optimum %.10g", tc.name, p.Cost, opt.Cost)
		}
		if stats.Rounds != 0 || stats.Subproblems != 1 {
			t.Fatalf("%s: want a single final enumeration, got rounds=%d subproblems=%d",
				tc.name, stats.Rounds, stats.Subproblems)
		}
	}
}

// TestClusterSizeSweep: the tier must produce valid full-coverage plans
// for every permitted cluster size, and larger clusters must never
// produce a worse plan on a chain (more of the chain is optimized
// exactly at once).
func TestClusterSizeSweep(t *testing.T) {
	cfg := workload.LargeConfig()
	model := cost.Default()
	g := workload.Chain(80, cfg)
	g.Freeze()
	pool := &memo.Pool{}
	prev := math.Inf(1)
	for _, cs := range []int{2, 4, 8, 12, 16, 20} {
		p, _, err := iterdp.Solve(g, iterdp.Options{
			ClusterSize: cs,
			Model:       model,
			Exact:       exactSolver(model, pool),
		})
		if err != nil {
			t.Fatalf("cs=%d: %v", cs, err)
		}
		checkPlan(t, "chain80", g, p)
		// Not strictly monotone in general, but a sanity envelope: the
		// plan must never be wildly worse than a smaller cluster size.
		if p.Cost > prev*4 {
			t.Fatalf("cs=%d: cost %.6g regressed vs smaller clusters %.6g", cs, p.Cost, prev)
		}
		if p.Cost < prev {
			prev = p.Cost
		}
	}
}

// TestUnsupportedGraphs: non-inner operators and dependent relations
// are outside the tier's scope and must degrade through the budget
// sentinel so the planner's greedy fallback picks them up.
func TestUnsupportedGraphs(t *testing.T) {
	model := cost.Default()
	pool := &memo.Pool{}
	exact := exactSolver(model, pool)

	outer := hypergraph.New()
	for i := 0; i < 66; i++ {
		outer.AddRelation("", 100)
	}
	for i := 0; i < 65; i++ {
		op := algebra.Join
		if i == 30 {
			op = algebra.LeftOuter
		}
		outer.AddEdge(hypergraph.Edge{
			U: bitset.Single(i), V: bitset.Single(i + 1), Sel: 0.1, Op: op,
		})
	}
	outer.Freeze()
	_, _, err := iterdp.Solve(outer, iterdp.Options{Model: model, Exact: exact})
	if !errors.Is(err, iterdp.ErrUnsupported) {
		t.Fatalf("outer-join graph: got %v, want ErrUnsupported", err)
	}
	if !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("ErrUnsupported must wrap dp.ErrBudgetExhausted for the greedy fallback, got %v", err)
	}
}

// TestStalledGraphs: a graph the clustering cannot compress (here: no
// edges at all) must fail with ErrStalled, again wrapping the budget
// sentinel.
func TestStalledGraphs(t *testing.T) {
	model := cost.Default()
	g := hypergraph.New()
	for i := 0; i < 70; i++ {
		g.AddRelation("", 50)
	}
	g.Freeze()
	_, _, err := iterdp.Solve(g, iterdp.Options{
		Model: model,
		Exact: exactSolver(model, &memo.Pool{}),
	})
	if !errors.Is(err, iterdp.ErrStalled) {
		t.Fatalf("edgeless graph: got %v, want ErrStalled", err)
	}
	if !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("ErrStalled must wrap dp.ErrBudgetExhausted, got %v", err)
	}
}

// TestCancellation: a canceled context aborts between compression
// rounds.
func TestCancellation(t *testing.T) {
	cfg := workload.LargeConfig()
	g := workload.Chain(100, cfg)
	g.Freeze()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := iterdp.Solve(g, iterdp.Options{
		Model: cost.Default(),
		Ctx:   ctx,
		Exact: exactSolver(cost.Default(), &memo.Pool{}),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestHyperedgeDegradation: hyperedges that span clusters degrade to
// simple proxies during compression, but the final plan still covers
// everything and applies every predicate in the recost.
func TestHyperedgeDegradation(t *testing.T) {
	cfg := workload.LargeConfig()
	model := cost.Default()
	g := workload.StarHyper(80, 3, cfg)
	g.Freeze()
	p, _, err := iterdp.Solve(g, iterdp.Options{
		Model: model,
		Exact: exactSolver(model, &memo.Pool{}),
	})
	if err != nil {
		// Hyperedge-only connectivity can legitimately stall; that must
		// route to the fallback sentinel, not crash.
		if !errors.Is(err, dp.ErrBudgetExhausted) {
			t.Fatalf("hyper star: got %v, want success or a budget-wrapped error", err)
		}
		return
	}
	checkPlan(t, "starhyper80", g, p)
}

// TestDenseSelectivityUnderflow pins the compression clamp: a clique
// beyond the 64-relation ceiling collapses hundreds of parallel edges
// into each compound pair, and the raw selectivity product underflows
// float64 to exactly 0 — which hypergraph.AddEdge rejects with a panic.
// The tier must clamp and keep planning instead.
func TestDenseSelectivityUnderflow(t *testing.T) {
	cfg := workload.LargeConfig()
	model := cost.Default()
	for _, n := range []int{66, 80} {
		g := workload.Clique(n, cfg)
		g.Freeze()
		p, stats, err := iterdp.Solve(g, iterdp.Options{
			Model: model,
			Exact: exactSolver(model, &memo.Pool{}),
		})
		if err != nil {
			t.Fatalf("clique%d: %v", n, err)
		}
		checkPlan(t, fmt.Sprintf("clique%d", n), g, p)
		if stats.Subproblems == 0 {
			t.Errorf("clique%d: no subproblems recorded", n)
		}
	}
}
