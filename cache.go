package repro

import (
	"container/list"
	"sync"
)

// planCache is a bounded LRU mapping configuration+fingerprint keys to
// finished plans. Entries store private clones of the plan tree and
// hand out fresh clones on every hit, so cached state can never be
// corrupted by a caller mutating its Result.
//
// Invalidation is structural rather than explicit: the key embeds the
// full canonical description of the graph (cardinalities, free sets,
// edges with selectivities and operators) and of the planning
// configuration, so any change to either simply misses and plans anew,
// while the stale entry ages out of the LRU.
type planCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	m         map[string]*list.Element
	evictions uint64 // lifetime LRU evictions
}

type cacheEntry struct {
	key   string
	plan  *PlanNode
	stats Stats
	alg   Algorithm
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

// get returns a Result for key, or false. The returned Result carries a
// clone of the cached plan, the original run's Stats with CacheHit set,
// and no Graph (the caller fills in the graph it planned against).
func (c *planCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	el, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	// The entry's plan is a private clone that is only ever replaced
	// wholesale, so the pointer can be read under the lock and the
	// O(plan-size) deep copy done outside it — concurrent hits would
	// otherwise serialize on the clone.
	cached := e.plan
	stats := e.stats
	alg := e.alg
	c.mu.Unlock()

	stats.CacheHit = true
	return &Result{Plan: cached.Clone(), Stats: stats, Algorithm: alg}, true
}

// add stores a clone of plan under key, evicting the least recently
// used entry when the cache is full.
func (c *planCache) add(key string, plan *PlanNode, stats Stats, alg Algorithm) {
	clone := plan.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).plan = clone
		el.Value.(*cacheEntry).stats = stats
		el.Value.(*cacheEntry).alg = alg
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, plan: clone, stats: stats, alg: alg})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// snapshotEntries returns the cache contents oldest-first, so replaying
// them through add() reproduces the LRU recency order. The returned
// entries share the cached plan trees: those are private clones that
// are only ever replaced wholesale (never mutated in place), so reading
// them after the lock is released is safe — the same contract get()
// relies on to clone outside the lock.
func (c *planCache) snapshotEntries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*cacheEntry))
	}
	return out
}

// len reports the current number of cached entries.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// evicted reports the lifetime number of LRU evictions.
func (c *planCache) evicted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
