package repro

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/algebra"
	"repro/internal/bitset"
	"repro/internal/dp"
	"repro/internal/optree"
	"repro/internal/simplify"
)

// TreeQuery describes a query with non-inner joins as an initial operator
// tree (§5.3). Tables must be declared in the left-to-right order in
// which they appear in the tree (the §5.4 numbering convention); the
// expression combinators then build the tree bottom-up.
type TreeQuery struct {
	rels []optree.RelInfo
	err  error

	// mu serializes conflict analysis and hypergraph derivation: the
	// §5.2 simplification pass rewrites the operator tree in place and
	// optree.Analyze stores eligibility sets on the shared nodes, so
	// concurrent PlanTree calls on one TreeQuery must not analyze or
	// read those nodes simultaneously. Enumeration runs on the derived
	// per-call hypergraph (and a filter that copies its TES data),
	// outside the lock.
	mu sync.Mutex
}

// NewTreeQuery returns an empty tree query.
func NewTreeQuery() *TreeQuery { return &TreeQuery{} }

// Expr is a relational expression under construction: a table or the
// application of a binary operator to two expressions.
type Expr struct {
	q    *TreeQuery
	node *optree.Node
	rels bitset.Set
}

// Table declares the next base table. Declaration order defines the
// left-to-right leaf order of the final tree.
func (t *TreeQuery) Table(name string, card float64) *Expr {
	if card <= 0 {
		t.fail(fmt.Errorf("repro: table %q has non-positive cardinality", name))
	}
	id := len(t.rels)
	t.rels = append(t.rels, optree.RelInfo{Name: name, Card: card})
	return &Expr{q: t, node: optree.NewLeaf(id), rels: bitset.Single(id)}
}

// DependentTable declares a table-valued expression referencing the given
// outer tables (§5.6).
func (t *TreeQuery) DependentTable(name string, card float64, on ...*Expr) *Expr {
	e := t.Table(name, card)
	var free bitset.Set
	for _, o := range on {
		if !o.rels.IsSingleton() {
			t.fail(fmt.Errorf("repro: dependent table %q must reference base tables", name))
			return e
		}
		free = free.Union(o.rels)
	}
	t.rels[len(t.rels)-1].Free = free
	return e
}

func (t *TreeQuery) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

// JoinOption refines an operator application.
type JoinOption func(*joinConfig)

type joinConfig struct {
	on      bitset.Set
	label   string
	payload any
	agg     bool
}

// On sets the tables the predicate references (default: the first table
// of each side).
func On(tables ...*Expr) JoinOption {
	return func(c *joinConfig) {
		for _, t := range tables {
			c.on = c.on.Union(t.rels)
		}
	}
}

// Label names the predicate in plan output.
func Label(s string) JoinOption { return func(c *joinConfig) { c.label = s } }

// Payload attaches an executable predicate (see internal/exec.JoinSpec)
// carried through to the optimized plan's edges.
func Payload(p any) JoinOption { return func(c *joinConfig) { c.payload = p } }

// Join applies an inner join.
func (e *Expr) Join(r *Expr, sel float64, opts ...JoinOption) *Expr {
	return e.apply(algebra.Join, r, sel, opts)
}

// LeftOuterJoin applies a left outer join (P).
func (e *Expr) LeftOuterJoin(r *Expr, sel float64, opts ...JoinOption) *Expr {
	return e.apply(algebra.LeftOuter, r, sel, opts)
}

// FullOuterJoin applies a full outer join (M).
func (e *Expr) FullOuterJoin(r *Expr, sel float64, opts ...JoinOption) *Expr {
	return e.apply(algebra.FullOuter, r, sel, opts)
}

// SemiJoin applies a left semijoin (G).
func (e *Expr) SemiJoin(r *Expr, sel float64, opts ...JoinOption) *Expr {
	return e.apply(algebra.SemiJoin, r, sel, opts)
}

// AntiJoin applies a left antijoin (I).
func (e *Expr) AntiJoin(r *Expr, sel float64, opts ...JoinOption) *Expr {
	return e.apply(algebra.AntiJoin, r, sel, opts)
}

// NestJoin applies a left nestjoin (T): binary grouping, one output tuple
// per left tuple with aggregated match groups (§5.1).
func (e *Expr) NestJoin(r *Expr, sel float64, opts ...JoinOption) *Expr {
	return e.apply(algebra.NestJoin, r, sel, opts)
}

func (e *Expr) apply(op algebra.Op, r *Expr, sel float64, opts []JoinOption) *Expr {
	if e.q != r.q {
		e.q.fail(fmt.Errorf("repro: mixing expressions from different tree queries"))
		return e
	}
	if e.rels.Overlaps(r.rels) {
		e.q.fail(fmt.Errorf("repro: expression reuses tables %v", e.rels.Intersect(r.rels)))
		return e
	}
	var c joinConfig
	for _, o := range opts {
		o(&c)
	}
	if c.on.IsEmpty() {
		c.on = e.rels.MinSet().Union(r.rels.MinSet())
	}
	node := optree.NewOp(op, e.node, r.node, optree.Predicate{
		Tables:  c.on,
		Sel:     sel,
		Label:   c.label,
		Payload: c.payload,
	})
	return &Expr{q: e.q, node: node, rels: e.rels.Union(r.rels)}
}

// Analyze validates the tree and computes SES/TES eligibility sets,
// returning the derived hypergraph without optimizing. Useful for
// inspecting the conflict analysis.
func (t *TreeQuery) Analyze(root *Expr, opts ...Option) (*Graph, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	g, _, err := t.derive(root, o)
	return g, err
}

// derive runs conflict analysis and builds the query hypergraph — plus,
// in generate-and-test mode, the late TES filter — under the query's
// lock. The returned graph and filter hold no references to the mutable
// tree state, so enumeration can proceed concurrently with other
// derivations.
func (t *TreeQuery) derive(root *Expr, o options) (*Graph, dp.Filter, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, _, err := t.analyze(root, o)
	if err != nil {
		return nil, nil, err
	}
	if o.genAndTest {
		g := tr.Hypergraph(optree.SESEdges)
		return g, tr.Filter(g), nil
	}
	return tr.Hypergraph(optree.TESEdges), nil, nil
}

// analyze must be called with t.mu held.
func (t *TreeQuery) analyze(root *Expr, o options) (*optree.Tree, *optree.Node, error) {
	if t.err != nil {
		return nil, nil, t.err
	}
	if root == nil || root.q != t {
		return nil, nil, fmt.Errorf("repro: root expression does not belong to this query")
	}
	if !o.noSimplify {
		// §5.2 precondition: outer joins refuted by strong predicates
		// above them are degraded before conflict analysis.
		simplify.Simplify(root.node)
	}
	tr, err := optree.Analyze(root.node, t.rels, o.rule)
	if err != nil {
		return nil, nil, err
	}
	return tr, root.node, nil
}

// Optimize computes TESs for the initial tree, derives the query
// hypergraph (§5.7), and runs the selected algorithm. With
// WithGenerateAndTest the SES graph plus a late TES filter is used
// instead (§5.8's slower alternative).
//
// Optimize is a convenience wrapper over the default Planner (see
// DefaultPlanner); use Planner.PlanTree for cancellation and budgets.
func (t *TreeQuery) Optimize(root *Expr, opts ...Option) (*Result, error) {
	return DefaultPlanner().PlanTree(context.Background(), t, root, opts...)
}

// InitialTree renders the initial operator tree (for documentation and
// debugging).
func (t *TreeQuery) InitialTree(root *Expr) string {
	if root == nil {
		return ""
	}
	return root.node.String()
}
