// Command dpbench reproduces every table and figure of the evaluation of
// "Dynamic Programming Strikes Back" (SIGMOD 2008).
//
// Usage:
//
//	dpbench                 # run the quick (reduced-size) suite
//	dpbench -full           # run at the paper's sizes (minutes)
//	dpbench -run fig7-star-regular
//	dpbench -list           # list experiment identifiers
//	dpbench -reps 5         # median over more repetitions
//	dpbench -csv            # machine-readable output
//	dpbench -cell-timeout 30s  # cancel cells that exceed the deadline
//
// For every experiment the output is one row per sweep value with the
// median optimization time per competing algorithm in milliseconds —
// the same series the paper plots — plus the number of csg-cmp-pairs
// enumerated (the search-space size of §2.2). Cells cancelled by
// -cell-timeout print "t/o" (tables) or a row with ms = -1 (CSV).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/dp"
	"repro/internal/experiments"
)

func main() {
	var (
		full    = flag.Bool("full", false, "run at the paper's sizes (DPsize/DPsub on 16-relation stars take minutes)")
		run     = flag.String("run", "", "comma-separated experiment ids to run (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		reps    = flag.Int("reps", 3, "repetitions per measurement (median is reported)")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables")
		timeout = flag.Duration("cell-timeout", 0, "per-cell deadline, 0 = none (cancellation is checked inside the enumeration loops)")
	)
	flag.Parse()

	set := experiments.Quick()
	if *full {
		set = experiments.All()
	}
	if *list {
		for _, s := range set {
			fmt.Printf("%-22s %s\n", s.ID, s.Title)
		}
		return
	}
	selected := set
	if *run != "" {
		selected = nil
		for _, id := range strings.Split(*run, ",") {
			s, ok := experiments.ByID(set, strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, s)
		}
	}

	if *csv {
		fmt.Println("experiment,x,algorithm,ms,csg_cmp_pairs,costed_plans,cost")
	}
	for _, s := range selected {
		runSeries(s, *reps, *csv, *timeout)
	}
}

func runSeries(s experiments.Series, reps int, csv bool, timeout time.Duration) {
	if !csv {
		fmt.Printf("\n## %s  [%s]\n", s.Title, s.ID)
		if s.Paper != "" {
			fmt.Printf("paper expectation: %s\n", s.Paper)
		}
		fmt.Printf("\n| %s |", s.XLabel)
		for _, a := range s.Algs {
			fmt.Printf(" %s [ms] |", a)
		}
		fmt.Printf(" #ccp |\n|")
		for i := 0; i < len(s.Algs)+2; i++ {
			fmt.Printf("---|")
		}
		fmt.Println()
	}
	for _, x := range s.Xs {
		if !csv {
			fmt.Printf("| %d |", x)
		}
		var pairs int
		for _, alg := range s.Algs {
			runner := s.Make(x, alg)
			ms, st, cost, timedOut := measure(runner, reps, timeout)
			pairs = st.CsgCmpPairs
			switch {
			case csv && timedOut:
				fmt.Printf("%s,%d,%s,-1,%d,%d,NaN\n", s.ID, x, alg, st.CsgCmpPairs, st.CostedPlans)
			case csv:
				fmt.Printf("%s,%d,%s,%.4f,%d,%d,%g\n", s.ID, x, alg, ms, st.CsgCmpPairs, st.CostedPlans, cost)
			case timedOut:
				fmt.Printf(" t/o |")
			default:
				fmt.Printf(" %s |", fmtMS(ms))
			}
		}
		if !csv {
			fmt.Printf(" %d |\n", pairs)
		}
	}
}

// measure returns the median wall time in milliseconds over reps runs,
// the enumeration statistics, the plan cost, and whether the cell was
// cancelled by the per-cell deadline.
func measure(r experiments.Runner, reps int, timeout time.Duration) (float64, dp.Stats, float64, bool) {
	times := make([]float64, 0, reps)
	var stats dp.Stats
	var cost float64
	for i := 0; i < reps; i++ {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		start := time.Now()
		p, st, err := r(ctx)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				// Partial statistics show how far the cell got.
				return 0, st, 0, true
			}
			fmt.Fprintf(os.Stderr, "dpbench: optimization failed: %v\n", err)
			os.Exit(1)
		}
		times = append(times, float64(elapsed.Nanoseconds())/1e6)
		stats = st
		cost = p.Cost
		// Very slow cells are not repeated: one sample tells the story.
		if elapsed > 20*time.Second {
			break
		}
	}
	sort.Float64s(times)
	return times[len(times)/2], stats, cost, false
}

func fmtMS(ms float64) string {
	switch {
	case ms < 0.01:
		return fmt.Sprintf("%.4f", ms)
	case ms < 1:
		return fmt.Sprintf("%.3f", ms)
	case ms < 100:
		return fmt.Sprintf("%.2f", ms)
	default:
		return fmt.Sprintf("%.0f", ms)
	}
}
