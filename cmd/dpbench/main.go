// Command dpbench reproduces every table and figure of the evaluation of
// "Dynamic Programming Strikes Back" (SIGMOD 2008).
//
// Usage:
//
//	dpbench                 # run the quick (reduced-size) suite
//	dpbench -full           # run at the paper's sizes (minutes)
//	dpbench -run fig7-star-regular
//	dpbench -list           # list experiment identifiers
//	dpbench -reps 5         # median over more repetitions
//	dpbench -csv            # machine-readable output
//	dpbench -json out.json  # additionally write a JSON result file
//	dpbench -cell-timeout 30s  # cancel cells that exceed the deadline
//
// For every experiment the output is one row per sweep value with the
// median optimization time per competing algorithm in milliseconds —
// the same series the paper plots — plus the number of csg-cmp-pairs
// enumerated (the search-space size of §2.2). Cells cancelled by
// -cell-timeout print "t/o" (tables) or a row with ms = -1 (CSV).
//
// A second mode sweeps the §4 shape families (chain, cycle, star,
// clique) through the public Planner with a chosen solver and cost
// model instead of the fixed experiment series:
//
//	dpbench -solver auto               # topology-routed solver selection
//	dpbench -solver auto -cost physical
//	dpbench -solver dphyp -cost cmm -sweep-max-n 14
//	dpbench -solver auto -parallel 4   # multi-core enumeration per cell
//
// With -solver auto each row additionally reports which algorithm the
// planner's topology router picked for the cell.
//
// A third mode prices the degradation ladder's bottom rung: -regret
// plans every shape family × cost model × size both exactly and
// greedily and reports greedy-cost ÷ optimal-cost (1.0 = greedy found
// the optimum), with per-family geomean and worst-case summaries:
//
//	dpbench -regret
//	dpbench -regret -sweep-max-n 14 -csv
//
// -json writes the same measurements as a machine-readable file (one
// record per cell: family/experiment, n, solver, cost model, the
// algorithm that actually ran, median wall ms, csg-cmp-pairs, costed
// plans, plan cost, and the per-run allocation footprint — median heap
// bytes and allocation count, measured as runtime.MemStats deltas), so
// per-PR perf trajectories (BENCH_*.json) can be diffed mechanically,
// including the allocation baseline of the memo engine.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/dp"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// jsonRecord is one measured cell in the -json output.
type jsonRecord struct {
	// Experiment is the experiment id (suite mode) or "shape-sweep".
	Experiment string `json:"experiment"`
	// Family is the §4 shape family (shape-sweep mode only).
	Family string `json:"family,omitempty"`
	// N is the sweep value (relations, or the series' x).
	N int `json:"n"`
	// Solver is what was asked for (a series algorithm, or -solver).
	Solver    string `json:"solver"`
	CostModel string `json:"cost_model"`
	// Parallel is the -parallel worker bound the cell ran under
	// (shape-sweep mode; 0/1 = serial engine).
	Parallel int `json:"parallel,omitempty"`
	// Algorithm is what actually ran (differs from Solver under auto
	// routing or greedy fallback); empty when the cell timed out.
	Algorithm   string  `json:"algorithm,omitempty"`
	MS          float64 `json:"ms"` // median wall time; -1 when timed out
	CsgCmpPairs int     `json:"csg_cmp_pairs"`
	CostedPlans int     `json:"costed_plans"`
	Cost        float64 `json:"cost"`
	// BytesPerOp and AllocsPerOp are the median heap bytes and heap
	// allocations of one planning call (runtime.MemStats deltas around
	// the run; the process is single-threaded while measuring).
	BytesPerOp  uint64 `json:"bytes_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	TimedOut    bool   `json:"timed_out,omitempty"`
	// GreedyCost and Regret are -regret mode only: the greedy plan's
	// cost for the cell and its ratio to the exact optimum (Cost).
	GreedyCost float64 `json:"greedy_cost,omitempty"`
	Regret     float64 `json:"regret,omitempty"`
}

// jsonReport is the top-level -json document. NumCPU and GOMAXPROCS
// record the hardware the numbers were taken on — parallel-enumeration
// medians from different core counts are not comparable, so every
// BENCH_*.json carries its own.
type jsonReport struct {
	Reps       int          `json:"reps"`
	Full       bool         `json:"full"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Results    []jsonRecord `json:"results"`
}

func (r *jsonReport) add(rec jsonRecord) {
	if r != nil {
		r.Results = append(r.Results, rec)
	}
}

func (r *jsonReport) write(path string) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbench: encoding -json report:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dpbench: writing -json report:", err)
		os.Exit(1)
	}
}

func main() {
	var (
		full    = flag.Bool("full", false, "run at the paper's sizes (DPsize/DPsub on 16-relation stars take minutes)")
		run     = flag.String("run", "", "comma-separated experiment ids to run (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		reps    = flag.Int("reps", 3, "repetitions per measurement (median is reported)")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables")
		timeout = flag.Duration("cell-timeout", 0, "per-cell deadline, 0 = none (cancellation is checked inside the enumeration loops)")
		solver  = flag.String("solver", "", "run the §4 shape sweep with this solver (auto | dphyp | dpsize | dpsub | dpccp | topdown | greedy | iterdp) instead of the experiment suite")
		costMod = flag.String("cost", "cout", "cost model for the -solver sweep: cout | cmm | nlj | hash | physical")
		sweepN  = flag.Int("sweep-max-n", 12, "largest relation count per family in the -solver sweep")
		par     = flag.Int("parallel", 1, "enumeration workers for the -solver sweep (0 = GOMAXPROCS, 1 = serial)")
		regret  = flag.Bool("regret", false, "report greedy regret (greedy cost ÷ exact-optimal cost) per shape family × cost model — the plan-quality price of the overload ladder's bottom rung")
		jsonOut = flag.String("json", "", "write machine-readable results to this path")
	)
	flag.Parse()

	var report *jsonReport
	if *jsonOut != "" {
		report = &jsonReport{
			Reps: *reps, Full: *full,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
			Results: []jsonRecord{},
		}
	}

	if *regret {
		runRegret(*sweepN, *csv, report)
		if report != nil {
			report.write(*jsonOut)
		}
		return
	}

	if *solver != "" {
		runShapeSweep(*solver, *costMod, *sweepN, *reps, *par, *csv, *timeout, report)
		if report != nil {
			report.write(*jsonOut)
		}
		return
	}

	set := experiments.Quick()
	if *full {
		set = experiments.All()
	}
	if *list {
		for _, s := range set {
			fmt.Printf("%-22s %s\n", s.ID, s.Title)
		}
		return
	}
	selected := set
	if *run != "" {
		selected = nil
		for _, id := range strings.Split(*run, ",") {
			s, ok := experiments.ByID(set, strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "dpbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, s)
		}
	}

	if *csv {
		fmt.Println("experiment,x,algorithm,ms,csg_cmp_pairs,costed_plans,cost")
	} else {
		// Suite header: parallel cells are only comparable across runs
		// taken on the same core count, so every report leads with it.
		fmt.Printf("# dpbench suite  [reps=%d full=%v cpus=%d gomaxprocs=%d]\n",
			*reps, *full, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	for _, s := range selected {
		runSeries(s, *reps, *csv, *timeout, report)
	}
	if report != nil {
		report.write(*jsonOut)
	}
}

func runSeries(s experiments.Series, reps int, csv bool, timeout time.Duration, report *jsonReport) {
	if !csv {
		fmt.Printf("\n## %s  [%s]\n", s.Title, s.ID)
		if s.Paper != "" {
			fmt.Printf("paper expectation: %s\n", s.Paper)
		}
		fmt.Printf("\n| %s |", s.XLabel)
		for _, a := range s.Algs {
			fmt.Printf(" %s [ms] |", a)
		}
		fmt.Printf(" #ccp |\n|")
		for i := 0; i < len(s.Algs)+2; i++ {
			fmt.Printf("---|")
		}
		fmt.Println()
	}
	for _, x := range s.Xs {
		if !csv {
			fmt.Printf("| %d |", x)
		}
		var pairs int
		for _, alg := range s.Algs {
			runner := s.Make(x, alg)
			ms, st, cost, bytesPer, allocsPer, timedOut := measure(runner, reps, timeout)
			pairs = st.CsgCmpPairs
			rec := jsonRecord{
				Experiment: s.ID, N: x, Solver: alg, CostModel: "cout",
				MS: ms, CsgCmpPairs: st.CsgCmpPairs, CostedPlans: st.CostedPlans, Cost: cost,
				BytesPerOp: bytesPer, AllocsPerOp: allocsPer,
			}
			if timedOut {
				rec.MS, rec.Cost, rec.TimedOut = -1, 0, true
			} else {
				rec.Algorithm = alg
			}
			report.add(rec)
			switch {
			case csv && timedOut:
				fmt.Printf("%s,%d,%s,-1,%d,%d,NaN\n", s.ID, x, alg, st.CsgCmpPairs, st.CostedPlans)
			case csv:
				fmt.Printf("%s,%d,%s,%.4f,%d,%d,%g\n", s.ID, x, alg, ms, st.CsgCmpPairs, st.CostedPlans, cost)
			case timedOut:
				fmt.Printf(" t/o |")
			default:
				fmt.Printf(" %s |", fmtMS(ms))
			}
		}
		if !csv {
			fmt.Printf(" %d |\n", pairs)
		}
	}
}

// allocMeter snapshots runtime.MemStats around one run so each cell can
// report its allocation footprint alongside wall time. The deltas are
// exact for the single-threaded benchmark loop (no concurrent mutators).
type allocMeter struct{ before runtime.MemStats }

func (a *allocMeter) start() { runtime.ReadMemStats(&a.before) }

func (a *allocMeter) stop() (bytes, allocs uint64) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - a.before.TotalAlloc, after.Mallocs - a.before.Mallocs
}

// medianU64 returns the median of a non-empty sample.
func medianU64(xs []uint64) uint64 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[len(xs)/2]
}

// measure returns the median wall time in milliseconds over reps runs,
// the enumeration statistics, the plan cost, the median allocation
// footprint, and whether the cell was cancelled by the per-cell
// deadline.
func measure(r experiments.Runner, reps int, timeout time.Duration) (float64, dp.Stats, float64, uint64, uint64, bool) {
	times := make([]float64, 0, reps)
	bytesPer := make([]uint64, 0, reps)
	allocsPer := make([]uint64, 0, reps)
	var stats dp.Stats
	var cost float64
	var meter allocMeter
	for i := 0; i < reps; i++ {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		meter.start()
		start := time.Now()
		p, st, err := r(ctx)
		elapsed := time.Since(start)
		b, a := meter.stop()
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				// Partial statistics show how far the cell got.
				return 0, st, 0, 0, 0, true
			}
			fmt.Fprintf(os.Stderr, "dpbench: optimization failed: %v\n", err)
			os.Exit(1)
		}
		times = append(times, float64(elapsed.Nanoseconds())/1e6)
		bytesPer = append(bytesPer, b)
		allocsPer = append(allocsPer, a)
		stats = st
		cost = p.Cost
		// Very slow cells are not repeated: one sample tells the story.
		if elapsed > 20*time.Second {
			break
		}
	}
	sort.Float64s(times)
	return times[len(times)/2], stats, cost, medianU64(bytesPer), medianU64(allocsPer), false
}

// runShapeSweep drives the §4 chain/cycle/star/clique families through
// the public Planner — the adaptive-planning counterpart of the fixed
// experiment series. Cliques are capped at 12 relations for exact
// solvers (their Θ(3ⁿ) cells leave the benchmark regime); the auto
// router degrades larger cliques to greedy by itself, so -solver auto
// sweeps the full range.
func runShapeSweep(solverName, costName string, maxN, reps, parallel int, csv bool, timeout time.Duration, report *jsonReport) {
	if reps < 1 {
		reps = 1
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	alg, err := repro.ParseAlgorithm(solverName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbench:", err)
		os.Exit(2)
	}
	model, err := repro.ParseCostModel(costName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbench:", err)
		os.Exit(2)
	}
	// Caching is disabled: every cell must measure a real enumeration.
	planner := repro.NewPlanner(
		repro.WithAlgorithm(alg),
		repro.WithCostModel(model),
		repro.WithPlanCacheSize(0),
		repro.WithParallelism(parallel),
	)
	// Up to the historical 64-relation ceiling the sweep keeps the
	// DefaultConfig cells comparable with earlier BENCH_PR*.json records;
	// beyond it the LargeConfig regime applies — DefaultConfig's ~10x
	// per-join growth overflows float64 cardinalities near 100 joins,
	// while LargeConfig's PK-FK-style selectivities keep every cell's
	// cost finite for the iterdp tier.
	cfgFor := func(n int) workload.Config {
		if n > 64 {
			return workload.LargeConfig()
		}
		return workload.DefaultConfig()
	}

	cliqueMax := maxN
	if alg != repro.SolverAuto && alg != repro.Greedy && alg != repro.IterDP && cliqueMax > 12 {
		cliqueMax = 12
	}
	families := []struct {
		name string
		make func(n int) *repro.Graph
		maxN int
	}{
		{"chain", func(n int) *repro.Graph { return workload.Chain(n, cfgFor(n)) }, maxN},
		{"cycle", func(n int) *repro.Graph { return workload.Cycle(n, cfgFor(n)) }, maxN},
		{"star", func(n int) *repro.Graph { return workload.Star(n, cfgFor(n)) }, maxN},
		{"clique", func(n int) *repro.Graph { return workload.Clique(n, cfgFor(n)) }, cliqueMax},
	}

	if csv {
		fmt.Println("family,n,solver,cost_model,parallel,algorithm,ms,csg_cmp_pairs,cost")
	} else {
		fmt.Printf("\n## §4 shape sweep  [solver=%s cost=%s parallel=%d cpus=%d gomaxprocs=%d]\n\n",
			solverName, costName, parallel, runtime.NumCPU(), runtime.GOMAXPROCS(0))
		fmt.Println("| family | n | algorithm | ms | #ccp | cost |")
		fmt.Println("|---|---|---|---|---|---|")
	}
	for _, fam := range families {
		for n := 4; n <= fam.maxN; n++ {
			g := fam.make(n)
			var (
				times     []float64
				bytesPer  []uint64
				allocsPer []uint64
				res       *repro.Result
				meter     allocMeter
			)
			timedOut := false
			for r := 0; r < reps; r++ {
				ctx := context.Background()
				cancel := context.CancelFunc(func() {})
				if timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, timeout)
				}
				meter.start()
				start := time.Now()
				out, err := planner.PlanGraph(ctx, g)
				elapsed := time.Since(start)
				b, a := meter.stop()
				cancel()
				if err != nil {
					if errors.Is(err, context.DeadlineExceeded) {
						timedOut = true
						break
					}
					fmt.Fprintf(os.Stderr, "dpbench: %s n=%d: %v\n", fam.name, n, err)
					os.Exit(1)
				}
				res = out
				times = append(times, float64(elapsed.Nanoseconds())/1e6)
				bytesPer = append(bytesPer, b)
				allocsPer = append(allocsPer, a)
			}
			if timedOut {
				report.add(jsonRecord{
					Experiment: "shape-sweep", Family: fam.name, N: n,
					Solver: solverName, CostModel: costName, Parallel: parallel, MS: -1, TimedOut: true,
				})
				if csv {
					fmt.Printf("%s,%d,%s,%s,%d,,-1,0,NaN\n", fam.name, n, solverName, costName, parallel)
				} else {
					fmt.Printf("| %s | %d | t/o | t/o | | |\n", fam.name, n)
				}
				continue
			}
			sort.Float64s(times)
			ms := times[len(times)/2]
			algName := res.Algorithm.String()
			report.add(jsonRecord{
				Experiment: "shape-sweep", Family: fam.name, N: n,
				Solver: solverName, CostModel: costName, Parallel: parallel, Algorithm: algName,
				MS: ms, CsgCmpPairs: res.Stats.CsgCmpPairs, CostedPlans: res.Stats.CostedPlans,
				Cost: res.Cost(), BytesPerOp: medianU64(bytesPer), AllocsPerOp: medianU64(allocsPer),
			})
			if csv {
				fmt.Printf("%s,%d,%s,%s,%d,%s,%.4f,%d,%g\n",
					fam.name, n, solverName, costName, parallel, algName, ms, res.Stats.CsgCmpPairs, res.Cost())
			} else {
				fmt.Printf("| %s | %d | %s | %s | %d | %.4g |\n",
					fam.name, n, algName, fmtMS(ms), res.Stats.CsgCmpPairs, res.Cost())
			}
		}
	}
}

// runRegret quantifies what the degradation ladder's bottom rung gives
// up in plan quality: for every §4 shape family × cost model × size it
// plans the same graph exactly (DPhyp) and greedily (GOO) and reports
// the ratio greedy-cost ÷ optimal-cost. Cliques stop at 12 relations,
// where the exact oracle leaves the benchmark regime. Regret is a pure
// cost computation — cells run once, uncached and untimed — and a
// ratio below 1 is a hard error: it would mean the exact enumeration
// was not optimal under its own cost model.
func runRegret(maxN int, csv bool, report *jsonReport) {
	if maxN < 4 {
		maxN = 4
	}
	cfgFor := func(n int) workload.Config {
		if n > 64 {
			return workload.LargeConfig()
		}
		return workload.DefaultConfig()
	}
	cliqueMax := maxN
	if cliqueMax > 12 {
		cliqueMax = 12
	}
	families := []struct {
		name string
		make func(n int) *repro.Graph
		maxN int
	}{
		{"chain", func(n int) *repro.Graph { return workload.Chain(n, cfgFor(n)) }, maxN},
		{"cycle", func(n int) *repro.Graph { return workload.Cycle(n, cfgFor(n)) }, maxN},
		{"star", func(n int) *repro.Graph { return workload.Star(n, cfgFor(n)) }, maxN},
		{"clique", func(n int) *repro.Graph { return workload.Clique(n, cfgFor(n)) }, cliqueMax},
	}
	models := []string{"cout", "cmm", "nlj", "hash", "physical"}
	exactAlg, err := repro.ParseAlgorithm("dphyp")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbench:", err)
		os.Exit(2)
	}
	greedyAlg, err := repro.ParseAlgorithm("greedy")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpbench:", err)
		os.Exit(2)
	}

	if csv {
		fmt.Println("family,cost_model,n,optimal_cost,greedy_cost,regret")
	} else {
		fmt.Printf("\n## greedy regret vs the exact optimum  [max-n=%d]\n", maxN)
		fmt.Println("regret = greedy cost ÷ optimal cost; 1.0 means greedy found the optimum")
		fmt.Println()
		fmt.Println("| family | cost model | cells | geomean | max | at n |")
		fmt.Println("|---|---|---|---|---|---|")
	}
	for _, fam := range families {
		for _, mname := range models {
			model, err := repro.ParseCostModel(mname)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dpbench:", err)
				os.Exit(2)
			}
			exact := repro.NewPlanner(
				repro.WithAlgorithm(exactAlg), repro.WithCostModel(model), repro.WithPlanCacheSize(0))
			greedy := repro.NewPlanner(
				repro.WithAlgorithm(greedyAlg), repro.WithCostModel(model), repro.WithPlanCacheSize(0))
			var logSum float64
			cells := 0
			maxR, maxAt := 0.0, 0
			for n := 4; n <= fam.maxN; n++ {
				g := fam.make(n)
				opt, err := exact.PlanGraph(context.Background(), g)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dpbench: exact %s n=%d under %s: %v\n", fam.name, n, mname, err)
					os.Exit(1)
				}
				gr, err := greedy.PlanGraph(context.Background(), g)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dpbench: greedy %s n=%d under %s: %v\n", fam.name, n, mname, err)
					os.Exit(1)
				}
				ratio := 0.0
				if opt.Cost() > 0 {
					ratio = gr.Cost() / opt.Cost()
				}
				if ratio > 0 && ratio < 1-1e-9 {
					fmt.Fprintf(os.Stderr, "dpbench: regret %g < 1 for %s n=%d under %s — exact plan not optimal\n",
						ratio, fam.name, n, mname)
					os.Exit(1)
				}
				report.add(jsonRecord{
					Experiment: "regret", Family: fam.name, N: n,
					Solver: "greedy", CostModel: mname, Algorithm: "greedy",
					Cost: opt.Cost(), GreedyCost: gr.Cost(), Regret: ratio,
				})
				if csv {
					fmt.Printf("%s,%s,%d,%g,%g,%.6f\n", fam.name, mname, n, opt.Cost(), gr.Cost(), ratio)
				}
				if ratio > 0 {
					logSum += math.Log(ratio)
					cells++
					if ratio > maxR {
						maxR, maxAt = ratio, n
					}
				}
			}
			if !csv && cells > 0 {
				fmt.Printf("| %s | %s | %d | %.4f | %.4f | %d |\n",
					fam.name, mname, cells, math.Exp(logSum/float64(cells)), maxR, maxAt)
			}
		}
	}
}

func fmtMS(ms float64) string {
	switch {
	case ms < 0.01:
		return fmt.Sprintf("%.4f", ms)
	case ms < 1:
		return fmt.Sprintf("%.3f", ms)
	case ms < 100:
		return fmt.Sprintf("%.2f", ms)
	default:
		return fmt.Sprintf("%.0f", ms)
	}
}
