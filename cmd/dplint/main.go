// Command dplint runs the repository's invariant analyzers (see
// internal/lint) over the module and reports findings in a
// vet-compatible file:line:col format.
//
// Usage:
//
//	dplint [flags] [dir]
//
// The single optional argument is the module root (default "."); the
// conventional invocation `dplint ./...` is accepted and means the
// module rooted at the current directory — the analyzers are
// whole-program and always cover every package.
//
// Flags:
//
//	-json     emit a machine-readable summary (per-analyzer active and
//	          suppressed finding counts) instead of the finding list;
//	          CI diffs this output against LINT_BASELINE.json
//	-list     list the registered analyzers and exit
//	-v        also print suppressed findings with their justifications
//
// Exit status: 0 when no active findings, 1 when at least one active
// finding, 2 on load/usage errors. Suppressed findings never affect
// the exit status — but they stay visible in -json so tracked
// worklists (bitsetwidth, ROADMAP item 1) cannot silently grow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicbudget"
	"repro/internal/lint/bitsetwidth"
	"repro/internal/lint/chaosgate"
	"repro/internal/lint/ctxpoll"
	"repro/internal/lint/hotpathalloc"
)

var analyzers = []*analysis.Analyzer{
	atomicbudget.Analyzer,
	bitsetwidth.Analyzer,
	chaosgate.Analyzer,
	ctxpoll.Analyzer,
	hotpathalloc.Analyzer,
}

// Summary is the -json output shape, also the schema of
// LINT_BASELINE.json. Counts are keyed by analyzer name ("nolint"
// counts malformed suppression directives). Only counts are recorded —
// positions would churn with every unrelated edit.
type Summary struct {
	Analyzers map[string]Counts `json:"analyzers"`
}

// Counts splits one analyzer's findings by suppression state.
type Counts struct {
	Active     int `json:"active"`
	Suppressed int `json:"suppressed"`
}

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit per-analyzer finding counts as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	dir := "."
	switch flag.NArg() {
	case 0:
	case 1:
		if arg := flag.Arg(0); arg != "./..." {
			dir = arg
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: dplint [flags] [module-dir | ./...]")
		return 2
	}

	prog, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dplint:", err)
		return 2
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dplint:", err)
		return 2
	}

	if *jsonOut {
		return emitJSON(diags)
	}

	active := 0
	for _, d := range diags {
		if d.Suppressed {
			if *verbose {
				fmt.Printf("%s: [%s] suppressed: %s (reason: %s)\n",
					d.Position, d.Analyzer, d.Message, d.Reason)
			}
			continue
		}
		active++
		fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	if active > 0 {
		fmt.Fprintf(os.Stderr, "dplint: %d finding(s)\n", active)
		return 1
	}
	return 0
}

func emitJSON(diags []analysis.Diagnostic) int {
	sum := Summary{Analyzers: make(map[string]Counts)}
	for _, a := range analyzers {
		sum.Analyzers[a.Name] = Counts{}
	}
	active := 0
	for _, d := range diags {
		c := sum.Analyzers[d.Analyzer]
		if d.Suppressed {
			c.Suppressed++
		} else {
			c.Active++
			active++
		}
		sum.Analyzers[d.Analyzer] = c
	}
	// Drop analyzers with no findings at all? No: a zero entry proves
	// the analyzer ran. Keep every registered analyzer plus any extra
	// keys (nolint) that produced findings, sorted by the encoder.
	keys := make([]string, 0, len(sum.Analyzers))
	for k := range sum.Analyzers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "dplint:", err)
		return 2
	}
	if active > 0 {
		return 1
	}
	return 0
}
