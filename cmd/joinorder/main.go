// Command joinorder optimizes a single query given in the repository's
// JSON format (see repro.QueryJSON) and prints the optimal plan.
//
// Usage:
//
//	joinorder query.json
//	joinorder -algorithm dpsize query.json
//	joinorder -algorithm auto query.json      # topology-routed solver
//	joinorder -model physical query.json      # physical operator selection
//	cat query.json | joinorder -
//	joinorder -trace -stats query.json
//	joinorder -dot query.json        # emit the query hypergraph as Graphviz
//	joinorder -timeout 2s -max-pairs 100000 query.json
//
// The query is either a hypergraph ("relations" + "edges") or an initial
// operator tree ("relations" + "tree") for queries with outer joins,
// antijoins, semijoins, or nestjoins.
//
// With -timeout the optimization is cancelled mid-enumeration when the
// deadline passes; with -max-pairs / -max-plans the exact enumeration
// is budgeted and degrades to a Greedy (GOO) plan when the budget
// trips (reported on stderr and in -stats).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	var (
		algName   = flag.String("algorithm", "dphyp", "dphyp | dpsize | dpsub | dpccp | topdown | greedy | auto")
		modelName = flag.String("model", "cout", "cost model: cout | cmm | nlj | hash | physical")
		genTest   = flag.Bool("generate-and-test", false, "use the §5.8 TES generate-and-test mode for tree queries")
		published = flag.Bool("published-rule", false, "use the literal §5.5 conflict rule instead of the conservative default")
		showTrace = flag.Bool("trace", false, "print the DPhyp enumeration trace (Fig. 3 style)")
		showStats = flag.Bool("stats", false, "print enumeration statistics")
		compact   = flag.Bool("compact", false, "print the plan on one line")
		dot       = flag.Bool("dot", false, "emit the query hypergraph as Graphviz and exit")
		timeout   = flag.Duration("timeout", 0, "optimization deadline, 0 = none")
		maxPairs  = flag.Int("max-pairs", 0, "budget: max csg-cmp-pairs before Greedy fallback, 0 = unlimited")
		maxPlans  = flag.Int("max-plans", 0, "budget: max costed plans before Greedy fallback, 0 = unlimited")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: joinorder [flags] <query.json | ->")
		flag.PrintDefaults()
		os.Exit(2)
	}

	data, err := readInput(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	q, err := repro.ParseQuery(data)
	if err != nil {
		fail(err)
	}

	alg, err := repro.ParseAlgorithm(*algName)
	if err != nil {
		fail(err)
	}
	model, err := repro.ParseCostModel(*modelName)
	if err != nil {
		fail(err)
	}
	opts := []repro.Option{repro.WithAlgorithm(alg), repro.WithCostModel(model)}
	if *genTest {
		opts = append(opts, repro.WithGenerateAndTest())
	}
	if *published {
		opts = append(opts, repro.WithPublishedConflictRule())
	}
	var tr repro.Trace
	if *showTrace {
		opts = append(opts, repro.WithTrace(&tr))
	}
	if *maxPairs > 0 || *maxPlans > 0 {
		opts = append(opts, repro.WithBudget(repro.Budget{
			MaxCsgCmpPairs: *maxPairs,
			MaxCostedPlans: *maxPlans,
		}))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	planner := repro.NewPlanner(opts...)
	res, err := planner.PlanJSON(ctx, q)
	if err != nil {
		fail(err)
	}
	if res.Stats.FallbackGreedy {
		fmt.Fprintln(os.Stderr, "joinorder: enumeration budget exhausted; returning greedy (GOO) plan")
	}

	if *dot {
		fmt.Print(res.Graph.Dot())
		return
	}
	if *compact {
		fmt.Println(res.Plan.Compact())
	} else {
		fmt.Print(res.Plan.String())
	}
	fmt.Printf("cost=%g cardinality=%g shape=%s\n", res.Cost(), res.Cardinality(), res.Plan.TreeShape())
	if *showStats {
		s := res.Stats
		fmt.Printf("csg-cmp-pairs=%d costed-plans=%d filter-rejected=%d invalid-rejected=%d table-entries=%d algorithm=%s budget-exhausted=%t fallback-greedy=%t\n",
			s.CsgCmpPairs, s.CostedPlans, s.FilterReject, s.InvalidReject, s.TableEntries,
			res.Algorithm, s.BudgetExhausted, s.FallbackGreedy)
		if s.AutoRouted {
			fmt.Printf("auto-routed: shape=%s routed-algorithm=%s\n", s.Shape, s.RoutedAlgorithm)
		}
	}
	if *showTrace {
		fmt.Print(tr.String())
	}
}

func readInput(arg string) ([]byte, error) {
	if arg == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(arg)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "joinorder:", err)
	os.Exit(1)
}
