// Command dpserved is the plan-serving daemon: it wraps a repro.Planner
// in the service package's HTTP API and runs it until SIGINT/SIGTERM,
// then drains gracefully.
//
// Usage:
//
//	dpserved                              # serve on :8080 with defaults
//	dpserved -addr :9090 -workers 8 -queue 256
//	dpserved -solver auto -cost physical  # planner defaults for all requests
//	dpserved -budget-pairs 5000000        # budget + greedy fallback per plan
//	dpserved -parallel 4                  # multi-core exact enumeration per plan
//	dpserved -debug-addr localhost:6060   # pprof + debug surfaces, off the main port
//	dpserved -history-file plans.json     # persistent planning-cost history
//	dpserved -snapshot-file cache.json    # warm-start plan-cache snapshot
//	dpserved -overload-ladder -target-p99 100ms  # degrade before shedding under load
//	dpserved -slow-plan 100ms             # warn (with phase totals) on slow plans
//
// Quickstart:
//
//	dpserved -addr :8080 &
//	querygen -family star -n 8 | jq '{query: .}' \
//	    | curl -sS -d @- localhost:8080/plan | jq .cost
//	querygen -family star -n 8 | jq '{query: .}' \
//	    | curl -sS -d @- 'localhost:8080/plan?explain=1' | jq .trace
//	curl -sS localhost:8080/metrics | grep planner_plan_seconds | head
//	curl -sS localhost:8080/debug/plans | jq '.[0]'
//
// Endpoints: POST /plan (?explain=1 for a phase trace), POST /batch,
// GET /healthz, GET /metrics, GET /debug/plans, GET /debug/history —
// see package repro/service for the wire format, admission control, and
// coalescing semantics. With -debug-addr a second listener additionally
// serves net/http/pprof and GET /debug/runtime; keep it on loopback.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro"
	"repro/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		debugAddr   = flag.String("debug-addr", "", "listen address for pprof and debug surfaces (empty = disabled; keep loopback-only)")
		workers     = flag.Int("workers", 0, "concurrent enumerations (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "admission queue depth beyond the workers; overflow is shed with 429")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		cacheSize   = flag.Int("cache-size", 4096, "plan cache entries (0 disables caching)")
		solver      = flag.String("solver", "auto", "default algorithm: auto | dphyp | dpsize | dpsub | dpccp | topdown | greedy")
		costMod     = flag.String("cost", "cout", "default cost model: cout | cmm | nlj | hash | physical")
		budgetPairs = flag.Int("budget-pairs", 10_000_000, "per-plan csg-cmp-pair budget before greedy fallback (0 = unlimited)")
		parallel    = flag.Int("parallel", 0, "enumeration workers per plan (0 = GOMAXPROCS, 1 = serial); large cache-miss queries fan out across cores")
		historyFile = flag.String("history-file", "", "persistent planning-cost history JSON (loaded at startup, saved periodically and at shutdown)")
		historyInt  = flag.Duration("history-interval", 5*time.Minute, "periodic history save cadence")
		snapFile    = flag.String("snapshot-file", "", "persistent plan-cache snapshot JSON (restored at startup for warm-start, saved periodically and at shutdown)")
		snapInt     = flag.Duration("snapshot-interval", 5*time.Minute, "periodic plan-cache snapshot save cadence")
		overload    = flag.Bool("overload-ladder", false, "enable the overload degradation ladder (tighten budgets -> greedy-only -> shed)")
		targetP99   = flag.Duration("target-p99", 0, "planning-latency SLO the ladder defends (0 = queue depth only; implies -overload-ladder)")
		degBudget   = flag.Duration("degraded-budget", 50*time.Millisecond, "plan budget imposed at ladder tier 1+")
		ladderHold  = flag.Duration("ladder-hold", 5*time.Second, "quiet period before the ladder de-escalates one tier")
		slowPlan    = flag.Duration("slow-plan", 0, "log a warning for planning requests at least this slow (0 = disabled)")
		traceSample = flag.Int("trace-sample", 0, "attach an explain trace to 1 in N planning requests for /debug/plans (0 = disabled)")
		ringSize    = flag.Int("ring-size", 32, "slowest plans kept for /debug/plans")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight plans")
		logLevel    = flag.String("log-level", "info", "log level: debug | info | warn | error")
		quiet       = flag.Bool("quiet", false, "suppress per-request logs (level warn)")
	)
	flag.Parse()

	alg, err := repro.ParseAlgorithm(*solver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpserved:", err)
		os.Exit(2)
	}
	model, err := repro.ParseCostModel(*costMod)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpserved:", err)
		os.Exit(2)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "dpserved: bad -log-level:", err)
		os.Exit(2)
	}
	if *quiet && level < slog.LevelWarn {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	planner := repro.NewPlanner(
		repro.WithAlgorithm(alg),
		repro.WithCostModel(model),
		repro.WithPlanCacheSize(*cacheSize),
		repro.WithBudget(repro.Budget{MaxCsgCmpPairs: *budgetPairs}),
		repro.WithParallelism(*parallel),
	)
	cfg := service.Config{
		Planner:           planner,
		Workers:           *workers,
		QueueDepth:        *queue,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		Logger:            logger,
		HistoryPath:       *historyFile,
		HistoryInterval:   *historyInt,
		SnapshotPath:      *snapFile,
		SnapshotInterval:  *snapInt,
		SlowPlanThreshold: *slowPlan,
		TraceSample:       *traceSample,
		RingSize:          *ringSize,
	}
	if *overload || *targetP99 > 0 {
		cfg.Overload = &service.OverloadConfig{
			TargetP99:      *targetP99,
			Hold:           *ladderHold,
			DegradedBudget: *degBudget,
		}
	}
	svc := service.New(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// SIGINT/SIGTERM start the drain; a second signal aborts hard.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("dpserved: serving",
			"addr", *addr, "solver", *solver, "cost", *costMod,
			"workers", cfg.Workers, "queue", cfg.QueueDepth)
		errCh <- httpSrv.ListenAndServe()
	}()

	// The debug listener is separate so profiling endpoints (which can
	// block for seconds and expose internals) never share a port with
	// plan traffic.
	var dbgSrv *http.Server
	if *debugAddr != "" {
		dbgSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           svc.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("dpserved: debug surfaces on", "addr", *debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("dpserved: debug serve", "error", err)
			}
		}()
	}

	select {
	case err := <-errCh:
		logger.Error("dpserved: serve", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second ^C kills immediately

	logger.Info("dpserved: signal received; draining", "timeout", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()

	// Drain the service first (new plans are refused, in-flight ones
	// finish, the planning-cost history is saved), then close the
	// listeners and idle connections.
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Warn("dpserved: drain incomplete", "error", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("dpserved: http shutdown", "error", err)
	}
	if dbgSrv != nil {
		if err := dbgSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("dpserved: debug shutdown", "error", err)
		}
	}

	m := planner.Metrics()
	logger.Info("dpserved: drained; bye",
		"plans", m.Plans, "cache_hits", m.CacheHits,
		"fallbacks", m.Fallbacks, "failures", m.Failures)
}
