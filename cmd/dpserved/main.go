// Command dpserved is the plan-serving daemon: it wraps a repro.Planner
// in the service package's HTTP API and runs it until SIGINT/SIGTERM,
// then drains gracefully.
//
// Usage:
//
//	dpserved                              # serve on :8080 with defaults
//	dpserved -addr :9090 -workers 8 -queue 256
//	dpserved -solver auto -cost physical  # planner defaults for all requests
//	dpserved -budget-pairs 5000000        # budget + greedy fallback per plan
//	dpserved -parallel 4                  # multi-core exact enumeration per plan
//
// Quickstart:
//
//	dpserved -addr :8080 &
//	querygen -family star -n 8 | jq '{query: .}' \
//	    | curl -sS -d @- localhost:8080/plan | jq .cost
//	curl -sS localhost:8080/metrics | grep planner_
//
// Endpoints: POST /plan, POST /batch, GET /healthz, GET /metrics — see
// package repro/service for the wire format, admission control, and
// coalescing semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro"
	"repro/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "concurrent enumerations (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "admission queue depth beyond the workers; overflow is shed with 429")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		cacheSize   = flag.Int("cache-size", 4096, "plan cache entries (0 disables caching)")
		solver      = flag.String("solver", "auto", "default algorithm: auto | dphyp | dpsize | dpsub | dpccp | topdown | greedy")
		costMod     = flag.String("cost", "cout", "default cost model: cout | cmm | nlj | hash | physical")
		budgetPairs = flag.Int("budget-pairs", 10_000_000, "per-plan csg-cmp-pair budget before greedy fallback (0 = unlimited)")
		parallel    = flag.Int("parallel", 0, "enumeration workers per plan (0 = GOMAXPROCS, 1 = serial); large cache-miss queries fan out across cores")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight plans")
		quiet       = flag.Bool("quiet", false, "suppress per-request access logs")
	)
	flag.Parse()

	alg, err := repro.ParseAlgorithm(*solver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpserved:", err)
		os.Exit(2)
	}
	model, err := repro.ParseCostModel(*costMod)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpserved:", err)
		os.Exit(2)
	}

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	planner := repro.NewPlanner(
		repro.WithAlgorithm(alg),
		repro.WithCostModel(model),
		repro.WithPlanCacheSize(*cacheSize),
		repro.WithBudget(repro.Budget{MaxCsgCmpPairs: *budgetPairs}),
		repro.WithParallelism(*parallel),
	)
	logger := log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	cfg := service.Config{
		Planner:        planner,
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}
	if !*quiet {
		cfg.Logger = logger
	}
	svc := service.New(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// SIGINT/SIGTERM start the drain; a second signal aborts hard.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("dpserved: serving on %s (solver=%s cost=%s workers=%d queue=%d)",
			*addr, *solver, *costMod, cfg.Workers, cfg.QueueDepth)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		logger.Fatalf("dpserved: serve: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second ^C kills immediately

	logger.Printf("dpserved: signal received; draining (up to %s)", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()

	// Drain the service first (new plans are refused, in-flight ones
	// finish), then close the listener and idle connections.
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Printf("dpserved: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("dpserved: http shutdown: %v", err)
	}

	m := planner.Metrics()
	logger.Printf("dpserved: drained; served %d plans (%d cache hits, %d fallbacks, %d failures); bye",
		m.Plans, m.CacheHits, m.Fallbacks, m.Failures)
}
