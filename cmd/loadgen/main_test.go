package main

import (
	"math"
	"testing"
)

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 5}, {90, 9}, {99, 10}, {100, 10}, {1, 1},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(%v) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := percentile([]float64{42}, 99); got != 42 {
		t.Errorf("singleton p99 = %g, want 42", got)
	}
	if !math.IsNaN(percentile(nil, 50)) {
		t.Error("empty percentile is not NaN")
	}
}

func TestRequestBodies(t *testing.T) {
	bodies, err := requestBodies("star", 6, 3, 7, "auto", "cout", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 3 {
		t.Fatalf("%d bodies, want 3", len(bodies))
	}
	// Distinct seeds must produce distinct documents (different
	// fingerprints defeat the cache, which is the point of -distinct).
	if string(bodies[0]) == string(bodies[1]) {
		t.Error("variant 0 and 1 are identical")
	}
	if _, err := requestBodies("pentagram", 6, 1, 7, "", "", 0); err == nil {
		t.Error("unknown family accepted")
	}
}
