// Command loadgen replays querygen-style workloads against a running
// dpserved at a target QPS and reports latency percentiles — the load
// half of the serving smoke test.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -family star -n 8 -qps 1000 -duration 10s
//	loadgen -family chain -n 12 -distinct 32     # 32 query variants → cache churn
//	loadgen -qps 2000 -min-qps 1000 -min-success 0.999   # gate for CI
//	loadgen -qps 5000 -retries 3                 # back off and resend on 429 sheds
//
// The generator is open-loop: it schedules sends at the target rate
// regardless of response latency (up to -concurrency in-flight), so a
// saturated server shows up as rising percentiles and 429s rather than
// as a silently reduced offered load. With -distinct 1 (default) every
// request is the same query — the cached/coalesced regime the serving
// layer optimizes for; raise -distinct to exercise enumeration and
// cache churn.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/hypergraph"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	var (
		url         = flag.String("url", "http://localhost:8080", "dpserved base URL")
		family      = flag.String("family", "star", "workload family: chain | cycle | star | clique")
		n           = flag.Int("n", 8, "relations per query")
		distinct    = flag.Int("distinct", 1, "distinct query variants cycled through")
		qps         = flag.Float64("qps", 1000, "target request rate")
		duration    = flag.Duration("duration", 10*time.Second, "measured load duration")
		warmup      = flag.Duration("warmup", 500*time.Millisecond, "unrecorded warmup before measuring")
		concurrency = flag.Int("concurrency", 64, "max in-flight requests")
		timeoutMS   = flag.Int64("timeout-ms", 2000, "per-request timeout_ms sent to the server")
		algorithm   = flag.String("algorithm", "", "per-request algorithm override (empty = server default)")
		costMod     = flag.String("cost", "", "per-request cost model override (empty = server default)")
		seed        = flag.Int64("seed", 2008, "workload seed")
		retries     = flag.Int("retries", 0, "retries per request on 429, honoring Retry-After with jittered exponential backoff (0 = report 429s without retrying)")
		minQPS      = flag.Float64("min-qps", 0, "exit 1 if achieved QPS falls below this (0 = no gate)")
		minSuccess  = flag.Float64("min-success", 0, "exit 1 if the 2xx fraction falls below this (0 = no gate)")
		jsonOut     = flag.String("json", "", "write a machine-readable run summary to this file (\"-\" = stdout)")
		checkMet    = flag.Bool("check-metrics", false, "after the run, fetch /metrics, validate the exposition, and require the per-shape planner_plan_seconds family (exit 1 on failure)")
	)
	flag.Parse()

	bodies, err := requestBodies(*family, *n, *distinct, *seed, *algorithm, *costMod, *timeoutMS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *concurrency * 2,
		MaxIdleConnsPerHost: *concurrency * 2,
	}}

	type sample struct {
		ms       float64
		code     int
		retries  int
		sheds    int
		measured bool
	}
	var (
		mu      sync.Mutex
		samples []sample
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	// Open-loop pacing: tokens are emitted on the target schedule; the
	// senders soak them up to the concurrency bound.
	interval := time.Duration(float64(time.Second) / *qps)
	tokens := make(chan time.Time)
	begin := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker jitter source: goroutine-local, seeded off the
			// workload seed so reruns back off on the same schedule.
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			i := w
			for sendAt := range tokens {
				body := bodies[i%len(bodies)]
				i += *concurrency
				start := time.Now()
				code, rt, sh := post(client, *url+"/plan", body, *retries, rng)
				record(sample{
					ms:       float64(time.Since(start).Microseconds()) / 1000,
					code:     code,
					retries:  rt,
					sheds:    sh,
					measured: sendAt.Sub(begin) >= *warmup,
				})
			}
		}(w)
	}

	total := *warmup + *duration
	sent := 0
	for {
		target := begin.Add(time.Duration(sent) * interval)
		now := time.Now()
		if now.Sub(begin) >= total {
			break
		}
		if d := target.Sub(now); d > 0 {
			time.Sleep(d)
		}
		tokens <- target
		sent++
	}
	close(tokens)
	wg.Wait()
	elapsed := time.Since(begin) - *warmup

	// Aggregate the measured window.
	var lat []float64
	codes := map[int]int{}
	ok := 0
	measured := 0
	retried, shed := 0, 0
	for _, s := range samples {
		if !s.measured {
			continue
		}
		measured++
		lat = append(lat, s.ms)
		codes[s.code]++
		retried += s.retries
		shed += s.sheds
		if s.code >= 200 && s.code < 300 {
			ok++
		}
	}
	if measured == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no measured requests (duration too short?)")
		os.Exit(1)
	}
	sort.Float64s(lat)
	achieved := float64(measured) / elapsed.Seconds()
	success := float64(ok) / float64(measured)

	// With -json - the summary owns stdout, so the human-readable report
	// moves to stderr — piping the JSON stays clean.
	out := io.Writer(os.Stdout)
	if *jsonOut == "-" {
		out = os.Stderr
	}
	fmt.Fprintf(out, "loadgen: %s %s n=%d distinct=%d → %d requests in %.2fs (target %.0f QPS)\n",
		*url, *family, *n, *distinct, measured, elapsed.Seconds(), *qps)
	fmt.Fprintf(out, "achieved %.1f QPS, %.2f%% ok\n", achieved, success*100)
	fmt.Fprintf(out, "latency ms: p50=%.3f p90=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		percentile(lat, 50), percentile(lat, 90), percentile(lat, 95), percentile(lat, 99), lat[len(lat)-1])
	keys := make([]int, 0, len(codes))
	for c := range codes {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	fmt.Fprintf(out, "status:")
	for _, c := range keys {
		fmt.Fprintf(out, " %d×%d", c, codes[c])
	}
	fmt.Fprintln(out)
	if shed > 0 || *retries > 0 {
		fmt.Fprintf(out, "shed: %d 429 responses seen, %d retries performed\n", shed, retried)
	}

	if *jsonOut != "" {
		if err := writeSummary(*jsonOut, runSummary{
			URL: *url, Family: *family, N: *n, Distinct: *distinct,
			TargetQPS: *qps, AchievedQPS: achieved, SuccessRate: success,
			Requests: measured, DurationSec: elapsed.Seconds(),
			P50: percentile(lat, 50), P90: percentile(lat, 90),
			P95: percentile(lat, 95), P99: percentile(lat, 99),
			MaxMS: lat[len(lat)-1], StatusCounts: codes,
			Retries: retried, Shed429: shed,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		}); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: write json:", err)
			os.Exit(1)
		}
	}

	if *minQPS > 0 && achieved < *minQPS {
		fmt.Fprintf(os.Stderr, "loadgen: achieved %.1f QPS < required %.1f\n", achieved, *minQPS)
		os.Exit(1)
	}
	if *minSuccess > 0 && success < *minSuccess {
		fmt.Fprintf(os.Stderr, "loadgen: success rate %.4f < required %.4f\n", success, *minSuccess)
		os.Exit(1)
	}
	if *checkMet {
		if err := checkMetrics(client, *url, *family); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: metrics check:", err)
			os.Exit(1)
		}
		fmt.Fprintln(out, "metrics: exposition valid, per-shape planning-latency family present")
	}
}

// runSummary is the machine-readable mirror of the text report. It
// embeds the load box's core count and GOMAXPROCS because achieved QPS
// and tail latency from a parallel-enumeration server are only
// comparable between runs recorded on the same core budget — a summary
// without the hardware context is a number without units.
type runSummary struct {
	URL          string      `json:"url"`
	Family       string      `json:"family"`
	N            int         `json:"n"`
	Distinct     int         `json:"distinct"`
	TargetQPS    float64     `json:"target_qps"`
	AchievedQPS  float64     `json:"achieved_qps"`
	SuccessRate  float64     `json:"success_rate"`
	Requests     int         `json:"requests"`
	DurationSec  float64     `json:"duration_sec"`
	P50          float64     `json:"p50_ms"`
	P90          float64     `json:"p90_ms"`
	P95          float64     `json:"p95_ms"`
	P99          float64     `json:"p99_ms"`
	MaxMS        float64     `json:"max_ms"`
	StatusCounts map[int]int `json:"status_counts"`
	// Retries counts backoff-and-resend attempts after a 429 (only with
	// -retries > 0); Shed429 counts every 429 response seen, including
	// ones a later retry turned into a success. Together they separate
	// "the server shed load" from "the client lost requests".
	Retries    int `json:"retries"`
	Shed429    int `json:"shed_429"`
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// writeSummary marshals the summary to path ("-" = stdout).
func writeSummary(path string, s runSummary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// checkMetrics is the observability half of the serving smoke test: the
// /metrics exposition must parse, and the traffic this run just sent
// must have materialized the dimensional planning-latency series for
// its workload shape. The shape label is the router's classification,
// so this also catches a server accidentally running without SolverAuto
// (every series would be "unclassified").
func checkMetrics(client *http.Client, url, family string) error {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %d", resp.StatusCode)
	}
	if err := obs.ValidatePrometheusText(string(text)); err != nil {
		return err
	}
	for _, want := range []string{
		fmt.Sprintf("planner_plan_seconds_bucket{shape=%q", family),
		"planner_plan_seconds_count{",
		"dpserved_request_duration_seconds_bucket{",
	} {
		if !strings.Contains(string(text), want) {
			return fmt.Errorf("exposition lacks %s", want)
		}
	}
	return nil
}

// post sends one plan request, retrying up to maxRetries times when the
// server sheds it with a 429. Each backoff honors the response's
// Retry-After as the base delay (50ms when absent), doubles per
// attempt, is capped at 2s, and is jittered into [d/2, d] so a shed
// herd does not re-arrive as a herd. Returns the final status code (0
// on transport error), the retries performed, and the 429s seen.
func post(client *http.Client, url string, body []byte, maxRetries int, rng *rand.Rand) (code, retries, sheds int) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, retries, sheds
		}
		retryAfter := resp.Header.Get("Retry-After")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp.StatusCode, retries, sheds
		}
		sheds++
		if attempt >= maxRetries {
			return resp.StatusCode, retries, sheds
		}
		retries++
		base := 50 * time.Millisecond
		if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
			base = time.Duration(s) * time.Second
		}
		d := base << attempt
		if max := 2 * time.Second; d > max || d <= 0 {
			d = max
		}
		d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
		time.Sleep(d)
	}
}

// requestBodies pre-marshals the distinct request variants: seed
// variation changes cardinalities and selectivities, which changes the
// graph fingerprint and thus defeats cache and coalescer.
func requestBodies(family string, n, distinct int, seed int64, algorithm, costMod string, timeoutMS int64) ([][]byte, error) {
	if distinct < 1 {
		distinct = 1
	}
	bodies := make([][]byte, 0, distinct)
	for i := 0; i < distinct; i++ {
		cfg := workload.DefaultConfig()
		cfg.Seed = seed + int64(i)
		var g *hypergraph.Graph
		switch family {
		case "chain":
			g = workload.Chain(n, cfg)
		case "cycle":
			g = workload.Cycle(n, cfg)
		case "star":
			g = workload.Star(n, cfg)
		case "clique":
			g = workload.Clique(n, cfg)
		default:
			return nil, fmt.Errorf("unknown family %q (have chain, cycle, star, clique)", family)
		}
		req := map[string]any{"query": graphDoc(g), "timeout_ms": timeoutMS}
		if algorithm != "" {
			req["algorithm"] = algorithm
		}
		if costMod != "" {
			req["cost_model"] = costMod
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// graphDoc converts a workload hypergraph to the wire document.
func graphDoc(g *hypergraph.Graph) *repro.QueryJSON {
	doc := &repro.QueryJSON{}
	for i := 0; i < g.NumRels(); i++ {
		r := g.Relation(i)
		doc.Relations = append(doc.Relations, repro.RelationJSON{
			Name: r.Name, Card: r.Card, Free: r.Free.Elems(),
		})
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		doc.Edges = append(doc.Edges, repro.EdgeJSON{
			Left: e.U.Elems(), Right: e.V.Elems(), Free: e.W.Elems(),
			Sel: e.Sel, Op: e.Op.String(), Label: e.Label,
		})
	}
	return doc
}

// percentile returns the p-th percentile of sorted (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
