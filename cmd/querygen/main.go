// Command querygen emits workload queries in the repository's JSON
// format, ready for cmd/joinorder.
//
// Usage:
//
//	querygen -family chain -n 8
//	querygen -family cycle-hyper -n 16 -splits 3
//	querygen -family star-hyper -n 8 -splits 1      # n = satellites
//	querygen -family star-antijoin -n 16 -k 5       # operator tree
//	querygen -family cycle-outer -n 16 -k 8         # operator tree
//	querygen -family random-hyper -n 10 -seed 7
//
// Graph families produce "relations" + "edges"; tree families produce
// "relations" + "tree".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/hypergraph"
	"repro/internal/optree"
	"repro/internal/workload"
)

func main() {
	var (
		family = flag.String("family", "chain", "chain | cycle | star | clique | cycle-hyper | star-hyper | star-antijoin | cycle-outer | random-simple | random-hyper")
		n      = flag.Int("n", 8, "relations (satellites for star-hyper)")
		splits = flag.Int("splits", 0, "hyperedge splits for *-hyper families")
		k      = flag.Int("k", 0, "non-inner operators for tree families")
		seed   = flag.Int64("seed", 2008, "seed for cardinalities/selectivities")
		large  = flag.Bool("large", false, "use the large-query workload config (PK-FK-style selectivities keep 100+-relation estimates finite)")
		check  = flag.Bool("check", false, "verify the emitted query is plannable (budgeted, 5s deadline) before printing")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	if *large {
		cfg = workload.LargeConfig()
	}
	cfg.Seed = *seed

	var doc *repro.QueryJSON
	switch *family {
	case "chain":
		doc = fromGraph(workload.Chain(*n, cfg))
	case "cycle":
		doc = fromGraph(workload.Cycle(*n, cfg))
	case "star":
		doc = fromGraph(workload.Star(*n, cfg))
	case "clique":
		doc = fromGraph(workload.Clique(*n, cfg))
	case "cycle-hyper":
		doc = fromGraph(workload.CycleHyper(*n, *splits, cfg))
	case "star-hyper":
		doc = fromGraph(workload.StarHyper(*n, *splits, cfg))
	case "star-antijoin":
		root, rels := workload.StarTree(*n, *k, cfg)
		doc = fromTree(root, rels)
	case "cycle-outer":
		root, rels := workload.CycleTree(*n, *k, cfg)
		doc = fromTree(root, rels)
	case "random-simple":
		doc = fromGraph(workload.RandomSimple(rand.New(rand.NewSource(*seed)), *n, *n/2, cfg))
	case "random-hyper":
		doc = fromGraph(workload.RandomHyper(rand.New(rand.NewSource(*seed)), *n, *n/2, cfg))
	default:
		fmt.Fprintf(os.Stderr, "querygen: unknown family %q\n", *family)
		os.Exit(2)
	}

	if *check {
		// A budgeted Planner proves the document round-trips and yields a
		// plan (greedy at worst) without letting a pathological instance
		// hang the generator.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		planner := repro.NewPlanner(repro.WithBudget(repro.Budget{MaxCsgCmpPairs: 1_000_000}))
		if _, err := planner.PlanJSON(ctx, doc); err != nil {
			fmt.Fprintln(os.Stderr, "querygen: emitted query does not plan:", err)
			os.Exit(1)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "querygen:", err)
		os.Exit(1)
	}
}

func fromGraph(g *hypergraph.Graph) *repro.QueryJSON {
	doc := &repro.QueryJSON{}
	for i := 0; i < g.NumRels(); i++ {
		r := g.Relation(i)
		doc.Relations = append(doc.Relations, repro.RelationJSON{
			Name: r.Name, Card: r.Card, Free: r.Free.Elems(),
		})
	}
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		doc.Edges = append(doc.Edges, repro.EdgeJSON{
			Left: e.U.Elems(), Right: e.V.Elems(), Free: e.W.Elems(),
			Sel: e.Sel, Op: e.Op.String(), Label: e.Label,
		})
	}
	return doc
}

func fromTree(root *optree.Node, rels []optree.RelInfo) *repro.QueryJSON {
	doc := &repro.QueryJSON{}
	for _, r := range rels {
		doc.Relations = append(doc.Relations, repro.RelationJSON{
			Name: r.Name, Card: r.Card, Free: r.Free.Elems(),
		})
	}
	doc.Tree = treeJSON(root)
	return doc
}

func treeJSON(n *optree.Node) *repro.TreeJSON {
	if n.IsLeaf() {
		rel := n.Rel
		return &repro.TreeJSON{Rel: &rel}
	}
	return &repro.TreeJSON{
		Op:    n.Op.String(),
		Left:  treeJSON(n.Left),
		Right: treeJSON(n.Right),
		Pred:  n.Pred.Tables.Elems(),
		Sel:   n.Pred.Sel,
		Label: n.Pred.Label,
	}
}
