package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

// TestParallelPlannerThroughWorkerPool is the parallel-inside-parallel
// scenario: the server's worker pool admits several requests at once,
// and each admitted enumeration fans out onto its own memo worker
// views. Distinct fingerprints defeat coalescing and the cache is off,
// so every request is a real parallel enumeration. Run under -race in
// CI.
func TestParallelPlannerThroughWorkerPool(t *testing.T) {
	planner := repro.NewPlanner(
		repro.WithAlgorithm(repro.SolverAuto),
		repro.WithPlanCacheSize(0),
		repro.WithParallelism(2),
	)
	s := New(Config{Planner: planner, Workers: 4, QueueDepth: 64})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const (
		clients  = 8
		requests = 4
		rels     = 11 // above the parallel crossover
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				// Unique hub cardinality per (client, request): every
				// request has its own fingerprint and must enumerate.
				doc := starDoc(rels, float64(10_000+100*c+r))
				code, body, err := tryPostPlan(srv.Client(), srv.URL, PlanRequest{
					Query: doc, Algorithm: "auto",
				})
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, code, body)
					return
				}
				var resp PlanResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					errs <- err
					return
				}
				if resp.Stats.Workers != 2 {
					t.Errorf("client %d: workers = %d, want 2", c, resp.Stats.Workers)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	pm := planner.Metrics()
	if want := uint64(clients * requests); pm.ParallelRuns != want {
		t.Errorf("ParallelRuns = %d, want %d", pm.ParallelRuns, want)
	}

	// The new counters are scraped at /metrics.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{"planner_parallel_runs_total", "planner_parallel_pairs_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
