package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative style. Buckets are upper bounds in seconds; observations
// above the last bound land only in +Inf (count).
type histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // buckets[i] counts observations ≤ bounds[i] (non-cumulative; summed at render)
	count   atomic.Uint64   //dp:atomic
	sumNs   atomic.Uint64   //dp:atomic
}

// defaultLatencyBounds spans 100µs..10s — cached star-query hits sit in
// the lowest buckets, budgeted exact enumerations in the middle, and
// anything near the top is about to trip a deadline.
var defaultLatencyBounds = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds))}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, b := range h.bounds {
		if s <= b {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
}

// write renders the histogram in Prometheus text exposition format.
// The snapshot is taken under concurrent observe() calls (which bump a
// bucket before the total), so each cumulative bucket is capped at the
// total read first — keeping the rendered histogram monotone with
// +Inf == count even when a scrape lands between the two increments.
func (h *histogram) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	count := h.count.Load()
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if cum > count {
			cum = count
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// metrics aggregates the server-side counters; the planner's own
// cumulative counters are pulled fresh from Planner.Metrics at scrape
// time rather than mirrored here.
type metrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[reqKey]uint64

	latency *histogram // /plan and /batch handler latency

	timeouts atomic.Uint64 // requests that ended in 504 //dp:atomic
	panics   atomic.Uint64 // handler panics converted to 500 //dp:atomic
}

// writeMemoMetrics renders the planner's memo-engine counters: csg-cmp
// pairs emitted (the paper's §2.2 effort yardstick, summed over the
// session), enumeration runs that started on recycled memo storage, and
// the DP-table occupancy high-water mark. Together with the cache
// counters these make the storage half of the enumeration observable:
// arena reuse should approach 100% of cache misses under steady traffic.
func writeMemoMetrics(w io.Writer, pairsEmitted, arenaReuses uint64, memoPeakEntries int) {
	fmt.Fprintf(w, "# TYPE planner_pairs_emitted_total counter\nplanner_pairs_emitted_total %d\n", pairsEmitted)
	fmt.Fprintf(w, "# TYPE planner_arena_reuses_total counter\nplanner_arena_reuses_total %d\n", arenaReuses)
	fmt.Fprintf(w, "# TYPE planner_memo_peak_entries gauge\nplanner_memo_peak_entries %d\n", memoPeakEntries)
}

// writeParallelMetrics renders the planner's parallel-enumeration
// counters: how many enumerations ran on worker views and how many
// csg-cmp-pairs those workers processed. Together with
// planner_pairs_emitted_total these show what fraction of enumeration
// effort the multi-core path absorbs.
func writeParallelMetrics(w io.Writer, runs, pairs uint64) {
	fmt.Fprintf(w, "# TYPE planner_parallel_runs_total counter\nplanner_parallel_runs_total %d\n", runs)
	fmt.Fprintf(w, "# TYPE planner_parallel_pairs_total counter\nplanner_parallel_pairs_total %d\n", pairs)
}

// reqKey labels one request-counter series.
type reqKey struct {
	path string
	code int
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		requests: make(map[reqKey]uint64),
		latency:  newHistogram(defaultLatencyBounds),
	}
}

func (m *metrics) recordRequest(path string, code int) {
	m.mu.Lock()
	m.requests[reqKey{path, code}]++
	m.mu.Unlock()
}

// writeRequests renders the per-path/per-code request counters sorted
// for stable scrapes.
func (m *metrics) writeRequests(w io.Writer) {
	m.mu.Lock()
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].path != keys[j].path {
			return keys[i].path < keys[j].path
		}
		return keys[i].code < keys[j].code
	})
	counts := make([]uint64, len(keys))
	for i, k := range keys {
		counts[i] = m.requests[k]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE dpserved_http_requests_total counter\n")
	for i, k := range keys {
		fmt.Fprintf(w, "dpserved_http_requests_total{path=%q,code=\"%d\"} %d\n", k.path, k.code, counts[i])
	}
}
