package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// The chaos suite: arm a fault, run real traffic through a real server,
// and assert the robustness layer does what its comments promise —
// degrade plan quality instead of availability, mark every degraded
// plan, recover when the fault clears, and never trust a damaged
// snapshot. Faults are process-global, so these tests never t.Parallel
// and always defer chaos.Reset.

// TestChaosLadderEngagesDegradesRecovers is the headline scenario:
// injected solver slowness pushes the windowed p99 past the target, the
// ladder escalates to greedy-only planning — every degraded response
// marked by pressure_tier, algorithm, and the SLO block — and once the
// fault is disarmed the ladder steps back down to normal service.
func TestChaosLadderEngagesDegradesRecovers(t *testing.T) {
	defer chaos.Reset()
	s, ts := newOverloadServer(t, &OverloadConfig{
		TargetP99:      5 * time.Millisecond,
		Window:         500 * time.Millisecond,
		Hold:           100 * time.Millisecond,
		DegradedBudget: 10 * time.Millisecond,
	})

	// Every solver dispatch is now 20ms slower: p99 ≥ 4×target.
	chaos.Arm(chaos.SiteEnumerate, chaos.Fault{Delay: 20 * time.Millisecond})

	// mustPlan posts one dphyp request (card varies the fingerprint so
	// each is a cache miss that actually visits the slow solver) and
	// enforces the marking invariant: a plan this request did not ask
	// for is only ever returned with the pressure tier that forced it.
	mustPlan := func(card float64) PlanResponse {
		t.Helper()
		code, body := postPlan(t, ts.Client(), ts.URL, PlanRequest{
			Query: starDoc(6, card), Algorithm: "dphyp",
		})
		if code != http.StatusOK {
			t.Fatalf("status = %d, body %s", code, body)
		}
		var resp PlanResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Algorithm == "greedy" && resp.PressureTier < tierGreedy {
			t.Fatalf("unmarked degraded plan: algorithm greedy at pressure_tier %d", resp.PressureTier)
		}
		return resp
	}

	// Engage: within a few slow plans the ladder must reach tier 2 and
	// start returning marked greedy plans.
	var degraded *PlanResponse
	for i := 0; i < 20; i++ {
		resp := mustPlan(float64(1000 + i))
		if resp.PressureTier >= tierGreedy {
			degraded = &resp
			break
		}
	}
	if degraded == nil {
		t.Fatal("ladder never reached tier 2 under injected slowness")
	}
	if degraded.Algorithm != "greedy" {
		t.Fatalf("tier-2 response algorithm = %q, want greedy", degraded.Algorithm)
	}
	if degraded.Stats.PlanBudgetMS != 10 {
		t.Fatalf("tier-2 response plan_budget_ms = %g, want 10 (imposed)", degraded.Stats.PlanBudgetMS)
	}
	if degraded.Stats.SLORung != "greedy" {
		t.Fatalf("tier-2 response slo_rung = %q, want greedy", degraded.Stats.SLORung)
	}

	// Under pressure, the full metrics surface must still be a valid
	// exposition: tier gauge, transitions, SLO counters and all.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err := obs.ValidatePrometheusText(string(mbody)); err != nil {
		t.Fatalf("invalid /metrics under pressure: %v", err)
	}
	for _, want := range []string{"dpserved_pressure_tier 2", "planner_slo_"} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("/metrics missing %q under pressure", want)
		}
	}

	// Recover: disarm the fault; the slow mass ages out of the window
	// and the ladder steps back down to tier 0, one hold at a time.
	chaos.Reset()
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for i := 0; time.Now().Before(deadline); i++ {
		resp := mustPlan(float64(5000 + i))
		if resp.PressureTier == tierNormal && resp.Algorithm == "dphyp" {
			recovered = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("ladder never recovered to tier 0 after the fault was disarmed")
	}
	if got := s.ladder.transitions[tierNormal].Load(); got == 0 {
		t.Fatal("recovery recorded no transition back into tier 0")
	}
}

// TestChaosPoolStarvation: a fault at the pool admission site starves
// one request into the shedding path (429 + Retry-After), after which
// service resumes untouched.
func TestChaosPoolStarvation(t *testing.T) {
	defer chaos.Reset()
	s := New(Config{Planner: repro.NewPlanner(), Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	chaos.Arm(chaos.SitePoolAcquire, chaos.Fault{Err: ErrQueueFull, Limit: 1})

	code, body, err := tryPostPlan(ts.Client(), ts.URL, PlanRequest{Query: starDoc(4, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("starved request: status = %d, body %s", code, body)
	}
	if got := chaos.Triggered(chaos.SitePoolAcquire); got != 1 {
		t.Fatalf("fault triggered %d times, want 1", got)
	}

	// The fault's limit is spent: the very next request plans normally.
	code, body = postPlan(t, ts.Client(), ts.URL, PlanRequest{Query: starDoc(4, 100)})
	if code != http.StatusOK {
		t.Fatalf("post-fault request: status = %d, body %s", code, body)
	}
}

// TestChaosSnapshotWarmRestart is the kill→restart scenario: a server
// saves its plan cache on shutdown, a fresh process restores it and
// serves the first repeat request as a cache hit without a single
// enumeration — and when the snapshot file is damaged in between, the
// restarted server runs cold, loudly disables persistence, and never
// overwrites the evidence.
func TestChaosSnapshotWarmRestart(t *testing.T) {
	defer chaos.Reset()
	path := filepath.Join(t.TempDir(), "cache.json")
	req := PlanRequest{Query: starDoc(8, 500), Algorithm: "dphyp"}

	// First life: plan once, drain, snapshot.
	p1 := repro.NewPlanner()
	s1 := New(Config{Planner: p1, Workers: 2, QueueDepth: 8, SnapshotPath: path})
	ts1 := httptest.NewServer(s1.Handler())
	code, body := postPlan(t, ts1.Client(), ts1.URL, req)
	if code != http.StatusOK {
		t.Fatalf("first life: status = %d, body %s", code, body)
	}
	var first PlanResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Second life: a brand-new planner restores the snapshot and serves
	// the same request from cache — zero enumerations, zero misses.
	p2 := repro.NewPlanner()
	s2 := New(Config{Planner: p2, Workers: 2, QueueDepth: 8, SnapshotPath: path})
	ts2 := httptest.NewServer(s2.Handler())
	code, body = postPlan(t, ts2.Client(), ts2.URL, req)
	if code != http.StatusOK {
		t.Fatalf("second life: status = %d, body %s", code, body)
	}
	var warm PlanResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.CacheHit {
		t.Fatal("restored server did not serve the repeat request from cache")
	}
	if warm.Cost != first.Cost {
		t.Fatalf("restored plan cost = %g, want %g", warm.Cost, first.Cost)
	}
	m := p2.Metrics()
	if m.CacheMisses != 0 || m.CacheHits != 1 {
		t.Fatalf("restored planner: misses = %d hits = %d, want 0 and 1", m.CacheMisses, m.CacheHits)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2.Close()

	// Third life, after the process died mid-write: the truncated file
	// is rejected, the server runs cold but runs, and shutdown leaves
	// the damaged file byte-for-byte intact for the operator.
	if err := chaos.TruncateFile(path, 20); err != nil {
		t.Fatal(err)
	}
	damaged, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p3 := repro.NewPlanner()
	s3 := New(Config{Planner: p3, Workers: 2, QueueDepth: 8, SnapshotPath: path})
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	code, body = postPlan(t, ts3.Client(), ts3.URL, req)
	if code != http.StatusOK {
		t.Fatalf("third life: status = %d, body %s", code, body)
	}
	var cold PlanResponse
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Stats.CacheHit {
		t.Fatal("server restored a plan from a truncated snapshot")
	}
	if cold.Cost != first.Cost {
		t.Fatalf("cold replan cost = %g, want %g", cold.Cost, first.Cost)
	}
	if err := s3.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(damaged) {
		t.Fatal("shutdown overwrote the damaged snapshot file")
	}
}
