// Package service turns the repro planning library into a long-running
// plan server: an HTTP JSON API backed by a bounded worker pool with
// admission control, singleflight coalescing of identical in-flight
// queries, and live metrics.
//
// # Endpoints
//
//	POST /plan           optimize one query document (PlanRequest → PlanResponse)
//	POST /plan?explain=1 same, plus a phase/span trace of the planning call
//	POST /batch          optimize a batch sequentially under one worker slot
//	GET  /healthz        liveness + drain state + live gauges (JSON)
//	GET  /metrics        Prometheus text exposition of server and planner counters
//	GET  /debug/plans    ring of the slowest plans served (JSON, slowest first)
//	GET  /debug/history  persistent planning-cost history, merged live (JSON)
//
// # Admission control
//
// Every enumeration runs on one of a fixed number of worker slots
// (Config.Workers). Requests beyond the workers wait in a bounded
// admission queue (Config.QueueDepth); when the queue is full the
// request is rejected immediately with 429 and a Retry-After hint
// instead of piling up memory until collapse. Each request carries a
// deadline (the server default, or the request's own timeout_ms capped
// by Config.MaxTimeout); a deadline that expires while queued or
// mid-enumeration cancels the work — the context is polled inside every
// solver's enumeration loops — and reports 504.
//
// # Request coalescing
//
// Identical queries that arrive while an equivalent one is already
// planning do not enqueue a second enumeration: they are coalesced onto
// the in-flight call (singleflight) and all receive its result. The
// coalescing key is the canonical graph fingerprint the plan cache
// already uses, combined with the request's planning options, so a
// thundering herd of the same query shape costs one worker slot and one
// enumeration; the followers are marked "coalesced": true in their
// responses. Tree documents (non-inner-join queries) coalesce on a hash
// of the document instead.
//
// # Observability
//
// POST /plan?explain=1 attaches an explain trace to the planning call
// and returns it in the response's trace field: one span per planner
// phase (route, cache_lookup, enumerate — or per iterdp compression
// round — fallback, materialize) with wall time and work counters.
// Explain requests coalesce in their own population, so an explain
// follower always inherits a real trace from a traced leader; a cache
// hit returns a trace of just the lookup. Config.TraceSample
// additionally traces 1 in N ordinary requests, opportunistically,
// for the debug ring.
//
// /metrics carries, beyond the flat server and planner counters, the
// dimensional planner_plan_seconds histogram family: planning latency
// per shape × algorithm × relation-count bucket, cache hits included
// (with a parallel _cache_hits_total counter separating them). When
// Config.HistoryPath is set those series persist across restarts: the
// file is loaded at startup as the baseline, and baseline + live
// counts are saved every Config.HistoryInterval and at Shutdown, so
// /debug/history answers "what does planning this kind of query cost
// here" with p50/p99 spanning process lifetimes. An unreadable or
// version-mismatched history file disables persistence (never
// overwriting the file) and is reported through the logger.
//
// /debug/plans is a bounded ring (Config.RingSize) of the slowest
// plans seen so far — fingerprint, shape, algorithm, relations,
// duration, pairs, and the trace when the request was traced. The ring
// evicts strictly by duration, so it converges on the worst requests
// served, not the latest. Server.DebugHandler bundles the debug
// surfaces with net/http/pprof and GET /debug/runtime for a separate
// listener (dpserved -debug-addr); keep that listener loopback-only.
//
// Logging is structured (log/slog via Config.Logger): one Info "plan"
// record per planning request carrying the request id, fingerprint,
// shape, algorithm, duration, and outcome; requests at least
// Config.SlowPlanThreshold slow are upgraded to Warn with phase
// totals; transport-level access records sit at Debug.
//
// # Shutdown
//
// Server.Shutdown flips the server into draining mode — /healthz turns
// 503 so load balancers stop routing, and new planning requests are
// refused with 503 — then waits for the in-flight requests to finish
// (their enumerations keep their own deadlines) and saves the
// planning-cost history. cmd/dpserved wires SIGINT/SIGTERM to exactly
// this, so a rolling restart never truncates a plan mid-flight.
package service
