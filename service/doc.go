// Package service turns the repro planning library into a long-running
// plan server: an HTTP JSON API backed by a bounded worker pool with
// admission control, singleflight coalescing of identical in-flight
// queries, and live metrics.
//
// # Endpoints
//
//	POST /plan           optimize one query document (PlanRequest → PlanResponse)
//	POST /plan?explain=1 same, plus a phase/span trace of the planning call
//	POST /batch          optimize a batch sequentially under one worker slot
//	GET  /healthz        liveness + drain state + live gauges (JSON)
//	GET  /metrics        Prometheus text exposition of server and planner counters
//	GET  /debug/plans    ring of the slowest plans served (JSON, slowest first)
//	GET  /debug/history  persistent planning-cost history, merged live (JSON)
//
// # Admission control
//
// Every enumeration runs on one of a fixed number of worker slots
// (Config.Workers). Requests beyond the workers wait in a bounded
// admission queue (Config.QueueDepth); when the queue is full the
// request is rejected immediately with 429 and a Retry-After hint
// instead of piling up memory until collapse. Each request carries a
// deadline (the server default, or the request's own timeout_ms capped
// by Config.MaxTimeout); a deadline that expires while queued or
// mid-enumeration cancels the work — the context is polled inside every
// solver's enumeration loops — and reports 504.
//
// # Request coalescing
//
// Identical queries that arrive while an equivalent one is already
// planning do not enqueue a second enumeration: they are coalesced onto
// the in-flight call (singleflight) and all receive its result. The
// coalescing key is the canonical graph fingerprint the plan cache
// already uses, combined with the request's planning options, so a
// thundering herd of the same query shape costs one worker slot and one
// enumeration; the followers are marked "coalesced": true in their
// responses. Tree documents (non-inner-join queries) coalesce on a hash
// of the document instead.
//
// # Observability
//
// POST /plan?explain=1 attaches an explain trace to the planning call
// and returns it in the response's trace field: one span per planner
// phase (route, cache_lookup, enumerate — or per iterdp compression
// round — fallback, materialize) with wall time and work counters.
// Explain requests coalesce in their own population, so an explain
// follower always inherits a real trace from a traced leader; a cache
// hit returns a trace of just the lookup. Config.TraceSample
// additionally traces 1 in N ordinary requests, opportunistically,
// for the debug ring.
//
// /metrics carries, beyond the flat server and planner counters, the
// dimensional planner_plan_seconds histogram family: planning latency
// per shape × algorithm × relation-count bucket, cache hits included
// (with a parallel _cache_hits_total counter separating them). When
// Config.HistoryPath is set those series persist across restarts: the
// file is loaded at startup as the baseline, and baseline + live
// counts are saved every Config.HistoryInterval and at Shutdown, so
// /debug/history answers "what does planning this kind of query cost
// here" with p50/p99 spanning process lifetimes. An unreadable or
// version-mismatched history file disables persistence (never
// overwriting the file) and is reported through the logger.
//
// /debug/plans is a bounded ring (Config.RingSize) of the slowest
// plans seen so far — fingerprint, shape, algorithm, relations,
// duration, pairs, and the trace when the request was traced. The ring
// evicts strictly by duration, so it converges on the worst requests
// served, not the latest. Server.DebugHandler bundles the debug
// surfaces with net/http/pprof and GET /debug/runtime for a separate
// listener (dpserved -debug-addr); keep that listener loopback-only.
//
// Logging is structured (log/slog via Config.Logger): one Info "plan"
// record per planning request carrying the request id, fingerprint,
// shape, algorithm, duration, and outcome; requests at least
// Config.SlowPlanThreshold slow are upgraded to Warn with phase
// totals; transport-level access records sit at Debug.
//
// # SLOs and degradation
//
// Requests may carry plan_budget_ms, a planning-time SLO the planner's
// budget router satisfies by degrading to a cheaper algorithm rung
// (exact → iterdp → greedy) when the predicted cost of the topology
// route would miss the budget; the response's stats carry slo_rung,
// slo_degraded, and slo_met, and /metrics exports the
// planner_slo_{met,missed,degraded}_total counters.
//
// Config.Overload enables the server-wide overload degradation ladder
// on top of that per-request contract. Pressure is the max of two
// signals — admission-queue depth as a fraction of capacity (the
// leading indicator) and the windowed p99 of planning latency against
// OverloadConfig.TargetP99 (the trailing confirmation) — and maps to
// four tiers:
//
//	tier 0  normal   — requests plan as asked
//	tier 1  tighten  — OverloadConfig.DegradedBudget is imposed on (or
//	                   caps) each request's plan budget
//	tier 2  greedy   — every request plans greedy-only
//	tier 3  shed     — new requests are rejected with 429 + Retry-After
//
// Escalation is immediate; de-escalation steps down one tier at a time
// after pressure has stayed below the current tier for
// OverloadConfig.Hold — the asymmetry is the hysteresis that keeps a
// borderline server from flapping. Latency alone never sheds (a
// slow-but-keeping-up server degrades quality instead); tier 3 is
// reachable only through a saturated queue. Every degraded response is
// marked — pressure_tier on the wire, slo_rung/algorithm in stats —
// and the ladder exports dpserved_pressure_tier,
// dpserved_pressure_transitions_total{tier}, and
// dpserved_pressure_shed_total. cmd/loadgen -retries honors the
// Retry-After hint with jittered exponential backoff, and CI's
// overload soak gate drives a server past exact-planning saturation
// and requires ≥ 99% availability with tiers 1 and 2 engaged.
//
// Config.SnapshotPath adds warm-start across restarts: the plan cache
// is snapshotted to disk (atomic temp+rename, versioned) every
// SnapshotInterval and at Shutdown, and restored at startup, so a
// rolling restart resumes with a hot cache instead of stampeding the
// solvers. Validation is strict — a corrupt or version-mismatched
// snapshot disables persistence loudly and is never overwritten, the
// same contract as the history file.
//
// The degrade-and-recover cycle is itself under test: the
// internal/chaos harness injects faults (enumeration delay, pool
// starvation, snapshot truncation) at named sites inside the serving
// path, and the service chaos suite asserts the ladder engages,
// degrades, marks every degraded plan, and returns to tier 0 when the
// fault clears. Injection sites are arm-gated — one atomic load when
// disarmed — which the chaosgate static analyzer enforces.
//
// # Shutdown
//
// Server.Shutdown flips the server into draining mode — /healthz turns
// 503 so load balancers stop routing, and new planning requests are
// refused with 503 — then waits for the in-flight requests to finish
// (their enumerations keep their own deadlines) and saves the
// planning-cost history. cmd/dpserved wires SIGINT/SIGTERM to exactly
// this, so a rolling restart never truncates a plan mid-flight.
package service
