// Package service turns the repro planning library into a long-running
// plan server: an HTTP JSON API backed by a bounded worker pool with
// admission control, singleflight coalescing of identical in-flight
// queries, and live metrics.
//
// # Endpoints
//
//	POST /plan     optimize one query document (PlanRequest → PlanResponse)
//	POST /batch    optimize a batch sequentially under one worker slot
//	GET  /healthz  liveness + drain state + live gauges (JSON)
//	GET  /metrics  Prometheus text exposition of server and planner counters
//
// # Admission control
//
// Every enumeration runs on one of a fixed number of worker slots
// (Config.Workers). Requests beyond the workers wait in a bounded
// admission queue (Config.QueueDepth); when the queue is full the
// request is rejected immediately with 429 and a Retry-After hint
// instead of piling up memory until collapse. Each request carries a
// deadline (the server default, or the request's own timeout_ms capped
// by Config.MaxTimeout); a deadline that expires while queued or
// mid-enumeration cancels the work — the context is polled inside every
// solver's enumeration loops — and reports 504.
//
// # Request coalescing
//
// Identical queries that arrive while an equivalent one is already
// planning do not enqueue a second enumeration: they are coalesced onto
// the in-flight call (singleflight) and all receive its result. The
// coalescing key is the canonical graph fingerprint the plan cache
// already uses, combined with the request's planning options, so a
// thundering herd of the same query shape costs one worker slot and one
// enumeration; the followers are marked "coalesced": true in their
// responses. Tree documents (non-inner-join queries) coalesce on a hash
// of the document instead.
//
// # Shutdown
//
// Server.Shutdown flips the server into draining mode — /healthz turns
// 503 so load balancers stop routing, and new planning requests are
// refused with 503 — then waits for the in-flight requests to finish
// (their enumerations keep their own deadlines). cmd/dpserved wires
// SIGINT/SIGTERM to exactly this, so a rolling restart never truncates
// a plan mid-flight.
package service
