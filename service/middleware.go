package service

import (
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the response code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps the mux with panic recovery, request accounting
// (per-path/per-code counters, planning-latency histogram), and access
// logging. It is the single seam every request passes through, so the
// /metrics numbers cannot drift from reality.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				s.logf("dpserved: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if rec.code == 0 {
					writeError(rec, http.StatusInternalServerError, errInternal)
				}
			}
			elapsed := time.Since(start)
			if rec.code == 0 {
				rec.code = http.StatusOK
			}
			s.met.recordRequest(r.URL.Path, rec.code)
			if r.URL.Path == "/plan" || r.URL.Path == "/batch" {
				s.met.latency.observe(elapsed)
				s.logf("dpserved: %s %s %d %.3fms", r.Method, r.URL.Path, rec.code, float64(elapsed.Microseconds())/1000)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}
