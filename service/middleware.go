package service

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the response code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// ridKey carries the per-request id through the request context, so the
// access line and the handler's plan line share one id.
type ridKey struct{}

// requestID returns the id instrument assigned to the request (0 for a
// request that did not pass through instrument, e.g. direct handler
// tests).
func requestID(ctx context.Context) uint64 {
	id, _ := ctx.Value(ridKey{}).(uint64)
	return id
}

// instrument wraps the mux with panic recovery, request accounting
// (per-path/per-code counters, planning-latency histogram), request-id
// assignment, and structured access logging. It is the single seam
// every request passes through, so the /metrics numbers cannot drift
// from reality.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		id := s.reqSeq.Add(1)
		r = r.WithContext(context.WithValue(r.Context(), ridKey{}, id))
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				s.log.Error("handler panic",
					"id", id, "method", r.Method, "path", r.URL.Path,
					"panic", p, "stack", string(debug.Stack()))
				if rec.code == 0 {
					writeError(rec, http.StatusInternalServerError, errInternal)
				}
			}
			elapsed := time.Since(start)
			if rec.code == 0 {
				rec.code = http.StatusOK
			}
			s.met.recordRequest(r.URL.Path, rec.code)
			if r.URL.Path == "/plan" || r.URL.Path == "/batch" {
				s.met.latency.observe(elapsed)
				// The rich per-plan record is the handler's Info line;
				// this is the transport-level view.
				s.log.Debug("http",
					"id", id, "method", r.Method, "path", r.URL.Path,
					"status", rec.code,
					"duration_ms", float64(elapsed.Microseconds())/1000)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}
