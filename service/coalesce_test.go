package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// TestCoalesceSingleFlight: concurrent do calls for one key run fn once
// and share its result; sequential calls run fn again.
func TestCoalesceSingleFlight(t *testing.T) {
	c := newCoalescer()
	ctx := context.Background()
	want := &repro.Result{}

	var calls atomic.Int64
	began := make(chan struct{})
	release := make(chan struct{})
	fn := func() (*repro.Result, error) {
		if calls.Add(1) == 1 {
			close(began)
			<-release
		}
		return want, nil
	}

	const followers = 10
	var wg sync.WaitGroup
	leaderShared := make(chan bool, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, shared, err := c.do(ctx, "k", fn)
		if err != nil || res != want {
			t.Errorf("leader: res=%v err=%v", res, err)
		}
		leaderShared <- shared
	}()
	<-began

	var sharedCount atomic.Int64
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, shared, err := c.do(ctx, "k", fn)
			if err != nil || res != want {
				t.Errorf("follower: res=%v err=%v", res, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	waitFor(t, func() bool { return c.waiting.Load() == followers }, "followers parked")
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if <-leaderShared {
		t.Error("leader reported shared=true")
	}
	if got := sharedCount.Load(); got != followers {
		t.Errorf("%d followers shared, want %d", got, followers)
	}
	if c.coalesced.Load() != followers || c.leaders.Load() != 1 {
		t.Errorf("counters: coalesced=%d leaders=%d", c.coalesced.Load(), c.leaders.Load())
	}

	// The entry is gone: a later call is a fresh leader.
	if _, shared, _ := c.do(ctx, "k", fn); shared {
		t.Error("post-completion call was shared; want fresh run")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("fn ran %d times after sequential call, want 2", got)
	}
}

// TestCoalesceFollowerDeadline: a follower whose context expires stops
// waiting without killing the leader.
func TestCoalesceFollowerDeadline(t *testing.T) {
	c := newCoalescer()
	began := make(chan struct{})
	release := make(chan struct{})
	go c.do(context.Background(), "k", func() (*repro.Result, error) {
		close(began)
		<-release
		return &repro.Result{}, nil
	})
	<-began

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := c.do(ctx, "k", func() (*repro.Result, error) {
		t.Error("follower ran fn")
		return nil, nil
	})
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower: shared=%v err=%v, want shared deadline error", shared, err)
	}
	close(release)
}

// TestCoalescePanickingLeader: a leader whose fn panics must not
// poison the key — followers are released with errLeaderAborted and the
// entry is unpublished so later calls start fresh.
func TestCoalescePanickingLeader(t *testing.T) {
	c := newCoalescer()
	began := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }() // the middleware's job in real serving
		c.do(context.Background(), "k", func() (*repro.Result, error) {
			close(began)
			<-release
			panic("boom")
		})
	}()
	<-began

	followerErr := make(chan error, 1)
	go func() {
		_, shared, err := c.do(context.Background(), "k", func() (*repro.Result, error) {
			t.Error("follower ran fn")
			return nil, nil
		})
		if !shared {
			t.Error("follower not marked shared")
		}
		followerErr <- err
	}()
	waitFor(t, func() bool { return c.waiting.Load() == 1 }, "follower parked")
	close(release)

	if err := <-followerErr; !errors.Is(err, errLeaderAborted) {
		t.Fatalf("follower err = %v, want errLeaderAborted", err)
	}
	// The key is clean: a fresh call runs its own fn.
	ran := false
	if _, shared, err := c.do(context.Background(), "k", func() (*repro.Result, error) {
		ran = true
		return &repro.Result{}, nil
	}); shared || err != nil || !ran {
		t.Fatalf("post-panic call: shared=%v err=%v ran=%v, want fresh clean run", shared, err, ran)
	}
	c.mu.Lock()
	if len(c.m) != 0 {
		t.Errorf("%d stale entries left in the coalescer", len(c.m))
	}
	c.mu.Unlock()
}

// TestCoalesceDistinctKeys: different keys never share.
func TestCoalesceDistinctKeys(t *testing.T) {
	c := newCoalescer()
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		key := string(rune('a' + i))
		go func() {
			defer wg.Done()
			_, shared, err := c.do(context.Background(), key, func() (*repro.Result, error) {
				calls.Add(1)
				return &repro.Result{}, nil
			})
			if shared || err != nil {
				t.Errorf("key %s: shared=%v err=%v", key, shared, err)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Errorf("fn ran %d times, want 4", calls.Load())
	}
}
