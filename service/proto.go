package service

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/obs"
)

// PlanRequest is the body of POST /plan. Query uses the repository's
// QueryJSON document format (the same one cmd/querygen emits); the
// remaining fields override the server's planning defaults for this
// request only.
type PlanRequest struct {
	Query *repro.QueryJSON `json:"query"`

	// Algorithm selects the enumeration algorithm (dphyp | dpsize |
	// dpsub | dpccp | topdown | greedy | auto). Empty uses the server's
	// planner default.
	Algorithm string `json:"algorithm,omitempty"`
	// CostModel selects the cost model (cout | cmm | nlj | hash |
	// physical). Empty uses the server's planner default.
	CostModel string `json:"cost_model,omitempty"`
	// Budget bounds the exact enumeration effort for this request.
	Budget *BudgetJSON `json:"budget,omitempty"`
	// PlanBudgetMS is the request's planning-time SLO: the budget
	// router degrades to a cheaper algorithm when the preferred one is
	// predicted to miss it (see repro.WithPlanBudget). Advisory for
	// routing — combine with timeout_ms for a hard cutoff. Under
	// overload the server may impose or tighten it (pressure tier 1+).
	PlanBudgetMS int64 `json:"plan_budget_ms,omitempty"`
	// TimeoutMS bounds this request's total time (queueing included).
	// 0 uses the server default; values above Config.MaxTimeout are
	// clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BudgetJSON mirrors repro.Budget.
type BudgetJSON struct {
	MaxCsgCmpPairs int `json:"max_csg_cmp_pairs,omitempty"`
	MaxCostedPlans int `json:"max_costed_plans,omitempty"`
}

// BatchRequest is the body of POST /batch: the shared option fields
// apply to every query in the batch. The batch occupies one worker slot
// and plans its queries sequentially under one deadline, so a batch is
// admission-controlled as a single unit of work.
type BatchRequest struct {
	Queries   []*repro.QueryJSON `json:"queries"`
	Algorithm string             `json:"algorithm,omitempty"`
	CostModel string             `json:"cost_model,omitempty"`
	Budget    *BudgetJSON        `json:"budget,omitempty"`
	// PlanBudgetMS is the per-query planning-time SLO (see
	// PlanRequest.PlanBudgetMS); it applies to each query separately,
	// not to the batch as a whole.
	PlanBudgetMS int64 `json:"plan_budget_ms,omitempty"`
	TimeoutMS    int64 `json:"timeout_ms,omitempty"`
}

// PlanResponse is the body of a successful POST /plan.
type PlanResponse struct {
	Plan        *PlanNodeJSON `json:"plan"`
	Cost        float64       `json:"cost"`
	Cardinality float64       `json:"cardinality"`
	Algorithm   string        `json:"algorithm"`
	Stats       StatsJSON     `json:"stats"`
	// Coalesced marks a response served by waiting on an identical
	// in-flight request instead of enumerating again.
	Coalesced bool    `json:"coalesced,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// PressureTier is the overload-ladder tier this request planned
	// under (1 = tightened plan budget, 2 = greedy-only); absent at
	// tier 0 and when the ladder is disabled. A degraded plan is thus
	// always marked — by this field and by stats.slo_rung/algorithm.
	PressureTier int `json:"pressure_tier,omitempty"`
	// Trace is the explain trace of the planning call, present only when
	// the request asked for one (POST /plan?explain=1). A coalesced
	// response carries the leader's trace — the phases that actually ran.
	Trace *TraceJSON `json:"trace,omitempty"`
}

// TraceJSON is the wire form of an explain trace: the planning call's
// wall time and its phase spans in recording order. Depth-0 spans
// partition the call, so their durations sum to ≈ total_us.
type TraceJSON struct {
	TotalUS float64    `json:"total_us"`
	Dropped int        `json:"dropped,omitempty"`
	Spans   []SpanJSON `json:"spans"`
}

// SpanJSON is one recorded phase. Round is present only on
// iterdp_round spans; the work counters are present only when the
// phase did enumeration work.
type SpanJSON struct {
	Phase       string  `json:"phase"`
	Depth       int     `json:"depth,omitempty"`
	Round       *int    `json:"round,omitempty"`
	StartUS     float64 `json:"start_us"`
	DurUS       float64 `json:"dur_us"`
	Pairs       int64   `json:"pairs,omitempty"`
	MemoEntries int     `json:"memo_entries,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	Subproblems int     `json:"subproblems,omitempty"`
}

// traceJSON renders an explain trace for the wire; nil stays nil.
func traceJSON(t *obs.Trace) *TraceJSON {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	out := &TraceJSON{
		TotalUS: float64(t.Total.Nanoseconds()) / 1000,
		Dropped: int(t.Dropped),
		Spans:   make([]SpanJSON, len(spans)),
	}
	for i, s := range spans {
		sj := SpanJSON{
			Phase:       s.Phase.String(),
			Depth:       int(s.Depth),
			StartUS:     float64(s.Start.Nanoseconds()) / 1000,
			DurUS:       float64(s.Dur.Nanoseconds()) / 1000,
			Pairs:       s.Pairs,
			MemoEntries: int(s.MemoEntries),
			Workers:     int(s.Workers),
			Subproblems: int(s.Subproblems),
		}
		if s.Round >= 0 {
			round := int(s.Round)
			sj.Round = &round
		}
		out.Spans[i] = sj
	}
	return out
}

// BatchResponse is the body of POST /batch. Results is parallel to the
// request's Queries; each entry carries either a response or an error.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// BatchItem is one per-query outcome inside a BatchResponse.
type BatchItem struct {
	*PlanResponse
	Error string `json:"error,omitempty"`
}

// StatsJSON is the wire form of the enumeration statistics.
type StatsJSON struct {
	CsgCmpPairs     int    `json:"csg_cmp_pairs"`
	CostedPlans     int    `json:"costed_plans"`
	CacheHit        bool   `json:"cache_hit,omitempty"`
	BudgetExhausted bool   `json:"budget_exhausted,omitempty"`
	FallbackGreedy  bool   `json:"fallback_greedy,omitempty"`
	Shape           string `json:"shape,omitempty"`
	RoutedAlgorithm string `json:"routed_algorithm,omitempty"`
	// Workers is the worker count the enumeration ran with; absent for
	// serial runs. Cache hits report the original enumeration's count
	// (alongside cache_hit), like every other stat in this block.
	Workers int `json:"workers,omitempty"`
	// Subproblems and Rounds report the iterative-DP tier's effort
	// (exactly-solved compressed subproblems, compression rounds);
	// absent when the query planned in one exact enumeration.
	Subproblems int `json:"subproblems,omitempty"`
	Rounds      int `json:"rounds,omitempty"`
	// The planning-time SLO block, present only when the request
	// planned under a plan budget (its own or a pressure-imposed one).
	// SLORung names the degradation-ladder rung that produced the plan
	// ("exact" | "iterdp" | "greedy"); SLOMet reports whether the call
	// fit its budget.
	PlanBudgetMS    float64 `json:"plan_budget_ms,omitempty"`
	PredictedCostMS float64 `json:"predicted_cost_ms,omitempty"`
	SLORung         string  `json:"slo_rung,omitempty"`
	SLODegraded     bool    `json:"slo_degraded,omitempty"`
	SLOMet          *bool   `json:"slo_met,omitempty"`
}

// PlanNodeJSON is the wire form of an optimized operator tree. Leaves
// carry Relation/Rel; inner nodes carry Op and both children.
type PlanNodeJSON struct {
	Op       string        `json:"op,omitempty"`
	Relation string        `json:"relation,omitempty"`
	Rel      *int          `json:"rel,omitempty"`
	Phys     string        `json:"phys,omitempty"`
	Card     float64       `json:"card"`
	Cost     float64       `json:"cost"`
	Left     *PlanNodeJSON `json:"left,omitempty"`
	Right    *PlanNodeJSON `json:"right,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// planOptions resolves the request's option fields into repro Options
// plus a canonical key fragment for the coalescer. Unset fields resolve
// to the literal "default" in the key — the server's planner defaults
// are fixed for the process lifetime, so the fragment still identifies
// one planning configuration. The plan budget is part of the key
// because it steers routing: a tier-1 request with a tightened budget
// must not coalesce onto (or feed) the population planning without one.
func planOptions(algorithm, costModel string, budget *BudgetJSON, planBudget time.Duration) ([]repro.Option, string, error) {
	var opts []repro.Option
	algKey, costKey := "default", "default"
	if algorithm != "" {
		a, err := repro.ParseAlgorithm(algorithm)
		if err != nil {
			return nil, "", err
		}
		opts = append(opts, repro.WithAlgorithm(a))
		algKey = a.String()
	}
	if costModel != "" {
		m, err := repro.ParseCostModel(costModel)
		if err != nil {
			return nil, "", err
		}
		opts = append(opts, repro.WithCostModel(m))
		costKey = costModel
	}
	var b repro.Budget
	if budget != nil {
		if budget.MaxCsgCmpPairs < 0 || budget.MaxCostedPlans < 0 {
			return nil, "", fmt.Errorf("service: budget limits must be non-negative")
		}
		b = repro.Budget{
			MaxCsgCmpPairs: budget.MaxCsgCmpPairs,
			MaxCostedPlans: budget.MaxCostedPlans,
		}
		opts = append(opts, repro.WithBudget(b))
	}
	if planBudget < 0 {
		return nil, "", fmt.Errorf("service: plan budget must be non-negative")
	}
	if planBudget > 0 {
		opts = append(opts, repro.WithPlanBudget(planBudget))
	}
	key := fmt.Sprintf("%s/%s/%d:%d/%d", algKey, costKey,
		b.MaxCsgCmpPairs, b.MaxCostedPlans, planBudget.Milliseconds())
	return opts, key, nil
}

// validateQuery guards the nil case, then defers to the library's own
// document validator so the HTTP path can never accept a document the
// CLI path rejects.
func validateQuery(q *repro.QueryJSON) error {
	if q == nil {
		return fmt.Errorf("service: request has no query")
	}
	return q.Validate()
}

// planNodeJSON renders a plan tree for the wire. names maps relation
// indexes to names; it may be nil (tools planning anonymous graphs).
func planNodeJSON(n *repro.PlanNode, names func(int) string) *PlanNodeJSON {
	if n == nil {
		return nil
	}
	out := &PlanNodeJSON{Card: n.Card, Cost: n.Cost}
	if n.IsLeaf() {
		rel := n.Rel
		out.Rel = &rel
		if names != nil {
			out.Relation = names(rel)
		}
		return out
	}
	out.Op = n.Op.String()
	if n.Phys != repro.PhysNone {
		out.Phys = n.Phys.String()
	}
	out.Left = planNodeJSON(n.Left, names)
	out.Right = planNodeJSON(n.Right, names)
	return out
}

// planResponse renders a planning result for the wire.
func planResponse(res *repro.Result, coalesced bool, elapsedMS float64) *PlanResponse {
	var names func(int) string
	if res.Graph != nil {
		g := res.Graph
		names = func(i int) string {
			if i >= 0 && i < g.NumRels() {
				return g.Relation(i).Name
			}
			return ""
		}
	}
	st := res.Stats
	sj := StatsJSON{
		CsgCmpPairs:     st.CsgCmpPairs,
		CostedPlans:     st.CostedPlans,
		CacheHit:        st.CacheHit,
		BudgetExhausted: st.BudgetExhausted,
		FallbackGreedy:  st.FallbackGreedy,
		Shape:           st.Shape,
		RoutedAlgorithm: st.RoutedAlgorithm,
		Workers:         st.Workers,
		Subproblems:     st.Subproblems,
		Rounds:          st.Rounds,
	}
	if st.PlanBudget > 0 {
		sj.PlanBudgetMS = float64(st.PlanBudget.Microseconds()) / 1000
		sj.PredictedCostMS = float64(st.PredictedCost.Microseconds()) / 1000
		sj.SLORung = repro.SLORungName(st.SLORung)
		sj.SLODegraded = st.SLODegraded
		met := st.SLOMet
		sj.SLOMet = &met
	}
	return &PlanResponse{
		Plan:        planNodeJSON(res.Plan, names),
		Cost:        res.Cost(),
		Cardinality: res.Cardinality(),
		Algorithm:   res.Algorithm.String(),
		Stats:       sj,
		Coalesced:   coalesced,
		ElapsedMS:   elapsedMS,
	}
}
