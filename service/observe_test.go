package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/obs"
)

// TestExplainEndpoint: POST /plan?explain=1 returns a phase trace whose
// depth-0 spans account for (nearly) the whole planning call, and a
// plain request returns none.
func TestExplainEndpoint(t *testing.T) {
	s := New(Config{Planner: repro.NewPlanner()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string) *PlanResponse {
		t.Helper()
		body, err := json.Marshal(PlanRequest{Query: starDoc(12, 1000)})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d: %s", path, resp.StatusCode, out)
		}
		var pr PlanResponse
		if err := json.Unmarshal(out, &pr); err != nil {
			t.Fatal(err)
		}
		return &pr
	}

	pr := post("/plan?explain=1")
	if pr.Trace == nil {
		t.Fatal("explain=1 response has no trace")
	}
	if pr.Trace.TotalUS <= 0 || len(pr.Trace.Spans) == 0 {
		t.Fatalf("degenerate trace: %+v", pr.Trace)
	}
	var depth0 float64
	phases := map[string]bool{}
	for _, sp := range pr.Trace.Spans {
		phases[sp.Phase] = true
		if sp.Depth == 0 {
			depth0 += sp.DurUS
		}
	}
	if !phases["enumerate"] {
		t.Fatalf("first (uncached) explain lacks an enumerate span: %+v", pr.Trace.Spans)
	}
	if depth0 > pr.Trace.TotalUS || depth0 < 0.8*pr.Trace.TotalUS {
		t.Errorf("depth-0 spans sum to %.1fµs of %.1fµs total, want a ≈partition",
			depth0, pr.Trace.TotalUS)
	}

	// The same query again: served from the plan cache, still traced —
	// the trace shows the lookup, not a re-enumeration.
	pr2 := post("/plan?explain=1")
	if pr2.Trace == nil {
		t.Fatal("cached explain response has no trace")
	}
	if !pr2.Stats.CacheHit && !pr2.Coalesced {
		t.Fatalf("second call expected cached/coalesced: %+v", pr2.Stats)
	}

	// Without explain, no trace is rendered.
	if pr3 := post("/plan"); pr3.Trace != nil {
		t.Fatalf("untraced response carries a trace: %+v", pr3.Trace)
	}
}

// TestMetricsPlanSeconds: /metrics parses as valid Prometheus text and
// carries the dimensional planner_plan_seconds family labeled by shape,
// algorithm, and n.
func TestMetricsPlanSeconds(t *testing.T) {
	// SolverAuto so the router classifies the topology — the shape label
	// is "unclassified" when planning bypasses the router.
	s := New(Config{Planner: repro.NewPlanner(repro.WithAlgorithm(repro.SolverAuto))})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(PlanRequest{Query: starDoc(14, 500)})
	resp, err := http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	if err := obs.ValidatePrometheusText(string(text)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	if !strings.Contains(string(text), `planner_plan_seconds_bucket{shape="star",algorithm=`) {
		t.Fatalf("missing dimensional latency family:\n%s", text)
	}
	if !strings.Contains(string(text), `n="9-16"`) {
		t.Fatalf("missing n-bucket label:\n%s", text)
	}
}

// TestDebugPlansEndpoint: finished plans land in /debug/plans, slowest
// first, with fingerprints and (for traced requests) phase traces.
func TestDebugPlansEndpoint(t *testing.T) {
	s := New(Config{Planner: repro.NewPlanner()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i, path := range []string{"/plan?explain=1", "/plan"} {
		body, _ := json.Marshal(PlanRequest{Query: starDoc(10+i, 100)})
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan: %d", resp.StatusCode)
		}
	}

	dresp, err := http.Get(ts.URL + "/debug/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var entries []debugPlanJSON
	if err := json.NewDecoder(dresp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("ring has %d entries, want 2", len(entries))
	}
	traced := 0
	for i, e := range entries {
		if e.Fingerprint == "" || e.Shape == "" || e.Algorithm == "" {
			t.Errorf("entry %d missing identity fields: %+v", i, e)
		}
		if i > 0 && entries[i-1].DurationMS < e.DurationMS {
			t.Errorf("entries not slowest-first: %v then %v", entries[i-1].DurationMS, e.DurationMS)
		}
		if e.Trace != nil {
			traced++
		}
	}
	if traced != 1 {
		t.Errorf("ring has %d traced entries, want exactly the explain request", traced)
	}
}

// TestHistoryPersistence: a server with a history path saves at
// shutdown, a restarted server loads the baseline and serves it through
// /debug/history, and a plan-free restart does not inflate the counts.
func TestHistoryPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.json")
	ctx := context.Background()

	s1 := New(Config{
		Planner:     repro.NewPlanner(repro.WithAlgorithm(repro.SolverAuto)),
		HistoryPath: path,
	})
	ts1 := httptest.NewServer(s1.Handler())
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(PlanRequest{Query: starDoc(14, 500)})
		resp, err := http.Post(ts1.URL+"/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	saved, err := obs.LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, e := range saved.Entries() {
		total += e.Count
	}
	if total != 3 {
		t.Fatalf("saved history has %d observations, want 3: %+v", total, saved.Entries())
	}

	// Restart: the baseline is served, marked persistent, with p50/p99.
	s2 := New(Config{
		Planner:     repro.NewPlanner(repro.WithAlgorithm(repro.SolverAuto)),
		HistoryPath: path,
	})
	ts2 := httptest.NewServer(s2.Handler())
	dresp, err := http.Get(ts2.URL + "/debug/history")
	if err != nil {
		t.Fatal(err)
	}
	var hist debugHistoryJSON
	if err := json.NewDecoder(dresp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if !hist.Persistent || len(hist.Series) == 0 {
		t.Fatalf("restarted server lost the history: %+v", hist)
	}
	if hist.Series[0].Count != 3 || hist.Series[0].Shape != "star" {
		t.Fatalf("baseline series = %+v, want the 3 star observations", hist.Series[0])
	}

	// A restart that planned nothing must re-save exactly the baseline.
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts2.Close()
	resaved, err := obs.LoadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, e := range resaved.Entries() {
		total += e.Count
	}
	if total != 3 {
		t.Fatalf("plan-free restart changed the history to %d observations, want 3", total)
	}
}

// TestDebugHandler: the -debug-addr surface serves pprof and runtime
// stats.
func TestDebugHandler(t *testing.T) {
	s := New(Config{Planner: repro.NewPlanner()})
	ts := httptest.NewServer(s.DebugHandler())
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/plans", "/debug/history"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rt map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rt); err != nil {
		t.Fatal(err)
	}
	if g, ok := rt["goroutines"].(float64); !ok || g < 1 {
		t.Fatalf("runtime stats missing goroutines: %v", rt)
	}
}

// TestSlowPlanAndSampling: a sub-threshold SlowPlanThreshold marks every
// plan slow (exercising the Warn path), and TraceSample=1 traces plans
// that never asked for explain — visible as ring traces.
func TestSlowPlanAndSampling(t *testing.T) {
	s := New(Config{
		Planner:           repro.NewPlanner(),
		SlowPlanThreshold: time.Nanosecond,
		TraceSample:       1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(PlanRequest{Query: starDoc(12, 1000)})
	resp, err := http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d", resp.StatusCode)
	}

	entries := s.ring.Snapshot()
	if len(entries) != 1 {
		t.Fatalf("ring has %d entries, want 1", len(entries))
	}
	if entries[0].Trace == nil {
		t.Fatal("sampled request was not traced")
	}
}
